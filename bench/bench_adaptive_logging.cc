// E16 (Section 6, logging-class economics): the paper fixes each
// domain's logging class at authoring time and reports the resulting
// log-volume / recovery-time trade-off; the adaptive policy re-makes
// the choice per write at runtime. This bench regenerates the
// paper-shaped crossover on one workload (hot small application state
// dominating traffic, rare large cold file values, no checkpoints):
//
//   all-logical   (policy:0)  smallest log, but the hot chains never
//                             install, so redo replays the whole history;
//   all-physical  (policy:1)  every record carries values — recovery
//                             touches each record once, but the log is a
//                             multiple of the logical one;
//   adaptive      (policy:2)  W_L for the hot state, promoted W_P for
//                             the cold values, and budget-driven W_IP
//                             installs keeping the redo backlog under
//                             EngineOptions::recovery_budget.
//
// Reported: log payload bytes at crash, operations redone, recovery
// wall time, and whether the adaptive run honored its budget. The
// acceptance shape: adaptive log volume within 15% of all-logical while
// redo work stays near the budget; each static extreme measurably worse
// on one axis.

#include <benchmark/benchmark.h>

#include <string>

#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "wal/log_dump.h"

namespace loglog {
namespace {

constexpr int kOps = 5000;
constexpr ObjectId kAppObjects = 4;    // round-robin hot app state
constexpr size_t kAppStateBytes = 40;  // small: stays W_L under adaptive
constexpr uint64_t kHotValueBytes = 40;  // hot W(A,X) output values
constexpr int kFileEvery = 500;       // rare cold file writes...
constexpr uint64_t kFileBytes = 600;  // ...large: promoted to W_P
constexpr uint64_t kBudgetOps = 384;  // adaptive redo-backlog budget

enum PolicyMode { kAllLogical = 0, kAllPhysical = 1, kAdaptive = 2 };

EngineOptions ModeOptions(int mode) {
  EngineOptions opts;
  // No checkpoints and no size-triggered purging: installation happens
  // only where a mode's own machinery asks for it, so the redo backlog
  // is the policy's doing, not the maintenance loop's.
  opts.purge_threshold_ops = 0;
  opts.checkpoint_interval_ops = 0;
  switch (mode) {
    case kAllLogical:
      opts.logging_mode = LoggingMode::kLogical;
      break;
    case kAllPhysical:
      opts.logging_mode = LoggingMode::kPhysiological;
      break;
    case kAdaptive:
      opts.logging_mode = LoggingMode::kLogical;
      opts.adaptive.enabled = true;
      // Chains are cut by the budget's W_IP installs, not by blanket
      // deep-chain promotion — promotion here would just re-invent the
      // all-physical extreme for the hot traffic.
      opts.adaptive.max_chain_depth = 1 << 20;
      opts.recovery_budget = kBudgetOps;
      break;
  }
  return opts;
}

const char* ModeLabel(int mode) {
  switch (mode) {
    case kAllLogical:
      return "all-logical";
    case kAllPhysical:
      return "all-physical";
    default:
      return "adaptive";
  }
}

void RunWorkload(CrashHarness* harness, benchmark::State* state) {
  for (ObjectId a = 1; a <= kAppObjects; ++a) {
    std::string seed_state(kAppStateBytes, static_cast<char>('a' + a));
    Status st = harness->Execute(MakeCreate(a, seed_state));
    if (!st.ok()) state->SkipWithError(st.ToString().c_str());
    harness->engine().MarkHot(a);
    std::string input(kHotValueBytes, static_cast<char>('p' + a));
    st = harness->Execute(MakeCreate(40 + a, input));
    if (!st.ok()) state->SkipWithError(st.ToString().c_str());
  }
  for (int i = 0; i < kOps; ++i) {
    ObjectId a = 1 + static_cast<ObjectId>(i) % kAppObjects;
    Status st;
    if (i % 5 == 0) {
      // Churn the app state so the emitted values keep changing.
      st = harness->Execute(MakeAppExecute(a, i));
    } else {
      // The dominant traffic: R(A,X) — the hot app state absorbs an
      // input object. W_L logs only ids, the physical extreme logs the
      // 40-byte post-state every time; the self-write keeps each app
      // object's node growing, so the budget's W_IP installs amortize
      // one install record over a whole chain.
      ObjectId x = 41 + static_cast<ObjectId>(i) % kAppObjects;
      st = harness->Execute(MakeAppRead(a, x));
    }
    if (!st.ok()) state->SkipWithError(st.ToString().c_str());
    if ((i + 1) % kFileEvery == 0) {
      ObjectId file = 200 + static_cast<ObjectId>(i / kFileEvery) % 8;
      st = harness->Execute(MakeAppWrite(a, file, kFileBytes, i));
      if (!st.ok()) state->SkipWithError(st.ToString().c_str());
    }
  }
}

void BM_AdaptiveLoggingCrossover(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  RecoveryStats stats;
  LogDumpSummary log_summary;
  for (auto _ : state) {
    state.PauseTiming();
    CrashHarness harness(ModeOptions(mode), 4242);
    RunWorkload(&harness, &state);
    Status st = harness.engine().log().ForceAll();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    log_summary = LogDumpSummary();
    st = DumpLog(harness.disk().log().ArchiveContents(), nullptr,
                 &log_summary);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    harness.Crash();
    stats = RecoveryStats();
    state.ResumeTiming();

    st = harness.Recover(&stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    st = harness.VerifyAgainstReference();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
  }
  state.counters["log_bytes"] = static_cast<double>(log_summary.payload_bytes);
  state.counters["ops_redone"] = static_cast<double>(stats.ops_redone);
  state.counters["expensive_redos"] =
      static_cast<double>(stats.expensive_redos);
  state.counters["identity_writes"] =
      static_cast<double>(log_summary.identity_writes);
  state.counters["policy_decisions"] =
      static_cast<double>(log_summary.policy_decisions);
  state.counters["budget_ops"] = static_cast<double>(kBudgetOps);
  // The budget bounds redo *work*: the backlog at crash plus the W_IP
  // records of the final maintenance cycle.
  state.counters["within_budget"] =
      stats.ops_redone <= kBudgetOps + 64 ? 1.0 : 0.0;
  state.SetLabel(ModeLabel(mode));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_AdaptiveLoggingCrossover)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"policy"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
