// E9 (Section 1 "Application Recovery" vs [7]): logical application
// writes W_L(A,X) against the ICDE'98 baseline of physical writes
// W_P(X,v).
//
// The pipeline: an application repeatedly executes (Ex), reads inputs
// (R) and emits outputs. With logical writes the output value never
// reaches the log; the [7] baseline logs every output byte. Reported:
// total log bytes and bytes per emitted output as output size grows,
// plus normal-execution throughput.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "domains/app/recoverable_app.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

void BM_AppPipeline(benchmark::State& state) {
  const size_t out_bytes = static_cast<size_t>(state.range(0));
  const bool logical = state.range(1) != 0;
  constexpr int kSteps = 60;
  constexpr ObjectId kInput = 5;
  constexpr ObjectId kApp = 6;
  constexpr ObjectId kOutBase = 100;

  uint64_t log_bytes = 0, emits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    EngineOptions opts;
    opts.purge_threshold_ops = 32;
    RecoveryEngine engine(opts, &disk);
    Random rng(8);
    (void)engine.Execute(MakeCreate(kInput, Slice(rng.Bytes(out_bytes))));
    RecoverableApp app(&engine, kApp, 256, logical);
    Status st = app.Init(1);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    uint64_t before = engine.stats().op_log_bytes;
    state.ResumeTiming();

    for (int i = 0; i < kSteps; ++i) {
      (void)app.Step(i);
      (void)app.Absorb(kInput);
      (void)app.Emit(kOutBase + (i % 8), out_bytes, i);
    }

    state.PauseTiming();
    log_bytes = engine.stats().op_log_bytes - before;
    emits = kSteps;
    state.ResumeTiming();
  }
  state.counters["log_bytes_total"] = static_cast<double>(log_bytes);
  state.counters["log_bytes_per_emit"] =
      static_cast<double>(log_bytes) / static_cast<double>(emits);
  state.counters["output_bytes"] = static_cast<double>(out_bytes);
  state.SetLabel(logical ? "W_L-logical" : "W_P-physical[7]");
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_AppPipeline)
    ->ArgsProduct({{1024, 8192, 65536, 262144}, {0, 1}})
    ->ArgNames({"outsize", "logical"});

BENCHMARK_MAIN();
