// E7 (Section 1, "Database Recovery"): B-tree splits under logical vs
// physiological logging.
//
// The paper's claim: "a logical split operation avoids the need to log
// the contents of the new B-tree node". The logical split here is one
// atomic operation over {old page, new page, parent, meta} logging only
// identifiers; the physiological baseline logs a truncate delta plus the
// new page's full image. Reported: log bytes per split (and per insert)
// as page size grows, plus insert throughput.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "domains/btree/btree.h"
#include "engine/recovery_engine.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

void BM_BtreeInsert(benchmark::State& state) {
  const size_t page_bytes = static_cast<size_t>(state.range(0));
  const bool logical = state.range(1) != 0;
  constexpr int kInserts = 2000;

  uint64_t splits = 0, log_bytes = 0;
  uint64_t inserts_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    EngineOptions eopts;
    eopts.purge_threshold_ops = 64;
    RecoveryEngine engine(eopts, &disk);
    BtreeOptions bopts;
    bopts.max_page_bytes = page_bytes;
    bopts.logical_splits = logical;
    Btree tree(&engine, bopts);
    Status st = tree.Open();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    Random rng(11);
    uint64_t before = engine.stats().op_log_bytes;
    state.ResumeTiming();

    for (int i = 0; i < kInserts; ++i) {
      st = tree.Insert(rng.Next(), "value-payload-0123456789");
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }

    state.PauseTiming();
    splits = tree.stats().splits;
    log_bytes = engine.stats().op_log_bytes - before;
    inserts_done += kInserts;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(inserts_done));
  state.counters["splits"] = static_cast<double>(splits);
  state.counters["log_bytes_per_insert"] =
      static_cast<double>(log_bytes) / kInserts;
  state.counters["log_bytes_per_split"] =
      splits == 0 ? 0 : static_cast<double>(log_bytes) / splits;
  state.SetLabel(logical ? "logical-splits" : "physiological-splits");
}

// Merge phase: erase-heavy traffic shrinks the tree through single-
// operation leaf merges; freed pages are recycled. Logical merges, like
// logical splits, log only identifiers.
void BM_BtreeEraseMerge(benchmark::State& state) {
  const size_t page_bytes = static_cast<size_t>(state.range(0));
  constexpr int kKeys = 1500;

  uint64_t merges = 0, reused = 0, log_bytes = 0, live = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    EngineOptions eopts;
    eopts.purge_threshold_ops = 64;
    RecoveryEngine engine(eopts, &disk);
    BtreeOptions bopts;
    bopts.max_page_bytes = page_bytes;
    Btree tree(&engine, bopts);
    Status st = tree.Open();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    for (int k = 0; k < kKeys; ++k) {
      st = tree.Insert(k, "value-payload-0123456789");
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    uint64_t before = engine.stats().op_log_bytes;
    state.ResumeTiming();

    for (int k = 0; k < kKeys - 50; ++k) {
      st = tree.Erase(k);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    // Refill: splits should serve from the free list.
    for (int k = 10'000; k < 10'000 + kKeys / 2; ++k) {
      st = tree.Insert(k, "value-payload-0123456789");
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }

    state.PauseTiming();
    merges = tree.stats().merges;
    reused = tree.stats().pages_reused;
    live = tree.live_pages();
    log_bytes = engine.stats().op_log_bytes - before;
    state.ResumeTiming();
  }
  state.counters["merges"] = static_cast<double>(merges);
  state.counters["pages_reused"] = static_cast<double>(reused);
  state.counters["live_pages"] = static_cast<double>(live);
  state.counters["log_bytes"] = static_cast<double>(log_bytes);
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_BtreeInsert)
    ->ArgsProduct({{1024, 4096, 16384, 65536}, {0, 1}})
    ->ArgNames({"pagesize", "logical"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(loglog::BM_BtreeEraseMerge)
    ->Arg(1024)
    ->Arg(4096)
    ->ArgNames({"pagesize"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
