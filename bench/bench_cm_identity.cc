// E4 (Section 4 "Comparing Costs"): cache-manager identity writes vs
// flush transactions vs shadows for multi-object atomic flush sets.
//
// The paper's argument: a flush transaction logs every object value plus
// a commit and must quiesce the system; identity writes log all but one
// value (the largest is spared), need no quiesce, and write each object
// once. Shadows write out of place and add a pointer swing, destroying
// sequentiality. Workload: a logical operation writing k objects at once
// (k is the atomic-set size), repeated; flush after each. Reported: log
// bytes, device writes, quiesce events per flush, per policy and k.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/recovery_engine.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

constexpr FuncId kFanoutFn = kFuncFirstCustom + 300;
constexpr size_t kObjectBytes = 1024;
constexpr int kFlushes = 20;

void RegisterFanout() {
  FunctionRegistry::Global().Register(
      kFanoutFn,
      [](const OperationDesc& op, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        // Deterministically derive k outputs from the input object.
        for (size_t i = 0; i < writes->size(); ++i) {
          ObjectValue v = reads[0];
          for (uint8_t& b : v) b = static_cast<uint8_t>(b + i + op.params[0]);
          (*writes)[i] = std::move(v);
        }
        return Status::OK();
      });
}

void BM_AtomicFlushPolicies(benchmark::State& state) {
  const auto policy = static_cast<FlushPolicy>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  RegisterFanout();

  EngineOptions opts;
  opts.graph_kind = GraphKind::kRefined;
  opts.flush_policy = policy;
  opts.purge_threshold_ops = 0;  // flush explicitly

  IoStats io;
  uint64_t log_bytes = 0, identity_writes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    RecoveryEngine engine(opts, &disk);
    Random rng(3);
    (void)engine.Execute(MakeCreate(1, Slice(rng.Bytes(kObjectBytes))));
    (void)engine.FlushAll();
    IoStats before = disk.stats();
    uint64_t log_before = engine.stats().op_log_bytes;
    state.ResumeTiming();

    for (int f = 0; f < kFlushes; ++f) {
      OperationDesc op;
      op.op_class = OpClass::kLogical;
      op.func = kFanoutFn;
      op.reads = {1};
      op.params = {static_cast<uint8_t>(f)};
      for (int i = 0; i < k; ++i) op.writes.push_back(10 + i);
      Status st = engine.Execute(op);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
      (void)engine.FlushAll();
    }

    state.PauseTiming();
    io = disk.stats().Delta(before);
    // Identity-write records count as op log bytes; flush-txn value
    // records count via the device's log bytes.
    log_bytes = io.log_bytes + (engine.stats().op_log_bytes - log_before);
    identity_writes = engine.cache().stats().identity_writes;
    state.ResumeTiming();
  }
  double per = kFlushes;
  state.counters["obj_writes_per_flush"] =
      static_cast<double>(io.object_writes) / per;
  state.counters["atomic_multi_per_flush"] =
      static_cast<double>(io.atomic_multi_writes) / per;
  state.counters["shadow_swings_per_flush"] =
      static_cast<double>(io.shadow_pointer_swings) / per;
  state.counters["quiesce_per_flush"] =
      static_cast<double>(io.quiesce_events) / per;
  state.counters["log_bytes_per_flush"] = static_cast<double>(log_bytes) / per;
  state.counters["identity_writes"] = static_cast<double>(identity_writes);
  switch (policy) {
    case FlushPolicy::kNativeAtomic:
      state.SetLabel("native-atomic");
      break;
    case FlushPolicy::kIdentityWrites:
      state.SetLabel("identity-writes");
      break;
    case FlushPolicy::kFlushTransaction:
      state.SetLabel("flush-transaction");
      break;
    case FlushPolicy::kShadow:
      state.SetLabel("shadow");
      break;
  }
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_AtomicFlushPolicies)
    ->ArgsProduct({{static_cast<long>(loglog::FlushPolicy::kNativeAtomic),
                    static_cast<long>(loglog::FlushPolicy::kIdentityWrites),
                    static_cast<long>(loglog::FlushPolicy::kFlushTransaction),
                    static_cast<long>(loglog::FlushPolicy::kShadow)},
                   {2, 4, 8, 16}})
    ->ArgNames({"policy", "k"});

BENCHMARK_MAIN();
