// E8 (Section 4, cycle example): the application-recovery operation mix
// (a) Y=f(X,Y); (b) X=g(Y); (c) Y=h(Y) creates rW cycles that collapse
// into multi-object flush sets; identity writes break them apart with
// bounded extra logging, while flush transactions pay quiesces and log
// every value.
//
// Reported: cycle collapses, identity writes injected and their logged
// bytes, flush transactions and their logged bytes, as the frequency of
// the cycle-closing operation (c) is swept.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

void BM_CycleBreaking(benchmark::State& state) {
  const auto policy = static_cast<FlushPolicy>(state.range(0));
  const int c_percent = static_cast<int>(state.range(1));
  constexpr int kPairs = 16;
  constexpr int kRounds = 30;
  constexpr size_t kObjBytes = 512;

  uint64_t cycles = 0, identity = 0, identity_bytes = 0;
  uint64_t ftxns = 0, ftxn_bytes = 0, quiesce = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    EngineOptions opts;
    opts.graph_kind = GraphKind::kRefined;
    opts.flush_policy = policy;
    opts.purge_threshold_ops = 20;
    RecoveryEngine engine(opts, &disk);
    Random rng(31);
    for (int p = 0; p < kPairs; ++p) {
      (void)engine.Execute(
          MakeCreate(10 + 2 * p, Slice(rng.Bytes(kObjBytes))));
      (void)engine.Execute(
          MakeCreate(11 + 2 * p, Slice(rng.Bytes(kObjBytes))));
    }
    (void)engine.FlushAll();
    state.ResumeTiming();

    for (int round = 0; round < kRounds; ++round) {
      for (int p = 0; p < kPairs; ++p) {
        ObjectId x = 10 + 2 * p, y = 11 + 2 * p;
        (void)engine.Execute(MakeAppRead(y, x));  // (a)
        (void)engine.Execute(
            MakeAppWrite(y, x, kObjBytes, round));  // (b)
        if (static_cast<int>(rng.Uniform(100)) < c_percent) {
          (void)engine.Execute(MakeAppExecute(y, round));  // (c)
        }
      }
    }
    (void)engine.FlushAll();

    state.PauseTiming();
    cycles = engine.cache().graph().stats().cycle_collapses;
    identity = engine.cache().stats().identity_writes;
    identity_bytes = engine.cache().stats().identity_bytes_logged;
    ftxns = engine.cache().stats().flush_txns;
    ftxn_bytes = engine.cache().stats().flush_txn_bytes_logged;
    quiesce = disk.stats().quiesce_events;
    state.ResumeTiming();
  }
  state.counters["cycle_collapses"] = static_cast<double>(cycles);
  state.counters["identity_writes"] = static_cast<double>(identity);
  state.counters["identity_bytes"] = static_cast<double>(identity_bytes);
  state.counters["flush_txns"] = static_cast<double>(ftxns);
  state.counters["ftxn_bytes"] = static_cast<double>(ftxn_bytes);
  state.counters["quiesce"] = static_cast<double>(quiesce);
  state.SetLabel(policy == FlushPolicy::kIdentityWrites
                     ? "identity-writes"
                     : (policy == FlushPolicy::kFlushTransaction
                            ? "flush-transaction"
                            : "native-atomic"));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_CycleBreaking)
    ->ArgsProduct(
        {{static_cast<long>(loglog::FlushPolicy::kNativeAtomic),
          static_cast<long>(loglog::FlushPolicy::kIdentityWrites),
          static_cast<long>(loglog::FlushPolicy::kFlushTransaction)},
         {0, 25, 75}})
    ->ArgNames({"policy", "cPct"});

BENCHMARK_MAIN();
