// E3 (Figure 7 / Section 3): in W, |vars(n)| grows monotonically until
// the node flushes; in rW, blind writes peel objects out of vars, so
// flush sets stay small.
//
// Workload: the mixed application/file/database workload with a varying
// share of blind writes (physical overwrites and logical W_L writes).
// Reported: mean/p99/max atomic flush set size and objects installed
// without being flushed, for W vs rW.

#include <benchmark/benchmark.h>

#include "engine/recovery_engine.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

void BM_FlushSetSizes(benchmark::State& state) {
  const bool refined = state.range(0) != 0;
  const int blind_weight = static_cast<int>(state.range(1));
  constexpr int kOps = 1500;

  EngineOptions opts;
  opts.graph_kind = refined ? GraphKind::kRefined : GraphKind::kW;
  opts.flush_policy = FlushPolicy::kNativeAtomic;
  opts.purge_threshold_ops = 64;

  MixedWorkloadOptions wopts;
  wopts.seed = 17;
  wopts.w_physical = blind_weight;   // blind page overwrites
  wopts.w_app_write = blind_weight;  // blind logical writes

  double mean_set = 0, p99_set = 0, max_set = 0, unflushed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    RecoveryEngine engine(opts, &disk);
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      (void)engine.Execute(op);
    }
    state.ResumeTiming();
    for (int i = 0; i < kOps; ++i) {
      Status st = engine.Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) {
        state.SkipWithError(st.ToString().c_str());
        break;
      }
    }
    (void)engine.FlushAll();
    const CacheStats& cs = engine.cache().stats();
    mean_set = cs.flush_set_sizes.mean();
    p99_set = static_cast<double>(cs.flush_set_sizes.Percentile(0.99));
    max_set = static_cast<double>(cs.flush_set_sizes.max());
    unflushed = static_cast<double>(cs.installed_without_flush);
  }
  state.counters["flush_set_mean"] = mean_set;
  state.counters["flush_set_p99"] = p99_set;
  state.counters["flush_set_max"] = max_set;
  state.counters["installed_without_flush"] = unflushed;
  state.SetLabel(refined ? "rW" : "W");
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_FlushSetSizes)
    ->ArgsProduct({{0, 1}, {1, 3, 6}})
    ->ArgNames({"rW", "blindw"});

BENCHMARK_MAIN();
