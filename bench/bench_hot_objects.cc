// E11 (Section 4, ablation): install-without-flush for hot objects.
//
// "Hot objects will need to be retained in the cache in any event.
// Hence, we can decide to merely install operations on them via logging,
// without flushing them immediately, further reducing I/O cost."
//
// Workload: a small set of hot pages hammered by physiological updates
// amid background work, with aggressive automatic purging. With the hot
// set marked, installation proceeds by identity-write logging and the
// hot pages are flushed once at the end; unmarked, every purge cycle
// writes them to the stable store. Reported: stable-store object writes,
// identity-write log bytes, and retained log size after a checkpoint.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

void BM_HotObjects(benchmark::State& state) {
  const bool mark_hot = state.range(0) != 0;
  const size_t page_bytes = static_cast<size_t>(state.range(1));
  constexpr int kHotPages = 4;
  constexpr int kUpdates = 600;

  uint64_t obj_writes = 0, obj_bytes = 0, identity_bytes = 0,
           retained = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    EngineOptions opts;
    opts.flush_policy = FlushPolicy::kIdentityWrites;
    opts.purge_threshold_ops = 8;       // aggressive purging
    opts.checkpoint_interval_ops = 100;  // periodic hot installs
    RecoveryEngine engine(opts, &disk);
    Random rng(5);
    for (int p = 0; p < kHotPages; ++p) {
      (void)engine.Execute(
          MakeCreate(10 + p, Slice(rng.Bytes(page_bytes))));
      if (mark_hot) engine.MarkHot(10 + p, true);
    }
    (void)engine.FlushAll();
    IoStats before = disk.stats();
    state.ResumeTiming();

    for (int i = 0; i < kUpdates; ++i) {
      ObjectId page = 10 + (i % kHotPages);
      Status st = engine.Execute(
          MakeDelta(page, rng.Uniform(page_bytes - 8), Slice(rng.Bytes(8))));
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    (void)engine.Checkpoint();

    state.PauseTiming();
    IoStats io = disk.stats().Delta(before);
    obj_writes = io.object_writes;
    obj_bytes = io.object_bytes_written;
    identity_bytes = engine.cache().stats().identity_bytes_logged;
    retained = disk.log().retained_bytes();
    // Final drain so both configurations end durable.
    (void)engine.FlushAll();
    state.ResumeTiming();
  }
  state.counters["obj_writes"] = static_cast<double>(obj_writes);
  state.counters["obj_bytes_written"] = static_cast<double>(obj_bytes);
  state.counters["identity_log_bytes"] =
      static_cast<double>(identity_bytes);
  state.counters["retained_log_bytes"] = static_cast<double>(retained);
  state.SetLabel(mark_hot ? "hot-marked(install-no-flush)"
                          : "unmarked(flush-per-purge)");
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_HotObjects)
    ->ArgsProduct({{0, 1}, {1024, 8192, 65536}})
    ->ArgNames({"hot", "pagesize"});

BENCHMARK_MAIN();
