// E18 (raw-speed WAL hot path): what the zero-copy rework buys at the
// append layer itself, measured three ways.
//
//   AppendLegacy/threads:N       the old shape: build a LogRecord (heap
//                                vectors and all), hand it to Append —
//                                encoding happens under the manager lock;
//   AppendReserveFill/threads:N  the reserve+fill path: exact-size slot
//                                under the lock, encode + CRC outside it;
//   Crc32c*/len:L                CRC32C throughput per kernel — scalar
//                                table, slice-by-8, and the dispatched
//                                fast path (hardware where available);
//   ForceCommit/async:A          per-commit durability latency on a slow
//                                device: synchronous Force pays the full
//                                device latency per commit, async submit
//                                overlaps the waits (io_uring style).
//
// Merged into BENCH_hot_path.json by bench/run_benches.sh; the CI
// perf-smoke step runs this binary with --smoke.

#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

// Drain cadence: forces stay on the measured path (durability is part
// of the append cost) but amortize over a group-commit batch.
constexpr int kForceEvery = 4096;

std::string Payload(size_t valbytes, int thread) {
  std::string s(valbytes, static_cast<char>('a' + (thread % 26)));
  return s;
}

// Faithful reproduction of the seed append pipeline this PR replaced:
// whole LogRecords buffered behind one mutex, and a force path that
// encodes, frames, and checksums every buffered record — with the
// byte-at-a-time table CRC the seed shipped. This is the "old Append"
// baseline the speedup claims in EXPERIMENTS.md E18 are against.
class LegacyLogBuffer {
 public:
  explicit LegacyLogBuffer(StableLogDevice* device) : device_(device) {}

  Lsn Append(LogRecord rec) {
    std::lock_guard<std::mutex> lock(mu_);
    rec.lsn = next_lsn_++;
    buffer_.push_back(std::move(rec));
    return buffer_.back().lsn;
  }

  Status ForceAll() {
    std::lock_guard<std::mutex> lock(mu_);
    if (buffer_.empty()) return Status::OK();
    // The policy walk, as the seed's Force ran it: a full scratch encode
    // per record (EncodedSize) just to size the batch.
    size_t batch_bytes = 0;
    for (const LogRecord& rec : buffer_) {
      batch_bytes += rec.EncodedSize() + 8;
    }
    std::vector<uint8_t> out;
    out.reserve(batch_bytes);
    for (const LogRecord& rec : buffer_) {
      // FrameRecord, as the seed shipped it: a fresh payload vector per
      // record (encode number three), then the byte-at-a-time table CRC.
      std::vector<uint8_t> payload;
      rec.EncodeTo(&payload);
      uint8_t header[8];
      EncodeFixed32(header, static_cast<uint32_t>(payload.size()));
      EncodeFixed32(header + 4, Crc32cExtendScalar(0, Slice(payload)));
      out.insert(out.end(), header, header + 8);
      out.insert(out.end(), payload.begin(), payload.end());
    }
    buffer_.clear();
    Status st = device_->Append(Slice(out));
    // Checkpoint-style truncation keeps the simulated platter at its
    // steady-state size; without it the measurement drifts with the
    // device vector's growth instead of the append pipeline's cost.
    device_->TruncatePrefix(device_->end_offset());
    return st;
  }

 private:
  StableLogDevice* device_;
  std::mutex mu_;
  std::deque<LogRecord> buffer_;
  Lsn next_lsn_ = 1;
};

SimulatedDisk* g_disk = nullptr;
LegacyLogBuffer* g_legacy = nullptr;
LogManager* g_log = nullptr;

void BM_AppendLegacy(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_disk = new SimulatedDisk();
    g_disk->log().set_archive_enabled(false);  // no reference replay here
    g_legacy = new LegacyLogBuffer(&g_disk->log());
  }
  const OperationDesc op = MakePhysicalWrite(
      static_cast<ObjectId>(state.thread_index() + 1),
      Payload(static_cast<size_t>(state.range(0)), state.thread_index()));
  int since_force = 0;
  for (auto _ : state) {
    LogRecord rec;
    rec.type = RecordType::kOperation;
    rec.op = op;
    // The seed's executors also charged logging-cost stats per record via
    // LogRecord::EncodedSize() — a full scratch encode on the hot path
    // (the new appenders return the payload size from the reservation
    // instead). Part of what the old pipeline paid per logged op.
    benchmark::DoNotOptimize(rec.EncodedSize());
    Lsn lsn = g_legacy->Append(std::move(rec));
    benchmark::DoNotOptimize(lsn);
    if (++since_force >= kForceEvery) {
      since_force = 0;
      benchmark::DoNotOptimize(g_legacy->ForceAll());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(g_legacy->ForceAll());
    delete g_legacy;
    delete g_disk;
    g_legacy = nullptr;
    g_disk = nullptr;
  }
}
BENCHMARK(BM_AppendLegacy)
    ->ArgName("valbytes")
    ->Arg(64)
    ->Arg(1024)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

// The zero-copy path: exact-size reservation under the lock, body
// encode and CRC (dispatched kernel) in the caller's thread, no
// LogRecord anywhere.
void BM_AppendReserveFill(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_disk = new SimulatedDisk();
    g_disk->log().set_archive_enabled(false);  // no reference replay here
    g_log = new LogManager(&g_disk->log());
    g_log->set_force_policy(ForcePolicy::kGroup);
  }
  const OperationDesc op = MakePhysicalWrite(
      static_cast<ObjectId>(state.thread_index() + 1),
      Payload(static_cast<size_t>(state.range(0)), state.thread_index()));
  const std::vector<UndoImage> no_images;
  int since_force = 0;
  for (auto _ : state) {
    Lsn lsn = g_log->AppendOperation(op, 0, kInvalidLsn, no_images);
    benchmark::DoNotOptimize(lsn);
    if (++since_force >= kForceEvery) {
      since_force = 0;
      benchmark::DoNotOptimize(g_log->ForceAll());
      g_log->TruncateBefore(g_log->last_stable_lsn());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(g_log->ForceAll());
    delete g_log;
    delete g_disk;
    g_log = nullptr;
    g_disk = nullptr;
  }
}
BENCHMARK(BM_AppendReserveFill)
    ->ArgName("valbytes")
    ->Arg(64)
    ->Arg(1024)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

std::vector<uint8_t> CrcBuffer(size_t len) {
  std::vector<uint8_t> buf(len);
  uint32_t x = 0x9e3779b9;
  for (size_t i = 0; i < len; ++i) {
    x = x * 1664525u + 1013904223u;
    buf[i] = static_cast<uint8_t>(x >> 24);
  }
  return buf;
}

template <uint32_t (*Kernel)(uint32_t, Slice)>
void CrcBench(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  const std::vector<uint8_t> buf = CrcBuffer(len);
  const Slice data(buf.data(), len);
  for (auto _ : state) {
    uint32_t crc = Kernel(0, data);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}

void BM_Crc32cScalar(benchmark::State& state) {
  CrcBench<&Crc32cExtendScalar>(state);
}
void BM_Crc32cSliceBy8(benchmark::State& state) {
  CrcBench<&Crc32cExtendSliceBy8>(state);
}
// The dispatched entry point — hardware when the CPU has it, slice-by-8
// otherwise. This is what the WAL actually calls.
void BM_Crc32cFast(benchmark::State& state) {
  CrcBench<&Crc32cExtend>(state);
  state.SetLabel(Crc32cKernelName(Crc32cActiveKernel()));
}
BENCHMARK(BM_Crc32cScalar)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Crc32cSliceBy8)->Arg(4096)->Arg(65536);
BENCHMARK(BM_Crc32cFast)->Arg(4096)->Arg(65536);

// Per-commit durability latency on a device with real latency. Sync:
// every commit submits its force and sleeps the full device delay.
// Async: commits of a batch submit eagerly as records fill; the single
// durability point reaps completions whose delays overlapped, so the
// batch pays roughly one device latency instead of one per commit.
void BM_ForceCommit(benchmark::State& state) {
  const bool async = state.range(0) != 0;
  constexpr int kTxnsPerBatch = 8;
  constexpr uint64_t kDeviceLatencyUs = 50;
  SimulatedDisk disk;
  disk.log().set_append_latency_us(kDeviceLatencyUs);
  LogManager log(&disk.log());
  log.set_force_policy(ForcePolicy::kGroup);
  if (async) log.set_async_submit(1);
  const OperationDesc op = MakePhysicalWrite(1, Payload(64, 0));
  const std::vector<UndoImage> no_images;
  for (auto _ : state) {
    Lsn last = 0;
    for (int t = 0; t < kTxnsPerBatch; ++t) {
      last = log.AppendOperation(op, 0, kInvalidLsn, no_images);
      if (!async) {
        Status st = log.Force(last);
        benchmark::DoNotOptimize(st);
      }
    }
    Status st = log.WaitStable(last);
    benchmark::DoNotOptimize(st);
    if (log.last_stable_lsn() != last) {
      state.SkipWithError("batch not stable");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * kTxnsPerBatch);
  state.counters["txns_per_batch"] = kTxnsPerBatch;
}
BENCHMARK(BM_ForceCommit)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("async")
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace loglog

// Custom main so CI can say `bench_hot_path --smoke`: the flag becomes
// a minimum-duration run, everything else passes through to the
// benchmark library untouched.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  static char min_time[] = "--benchmark_min_time=0.01";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (smoke) args.push_back(min_time);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
