// E12 (Section 5, ablation): the value of logging installations.
//
// "We capture these opportunities to advance object rSI's by logging the
// installation of each node." Install records are lazily logged (never
// forced); losing them costs only extra redo. This ablation turns them
// off entirely: the analysis pass then sees stale rSIs and the redo scan
// lengthens. Reported: install records written, analysis scan start,
// operations redone and recovery time, with install logging on and off.

#include <benchmark/benchmark.h>

#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

void BM_InstallLogging(benchmark::State& state) {
  const bool log_installs = state.range(0) != 0;
  constexpr int kOps = 1200;

  RecoveryStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.log_installs = log_installs;
    opts.redo_test = RedoTestKind::kRsiGeneralized;
    opts.purge_threshold_ops = 24;
    opts.checkpoint_interval_ops = 300;
    CrashHarness harness(opts, 31337);
    MixedWorkloadOptions wopts;
    wopts.seed = 31337;
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      (void)harness.Execute(op);
    }
    for (int i = 0; i < kOps; ++i) {
      Status st = harness.Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) {
        state.SkipWithError(st.ToString().c_str());
      }
    }
    (void)harness.engine().log().ForceAll();
    harness.Crash();
    stats = RecoveryStats();
    state.ResumeTiming();

    Status st = harness.Recover(&stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    st = harness.VerifyAgainstReference();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
  }
  state.counters["records_scanned"] =
      static_cast<double>(stats.records_scanned);
  state.counters["ops_redone"] = static_cast<double>(stats.ops_redone);
  state.counters["skip_installed"] =
      static_cast<double>(stats.ops_skipped_installed);
  state.counters["redo_start"] = static_cast<double>(stats.redo_start);
  state.SetLabel(log_installs ? "install-records-on"
                              : "install-records-off");
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_InstallLogging)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"on"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
