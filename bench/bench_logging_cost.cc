// E1 (Figure 1a vs 1b): logging cost of logical vs physiological
// operations as object size grows.
//
// The paper's claim: a logical log record carries identifiers and a
// transform id (tens of bytes), while the physiological/physical record
// must carry a value the size of the object. The savings therefore grow
// linearly with object size. Reported series: bytes logged per operation
// for application reads, logical application writes, file copies and
// file sorts, under both logging modes.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

constexpr ObjectId kApp = 1;
constexpr ObjectId kSrc = 2;
constexpr ObjectId kDst = 3;

enum OpKind : int64_t { kAppRead = 0, kAppWrite, kCopy, kSort };

const char* KindName(int64_t kind) {
  switch (kind) {
    case kAppRead:
      return "R(A,X)";
    case kAppWrite:
      return "W_L(A,X)";
    case kCopy:
      return "copy";
    case kSort:
      return "sort";
  }
  return "?";
}

void BM_LoggingCost(benchmark::State& state) {
  const size_t obj_size = static_cast<size_t>(state.range(0));
  const bool logical = state.range(1) != 0;
  const int64_t kind = state.range(2);

  EngineOptions opts;
  opts.logging_mode =
      logical ? LoggingMode::kLogical : LoggingMode::kPhysiological;
  opts.purge_threshold_ops = 64;

  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  Random rng(42);
  // Sort operates on 16-byte records.
  size_t payload = (obj_size / 16) * 16;
  (void)engine.Execute(MakeCreate(kApp, Slice(rng.Bytes(256))));
  (void)engine.Execute(MakeCreate(kSrc, Slice(rng.Bytes(payload))));
  (void)engine.Execute(MakeCreate(kDst, Slice(rng.Bytes(payload))));

  uint64_t ops = 0;
  uint64_t bytes_before = engine.stats().op_log_bytes;
  for (auto _ : state) {
    Status st;
    switch (kind) {
      case kAppRead:
        st = engine.Execute(MakeAppRead(kApp, kSrc));
        break;
      case kAppWrite:
        st = engine.Execute(MakeAppWrite(kApp, kDst, payload, ops));
        break;
      case kCopy:
        st = engine.Execute(MakeCopy(kDst, kSrc));
        break;
      case kSort:
        st = engine.Execute(MakeSort(kDst, kSrc, 16));
        break;
    }
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    ++ops;
  }
  uint64_t logged = engine.stats().op_log_bytes - bytes_before;
  state.counters["log_bytes_per_op"] =
      ops == 0 ? 0 : static_cast<double>(logged) / static_cast<double>(ops);
  state.counters["object_bytes"] = static_cast<double>(payload);
  state.SetLabel(std::string(KindName(kind)) + "/" +
                 (logical ? "logical" : "physiological"));
}

// E-next (group-commit WAL batching): device forces per 1k committed
// operations under each ForcePolicy. Obligations accumulate while the
// workload runs; every `cycle` operations a flush pass drains the dirty
// set, and each flushed node forces the WAL up to its newest operation.
// Under kImmediate every one of those forces is its own device append;
// group commit coalesces the whole volatile buffer into the cycle's
// first force, turning the rest into no-ops; kSizeThreshold does the
// same up to a byte budget. Reported: forces_per_1k_ops (the
// figure-of-merit in BENCH_recovery.json) and records coalesced per op.
void BM_ForcePolicy(benchmark::State& state) {
  const int64_t policy = state.range(0);
  const int64_t cycle = state.range(1);

  EngineOptions opts;
  opts.flush_policy = FlushPolicy::kNativeAtomic;
  opts.purge_threshold_ops = 0;      // no incremental purge:
  opts.checkpoint_interval_ops = 0;  // the flush cycle drains instead
  opts.wal_force_policy = static_cast<ForcePolicy>(policy);
  opts.wal_group_bytes = 1 << 12;

  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  MixedWorkloadOptions wopts;
  wopts.seed = 4242;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    (void)engine.Execute(op);
  }
  if (Status st = engine.FlushAll(); !st.ok()) {
    state.SkipWithError(st.ToString().c_str());
  }

  uint64_t ops = 0;
  uint64_t forces_before = disk.stats().log_forces;
  uint64_t coalesced_before = engine.log().records_coalesced();
  for (auto _ : state) {
    Status st = engine.Execute(workload.Next());
    if (!st.ok() && !st.IsNotFound()) {
      state.SkipWithError(st.ToString().c_str());
    }
    ++ops;
    if (ops % static_cast<uint64_t>(cycle) == 0) {
      st = engine.FlushAll();
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
  }
  uint64_t forces = disk.stats().log_forces - forces_before;
  uint64_t coalesced = engine.log().records_coalesced() - coalesced_before;
  state.counters["forces_per_1k_ops"] =
      ops == 0 ? 0
               : 1000.0 * static_cast<double>(forces) /
                     static_cast<double>(ops);
  state.counters["coalesced_per_op"] =
      ops == 0 ? 0
               : static_cast<double>(coalesced) / static_cast<double>(ops);
  const char* name = "?";
  switch (opts.wal_force_policy) {
    case ForcePolicy::kImmediate:
      name = "immediate";
      break;
    case ForcePolicy::kGroup:
      name = "group";
      break;
    case ForcePolicy::kSizeThreshold:
      name = "size-threshold";
      break;
  }
  state.SetLabel("force/" + std::string(name) + "/cycle" +
                 std::to_string(cycle));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_ForcePolicy)
    ->ArgsProduct({{static_cast<int64_t>(loglog::ForcePolicy::kImmediate),
                    static_cast<int64_t>(loglog::ForcePolicy::kGroup),
                    static_cast<int64_t>(loglog::ForcePolicy::kSizeThreshold)},
                   {16, 64}})
    ->ArgNames({"policy", "cycle"});

BENCHMARK(loglog::BM_LoggingCost)
    ->ArgsProduct({{256, 1024, 4096, 16384, 65536, 262144},
                   {0, 1},
                   {loglog::kAppRead, loglog::kAppWrite, loglog::kCopy,
                    loglog::kSort}})
    ->ArgNames({"objsize", "logical", "op"});

BENCHMARK_MAIN();
