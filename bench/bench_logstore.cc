// E20 (log as database): what dropping the second write of the data
// buys, what reading from the log costs, and what compaction cadence
// does to space amplification.
//
// The dual-write backend pays for every object twice — once into the
// log, once into the stable store at install. The log-store backend
// installs by *pointing* (a LogIndex publish against the forced log
// bytes), so the data is written exactly once. Three series:
//
//   WriteThroughput  ops/sec per backend, with the simulated device
//                    both free (io:0, pure CPU) and charging a per-I/O
//                    latency (io:1, the paper's cost model — I/Os
//                    dominate). Acceptance: kLogStore >= 1.5x
//                    kDualWrite under the device model.
//   Read             per-read cost by source: cache hit, log (hot
//                    window) fault-in, cold-tier fault-in.
//   SpaceAmp         total device footprint (hot window + retained cold
//                    segments) over live bytes, as the compaction
//                    cadence varies, with archive retention set to
//                    GC-below-oldest-live (cold_retention_full=false).
//                    A skewed workload — most objects written once, a
//                    hot few overwritten forever — makes the stakes
//                    real: without compaction the cold-resident live
//                    images pin the whole archive and the footprint
//                    grows with history; a steady cadence rewrites them
//                    forward so checkpoints release the dead prefix.
//                    Acceptance: < 2x under steady compaction.
//
// `--smoke` (the bench_logstore_smoke ctest entry) runs every shape at
// minimum duration — a pipeline check, not a measurement.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "engine/recovery_engine.h"
#include "logstore/compactor.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

constexpr int kObjects = 64;
constexpr int kPayloadBytes = 256;
// Device model for io:1 rows: a few microseconds per object install and
// per log force, identical for both backends — only the I/O *count*
// differs.
constexpr uint32_t kStoreWriteUs = 2;
constexpr uint64_t kLogAppendUs = 2;

std::string Payload(int round, ObjectId id) {
  std::string s = "r" + std::to_string(round) + "-o" + std::to_string(id) +
                  "-";
  s.resize(kPayloadBytes, 'x');
  return s;
}

EngineOptions BaseOpts(StorageBackend backend) {
  EngineOptions opts;
  opts.backend = backend;
  opts.flush_policy = FlushPolicy::kNativeAtomic;
  opts.purge_threshold_ops = 16;
  opts.checkpoint_interval_ops = 256;
  return opts;
}

// Steady overwrite stream: `ops` writes round-robin over kObjects, all
// full images (the builders' kPhysical class), installs riding the
// purge cadence.
Status RunWrites(RecoveryEngine* engine, int ops) {
  for (int i = 0; i < ops; ++i) {
    Status st = engine->Execute(
        MakePhysicalWrite(1 + (i % kObjects), Payload(i / kObjects, i)));
    if (!st.ok()) return st;
  }
  return engine->FlushAll();
}

void BM_LogstoreWriteThroughput(benchmark::State& state) {
  const StorageBackend backend = state.range(0) == 0
                                     ? StorageBackend::kDualWrite
                                     : StorageBackend::kLogStore;
  const bool device_model = state.range(1) != 0;
  constexpr int kOps = 600;

  uint64_t object_writes = 0;
  uint64_t log_bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    if (device_model) {
      disk.store().set_sim_latency(/*read_us=*/kStoreWriteUs,
                                   /*write_us=*/kStoreWriteUs);
      disk.log().set_append_latency_us(kLogAppendUs);
    }
    RecoveryEngine engine(BaseOpts(backend), &disk);
    state.ResumeTiming();

    Status st = RunWrites(&engine, kOps);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    object_writes = disk.stats().object_writes +
                    disk.stats().objects_in_atomic_writes;
    log_bytes = disk.stats().log_bytes;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kOps);
  state.counters["object_writes"] = static_cast<double>(object_writes);
  state.counters["log_kb"] = static_cast<double>(log_bytes) / 1024.0;
  state.SetLabel(std::string(backend == StorageBackend::kLogStore
                                 ? "logstore"
                                 : "dual-write") +
                 (device_model ? "/device" : "/cpu"));
}

void BM_LogstoreRead(benchmark::State& state) {
  // source 0 = cache hit, 1 = hot-window log fault-in, 2 = cold tier.
  const int source = static_cast<int>(state.range(0));

  SimulatedDisk disk;
  RecoveryEngine engine(BaseOpts(StorageBackend::kLogStore), &disk);
  for (ObjectId id = 1; id <= kObjects; ++id) {
    Status st = engine.Execute(MakePhysicalWrite(id, Payload(0, id)));
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  Status st = engine.FlushAll();
  if (st.ok() && source == 2) {
    // Checkpoint truncation spills the live images below the horizon to
    // the cold tier (the floor deliberately ignores LogIndex::MinLsn).
    st = engine.Checkpoint();
    if (st.ok() && disk.log().cold_tier().total_bytes() == 0) {
      st = Status::Corruption("images did not spill cold");
    }
  }
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());

  ObjectValue value;
  for (auto _ : state) {
    if (source != 0) {
      state.PauseTiming();
      engine.cache().EvictTo(0);
      state.ResumeTiming();
    }
    for (ObjectId id = 1; id <= kObjects; ++id) {
      Status rst = engine.Read(id, &value);
      if (!rst.ok()) state.SkipWithError(rst.ToString().c_str());
      benchmark::DoNotOptimize(value.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
  state.SetLabel(source == 0 ? "cache-hit"
                             : (source == 1 ? "log-hot" : "log-cold"));
}

void BM_LogstoreSpaceAmp(benchmark::State& state) {
  // Compaction cadence in ops; 0 disables the compactor. Time measures
  // the whole workload, so cadence overhead shows up as throughput.
  const uint64_t cadence = static_cast<uint64_t>(state.range(0));
  constexpr int kTotalObjects = 256;  // live set ~64 KiB of payload
  constexpr int kHotObjects = 16;
  constexpr int kOps = 2000;

  double space_amp = 0.0;
  double cold_kb = 0.0;
  double hot_kb = 0.0;
  double live_kb = 0.0;
  double reclaimed_kb = 0.0;
  uint64_t compaction_runs = 0;
  uint64_t moved_kb = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    // Fine-grained cold segments: GC releases whole segments only, so
    // the coalescing target is the reclamation granularity.
    disk.log().set_cold_segment_target(8 * 1024);
    EngineOptions opts = BaseOpts(StorageBackend::kLogStore);
    opts.checkpoint_interval_ops = 128;
    opts.logstore.compact_interval_ops = cadence;
    opts.logstore.compact_batch_objects = 32;
    opts.logstore.cold_retention_full = false;
    RecoveryEngine engine(opts, &disk);
    state.ResumeTiming();

    // One pass over every object, then a hot few overwritten forever —
    // the once-written majority is what compaction keeps unsticking.
    Status st = Status::OK();
    for (ObjectId id = 1; st.ok() && id <= kTotalObjects; ++id) {
      st = engine.Execute(MakePhysicalWrite(id, Payload(0, id)));
    }
    for (int i = 0; st.ok() && i < kOps; ++i) {
      st = engine.Execute(MakePhysicalWrite(1 + (i % kHotObjects),
                                            Payload(1 + i / kHotObjects, i)));
    }
    if (st.ok()) st = engine.FlushAll();
    if (st.ok()) st = engine.Checkpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    uint64_t live = engine.cache().log_index().live_bytes();
    uint64_t hot = disk.log().retained_bytes();
    uint64_t cold = disk.log().cold_tier().total_bytes();
    space_amp = live == 0 ? 0.0
                          : static_cast<double>(hot + cold) /
                                static_cast<double>(live);
    cold_kb = static_cast<double>(cold) / 1024.0;
    hot_kb = static_cast<double>(hot) / 1024.0;
    live_kb = static_cast<double>(live) / 1024.0;
    reclaimed_kb = static_cast<double>(disk.log().reclaimed_bytes()) / 1024.0;
    if (engine.compactor() != nullptr) {
      compaction_runs = engine.compactor()->stats().runs;
      moved_kb = engine.compactor()->stats().bytes_moved / 1024;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kOps);
  state.counters["space_amp"] = space_amp;
  state.counters["cold_kb"] = cold_kb;
  state.counters["hot_kb"] = hot_kb;
  state.counters["live_kb"] = live_kb;
  state.counters["reclaimed_kb"] = reclaimed_kb;
  state.counters["compaction_runs"] = static_cast<double>(compaction_runs);
  state.counters["moved_kb"] = static_cast<double>(moved_kb);
  state.SetLabel(cadence == 0 ? "no-compaction"
                              : "every-" + std::to_string(cadence));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_LogstoreWriteThroughput)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->ArgNames({"logstore", "io"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(loglog::BM_LogstoreRead)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"source"})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(loglog::BM_LogstoreSpaceAmp)
    ->Arg(0)
    ->Arg(64)
    ->Arg(16)
    ->ArgNames({"cadence"})
    ->Unit(benchmark::kMillisecond);

// Custom main for the `--smoke` pipeline check: strip the flag and run
// every shape at minimum duration (wired up as the bench_logstore_smoke
// ctest entry).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool smoke = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::string(*it) == "--smoke") {
      smoke = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.insert(args.begin() + 1, min_time);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
