// E10 (Section 1 "media recovery" discussion, reconstructing [10]):
// fuzzy online backup under logical logging, with and without the
// copy-order repair, and the cost of media recovery from the image.
//
// Reported per backup pacing (objects copied per burst of execution):
// bytes copied, repair re-copies and their byte overhead, whether naive
// images void operations during media recovery, and media-recovery redo
// counts and wall time.

#include <benchmark/benchmark.h>

#include "backup/backup_manager.h"
#include "backup/media_recovery.h"
#include "engine/recovery_engine.h"
#include "sim/reference_executor.h"
#include "sim/workload.h"

namespace loglog {
namespace {

void BM_FuzzyBackup(benchmark::State& state) {
  const bool repair = state.range(0) != 0;
  const int churn_per_step = static_cast<int>(state.range(1));

  BackupStats bstats;
  RecoveryStats rstats;
  bool image_ok = true;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    EngineOptions opts;
    opts.purge_threshold_ops = 8;
    RecoveryEngine engine(opts, &disk);
    MixedWorkloadOptions wopts;
    wopts.seed = 777;
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      (void)engine.Execute(op);
    }
    for (int i = 0; i < 150; ++i) {
      Status st = engine.Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) {
        state.SkipWithError(st.ToString().c_str());
      }
    }
    (void)engine.FlushAll();

    BackupManager backup(&disk, repair);
    (void)backup.Begin();
    while (!backup.done()) {
      (void)backup.Step(2);
      for (int i = 0; i < churn_per_step; ++i) {
        Status st = engine.Execute(workload.Next());
        if (!st.ok() && !st.IsNotFound()) break;
      }
      // Flushing is what creates copy-order hazards.
      while (engine.cache().uninstalled_ops() > 4) {
        if (!engine.PurgeOne().ok()) break;
      }
    }
    (void)engine.log().ForceAll();
    bstats = backup.stats();
    rstats = RecoveryStats();
    SimulatedDisk fresh;
    std::unique_ptr<RecoveryEngine> recovered;
    state.ResumeTiming();

    // Timed region: media recovery itself.
    Status st = MediaRecover(backup.image(), disk.log().ArchiveContents(),
                             &fresh, &recovered, &rstats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    (void)recovered->FlushAll();
    ReferenceExecutor ref;
    (void)ref.ReplayLog(disk.log().ArchiveContents());
    image_ok = CompareWithReference(ref, fresh.store()).ok();
    state.ResumeTiming();
  }
  state.counters["bytes_copied"] = static_cast<double>(bstats.bytes_copied);
  state.counters["repair_recopies"] =
      static_cast<double>(bstats.repair_recopies);
  state.counters["repair_bytes"] = static_cast<double>(bstats.repair_bytes);
  state.counters["mr_ops_redone"] = static_cast<double>(rstats.ops_redone);
  state.counters["mr_voided"] = static_cast<double>(rstats.ops_voided);
  state.counters["recovered_ok"] = image_ok ? 1 : 0;
  state.SetLabel(std::string(repair ? "repaired" : "naive") + "/churn" +
                 std::to_string(churn_per_step));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_FuzzyBackup)
    ->ArgsProduct({{0, 1}, {0, 5, 20}})
    ->ArgNames({"repair", "churn"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
