// E19 (flight recorder & telemetry): what always-on observability costs
// on the paths that matter, measured four ways.
//
//   RecordEvent/threads:N        raw cost of one flight-recorder event —
//                                the seqlock slot claim plus six relaxed
//                                stores — alone and with four writers
//                                lapping each other in one ring;
//   AppendRecorderOn|Off/...     A/B context: the zero-copy WAL append
//                                path (reserve+fill, group commit) with
//                                the global recorder enabled vs
//                                disabled, as independent runs;
//   AppendOverheadPaired/...     the acceptance check: the same append
//                                loop alternating recorder on/off every
//                                ~2k appends under its own timers, so
//                                machine drift hits both phases equally
//                                and the on-off delta isolates the
//                                recorder. The merge step in
//                                run_benches.sh reports its
//                                overhead_pct; the always-on budget is
//                                < 3%;
//   BlackBoxEncode               serializing a full ring (capacity
//                                events + metrics + health) into the
//                                *.blackbox artifact — the cost of a
//                                crash-point dump;
//   PrometheusExport             rendering a live metrics snapshot as
//                                the text exposition, the per-scrape
//                                cost of the telemetry exporter.
//
// Merged into BENCH_obs.json by bench/run_benches.sh; the CI perf-smoke
// step runs this binary with --smoke.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/blackbox.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"

namespace loglog {
namespace {

// Same drain cadence as bench_hot_path: durability stays on the measured
// path but amortizes over a group-commit batch.
constexpr int kForceEvery = 4096;

std::string Payload(size_t valbytes, int thread) {
  return std::string(valbytes, static_cast<char>('a' + (thread % 26)));
}

SimulatedDisk* g_disk = nullptr;
LogManager* g_log = nullptr;
FlightRecorder* g_recorder = nullptr;

// One event, nothing else: the floor under every instrumented path. The
// multi-writer shape has all threads hammering one ring so the slots
// lap; correctness under that is the recorder test's job, this is just
// the contended cost.
void BM_RecordEvent(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_recorder = new FlightRecorder();
  }
  const uint64_t tid = static_cast<uint64_t>(state.thread_index());
  uint64_t lsn = 0;
  for (auto _ : state) {
    g_recorder->Record(FlightEventType::kWalAppend, ++lsn, 64, tid);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(g_recorder->total_recorded());
    delete g_recorder;
    g_recorder = nullptr;
  }
}
BENCHMARK(BM_RecordEvent)->Threads(1)->Threads(4)->UseRealTime();

// The acceptance pair: bench_hot_path's reserve+fill append loop with
// the global recorder toggled. The recorder is sampled on this path
// (one event per 64 appends per thread), so "on" buys the black box for
// a fraction of even the RecordEvent cost.
void AppendBench(benchmark::State& state, bool recorder_on) {
  if (state.thread_index() == 0) {
    if (recorder_on) {
      FlightRecorder::Global().Enable();
    } else {
      FlightRecorder::Global().Disable();
    }
    g_disk = new SimulatedDisk();
    g_disk->log().set_archive_enabled(false);  // no reference replay here
    g_log = new LogManager(&g_disk->log());
    g_log->set_force_policy(ForcePolicy::kGroup);
  }
  const OperationDesc op = MakePhysicalWrite(
      static_cast<ObjectId>(state.thread_index() + 1),
      Payload(static_cast<size_t>(state.range(0)), state.thread_index()));
  const std::vector<UndoImage> no_images;
  int since_force = 0;
  for (auto _ : state) {
    Lsn lsn = g_log->AppendOperation(op, 0, kInvalidLsn, no_images);
    benchmark::DoNotOptimize(lsn);
    if (++since_force >= kForceEvery) {
      since_force = 0;
      benchmark::DoNotOptimize(g_log->ForceAll());
      g_log->TruncateBefore(g_log->last_stable_lsn());
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(g_log->ForceAll());
    delete g_log;
    delete g_disk;
    g_log = nullptr;
    g_disk = nullptr;
    FlightRecorder::Global().Enable();  // always-on is the resting state
  }
}

void BM_AppendRecorderOn(benchmark::State& state) { AppendBench(state, true); }
void BM_AppendRecorderOff(benchmark::State& state) {
  AppendBench(state, false);
}
BENCHMARK(BM_AppendRecorderOn)
    ->ArgName("valbytes")
    ->Arg(64)
    ->Arg(1024)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();
BENCHMARK(BM_AppendRecorderOff)
    ->ArgName("valbytes")
    ->Arg(64)
    ->Arg(1024)
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

// The acceptance measurement. Independent on/off runs (above) cannot
// resolve a sub-1% effect on a busy box — run-to-run variance is an
// order of magnitude larger. Here each iteration times one recorder-on
// batch and one recorder-off batch back to back with the same clock,
// alternating which goes first, so slow drift (frequency scaling, a
// neighbor VM, the force at the batch seam) cancels in the delta. The
// reported overhead_pct is the paired difference over the whole run.
void BM_AppendOverheadPaired(benchmark::State& state) {
  constexpr int kBatch = 2048;
  SimulatedDisk disk;
  disk.log().set_archive_enabled(false);
  LogManager log(&disk.log());
  log.set_force_policy(ForcePolicy::kGroup);
  const OperationDesc op = MakePhysicalWrite(
      1, Payload(static_cast<size_t>(state.range(0)), 0));
  const std::vector<UndoImage> no_images;
  auto run_batch = [&](bool enable) {
    if (enable) {
      FlightRecorder::Global().Enable();
    } else {
      FlightRecorder::Global().Disable();
    }
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kBatch; ++i) {
      Lsn lsn = log.AppendOperation(op, 0, kInvalidLsn, no_images);
      benchmark::DoNotOptimize(lsn);
    }
    const auto stop = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
            .count());
  };
  // Per-batch timings, reduced by median at the end: a scheduler
  // interrupt landing in one batch would skew a running total by its
  // whole duration, but the median batch is an unperturbed one.
  std::vector<uint64_t> on_batches;
  std::vector<uint64_t> off_batches;
  bool on_first = true;
  for (auto _ : state) {
    if (on_first) {
      on_batches.push_back(run_batch(true));
      off_batches.push_back(run_batch(false));
    } else {
      off_batches.push_back(run_batch(false));
      on_batches.push_back(run_batch(true));
    }
    on_first = !on_first;
    benchmark::DoNotOptimize(log.ForceAll());
    log.TruncateBefore(log.last_stable_lsn());
  }
  FlightRecorder::Global().Enable();  // always-on is the resting state
  auto median_of = [](std::vector<uint64_t>* v) {
    std::sort(v->begin(), v->end());
    return v->empty() ? 0.0 : static_cast<double>((*v)[v->size() / 2]);
  };
  const double per_on = median_of(&on_batches) / kBatch;
  const double per_off = median_of(&off_batches) / kBatch;
  state.counters["on_ns_per_append"] = benchmark::Counter(per_on);
  state.counters["off_ns_per_append"] = benchmark::Counter(per_off);
  state.counters["overhead_pct"] =
      benchmark::Counter((per_on - per_off) / per_off * 100.0);
  state.SetItemsProcessed(state.iterations() * 2 * kBatch);
}
BENCHMARK(BM_AppendOverheadPaired)
    ->ArgName("valbytes")
    ->Arg(64)
    ->Arg(1024)
    ->UseRealTime();

// Cutting the artifact itself: a full default-capacity ring serialized
// with a live metrics snapshot and the health ledger. This is the cost
// a crash point, fault fire, or Promote pays to leave a black box.
void BM_BlackBoxEncode(benchmark::State& state) {
  FlightRecorder recorder;
  for (uint64_t i = 0; i < FlightRecorder::kDefaultCapacity; ++i) {
    recorder.Record(FlightEventType::kWalAppend, i + 1, 64, 4096);
  }
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  size_t bytes = 0;
  for (auto _ : state) {
    std::vector<uint8_t> out;
    EncodeBlackBox(recorder, snap, "bench", &out);
    bytes = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.counters["blackbox_bytes"] =
      benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_BlackBoxEncode);

// Per-scrape cost of the exporter: snapshot already taken, render the
// text exposition. Seeded with a spread of instruments so the histogram
// quantile walks are on the measured path.
void BM_PrometheusExport(benchmark::State& state) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  for (int i = 0; i < 16; ++i) {
    reg.GetCounter("bench.obs.counter" + std::to_string(i))->Inc(i * 7 + 1);
    reg.GetGauge("bench.obs.gauge" + std::to_string(i))->Set(i - 8);
    HistogramMetric* h =
        reg.GetHistogram("bench.obs.hist" + std::to_string(i));
    for (int v = 0; v < 128; ++v) h->Observe((v * 13 + i) % 257);
  }
  MetricsSnapshot snap = reg.Snapshot();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string text = PrometheusText(snap);
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_PrometheusExport);

}  // namespace
}  // namespace loglog

// Custom main so CI can say `bench_obs --smoke`: the flag becomes a
// minimum-duration run, everything else passes through to the benchmark
// library untouched.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  static char min_time[] = "--benchmark_min_time=0.01";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (smoke) args.push_back(min_time);
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
