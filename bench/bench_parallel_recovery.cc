// E-next (parallel partitioned REDO): recovery wall time as the redo
// workload is replayed by a pool of workers, one connected component of
// the write graph at a time.
//
// The redo workload is built as C disjoint object clusters (copy chains
// that never cross clusters), so the union-find partition recovers
// exactly C components. Simulated device latency is attached to the
// stable store for the duration of recovery: on the simulator the win
// comes from overlapping component I/O stalls, exactly as a real
// recovery overlaps device reads — CPU-bound decode stays serial on a
// single core either way. Reported: recovery wall time per (log length,
// component count, thread count); the speedup column of BENCH_recovery
// .json is serial time / parallel time at equal shape.

#include <benchmark/benchmark.h>

#include <string>

#include "common/random.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

/// Simulated device read latency during recovery, microseconds. High
/// enough to dominate decode cost and OS timer slack, low enough to
/// keep the sweep quick.
constexpr uint32_t kReadLatencyUs = 100;

/// Objects shared by every shape so component count only changes how
/// they are clustered, not how much state there is.
constexpr ObjectId kNumObjects = 256;

void BM_ParallelRecovery(benchmark::State& state) {
  const int log_ops = static_cast<int>(state.range(0));
  const int components = static_cast<int>(state.range(1));
  const int threads = static_cast<int>(state.range(2));
  const ObjectId cluster = kNumObjects / components;

  RecoveryStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.redo_test = RedoTestKind::kAlways;  // redo everything: worst case
    opts.checkpoint_interval_ops = 0;        // nothing shortens the scan
    opts.purge_threshold_ops = 0;            // nothing installs early
    opts.recovery.redo_threads = threads;
    CrashHarness harness(opts, 7);
    Random rng(1234);
    for (ObjectId id = 1; id <= kNumObjects; ++id) {
      Status st = harness.Execute(MakeCreate(id, Slice(rng.Bytes(64))));
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    // Copy chains strictly inside each cluster: op i advances cluster
    // i % C one step, so components interleave in the log exactly as
    // independent streams would.
    for (int i = 0; i < log_ops; ++i) {
      ObjectId c = static_cast<ObjectId>(i % components);
      ObjectId step = static_cast<ObjectId>(i / components);
      ObjectId src = c * cluster + step % cluster + 1;
      ObjectId dst = c * cluster + (step + 1) % cluster + 1;
      Status st = harness.Execute(MakeCopy(dst, src));
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    (void)harness.engine().log().ForceAll();
    harness.Crash();
    harness.disk().store().set_sim_latency(kReadLatencyUs, kReadLatencyUs);
    stats = RecoveryStats();
    state.ResumeTiming();

    Status st = harness.Recover(&stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    harness.disk().store().set_sim_latency(0, 0);
    st = harness.VerifyAgainstReference();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
  }
  state.counters["ops_redone"] = static_cast<double>(stats.ops_redone);
  state.counters["components"] = static_cast<double>(components);
  state.counters["threads"] = static_cast<double>(threads);
  state.SetLabel("ops" + std::to_string(log_ops) + "/c" +
                 std::to_string(components) + "/t" + std::to_string(threads));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_ParallelRecovery)
    ->ArgsProduct({{512, 2048}, {4, 16, 64}, {1, 2, 4, 8}})
    ->ArgNames({"ops", "comps", "threads"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
