// E6 (Section 5, checkpoints and rSIs): recovery cost falls as
// checkpoints become more frequent, because checkpoint records advance
// the redo scan start (the minimum rSI) and truncate the log.
//
// Workload: a fixed mixed history; the checkpoint interval is swept.
// Reported: retained log records at crash, records scanned, operations
// redone, and recovery wall time.

#include <benchmark/benchmark.h>

#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

void BM_RecoveryVsCheckpointInterval(benchmark::State& state) {
  const size_t interval = static_cast<size_t>(state.range(0));
  constexpr int kOps = 1500;

  RecoveryStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.purge_threshold_ops = 24;
    opts.checkpoint_interval_ops = interval;
    CrashHarness harness(opts, 99);
    MixedWorkloadOptions wopts;
    wopts.seed = 99;
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      (void)harness.Execute(op);
    }
    // Crash mid-interval: on average a crash lands interval/2 operations
    // past the last checkpoint, which is what the scan-length gradient
    // measures.
    int ops = kOps + static_cast<int>(interval) / 2;
    for (int i = 0; i < ops; ++i) {
      Status st = harness.Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) {
        state.SkipWithError(st.ToString().c_str());
      }
    }
    (void)harness.engine().log().ForceAll();
    harness.Crash();
    stats = RecoveryStats();
    state.ResumeTiming();

    Status st = harness.Recover(&stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    st = harness.VerifyAgainstReference();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
  }
  state.counters["retained_records"] =
      static_cast<double>(stats.log_records_total);
  state.counters["records_scanned"] =
      static_cast<double>(stats.records_scanned);
  state.counters["ops_redone"] = static_cast<double>(stats.ops_redone);
  state.SetLabel(interval == 0 ? "no-checkpoints"
                               : "ckpt-every-" + std::to_string(interval));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_RecoveryVsCheckpointInterval)
    ->Arg(0)
    ->Arg(50)
    ->Arg(150)
    ->Arg(500)
    ->ArgNames({"interval"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
