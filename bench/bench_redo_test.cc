// E5 (Section 5): the REDO test gradient — repeat-all vs the classic vSI
// test vs the generalized rSI test — on a crash image of the mixed
// application/file workload with transient temporaries.
//
// The paper's claim: rSI-based REDO avoids re-executing operations whose
// results are unexposed, most importantly everything touching deleted
// transient objects and expensive application/file logical operations.
// Reported: operations redone / skipped / voided, expensive (logical)
// re-executions, and recovery wall time, per REDO test.

#include <benchmark/benchmark.h>

#include "sim/crash_harness.h"
#include "sim/workload.h"

namespace loglog {
namespace {

void BM_RedoTest(benchmark::State& state) {
  const auto kind = static_cast<RedoTestKind>(state.range(0));
  constexpr int kOps = 1200;

  RecoveryStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.redo_test = kind;
    opts.purge_threshold_ops = 32;
    opts.checkpoint_interval_ops = 200;
    CrashHarness harness(opts, 4242);
    MixedWorkloadOptions wopts;
    wopts.seed = 4242;
    wopts.w_temp_create = 4;
    wopts.w_temp_delete = 4;
    MixedWorkload workload(wopts);
    for (const OperationDesc& op : workload.SetupOps()) {
      (void)harness.Execute(op);
    }
    for (int i = 0; i < kOps; ++i) {
      Status st = harness.Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) {
        state.SkipWithError(st.ToString().c_str());
      }
    }
    (void)harness.engine().log().ForceAll();
    harness.Crash();
    stats = RecoveryStats();
    state.ResumeTiming();

    // Timed region: recovery itself.
    Status st = harness.Recover(&stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());

    state.PauseTiming();
    st = harness.VerifyAgainstReference();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    state.ResumeTiming();
  }
  state.counters["ops_considered"] = static_cast<double>(stats.ops_considered);
  state.counters["ops_redone"] = static_cast<double>(stats.ops_redone);
  state.counters["skip_installed"] =
      static_cast<double>(stats.ops_skipped_installed);
  state.counters["skip_unexposed"] =
      static_cast<double>(stats.ops_skipped_unexposed);
  state.counters["voided"] = static_cast<double>(stats.ops_voided);
  state.counters["expensive_redos"] =
      static_cast<double>(stats.expensive_redos);
  state.counters["redo_value_bytes"] =
      static_cast<double>(stats.redo_value_bytes);
  switch (kind) {
    case RedoTestKind::kAlways:
      state.SetLabel("REDO=always");
      break;
    case RedoTestKind::kVsi:
      state.SetLabel("REDO=vSI");
      break;
    case RedoTestKind::kRsiGeneralized:
      state.SetLabel("REDO=rSI-generalized");
      break;
    case RedoTestKind::kRsiFixpoint:
      state.SetLabel("REDO=rSI-fixpoint");
      break;
  }
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_RedoTest)
    ->Arg(static_cast<long>(loglog::RedoTestKind::kAlways))
    ->Arg(static_cast<long>(loglog::RedoTestKind::kVsi))
    ->Arg(static_cast<long>(loglog::RedoTestKind::kRsiGeneralized))
    ->Arg(static_cast<long>(loglog::RedoTestKind::kRsiFixpoint))
    ->ArgNames({"redo"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
