// E15 (log-shipping replication): the three headline series of the
// replication subsystem.
//
//  - ShipSteadyLag: primary executes a workload while shipping every
//    `poll` operations; reported counters are the worst and final
//    replication lag (records the standby is behind) at that cadence.
//    Higher poll spacing = more load per ship opportunity = more lag.
//  - ShipCatchup: a cold standby drains a prebuilt primary archive of
//    `ops` operations in large batches; wall time per drain and the
//    records/second throughput as `threads` turns the installation-graph
//    worker pool on for burst apply.
//  - FailoverRto: a fully caught-up standby is promoted (drain + install
//    + ordinary recovery); the timed region is the promotion itself, the
//    `rto_us` counter the measured recovery-time objective.
//
// run_benches.sh merges the JSON output (plus an obs metrics snapshot)
// into BENCH_replication.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>

#include "engine/recovery_engine.h"
#include "ship/log_shipper.h"
#include "ship/replication_channel.h"
#include "ship/standby_applier.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

MixedWorkloadOptions BenchWorkload(uint64_t seed) {
  MixedWorkloadOptions w;
  w.seed = seed;
  return w;
}

/// Polls/pumps until the standby has everything durable and the channel
/// is empty. Returns false if the pipeline wedged (bench then skips).
bool Drain(LogShipper* shipper, StandbyApplier* standby,
           ReplicationChannel* channel) {
  for (int i = 0; i < 1000; ++i) {
    if (!shipper->Poll().ok() || !standby->Pump().ok()) return false;
    if (standby->applied_lsn() >= shipper->durable_lsn() &&
        channel->pending_frames() == 0) {
      return true;
    }
  }
  return false;
}

/// A quiesced primary whose archive holds `ops` workload operations.
/// Built once per shape and reused: shipping only reads the archive.
struct PrebuiltPrimary {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<RecoveryEngine> engine;

  static PrebuiltPrimary Build(int ops, uint64_t seed, std::string* error) {
    PrebuiltPrimary p;
    p.disk = std::make_unique<SimulatedDisk>();
    EngineOptions opts;
    p.engine = std::make_unique<RecoveryEngine>(opts, p.disk.get());
    MixedWorkload workload(BenchWorkload(seed));
    for (const OperationDesc& op : workload.SetupOps()) {
      Status st = p.engine->Execute(op);
      if (!st.ok()) { *error = st.ToString(); return p; }
    }
    for (int i = 0; i < ops; ++i) {
      Status st = p.engine->Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) { *error = st.ToString(); return p; }
    }
    Status st = p.engine->FlushAll();
    if (st.ok()) st = p.engine->log().ForceAll();
    if (!st.ok()) *error = st.ToString();
    return p;
  }
};

void BM_ShipSteadyLag(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const int poll_every = static_cast<int>(state.range(1));

  uint64_t max_lag = 0, final_lag = 0, batches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto disk = std::make_unique<SimulatedDisk>();
    EngineOptions opts;
    auto engine = std::make_unique<RecoveryEngine>(opts, disk.get());
    MixedWorkload workload(BenchWorkload(7));
    for (const OperationDesc& op : workload.SetupOps()) {
      Status st = engine->Execute(op);
      if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    }
    ReplicationChannel channel;
    StandbyApplier standby(&channel);
    LogShipper shipper(&disk->log(), &channel);
    max_lag = final_lag = 0;
    state.ResumeTiming();

    for (int i = 0; i < ops; ++i) {
      Status st = engine->Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) {
        state.SkipWithError(st.ToString().c_str());
        break;
      }
      if (i % poll_every == 0) {
        // Shipping moves stable bytes only; force so the poll sees the
        // burst accumulated since the last one. Lag is sampled at its
        // peak: everything durable but not yet applied, i.e. the backlog
        // this ship/apply round is about to clear.
        (void)engine->log().ForceAll();
        const uint64_t durable = engine->log().last_stable_lsn();
        const uint64_t lag =
            durable - std::min<uint64_t>(durable, standby.applied_lsn());
        max_lag = std::max(max_lag, lag);
        (void)shipper.Poll();
        (void)standby.Pump();
      }
    }
    (void)engine->log().ForceAll();
    const uint64_t end_durable = engine->log().last_stable_lsn();
    final_lag = end_durable -
                std::min<uint64_t>(end_durable, standby.applied_lsn());
    if (!Drain(&shipper, &standby, &channel)) {
      state.SkipWithError("pipeline failed to drain");
    }
    batches = shipper.stats().batches_sent;
  }
  state.counters["max_lag_records"] = static_cast<double>(max_lag);
  state.counters["final_lag_records"] = static_cast<double>(final_lag);
  state.counters["batches"] = static_cast<double>(batches);
  state.SetItemsProcessed(state.iterations() * ops);
}

void BM_ShipCatchup(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));

  std::string error;
  PrebuiltPrimary primary = PrebuiltPrimary::Build(ops, 21, &error);
  if (!error.empty()) {
    state.SkipWithError(error.c_str());
    return;
  }

  uint64_t records = 0, bursts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ReplicationChannel channel;
    StandbyOptions sopts;
    sopts.redo_threads = threads;
    sopts.parallel_apply_threshold = 64;
    StandbyApplier standby(&channel, sopts);
    LogShipperOptions shipopts;
    shipopts.max_batch_records = 256;
    shipopts.max_batch_bytes = 1 << 20;
    LogShipper shipper(&primary.disk->log(), &channel, shipopts);
    state.ResumeTiming();

    if (!Drain(&shipper, &standby, &channel)) {
      state.SkipWithError("catch-up failed to drain");
    }
    records = standby.stats().records_applied;
    bursts = standby.stats().parallel_bursts;
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["parallel_bursts"] = static_cast<double>(bursts);
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(records * state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * records);
}

void BM_FailoverRto(benchmark::State& state) {
  const int ops = static_cast<int>(state.range(0));

  uint64_t rto_us = 0, applied = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::string error;
    PrebuiltPrimary primary = PrebuiltPrimary::Build(ops, 11, &error);
    if (!error.empty()) {
      state.SkipWithError(error.c_str());
      break;
    }
    ReplicationChannel channel;
    StandbyOptions sopts;
    sopts.redo_threads = 2;
    sopts.parallel_apply_threshold = 64;
    StandbyApplier standby(&channel, sopts);
    LogShipper shipper(&primary.disk->log(), &channel);
    if (!Drain(&shipper, &standby, &channel)) {
      state.SkipWithError("standby failed to catch up");
      break;
    }
    primary.engine.reset();  // the primary dies
    EngineOptions promoted_opts;
    state.ResumeTiming();

    PromotionResult promo;
    Status st = standby.Promote(promoted_opts, &promo);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }

    state.PauseTiming();
    rto_us = promo.rto_us;
    applied = promo.applied_lsn;
    state.ResumeTiming();
  }
  state.counters["rto_us"] = static_cast<double>(rto_us);
  state.counters["applied_lsn"] = static_cast<double>(applied);
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_ShipSteadyLag)
    ->ArgsProduct({{256, 1024}, {4, 16, 64}})
    ->ArgNames({"ops", "poll"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(loglog::BM_ShipCatchup)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}})
    ->ArgNames({"ops", "threads"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(loglog::BM_FailoverRto)
    ->ArgsProduct({{512, 2048}})
    ->ArgNames({"ops"})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
