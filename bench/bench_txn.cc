// E17 (transactional UNDO economics): commit and rollback are the two
// exits from a transaction, and their costs are asymmetric by design.
// Commit appends one forced marker — its price is the force, amortized
// over the transaction's operations. Rollback walks the backchain and
// logs one compensation record per forward operation — its price grows
// linearly with transaction depth, and splits between cheap logical
// inverses (ids only) and before-image restores (value bytes).
//
// Three series:
//
//   TxnCommit/ops:N     committed-transaction throughput vs depth; the
//                       per-op cost falls as the forced commit amortizes;
//   TxnRollback/ops:N   rollback latency vs depth, with the CLR count
//                       and compensation-byte footprint per transaction;
//   TxnAbortMix/abort:P workload throughput as the abort rate climbs —
//                       the storm harness's mix, measured not faulted.
//
// Merged into BENCH_txn.json by bench/run_benches.sh.

#include <benchmark/benchmark.h>

#include <string>

#include "engine/txn_manager.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"

namespace loglog {
namespace {

constexpr ObjectId kObjects = 16;

void SeedObjects(CrashHarness* harness, benchmark::State* state) {
  for (ObjectId x = 1; x <= kObjects; ++x) {
    Status st = harness->Execute(MakeCreate(x, "seed-value"));
    if (!st.ok()) state->SkipWithError(st.ToString().c_str());
  }
}

void BM_TxnCommit(benchmark::State& state) {
  const int ops_per_txn = static_cast<int>(state.range(0));
  CrashHarness harness{EngineOptions{}, 777};
  SeedObjects(&harness, &state);
  TxnManager tm(&harness.engine());
  uint64_t cursor = 0;
  for (auto _ : state) {
    TxnId id;
    Status st = tm.Begin(&id);
    for (int j = 0; st.ok() && j < ops_per_txn; ++j) {
      st = tm.Execute(id, MakePhysicalWrite(1 + cursor++ % kObjects,
                                            "committed-value"));
    }
    if (st.ok()) st = tm.Commit(id);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["txns_per_s"] = benchmark::Counter(
      static_cast<double>(tm.stats().committed), benchmark::Counter::kIsRate);
  state.counters["ops_per_s"] = benchmark::Counter(
      static_cast<double>(tm.stats().committed) * ops_per_txn,
      benchmark::Counter::kIsRate);
}

void BM_TxnRollback(benchmark::State& state) {
  const int ops_per_txn = static_cast<int>(state.range(0));
  CrashHarness harness{EngineOptions{}, 778};
  SeedObjects(&harness, &state);
  TxnManager tm(&harness.engine());
  uint64_t cursor = 0;
  for (auto _ : state) {
    TxnId id;
    Status st = tm.Begin(&id);
    for (int j = 0; st.ok() && j < ops_per_txn; ++j) {
      st = tm.Execute(id, MakePhysicalWrite(1 + cursor++ % kObjects,
                                            "doomed-value"));
    }
    if (st.ok()) st = tm.Rollback(id);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  const TxnUndoStats& undo = tm.undo_stats();
  const double rolled =
      undo.txns_rolled_back > 0 ? static_cast<double>(undo.txns_rolled_back)
                                : 1.0;
  state.counters["rollbacks_per_s"] = benchmark::Counter(
      static_cast<double>(undo.txns_rolled_back),
      benchmark::Counter::kIsRate);
  state.counters["clrs_per_txn"] =
      static_cast<double>(undo.clrs_logged) / rolled;
  state.counters["compensation_bytes_per_txn"] =
      static_cast<double>(undo.compensation_bytes) / rolled;
  state.counters["logical_inverses"] =
      static_cast<double>(undo.logical_inverses);
  state.counters["image_restores"] = static_cast<double>(undo.image_restores);
}

void BM_TxnAbortMix(benchmark::State& state) {
  const int abort_pct = static_cast<int>(state.range(0));
  constexpr int kOpsPerTxn = 4;
  CrashHarness harness{EngineOptions{}, 779};
  SeedObjects(&harness, &state);
  TxnManager tm(&harness.engine());
  uint64_t cursor = 0;
  uint64_t seq = 0;
  for (auto _ : state) {
    TxnId id;
    Status st = tm.Begin(&id);
    for (int j = 0; st.ok() && j < kOpsPerTxn; ++j) {
      st = tm.Execute(id, MakePhysicalWrite(1 + cursor++ % kObjects,
                                            "mixed-value"));
    }
    if (st.ok()) {
      st = (seq++ % 100) < static_cast<uint64_t>(abort_pct) ? tm.Rollback(id)
                                                            : tm.Commit(id);
    }
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  const uint64_t resolved = tm.stats().committed + tm.stats().aborted;
  state.counters["ops_per_s"] = benchmark::Counter(
      static_cast<double>(resolved) * kOpsPerTxn, benchmark::Counter::kIsRate);
  state.counters["committed"] = static_cast<double>(tm.stats().committed);
  state.counters["aborted"] = static_cast<double>(tm.stats().aborted);
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_TxnCommit)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ArgNames({"ops"})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(loglog::BM_TxnRollback)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->ArgNames({"ops"})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(loglog::BM_TxnAbortMix)
    ->Arg(0)
    ->Arg(10)
    ->Arg(30)
    ->Arg(60)
    ->ArgNames({"abort"})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
