// E2 (Figure 5): rW permits separate, ordered flushes where W forces a
// multi-object atomic flush.
//
// Pattern "fig5" (Figure 5's example): A updates X and Y together
// (one operation writing {X,Y}), then B blind-writes X from Y
// (W_L(Y,X)). In W, A and B coalesce (shared writeset) into one node
// that must flush {X,Y} atomically. In rW, B's blind write peels X out
// of A's vars: Y flushes alone (installing A, X unexposed), then X.
//
// Pattern "fig1abc" (Section 4's cycle example): (a) Y=f(X,Y);
// (b) X=g(Y); (c) Y=h(Y). Here even rW collapses a cycle into a
// {X,Y} node — the case that motivates CM identity writes (see
// bench_cycles / E8).
//
// Reported: multi-object atomic flushes, single flushes, max flush set,
// and objects installed without being flushed, for W vs rW under the
// native-atomic policy (so the graphs themselves are compared).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/recovery_engine.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

namespace loglog {
namespace {

constexpr FuncId kPairUpdate = kFuncFirstCustom + 310;

void RegisterPairUpdate() {
  // A: (X, Y) <- f(X, Y): exposed update of both objects.
  FunctionRegistry::Global().Register(
      kPairUpdate,
      [](const OperationDesc&, const std::vector<ObjectValue>& reads,
         std::vector<ObjectValue>* writes) {
        ObjectValue x = reads[0], y = reads[1];
        for (size_t i = 0; i < x.size(); ++i) {
          x[i] = static_cast<uint8_t>(x[i] + (y.empty() ? 1 : y[i % y.size()]));
        }
        for (size_t i = 0; i < y.size(); ++i) {
          y[i] = static_cast<uint8_t>(y[i] ^ (x.empty() ? 1 : x[i % x.size()]));
        }
        (*writes)[0] = std::move(x);
        (*writes)[1] = std::move(y);
        return Status::OK();
      });
}

void BM_WriteGraphFlushSets(benchmark::State& state) {
  const bool refined = state.range(0) != 0;
  const bool fig5 = state.range(1) != 0;
  constexpr int kPairs = 32;
  constexpr int kRounds = 8;
  RegisterPairUpdate();

  EngineOptions opts;
  opts.graph_kind = refined ? GraphKind::kRefined : GraphKind::kW;
  opts.flush_policy = FlushPolicy::kNativeAtomic;
  opts.purge_threshold_ops = 48;

  uint64_t multi = 0, singles = 0, max_set = 0, unflushed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimulatedDisk disk;
    RecoveryEngine engine(opts, &disk);
    Random rng(7);
    for (int p = 0; p < kPairs; ++p) {
      ObjectId x = 10 + 2 * p, y = 11 + 2 * p;
      (void)engine.Execute(MakeCreate(x, Slice(rng.Bytes(64))));
      (void)engine.Execute(MakeCreate(y, Slice(rng.Bytes(64))));
    }
    (void)engine.FlushAll();
    state.ResumeTiming();

    for (int round = 0; round < kRounds; ++round) {
      for (int p = 0; p < kPairs; ++p) {
        ObjectId x = 10 + 2 * p, y = 11 + 2 * p;
        if (fig5) {
          OperationDesc a;
          a.op_class = OpClass::kLogical;
          a.func = kPairUpdate;
          a.reads = {x, y};
          a.writes = {x, y};
          (void)engine.Execute(a);                              // A
          (void)engine.Execute(MakeAppWrite(y, x, 64, round));  // B (blind X)
        } else {
          (void)engine.Execute(MakeAppRead(y, x));              // (a)
          (void)engine.Execute(MakeAppWrite(y, x, 64, round));  // (b)
          (void)engine.Execute(MakeAppExecute(y, round));       // (c)
        }
      }
    }
    (void)engine.FlushAll();

    const CacheStats& cs = engine.cache().stats();
    const Histogram& sets = cs.flush_set_sizes;
    max_set = std::max(max_set, sets.max());
    uint64_t m = 0;
    for (uint64_t s = 2; s <= sets.max(); ++s) m += sets.CountOf(s);
    multi += m;
    singles += sets.CountOf(0) + sets.CountOf(1);
    unflushed += cs.installed_without_flush;
  }
  double iters = static_cast<double>(state.iterations());
  state.counters["atomic_multi_flushes"] = static_cast<double>(multi) / iters;
  state.counters["single_flushes"] = static_cast<double>(singles) / iters;
  state.counters["max_flush_set"] = static_cast<double>(max_set);
  state.counters["installed_without_flush"] =
      static_cast<double>(unflushed) / iters;
  state.SetLabel(std::string(refined ? "rW" : "W") +
                 (fig5 ? "/fig5" : "/fig1abc-cycle"));
}

}  // namespace
}  // namespace loglog

BENCHMARK(loglog::BM_WriteGraphFlushSets)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"rW", "fig5"});

BENCHMARK_MAIN();
