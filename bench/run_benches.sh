#!/usr/bin/env bash
# Runs the recovery-performance and replication benchmarks and merges
# their JSON output into two documents at the repo root:
#
#   bench/run_benches.sh [--smoke] [--out FILE] [build_dir] [min_time_seconds]
#
# BENCH_recovery.json holds the raw google-benchmark entries for the
# parallel-REDO sweep and the ForcePolicy series, two derived summaries
# (recovery speedup vs threads at every (ops, components) shape, and
# device forces per 1k ops per ForcePolicy), and a metrics snapshot from
# a traced `loglog_inspect` crash-recovery run so the numbers carry
# their cost decomposition (see EXPERIMENTS.md E14).
#
# BENCH_replication.json holds the log-shipping series (steady-state lag
# vs poll spacing, cold catch-up throughput vs redo_threads, failover
# RTO) plus the `loglog_inspect --ship-status` snapshot with the ship.*
# lag gauges embedded (see EXPERIMENTS.md E15). With --out FILE the
# replication document lands next to it, `recovery` -> `replication` in
# the name (or FILE.replication.json when the name has no `recovery`).
#
# BENCH_adaptive.json holds the adaptive logging-policy crossover
# (bench_adaptive_logging): per-mode log bytes / recovery time /
# redo-work rows for the all-logical, all-physical and adaptive runs,
# the adaptive-vs-logical log-volume ratio, and the budget check (see
# EXPERIMENTS.md E16). Named like the replication document
# (`recovery` -> `adaptive`).
#
# BENCH_txn.json holds the transactional UNDO series (bench_txn):
# committed-transaction throughput vs depth, rollback latency with the
# per-transaction CLR count and compensation-byte footprint, and the
# mixed-workload throughput curve as the abort rate climbs (see
# EXPERIMENTS.md E17). Named like the others (`recovery` -> `txn`).
#
# BENCH_obs.json holds the observability-cost series (bench_obs): the
# raw flight-recorder event cost (single and contended), the acceptance
# pair — WAL appends/sec with the always-on recorder enabled vs disabled,
# reduced to overhead_pct per shape against the < 3% budget — plus the
# black-box encode and Prometheus render costs (see EXPERIMENTS.md E19).
# Named like the others (`recovery` -> `obs`).
#
# BENCH_hot_path.json holds the WAL hot-path series (bench_hot_path):
# appends/sec for the old whole-record Append pipeline vs the zero-copy
# reserve+fill path (single- and multi-producer, small and KB-sized
# payloads) with the speedup per shape, CRC32C MB/s per kernel with the
# fast-vs-scalar ratio, and the per-commit force latency with async
# completions overlapped vs synchronous forces (see EXPERIMENTS.md E18).
# Named like the others (`recovery` -> `hot_path`).
#
# BENCH_logstore.json holds the log-as-database series (bench_logstore):
# write throughput per backend with the kLogStore-vs-kDualWrite speedup
# under the device cost model (acceptance: >= 1.5x), per-read cost by
# source (cache hit, hot log, cold tier), and the space-amplification
# curve vs compaction cadence with the steady-cadence < 2x check, plus
# the `loglog_inspect --logstore-stats` snapshot (index, two-tier
# footprint, compactor totals — see EXPERIMENTS.md E20). Named like the
# others (`recovery` -> `logstore`).
#
# Every bench binary failure aborts the run with a pointed message, and
# each emitted JSON file is validated before anything is merged — a
# crashed or truncated benchmark can't silently produce an empty report.
#
# --smoke runs every stage at minimum duration and writes into the build
# directory instead of the repo root — a pipeline check (wired up as the
# `bench_smoke` ctest entry), not a measurement.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
OUT=""
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) POSITIONAL+=("$1"); shift ;;
  esac
done
BUILD_DIR="${POSITIONAL[0]:-build}"
if [[ $SMOKE -eq 1 ]]; then
  MIN_TIME="${POSITIONAL[1]:-0.01}"
  : "${OUT:=$BUILD_DIR/BENCH_recovery.smoke.json}"
else
  MIN_TIME="${POSITIONAL[1]:-0.2}"
  : "${OUT:=BENCH_recovery.json}"
fi
# The replication document mirrors the recovery one's name.
if [[ "$OUT" == *recovery* ]]; then
  REPL_OUT="${OUT/recovery/replication}"
  ADAPT_OUT="${OUT/recovery/adaptive}"
  TXN_OUT="${OUT/recovery/txn}"
  HOT_OUT="${OUT/recovery/hot_path}"
  OBS_OUT="${OUT/recovery/obs}"
  LOGSTORE_OUT="${OUT/recovery/logstore}"
else
  REPL_OUT="$OUT.replication.json"
  ADAPT_OUT="$OUT.adaptive.json"
  TXN_OUT="$OUT.txn.json"
  HOT_OUT="$OUT.hot_path.json"
  OBS_OUT="$OUT.obs.json"
  LOGSTORE_OUT="$OUT.logstore.json"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Runs one bench binary with JSON output capture; any non-zero exit
# (crash, SkipWithError at exit, bad filter) aborts the whole script
# with the binary named, and the emitted JSON must parse and contain a
# non-empty "benchmarks" array.
run_bench() {
  local name="$1" out_json="$2"
  shift 2
  local bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "error: bench binary $bin is missing or not executable" >&2
    echo "       (stale build dir? re-run: cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  if ! "$bin" \
      --benchmark_min_time="$MIN_TIME" \
      --benchmark_format=console \
      --benchmark_out_format=json \
      --benchmark_out="$out_json" "$@"; then
    echo "error: $name exited non-zero; aborting" >&2
    exit 1
  fi
  validate_json "$out_json" "$name" --bench
}

# validate_json FILE WHAT [--bench]: FILE must parse as JSON; with
# --bench it must also hold a non-empty "benchmarks" array.
validate_json() {
  local file="$1" what="$2" mode="${3:-}"
  if ! python3 - "$file" "$mode" <<'PYEOF'
import json
import sys

path, mode = sys.argv[1], sys.argv[2]
try:
    doc = json.load(open(path))
except (OSError, ValueError) as e:
    sys.exit(f"{path}: {e}")
if mode == "--bench" and not doc.get("benchmarks"):
    sys.exit(f"{path}: no benchmark entries (all skipped or filtered out?)")
PYEOF
  then
    echo "error: $what produced invalid output; aborting" >&2
    exit 1
  fi
}

run_bench bench_parallel_recovery "$TMP/parallel_recovery.json"
run_bench bench_logging_cost "$TMP/force_policy.json" \
  --benchmark_filter=ForcePolicy
run_bench bench_replication "$TMP/replication.json"
run_bench bench_adaptive_logging "$TMP/adaptive_logging.json"
run_bench bench_txn "$TMP/txn.json"
run_bench bench_hot_path "$TMP/hot_path.json"
run_bench bench_obs "$TMP/obs.json"
run_bench bench_logstore "$TMP/logstore.json"

# Crash a demo workload and dry-run its recovery under tracing: the
# inspect document carries the log/recovery summaries, the recovery-only
# metric delta, and the full metrics snapshot.
if ! "$BUILD_DIR"/tools/loglog_inspect --demo --crash --json \
    > "$TMP/inspect.json"; then
  echo "error: loglog_inspect --demo --crash failed; aborting" >&2
  exit 1
fi
validate_json "$TMP/inspect.json" "loglog_inspect --demo"

# Two-node replication demo: primary durable vs standby applied LSN and
# the ship.* lag gauges, embedded in the replication document.
if ! "$BUILD_DIR"/tools/loglog_inspect --ship-status --json \
    > "$TMP/ship_status.json"; then
  echo "error: loglog_inspect --ship-status failed; aborting" >&2
  exit 1
fi
validate_json "$TMP/ship_status.json" "loglog_inspect --ship-status"

# Log-as-database demo: the object index, two-tier footprint and
# compactor totals, embedded in the logstore document.
if ! "$BUILD_DIR"/tools/loglog_inspect --logstore-stats --json \
    > "$TMP/logstore_stats.json"; then
  echo "error: loglog_inspect --logstore-stats failed; aborting" >&2
  exit 1
fi
validate_json "$TMP/logstore_stats.json" "loglog_inspect --logstore-stats"

python3 - "$TMP/parallel_recovery.json" "$TMP/force_policy.json" \
  "$TMP/inspect.json" "$OUT" <<'PYEOF'
import json
import sys

parallel_path, force_path, inspect_path, out_path = sys.argv[1:5]
parallel = json.load(open(parallel_path))
force = json.load(open(force_path))
inspect = json.load(open(inspect_path))

# Speedup table: serial time / time at each thread count, per shape.
times = {}
for b in parallel["benchmarks"]:
    # Parse "ops:512/comps:4/threads:1" from the run name.
    parts = dict(
        kv.split(":") for kv in b["run_name"].split("/") if kv.count(":") == 1
    )
    key = (int(parts["ops"]), int(parts["comps"]))
    times.setdefault(key, {})[int(parts["threads"])] = b["real_time"]

speedups = []
for (ops, comps), by_threads in sorted(times.items()):
    serial = by_threads.get(1)
    if not serial:
        continue
    row = {"ops": ops, "components": comps, "serial_ms": serial}
    for t, v in sorted(by_threads.items()):
        if t == 1:
            continue
        row[f"speedup_t{t}"] = round(serial / v, 2)
    speedups.append(row)

forces = []
for b in force["benchmarks"]:
    parts = dict(
        kv.split(":") for kv in b["run_name"].split("/") if kv.count(":") == 1
    )
    forces.append(
        {
            "policy": b.get("label", b["run_name"]),
            "cycle": int(parts["cycle"]),
            "forces_per_1k_ops": round(b["forces_per_1k_ops"], 2),
            "coalesced_per_op": round(b["coalesced_per_op"], 3),
        }
    )

merged = {
    "context": parallel.get("context", {}),
    "recovery_speedup": speedups,
    "forces_per_policy": forces,
    "metrics_snapshot": inspect,
    "raw": {
        "parallel_recovery": parallel["benchmarks"],
        "force_policy": force["benchmarks"],
    },
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in speedups:
    print("  ", row)
for row in forces:
    print("  ", row)
PYEOF
validate_json "$OUT" "recovery merge"

python3 - "$TMP/replication.json" "$TMP/ship_status.json" \
  "$REPL_OUT" <<'PYEOF'
import json
import sys

repl_path, ship_path, out_path = sys.argv[1:4]
repl = json.load(open(repl_path))
ship = json.load(open(ship_path))


def argmap(run_name):
    return dict(
        kv.split(":") for kv in run_name.split("/") if kv.count(":") == 1
    )


# Steady-state lag vs poll spacing (load per ship opportunity).
lag = []
for b in repl["benchmarks"]:
    if "ShipSteadyLag" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    lag.append(
        {
            "ops": int(parts["ops"]),
            "poll_every": int(parts["poll"]),
            "max_lag_records": int(b["max_lag_records"]),
            "final_lag_records": int(b["final_lag_records"]),
        }
    )

# Catch-up throughput and speedup vs redo_threads, per archive size.
catchup_times = {}
catchup = []
for b in repl["benchmarks"]:
    if "ShipCatchup" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    ops, threads = int(parts["ops"]), int(parts["threads"])
    catchup_times.setdefault(ops, {})[threads] = b["real_time"]
    catchup.append(
        {
            "ops": ops,
            "threads": threads,
            "catchup_ms": round(b["real_time"], 3),
            "records_per_s": round(b.get("records_per_s", 0.0)),
            "parallel_bursts": int(b.get("parallel_bursts", 0)),
        }
    )
for row in catchup:
    serial = catchup_times[row["ops"]].get(1)
    if serial and row["threads"] != 1:
        row["speedup"] = round(serial / row["catchup_ms"], 2)

# Failover RTO per archive size.
rto = []
for b in repl["benchmarks"]:
    if "FailoverRto" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    rto.append(
        {
            "ops": int(parts["ops"]),
            "promote_ms": round(b["real_time"], 3),
            "rto_us": int(b["rto_us"]),
            "applied_lsn": int(b["applied_lsn"]),
        }
    )

merged = {
    "context": repl.get("context", {}),
    "steady_state_lag": lag,
    "catchup_throughput": catchup,
    "failover_rto": rto,
    "ship_status_snapshot": ship,
    "raw": {"replication": repl["benchmarks"]},
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in lag:
    print("  ", row)
for row in catchup:
    print("  ", row)
for row in rto:
    print("  ", row)
PYEOF
validate_json "$REPL_OUT" "replication merge"

python3 - "$TMP/adaptive_logging.json" "$ADAPT_OUT" <<'PYEOF'
import json
import sys

adapt_path, out_path = sys.argv[1:3]
adapt = json.load(open(adapt_path))

# Per-mode crossover rows: log volume vs recovery time vs redo work.
modes = []
for b in adapt["benchmarks"]:
    if "AdaptiveLoggingCrossover" not in b["run_name"]:
        continue
    modes.append(
        {
            "mode": b.get("label", b["run_name"]),
            "log_bytes": int(b["log_bytes"]),
            "recovery_ms": round(b["real_time"], 3),
            "ops_redone": int(b["ops_redone"]),
            "expensive_redos": int(b["expensive_redos"]),
            "identity_writes": int(b["identity_writes"]),
            "policy_decisions": int(b["policy_decisions"]),
            "budget_ops": int(b["budget_ops"]),
            "within_budget": bool(b["within_budget"]),
        }
    )

by_mode = {row["mode"]: row for row in modes}
summary = {}
logical = by_mode.get("all-logical")
physical = by_mode.get("all-physical")
adaptive = by_mode.get("adaptive")
if logical and adaptive:
    summary["adaptive_vs_logical_log_ratio"] = round(
        adaptive["log_bytes"] / logical["log_bytes"], 4
    )
    summary["adaptive_recovery_speedup_vs_logical"] = round(
        logical["recovery_ms"] / adaptive["recovery_ms"], 2
    )
if physical and adaptive:
    summary["physical_vs_adaptive_log_ratio"] = round(
        physical["log_bytes"] / adaptive["log_bytes"], 4
    )
if adaptive:
    summary["adaptive_within_budget"] = adaptive["within_budget"]

merged = {
    "context": adapt.get("context", {}),
    "crossover": modes,
    "summary": summary,
    "raw": {"adaptive_logging": adapt["benchmarks"]},
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in modes:
    print("  ", row)
print("  ", summary)
PYEOF
validate_json "$ADAPT_OUT" "adaptive merge"

python3 - "$TMP/txn.json" "$TXN_OUT" <<'PYEOF'
import json
import sys

txn_path, out_path = sys.argv[1:3]
txn = json.load(open(txn_path))


def argmap(run_name):
    return dict(
        kv.split(":") for kv in run_name.split("/") if kv.count(":") == 1
    )


# Commit throughput vs transaction depth: the forced commit marker
# amortizes over more operations as depth grows.
commit = []
for b in txn["benchmarks"]:
    if "TxnCommit" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    commit.append(
        {
            "ops_per_txn": int(parts["ops"]),
            "commit_us": round(b["real_time"], 3),
            "txns_per_s": round(b.get("txns_per_s", 0.0)),
            "ops_per_s": round(b.get("ops_per_s", 0.0)),
        }
    )

# Rollback latency vs depth plus the compensation footprint.
rollback = []
for b in txn["benchmarks"]:
    if "TxnRollback" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    rollback.append(
        {
            "ops_per_txn": int(parts["ops"]),
            "rollback_us": round(b["real_time"], 3),
            "clrs_per_txn": round(b.get("clrs_per_txn", 0.0), 2),
            "compensation_bytes_per_txn": round(
                b.get("compensation_bytes_per_txn", 0.0)
            ),
        }
    )

# Throughput as the abort rate climbs.
mix = []
for b in txn["benchmarks"]:
    if "TxnAbortMix" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    mix.append(
        {
            "abort_pct": int(parts["abort"]),
            "ops_per_s": round(b.get("ops_per_s", 0.0)),
            "committed": int(b.get("committed", 0)),
            "aborted": int(b.get("aborted", 0)),
        }
    )

merged = {
    "context": txn.get("context", {}),
    "commit_throughput": commit,
    "rollback_latency": rollback,
    "abort_mix_throughput": mix,
    "raw": {"txn": txn["benchmarks"]},
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in commit + rollback + mix:
    print("  ", row)
PYEOF
validate_json "$TXN_OUT" "txn merge"

python3 - "$TMP/hot_path.json" "$HOT_OUT" <<'PYEOF'
import json
import sys

hot_path, out_path = sys.argv[1:3]
hot = json.load(open(hot_path))


def argmap(run_name):
    return dict(
        kv.split(":") for kv in run_name.split("/") if kv.count(":") == 1
    )


# Appends/sec per (payload, producers) shape: the old whole-record
# Append pipeline vs the zero-copy reserve+fill path, with the speedup.
rates = {}
for b in hot["benchmarks"]:
    name = b["run_name"]
    if "Append" not in name:
        continue
    parts = argmap(name)
    which = "reserve_fill" if "ReserveFill" in name else "legacy"
    key = (int(parts["valbytes"]), int(parts.get("threads", 1)))
    rates.setdefault(key, {})[which] = b["items_per_second"]

appends = []
for (valbytes, threads), by_path in sorted(rates.items()):
    row = {"valbytes": valbytes, "threads": threads}
    if "legacy" in by_path:
        row["legacy_appends_per_s"] = round(by_path["legacy"])
    if "reserve_fill" in by_path:
        row["reserve_fill_appends_per_s"] = round(by_path["reserve_fill"])
    if "legacy" in by_path and "reserve_fill" in by_path:
        row["speedup"] = round(by_path["reserve_fill"] / by_path["legacy"], 2)
    appends.append(row)

# CRC32C throughput per kernel; the ratio the WAL actually sees is the
# dispatched fast kernel over the seed's byte-at-a-time table.
crc_rates = {}
crc = []
for b in hot["benchmarks"]:
    name = b["run_name"]
    if "Crc32c" not in name:
        continue
    kernel = name.split("/")[0].replace("BM_Crc32c", "").lower()
    length = int(name.split("/")[1])
    mb_s = b["bytes_per_second"] / 1e6
    crc_rates.setdefault(length, {})[kernel] = mb_s
    row = {"kernel": kernel, "len": length, "mb_per_s": round(mb_s, 1)}
    if b.get("label"):
        row["dispatched_to"] = b["label"]
    crc.append(row)
crc_summary = {}
for length, by_kernel in sorted(crc_rates.items()):
    if "scalar" in by_kernel and "fast" in by_kernel:
        crc_summary[f"fast_vs_scalar_len{length}"] = round(
            by_kernel["fast"] / by_kernel["scalar"], 2
        )

# Per-commit force latency on a slow device: synchronous forces pay the
# device latency serially; async completions overlap the waits.
force_times = {}
force = []
for b in hot["benchmarks"]:
    name = b["run_name"]
    if "ForceCommit" not in name:
        continue
    parts = argmap(name)
    mode = "async" if int(parts["async"]) else "sync"
    per_commit_us = b["real_time"] / b["txns_per_batch"]
    force_times[mode] = per_commit_us
    force.append(
        {
            "mode": mode,
            "batch_us": round(b["real_time"], 1),
            "commit_latency_us": round(per_commit_us, 2),
            "txns_per_batch": int(b["txns_per_batch"]),
        }
    )
force_summary = {}
if "sync" in force_times and "async" in force_times:
    force_summary["overlap_speedup"] = round(
        force_times["sync"] / force_times["async"], 2
    )

merged = {
    "context": hot.get("context", {}),
    "append_throughput": appends,
    "crc32c_throughput": crc,
    "crc32c_summary": crc_summary,
    "force_overlap_latency": force,
    "force_overlap_summary": force_summary,
    "raw": {"hot_path": hot["benchmarks"]},
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in appends + crc + force:
    print("  ", row)
print("  ", {**crc_summary, **force_summary})
PYEOF
validate_json "$HOT_OUT" "hot_path merge"

python3 - "$TMP/obs.json" "$OBS_OUT" <<'PYEOF'
import json
import sys

obs_path, out_path = sys.argv[1:3]
obs = json.load(open(obs_path))


def argmap(run_name):
    return dict(
        kv.split(":") for kv in run_name.split("/") if kv.count(":") == 1
    )


# Repetition-aware views: `runs` holds every measured iteration entry
# (repetitions included), aggregates are skipped and recomputed here so
# the script works with or without --benchmark_repetitions.
runs = [b for b in obs["benchmarks"] if b.get("run_type") != "aggregate"]


def median(values):
    values = sorted(values)
    return values[len(values) // 2]


# Raw flight-recorder event cost, alone and contended (medians across
# repetitions).
record_by_threads = {}
for b in runs:
    name = b["run_name"]
    if "RecordEvent" not in name:
        continue
    t = int(argmap(name).get("threads", 1))
    record_by_threads.setdefault(t, []).append(
        (b["real_time"], b["items_per_second"])
    )
record = [
    {
        "threads": t,
        "ns_per_event": round(median([r for r, _ in v]), 2),
        "events_per_s": round(median([i for _, i in v])),
    }
    for t, v in sorted(record_by_threads.items())
]

# The acceptance measurement: the paired on/off benchmark, whose delta
# is drift-immune (both phases share each iteration's machine state).
# Median across repetitions.
paired_by_size = {}
for b in runs:
    name = b["run_name"]
    if "AppendOverheadPaired" not in name:
        continue
    paired_by_size.setdefault(int(argmap(name)["valbytes"]), []).append(
        (b["on_ns_per_append"], b["off_ns_per_append"], b["overhead_pct"])
    )
paired = []
worst = 0.0
for valbytes, reps in sorted(paired_by_size.items()):
    pct = median([p for _, _, p in reps])
    worst = max(worst, pct)
    paired.append(
        {
            "valbytes": valbytes,
            "on_ns_per_append": round(median([o for o, _, _ in reps]), 2),
            "off_ns_per_append": round(median([o for _, o, _ in reps]), 2),
            "overhead_pct": round(pct, 3),
        }
    )

# A/B context: appends/sec with the recorder enabled vs disabled as
# independent runs, per (payload, producers) shape. Best-of-N throughput
# on each side — the sampled recorder's true cost is sub-nanosecond per
# append, far below single-run scheduler noise on a shared box, so these
# rows bound the effect rather than resolve it (the paired rows above
# are the acceptance number).
rates = {}
for b in runs:
    name = b["run_name"]
    if "AppendRecorder" not in name:
        continue
    parts = argmap(name)
    which = "on" if "RecorderOn" in name else "off"
    key = (int(parts["valbytes"]), int(parts.get("threads", 1)))
    rates.setdefault(key, {}).setdefault(which, []).append(
        b["items_per_second"]
    )

overhead = []
for (valbytes, threads), by_state in sorted(rates.items()):
    row = {"valbytes": valbytes, "threads": threads}
    if "on" in by_state:
        row["recorder_on_appends_per_s"] = round(max(by_state["on"]))
    if "off" in by_state:
        row["recorder_off_appends_per_s"] = round(max(by_state["off"]))
    if "on" in by_state and "off" in by_state:
        on, off = max(by_state["on"]), max(by_state["off"])
        row["ab_delta_pct"] = round((off - on) / off * 100.0, 2)
    overhead.append(row)

encode = [b for b in runs if "BlackBoxEncode" in b["run_name"]]
render = [b for b in runs if "PrometheusExport" in b["run_name"]]
artifact = []
if encode:
    artifact.append(
        {
            "what": "blackbox_encode",
            "us_per_dump": round(
                median([b["real_time"] for b in encode]) / 1e3, 2
            ),
            "mb_per_s": round(
                median([b["bytes_per_second"] for b in encode]) / 1e6, 1
            ),
            "blackbox_bytes": int(encode[0].get("blackbox_bytes", 0)),
        }
    )
if render:
    artifact.append(
        {
            "what": "prometheus_render",
            "us_per_scrape": round(
                median([b["real_time"] for b in render]) / 1e3, 2
            ),
            "mb_per_s": round(
                median([b["bytes_per_second"] for b in render]) / 1e6, 1
            ),
        }
    )

merged = {
    "context": obs.get("context", {}),
    "record_event_cost": record,
    "append_overhead_paired": paired,
    "append_overhead_worst_pct": round(worst, 3),
    "append_overhead_budget_pct": 3.0,
    "within_budget": worst < 3.0,
    "append_ab_context": overhead,
    "artifact_cost": artifact,
    "raw": {"obs": obs["benchmarks"]},
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in record + paired + overhead + artifact:
    print("  ", row)
print("  ", {"worst_overhead_pct": round(worst, 3), "within_budget": worst < 3.0})
PYEOF
validate_json "$OBS_OUT" "obs merge"

python3 - "$TMP/logstore.json" "$TMP/logstore_stats.json" \
  "$LOGSTORE_OUT" <<'PYEOF'
import json
import sys

ls_path, stats_path, out_path = sys.argv[1:4]
ls = json.load(open(ls_path))
stats = json.load(open(stats_path))


def argmap(run_name):
    return dict(
        kv.split(":") for kv in run_name.split("/") if kv.count(":") == 1
    )


# Write throughput per backend, paired into a speedup per device model.
rates = {}
for b in ls["benchmarks"]:
    if "WriteThroughput" not in b["run_name"]:
        continue
    parts = argmap(b["run_name"])
    which = "logstore" if int(parts["logstore"]) else "dual_write"
    rates.setdefault(int(parts["io"]), {})[which] = b["items_per_second"]

writes = []
device_speedup = None
for io, by_backend in sorted(rates.items()):
    row = {"cost_model": "device" if io else "cpu-only"}
    for which, rate in sorted(by_backend.items()):
        row[f"{which}_ops_per_s"] = round(rate)
    if "logstore" in by_backend and "dual_write" in by_backend:
        row["speedup"] = round(
            by_backend["logstore"] / by_backend["dual_write"], 2
        )
        if io:
            device_speedup = row["speedup"]
    writes.append(row)

# Per-read cost by source (latency from the batched read rate).
reads = []
for b in ls["benchmarks"]:
    if "BM_LogstoreRead" not in b["run_name"]:
        continue
    reads.append(
        {
            "source": b.get("label", b["run_name"]),
            "ns_per_read": round(1e9 / b["items_per_second"], 1),
            "reads_per_s": round(b["items_per_second"]),
        }
    )

# Space amplification vs compaction cadence (retention-GC archive).
space = []
steady_amp = None
for b in ls["benchmarks"]:
    if "SpaceAmp" not in b["run_name"]:
        continue
    cadence = int(argmap(b["run_name"])["cadence"])
    row = {
        "cadence_ops": cadence,
        "space_amp": round(b["space_amp"], 2),
        "hot_kb": round(b["hot_kb"], 1),
        "cold_kb": round(b["cold_kb"], 1),
        "live_kb": round(b["live_kb"], 1),
        "reclaimed_kb": round(b["reclaimed_kb"], 1),
        "compaction_runs": int(b["compaction_runs"]),
        "ops_per_s": round(b["items_per_second"]),
    }
    space.append(row)
    if cadence and (steady_amp is None or b["space_amp"] < steady_amp):
        steady_amp = b["space_amp"]

summary = {}
if device_speedup is not None:
    summary["logstore_write_speedup_device"] = device_speedup
    summary["write_speedup_target"] = 1.5
    summary["write_speedup_met"] = device_speedup >= 1.5
if steady_amp is not None:
    summary["steady_compaction_space_amp"] = round(steady_amp, 2)
    summary["space_amp_budget"] = 2.0
    summary["space_amp_met"] = steady_amp < 2.0

merged = {
    "context": ls.get("context", {}),
    "write_throughput": writes,
    "read_cost": reads,
    "space_amplification": space,
    "summary": summary,
    "logstore_status_snapshot": stats,
    "raw": {"logstore": ls["benchmarks"]},
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in writes + reads + space:
    print("  ", row)
print("  ", summary)
PYEOF
validate_json "$LOGSTORE_OUT" "logstore merge"
