#!/usr/bin/env bash
# Runs the recovery-performance benchmarks and merges their JSON output
# into BENCH_recovery.json at the repo root:
#
#   bench/run_benches.sh [--smoke] [--out FILE] [build_dir] [min_time_seconds]
#
# The merged file holds the raw google-benchmark entries for the
# parallel-REDO sweep and the ForcePolicy series, two derived summaries
# (recovery speedup vs threads at every (ops, components) shape, and
# device forces per 1k ops per ForcePolicy), and a metrics snapshot from
# a traced `loglog_inspect` crash-recovery run so the numbers carry
# their cost decomposition (see EXPERIMENTS.md E14).
#
# --smoke runs every stage at minimum duration and writes into the build
# directory instead of the repo root — a pipeline check (wired up as the
# `bench_smoke` ctest entry), not a measurement.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
OUT=""
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) POSITIONAL+=("$1"); shift ;;
  esac
done
BUILD_DIR="${POSITIONAL[0]:-build}"
if [[ $SMOKE -eq 1 ]]; then
  MIN_TIME="${POSITIONAL[1]:-0.01}"
  : "${OUT:=$BUILD_DIR/BENCH_recovery.smoke.json}"
else
  MIN_TIME="${POSITIONAL[1]:-0.2}"
  : "${OUT:=BENCH_recovery.json}"
fi

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

"$BUILD_DIR"/bench/bench_parallel_recovery \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$TMP/parallel_recovery.json"

"$BUILD_DIR"/bench/bench_logging_cost \
  --benchmark_filter=ForcePolicy \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$TMP/force_policy.json"

# Crash a demo workload and dry-run its recovery under tracing: the
# inspect document carries the log/recovery summaries, the recovery-only
# metric delta, and the full metrics snapshot.
"$BUILD_DIR"/tools/loglog_inspect --demo --crash --json \
  > "$TMP/inspect.json"

python3 - "$TMP/parallel_recovery.json" "$TMP/force_policy.json" \
  "$TMP/inspect.json" "$OUT" <<'PYEOF'
import json
import sys

parallel_path, force_path, inspect_path, out_path = sys.argv[1:5]
parallel = json.load(open(parallel_path))
force = json.load(open(force_path))
inspect = json.load(open(inspect_path))

# Speedup table: serial time / time at each thread count, per shape.
times = {}
for b in parallel["benchmarks"]:
    # Parse "ops:512/comps:4/threads:1" from the run name.
    parts = dict(
        kv.split(":") for kv in b["run_name"].split("/") if kv.count(":") == 1
    )
    key = (int(parts["ops"]), int(parts["comps"]))
    times.setdefault(key, {})[int(parts["threads"])] = b["real_time"]

speedups = []
for (ops, comps), by_threads in sorted(times.items()):
    serial = by_threads.get(1)
    if not serial:
        continue
    row = {"ops": ops, "components": comps, "serial_ms": serial}
    for t, v in sorted(by_threads.items()):
        if t == 1:
            continue
        row[f"speedup_t{t}"] = round(serial / v, 2)
    speedups.append(row)

forces = []
for b in force["benchmarks"]:
    parts = dict(
        kv.split(":") for kv in b["run_name"].split("/") if kv.count(":") == 1
    )
    forces.append(
        {
            "policy": b.get("label", b["run_name"]),
            "cycle": int(parts["cycle"]),
            "forces_per_1k_ops": round(b["forces_per_1k_ops"], 2),
            "coalesced_per_op": round(b["coalesced_per_op"], 3),
        }
    )

merged = {
    "context": parallel.get("context", {}),
    "recovery_speedup": speedups,
    "forces_per_policy": forces,
    "metrics_snapshot": inspect,
    "raw": {
        "parallel_recovery": parallel["benchmarks"],
        "force_policy": force["benchmarks"],
    },
}
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
for row in speedups:
    print("  ", row)
for row in forces:
    print("  ", row)
PYEOF
