file(REMOVE_RECURSE
  "CMakeFiles/bench_app_recovery.dir/bench_app_recovery.cc.o"
  "CMakeFiles/bench_app_recovery.dir/bench_app_recovery.cc.o.d"
  "bench_app_recovery"
  "bench_app_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
