# Empty dependencies file for bench_app_recovery.
# This may be replaced when dependencies are built.
