file(REMOVE_RECURSE
  "CMakeFiles/bench_btree_split.dir/bench_btree_split.cc.o"
  "CMakeFiles/bench_btree_split.dir/bench_btree_split.cc.o.d"
  "bench_btree_split"
  "bench_btree_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btree_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
