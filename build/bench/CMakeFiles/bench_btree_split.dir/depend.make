# Empty dependencies file for bench_btree_split.
# This may be replaced when dependencies are built.
