file(REMOVE_RECURSE
  "CMakeFiles/bench_cm_identity.dir/bench_cm_identity.cc.o"
  "CMakeFiles/bench_cm_identity.dir/bench_cm_identity.cc.o.d"
  "bench_cm_identity"
  "bench_cm_identity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cm_identity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
