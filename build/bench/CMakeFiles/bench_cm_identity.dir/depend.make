# Empty dependencies file for bench_cm_identity.
# This may be replaced when dependencies are built.
