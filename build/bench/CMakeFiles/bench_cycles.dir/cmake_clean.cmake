file(REMOVE_RECURSE
  "CMakeFiles/bench_cycles.dir/bench_cycles.cc.o"
  "CMakeFiles/bench_cycles.dir/bench_cycles.cc.o.d"
  "bench_cycles"
  "bench_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
