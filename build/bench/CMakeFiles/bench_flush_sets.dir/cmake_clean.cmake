file(REMOVE_RECURSE
  "CMakeFiles/bench_flush_sets.dir/bench_flush_sets.cc.o"
  "CMakeFiles/bench_flush_sets.dir/bench_flush_sets.cc.o.d"
  "bench_flush_sets"
  "bench_flush_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flush_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
