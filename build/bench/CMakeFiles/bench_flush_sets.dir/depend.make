# Empty dependencies file for bench_flush_sets.
# This may be replaced when dependencies are built.
