file(REMOVE_RECURSE
  "CMakeFiles/bench_hot_objects.dir/bench_hot_objects.cc.o"
  "CMakeFiles/bench_hot_objects.dir/bench_hot_objects.cc.o.d"
  "bench_hot_objects"
  "bench_hot_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hot_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
