# Empty dependencies file for bench_hot_objects.
# This may be replaced when dependencies are built.
