file(REMOVE_RECURSE
  "CMakeFiles/bench_install_logging.dir/bench_install_logging.cc.o"
  "CMakeFiles/bench_install_logging.dir/bench_install_logging.cc.o.d"
  "bench_install_logging"
  "bench_install_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_install_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
