# Empty dependencies file for bench_install_logging.
# This may be replaced when dependencies are built.
