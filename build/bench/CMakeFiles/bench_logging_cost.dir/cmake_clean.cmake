file(REMOVE_RECURSE
  "CMakeFiles/bench_logging_cost.dir/bench_logging_cost.cc.o"
  "CMakeFiles/bench_logging_cost.dir/bench_logging_cost.cc.o.d"
  "bench_logging_cost"
  "bench_logging_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logging_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
