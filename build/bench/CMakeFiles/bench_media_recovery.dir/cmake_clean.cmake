file(REMOVE_RECURSE
  "CMakeFiles/bench_media_recovery.dir/bench_media_recovery.cc.o"
  "CMakeFiles/bench_media_recovery.dir/bench_media_recovery.cc.o.d"
  "bench_media_recovery"
  "bench_media_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_media_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
