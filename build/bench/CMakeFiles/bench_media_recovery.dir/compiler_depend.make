# Empty compiler generated dependencies file for bench_media_recovery.
# This may be replaced when dependencies are built.
