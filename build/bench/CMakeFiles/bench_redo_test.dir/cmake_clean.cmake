file(REMOVE_RECURSE
  "CMakeFiles/bench_redo_test.dir/bench_redo_test.cc.o"
  "CMakeFiles/bench_redo_test.dir/bench_redo_test.cc.o.d"
  "bench_redo_test"
  "bench_redo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
