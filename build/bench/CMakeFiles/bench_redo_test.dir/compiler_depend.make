# Empty compiler generated dependencies file for bench_redo_test.
# This may be replaced when dependencies are built.
