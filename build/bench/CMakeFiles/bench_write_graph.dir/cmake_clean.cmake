file(REMOVE_RECURSE
  "CMakeFiles/bench_write_graph.dir/bench_write_graph.cc.o"
  "CMakeFiles/bench_write_graph.dir/bench_write_graph.cc.o.d"
  "bench_write_graph"
  "bench_write_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_write_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
