# Empty dependencies file for bench_write_graph.
# This may be replaced when dependencies are built.
