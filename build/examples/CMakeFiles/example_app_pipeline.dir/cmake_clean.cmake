file(REMOVE_RECURSE
  "CMakeFiles/example_app_pipeline.dir/app_pipeline.cpp.o"
  "CMakeFiles/example_app_pipeline.dir/app_pipeline.cpp.o.d"
  "example_app_pipeline"
  "example_app_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_app_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
