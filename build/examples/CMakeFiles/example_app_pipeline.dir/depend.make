# Empty dependencies file for example_app_pipeline.
# This may be replaced when dependencies are built.
