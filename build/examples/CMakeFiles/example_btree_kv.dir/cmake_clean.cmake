file(REMOVE_RECURSE
  "CMakeFiles/example_btree_kv.dir/btree_kv.cpp.o"
  "CMakeFiles/example_btree_kv.dir/btree_kv.cpp.o.d"
  "example_btree_kv"
  "example_btree_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_btree_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
