# Empty compiler generated dependencies file for example_btree_kv.
# This may be replaced when dependencies are built.
