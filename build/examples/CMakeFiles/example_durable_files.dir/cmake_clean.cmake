file(REMOVE_RECURSE
  "CMakeFiles/example_durable_files.dir/durable_files.cpp.o"
  "CMakeFiles/example_durable_files.dir/durable_files.cpp.o.d"
  "example_durable_files"
  "example_durable_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_durable_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
