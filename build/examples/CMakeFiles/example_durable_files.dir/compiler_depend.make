# Empty compiler generated dependencies file for example_durable_files.
# This may be replaced when dependencies are built.
