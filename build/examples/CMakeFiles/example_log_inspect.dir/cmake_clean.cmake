file(REMOVE_RECURSE
  "CMakeFiles/example_log_inspect.dir/log_inspect.cpp.o"
  "CMakeFiles/example_log_inspect.dir/log_inspect.cpp.o.d"
  "example_log_inspect"
  "example_log_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_log_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
