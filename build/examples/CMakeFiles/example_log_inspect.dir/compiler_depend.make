# Empty compiler generated dependencies file for example_log_inspect.
# This may be replaced when dependencies are built.
