file(REMOVE_RECURSE
  "CMakeFiles/example_message_queue.dir/message_queue.cpp.o"
  "CMakeFiles/example_message_queue.dir/message_queue.cpp.o.d"
  "example_message_queue"
  "example_message_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_message_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
