# Empty compiler generated dependencies file for example_message_queue.
# This may be replaced when dependencies are built.
