
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backup/backup_manager.cc" "src/CMakeFiles/loglog.dir/backup/backup_manager.cc.o" "gcc" "src/CMakeFiles/loglog.dir/backup/backup_manager.cc.o.d"
  "/root/repo/src/backup/media_recovery.cc" "src/CMakeFiles/loglog.dir/backup/media_recovery.cc.o" "gcc" "src/CMakeFiles/loglog.dir/backup/media_recovery.cc.o.d"
  "/root/repo/src/cache/cache_manager.cc" "src/CMakeFiles/loglog.dir/cache/cache_manager.cc.o" "gcc" "src/CMakeFiles/loglog.dir/cache/cache_manager.cc.o.d"
  "/root/repo/src/cache/object_table.cc" "src/CMakeFiles/loglog.dir/cache/object_table.cc.o" "gcc" "src/CMakeFiles/loglog.dir/cache/object_table.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/loglog.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/loglog.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/loglog.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/loglog.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/loglog.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/loglog.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/loglog.dir/common/status.cc.o" "gcc" "src/CMakeFiles/loglog.dir/common/status.cc.o.d"
  "/root/repo/src/domains/app/recoverable_app.cc" "src/CMakeFiles/loglog.dir/domains/app/recoverable_app.cc.o" "gcc" "src/CMakeFiles/loglog.dir/domains/app/recoverable_app.cc.o.d"
  "/root/repo/src/domains/btree/btree.cc" "src/CMakeFiles/loglog.dir/domains/btree/btree.cc.o" "gcc" "src/CMakeFiles/loglog.dir/domains/btree/btree.cc.o.d"
  "/root/repo/src/domains/btree/btree_page.cc" "src/CMakeFiles/loglog.dir/domains/btree/btree_page.cc.o" "gcc" "src/CMakeFiles/loglog.dir/domains/btree/btree_page.cc.o.d"
  "/root/repo/src/domains/dataflow/dataflow.cc" "src/CMakeFiles/loglog.dir/domains/dataflow/dataflow.cc.o" "gcc" "src/CMakeFiles/loglog.dir/domains/dataflow/dataflow.cc.o.d"
  "/root/repo/src/domains/fs/file_system.cc" "src/CMakeFiles/loglog.dir/domains/fs/file_system.cc.o" "gcc" "src/CMakeFiles/loglog.dir/domains/fs/file_system.cc.o.d"
  "/root/repo/src/domains/queue/recoverable_queue.cc" "src/CMakeFiles/loglog.dir/domains/queue/recoverable_queue.cc.o" "gcc" "src/CMakeFiles/loglog.dir/domains/queue/recoverable_queue.cc.o.d"
  "/root/repo/src/engine/recovery_engine.cc" "src/CMakeFiles/loglog.dir/engine/recovery_engine.cc.o" "gcc" "src/CMakeFiles/loglog.dir/engine/recovery_engine.cc.o.d"
  "/root/repo/src/explain/explainability.cc" "src/CMakeFiles/loglog.dir/explain/explainability.cc.o" "gcc" "src/CMakeFiles/loglog.dir/explain/explainability.cc.o.d"
  "/root/repo/src/graph/batch_write_graph.cc" "src/CMakeFiles/loglog.dir/graph/batch_write_graph.cc.o" "gcc" "src/CMakeFiles/loglog.dir/graph/batch_write_graph.cc.o.d"
  "/root/repo/src/graph/refined_write_graph.cc" "src/CMakeFiles/loglog.dir/graph/refined_write_graph.cc.o" "gcc" "src/CMakeFiles/loglog.dir/graph/refined_write_graph.cc.o.d"
  "/root/repo/src/graph/write_graph.cc" "src/CMakeFiles/loglog.dir/graph/write_graph.cc.o" "gcc" "src/CMakeFiles/loglog.dir/graph/write_graph.cc.o.d"
  "/root/repo/src/graph/write_graph_w.cc" "src/CMakeFiles/loglog.dir/graph/write_graph_w.cc.o" "gcc" "src/CMakeFiles/loglog.dir/graph/write_graph_w.cc.o.d"
  "/root/repo/src/ops/function_registry.cc" "src/CMakeFiles/loglog.dir/ops/function_registry.cc.o" "gcc" "src/CMakeFiles/loglog.dir/ops/function_registry.cc.o.d"
  "/root/repo/src/ops/op_builder.cc" "src/CMakeFiles/loglog.dir/ops/op_builder.cc.o" "gcc" "src/CMakeFiles/loglog.dir/ops/op_builder.cc.o.d"
  "/root/repo/src/ops/operation.cc" "src/CMakeFiles/loglog.dir/ops/operation.cc.o" "gcc" "src/CMakeFiles/loglog.dir/ops/operation.cc.o.d"
  "/root/repo/src/recovery/analysis.cc" "src/CMakeFiles/loglog.dir/recovery/analysis.cc.o" "gcc" "src/CMakeFiles/loglog.dir/recovery/analysis.cc.o.d"
  "/root/repo/src/recovery/recovery_driver.cc" "src/CMakeFiles/loglog.dir/recovery/recovery_driver.cc.o" "gcc" "src/CMakeFiles/loglog.dir/recovery/recovery_driver.cc.o.d"
  "/root/repo/src/recovery/redo_test.cc" "src/CMakeFiles/loglog.dir/recovery/redo_test.cc.o" "gcc" "src/CMakeFiles/loglog.dir/recovery/redo_test.cc.o.d"
  "/root/repo/src/sim/crash_harness.cc" "src/CMakeFiles/loglog.dir/sim/crash_harness.cc.o" "gcc" "src/CMakeFiles/loglog.dir/sim/crash_harness.cc.o.d"
  "/root/repo/src/sim/reference_executor.cc" "src/CMakeFiles/loglog.dir/sim/reference_executor.cc.o" "gcc" "src/CMakeFiles/loglog.dir/sim/reference_executor.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/CMakeFiles/loglog.dir/sim/workload.cc.o" "gcc" "src/CMakeFiles/loglog.dir/sim/workload.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/loglog.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/loglog.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/simulated_disk.cc" "src/CMakeFiles/loglog.dir/storage/simulated_disk.cc.o" "gcc" "src/CMakeFiles/loglog.dir/storage/simulated_disk.cc.o.d"
  "/root/repo/src/storage/stable_store.cc" "src/CMakeFiles/loglog.dir/storage/stable_store.cc.o" "gcc" "src/CMakeFiles/loglog.dir/storage/stable_store.cc.o.d"
  "/root/repo/src/wal/log_dump.cc" "src/CMakeFiles/loglog.dir/wal/log_dump.cc.o" "gcc" "src/CMakeFiles/loglog.dir/wal/log_dump.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/loglog.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/loglog.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/loglog.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/loglog.dir/wal/log_record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
