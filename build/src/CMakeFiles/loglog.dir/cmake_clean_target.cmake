file(REMOVE_RECURSE
  "libloglog.a"
)
