# Empty compiler generated dependencies file for loglog.
# This may be replaced when dependencies are built.
