# Empty dependencies file for loglog.
# This may be replaced when dependencies are built.
