
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/backup_test.cc" "tests/CMakeFiles/loglog_tests.dir/backup_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/backup_test.cc.o.d"
  "/root/repo/tests/batch_graph_test.cc" "tests/CMakeFiles/loglog_tests.dir/batch_graph_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/batch_graph_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/loglog_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/loglog_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/loglog_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/crash_recovery_test.cc" "tests/CMakeFiles/loglog_tests.dir/crash_recovery_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/crash_recovery_test.cc.o.d"
  "/root/repo/tests/dataflow_test.cc" "tests/CMakeFiles/loglog_tests.dir/dataflow_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/dataflow_test.cc.o.d"
  "/root/repo/tests/decode_fuzz_test.cc" "tests/CMakeFiles/loglog_tests.dir/decode_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/decode_fuzz_test.cc.o.d"
  "/root/repo/tests/domains_test.cc" "tests/CMakeFiles/loglog_tests.dir/domains_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/domains_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/loglog_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/explainability_test.cc" "tests/CMakeFiles/loglog_tests.dir/explainability_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/explainability_test.cc.o.d"
  "/root/repo/tests/failpoint_test.cc" "tests/CMakeFiles/loglog_tests.dir/failpoint_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/failpoint_test.cc.o.d"
  "/root/repo/tests/graph_fuzz_test.cc" "tests/CMakeFiles/loglog_tests.dir/graph_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/graph_fuzz_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/loglog_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/hot_objects_test.cc" "tests/CMakeFiles/loglog_tests.dir/hot_objects_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/hot_objects_test.cc.o.d"
  "/root/repo/tests/object_table_test.cc" "tests/CMakeFiles/loglog_tests.dir/object_table_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/object_table_test.cc.o.d"
  "/root/repo/tests/ops_test.cc" "tests/CMakeFiles/loglog_tests.dir/ops_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/ops_test.cc.o.d"
  "/root/repo/tests/queue_test.cc" "tests/CMakeFiles/loglog_tests.dir/queue_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/queue_test.cc.o.d"
  "/root/repo/tests/recovery_test.cc" "tests/CMakeFiles/loglog_tests.dir/recovery_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/recovery_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/loglog_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/loglog_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/loglog_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/system_test.cc" "tests/CMakeFiles/loglog_tests.dir/system_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/system_test.cc.o.d"
  "/root/repo/tests/wal_test.cc" "tests/CMakeFiles/loglog_tests.dir/wal_test.cc.o" "gcc" "tests/CMakeFiles/loglog_tests.dir/wal_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/loglog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
