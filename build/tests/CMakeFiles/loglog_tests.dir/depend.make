# Empty dependencies file for loglog_tests.
# This may be replaced when dependencies are built.
