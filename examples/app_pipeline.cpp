// Application recovery (Section 1, "Application Recovery"):
// a data-processing application whose state, inputs and outputs are all
// recoverable objects. Reads (R), execution steps (Ex) and logical
// writes (W_L) are logged without any values; after a crash the
// application resumes exactly where its logged history ended.
//
// Run: ./build/examples/example_app_pipeline

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "domains/app/recoverable_app.h"
#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

using namespace loglog;

namespace {
constexpr ObjectId kInputFile = 10;
constexpr ObjectId kAppState = 20;
constexpr ObjectId kOutputFile = 30;

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimulatedDisk disk;
  auto engine = std::make_unique<RecoveryEngine>(EngineOptions{}, &disk);

  // A 64 KiB input file the application will consume.
  Random rng(2024);
  Check(engine->Execute(MakeCreate(kInputFile, Slice(rng.Bytes(64 * 1024)))),
        "create input");

  RecoverableApp app(engine.get(), kAppState, /*state_size=*/512,
                     /*logical_writes=*/true);
  Check(app.Init(1), "init app");

  // Pipeline: read input, compute, emit a 64 KiB output — three logged
  // operations, none of which logs a value.
  uint64_t log_before = engine->stats().op_log_bytes;
  for (int step = 0; step < 20; ++step) {
    Check(app.Absorb(kInputFile), "absorb");
    Check(app.Step(step), "step");
    Check(app.Emit(kOutputFile, 64 * 1024, step), "emit");
  }
  std::printf("20 pipeline rounds (60 ops over 64 KiB objects) logged "
              "%llu bytes total\n",
              (unsigned long long)(engine->stats().op_log_bytes -
                                   log_before));

  ObjectValue state_before, output_before;
  Check(app.State(&state_before), "read state");
  Check(engine->Read(kOutputFile, &output_before), "read output");

  // Crash mid-flight: nothing was explicitly flushed.
  (void)engine->log().ForceAll();
  engine.reset();
  std::printf("-- crash --\n");

  engine = std::make_unique<RecoveryEngine>(EngineOptions{}, &disk);
  RecoveryStats stats;
  Check(engine->Recover(&stats), "recover");
  std::printf("recovery: %s\n", stats.ToString().c_str());

  RecoverableApp revived(engine.get(), kAppState, 512);
  ObjectValue state_after, output_after;
  Check(revived.State(&state_after), "read state");
  Check(engine->Read(kOutputFile, &output_after), "read output");
  std::printf("application state %s, output %s\n",
              state_after == state_before ? "identical" : "DIFFERS",
              output_after == output_before ? "identical" : "DIFFERS");
  return state_after == state_before && output_after == output_before ? 0
                                                                       : 1;
}
