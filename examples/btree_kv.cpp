// Database recovery (Section 1, "Database Recovery"): a key-value store
// on a recoverable B+-tree whose page splits are logged logically — one
// log record with four object ids per split, no page images.
//
// Run: ./build/examples/example_btree_kv

#include <cstdio>
#include <memory>
#include <string>

#include "common/random.h"
#include "domains/btree/btree.h"
#include "engine/recovery_engine.h"
#include "storage/simulated_disk.h"

using namespace loglog;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimulatedDisk disk;
  EngineOptions opts;
  opts.purge_threshold_ops = 64;
  opts.checkpoint_interval_ops = 256;
  auto engine = std::make_unique<RecoveryEngine>(opts, &disk);

  BtreeOptions bopts;
  bopts.max_page_bytes = 2048;

  Random rng(99);
  {
    Btree tree(engine.get(), bopts);
    Check(tree.Open(), "open");
    for (int i = 0; i < 3000; ++i) {
      Check(tree.Insert(rng.Uniform(1'000'000),
                        "value-" + std::to_string(i)),
            "insert");
    }
    std::printf("inserted 3000 keys: %llu splits (%llu root splits), "
                "%llu pages, %llu bytes logged in total\n",
                (unsigned long long)tree.stats().splits,
                (unsigned long long)tree.stats().root_splits,
                (unsigned long long)tree.allocated_pages(),
                (unsigned long long)engine->stats().op_log_bytes);
    Check(tree.Validate(), "validate");
  }

  (void)engine->log().ForceAll();
  engine.reset();
  std::printf("-- crash --\n");

  engine = std::make_unique<RecoveryEngine>(opts, &disk);
  RecoveryStats stats;
  Check(engine->Recover(&stats), "recover");
  std::printf("recovery: %s\n", stats.ToString().c_str());

  Btree tree(engine.get(), bopts);
  Check(tree.Open(), "reopen");
  Check(tree.Validate(), "revalidate");

  // Replay the same key sequence and confirm every key answers.
  Random replay(99);
  int found = 0;
  for (int i = 0; i < 3000; ++i) {
    uint64_t key = replay.Uniform(1'000'000);
    std::vector<uint8_t> value;
    if (tree.Get(key, &value).ok()) ++found;
  }
  std::printf("after recovery: %d/3000 inserted keys answer lookups\n",
              found);
  return found == 3000 ? 0 : 1;
}
