// File-system recovery (Section 1, "File System Recovery"): a small
// recoverable file system where copy and sort are logical operations —
// file contents never reach the log — and deleted temporaries cost the
// recovery process nothing.
//
// Run: ./build/examples/example_durable_files

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "domains/fs/file_system.h"
#include "engine/recovery_engine.h"
#include "storage/simulated_disk.h"

using namespace loglog;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimulatedDisk disk;
  EngineOptions opts;
  opts.checkpoint_interval_ops = 64;
  auto engine = std::make_unique<RecoveryEngine>(opts, &disk);

  {
    FileSystem fs(engine.get());
    Check(fs.Mount(), "mount");

    // 32 KiB of 16-byte records.
    Random rng(7);
    Check(fs.Create("data.bin", Slice(rng.Bytes(32 * 1024))), "create");

    uint64_t before = engine->stats().op_log_bytes;
    Check(fs.Copy("backup.bin", "data.bin"), "copy");
    Check(fs.SortFile("sorted.bin", "data.bin", 16), "sort");
    std::printf("copy+sort of a 32 KiB file logged only %llu bytes\n",
                (unsigned long long)(engine->stats().op_log_bytes - before));

    // A scratch file that lives and dies between checkpoints: its
    // operations never need redo (Section 5's transient-object point).
    Check(fs.Create("scratch.tmp", Slice(rng.Bytes(8 * 1024))), "tmp");
    Check(fs.Append("scratch.tmp", "work work work"), "tmp append");
    Check(fs.Remove("scratch.tmp"), "tmp remove");

    for (const std::string& name : fs.List()) {
      ObjectValue data;
      Check(fs.ReadFile(name, &data), "read");
      std::printf("  %-12s %6zu bytes\n", name.c_str(), data.size());
    }
  }

  (void)engine->log().ForceAll();
  engine.reset();
  std::printf("-- crash --\n");

  engine = std::make_unique<RecoveryEngine>(opts, &disk);
  RecoveryStats stats;
  Check(engine->Recover(&stats), "recover");
  std::printf("recovery: %s\n", stats.ToString().c_str());

  FileSystem fs(engine.get());
  Check(fs.Mount(), "remount");
  std::printf("after recovery:\n");
  for (const std::string& name : fs.List()) {
    ObjectValue data;
    Check(fs.ReadFile(name, &data), "read");
    std::printf("  %-12s %6zu bytes\n", name.c_str(), data.size());
  }
  ObjectValue sorted;
  Check(fs.ReadFile("sorted.bin", &sorted), "read sorted");
  for (size_t i = 16; i < sorted.size(); i += 16) {
    if (memcmp(sorted.data() + i - 16, sorted.data() + i, 16) > 0) {
      std::fprintf(stderr, "sorted.bin lost its order!\n");
      return 1;
    }
  }
  std::printf("sorted.bin is still sorted; scratch.tmp is gone: %s\n",
              fs.Exists("scratch.tmp") ? "NO" : "yes");
  return 0;
}
