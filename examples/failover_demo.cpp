// Two-node failover demo: a primary streams its WAL to a log-shipped
// standby over a faulty channel, the primary dies mid-flight, and the
// standby promotes and keeps serving — including everything that was
// still in the replication pipeline at the moment of the crash.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_failover_demo

#include <cstdio>
#include <memory>

#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "ship/divergence_audit.h"
#include "ship/log_shipper.h"
#include "ship/replication_channel.h"
#include "ship/standby_applier.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"

using namespace loglog;

static int Die(const char* what, const Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  return 1;
}

int main() {
  // Node A: an ordinary primary. Node B: a cold standby behind an
  // in-process channel with fault-injection sites (ship.channel.*).
  SimulatedDisk primary_disk;
  auto primary = std::make_unique<RecoveryEngine>(EngineOptions{},
                                                  &primary_disk);
  ReplicationChannel channel(&primary_disk.fault_injector());
  StandbyOptions standby_opts;
  standby_opts.redo_threads = 2;  // burst catch-up uses the redo pool
  StandbyApplier standby(&channel, standby_opts);
  LogShipper shipper(&primary_disk.log(), &channel);

  // The primary runs the mixed workload, shipping every 8 operations.
  // One frame is silently dropped mid-stream: the standby detects the
  // LSN gap, NAKs back to its applied watermark, and the shipper
  // rewinds — replication survives without any manual repair.
  primary_disk.fault_injector().Arm(fault::kShipSend, FaultSpec::LostOnce());
  MixedWorkloadOptions wopts;
  wopts.seed = 99;
  MixedWorkload workload(wopts);
  Status st;
  for (const OperationDesc& op : workload.SetupOps()) {
    if (!(st = primary->Execute(op)).ok()) return Die("setup", st);
  }
  for (int i = 0; i < 240; ++i) {
    st = primary->Execute(workload.Next());
    if (!st.ok() && !st.IsNotFound()) return Die("workload", st);
    if (i % 8 == 0) {
      // Only stable bytes ship: force, then poll/pump one round.
      if (!(st = primary->log().ForceAll()).ok()) return Die("force", st);
      if (!(st = shipper.Poll()).ok()) return Die("ship", st);
      if (!(st = standby.Pump()).ok()) return Die("apply", st);
    }
  }
  if (!(st = primary->log().ForceAll()).ok()) return Die("force", st);
  if (!(st = shipper.Poll()).ok()) return Die("ship", st);

  std::printf("primary durable lsn %llu, standby applied lsn %llu "
              "(%llu records shipped, %llu gap NAKs)\n",
              (unsigned long long)shipper.durable_lsn(),
              (unsigned long long)standby.applied_lsn(),
              (unsigned long long)shipper.stats().records_shipped,
              (unsigned long long)standby.stats().batches_gap);

  // The primary crashes. Its volatile state is gone; only the stable
  // disk (which we keep for the audit) and the frames already in the
  // channel survive.
  primary.reset();
  std::printf("-- primary crashed --\n");

  // Promote: drain the channel, install the replicated prefix, run
  // ordinary recovery on the standby's own disk. rto_us measures the
  // whole takeover.
  PromotionResult promo;
  if (!(st = standby.Promote(EngineOptions{}, &promo)).ok()) {
    return Die("promote", st);
  }
  std::printf("standby promoted at lsn %llu in %llu us\n",
              (unsigned long long)promo.applied_lsn,
              (unsigned long long)promo.rto_us);

  // Audit: the promoted node's stable state (values AND version state
  // identifiers) must equal a sequential replay of the dead primary's
  // log through the promoted watermark.
  DivergenceReport report;
  st = RunDivergenceAudit(primary_disk.log().ArchiveContents(),
                          promo.applied_lsn, promo.disk->store(), &report);
  if (!st.ok()) return Die("divergence audit", st);
  std::printf("divergence audit clean: %s\n", report.ToString().c_str());

  // The promoted node serves reads and writes at LSNs the dead primary
  // never issued.
  Lsn lsn = 0;
  st = promo.engine->Execute(MakeCreate(4242, "written after failover"),
                             &lsn);
  if (!st.ok()) return Die("post-failover write", st);
  ObjectValue value;
  if (!(st = promo.engine->Read(4242, &value)).ok()) {
    return Die("post-failover read", st);
  }
  std::printf("post-failover write at lsn %llu: \"%.*s\"\n",
              (unsigned long long)lsn, (int)value.size(),
              reinterpret_cast<const char*>(value.data()));
  return 0;
}
