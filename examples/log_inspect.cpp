// Operational tooling: inspect what is actually on the recovery log.
//
// Runs a small mixed workload with checkpoints, then dumps the retained
// log record-by-record and prints the summary — showing operation,
// checkpoint, and installation records, and how truncation keeps the
// retained log short while the archive keeps everything.
//
// Run: ./build/examples/example_log_inspect

#include <cstdio>

#include "engine/recovery_engine.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"
#include "wal/log_dump.h"

using namespace loglog;

int main() {
  SimulatedDisk disk;
  EngineOptions opts;
  opts.purge_threshold_ops = 12;
  opts.checkpoint_interval_ops = 40;
  RecoveryEngine engine(opts, &disk);

  MixedWorkloadOptions wopts;
  wopts.seed = 321;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    (void)engine.Execute(op);
  }
  for (int i = 0; i < 120; ++i) {
    Status st = engine.Execute(workload.Next());
    if (!st.ok() && !st.IsNotFound()) {
      std::fprintf(stderr, "execute: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  (void)engine.log().ForceAll();

  std::string text;
  LogDumpSummary summary;
  Status st = DumpLog(disk.log().Contents(), &text, &summary);
  if (!st.ok()) {
    std::fprintf(stderr, "dump: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s", text.c_str());
  std::printf(
      "---\nretained log: %llu records (%llu ops, %llu checkpoints, "
      "%llu installs), %llu payload bytes%s\n",
      (unsigned long long)summary.total(),
      (unsigned long long)summary.operations,
      (unsigned long long)summary.checkpoints,
      (unsigned long long)summary.installs,
      (unsigned long long)summary.payload_bytes,
      summary.torn_tail ? " (torn tail)" : "");

  LogDumpSummary archive;
  st = DumpLog(disk.log().ArchiveContents(), nullptr, &archive);
  if (!st.ok()) {
    std::fprintf(stderr, "archive dump: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "full history: %llu records — truncation dropped %llu of them\n",
      (unsigned long long)archive.total(),
      (unsigned long long)(archive.total() - summary.total()));
  return 0;
}
