// A recoverable work queue: an application produces messages with
// logical writes (payloads never hit the log), a consumer drains them,
// and consumed messages are transient objects whose history costs
// recovery nothing.
//
// Run: ./build/examples/example_message_queue

#include <cstdio>
#include <memory>

#include "domains/app/recoverable_app.h"
#include "domains/queue/recoverable_queue.h"
#include "engine/recovery_engine.h"
#include "storage/simulated_disk.h"

using namespace loglog;

namespace {
void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimulatedDisk disk;
  EngineOptions opts;
  opts.redo_test = RedoTestKind::kRsiFixpoint;
  opts.purge_threshold_ops = 16;
  auto engine = std::make_unique<RecoveryEngine>(opts, &disk);

  RecoverableApp producer(engine.get(), 42, 256);
  Check(producer.Init(1), "init producer");
  RecoverableQueue queue(engine.get());
  Check(queue.Open(), "open queue");

  uint64_t log_before = engine->stats().op_log_bytes;
  for (int i = 0; i < 50; ++i) {
    Check(producer.Step(i), "step");
    Check(queue.EnqueueFromApp(producer.id(), 16 * 1024, i), "enqueue");
  }
  std::printf("produced 50 x 16 KiB messages, logging %llu bytes total\n",
              (unsigned long long)(engine->stats().op_log_bytes -
                                   log_before));

  ObjectValue msg;
  for (int i = 0; i < 30; ++i) Check(queue.Dequeue(&msg), "dequeue");
  std::printf("consumed 30 messages; %llu still queued\n",
              (unsigned long long)queue.size());

  Check(engine->log().ForceAll(), "force");
  engine.reset();
  std::printf("-- crash --\n");

  engine = std::make_unique<RecoveryEngine>(opts, &disk);
  RecoveryStats stats;
  Check(engine->Recover(&stats), "recover");
  std::printf("recovery: %s\n", stats.ToString().c_str());
  std::printf("(skip_unexposed counts the consumed messages' enqueue "
              "work that was never re-executed)\n");

  RecoverableQueue revived(engine.get());
  Check(revived.Open(), "reopen queue");
  std::printf("queue recovered with %llu pending messages\n",
              (unsigned long long)revived.size());
  int drained = 0;
  while (revived.Dequeue(&msg).ok()) ++drained;
  std::printf("drained %d messages of %zu bytes each\n", drained,
              msg.size());
  return drained == 20 ? 0 : 1;
}
