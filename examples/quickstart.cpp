// Quickstart: a recoverable object store with logical logging.
//
// Creates objects, runs logical operations whose values never reach the
// log, simulates a crash, recovers, and shows the state surviving.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdio>
#include <memory>

#include "engine/recovery_engine.h"
#include "ops/op_builder.h"
#include "storage/simulated_disk.h"

using namespace loglog;

int main() {
  // The disk survives crashes; the engine is volatile.
  SimulatedDisk disk;
  auto engine = std::make_unique<RecoveryEngine>(EngineOptions{}, &disk);

  // Create two objects and derive a third logically: the copy's log
  // record holds only identifiers, never the 1 KiB payload.
  std::string payload(1024, 'x');
  Status st = engine->Execute(MakeCreate(1, payload));
  if (!st.ok()) return std::fprintf(stderr, "%s\n", st.ToString().c_str());
  st = engine->Execute(MakeCreate(2, "small"));
  if (!st.ok()) return std::fprintf(stderr, "%s\n", st.ToString().c_str());
  st = engine->Execute(MakeCopy(/*y=*/3, /*x=*/1));
  if (!st.ok()) return std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf("executed %llu ops, logged %llu bytes total\n",
              (unsigned long long)engine->stats().ops_executed,
              (unsigned long long)engine->stats().op_log_bytes);

  // Make the log stable (an unforced tail would die with the crash),
  // then crash: all volatile state is gone.
  (void)engine->log().ForceAll();
  engine.reset();
  std::printf("-- crash --\n");

  engine = std::make_unique<RecoveryEngine>(EngineOptions{}, &disk);
  RecoveryStats stats;
  st = engine->Recover(&stats);
  if (!st.ok()) return std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::printf("recovery: %s\n", stats.ToString().c_str());

  ObjectValue copy;
  st = engine->Read(3, &copy);
  if (!st.ok()) return std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::printf("object 3 recovered, %zu bytes, first byte '%c'\n",
              copy.size(), copy.empty() ? '?' : copy[0]);
  return 0;
}
