#include "adapt/adaptive_policy.h"

#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace loglog {

std::string AdaptivePolicyStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "decisions=%llu to_phys=%llu to_physio=%llu to_log=%llu "
                "restored=%llu writes=%llu",
                static_cast<unsigned long long>(decisions),
                static_cast<unsigned long long>(to_physical),
                static_cast<unsigned long long>(to_physiological),
                static_cast<unsigned long long>(to_logical),
                static_cast<unsigned long long>(restored),
                static_cast<unsigned long long>(writes_observed));
  return buf;
}

AdaptiveLogPolicy::AdaptiveLogPolicy(const AdaptivePolicyOptions& options)
    : options_(options),
      decisions_metric_(
          MetricsRegistry::Global().GetCounter(metric::kAdaptDecisions)),
      promotions_metric_(
          MetricsRegistry::Global().GetCounter(metric::kAdaptPromotions)),
      demotions_metric_(
          MetricsRegistry::Global().GetCounter(metric::kAdaptDemotions)),
      restored_metric_(
          MetricsRegistry::Global().GetCounter(metric::kAdaptRestored)) {}

AdaptiveLogPolicy::ObjectState& AdaptiveLogPolicy::Touch(ObjectId id,
                                                         size_t value_size) {
  ++tick_;
  ++stats_.writes_observed;
  ObjectState& s = objects_[id];
  const double a = options_.ewma_alpha;
  if (s.seen) {
    const double interval = static_cast<double>(tick_ - s.last_write_tick);
    s.ewma_interval = s.has_interval
                          ? a * interval + (1.0 - a) * s.ewma_interval
                          : interval;
    s.has_interval = true;
    s.ewma_size =
        a * static_cast<double>(value_size) + (1.0 - a) * s.ewma_size;
  } else {
    s.seen = true;
    s.ewma_size = static_cast<double>(value_size);
  }
  s.last_write_tick = tick_;
  ++s.writes;
  return s;
}

PolicyDecision AdaptiveLogPolicy::Decide(ObjectId id, size_t value_size,
                                         uint64_t chain_depth) {
  ObjectState& s = Touch(id, value_size);
  PolicyDecision d;
  d.id = id;
  d.previous = s.cls;
  d.chosen = s.cls;
  d.chain_depth = chain_depth;
  d.ewma_size = static_cast<uint64_t>(s.ewma_size);

  // The first write may classify freely; afterwards a class change is
  // allowed only once per cooldown window.
  const bool may_change =
      s.writes <= 1 ||
      s.writes - s.writes_at_last_change >= options_.decision_cooldown_writes;

  // Threshold tests. An object without an interval estimate (first
  // write) counts as cold: nothing argues for keeping its value out of
  // the log yet.
  const bool hot =
      s.has_interval && s.ewma_interval <= options_.hot_interval_writes;
  const bool cold =
      !s.has_interval || s.ewma_interval >= options_.cold_interval_writes;
  const bool small =
      s.ewma_size <= static_cast<double>(options_.small_value_bytes);
  const bool large =
      s.ewma_size >= static_cast<double>(options_.large_value_bytes);

  LogChoice want = s.cls;
  PolicyReason why = PolicyReason::kDefault;
  if (chain_depth >= options_.max_chain_depth) {
    // A blind W_P peels the object off its node no matter how hot it is:
    // the chain is already too expensive to replay.
    want = LogChoice::kPhysical;
    why = PolicyReason::kDeepChain;
  } else if (cold && large) {
    want = LogChoice::kPhysical;
    why = PolicyReason::kColdLarge;
  } else if (cold && !small) {
    want = LogChoice::kPhysiological;
    why = PolicyReason::kColdLarge;
  } else if (hot && small) {
    want = LogChoice::kLogical;
    why = PolicyReason::kHotSmall;
  }
  // Lukewarm or mixed signals: keep the current class (hysteresis).

  if (want != s.cls && may_change) {
    d.chosen = want;
    d.reason = why;
    d.changed = true;
    FlightRecorder::Global().Record(
        FlightEventType::kPolicyFlip, 0, id,
        (static_cast<uint64_t>(s.cls) << 8) | static_cast<uint64_t>(want));
    s.cls = want;
    s.writes_at_last_change = s.writes;
    ++stats_.decisions;
    decisions_metric_->Inc();
    switch (want) {
      case LogChoice::kPhysical:
        ++stats_.to_physical;
        promotions_metric_->Inc();
        break;
      case LogChoice::kPhysiological:
        ++stats_.to_physiological;
        promotions_metric_->Inc();
        break;
      case LogChoice::kLogical:
        ++stats_.to_logical;
        demotions_metric_->Inc();
        break;
    }
    TraceRecorder::Global().AddInstant(
        "adapt.decision", "adapt",
        {{"object", std::to_string(id)},
         {"class", LogChoiceName(want)},
         {"reason", PolicyReasonName(why)},
         {"depth", std::to_string(chain_depth)}});
  }
  return d;
}

void AdaptiveLogPolicy::ObserveWrite(ObjectId id, size_t value_size) {
  Touch(id, value_size);
}

void AdaptiveLogPolicy::Restore(ObjectId id, LogChoice cls) {
  ObjectState& s = objects_[id];
  s.cls = cls;
  // The reseed is not a fresh decision: leave the cooldown anchored so
  // post-crash traffic can reclassify as soon as the model disagrees.
  s.writes_at_last_change = 0;
  ++stats_.restored;
  restored_metric_->Inc();
}

LogChoice AdaptiveLogPolicy::Current(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? LogChoice::kLogical : it->second.cls;
}

}  // namespace loglog
