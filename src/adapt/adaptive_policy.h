#ifndef LOGLOG_ADAPT_ADAPTIVE_POLICY_H_
#define LOGLOG_ADAPT_ADAPTIVE_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "adapt/log_choice.h"
#include "adapt/policy_options.h"
#include "common/types.h"

namespace loglog {

class Counter;

/// Aggregate decision counters, mirrored into adapt.* metrics.
struct AdaptivePolicyStats {
  uint64_t decisions = 0;  // class changes (one kPolicyDecision record each)
  uint64_t to_physical = 0;
  uint64_t to_physiological = 0;
  uint64_t to_logical = 0;
  uint64_t restored = 0;  // classes reseeded from analysis after a crash
  uint64_t writes_observed = 0;

  std::string ToString() const;
};

/// One per-object classification, with the model inputs that produced it.
/// `changed` marks a class flip the engine must persist as a
/// kPolicyDecision control record before the write it governs.
struct PolicyDecision {
  ObjectId id = kInvalidObjectId;
  LogChoice chosen = LogChoice::kLogical;
  LogChoice previous = LogChoice::kLogical;
  PolicyReason reason = PolicyReason::kDefault;
  uint64_t chain_depth = 0;
  uint64_t ewma_size = 0;
  bool changed = false;
};

/// \brief Online cost model choosing the logging class per object.
///
/// The paper fixes each domain's logging class at authoring time; this
/// engine revisits the choice on every write from cheap per-object
/// statistics, trading log volume against redo-chain length:
///
///  - hot + small   -> W_L  (log stays tiny; redo chains are cut by the
///                           recovery budget's W_IP installs instead)
///  - cold + large  -> W_P  (value is logged; blind write peels the
///                           object off its rW node, no chain growth)
///  - cold + medium -> W_PL (delta against the cached value when that is
///                           smaller than the full after-image)
///  - deep rW chain -> W_P  (regardless of temperature: cuts a chain
///                           that would otherwise blow the budget)
///
/// Decisions are deterministic functions of the write sequence, so a
/// serial re-execution reproduces the exact class mix — parallel-redo
/// equivalence and the divergence audit hold under adaptive logging
/// because the *logged* records already carry their chosen class.
///
/// Not thread-safe; owned and driven by the single-threaded engine
/// execute path, like OpBuilder.
class AdaptiveLogPolicy {
 public:
  explicit AdaptiveLogPolicy(const AdaptivePolicyOptions& options);

  /// Classifies a pending write of `id`. `value_size` is the size of the
  /// value the write is about to produce (EWMA sample); `chain_depth` is
  /// the rW dependency weight of the object's owning node (0 when the
  /// object is clean). Updates both estimators and, cooldown permitting,
  /// the assigned class.
  PolicyDecision Decide(ObjectId id, size_t value_size, uint64_t chain_depth);

  /// Records a write of `id` that is not eligible for reclassification
  /// (ops whose class is structural: W_P / W_PL / W_IP / create /
  /// delete). Keeps the estimators honest without touching the class.
  void ObserveWrite(ObjectId id, size_t value_size);

  /// Reseeds the per-object class after a crash from the analysis pass's
  /// reconstruction of the logged kPolicyDecision records. Objects never
  /// mentioned default to W_L, matching a fresh policy's initial class.
  void Restore(ObjectId id, LogChoice cls);

  /// Currently assigned class (W_L if the object is untracked).
  LogChoice Current(ObjectId id) const;

  const AdaptivePolicyStats& stats() const { return stats_; }
  const AdaptivePolicyOptions& options() const { return options_; }
  size_t tracked_objects() const { return objects_.size(); }

 private:
  struct ObjectState {
    double ewma_interval = 0.0;
    bool has_interval = false;
    double ewma_size = 0.0;
    bool seen = false;
    uint64_t last_write_tick = 0;
    uint64_t writes = 0;
    uint64_t writes_at_last_change = 0;
    LogChoice cls = LogChoice::kLogical;
  };

  /// Advances the global write clock and folds one size/interval sample
  /// into `id`'s estimators.
  ObjectState& Touch(ObjectId id, size_t value_size);

  AdaptivePolicyOptions options_;
  std::unordered_map<ObjectId, ObjectState> objects_;
  uint64_t tick_ = 0;  // global write counter: the interval clock
  AdaptivePolicyStats stats_;
  // Cached adapt.* metric instances (registry lookups are mutex-guarded).
  Counter* decisions_metric_;
  Counter* promotions_metric_;
  Counter* demotions_metric_;
  Counter* restored_metric_;
};

}  // namespace loglog

#endif  // LOGLOG_ADAPT_ADAPTIVE_POLICY_H_
