#ifndef LOGLOG_ADAPT_LOG_CHOICE_H_
#define LOGLOG_ADAPT_LOG_CHOICE_H_

#include <cstdint>

namespace loglog {

/// The logging classes the adaptive policy chooses between for one write.
/// A strict subset of OpClass: identity writes (W_IP) are not chosen per
/// write — the policy *requests* them from the cache manager when the
/// uninstalled backlog threatens the recovery budget, and the CM logs
/// them as ordinary kIdentityWrite operations.
///
/// Kept dependency-free so the WAL record codec can name the classes in
/// kPolicyDecision payloads without pulling the policy engine into wal/.
enum class LogChoice : uint8_t {
  kLogical = 0,        // W_L: function id + params only
  kPhysiological = 1,  // W_PL: byte delta against the cached value
  kPhysical = 2,       // W_P: full after-image
};

/// Why a kPolicyDecision record was emitted. Stored in the record and
/// surfaced by DebugString / loglog_inspect, so post-crash analysis of a
/// log explains each class flip, not just its outcome.
enum class PolicyReason : uint8_t {
  kDefault = 0,    // initial assignment
  kHotSmall = 1,   // demoted: written often, value small -> W_L
  kColdLarge = 2,  // promoted: written rarely and/or large -> W_P / W_PL
  kDeepChain = 3,  // promoted: rW dependency weight over threshold -> W_P
  kRestored = 4,   // reseeded from the analysis pass after a crash
};

inline const char* LogChoiceName(LogChoice c) {
  switch (c) {
    case LogChoice::kLogical:
      return "logical";
    case LogChoice::kPhysiological:
      return "physiological";
    case LogChoice::kPhysical:
      return "physical";
  }
  return "?";
}

inline const char* PolicyReasonName(PolicyReason r) {
  switch (r) {
    case PolicyReason::kDefault:
      return "default";
    case PolicyReason::kHotSmall:
      return "hot_small";
    case PolicyReason::kColdLarge:
      return "cold_large";
    case PolicyReason::kDeepChain:
      return "deep_chain";
    case PolicyReason::kRestored:
      return "restored";
  }
  return "?";
}

}  // namespace loglog

#endif  // LOGLOG_ADAPT_LOG_CHOICE_H_
