#ifndef LOGLOG_ADAPT_POLICY_OPTIONS_H_
#define LOGLOG_ADAPT_POLICY_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace loglog {

/// Tuning of the adaptive logging-policy engine (src/adapt/). Kept free
/// of heavy includes so EngineOptions can embed it by value.
///
/// The cost model is threshold-based: per object the policy maintains an
/// EWMA of the write interval (in global writes between two writes of
/// the object) and of the produced value size, and combines them with
/// the rW dependency weight of the object's owning graph node. "Hot"
/// and "cold" and "small" and "large" below name the threshold tests
/// the decision rules in AdaptiveLogPolicy::Decide are written in terms
/// of; see DESIGN.md "Adaptive Logging" for the full decision table.
struct AdaptivePolicyOptions {
  /// Master switch. Off by default: every existing configuration keeps
  /// its statically chosen logging class.
  bool enabled = false;

  /// EWMA smoothing factor for both per-object estimators
  /// (new = alpha * sample + (1 - alpha) * old).
  double ewma_alpha = 0.25;

  /// Hot: EWMA write interval at or under this many global writes.
  double hot_interval_writes = 24.0;

  /// Cold: EWMA write interval at or over this many global writes. An
  /// object with no interval estimate yet (first write) counts as cold.
  double cold_interval_writes = 96.0;

  /// Small value: EWMA size at or under this (W_L candidate when hot).
  size_t small_value_bytes = 96;

  /// Large value: EWMA size at or over this (W_P candidate when cold);
  /// cold mid-size objects (between small and large) get W_PL.
  size_t large_value_bytes = 512;

  /// Promote a write to W_P when the owning rW node's dependency weight
  /// (uninstalled ops in the node + fan-in predecessor nodes) reaches
  /// this: the blind physical write peels the object off the node and
  /// caps the redo chain a crash would have to replay.
  size_t max_chain_depth = 24;

  /// Hysteresis: a per-object class change is allowed at most once per
  /// this many writes of that object (the first write is exempt), so a
  /// value oscillating around a threshold does not thrash the log with
  /// decision records.
  uint64_t decision_cooldown_writes = 8;

  /// Backpressure on budget-driven identity writes: at most this many
  /// W_IP injections are honored per flush cycle (one call to
  /// CacheManager::EnforceRecoveryBudget); requests beyond the cap are
  /// dropped, counted in cm.identity.budget_drops, and retried on the
  /// next cycle.
  size_t max_identity_requests_per_cycle = 8;
};

}  // namespace loglog

#endif  // LOGLOG_ADAPT_POLICY_OPTIONS_H_
