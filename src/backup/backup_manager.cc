#include "backup/backup_manager.h"

#include <algorithm>

#include "wal/log_record.h"

namespace loglog {

Lsn BackupImage::ScanStart() const {
  Lsn min_vsi = kMaxLsn;
  for (const auto& [id, entry] : entries) {
    min_vsi = std::min(min_vsi, entry.vsi);
  }
  return min_vsi == kMaxLsn ? 1 : min_vsi + 1;
}

uint64_t BackupImage::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [id, entry] : entries) total += entry.value.size();
  return total;
}

BackupManager::BackupManager(SimulatedDisk* disk, bool repair_order)
    : disk_(disk), repair_order_(repair_order) {}

Status BackupManager::Begin() {
  plan_.clear();
  cursor_ = 0;
  disk_->store().ForEach([this](ObjectId id, const StoredObject&) {
    plan_.push_back(id);
  });
  std::sort(plan_.begin(), plan_.end());
  return RefreshLogIndex();
}

Status BackupManager::RefreshLogIndex() {
  Slice archive = disk_->log().ArchiveContents();
  if (archive.size() <= indexed_archive_bytes_) return Status::OK();
  Slice fresh(archive.data() + indexed_archive_bytes_,
              archive.size() - indexed_archive_bytes_);
  while (true) {
    LogRecord rec;
    Status st = ReadFramedRecord(&fresh, &rec);
    if (st.IsNotFound()) break;
    // A torn tail cannot appear mid-archive during normal operation; be
    // tolerant anyway and stop indexing at the first undecodable point.
    if (st.IsCorruption()) break;
    LOGLOG_RETURN_IF_ERROR(st);
    if (rec.type == RecordType::kOperation && !rec.op.reads.empty()) {
      for (ObjectId r : rec.op.reads) {
        readers_[r].push_back(ReaderOp{rec.lsn, rec.op.writes});
      }
    }
  }
  indexed_archive_bytes_ = archive.size() - fresh.size();
  return Status::OK();
}

Status BackupManager::CopyObject(ObjectId id, bool is_repair) {
  StoredObject stored;
  Status st = disk_->store().Read(id, &stored);
  if (st.IsNotFound()) {
    // Deleted meanwhile: it must not linger in the image either.
    image_.entries.erase(id);
    return Status::OK();
  }
  LOGLOG_RETURN_IF_ERROR(st);
  BackupEntry& entry = image_.entries[id];
  entry.value = stored.value;
  entry.vsi = stored.vsi;
  if (is_repair) {
    ++stats_.repair_recopies;
    stats_.repair_bytes += stored.value.size();
  } else {
    ++stats_.objects_copied;
    stats_.bytes_copied += stored.value.size();
  }
  if (repair_order_) {
    LOGLOG_RETURN_IF_ERROR(RepairAfterCopy(id, stored.vsi));
  }
  return Status::OK();
}

Status BackupManager::RepairAfterCopy(ObjectId x, Lsn v) {
  LOGLOG_RETURN_IF_ERROR(RefreshLogIndex());
  auto it = readers_.find(x);
  if (it == readers_.end()) return Status::OK();
  // Work list: outputs that must be re-copied (re-copies can cascade —
  // the re-copied output is itself a newer input for earlier readers).
  std::vector<ObjectId> recopy;
  for (const ReaderOp& reader : it->second) {
    if (reader.lsn >= v) continue;  // read this value or newer: fine
    for (ObjectId out : reader.writes) {
      auto img = image_.entries.find(out);
      if (img != image_.entries.end() && img->second.vsi < reader.lsn) {
        recopy.push_back(out);
      }
    }
  }
  for (ObjectId out : recopy) {
    LOGLOG_RETURN_IF_ERROR(CopyObject(out, /*is_repair=*/true));
  }
  return Status::OK();
}

Status BackupManager::Step(size_t n) {
  LOGLOG_RETURN_IF_ERROR(RefreshLogIndex());
  for (size_t i = 0; i < n && cursor_ < plan_.size(); ++i, ++cursor_) {
    LOGLOG_RETURN_IF_ERROR(CopyObject(plan_[cursor_], /*is_repair=*/false));
  }
  return Status::OK();
}

}  // namespace loglog
