#ifndef LOGLOG_BACKUP_BACKUP_MANAGER_H_
#define LOGLOG_BACKUP_BACKUP_MANAGER_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/simulated_disk.h"

namespace loglog {

/// One object captured in a backup image: its value and the vSI it
/// carried in the stable store at copy time.
struct BackupEntry {
  ObjectValue value;
  Lsn vsi = kInvalidLsn;
};

/// \brief A (possibly fuzzy) backup image of the stable database.
struct BackupImage {
  std::map<ObjectId, BackupEntry> entries;

  /// Media-recovery scan start: every operation whose lSI is below the
  /// minimum backed-up vSI is installed in the image.
  Lsn ScanStart() const;
  uint64_t TotalBytes() const;
};

/// Counters for the backup experiments (E10).
struct BackupStats {
  uint64_t objects_copied = 0;
  uint64_t bytes_copied = 0;
  /// Objects re-copied by the order-repair rule.
  uint64_t repair_recopies = 0;
  uint64_t repair_bytes = 0;
};

/// \brief Fuzzy online backup that stays recoverable under logical log
/// operations.
///
/// Section 1 of the paper: "Copying the database to the backup can
/// introduce flush order violations for the backup even when cache
/// management honors flush order for the stable database" (the fix is
/// the subject of the companion paper [10], which we reconstruct here).
///
/// The hazard: a logical operation O reads X and writes Y. The main
/// database installs O (flushing Y) and may then flush a *newer* X. A
/// fuzzy backup that copied Y before O installed but copies X after the
/// newer flush holds {old Y, new X}: replaying O against the image is
/// impossible — its input is from the future.
///
/// Repair rule (enforced when `repair_order` is on): after copying X
/// with stable vSI v, every logged operation O with lSI < v that read X
/// must be installed *in the image*: if some output of O sits in the
/// image with vSI < O's lSI, that output is re-copied from the current
/// stable store. Main-database flush order guarantees the stable output
/// is new enough (O installed before the newer X was flushed), so the
/// re-copy closes the inversion; vSIs only grow, so the repair
/// terminates. The result: media recovery never meets a
/// newer-than-needed input, i.e. the image is explainable.
///
/// Drive it incrementally: Begin(), then Step(n) interleaved with normal
/// execution until done().
class BackupManager {
 public:
  /// `disk` is the live database's disk. With repair_order == false the
  /// backup is the naive fuzzy copy (used as the failing baseline).
  BackupManager(SimulatedDisk* disk, bool repair_order);

  /// Snapshots the object list to copy. Objects created after Begin are
  /// not part of this image (their operations replay from the log).
  Status Begin();

  /// Copies up to `n` not-yet-copied objects from the stable store.
  Status Step(size_t n);

  bool done() const { return cursor_ >= plan_.size(); }

  const BackupImage& image() const { return image_; }
  const BackupStats& stats() const { return stats_; }

 private:
  /// Applies the repair rule after copying `x` at stable vSI `v`.
  Status RepairAfterCopy(ObjectId x, Lsn v);
  /// Extends the reader index with any log records not yet indexed.
  Status RefreshLogIndex();
  Status CopyObject(ObjectId id, bool is_repair);

  struct ReaderOp {
    Lsn lsn = kInvalidLsn;
    std::vector<ObjectId> writes;
  };

  SimulatedDisk* disk_;
  bool repair_order_;
  std::vector<ObjectId> plan_;
  size_t cursor_ = 0;
  BackupImage image_;
  BackupStats stats_;
  /// Per object: logged operations that read it (from the log archive).
  std::unordered_map<ObjectId, std::vector<ReaderOp>> readers_;
  uint64_t indexed_archive_bytes_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_BACKUP_BACKUP_MANAGER_H_
