#include "backup/media_recovery.h"

#include "engine/options.h"
#include "obs/trace.h"
#include "ops/function_registry.h"
#include "wal/log_cursor.h"
#include "wal/log_record.h"

namespace loglog {

Status MediaRecover(const BackupImage& image, Slice log_archive,
                    SimulatedDisk* fresh_disk,
                    std::unique_ptr<RecoveryEngine>* engine_out,
                    RecoveryStats* stats) {
  TraceSpan span("media.recover", "media",
                 {{"backup_objects", std::to_string(image.entries.size())},
                  {"archive_bytes", std::to_string(log_archive.size())}});
  // Restore the image as the stable store (restoration I/O is not part
  // of the experiment counters; it happens before the disk is live).
  for (const auto& [id, entry] : image.entries) {
    LOGLOG_RETURN_IF_ERROR(
        fresh_disk->store().Write(id, Slice(entry.value), entry.vsi));
  }
  // The surviving log archive becomes the new disk's log.
  LOGLOG_RETURN_IF_ERROR(fresh_disk->log().Append(log_archive));

  EngineOptions opts;
  opts.redo_test = RedoTestKind::kAlways;  // vSI guard only; see header
  auto engine = std::make_unique<RecoveryEngine>(opts, fresh_disk);
  LOGLOG_RETURN_IF_ERROR(engine->Recover(stats));
  *engine_out = std::move(engine);
  return Status::OK();
}

Status RestoreToLsn(Slice log_archive, Lsn target,
                    SimulatedDisk* fresh_disk) {
  StableStore& store = fresh_disk->store();
  LogCursor cursor(log_archive, /*start_offset=*/0);
  LogRecord rec;
  while (cursor.Next(&rec)) {
    // Compensation records are part of history: a point-in-time state
    // mid-rollback includes the rollback's progress so far.
    if ((rec.type != RecordType::kOperation &&
         rec.type != RecordType::kCompensation) ||
        rec.lsn > target) {
      continue;
    }
    const OperationDesc& op = rec.op;
    if (op.op_class == OpClass::kDelete) {
      if (store.Exists(op.writes[0])) {
        LOGLOG_RETURN_IF_ERROR(store.Erase(op.writes[0]));
      }
      continue;
    }
    std::vector<ObjectValue> reads;
    reads.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      StoredObject stored;
      LOGLOG_RETURN_IF_ERROR(store.Read(r, &stored));
      reads.push_back(std::move(stored.value));
    }
    std::vector<ObjectValue> writes(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      StoredObject stored;
      if (store.Read(op.writes[i], &stored).ok()) {
        writes[i] = std::move(stored.value);
      }
    }
    LOGLOG_RETURN_IF_ERROR(
        FunctionRegistry::Global().Apply(op, reads, &writes));
    for (size_t i = 0; i < op.writes.size(); ++i) {
      LOGLOG_RETURN_IF_ERROR(
          store.Write(op.writes[i], Slice(writes[i]), rec.lsn));
    }
  }
  LOGLOG_RETURN_IF_ERROR(cursor.status());
  if (cursor.torn()) {
    // The archive is not a crash-exposed device: a torn record there is
    // damage, not an interrupted force.
    return Status::Corruption("log archive ends in a torn record");
  }
  return Status::OK();
}

}  // namespace loglog
