#ifndef LOGLOG_BACKUP_MEDIA_RECOVERY_H_
#define LOGLOG_BACKUP_MEDIA_RECOVERY_H_

#include <memory>

#include "backup/backup_manager.h"
#include "common/status.h"
#include "engine/recovery_engine.h"
#include "recovery/recovery_driver.h"
#include "storage/simulated_disk.h"

namespace loglog {

/// \brief Media recovery: rebuild a lost stable database from a backup
/// image plus the log archive.
///
/// Loads the image into a fresh disk, installs the surviving log archive
/// as that disk's log, and runs ordinary redo recovery with the plain
/// vSI REDO test (per-object vSIs in the image decide what replays —
/// installation records on the log describe the *lost* database's
/// progress, not the image's, so the generalized rSI shortcuts must not
/// be used). The recovered engine is returned ready for use; callers
/// typically FlushAll() and verify.
///
/// If the image violated flush order (a naive fuzzy backup), replay
/// meets inputs newer than the operation being redone and voids it —
/// surfaced through stats->ops_voided and a mismatching final state.
/// Images produced by BackupManager with repair_order on never void.
Status MediaRecover(const BackupImage& image, Slice log_archive,
                    SimulatedDisk* fresh_disk,
                    std::unique_ptr<RecoveryEngine>* engine_out,
                    RecoveryStats* stats);

/// \brief Point-in-time restore: materialize the database exactly as of
/// LSN `target` from the log archive alone.
///
/// Replays every operation record with lSI <= target onto the fresh
/// disk's store (sequential history replay — the definition of the
/// state, per the recovery theorem). Useful operationally ("what did the
/// database look like before operation X?") and as a debugging oracle.
/// The archive must reach back to the beginning of history (the
/// verification archive does; a truncated live log does not).
Status RestoreToLsn(Slice log_archive, Lsn target,
                    SimulatedDisk* fresh_disk);

}  // namespace loglog

#endif  // LOGLOG_BACKUP_MEDIA_RECOVERY_H_
