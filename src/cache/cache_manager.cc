#include "cache/cache_manager.h"

#include <algorithm>
#include <cassert>

#include "common/retry.h"
#include "fault/fault_injector.h"
#include "graph/refined_write_graph.h"
#include "graph/write_graph_w.h"
#include "logstore/logstore.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "ops/op_builder.h"

namespace loglog {

namespace {

std::unique_ptr<WriteGraph> MakeGraph(GraphKind kind) {
  if (kind == GraphKind::kRefined) {
    return std::make_unique<RefinedWriteGraph>();
  }
  return std::make_unique<WriteGraphW>();
}

}  // namespace

CacheManager::CacheManager(SimulatedDisk* disk, LogManager* log,
                           GraphKind graph_kind, FlushPolicy flush_policy,
                           bool log_installs, StorageBackend backend)
    : disk_(disk),
      log_(log),
      graph_(MakeGraph(graph_kind)),
      flush_policy_(flush_policy),
      log_installs_(log_installs),
      backend_(backend) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  metrics_.purges = reg.GetCounter(metric::kCmPurges);
  metrics_.nodes_installed = reg.GetCounter(metric::kCmNodesInstalled);
  metrics_.ops_installed = reg.GetCounter(metric::kCmOpsInstalled);
  metrics_.identity_writes = reg.GetCounter(metric::kCmIdentityWrites);
  metrics_.identity_bytes = reg.GetCounter(metric::kCmIdentityBytes);
  metrics_.flush_txns = reg.GetCounter(metric::kCmFlushTxns);
  metrics_.evictions = reg.GetCounter(metric::kCmEvictions);
  metrics_.checkpoints = reg.GetCounter(metric::kCmCheckpoints);
  metrics_.budget_installs = reg.GetCounter(metric::kCmBudgetInstalls);
  metrics_.budget_identity_requests =
      reg.GetCounter(metric::kCmIdentityBudgetRequests);
  metrics_.budget_identity_drops =
      reg.GetCounter(metric::kCmIdentityBudgetDrops);
  metrics_.graph_batches = reg.GetCounter(metric::kCmGraphBatches);
  metrics_.graph_batched_ops = reg.GetCounter(metric::kCmGraphBatchedOps);
  metrics_.flush_set_size = reg.GetHistogram(metric::kCmFlushSetSize);
  metrics_.logstore_reads_log = reg.GetCounter(metric::kLogstoreReadsLog);
  metrics_.logstore_index_ckpts =
      reg.GetCounter(metric::kLogstoreIndexCheckpoints);
  if (flush_policy_ == FlushPolicy::kIdentityWrites &&
      graph_kind == GraphKind::kW) {
    // Identity writes cannot break W's flush sets apart: a blind write
    // merges into the node owning the object, since W coalesces on any
    // writeset overlap ("once objects need to be flushed together
    // atomically, there is no way to flush them separately", Section 6).
    // Fall back to the native atomic flush.
    flush_policy_ = FlushPolicy::kNativeAtomic;
  }
  disk_->store().set_shadow_mode(flush_policy_ == FlushPolicy::kShadow);
}

void CacheManager::set_fail_point(FailPoint fp) {
  FaultInjector& inj = disk_->fault_injector();
  switch (fp) {
    case FailPoint::kNone:
      inj.Disarm(fault::kCmAfterWalForce);
      inj.Disarm(fault::kCmAfterFlushTxnCommit);
      inj.Disarm(fault::kCmAfterFirstFlushTxnWrite);
      break;
    case FailPoint::kAfterFlushTxnCommit:
      inj.Arm(fault::kCmAfterFlushTxnCommit, FaultSpec::CrashOnce());
      break;
    case FailPoint::kAfterFirstFlushTxnWrite:
      inj.Arm(fault::kCmAfterFirstFlushTxnWrite, FaultSpec::CrashOnce());
      break;
    case FailPoint::kAfterWalForce:
      inj.Arm(fault::kCmAfterWalForce, FaultSpec::CrashOnce());
      break;
  }
}

Status CacheManager::GetValue(ObjectId id, ObjectValue* out,
                              int io_budget) {
  CachedObject* obj = table_.Find(id);
  if (obj != nullptr) {
    if (!obj->exists) return Status::NotFound("object deleted");
    obj->last_access = ++access_clock_;
    *out = obj->value;
    return Status::OK();
  }
  if (backend_ == StorageBackend::kLogStore) {
    CachedObject* faulted = nullptr;
    LOGLOG_RETURN_IF_ERROR(FaultInFromLog(id, io_budget, &faulted));
    *out = faulted->value;
    return Status::OK();
  }
  StoredObject stored;
  LOGLOG_RETURN_IF_ERROR(RetryTransientIo(
      io_budget, &disk_->stats().io_retries,
      [&] { return disk_->store().Read(id, &stored); }));
  CachedObject& entry = table_.GetOrCreate(id);
  entry.value = stored.value;
  entry.vsi = stored.vsi;
  entry.rsi = kInvalidLsn;
  entry.dirty = false;
  entry.exists = true;
  entry.last_access = ++access_clock_;
  *out = entry.value;
  return Status::OK();
}

Status CacheManager::FaultInFromLog(ObjectId id, int io_budget,
                                    CachedObject** out) {
  IndexCheckpointEntry entry;
  if (!index_.Lookup(id, &entry)) {
    // The index maps every existing object; a miss IS nonexistence (the
    // StableStore is never consulted under kLogStore).
    return Status::NotFound("object not in log index");
  }
  std::vector<uint8_t> frame;
  LOGLOG_RETURN_IF_ERROR(RetryTransientIo(
      io_budget, &disk_->stats().io_retries, [&] {
        return disk_->log().ReadStable(entry.offset, entry.size, &frame);
      }));
  Slice cursor(frame);
  LogRecord rec;
  LOGLOG_RETURN_IF_ERROR(ReadFramedRecord(&cursor, &rec));
  if (rec.lsn != entry.lsn || !IsFullImageOp(rec.op) ||
      rec.op.op_class == OpClass::kDelete || rec.op.writes.size() != 1 ||
      rec.op.writes[0] != id) {
    return Status::Corruption("log index entry points at a non-image record");
  }
  metrics_.logstore_reads_log->Inc();
  CachedObject& obj = table_.GetOrCreate(id);
  obj.value = std::move(rec.op.params);
  obj.vsi = entry.lsn;
  obj.rsi = kInvalidLsn;
  obj.dirty = false;
  obj.exists = true;
  obj.last_access = ++access_clock_;
  obj.last_full_image = true;
  *out = &obj;
  return Status::OK();
}

bool CacheManager::ObjectExists(ObjectId id) {
  const CachedObject* obj = table_.Find(id);
  if (obj != nullptr) return obj->exists;
  if (backend_ == StorageBackend::kLogStore) {
    IndexCheckpointEntry entry;
    return index_.Lookup(id, &entry);
  }
  return disk_->store().Exists(id);
}

Lsn CacheManager::CurrentVsi(ObjectId id) const {
  const CachedObject* obj = table_.Find(id);
  if (obj != nullptr) return obj->vsi;
  if (backend_ == StorageBackend::kLogStore) {
    IndexCheckpointEntry entry;
    return index_.Lookup(id, &entry) ? entry.lsn : kInvalidLsn;
  }
  return disk_->store().StableVsi(id);
}

Lsn CacheManager::CurrentRsi(ObjectId id) const {
  const CachedObject* obj = table_.Find(id);
  return obj == nullptr ? kInvalidLsn : obj->rsi;
}

Status CacheManager::ApplyResults(const OperationDesc& op, Lsn lsn,
                                  std::vector<ObjectValue> new_values) {
  if (op.op_class != OpClass::kDelete &&
      new_values.size() != op.writes.size()) {
    return Status::InvalidArgument("result values do not match writeset");
  }
  for (size_t i = 0; i < op.writes.size(); ++i) {
    CachedObject& obj = table_.GetOrCreate(op.writes[i]);
    if (op.op_class == OpClass::kDelete) {
      obj.value.clear();
      obj.exists = false;
    } else {
      obj.value = std::move(new_values[i]);
      obj.exists = true;
    }
    obj.vsi = lsn;
    if (obj.rsi == kInvalidLsn) obj.rsi = lsn;
    obj.dirty = true;
    obj.last_access = ++access_clock_;
    obj.last_full_image = IsFullImageOp(op);
    ++obj.writes_since_clean;
    if (auto_hot_threshold_ > 0 &&
        obj.writes_since_clean >= auto_hot_threshold_ &&
        auto_hot_.insert(op.writes[i]).second) {
      hot_.insert(op.writes[i]);
    }
  }
  if (graph_batching_) {
    // rW maintenance (union-find merges, edge insertion, SCC collapse)
    // is amortized across a batch: insertions queue here and drain in
    // LSN order the moment anything reads the graph, so observable state
    // never differs from per-append insertion.
    pending_graph_ops_.push_back(PendingOp::FromDesc(lsn, op));
  } else {
    graph_->AddOperation(PendingOp::FromDesc(lsn, op));
  }
  return Status::OK();
}

void CacheManager::DrainGraphBatch() const {
  if (pending_graph_ops_.empty()) return;
  for (const PendingOp& op : pending_graph_ops_) {
    graph_->AddOperation(op);
  }
  metrics_.graph_batches->Inc();
  metrics_.graph_batched_ops->Inc(pending_graph_ops_.size());
  pending_graph_ops_.clear();
}

ObjectId CacheManager::LargestVarsObject(NodeId v) const {
  const GraphNode* node = graph_->Find(v);
  assert(node != nullptr);
  ObjectId best = kInvalidObjectId;
  size_t best_size = 0;
  for (ObjectId x : node->vars) {
    const CachedObject* obj = table_.Find(x);
    size_t size = obj == nullptr ? 0 : obj->value.size();
    if (best == kInvalidObjectId || size > best_size) {
      best = x;
      best_size = size;
    }
  }
  return best;
}

Status CacheManager::InjectIdentityWrite(ObjectId id) {
  // The injected write must be visible to the caller's next graph read
  // (flush loops re-choose the minimal node after every injection), so
  // it bypasses the batch — after draining, to keep LSN order.
  DrainGraphBatch();
  CachedObject* obj = table_.Find(id);
  if (obj == nullptr) {
    return Status::FailedPrecondition("identity write of uncached object");
  }
  // A deleted-but-uninstalled object is "identity written" by re-logging
  // the delete: the blind re-delete peels it out of the node's vars just
  // like an identity value write would.
  OperationDesc op = obj->exists ? MakeIdentityWrite(id, Slice(obj->value))
                                 : MakeDelete(id);
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.op = op;
  Lsn lsn = log_->Append(std::move(rec));
  ++stats_.identity_writes;
  stats_.identity_bytes_logged += obj->value.size();
  metrics_.identity_writes->Inc();
  metrics_.identity_bytes->Inc(obj->value.size());
  // Update cache version and graph exactly like a normal blind write; the
  // value is unchanged. W_IP records (and re-deletes) are full images.
  obj->vsi = lsn;
  obj->last_access = ++access_clock_;
  obj->last_full_image = true;
  graph_->AddOperation(PendingOp::FromDesc(lsn, op));
  return Status::OK();
}

void CacheManager::MarkHot(ObjectId id, bool hot) {
  if (hot) {
    hot_.insert(id);
  } else {
    hot_.erase(id);
  }
}

Status CacheManager::PurgeOne(bool allow_hot_flush) {
  DrainGraphBatch();
  if (graph_->empty()) return Status::NotFound("nothing to install");
  ++stats_.purges;
  metrics_.purges->Inc();
  // Under kIdentityWrites, peel multi-object flush sets apart first. Each
  // round either installs a minimal node (|vars| <= 1) or injects one
  // identity write; injections can add predecessors or collapse cycles,
  // so the minimal node is re-chosen every round. Progress: every
  // iteration either removes a node or strictly shrinks some vars set.
  for (int guard = 0; guard < 1 << 20; ++guard) {
    // Choose the minimal node with the oldest operation, preferring (when
    // hot objects are protected) nodes whose flush set is not hot-only.
    NodeId v = kNoNode;
    NodeId hot_only_candidate = kNoNode;
    Lsn best = kMaxLsn, best_hot = kMaxLsn;
    for (NodeId id : graph_->MinimalNodes()) {
      const GraphNode* n = graph_->Find(id);
      bool hot_only = !allow_hot_flush && !n->vars.empty();
      if (hot_only) {
        for (ObjectId x : n->vars) {
          if (!hot_.contains(x)) {
            hot_only = false;
            break;
          }
        }
      }
      if (hot_only) {
        if (n->MinOpLsn() < best_hot) {
          best_hot = n->MinOpLsn();
          hot_only_candidate = id;
        }
      } else if (n->MinOpLsn() < best) {
        best = n->MinOpLsn();
        v = id;
      }
    }
    if (v == kNoNode) {
      // Only hot-only nodes remain. Automatic purging defers them: they
      // stay cached and uninstalled until FlushAll, an explicit
      // PurgeOne(true), or Checkpoint (which installs them by logging —
      // Section 4's install-without-flush).
      return Status::NotFound(hot_only_candidate == kNoNode
                                  ? "nothing to install"
                                  : "only hot flush sets remain");
    }
    const GraphNode* node = graph_->Find(v);
    if (backend_ == StorageBackend::kLogStore ||
        flush_policy_ != FlushPolicy::kIdentityWrites ||
        node->vars.size() <= 1) {
      // kLogStore installs any-sized vars set in one shot: publishing
      // index entries is inherently multi-object-atomic, so no peeling.
      return InstallNode(v);
    }
    // Keep the largest object (sparing its value from the log),
    // preferring a non-hot keeper so hot objects stay unflushed.
    ObjectId keep = LargestVarsObject(v);
    if (!allow_hot_flush && hot_.contains(keep)) {
      for (ObjectId x : node->vars) {
        if (!hot_.contains(x)) {
          keep = x;
          break;
        }
      }
    }
    ObjectId peel = kInvalidObjectId;
    for (ObjectId x : node->vars) {
      if (x != keep) {
        peel = x;
        break;
      }
    }
    assert(peel != kInvalidObjectId);
    LOGLOG_RETURN_IF_ERROR(InjectIdentityWrite(peel));
  }
  return Status::Aborted("identity-write peeling did not converge");
}

Status CacheManager::InstallNode(NodeId v) {
  const GraphNode* node = graph_->Find(v);
  if (node == nullptr) return Status::NotFound("no such node");
  if (!node->preds.empty()) {
    return Status::FailedPrecondition("node has uninstalled predecessors");
  }
  if (backend_ == StorageBackend::kLogStore) {
    // Installation publishes index entries pointing at each object's
    // latest record — which must therefore be a full image. Objects whose
    // last writer was a delta/logical op get a W_IP identity write first
    // (its record carries the value). Under the refined graph the
    // injection peels the object into a fresh successor node, which
    // publishes it on its own install; under W it stays in this node but
    // now with a servable record. Either way each round strictly shrinks
    // the set of vars lacking a full image, so the loop terminates.
    for (int guard = 0; guard < 1 << 20; ++guard) {
      node = graph_->Find(v);
      if (node == nullptr) {
        // Injections merged the node away; its operations install later.
        return Status::OK();
      }
      ObjectId missing = kInvalidObjectId;
      for (ObjectId x : node->vars) {
        const CachedObject* obj = table_.Find(x);
        if (obj == nullptr) {
          return Status::Corruption("vars object not cached");
        }
        if (!obj->last_full_image) {
          missing = x;
          break;
        }
      }
      if (missing == kInvalidObjectId) break;
      LOGLOG_RETURN_IF_ERROR(InjectIdentityWrite(missing));
      // Injection can add edges or collapse cycles; re-check each round.
      graph_->Normalize();
    }
    node = graph_->Find(v);
    if (node == nullptr) return Status::OK();
    if (!node->preds.empty()) {
      // Peeling added fan-in; this node installs on a later purge.
      return Status::OK();
    }
  }
  // WAL: every operation being installed must be stable first — and so
  // must every blind write whose record this installation counts on to
  // regenerate an unexposed (notx) object after a crash.
  LOGLOG_RETURN_IF_ERROR(
      log_->Force(std::max(node->MaxOpLsn(), node->notx_force_lsn)));
  LOGLOG_RETURN_IF_ERROR(
      disk_->fault_injector().MaybeFail(fault::kCmAfterWalForce));

  stats_.flush_set_sizes.Add(node->vars.size());
  stats_.node_writes_sizes.Add(node->vars.size() + node->notx.size());
  metrics_.flush_set_size->Observe(node->vars.size());
  TraceSpan install_span("cm.install_node", "cache");
  install_span.AddArg("vars", static_cast<uint64_t>(node->vars.size()));
  install_span.AddArg("notx", static_cast<uint64_t>(node->notx.size()));

  // Gather the current cached versions of vars(n).
  std::vector<ObjectWrite> writes;
  writes.reserve(node->vars.size());
  for (ObjectId x : node->vars) {
    const CachedObject* obj = table_.Find(x);
    if (obj == nullptr) {
      return Status::Corruption("vars object not cached");
    }
    ObjectWrite w;
    w.id = x;
    w.vsi = obj->vsi;
    if (obj->exists) {
      w.value = Slice(obj->value);
    } else {
      w.erase = true;
    }
    writes.push_back(w);
  }

  // Flush vars(n) under the configured policy. Transient device errors
  // are retried here (the flush path is where the WAL protocol lets us
  // simply re-issue); anything that survives the retry budget propagates.
  // Under kLogStore there is no flush at all: the forced records ARE the
  // stable images, and publishing their index entries (below) is the
  // installation. That is the backend's write-path win — one log force
  // replaces per-object stable-store writes.
  auto flush_atomic = [&](const std::vector<ObjectWrite>& ws) {
    return RetryTransientIo(&disk_->stats().io_retries,
                            [&] { return disk_->store().WriteAtomic(ws); });
  };
  if (backend_ != StorageBackend::kLogStore) {
    switch (flush_policy_) {
      case FlushPolicy::kNativeAtomic:
      case FlushPolicy::kShadow:
        LOGLOG_RETURN_IF_ERROR(flush_atomic(writes));
        break;
      case FlushPolicy::kIdentityWrites:
        // PurgeOne reduced |vars| to at most 1.
        if (writes.size() > 1) {
          return Status::FailedPrecondition(
              "identity-write policy with multi-object flush set");
        }
        LOGLOG_RETURN_IF_ERROR(flush_atomic(writes));
        break;
      case FlushPolicy::kFlushTransaction: {
        if (writes.size() <= 1) {
          LOGLOG_RETURN_IF_ERROR(flush_atomic(writes));
          break;
        }
        // Freeze the set: quiesce, log every value plus a commit record,
        // force, then overwrite in place (each its own device write).
        ++disk_->stats().quiesce_events;
        ++stats_.flush_txns;
        metrics_.flush_txns->Inc();
        LogRecord begin;
        begin.type = RecordType::kFlushTxnBegin;
        for (const ObjectWrite& w : writes) {
          FlushValue fv;
          fv.id = w.id;
          fv.vsi = w.vsi;
          fv.erase = w.erase;
          fv.value = w.value.ToBytes();
          stats_.flush_txn_bytes_logged += fv.value.size();
          ++stats_.flush_txn_values_logged;
          begin.flush_values.push_back(std::move(fv));
        }
        Lsn begin_lsn = log_->Append(std::move(begin));
        LogRecord commit;
        commit.type = RecordType::kFlushTxnCommit;
        commit.ref_lsn = begin_lsn;
        Lsn commit_lsn = log_->Append(std::move(commit));
        LOGLOG_RETURN_IF_ERROR(log_->Force(commit_lsn));
        LOGLOG_RETURN_IF_ERROR(
            disk_->fault_injector().MaybeFail(fault::kCmAfterFlushTxnCommit));
        bool first = true;
        for (const ObjectWrite& w : writes) {
          LOGLOG_RETURN_IF_ERROR(
              RetryTransientIo(&disk_->stats().io_retries, [&] {
                return w.erase ? disk_->store().Erase(w.id)
                               : disk_->store().Write(w.id, w.value, w.vsi);
              }));
          if (first) {
            LOGLOG_RETURN_IF_ERROR(disk_->fault_injector().MaybeFail(
                fault::kCmAfterFirstFlushTxnWrite));
          }
          first = false;
        }
        break;
      }
    }
  }

  // Remove the node: its operations are installed.
  InstallResult result;
  LOGLOG_RETURN_IF_ERROR(graph_->RemoveNode(v, &result));
  ++stats_.nodes_installed;
  stats_.ops_installed += result.installed_ops.size();
  metrics_.nodes_installed->Inc();
  metrics_.ops_installed->Inc(result.installed_ops.size());
  stats_.installed_without_flush += result.unflushed_objects.size();

  // Advance rSIs for all of Writes(n) = vars ∪ notx (Section 5): an
  // object's rSI becomes the lSI of its first *uninstalled* writer.
  LogRecord install;
  install.type = RecordType::kInstall;
  for (ObjectId x : result.flush_objects) {
    CachedObject* obj = table_.Find(x);
    assert(obj != nullptr);
    Lsn rsi = graph_->FirstUninstalledWriter(x);
    obj->rsi = rsi;
    obj->dirty = (rsi != kInvalidLsn);
    if (backend_ == StorageBackend::kLogStore) {
      // Installation = index publish: the object's forced full-image
      // record becomes its stable version. Deletes retire the entry —
      // an absent id IS nonexistence under kLogStore.
      if (obj->exists) {
        uint64_t off = 0;
        uint64_t sz = 0;
        if (!log_->StableExtentOf(obj->vsi, &off, &sz)) {
          return Status::Corruption("installed image has no stable extent");
        }
        index_.Publish(x, obj->vsi, off, sz);
      } else {
        index_.Erase(x);
      }
    }
    if (!obj->dirty) {
      // Flushed clean: the hotness window restarts (auto-hot cools).
      obj->writes_since_clean = 0;
      if (auto_hot_.erase(x) > 0) hot_.erase(x);
    }
    install.installed_vars.push_back(InstallEntry{x, rsi});
    if (!obj->exists && !obj->dirty) {
      // Installed delete: the object leaves the object table.
      table_.Erase(x);
    }
  }
  for (ObjectId x : result.unflushed_objects) {
    CachedObject* obj = table_.Find(x);
    if (obj == nullptr) continue;
    Lsn rsi = graph_->FirstUninstalledWriter(x);
    // Unexposed objects stay dirty: the cached version was produced by a
    // later (uninstalled) blind write and has not been flushed.
    obj->rsi = rsi;
    obj->dirty = true;
    install.installed_notx.push_back(InstallEntry{x, rsi});
  }
  if (log_installs_) {
    // Lazily logged: not forced. Losing it merely costs extra redos.
    log_->Append(std::move(install));
  }
  return Status::OK();
}

Status CacheManager::FlushAll() {
  while (true) {
    Status st = PurgeOne();
    if (st.IsNotFound()) break;
    LOGLOG_RETURN_IF_ERROR(st);
  }
  // With an empty graph every remaining dirty object has no uninstalled
  // writers; flush them individually (covers install-without-flush
  // leftovers defensively).
  std::vector<ObjectId> dirty;
  table_.ForEach([&](ObjectId id, CachedObject& obj) {
    if (obj.dirty) dirty.push_back(id);
  });
  for (ObjectId id : dirty) {
    CachedObject* obj = table_.Find(id);
    if (backend_ == StorageBackend::kLogStore) {
      // No uninstalled writers remain (the graph drained above), so the
      // object publishes directly: its latest record if it is already a
      // full image, else one W_IP re-log.
      if (obj->last_full_image) {
        LOGLOG_RETURN_IF_ERROR(PublishCurrentImage(id, obj));
      } else {
        LOGLOG_RETURN_IF_ERROR(RelogAndPublish(id, obj));
      }
      if (!obj->exists) table_.Erase(id);
      continue;
    }
    LOGLOG_RETURN_IF_ERROR(log_->Force(obj->vsi));
    if (obj->exists) {
      LOGLOG_RETURN_IF_ERROR(
          RetryTransientIo(&disk_->stats().io_retries, [&] {
            return disk_->store().Write(id, Slice(obj->value), obj->vsi);
          }));
      obj->dirty = false;
      obj->rsi = kInvalidLsn;
      obj->writes_since_clean = 0;
      if (auto_hot_.erase(id) > 0) hot_.erase(id);
    } else {
      if (disk_->store().Exists(id)) {
        LOGLOG_RETURN_IF_ERROR(RetryTransientIo(
            &disk_->stats().io_retries, [&] { return disk_->store().Erase(id); }));
      }
      table_.Erase(id);
    }
  }
  return Status::OK();
}

Status CacheManager::PublishCurrentImage(ObjectId id, CachedObject* obj) {
  LOGLOG_RETURN_IF_ERROR(log_->Force(obj->vsi));
  if (obj->exists) {
    uint64_t off = 0;
    uint64_t sz = 0;
    if (!log_->StableExtentOf(obj->vsi, &off, &sz)) {
      return Status::Corruption("stable image has no offset entry");
    }
    index_.Publish(id, obj->vsi, off, sz);
  } else {
    index_.Erase(id);
  }
  obj->dirty = false;
  obj->rsi = kInvalidLsn;
  obj->writes_since_clean = 0;
  if (auto_hot_.erase(id) > 0) hot_.erase(id);
  if (log_installs_) {
    // Evidence for recovery's faithful index rebuild: an install record
    // marks this publish so the rebuilt index can re-apply it. Lazily
    // logged, like node installs — losing it costs extra redo only.
    LogRecord install;
    install.type = RecordType::kInstall;
    install.installed_vars.push_back(InstallEntry{id, kInvalidLsn});
    log_->Append(std::move(install));
  }
  return Status::OK();
}

Status CacheManager::RelogAndPublish(ObjectId id, CachedObject* obj) {
  // Only legal for objects with no uninstalled writers: the W_IP goes
  // straight to the log without entering the write graph, because its
  // installation (the publish below) is immediate.
  OperationDesc op = obj->exists ? MakeIdentityWrite(id, Slice(obj->value))
                                 : MakeDelete(id);
  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.op = std::move(op);
  Lsn lsn = log_->Append(std::move(rec));
  ++stats_.identity_writes;
  stats_.identity_bytes_logged += obj->value.size();
  metrics_.identity_writes->Inc();
  metrics_.identity_bytes->Inc(obj->value.size());
  obj->vsi = lsn;
  obj->last_full_image = true;
  return PublishCurrentImage(id, obj);
}

Status CacheManager::CompactLogStore(size_t batch, uint64_t* images_moved,
                                     uint64_t* bytes_moved) {
  if (images_moved != nullptr) *images_moved = 0;
  if (bytes_moved != nullptr) *bytes_moved = 0;
  if (backend_ != StorageBackend::kLogStore || batch == 0) {
    return Status::OK();
  }
  DrainGraphBatch();
  // Oldest live images first: the minimum-LSN entry is what pins the
  // truncation point, so moving it is what lets the next checkpoint
  // reclaim bytes.
  std::vector<IndexCheckpointEntry> entries = index_.Snapshot();
  std::sort(entries.begin(), entries.end(),
            [](const IndexCheckpointEntry& a, const IndexCheckpointEntry& b) {
              return a.lsn < b.lsn;
            });
  struct Moved {
    ObjectId id;
    Lsn lsn;
    uint64_t old_size;
  };
  std::vector<Moved> moved;
  for (const IndexCheckpointEntry& e : entries) {
    if (moved.size() >= batch) break;
    CachedObject* obj = table_.Find(e.id);
    if (obj == nullptr) {
      CachedObject* faulted = nullptr;
      Status st = FaultInFromLog(e.id, kMaxIoRetries, &faulted);
      if (st.IsNotFound()) continue;  // raced with a delete
      LOGLOG_RETURN_IF_ERROR(st);
      obj = faulted;
    }
    if (obj->dirty || graph_->FirstUninstalledWriter(e.id) != kInvalidLsn) {
      // A pending writer republishes this object at install time anyway;
      // re-logging it now would be wasted log volume.
      continue;
    }
    if (graph_->HasUninstalledReader(e.id)) {
      // rW discipline: a write-after-read must not install before the
      // reader. The W_IP would publish instantly (bypassing the graph),
      // handing the object a version newer than the uninstalled reader —
      // recovery would then void the reader's redo and lose its writes.
      continue;
    }
    if (!obj->exists) {
      index_.Erase(e.id);
      continue;
    }
    OperationDesc op = MakeIdentityWrite(e.id, Slice(obj->value));
    LogRecord rec;
    rec.type = RecordType::kOperation;
    rec.op = std::move(op);
    Lsn lsn = log_->Append(std::move(rec));
    ++stats_.identity_writes;
    stats_.identity_bytes_logged += obj->value.size();
    metrics_.identity_writes->Inc();
    metrics_.identity_bytes->Inc(obj->value.size());
    obj->vsi = lsn;
    obj->last_full_image = true;
    moved.push_back(Moved{e.id, lsn, e.size});
  }
  if (moved.empty()) return Status::OK();
  // One force covers the whole batch (group-commit for compaction), then
  // every moved image republishes at its forward position.
  LOGLOG_RETURN_IF_ERROR(log_->Force(moved.back().lsn));
  uint64_t old_bytes = 0;
  LogRecord install;
  install.type = RecordType::kInstall;
  for (const Moved& m : moved) {
    uint64_t off = 0;
    uint64_t sz = 0;
    if (!log_->StableExtentOf(m.lsn, &off, &sz)) {
      return Status::Corruption("compacted image has no stable extent");
    }
    index_.Publish(m.id, m.lsn, off, sz);
    install.installed_vars.push_back(InstallEntry{m.id, kInvalidLsn});
    old_bytes += m.old_size;
  }
  if (log_installs_) {
    // One lazy install record marks the whole batch for recovery's index
    // rebuild (see PublishCurrentImage).
    log_->Append(std::move(install));
  }
  if (images_moved != nullptr) *images_moved = moved.size();
  if (bytes_moved != nullptr) *bytes_moved = old_bytes;
  return Status::OK();
}

Status CacheManager::InstallHotNodesByLogging() {
  if (flush_policy_ != FlushPolicy::kIdentityWrites) return Status::OK();
  // Install every currently-minimal hot-only node without flushing: peel
  // each of its vars to zero with identity writes (their values go to
  // the log once), then install the empty node. Repeats until no minimal
  // hot-only node remains; each round installs one node, so it
  // terminates.
  // The identity writes injected here create fresh hot-only nodes of
  // their own; they carry this checkpoint's rSIs and must not be chased.
  std::set<Lsn> fresh_identity_ops;
  while (true) {
    NodeId target = kNoNode;
    for (NodeId id : graph_->MinimalNodes()) {
      const GraphNode* n = graph_->Find(id);
      if (n->vars.empty()) continue;
      bool eligible = false;
      for (Lsn lsn : n->ops) {
        if (!fresh_identity_ops.contains(lsn)) {
          eligible = true;
          break;
        }
      }
      if (!eligible) continue;
      bool hot_only = true;
      for (ObjectId x : n->vars) {
        if (!hot_.contains(x)) {
          hot_only = false;
          break;
        }
      }
      if (hot_only) {
        target = id;
        break;
      }
    }
    if (target == kNoNode) return Status::OK();
    while (true) {
      const GraphNode* n = graph_->Find(target);
      if (n == nullptr || n->vars.empty()) break;
      LOGLOG_RETURN_IF_ERROR(InjectIdentityWrite(*n->vars.begin()));
      fresh_identity_ops.insert(log_->last_assigned_lsn());
      // Peeling can merge nodes (cycles); re-check the node each round.
      graph_->Normalize();
    }
    // Peeling may have added predecessors (inverse write-read edges from
    // readers of the peeled values). Install only if still minimal; an
    // empty-vars node left behind installs via normal purging once its
    // predecessors go, and the next outer round skips it.
    const GraphNode* after = graph_->Find(target);
    if (after != nullptr && after->preds.empty()) {
      LOGLOG_RETURN_IF_ERROR(InstallNode(target));
    }
  }
}

Status CacheManager::EnforceRecoveryBudget(uint64_t budget_ops,
                                           size_t identity_cap) {
  if (uninstalled_ops() <= budget_ops) return Status::OK();
  DrainGraphBatch();
  TraceSpan span("cm.enforce_budget", "cache");
  span.AddArg("backlog", static_cast<uint64_t>(graph_->op_count()));
  // Flush policies with native multi-object atomicity drain the backlog
  // by ordinary (hot-inclusive) purging; no identity writes involved.
  if (flush_policy_ != FlushPolicy::kIdentityWrites) {
    while (graph_->op_count() > budget_ops) {
      Status st = PurgeOne(true);
      if (st.IsNotFound()) break;
      LOGLOG_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }
  // Proactive W_IP path: install the oldest chains, peeling hot vars
  // with identity writes so they install without a flush (Section 4's
  // install-without-flush, applied on demand instead of at checkpoints).
  // Identity writes injected here form fresh hot-only nodes carrying
  // already-advanced rSIs; chasing them would spin.
  std::set<Lsn> fresh_identity_ops;
  std::set<NodeId> deferred;  // gained preds while peeling; retry next cycle
  size_t identity_used = 0;
  while (graph_->op_count() > budget_ops) {
    // Oldest eligible minimal node = the head of the longest-standing
    // redo chain, exactly what the budget wants installed first.
    NodeId v = kNoNode;
    Lsn best = kMaxLsn;
    for (NodeId id : graph_->MinimalNodes()) {
      if (deferred.contains(id)) continue;
      const GraphNode* n = graph_->Find(id);
      bool eligible = false;
      for (Lsn lsn : n->ops) {
        if (!fresh_identity_ops.contains(lsn)) {
          eligible = true;
          break;
        }
      }
      if (!eligible) continue;
      if (n->MinOpLsn() < best) {
        best = n->MinOpLsn();
        v = id;
      }
    }
    if (v == kNoNode) break;  // nothing installable left this cycle
    // Peel every hot var (so the node installs without flushing them)
    // and, beyond that, down to a single keeper.
    bool out_of_identity_budget = false;
    while (true) {
      const GraphNode* n = graph_->Find(v);
      if (n == nullptr) break;
      ObjectId peel = kInvalidObjectId;
      for (ObjectId x : n->vars) {
        if (hot_.contains(x)) {
          peel = x;
          break;
        }
      }
      if (peel == kInvalidObjectId && n->vars.size() > 1) {
        ObjectId keep = LargestVarsObject(v);
        for (ObjectId x : n->vars) {
          if (x != keep) {
            peel = x;
            break;
          }
        }
      }
      if (peel == kInvalidObjectId) break;  // flushable as-is
      ++stats_.budget_identity_requests;
      metrics_.budget_identity_requests->Inc();
      if (identity_used >= identity_cap) {
        // Backpressure: the per-cycle W_IP allowance is spent. Drop the
        // request and resume on the next maintenance cycle.
        ++stats_.budget_identity_drops;
        metrics_.budget_identity_drops->Inc();
        out_of_identity_budget = true;
        break;
      }
      ++identity_used;
      LOGLOG_RETURN_IF_ERROR(InjectIdentityWrite(peel));
      fresh_identity_ops.insert(log_->last_assigned_lsn());
      // Peeling can merge nodes (cycles); re-check the node each round.
      graph_->Normalize();
    }
    if (out_of_identity_budget) break;
    const GraphNode* after = graph_->Find(v);
    if (after == nullptr) continue;  // merged away; re-scan
    if (!after->preds.empty()) {
      // Peeling added fan-in (readers of the peeled values); leave the
      // node for a later cycle and work on another chain.
      deferred.insert(v);
      continue;
    }
    ++stats_.budget_installs;
    metrics_.budget_installs->Inc();
    LOGLOG_RETURN_IF_ERROR(InstallNode(v));
  }
  span.AddArg("identity_used", static_cast<uint64_t>(identity_used));
  span.AddArg("backlog_after", static_cast<uint64_t>(graph_->op_count()));
  return Status::OK();
}

Status CacheManager::Checkpoint(Lsn truncate_floor, uint64_t txn_watermark) {
  DrainGraphBatch();
  // Advance hot objects' rSIs first: their operations install via
  // logging so the checkpoint can truncate past them without a flush
  // (Section 4: "merely install operations on them via logging, without
  // flushing them immediately").
  LOGLOG_RETURN_IF_ERROR(InstallHotNodesByLogging());
  ++stats_.checkpoints;
  metrics_.checkpoints->Inc();
  TraceSpan span("cm.checkpoint", "cache");
  // Under kLogStore, persist the object index first so recovery's rebuild
  // starts from this snapshot instead of scanning the whole retained log.
  // The record must survive truncation (it is this restart's rebuild
  // base), so its LSN joins the truncation floor below.
  Lsn idx_lsn = kMaxLsn;
  if (backend_ == StorageBackend::kLogStore) {
    LogRecord idx;
    idx.type = RecordType::kIndexCheckpoint;
    idx.index_entries = index_.Snapshot();
    idx_lsn = log_->Append(std::move(idx));
    metrics_.logstore_index_ckpts->Inc();
  }
  LogRecord rec;
  rec.type = RecordType::kCheckpoint;
  rec.dot = table_.DirtySnapshot();
  rec.txn_id = txn_watermark;
  Lsn min_rsi = kMaxLsn;
  for (const DotEntry& e : rec.dot) {
    if (e.rsi != kInvalidLsn) min_rsi = std::min(min_rsi, e.rsi);
  }
  Lsn ckpt_lsn = log_->Append(std::move(rec));
  LOGLOG_RETURN_IF_ERROR(log_->Force(ckpt_lsn));
  FlightRecorder::Global().Record(FlightEventType::kCheckpoint, ckpt_lsn);
  // Everything before min(first rSI, the checkpoint itself) is installed
  // in every explanation of the stable state and can be truncated — but
  // never past an active transaction's begin record (truncate_floor): a
  // rollback, at runtime or of a loser after a crash, must still find
  // the full backchain on the retained log.
  // Under kLogStore the floor deliberately ignores LogIndex::MinLsn: live
  // images below the truncation point fall into the device's cold tier
  // and stay readable there. Compaction, not retention, is what keeps
  // the hot log short.
  log_->TruncateBefore(std::min({min_rsi, ckpt_lsn, truncate_floor, idx_lsn}));
  if (backend_ == StorageBackend::kLogStore && !cold_retention_full_) {
    // Archive GC (opt-in): cold segments wholly below the oldest live
    // image hold only dead or rewritten bytes and can be released. The
    // bound is what compaction advances — without it, one cold object
    // pins the archive forever.
    uint64_t min_live = disk_->log().start_offset();
    for (const IndexCheckpointEntry& e : index_.Snapshot()) {
      min_live = std::min(min_live, e.offset);
    }
    disk_->log().ReclaimColdBelow(min_live);
  }
  return Status::OK();
}

void CacheManager::EvictTo(size_t capacity) {
  while (table_.size() > capacity) {
    ObjectId victim = table_.OldestClean();
    if (victim == kInvalidObjectId) return;  // everything dirty
    table_.Erase(victim);
    ++stats_.evictions;
    metrics_.evictions->Inc();
  }
}

Status CacheManager::CheckInvariants() {
  DrainGraphBatch();
  LOGLOG_RETURN_IF_ERROR(graph_->CheckInvariants());
  Status out = Status::OK();
  table_.ForEach([&](ObjectId id, const CachedObject& obj) {
    if (!out.ok()) return;
    Lsn first = graph_->FirstUninstalledWriter(id);
    if (obj.dirty && obj.rsi == kInvalidLsn) {
      out = Status::Corruption("dirty object without rSI");
    }
    if (first != kInvalidLsn && obj.rsi == kInvalidLsn) {
      out = Status::Corruption("uninstalled writer but clean rSI");
    }
    if (first != kInvalidLsn && obj.rsi > first) {
      out = Status::Corruption("rSI later than first uninstalled writer");
    }
  });
  if (out.ok()) {
    HealthRegistry::Global().Set(health::kCacheManager, HealthState::kOk);
  } else {
    HealthRegistry::Global().Set(health::kCacheManager,
                                 HealthState::kFailing, out.ToString());
  }
  return out;
}

}  // namespace loglog
