#ifndef LOGLOG_CACHE_CACHE_MANAGER_H_
#define LOGLOG_CACHE_CACHE_MANAGER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/object_table.h"
#include "cache/policies.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/types.h"
#include "graph/write_graph.h"
#include "logstore/log_index.h"
#include "ops/operation.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"

namespace loglog {

/// Counters for the cache-management experiments (Sections 3-4).
struct CacheStats {
  uint64_t purges = 0;
  uint64_t nodes_installed = 0;
  uint64_t ops_installed = 0;
  uint64_t identity_writes = 0;
  uint64_t identity_bytes_logged = 0;
  uint64_t flush_txns = 0;
  uint64_t flush_txn_values_logged = 0;
  uint64_t flush_txn_bytes_logged = 0;
  uint64_t checkpoints = 0;
  uint64_t evictions = 0;
  uint64_t installed_without_flush = 0;  // objects installed via Notx(n)
  // Recovery-budget enforcement (EnforceRecoveryBudget).
  uint64_t budget_installs = 0;           // nodes installed to fit budget
  uint64_t budget_identity_requests = 0;  // W_IP peels the budget asked for
  uint64_t budget_identity_drops = 0;     // requests denied by the cycle cap
  /// |vars(n)| at flush time — the atomic flush set size distribution.
  Histogram flush_set_sizes;
  /// |Writes(n)| at flush time (vars + notx).
  Histogram node_writes_sizes;
};

/// \brief The cache manager: volatile object state, the write graph, and
/// the flush machinery of Figure 4 (PurgeCache) plus Section 4's policies.
///
/// The CM's duty (Section 3) is to keep the stable database explainable:
/// it flushes objects only in write-graph order, honoring the WAL
/// protocol, and installs operations by flushing the vars of minimal
/// nodes. It is shared by normal execution and recovery — the redo pass
/// applies operations through the same ApplyResults path, which is what
/// makes recovery idempotent under repeated crashes.
class CacheManager {
 public:
  CacheManager(SimulatedDisk* disk, LogManager* log, GraphKind graph_kind,
               FlushPolicy flush_policy, bool log_installs,
               StorageBackend backend = StorageBackend::kDualWrite);

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  /// Latest value of an object (cache, else stable store). NotFound if it
  /// does not exist or has been deleted. `io_budget` bounds transient-I/O
  /// retries on the cache-miss stable read (kMaxIoRetries by default; the
  /// rollback path passes EngineOptions::rollback_io_retries).
  Status GetValue(ObjectId id, ObjectValue* out,
                  int io_budget = kMaxIoRetries);

  /// Whether the object currently exists (cached tombstones considered).
  bool ObjectExists(ObjectId id);

  /// vSI of the latest version (cached if present, else stable).
  Lsn CurrentVsi(ObjectId id) const;
  /// rSI of a cached object (kInvalidLsn if clean or uncached).
  Lsn CurrentRsi(ObjectId id) const;

  /// Applies an executed (already logged) operation's results: updates
  /// cached values/vSIs/rSIs and adds the operation to the write graph.
  /// `new_values` is aligned with op.writes; ignored for deletes.
  Status ApplyResults(const OperationDesc& op, Lsn lsn,
                      std::vector<ObjectValue> new_values);

  /// PurgeCache (Figure 4): installs one minimal write-graph node —
  /// forcing the log (WAL), flushing vars(n) under the configured
  /// FlushPolicy, advancing rSIs of all of Writes(n), and logging the
  /// installation. Under kIdentityWrites this may first inject W_IP
  /// operations to break the atomic flush set apart. NotFound if there is
  /// nothing to install.
  ///
  /// With allow_hot_flush false (the automatic purge path), nodes whose
  /// entire flush set is *hot* objects are skipped: Section 4's "hot
  /// objects will need to be retained in the cache in any event... we can
  /// decide to merely install operations on them via logging, without
  /// flushing them immediately". Under kIdentityWrites a hot object in a
  /// multi-object set is peeled by an identity write like any other (its
  /// node then waits); FlushAll (allow_hot_flush true) drains everything.
  Status PurgeOne(bool allow_hot_flush = true);

  /// Marks an object hot (see PurgeOne). Hot objects still flush on
  /// FlushAll and on explicit PurgeOne(true).
  void MarkHot(ObjectId id, bool hot);
  bool IsHot(ObjectId id) const { return hot_.contains(id); }

  /// Enables automatic hotness: an object becomes hot after `threshold`
  /// writes without an intervening flush, and cools down when flushed
  /// (0 disables; manual MarkHot always wins and never cools).
  void set_auto_hot_threshold(uint64_t threshold) {
    auto_hot_threshold_ = threshold;
  }

  /// Installs every node and flushes all remaining dirty objects.
  Status FlushAll();

  /// Recovery-budget enforcement (adaptive policy, Section 4's
  /// install-without-flush applied on demand): installs the oldest
  /// chains until at most `budget_ops` uninstalled operations remain.
  /// Under kIdentityWrites, hot vars are peeled with proactive W_IP
  /// identity writes so they install without leaving the cache; at most
  /// `identity_cap` W_IP injections are honored per call (one flush
  /// cycle) — requests beyond the cap are dropped, counted in
  /// stats().budget_identity_drops / cm.identity.budget_drops, and the
  /// backlog is retried next cycle. Staying over budget is never an
  /// error; only I/O and logging failures propagate.
  Status EnforceRecoveryBudget(uint64_t budget_ops, size_t identity_cap);

  /// Writes a (forced) checkpoint record with the dirty object table and
  /// truncates the stable log prefix no explanation still needs.
  /// `truncate_floor` additionally pins the log at the oldest record an
  /// active transaction may still need for rollback (its begin LSN):
  /// truncation never passes it, so a loser's backchain survives every
  /// checkpoint. kMaxLsn means no active transactions. `txn_watermark`
  /// is the highest transaction id issued so far (0 if none); the
  /// checkpoint record carries it so id allocation stays monotone even
  /// after truncation discards every transaction record.
  Status Checkpoint(Lsn truncate_floor = kMaxLsn,
                    uint64_t txn_watermark = 0);

  /// Evicts least-recently-used *clean* objects until at most `capacity`
  /// objects remain (dirty objects are never evicted; the paper requires
  /// an object be clean before leaving the cache).
  void EvictTo(size_t capacity);

  /// Which durability backend installation targets (fixed at
  /// construction).
  StorageBackend backend() const { return backend_; }

  /// The log-as-database object index (meaningful under kLogStore; empty
  /// under kDualWrite). Recovery rebuilds it through this accessor.
  LogIndex& log_index() { return index_; }
  const LogIndex& log_index() const { return index_; }

  /// Log-store compaction: re-logs up to `batch` of the oldest live
  /// images forward as W_IP identity writes (one force for the batch) and
  /// republishes their index entries, advancing LogIndex::MinLsn so the
  /// next checkpoint's truncation reclaims the bytes behind it. Objects
  /// with uninstalled writers are skipped — installation will republish
  /// them anyway. `images_moved` / `bytes_moved` (optional) report the
  /// pass size. No-op (OK) under kDualWrite or with an empty index.
  Status CompactLogStore(size_t batch, uint64_t* images_moved = nullptr,
                         uint64_t* bytes_moved = nullptr);

  /// Archive retention policy (kLogStore only; see
  /// LogStoreOptions::cold_retention_full). With full retention off,
  /// every checkpoint drops cold segments wholly below the oldest live
  /// index offset. Default: full retention.
  void set_cold_retention_full(bool full) { cold_retention_full_ = full; }

  ObjectTable& table() { return table_; }
  const ObjectTable& table() const { return table_; }
  /// The rW write graph. Accessing it drains the pending batch first so
  /// callers always observe the graph as if maintenance were per-append.
  WriteGraph& graph() {
    DrainGraphBatch();
    return *graph_;
  }
  const WriteGraph& graph() const {
    DrainGraphBatch();
    return *graph_;
  }
  const CacheStats& stats() const { return stats_; }
  size_t uninstalled_ops() const {
    return graph_->op_count() + pending_graph_ops_.size();
  }

  /// Batched rW-graph maintenance: when enabled (the default),
  /// ApplyResults queues graph insertions and the union-find/SCC work is
  /// amortized across a batch, drained in LSN order before any graph
  /// read. Observable graph state is identical to per-append insertion —
  /// the drain happens before anything can look.
  void set_graph_batching(bool enabled) {
    if (!enabled) DrainGraphBatch();
    graph_batching_ = enabled;
  }
  bool graph_batching() const { return graph_batching_; }

  /// Structural audit for tests: object-table/graph rSI agreement plus
  /// write-graph invariants.
  Status CheckInvariants();

  /// Crash-window fail points, kept as a compatibility shim over the
  /// FaultInjector registry: each value maps to a one-shot kCrashNow
  /// fault at the corresponding fault::kCm* site on the disk's injector
  /// (kNone disarms all three). New code should arm the sites directly —
  /// the registry adds trigger policies (nth-hit, every-k, probabilistic)
  /// this enum never had.
  enum class FailPoint {
    kNone,
    /// Flush transaction: after the commit record is forced but before
    /// any in-place object writes (recovery must complete the txn).
    kAfterFlushTxnCommit,
    /// Flush transaction: after the first in-place write (recovery must
    /// complete the remainder idempotently).
    kAfterFirstFlushTxnWrite,
    /// After the WAL force, before the flush itself (recovery redoes).
    kAfterWalForce,
  };
  void set_fail_point(FailPoint fp);

 private:
  /// Flushes vars(v) and removes v from the graph; v must be minimal.
  Status InstallNode(NodeId v);
  /// kLogStore cache-miss path: looks the object up in the index, reads
  /// its framed record from the log device (hot bytes or cold tier),
  /// re-decodes the full image and populates the cache clean.
  Status FaultInFromLog(ObjectId id, int io_budget, CachedObject** out);
  /// kLogStore publish path for an object with no uninstalled writers:
  /// appends a W_IP identity write (or a tombstone re-delete), forces it,
  /// and publishes the resulting stable extent in the index. The object
  /// comes out clean with vsi = the new record's LSN.
  Status RelogAndPublish(ObjectId id, CachedObject* obj);
  /// Publishes `id`'s current cached version in the index from its
  /// existing stable record (obj->vsi must be stable and a full image).
  Status PublishCurrentImage(ObjectId id, CachedObject* obj);
  /// Section 4 install-without-flush: installs every minimal hot-only
  /// node by peeling its vars to zero with identity writes (one logged
  /// value per hot object) and installing the empty node. Run by
  /// Checkpoint so hot objects' rSIs advance without a single flush.
  Status InstallHotNodesByLogging();
  /// Logs a W_IP identity write for `id` and runs it through the graph,
  /// peeling it out of its node's vars.
  Status InjectIdentityWrite(ObjectId id);
  /// Picks the vars object of `v` to keep (not identity-write): the one
  /// with the largest cached value, maximizing saved log volume.
  ObjectId LargestVarsObject(NodeId v) const;
  /// Flushes the pending graph batch into the write graph in LSN order.
  /// Const because reads trigger it (the graph lives behind a pointer,
  /// and the batch is declared mutable): logically the graph already
  /// contains these operations.
  void DrainGraphBatch() const;

  /// Global-registry twins of the hot CacheStats counters (fetched once
  /// in the constructor; incremented beside the struct fields so metrics
  /// snapshots see the same quantities without touching CacheStats).
  struct Instruments {
    Counter* purges;
    Counter* nodes_installed;
    Counter* ops_installed;
    Counter* identity_writes;
    Counter* identity_bytes;
    Counter* flush_txns;
    Counter* evictions;
    Counter* checkpoints;
    Counter* budget_installs;
    Counter* budget_identity_requests;
    Counter* budget_identity_drops;
    Counter* graph_batches;
    Counter* graph_batched_ops;
    HistogramMetric* flush_set_size;
    Counter* logstore_reads_log;
    Counter* logstore_index_ckpts;
  };

  SimulatedDisk* disk_;
  LogManager* log_;
  std::unique_ptr<WriteGraph> graph_;
  ObjectTable table_;
  Instruments metrics_;
  FlushPolicy flush_policy_;
  bool log_installs_;
  StorageBackend backend_;
  bool cold_retention_full_ = true;
  LogIndex index_;
  CacheStats stats_;
  uint64_t access_clock_ = 0;
  std::set<ObjectId> hot_;
  std::set<ObjectId> auto_hot_;
  uint64_t auto_hot_threshold_ = 0;
  /// Graph insertions not yet applied, in LSN order (mutable: reads
  /// drain; see DrainGraphBatch).
  mutable std::vector<PendingOp> pending_graph_ops_;
  bool graph_batching_ = true;
};

}  // namespace loglog

#endif  // LOGLOG_CACHE_CACHE_MANAGER_H_
