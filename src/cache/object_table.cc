#include "cache/object_table.h"

namespace loglog {

CachedObject* ObjectTable::Find(ObjectId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

const CachedObject* ObjectTable::Find(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

CachedObject& ObjectTable::GetOrCreate(ObjectId id) { return objects_[id]; }

size_t ObjectTable::dirty_count() const {
  size_t n = 0;
  for (const auto& [id, obj] : objects_) {
    if (obj.dirty) ++n;
  }
  return n;
}

std::vector<DotEntry> ObjectTable::DirtySnapshot() const {
  std::vector<DotEntry> out;
  for (const auto& [id, obj] : objects_) {
    if (obj.dirty) out.push_back(DotEntry{id, obj.rsi, !obj.exists});
  }
  return out;
}

void ObjectTable::ForEach(
    const std::function<void(ObjectId, CachedObject&)>& fn) {
  for (auto& [id, obj] : objects_) fn(id, obj);
}

void ObjectTable::ForEach(
    const std::function<void(ObjectId, const CachedObject&)>& fn) const {
  for (const auto& [id, obj] : objects_) fn(id, obj);
}

ObjectId ObjectTable::OldestClean() const {
  ObjectId best = kInvalidObjectId;
  uint64_t best_stamp = UINT64_MAX;
  for (const auto& [id, obj] : objects_) {
    if (!obj.dirty && obj.last_access < best_stamp) {
      best_stamp = obj.last_access;
      best = id;
    }
  }
  return best;
}

}  // namespace loglog
