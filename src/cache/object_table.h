#ifndef LOGLOG_CACHE_OBJECT_TABLE_H_
#define LOGLOG_CACHE_OBJECT_TABLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

namespace loglog {

/// \brief A cached recoverable object.
///
/// The object table generalizes ARIES's dirty pages table to arbitrary
/// objects (Section 3 "we abstract that to an object table").
struct CachedObject {
  ObjectValue value;
  /// lSI of the last operation that wrote the cached version.
  Lsn vsi = kInvalidLsn;
  /// lSI of the earliest operation whose redo is needed to rebuild the
  /// cached version from the stable version; kInvalidLsn when clean.
  Lsn rsi = kInvalidLsn;
  /// Cached version differs from the stable version.
  bool dirty = false;
  /// False after a delete executed but before it installed (tombstone).
  bool exists = true;
  /// Monotone access stamp for clean-eviction ordering.
  uint64_t last_access = 0;
  /// Writes since the object was last flushed clean (hotness signal).
  uint64_t writes_since_clean = 0;
  /// The cached version's producing record is a full image (see
  /// logstore/logstore.h). Under StorageBackend::kLogStore installation
  /// may only publish index entries for such versions; anything else must
  /// first be re-logged as a W_IP identity write.
  bool last_full_image = false;
};

/// \brief The volatile object table: every object currently cached,
/// dirty or clean.
class ObjectTable {
 public:
  CachedObject* Find(ObjectId id);
  const CachedObject* Find(ObjectId id) const;
  CachedObject& GetOrCreate(ObjectId id);
  void Erase(ObjectId id) { objects_.erase(id); }

  size_t size() const { return objects_.size(); }
  size_t dirty_count() const;

  /// Snapshot of the dirty object table for a checkpoint record: every
  /// dirty object with its rSI (Section 5).
  std::vector<DotEntry> DirtySnapshot() const;

  void ForEach(const std::function<void(ObjectId, CachedObject&)>& fn);
  void ForEach(
      const std::function<void(ObjectId, const CachedObject&)>& fn) const;

  /// Id of the least-recently-used *clean* object, or kInvalidObjectId.
  ObjectId OldestClean() const;

 private:
  std::unordered_map<ObjectId, CachedObject> objects_;
};

}  // namespace loglog

#endif  // LOGLOG_CACHE_OBJECT_TABLE_H_
