#ifndef LOGLOG_CACHE_POLICIES_H_
#define LOGLOG_CACHE_POLICIES_H_

namespace loglog {

/// How the cache manager realizes a multi-object atomic flush set.
enum class FlushPolicy {
  /// Idealized hardware multi-object atomic write. Baseline.
  kNativeAtomic,
  /// Section 4's contribution: inject W_IP identity writes to peel
  /// objects out of the set until one object remains, then flush it.
  kIdentityWrites,
  /// Section 4 "Atomic Flush" technique 2: log all values + commit, then
  /// write in place. Requires quiescing the system.
  kFlushTransaction,
  /// Section 4 technique 1: System R shadows — out-of-place writes plus a
  /// pointer swing; relocates objects.
  kShadow,
};

/// Which write graph drives flush ordering.
enum class GraphKind {
  /// W of Figure 3 (Lomet & Tuttle 1995): vars(n) == Writes(n), grows
  /// monotonically.
  kW,
  /// rW of Figure 6: unexposed objects leave vars(n).
  kRefined,
};

/// How operations are logged (Figure 1a vs 1b).
enum class LoggingMode {
  /// Log logical operations: identifiers + transform only.
  kLogical,
  /// Convert cross-object logical operations to physical writes whose
  /// values are logged (the Figure 1b baseline). Single-object
  /// physiological operations are logged as-is.
  kPhysiological,
};

/// How LogManager::Force maps force obligations onto device appends.
enum class ForcePolicy {
  /// One device append per Force call, covering exactly the requested
  /// prefix. Baseline; every caller pays its own force.
  kImmediate,
  /// Group commit: a Force appends the *entire* volatile buffer, so one
  /// device append discharges every pending obligation — later Force
  /// calls for already-stable LSNs are no-ops.
  kGroup,
  /// Like kGroup, but the append is extended past the requested LSN only
  /// while the batch stays under a byte budget (bounds force latency on
  /// a slow device while still coalescing small obligations).
  kSizeThreshold,
};

/// Where installed object state durably lives.
enum class StorageBackend {
  /// Classic dual-write: installation flushes object images to the
  /// StableStore (possibly after W_IP peeling), and reads that miss the
  /// cache fetch from the store. Baseline.
  kDualWrite,
  /// Log-as-database: the log IS the store. Installation publishes a
  /// LogIndex entry pointing at the object's last stable full-image
  /// record (injecting a W_IP identity write first when the tail record
  /// is not a full image); cache misses read the image back from the
  /// log device — hot retained window or spilled cold tier. A background
  /// compactor rewrites live tails forward so truncation reclaims real
  /// bytes; kIndexCheckpoint control records bound index-rebuild cost at
  /// recovery.
  kLogStore,
};

/// REDO test variants of Section 5.
enum class RedoTestKind {
  /// Redo every applicable operation (repeat all of history).
  kAlways,
  /// Classic SI test: skip when some written object's vSI >= lSI.
  kVsi,
  /// Generalized test with recovery SIs: additionally skip operations
  /// whose written objects are unexposed, uninstalled-free, or deleted.
  /// Deleted-object skips are gated by a conservative one-step reader
  /// check.
  kRsiGeneralized,
  /// Like kRsiGeneralized, but deleted-object skips use the exact
  /// reverse-order fixpoint over reader dependencies: an operation on a
  /// deleted object is skipped unless some transitively-redone operation
  /// still reads it. Skips a superset of kRsiGeneralized.
  kRsiFixpoint,
};

}  // namespace loglog

#endif  // LOGLOG_CACHE_POLICIES_H_
