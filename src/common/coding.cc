#include "common/coding.h"

#include <cstring>

namespace loglog {

void EncodeFixed32(uint8_t* buf, uint32_t v) {
  buf[0] = static_cast<uint8_t>(v);
  buf[1] = static_cast<uint8_t>(v >> 8);
  buf[2] = static_cast<uint8_t>(v >> 16);
  buf[3] = static_cast<uint8_t>(v >> 24);
}

void EncodeFixed64(uint8_t* buf, uint64_t v) {
  EncodeFixed32(buf, static_cast<uint32_t>(v));
  EncodeFixed32(buf + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t DecodeFixed32(const uint8_t* buf) {
  return static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
         (static_cast<uint32_t>(buf[2]) << 16) |
         (static_cast<uint32_t>(buf[3]) << 24);
}

uint64_t DecodeFixed64(const uint8_t* buf) {
  return static_cast<uint64_t>(DecodeFixed32(buf)) |
         (static_cast<uint64_t>(DecodeFixed32(buf + 4)) << 32);
}

void PutFixed32(std::vector<uint8_t>* dst, uint32_t v) {
  uint8_t buf[4];
  EncodeFixed32(buf, v);
  dst->insert(dst->end(), buf, buf + 4);
}

void PutFixed64(std::vector<uint8_t>* dst, uint64_t v) {
  uint8_t buf[8];
  EncodeFixed64(buf, v);
  dst->insert(dst->end(), buf, buf + 8);
}

void PutVarint64(std::vector<uint8_t>* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  dst->push_back(static_cast<uint8_t>(v));
}

void PutVarint32(std::vector<uint8_t>* dst, uint32_t v) {
  PutVarint64(dst, v);
}

void PutLengthPrefixed(std::vector<uint8_t>* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->insert(dst->end(), value.data(), value.data() + value.size());
}

Status GetFixed32(Slice* src, uint32_t* v) {
  if (src->size() < 4) return Status::Corruption("truncated fixed32");
  *v = DecodeFixed32(src->data());
  src->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* src, uint64_t* v) {
  if (src->size() < 8) return Status::Corruption("truncated fixed64");
  *v = DecodeFixed64(src->data());
  src->RemovePrefix(8);
  return Status::OK();
}

Status GetVarint64(Slice* src, uint64_t* v) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !src->empty(); shift += 7) {
    uint8_t byte = (*src)[0];
    src->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("truncated or overlong varint64");
}

Status GetVarint32(Slice* src, uint32_t* v) {
  uint64_t wide;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &wide));
  if (wide > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status GetLengthPrefixed(Slice* src, Slice* value) {
  uint64_t len;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &len));
  if (src->size() < len) {
    return Status::Corruption("truncated length-prefixed value");
  }
  *value = Slice(src->data(), len);
  src->RemovePrefix(len);
  return Status::OK();
}

uint8_t* EncodeVarint64(uint8_t* dst, uint64_t v) {
  while (v >= 0x80) {
    *dst++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *dst++ = static_cast<uint8_t>(v);
  return dst;
}

uint8_t* EncodeLengthPrefixed(uint8_t* dst, Slice value) {
  dst = EncodeVarint64(dst, value.size());
  if (!value.empty()) std::memcpy(dst, value.data(), value.size());
  return dst + value.size();
}

size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace loglog
