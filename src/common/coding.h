#ifndef LOGLOG_COMMON_CODING_H_
#define LOGLOG_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace loglog {

/// Little-endian fixed-width and varint encoders/decoders used by the log
/// record and page formats. Decoders consume from a Slice and fail with
/// Status::Corruption on truncated input, which is how torn log tails are
/// detected during recovery.

void PutFixed32(std::vector<uint8_t>* dst, uint32_t v);
void PutFixed64(std::vector<uint8_t>* dst, uint64_t v);
void PutVarint32(std::vector<uint8_t>* dst, uint32_t v);
void PutVarint64(std::vector<uint8_t>* dst, uint64_t v);
/// Length-prefixed byte string (varint length + raw bytes).
void PutLengthPrefixed(std::vector<uint8_t>* dst, Slice value);

Status GetFixed32(Slice* src, uint32_t* v);
Status GetFixed64(Slice* src, uint64_t* v);
Status GetVarint32(Slice* src, uint32_t* v);
Status GetVarint64(Slice* src, uint64_t* v);
/// Returns a view into `src`'s buffer; valid while the buffer lives.
Status GetLengthPrefixed(Slice* src, Slice* value);

/// Number of bytes PutVarint64 would emit for v.
size_t VarintLength(uint64_t v);

/// Encodes v into buf (must have >= 4/8 bytes); for in-place page fields.
void EncodeFixed32(uint8_t* buf, uint32_t v);
void EncodeFixed64(uint8_t* buf, uint64_t v);

/// Raw-buffer varint / length-prefixed encoders for the zero-copy WAL
/// append path: the caller reserves an exactly-sized span (via
/// VarintLength et al.) and these fill it, returning the advanced cursor.
uint8_t* EncodeVarint64(uint8_t* dst, uint64_t v);
uint8_t* EncodeLengthPrefixed(uint8_t* dst, Slice value);
uint32_t DecodeFixed32(const uint8_t* buf);
uint64_t DecodeFixed64(const uint8_t* buf);

}  // namespace loglog

#endif  // LOGLOG_COMMON_CODING_H_
