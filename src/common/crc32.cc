#include "common/crc32.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define LOGLOG_CRC32_X86 1
#include <nmmintrin.h>
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define LOGLOG_CRC32_ARM 1
#include <arm_acle.h>
#endif

namespace loglog {

namespace {

// CRC-32C (Castagnoli) polynomial, reflected form.
constexpr uint32_t kPoly = 0x82f63b78u;

// table[0] is the classic one-byte table; table[k] advances a byte that
// sits k positions deeper in the 8-byte word the slice-by-8 loop folds
// per iteration.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables[0][i] = crc;
  }
  for (int t = 1; t < 8; ++t) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[t][i] =
          (tables[t - 1][i] >> 8) ^ tables[0][tables[t - 1][i] & 0xff];
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = MakeTables();
  return tables;
}

#if defined(LOGLOG_CRC32_X86)
bool DetectX86Crc() { return __builtin_cpu_supports("sse4.2"); }

__attribute__((target("sse4.2"))) uint32_t HardwareKernelX86(uint32_t crc,
                                                            const uint8_t* p,
                                                            size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = _mm_crc32_u64(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}
#endif  // LOGLOG_CRC32_X86

#if defined(LOGLOG_CRC32_ARM)
uint32_t HardwareKernelArm(uint32_t crc, const uint8_t* p, size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc = __crc32cd(crc, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return ~crc;
}
#endif  // LOGLOG_CRC32_ARM

bool HardwareDetected() {
#if defined(LOGLOG_CRC32_X86)
  static const bool available = DetectX86Crc();
  return available;
#elif defined(LOGLOG_CRC32_ARM)
  return true;
#else
  return false;
#endif
}

}  // namespace

uint32_t Crc32cExtendScalar(uint32_t crc, Slice data) {
  const auto& table = Tables()[0];
  crc = ~crc;
  for (size_t i = 0; i < data.size(); ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32cExtendSliceBy8(uint32_t crc, Slice data) {
  const auto& t = Tables();
  const uint8_t* p = data.data();
  size_t n = data.size();
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][(word >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
#endif  // little-endian word fold
  while (n > 0) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

uint32_t Crc32cExtendHardware(uint32_t crc, Slice data) {
#if defined(LOGLOG_CRC32_X86)
  return HardwareKernelX86(crc, data.data(), data.size());
#elif defined(LOGLOG_CRC32_ARM)
  return HardwareKernelArm(crc, data.data(), data.size());
#else
  return Crc32cExtendSliceBy8(crc, data);
#endif
}

bool Crc32cHardwareAvailable() { return HardwareDetected(); }

Crc32cKernel Crc32cActiveKernel() {
  return HardwareDetected() ? Crc32cKernel::kHardware : Crc32cKernel::kSliceBy8;
}

const char* Crc32cKernelName(Crc32cKernel kernel) {
  switch (kernel) {
    case Crc32cKernel::kScalar:
      return "scalar";
    case Crc32cKernel::kSliceBy8:
      return "slice_by_8";
    case Crc32cKernel::kHardware:
      return "hardware";
  }
  return "unknown";
}

uint32_t Crc32cExtend(uint32_t crc, Slice data) {
  if (HardwareDetected()) {
    return Crc32cExtendHardware(crc, data);
  }
  return Crc32cExtendSliceBy8(crc, data);
}

uint32_t Crc32c(Slice data) { return Crc32cExtend(0, data); }

}  // namespace loglog
