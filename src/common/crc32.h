#ifndef LOGLOG_COMMON_CRC32_H_
#define LOGLOG_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace loglog {

/// CRC-32C (Castagnoli) over a byte range; software table implementation.
/// Used to checksum log records so recovery can distinguish a torn final
/// record from genuine corruption mid-log.
uint32_t Crc32c(Slice data);

/// Extends a running CRC with more data: Crc32c(a+b) ==
/// Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, Slice data);

}  // namespace loglog

#endif  // LOGLOG_COMMON_CRC32_H_
