#ifndef LOGLOG_COMMON_CRC32_H_
#define LOGLOG_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace loglog {

/// CRC-32C (Castagnoli) over a byte range. Used to checksum log records
/// so recovery can distinguish a torn final record from genuine
/// corruption mid-log, and to frame replication batches.
///
/// Crc32c / Crc32cExtend dispatch at runtime to the fastest kernel the
/// machine supports: the SSE4.2 (x86) or ARMv8-CRC instruction path when
/// present, else the slice-by-8 software kernel. All kernels compute the
/// same function as the original one-table scalar code (the cross-check
/// is enforced by tests/crc32_test.cc), so log images stay byte-identical
/// across machines and across this change.
uint32_t Crc32c(Slice data);

/// Extends a running CRC with more data: Crc32c(a+b) ==
/// Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, Slice data);

/// Which implementation the dispatched entry points use on this machine.
enum class Crc32cKernel : uint8_t {
  kScalar,    // original single-table, byte-at-a-time
  kSliceBy8,  // 8-table software kernel, 8 bytes per step
  kHardware,  // SSE4.2 CRC32 / ARMv8 CRC instructions
};

const char* Crc32cKernelName(Crc32cKernel kernel);

/// The kernel Crc32c/Crc32cExtend currently dispatch to.
Crc32cKernel Crc32cActiveKernel();

/// True when the hardware instruction path is usable on this machine.
bool Crc32cHardwareAvailable();

/// Direct kernel entry points, bypassing dispatch. For the cross-check
/// tests and the CRC throughput benchmark only; production code uses the
/// dispatched Crc32c/Crc32cExtend.
uint32_t Crc32cExtendScalar(uint32_t crc, Slice data);
uint32_t Crc32cExtendSliceBy8(uint32_t crc, Slice data);
/// Precondition: Crc32cHardwareAvailable().
uint32_t Crc32cExtendHardware(uint32_t crc, Slice data);

}  // namespace loglog

#endif  // LOGLOG_COMMON_CRC32_H_
