#ifndef LOGLOG_COMMON_HISTOGRAM_H_
#define LOGLOG_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>

namespace loglog {

/// \brief Exact small-domain histogram for experiment metrics.
///
/// The quantities we histogram (atomic flush set sizes, write graph node
/// counts, ops redone) have small integer domains, so an exact map-based
/// histogram is simpler and more faithful than bucketing.
class Histogram {
 public:
  void Add(uint64_t value) {
    ++counts_[value];
    ++n_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  uint64_t count() const { return n_; }
  uint64_t max() const { return max_; }
  double mean() const { return n_ == 0 ? 0.0 : static_cast<double>(sum_) / n_; }

  /// Smallest value v such that at least q*count() samples are <= v.
  uint64_t Percentile(double q) const;

  /// Number of samples equal to `value`.
  uint64_t CountOf(uint64_t value) const {
    auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }

  /// "n=<N> mean=<M> max=<X> p50=<..> p99=<..>" for bench output.
  std::string ToString() const;

  void Clear() {
    counts_.clear();
    n_ = 0;
    sum_ = 0;
    max_ = 0;
  }

 private:
  std::map<uint64_t, uint64_t> counts_;
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_COMMON_HISTOGRAM_H_
