#ifndef LOGLOG_COMMON_RANDOM_H_
#define LOGLOG_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace loglog {

/// \brief Deterministic pseudo-random generator (xorshift64*).
///
/// Workload generators, crash injectors and the registered operation
/// transforms all need reproducible randomness so that a (seed, crash
/// point) pair fully determines an experiment. std::mt19937 would work but
/// its state is bulky; this generator is tiny and stable across platforms.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1d;
  }

  /// Uniform value in [0, n); n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi]; lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability num/den.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Fills `n` pseudo-random bytes.
  std::vector<uint8_t> Bytes(size_t n) {
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(Next());
    }
    return out;
  }

 private:
  uint64_t state_;
};

/// Stateless 64-bit mix function (splitmix64 finalizer). The deterministic
/// operation transforms (application execute/read, logical writes) are
/// built from this so that replaying a logged operation always reproduces
/// the original output.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9;
  x = (x ^ (x >> 27)) * 0x94d049bb133111eb;
  return x ^ (x >> 31);
}

}  // namespace loglog

#endif  // LOGLOG_COMMON_RANDOM_H_
