#ifndef LOGLOG_COMMON_RESULT_H_
#define LOGLOG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace loglog {

/// \brief A Status or a value of type T.
///
/// Minimal StatusOr in the spirit of absl::StatusOr: either holds a value
/// (status is OK) or a non-OK Status. Accessing the value of an errored
/// result is a programming error and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// error Status from the enclosing function.
#define LOGLOG_ASSIGN_OR_RETURN(lhs, expr)       \
  do {                                           \
    auto _res = (expr);                          \
    if (!_res.ok()) return _res.status();        \
    lhs = std::move(_res).value();               \
  } while (0)

}  // namespace loglog

#endif  // LOGLOG_COMMON_RESULT_H_
