#ifndef LOGLOG_COMMON_RETRY_H_
#define LOGLOG_COMMON_RETRY_H_

#include <cstdint>
#include <utility>

#include "common/status.h"

namespace loglog {

/// Retry budget for transient I/O errors. The simulator has no clock, so
/// "bounded backoff" is a bounded number of immediate re-issues; each
/// re-issue is billed to the caller's retry counter. A fault armed as
/// permanent keeps failing, exhausts the budget, and surfaces as a clean
/// IoError; a transient fault succeeds on a retry and the caller never
/// sees it.
inline constexpr int kMaxIoRetries = 3;

/// Runs `fn` (a callable returning Status), re-issuing it up to `budget`
/// times while it fails with IoError. Other failure codes (Corruption,
/// Aborted, NotFound...) are never retried — they are not transient device
/// conditions. A tighter budget than kMaxIoRetries suits paths that must
/// fail fast (rollback I/O under fault storms); budget == 0 disables
/// retrying entirely, which lets tests force exhaustion without arming
/// permanent faults everywhere.
template <typename Fn>
Status RetryTransientIo(int budget, uint64_t* retry_counter, Fn&& fn) {
  Status st = std::forward<Fn>(fn)();
  for (int i = 0; i < budget && st.IsIoError(); ++i) {
    ++*retry_counter;
    st = std::forward<Fn>(fn)();
  }
  return st;
}

/// Default-budget form (the common call shape).
template <typename Fn>
Status RetryTransientIo(uint64_t* retry_counter, Fn&& fn) {
  return RetryTransientIo(kMaxIoRetries, retry_counter,
                          std::forward<Fn>(fn));
}

}  // namespace loglog

#endif  // LOGLOG_COMMON_RETRY_H_
