#ifndef LOGLOG_COMMON_SLICE_H_
#define LOGLOG_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace loglog {

/// \brief A non-owning view over a byte range.
///
/// Like leveldb::Slice / std::span<const uint8_t>, with conversions from
/// std::string and std::vector<uint8_t> which are the two owning byte
/// containers the library uses.
class Slice {
 public:
  Slice() = default;
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): views are intended to be
  // constructed implicitly at call sites, as with string_view.
  Slice(const std::string& s) : Slice(s.data(), s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const std::vector<uint8_t>& v) : data_(v.data()), size_(v.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const char* cstr) : Slice(cstr, ::strlen(cstr)) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }
  std::vector<uint8_t> ToBytes() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || ::memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace loglog

#endif  // LOGLOG_COMMON_SLICE_H_
