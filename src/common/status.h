#ifndef LOGLOG_COMMON_STATUS_H_
#define LOGLOG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace loglog {

/// \brief Result of an operation that can fail.
///
/// Modeled after the Status idiom used by LevelDB/RocksDB/Arrow: cheap to
/// return, carries an error code plus a human-readable message. The library
/// never throws; every fallible public entry point returns a Status (or a
/// StatusOr, see result.h).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kFailedPrecondition,
    kNotSupported,
    kIoError,
    kAborted,
  };

  Status() = default;

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(Code::kFailedPrecondition, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsAborted() const { return code_ == Code::kAborted; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code();
}

/// Propagates a non-OK Status to the caller. Usable only in functions that
/// themselves return Status.
#define LOGLOG_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::loglog::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace loglog

#endif  // LOGLOG_COMMON_STATUS_H_
