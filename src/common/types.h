#ifndef LOGLOG_COMMON_TYPES_H_
#define LOGLOG_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace loglog {

/// Identifier of a recoverable object (a page, a file, an application
/// state, ...). Objects are the unit of caching, flushing and recovery.
using ObjectId = uint64_t;

/// A state identifier (SI). The paper uses SIs as the generalization of
/// LSNs: they need only increase monotonically per update. We use log
/// sequence numbers as SIs throughout, as the paper does in its examples,
/// so Lsn doubles as both the log address (lSI) and object version (vSI).
using Lsn = uint64_t;

inline constexpr Lsn kInvalidLsn = 0;
inline constexpr Lsn kMaxLsn = std::numeric_limits<Lsn>::max();
inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// Owning byte value of a recoverable object.
using ObjectValue = std::vector<uint8_t>;

}  // namespace loglog

#endif  // LOGLOG_COMMON_TYPES_H_
