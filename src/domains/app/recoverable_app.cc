#include "domains/app/recoverable_app.h"

#include "common/random.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"

namespace loglog {

Status RecoverableApp::Init(uint64_t seed) {
  Random rng(seed);
  return engine_->Execute(MakeCreate(app_id_, Slice(rng.Bytes(state_size_))));
}

Status RecoverableApp::Step(uint64_t seed) {
  return engine_->Execute(MakeAppExecute(app_id_, seed));
}

Status RecoverableApp::Absorb(ObjectId x) {
  return engine_->Execute(MakeAppRead(app_id_, x));
}

Status RecoverableApp::Emit(ObjectId x, uint64_t size, uint64_t seed) {
  OperationDesc logical = MakeAppWrite(app_id_, x, size, seed);
  if (logical_writes_) {
    return engine_->Execute(logical);
  }
  // [7] baseline: compute the output now and log it physically, value and
  // all (W_P(X, v)). Same resulting state, very different logging cost.
  ObjectValue state;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(app_id_, &state));
  std::vector<ObjectValue> writes(1);
  LOGLOG_RETURN_IF_ERROR(
      FunctionRegistry::Global().Apply(logical, {state}, &writes));
  return engine_->Execute(MakePhysicalWrite(x, Slice(writes[0])));
}

}  // namespace loglog
