#ifndef LOGLOG_DOMAINS_APP_RECOVERABLE_APP_H_
#define LOGLOG_DOMAINS_APP_RECOVERABLE_APP_H_

#include "common/status.h"
#include "common/types.h"
#include "engine/recovery_engine.h"

namespace loglog {

/// \brief A recoverable application — the paper's "Application Recovery"
/// domain (Section 1, and the comparison baseline from Lomet ICDE 1998
/// [7]).
///
/// The application's state is one recoverable object. Its interactions
/// are logged operations:
///  - Step(seed): Ex(A), the execution between system calls;
///  - Absorb(x):  R(A, X), a logical application read — neither X's value
///    nor A's new state is logged;
///  - Emit(x, size, seed): the application writes an output object. With
///    `logical_writes` this is W_L(A, X) (no value logged — this paper's
///    contribution); without, it is the [7] baseline W_P(X, v) where the
///    whole output value v goes to the log.
class RecoverableApp {
 public:
  RecoverableApp(RecoveryEngine* engine, ObjectId app_id, size_t state_size,
                 bool logical_writes = true)
      : engine_(engine),
        app_id_(app_id),
        state_size_(state_size),
        logical_writes_(logical_writes) {}

  /// Creates the application state object (deterministic in `seed`).
  Status Init(uint64_t seed);

  /// Ex(A): one execution step.
  Status Step(uint64_t seed);

  /// R(A, X): reads object `x` into the application state.
  Status Absorb(ObjectId x);

  /// Writes `size` output bytes to object `x` as a deterministic function
  /// of the application state.
  Status Emit(ObjectId x, uint64_t size, uint64_t seed);

  /// Current application state.
  Status State(ObjectValue* out) { return engine_->Read(app_id_, out); }

  ObjectId id() const { return app_id_; }

 private:
  RecoveryEngine* engine_;
  ObjectId app_id_;
  size_t state_size_;
  bool logical_writes_;
};

}  // namespace loglog

#endif  // LOGLOG_DOMAINS_APP_RECOVERABLE_APP_H_
