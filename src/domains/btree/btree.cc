#include "domains/btree/btree.h"

#include <algorithm>

#include "common/coding.h"
#include "ops/function_registry.h"
#include "ops/inverse_registry.h"
#include "ops/op_builder.h"

namespace loglog {

namespace {

struct Meta {
  ObjectId root = kInvalidObjectId;
  ObjectId next_page = kInvalidObjectId;
  std::set<ObjectId> free_list;
};

ObjectValue SerializeMeta(const Meta& meta) {
  ObjectValue out;
  PutVarint64(&out, meta.root);
  PutVarint64(&out, meta.next_page);
  PutVarint64(&out, meta.free_list.size());
  for (ObjectId id : meta.free_list) PutVarint64(&out, id);
  return out;
}

Status DeserializeMeta(Slice bytes, Meta* meta) {
  meta->free_list.clear();
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &meta->root));
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &meta->next_page));
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &n));
  for (uint64_t i = 0; i < n; ++i) {
    ObjectId id;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &id));
    meta->free_list.insert(id);
  }
  return Status::OK();
}

// Marks `id` allocated in `meta` (whether it came from the free list or
// from the frontier). Shared by the split transforms and the tree.
void MetaAllocate(Meta* meta, ObjectId id) {
  meta->free_list.erase(id);
  meta->next_page = std::max(meta->next_page, id + 1);
}

// params: varint key, length-prefixed value. Physiological leaf insert.
Status InsertLeafFn(const OperationDesc& op,
                    const std::vector<ObjectValue>& /*reads*/,
                    std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t key;
  Slice value;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &key));
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&p, &value));
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice((*writes)[0]), &page));
  if (!page.is_leaf) return Status::InvalidArgument("not a leaf");
  page.LeafInsert(key, value);
  (*writes)[0] = page.Serialize();
  return Status::OK();
}

// params: varint key, varint child. Physiological internal insert (used
// by the physiological split baseline).
Status InsertInternalFn(const OperationDesc& op,
                        const std::vector<ObjectValue>& /*reads*/,
                        std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t key, child;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &key));
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &child));
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice((*writes)[0]), &page));
  if (page.is_leaf) return Status::InvalidArgument("not internal");
  page.InternalInsert(key, child);
  (*writes)[0] = page.Serialize();
  return Status::OK();
}

// Logical split as ONE atomic operation covering the whole structure
// modification: writes {old, new, parent, meta}, reads {old, parent,
// meta}. The midpoint rule is deterministic in the old page's contents,
// so nothing is logged beyond the object identifiers — neither page
// image reaches the log, and a crash can never tear the split apart.
Status SplitFn(const OperationDesc& op,
               const std::vector<ObjectValue>& reads,
               std::vector<ObjectValue>* writes) {
  ObjectId new_id = op.writes[1];
  BtreePage old_page, parent;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[0]), &old_page));
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[1]), &parent));
  Meta meta;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[2]), &meta));

  BtreePage right;
  uint64_t separator = old_page.SplitInto(&right);
  if (old_page.is_leaf) {
    right.next_leaf = old_page.next_leaf;
    old_page.next_leaf = new_id;
  }
  parent.InternalInsert(separator, new_id);
  MetaAllocate(&meta, new_id);

  (*writes)[0] = old_page.Serialize();
  (*writes)[1] = right.Serialize();
  (*writes)[2] = parent.Serialize();
  (*writes)[3] = SerializeMeta(meta);
  return Status::OK();
}

// Root split: writes {old, new, new_root, meta}, reads {old, meta}.
Status RootSplitFn(const OperationDesc& op,
                   const std::vector<ObjectValue>& reads,
                   std::vector<ObjectValue>* writes) {
  ObjectId new_id = op.writes[1];
  ObjectId new_root_id = op.writes[2];
  BtreePage old_page;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[0]), &old_page));
  Meta meta;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[1]), &meta));

  BtreePage right;
  uint64_t separator = old_page.SplitInto(&right);
  if (old_page.is_leaf) {
    right.next_leaf = old_page.next_leaf;
    old_page.next_leaf = new_id;
  }
  BtreePage new_root;
  new_root.is_leaf = false;
  new_root.first_child = op.writes[0];
  new_root.internal_entries.push_back({separator, new_id});
  meta.root = new_root_id;
  MetaAllocate(&meta, new_id);
  MetaAllocate(&meta, new_root_id);

  (*writes)[0] = old_page.Serialize();
  (*writes)[1] = right.Serialize();
  (*writes)[2] = new_root.Serialize();
  (*writes)[3] = SerializeMeta(meta);
  return Status::OK();
}

// Physiological baseline for the old page: keep only the lower half
// (same midpoint rule, logged as a tiny delta). The new page is written
// physically by the tree. params: varint new page id (for leaf chaining).
Status TruncateFn(const OperationDesc& op,
                  const std::vector<ObjectValue>& /*reads*/,
                  std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t new_id;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &new_id));
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice((*writes)[0]), &page));
  BtreePage right;
  page.SplitInto(&right);  // discard the right half
  if (page.is_leaf) page.next_leaf = new_id;
  (*writes)[0] = page.Serialize();
  return Status::OK();
}

// params: varint key. Physiological leaf erase.
Status EraseLeafFn(const OperationDesc& op,
                   const std::vector<ObjectValue>& /*reads*/,
                   std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t key;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &key));
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice((*writes)[0]), &page));
  page.LeafErase(key);
  (*writes)[0] = page.Serialize();
  return Status::OK();
}

// Leaf merge as ONE atomic operation: writes {left, right, parent,
// meta}, reads the same. Left absorbs right; right becomes an empty page
// on the free list; the parent drops the separator pointing at right.
Status MergeLeavesFn(const OperationDesc& op,
                     const std::vector<ObjectValue>& reads,
                     std::vector<ObjectValue>* writes) {
  ObjectId right_id = op.writes[1];
  BtreePage left, right, parent;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[0]), &left));
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[1]), &right));
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[2]), &parent));
  Meta meta;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[3]), &meta));
  if (!left.is_leaf || !right.is_leaf) {
    return Status::InvalidArgument("merge of non-leaves");
  }

  left.leaf_entries.insert(left.leaf_entries.end(),
                           right.leaf_entries.begin(),
                           right.leaf_entries.end());
  left.next_leaf = right.next_leaf;
  for (auto it = parent.internal_entries.begin();
       it != parent.internal_entries.end(); ++it) {
    if (it->child == right_id) {
      parent.internal_entries.erase(it);
      break;
    }
  }
  meta.free_list.insert(right_id);

  (*writes)[0] = left.Serialize();
  (*writes)[1] = BtreePage().Serialize();  // empty leaf placeholder
  (*writes)[2] = parent.Serialize();
  (*writes)[3] = SerializeMeta(meta);
  return Status::OK();
}

// Root collapse: writes {root_page, meta}, reads the same. When the root
// is an internal page with no separators left, its single child becomes
// the root and the old root page is freed.
Status CollapseRootFn(const OperationDesc& op,
                      const std::vector<ObjectValue>& reads,
                      std::vector<ObjectValue>* writes) {
  ObjectId root_id = op.writes[0];
  BtreePage root;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(reads[0]), &root));
  Meta meta;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[1]), &meta));
  if (root.is_leaf || !root.internal_entries.empty()) {
    return Status::FailedPrecondition("root not collapsible");
  }
  meta.root = root.first_child;
  meta.free_list.insert(root_id);
  (*writes)[0] = BtreePage().Serialize();
  (*writes)[1] = SerializeMeta(meta);
  return Status::OK();
}

OperationDesc MakeLeafInsertOp(ObjectId page, uint64_t key, Slice value) {
  OperationDesc op;
  op.op_class = OpClass::kPhysiological;
  op.func = kFuncBtreeInsertLeaf;
  op.writes = {page};
  op.reads = {page};
  PutVarint64(&op.params, key);
  PutLengthPrefixed(&op.params, value);
  return op;
}

OperationDesc MakeInternalInsertOp(ObjectId page, uint64_t key,
                                   ObjectId child) {
  OperationDesc op;
  op.op_class = OpClass::kPhysiological;
  op.func = kFuncBtreeInsertInternal;
  op.writes = {page};
  op.reads = {page};
  PutVarint64(&op.params, key);
  PutVarint64(&op.params, child);
  return op;
}

OperationDesc MakeSplitOp(ObjectId old_page, ObjectId new_page,
                          ObjectId parent, ObjectId meta) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncBtreeSplit;
  op.writes = {old_page, new_page, parent, meta};
  op.reads = {old_page, parent, meta};
  return op;
}

OperationDesc MakeRootSplitOp(ObjectId old_page, ObjectId new_page,
                              ObjectId new_root, ObjectId meta) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncBtreeRootSplit;
  op.writes = {old_page, new_page, new_root, meta};
  op.reads = {old_page, meta};
  return op;
}

OperationDesc MakeTruncateOp(ObjectId page, ObjectId new_id) {
  OperationDesc op;
  op.op_class = OpClass::kPhysiological;
  op.func = kFuncBtreeTruncate;
  op.writes = {page};
  op.reads = {page};
  PutVarint64(&op.params, new_id);
  return op;
}

OperationDesc MakeEraseLeafOp(ObjectId page, uint64_t key) {
  OperationDesc op;
  op.op_class = OpClass::kPhysiological;
  op.func = kFuncBtreeEraseLeaf;
  op.writes = {page};
  op.reads = {page};
  PutVarint64(&op.params, key);
  return op;
}

OperationDesc MakeMergeOp(ObjectId left, ObjectId right, ObjectId parent,
                          ObjectId meta) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncBtreeMergeLeaves;
  op.writes = {left, right, parent, meta};
  op.reads = {left, right, parent, meta};
  return op;
}

OperationDesc MakeCollapseRootOp(ObjectId root, ObjectId meta) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncBtreeCollapseRoot;
  op.writes = {root, meta};
  op.reads = {root, meta};
  return op;
}

}  // namespace

void RegisterBtreeTransforms() {
  FunctionRegistry& reg = FunctionRegistry::Global();
  reg.Register(kFuncBtreeInsertLeaf, InsertLeafFn);
  reg.Register(kFuncBtreeInsertInternal, InsertInternalFn);
  reg.Register(kFuncBtreeSplit, SplitFn);
  reg.Register(kFuncBtreeRootSplit, RootSplitFn);
  reg.Register(kFuncBtreeTruncate, TruncateFn);
  reg.Register(kFuncBtreeEraseLeaf, EraseLeafFn);
  reg.Register(kFuncBtreeMergeLeaves, MergeLeavesFn);
  reg.Register(kFuncBtreeCollapseRoot, CollapseRootFn);

  // Compensation: a leaf insert of a *fresh* key is exactly inverted by
  // erasing the key (pages serialize canonically, sorted by key). An
  // insert that replaced an existing value is not — erase would lose the
  // old value — so invertible() checks the pre-image page and the engine
  // falls back to logging a physical before-image in that case.
  InverseEntry insert_inverse;
  insert_inverse.invertible = [](const OperationDesc& op,
                                 const std::vector<bool>& old_exists,
                                 const std::vector<ObjectValue>& old_values) {
    if (op.writes.size() != 1 || !old_exists[0]) return false;
    Slice p(op.params);
    uint64_t key;
    if (!GetVarint64(&p, &key).ok()) return false;
    BtreePage page;
    if (!BtreePage::Deserialize(Slice(old_values[0]), &page).ok()) {
      return false;
    }
    std::vector<uint8_t> unused;
    return page.is_leaf && page.LeafLookup(key, &unused).IsNotFound();
  };
  insert_inverse.build = [](const OperationDesc& op, OperationDesc* inv) {
    Slice p(op.params);
    uint64_t key;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &key));
    *inv = op;
    inv->func = kFuncBtreeEraseLeaf;
    inv->params.clear();
    PutVarint64(&inv->params, key);
    return Status::OK();
  };
  InverseRegistry::Global().Register(kFuncBtreeInsertLeaf, insert_inverse);
}

Btree::Btree(RecoveryEngine* engine, const BtreeOptions& options)
    : engine_(engine), options_(options), meta_id_(options.id_base) {
  RegisterBtreeTransforms();
}

Status Btree::Open() {
  if (engine_->Exists(meta_id_)) return LoadMeta();
  root_ = options_.id_base + 1;
  next_page_ = options_.id_base + 2;
  free_list_.clear();
  BtreePage root;
  root.is_leaf = true;
  LOGLOG_RETURN_IF_ERROR(
      engine_->Execute(MakeCreate(root_, Slice(root.Serialize()))));
  return WriteMeta();
}

Status Btree::LoadMeta() {
  ObjectValue bytes;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(meta_id_, &bytes));
  Meta meta;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(bytes), &meta));
  root_ = meta.root;
  next_page_ = meta.next_page;
  free_list_ = std::move(meta.free_list);
  return Status::OK();
}

Status Btree::WriteMeta() {
  Meta meta;
  meta.root = root_;
  meta.next_page = next_page_;
  meta.free_list = free_list_;
  return engine_->Execute(
      MakePhysicalWrite(meta_id_, Slice(SerializeMeta(meta))));
}

Status Btree::ReadPage(ObjectId id, BtreePage* out) {
  ObjectValue bytes;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(id, &bytes));
  return BtreePage::Deserialize(Slice(bytes), out);
}

ObjectId Btree::AllocPageId() {
  if (!free_list_.empty()) {
    ObjectId id = *free_list_.begin();
    free_list_.erase(free_list_.begin());
    ++stats_.pages_reused;
    return id;
  }
  return next_page_++;
}

Status Btree::Get(uint64_t key, std::vector<uint8_t>* out) {
  ObjectId id = root_;
  BtreePage page;
  while (true) {
    LOGLOG_RETURN_IF_ERROR(ReadPage(id, &page));
    if (page.is_leaf) return page.LeafLookup(key, out);
    id = page.ChildFor(key);
  }
}

Status Btree::Scan(
    uint64_t from, size_t limit,
    std::vector<std::pair<uint64_t, std::vector<uint8_t>>>* out) {
  out->clear();
  ObjectId id = root_;
  BtreePage page;
  while (true) {
    LOGLOG_RETURN_IF_ERROR(ReadPage(id, &page));
    if (page.is_leaf) break;
    id = page.ChildFor(from);
  }
  while (out->size() < limit) {
    for (const BtreePage::LeafEntry& e : page.leaf_entries) {
      if (e.key < from) continue;
      out->emplace_back(e.key, e.value);
      if (out->size() >= limit) return Status::OK();
    }
    if (page.next_leaf == kInvalidObjectId) break;
    LOGLOG_RETURN_IF_ERROR(ReadPage(page.next_leaf, &page));
  }
  return Status::OK();
}

Status Btree::Insert(uint64_t key, Slice value) {
  ++stats_.inserts;
  // Descend, recording the path for possible splits.
  std::vector<ObjectId> path = {root_};
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(ReadPage(root_, &page));
  while (!page.is_leaf) {
    path.push_back(page.ChildFor(key));
    LOGLOG_RETURN_IF_ERROR(ReadPage(path.back(), &page));
  }
  LOGLOG_RETURN_IF_ERROR(
      engine_->Execute(MakeLeafInsertOp(path.back(), key, value)));
  page.LeafInsert(key, value);
  if (PageBytes(page) > options_.max_page_bytes) {
    LOGLOG_RETURN_IF_ERROR(SplitUpwards(path));
  }
  return Status::OK();
}

Status Btree::SplitUpwards(std::vector<ObjectId> path) {
  while (!path.empty()) {
    ObjectId page_id = path.back();
    path.pop_back();
    BtreePage page;
    LOGLOG_RETURN_IF_ERROR(ReadPage(page_id, &page));
    if (PageBytes(page) <= options_.max_page_bytes) return Status::OK();

    ++stats_.splits;
    ObjectId new_id = AllocPageId();
    bool is_root = path.empty();
    ObjectId new_root_id = is_root ? AllocPageId() : kInvalidObjectId;

    if (options_.logical_splits) {
      // The whole structure modification is one atomic logical operation;
      // no page image is logged and a crash can never tear it apart.
      if (is_root) {
        ++stats_.root_splits;
        LOGLOG_RETURN_IF_ERROR(engine_->Execute(
            MakeRootSplitOp(page_id, new_id, new_root_id, meta_id_)));
      } else {
        LOGLOG_RETURN_IF_ERROR(engine_->Execute(
            MakeSplitOp(page_id, new_id, path.back(), meta_id_)));
      }
      // The transform updated the meta object; mirror it.
      LOGLOG_RETURN_IF_ERROR(LoadMeta());
    } else {
      // Physiological baseline: single-page records only; the new page's
      // full image goes on the log. Meta first so allocation ordering
      // survives a torn suffix (the log is force-ordered by prefix).
      BtreePage left = page;
      BtreePage right;
      uint64_t separator = left.SplitInto(&right);
      if (left.is_leaf) {
        right.next_leaf = left.next_leaf;  // chain continues
      }
      LOGLOG_RETURN_IF_ERROR(WriteMeta());
      LOGLOG_RETURN_IF_ERROR(
          engine_->Execute(MakeTruncateOp(page_id, new_id)));
      LOGLOG_RETURN_IF_ERROR(engine_->Execute(
          MakePhysicalWrite(new_id, Slice(right.Serialize()))));
      if (is_root) {
        ++stats_.root_splits;
        BtreePage root;
        root.is_leaf = false;
        root.first_child = page_id;
        root.internal_entries.push_back({separator, new_id});
        LOGLOG_RETURN_IF_ERROR(engine_->Execute(
            MakeCreate(new_root_id, Slice(root.Serialize()))));
        root_ = new_root_id;
        LOGLOG_RETURN_IF_ERROR(WriteMeta());
      } else {
        LOGLOG_RETURN_IF_ERROR(engine_->Execute(
            MakeInternalInsertOp(path.back(), separator, new_id)));
      }
    }
    if (is_root) return Status::OK();
    // Loop continues: the parent may now be oversized.
  }
  return Status::OK();
}

Status Btree::Erase(uint64_t key) {
  ++stats_.erases;
  std::vector<ObjectId> path = {root_};
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(ReadPage(root_, &page));
  while (!page.is_leaf) {
    path.push_back(page.ChildFor(key));
    LOGLOG_RETURN_IF_ERROR(ReadPage(path.back(), &page));
  }
  std::vector<uint8_t> unused;
  LOGLOG_RETURN_IF_ERROR(page.LeafLookup(key, &unused));
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(MakeEraseLeafOp(path.back(), key)));
  if (options_.merge_on_underflow && options_.logical_splits) {
    LOGLOG_RETURN_IF_ERROR(MaybeMerge(path));
  }
  return Status::OK();
}

Status Btree::MaybeMerge(const std::vector<ObjectId>& path) {
  if (path.size() < 2) return Status::OK();  // the root never merges
  ObjectId leaf_id = path.back();
  ObjectId parent_id = path[path.size() - 2];
  BtreePage leaf, parent;
  LOGLOG_RETURN_IF_ERROR(ReadPage(leaf_id, &leaf));
  if (PageBytes(leaf) >= options_.max_page_bytes / 4) return Status::OK();
  LOGLOG_RETURN_IF_ERROR(ReadPage(parent_id, &parent));

  // Locate the leaf among the parent's children and pick the adjacent
  // sibling to merge with (prefer the right neighbor).
  std::vector<ObjectId> children = {parent.first_child};
  for (const BtreePage::InternalEntry& e : parent.internal_entries) {
    children.push_back(e.child);
  }
  size_t idx = children.size();
  for (size_t i = 0; i < children.size(); ++i) {
    if (children[i] == leaf_id) {
      idx = i;
      break;
    }
  }
  if (idx == children.size()) {
    return Status::Corruption("leaf missing from its parent");
  }
  ObjectId left_id, right_id;
  if (idx + 1 < children.size()) {
    left_id = leaf_id;
    right_id = children[idx + 1];
  } else if (idx > 0) {
    left_id = children[idx - 1];
    right_id = leaf_id;
  } else {
    return Status::OK();  // only child: nothing to merge with
  }
  BtreePage left, right;
  LOGLOG_RETURN_IF_ERROR(ReadPage(left_id, &left));
  LOGLOG_RETURN_IF_ERROR(ReadPage(right_id, &right));
  if (!left.is_leaf || !right.is_leaf) return Status::OK();
  if (PageBytes(left) + PageBytes(right) > options_.max_page_bytes) {
    return Status::OK();  // combined page would overflow
  }

  ++stats_.merges;
  LOGLOG_RETURN_IF_ERROR(
      engine_->Execute(MakeMergeOp(left_id, right_id, parent_id, meta_id_)));
  LOGLOG_RETURN_IF_ERROR(LoadMeta());

  // Root collapse: if the root lost its last separator, its single child
  // takes over.
  if (parent_id == root_) {
    BtreePage root;
    LOGLOG_RETURN_IF_ERROR(ReadPage(root_, &root));
    if (!root.is_leaf && root.internal_entries.empty()) {
      ++stats_.root_collapses;
      LOGLOG_RETURN_IF_ERROR(
          engine_->Execute(MakeCollapseRootOp(root_, meta_id_)));
      LOGLOG_RETURN_IF_ERROR(LoadMeta());
    }
  }
  return Status::OK();
}

namespace {

Status ValidateSubtree(RecoveryEngine* engine, ObjectId id, uint64_t lo,
                       uint64_t hi, int depth,
                       std::vector<uint64_t>* in_order,
                       ObjectId* leftmost_leaf) {
  if (depth > 64) return Status::Corruption("tree too deep (cycle?)");
  ObjectValue bytes;
  LOGLOG_RETURN_IF_ERROR(engine->Read(id, &bytes));
  BtreePage page;
  LOGLOG_RETURN_IF_ERROR(BtreePage::Deserialize(Slice(bytes), &page));
  if (page.is_leaf) {
    if (*leftmost_leaf == kInvalidObjectId) *leftmost_leaf = id;
    uint64_t prev = 0;
    bool first = true;
    for (const BtreePage::LeafEntry& e : page.leaf_entries) {
      if (!first && e.key <= prev) {
        return Status::Corruption("leaf keys out of order");
      }
      if (e.key < lo || e.key >= hi) {
        return Status::Corruption("leaf key outside separator range");
      }
      in_order->push_back(e.key);
      prev = e.key;
      first = false;
    }
    return Status::OK();
  }
  uint64_t prev = lo;
  LOGLOG_RETURN_IF_ERROR(ValidateSubtree(
      engine, page.first_child, lo,
      page.internal_entries.empty() ? hi
                                    : page.internal_entries.front().key,
      depth + 1, in_order, leftmost_leaf));
  for (size_t i = 0; i < page.internal_entries.size(); ++i) {
    const BtreePage::InternalEntry& e = page.internal_entries[i];
    if (e.key < prev) return Status::Corruption("separators out of order");
    uint64_t next_hi = i + 1 < page.internal_entries.size()
                           ? page.internal_entries[i + 1].key
                           : hi;
    LOGLOG_RETURN_IF_ERROR(ValidateSubtree(engine, e.child, e.key, next_hi,
                                           depth + 1, in_order,
                                           leftmost_leaf));
    prev = e.key;
  }
  return Status::OK();
}

}  // namespace

Status Btree::Validate() {
  std::vector<uint64_t> in_order;
  ObjectId leftmost = kInvalidObjectId;
  LOGLOG_RETURN_IF_ERROR(
      ValidateSubtree(engine_, root_, 0, kMaxLsn, 0, &in_order, &leftmost));
  // The leaf chain must visit exactly the in-order keys.
  std::vector<uint64_t> chained;
  ObjectId id = leftmost;
  int guard = 0;
  while (id != kInvalidObjectId) {
    if (++guard > 1 << 20) return Status::Corruption("leaf chain cycle");
    BtreePage page;
    LOGLOG_RETURN_IF_ERROR(ReadPage(id, &page));
    if (!page.is_leaf) return Status::Corruption("chain hit non-leaf");
    for (const BtreePage::LeafEntry& e : page.leaf_entries) {
      chained.push_back(e.key);
    }
    id = page.next_leaf;
  }
  if (chained != in_order) {
    return Status::Corruption("leaf chain disagrees with tree order");
  }
  return Status::OK();
}

}  // namespace loglog
