#ifndef LOGLOG_DOMAINS_BTREE_BTREE_H_
#define LOGLOG_DOMAINS_BTREE_BTREE_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "domains/btree/btree_page.h"
#include "engine/recovery_engine.h"

namespace loglog {

// Custom transform ids registered by RegisterBtreeTransforms().
inline constexpr FuncId kFuncBtreeInsertLeaf = kFuncFirstCustom + 0;
inline constexpr FuncId kFuncBtreeInsertInternal = kFuncFirstCustom + 1;
inline constexpr FuncId kFuncBtreeSplit = kFuncFirstCustom + 2;
inline constexpr FuncId kFuncBtreeTruncate = kFuncFirstCustom + 3;
inline constexpr FuncId kFuncBtreeEraseLeaf = kFuncFirstCustom + 4;
inline constexpr FuncId kFuncBtreeRootSplit = kFuncFirstCustom + 5;
inline constexpr FuncId kFuncBtreeMergeLeaves = kFuncFirstCustom + 6;
inline constexpr FuncId kFuncBtreeCollapseRoot = kFuncFirstCustom + 7;

/// Registers the B-tree transforms with the global function registry.
/// Idempotent; must run before replaying a log that contains B-tree
/// operations (the Btree constructor calls it).
void RegisterBtreeTransforms();

struct BtreeOptions {
  /// Object-id range used by this tree (meta at id_base, pages above it).
  ObjectId id_base = 100'000;
  /// Split a page when its serialized size exceeds this.
  size_t max_page_bytes = 4096;
  /// Merge a leaf into a sibling when it shrinks below
  /// max_page_bytes / 4 and the pair fits in one page.
  bool merge_on_underflow = true;
  /// True: splits/merges are logged as single *logical* operations
  /// ("copy half the contents of a full B-tree page to a new page",
  /// Section 1) — no page image on the log. False: the Figure 1b
  /// physiological baseline — a small truncate delta on the old page
  /// plus a physical write carrying the new page's full image.
  bool logical_splits = true;
};

/// Split/merge counters for the E7 experiment.
struct BtreeStats {
  uint64_t inserts = 0;
  uint64_t erases = 0;
  uint64_t splits = 0;
  uint64_t root_splits = 0;
  uint64_t merges = 0;
  uint64_t root_collapses = 0;
  uint64_t pages_reused = 0;  // allocations served from the free list
};

/// \brief A recoverable B+-tree built entirely on the RecoveryEngine
/// public API — the paper's "Database Recovery" example for logical
/// logging.
///
/// All tree state (meta page, every tree page, the free-page list) lives
/// in recoverable objects; every mutation is a logged operation, and
/// every structure modification (split, leaf merge, root collapse) is
/// ONE atomic logical operation over the pages it touches, so the tree
/// survives crashes through ordinary engine recovery with no
/// tree-specific code. Leaves are chained for range scans; freed pages
/// are recycled through a free list carried in the meta object.
class Btree {
 public:
  Btree(RecoveryEngine* engine, const BtreeOptions& options);

  /// Creates the meta and root pages if absent, otherwise loads the meta.
  Status Open();

  Status Insert(uint64_t key, Slice value);
  Status Get(uint64_t key, std::vector<uint8_t>* out);
  /// Removes a key (NotFound if absent); may merge underflowing leaves.
  Status Erase(uint64_t key);

  /// Up to `limit` (key, value) pairs with key >= from, ascending, via
  /// the leaf chain.
  Status Scan(uint64_t from, size_t limit,
              std::vector<std::pair<uint64_t, std::vector<uint8_t>>>* out);

  /// Pages ever allocated minus those sitting on the free list.
  uint64_t live_pages() const {
    return (next_page_ - options_.id_base - 1) - free_list_.size();
  }
  uint64_t allocated_pages() const { return next_page_ - options_.id_base; }
  size_t free_pages() const { return free_list_.size(); }
  const BtreeStats& stats() const { return stats_; }

  /// Walks the whole tree checking order/separator invariants and that
  /// the leaf chain visits exactly the in-order leaves.
  Status Validate();

 private:
  Status LoadMeta();
  Status WriteMeta();
  Status ReadPage(ObjectId id, BtreePage* out);
  ObjectId AllocPageId();
  /// Splits oversized pages along `path` (root last ... leaf first was
  /// recorded root-first; splits propagate upward).
  Status SplitUpwards(std::vector<ObjectId> path);
  /// Merges `leaf` (on `path`) into a sibling if it underflows.
  Status MaybeMerge(const std::vector<ObjectId>& path);

  RecoveryEngine* engine_;
  BtreeOptions options_;
  ObjectId meta_id_;
  ObjectId root_ = kInvalidObjectId;
  ObjectId next_page_ = kInvalidObjectId;
  std::set<ObjectId> free_list_;
  BtreeStats stats_;
};

}  // namespace loglog

#endif  // LOGLOG_DOMAINS_BTREE_BTREE_H_
