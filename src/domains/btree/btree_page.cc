#include "domains/btree/btree_page.h"

#include <algorithm>

#include "common/coding.h"

namespace loglog {

ObjectId BtreePage::ChildFor(uint64_t key) const {
  ObjectId child = first_child;
  for (const InternalEntry& e : internal_entries) {
    if (key >= e.key) {
      child = e.child;
    } else {
      break;
    }
  }
  return child;
}

void BtreePage::LeafInsert(uint64_t key, Slice value) {
  auto it = std::lower_bound(
      leaf_entries.begin(), leaf_entries.end(), key,
      [](const LeafEntry& e, uint64_t k) { return e.key < k; });
  if (it != leaf_entries.end() && it->key == key) {
    it->value = value.ToBytes();
    return;
  }
  LeafEntry entry;
  entry.key = key;
  entry.value = value.ToBytes();
  leaf_entries.insert(it, std::move(entry));
}

Status BtreePage::LeafLookup(uint64_t key, std::vector<uint8_t>* out) const {
  auto it = std::lower_bound(
      leaf_entries.begin(), leaf_entries.end(), key,
      [](const LeafEntry& e, uint64_t k) { return e.key < k; });
  if (it == leaf_entries.end() || it->key != key) {
    return Status::NotFound("key not in leaf");
  }
  *out = it->value;
  return Status::OK();
}

bool BtreePage::LeafErase(uint64_t key) {
  auto it = std::lower_bound(
      leaf_entries.begin(), leaf_entries.end(), key,
      [](const LeafEntry& e, uint64_t k) { return e.key < k; });
  if (it == leaf_entries.end() || it->key != key) return false;
  leaf_entries.erase(it);
  return true;
}

void BtreePage::InternalInsert(uint64_t key, ObjectId child) {
  auto it = std::lower_bound(
      internal_entries.begin(), internal_entries.end(), key,
      [](const InternalEntry& e, uint64_t k) { return e.key < k; });
  internal_entries.insert(it, InternalEntry{key, child});
}

uint64_t BtreePage::SplitInto(BtreePage* right) {
  right->is_leaf = is_leaf;
  if (is_leaf) {
    size_t mid = leaf_entries.size() / 2;
    right->leaf_entries.assign(leaf_entries.begin() + mid,
                               leaf_entries.end());
    leaf_entries.resize(mid);
    return right->leaf_entries.front().key;
  }
  // Internal split: the middle separator moves up, its child becomes the
  // right page's first child.
  size_t mid = internal_entries.size() / 2;
  uint64_t up_key = internal_entries[mid].key;
  right->first_child = internal_entries[mid].child;
  right->internal_entries.assign(internal_entries.begin() + mid + 1,
                                 internal_entries.end());
  internal_entries.resize(mid);
  return up_key;
}

ObjectValue BtreePage::Serialize() const {
  ObjectValue out;
  out.push_back(is_leaf ? 1 : 0);
  if (is_leaf) {
    PutVarint64(&out, next_leaf);
    PutVarint64(&out, leaf_entries.size());
    for (const LeafEntry& e : leaf_entries) {
      PutVarint64(&out, e.key);
      PutLengthPrefixed(&out, Slice(e.value));
    }
  } else {
    PutVarint64(&out, internal_entries.size());
    PutVarint64(&out, first_child);
    for (const InternalEntry& e : internal_entries) {
      PutVarint64(&out, e.key);
      PutVarint64(&out, e.child);
    }
  }
  return out;
}

Status BtreePage::Deserialize(Slice bytes, BtreePage* out) {
  *out = BtreePage();
  if (bytes.empty()) return Status::Corruption("empty page");
  out->is_leaf = bytes[0] != 0;
  bytes.RemovePrefix(1);
  if (out->is_leaf) {
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &out->next_leaf));
  }
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &n));
  if (n > bytes.size()) return Status::Corruption("entry count too large");
  if (out->is_leaf) {
    out->leaf_entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LeafEntry e;
      LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &e.key));
      Slice v;
      LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&bytes, &v));
      e.value = v.ToBytes();
      out->leaf_entries.push_back(std::move(e));
    }
  } else {
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &out->first_child));
    out->internal_entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      InternalEntry e;
      LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &e.key));
      LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &e.child));
      out->internal_entries.push_back(e);
    }
  }
  if (!bytes.empty()) return Status::Corruption("trailing page bytes");
  return Status::OK();
}

std::string BtreePage::DebugString() const {
  std::string out = is_leaf ? "leaf{" : "internal{";
  if (is_leaf) {
    for (const LeafEntry& e : leaf_entries) {
      out += std::to_string(e.key) + ",";
    }
  } else {
    out += "first=" + std::to_string(first_child) + " ";
    for (const InternalEntry& e : internal_entries) {
      out += std::to_string(e.key) + "->" + std::to_string(e.child) + ",";
    }
  }
  out += "}";
  return out;
}

}  // namespace loglog
