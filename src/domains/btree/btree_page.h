#ifndef LOGLOG_DOMAINS_BTREE_BTREE_PAGE_H_
#define LOGLOG_DOMAINS_BTREE_BTREE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace loglog {

/// \brief In-memory form of a B+-tree page, (de)serialized to/from the
/// recoverable object value.
///
/// Leaf pages hold (key, value) entries sorted by key. Internal pages
/// hold a first child plus (separator key, child) entries: `child` covers
/// keys >= its separator. The serialized size of a page is what the tree
/// compares against the page-size limit to trigger splits.
struct BtreePage {
  struct LeafEntry {
    uint64_t key = 0;
    std::vector<uint8_t> value;
  };
  struct InternalEntry {
    uint64_t key = 0;      // separator: child covers keys >= key
    ObjectId child = kInvalidObjectId;
  };

  bool is_leaf = true;
  std::vector<LeafEntry> leaf_entries;
  /// Right-sibling leaf for range scans (kInvalidObjectId at the end).
  ObjectId next_leaf = kInvalidObjectId;
  ObjectId first_child = kInvalidObjectId;  // internal pages only
  std::vector<InternalEntry> internal_entries;

  size_t EntryCount() const {
    return is_leaf ? leaf_entries.size() : internal_entries.size();
  }

  /// Child page that covers `key` (internal pages).
  ObjectId ChildFor(uint64_t key) const;

  /// Inserts or replaces a key in a leaf, keeping order.
  void LeafInsert(uint64_t key, Slice value);
  /// Looks up a key in a leaf; NotFound if absent.
  Status LeafLookup(uint64_t key, std::vector<uint8_t>* out) const;
  /// Removes a key from a leaf; returns whether it was present.
  bool LeafErase(uint64_t key);

  /// Inserts a separator/child pair into an internal page, keeping order.
  void InternalInsert(uint64_t key, ObjectId child);

  /// Splits off the upper half into `right`; returns the separator key
  /// (the first key of `right`). Deterministic in the page contents —
  /// the property that makes logical split logging replayable.
  uint64_t SplitInto(BtreePage* right);

  ObjectValue Serialize() const;
  static Status Deserialize(Slice bytes, BtreePage* out);

  std::string DebugString() const;
};

/// Serialized size of a page value (its flush/logging footprint).
inline size_t PageBytes(const BtreePage& page) {
  return page.Serialize().size();
}

}  // namespace loglog

#endif  // LOGLOG_DOMAINS_BTREE_BTREE_PAGE_H_
