#include "domains/dataflow/dataflow.h"

#include <algorithm>
#include <limits>

#include "common/coding.h"
#include "ops/function_registry.h"
#include "ops/op_builder.h"

namespace loglog {

namespace {

ObjectValue EncodeCell(int64_t v) {
  ObjectValue out;
  PutFixed64(&out, static_cast<uint64_t>(v));
  return out;
}

Status DecodeCell(Slice bytes, int64_t* out) {
  uint64_t raw;
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&bytes, &raw));
  *out = static_cast<int64_t>(raw);
  return Status::OK();
}

template <typename Fold>
Status FoldCells(const std::vector<ObjectValue>& reads,
                 std::vector<ObjectValue>* writes, Fold fold) {
  if (reads.empty()) {
    return Status::InvalidArgument("formula without inputs");
  }
  int64_t acc;
  LOGLOG_RETURN_IF_ERROR(DecodeCell(Slice(reads[0]), &acc));
  for (size_t i = 1; i < reads.size(); ++i) {
    int64_t v;
    LOGLOG_RETURN_IF_ERROR(DecodeCell(Slice(reads[i]), &v));
    acc = fold(acc, v);
  }
  (*writes)[0] = EncodeCell(acc);
  return Status::OK();
}

Status SumFn(const OperationDesc&, const std::vector<ObjectValue>& reads,
             std::vector<ObjectValue>* writes) {
  return FoldCells(reads, writes,
                   [](int64_t a, int64_t b) { return a + b; });
}
Status MinFn(const OperationDesc&, const std::vector<ObjectValue>& reads,
             std::vector<ObjectValue>* writes) {
  return FoldCells(reads, writes,
                   [](int64_t a, int64_t b) { return std::min(a, b); });
}
Status MaxFn(const OperationDesc&, const std::vector<ObjectValue>& reads,
             std::vector<ObjectValue>* writes) {
  return FoldCells(reads, writes,
                   [](int64_t a, int64_t b) { return std::max(a, b); });
}
Status ProductFn(const OperationDesc&,
                 const std::vector<ObjectValue>& reads,
                 std::vector<ObjectValue>* writes) {
  return FoldCells(reads, writes,
                   [](int64_t a, int64_t b) { return a * b; });
}

FuncId FormulaFunc(CellFormula kind) {
  switch (kind) {
    case CellFormula::kSum:
      return kFuncCellSum;
    case CellFormula::kMin:
      return kFuncCellMin;
    case CellFormula::kMax:
      return kFuncCellMax;
    case CellFormula::kProduct:
      return kFuncCellProduct;
  }
  return kFuncCellSum;
}

}  // namespace

void RegisterDataflowTransforms() {
  FunctionRegistry& reg = FunctionRegistry::Global();
  reg.Register(kFuncCellSum, SumFn);
  reg.Register(kFuncCellMin, MinFn);
  reg.Register(kFuncCellMax, MaxFn);
  reg.Register(kFuncCellProduct, ProductFn);
}

DataflowGraph::DataflowGraph(RecoveryEngine* engine, ObjectId id_base)
    : engine_(engine), id_base_(id_base), shape_id_(id_base) {
  RegisterDataflowTransforms();
}

Status DataflowGraph::Open() {
  if (engine_->Exists(shape_id_)) return LoadShape();
  return PersistShape();
}

Status DataflowGraph::PersistShape() {
  ObjectValue bytes;
  PutVarint64(&bytes, inputs_.size());
  for (uint32_t c : inputs_) PutVarint32(&bytes, c);
  PutVarint64(&bytes, formulas_.size());
  for (const auto& [cell, f] : formulas_) {
    PutVarint32(&bytes, cell);
    bytes.push_back(static_cast<uint8_t>(f.kind));
    PutVarint64(&bytes, f.inputs.size());
    for (uint32_t in : f.inputs) PutVarint32(&bytes, in);
  }
  return engine_->Execute(MakePhysicalWrite(shape_id_, Slice(bytes)));
}

Status DataflowGraph::LoadShape() {
  ObjectValue raw;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(shape_id_, &raw));
  Slice bytes(raw);
  inputs_.clear();
  formulas_.clear();
  readers_.clear();
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t c;
    LOGLOG_RETURN_IF_ERROR(GetVarint32(&bytes, &c));
    inputs_.insert(c);
  }
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t cell;
    LOGLOG_RETURN_IF_ERROR(GetVarint32(&bytes, &cell));
    if (bytes.empty()) return Status::Corruption("truncated shape");
    Formula f;
    f.kind = static_cast<CellFormula>(bytes[0]);
    bytes.RemovePrefix(1);
    uint64_t m;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &m));
    for (uint64_t k = 0; k < m; ++k) {
      uint32_t in;
      LOGLOG_RETURN_IF_ERROR(GetVarint32(&bytes, &in));
      f.inputs.push_back(in);
      readers_[in].insert(cell);
    }
    formulas_[cell] = std::move(f);
  }
  return Status::OK();
}

Status DataflowGraph::DefineInput(uint32_t cell, int64_t initial) {
  if (inputs_.contains(cell) || formulas_.contains(cell)) {
    return Status::InvalidArgument("cell already defined");
  }
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(
      MakeCreate(CellObject(cell), Slice(EncodeCell(initial)))));
  inputs_.insert(cell);
  return PersistShape();
}

Status DataflowGraph::DefineDerived(uint32_t cell, CellFormula formula,
                                    std::vector<uint32_t> inputs) {
  if (inputs_.contains(cell) || formulas_.contains(cell)) {
    return Status::InvalidArgument("cell already defined");
  }
  if (inputs.empty()) {
    return Status::InvalidArgument("derived cell needs inputs");
  }
  for (uint32_t in : inputs) {
    if (!inputs_.contains(in) && !formulas_.contains(in)) {
      return Status::InvalidArgument("undefined input cell");
    }
  }
  Formula f;
  f.kind = formula;
  f.inputs = std::move(inputs);
  for (uint32_t in : f.inputs) readers_[in].insert(cell);
  formulas_[cell] = std::move(f);
  LOGLOG_RETURN_IF_ERROR(PersistShape());
  return Recompute(cell);
}

Status DataflowGraph::Recompute(uint32_t cell) {
  const Formula& f = formulas_.at(cell);
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = FormulaFunc(f.kind);
  op.writes = {CellObject(cell)};
  for (uint32_t in : f.inputs) op.reads.push_back(CellObject(in));
  return engine_->Execute(op);
}

std::vector<uint32_t> DataflowGraph::DependentsInOrder(
    uint32_t cell) const {
  // Gather transitive dependents, then order them topologically by the
  // formula graph (inputs before dependents).
  std::set<uint32_t> affected;
  std::vector<uint32_t> work = {cell};
  while (!work.empty()) {
    uint32_t c = work.back();
    work.pop_back();
    auto it = readers_.find(c);
    if (it == readers_.end()) continue;
    for (uint32_t r : it->second) {
      if (affected.insert(r).second) work.push_back(r);
    }
  }
  std::vector<uint32_t> order;
  std::set<uint32_t> done;
  // Kahn over the affected set (formula inputs within the set count).
  while (order.size() < affected.size()) {
    bool progressed = false;
    for (uint32_t c : affected) {
      if (done.contains(c)) continue;
      bool ready = true;
      for (uint32_t in : formulas_.at(c).inputs) {
        if (affected.contains(in) && !done.contains(in)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        order.push_back(c);
        done.insert(c);
        progressed = true;
      }
    }
    if (!progressed) break;  // cycle in formulas: refuse silently
  }
  return order;
}

Status DataflowGraph::SetInput(uint32_t cell, int64_t value) {
  if (!inputs_.contains(cell)) {
    return Status::InvalidArgument("not an input cell");
  }
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(
      MakePhysicalWrite(CellObject(cell), Slice(EncodeCell(value)))));
  for (uint32_t dependent : DependentsInOrder(cell)) {
    LOGLOG_RETURN_IF_ERROR(Recompute(dependent));
  }
  return Status::OK();
}

Status DataflowGraph::Value(uint32_t cell, int64_t* out) {
  ObjectValue raw;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(CellObject(cell), &raw));
  return DecodeCell(Slice(raw), out);
}

Status DataflowGraph::Audit() {
  for (const auto& [cell, f] : formulas_) {
    int64_t stored;
    LOGLOG_RETURN_IF_ERROR(Value(cell, &stored));
    // Recompute out-of-band.
    std::vector<ObjectValue> reads;
    for (uint32_t in : f.inputs) {
      ObjectValue raw;
      LOGLOG_RETURN_IF_ERROR(engine_->Read(CellObject(in), &raw));
      reads.push_back(std::move(raw));
    }
    std::vector<ObjectValue> writes(1);
    OperationDesc op;
    op.func = FormulaFunc(f.kind);
    op.writes = {CellObject(cell)};
    for (uint32_t in : f.inputs) op.reads.push_back(CellObject(in));
    LOGLOG_RETURN_IF_ERROR(
        FunctionRegistry::Global().Apply(op, reads, &writes));
    int64_t expect;
    LOGLOG_RETURN_IF_ERROR(DecodeCell(Slice(writes[0]), &expect));
    if (expect != stored) {
      return Status::Corruption("cell " + std::to_string(cell) +
                                " stale: stored " + std::to_string(stored) +
                                " expected " + std::to_string(expect));
    }
  }
  return Status::OK();
}

}  // namespace loglog
