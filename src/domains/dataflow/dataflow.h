#ifndef LOGLOG_DOMAINS_DATAFLOW_DATAFLOW_H_
#define LOGLOG_DOMAINS_DATAFLOW_DATAFLOW_H_

#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "engine/recovery_engine.h"

namespace loglog {

// Custom transform ids registered by RegisterDataflowTransforms().
inline constexpr FuncId kFuncCellSum = kFuncFirstCustom + 0x30;
inline constexpr FuncId kFuncCellMin = kFuncFirstCustom + 0x31;
inline constexpr FuncId kFuncCellMax = kFuncFirstCustom + 0x32;
inline constexpr FuncId kFuncCellProduct = kFuncFirstCustom + 0x33;

/// Registers the cell transforms (idempotent; the constructor calls it).
void RegisterDataflowTransforms();

/// Formula kinds a derived cell can compute over its inputs.
enum class CellFormula { kSum, kMin, kMax, kProduct };

/// \brief A recoverable dataflow graph (spreadsheet-style) — a "new
/// domain" showcase for logical logging.
///
/// Cells hold 64-bit values. Input cells are set physically (8 bytes
/// logged); derived cells are *formulas over other cells*, and every
/// recomputation is a logical operation (reads = the input cells,
/// writes = the cell) whose log record carries only identifiers — never
/// the operands or the result. Setting one input triggers a topological
/// recomputation cascade of its dependents, each step one logical
/// operation; the write graph orders their installation automatically.
///
/// The graph's *shape* (formula definitions) is itself a recoverable
/// object, so Open() after a crash restores both values and formulas.
class DataflowGraph {
 public:
  DataflowGraph(RecoveryEngine* engine, ObjectId id_base = 400'000);

  /// Creates or loads the graph-shape object.
  Status Open();

  /// Declares an input cell with an initial value.
  Status DefineInput(uint32_t cell, int64_t initial);

  /// Declares a derived cell computing `formula` over `inputs` (which
  /// must already exist). Evaluates it immediately.
  Status DefineDerived(uint32_t cell, CellFormula formula,
                       std::vector<uint32_t> inputs);

  /// Sets an input cell and recomputes every (transitive) dependent in
  /// topological order — one logical operation per cell.
  Status SetInput(uint32_t cell, int64_t value);

  Status Value(uint32_t cell, int64_t* out);

  /// Recomputes every derived cell from scratch (topological order) and
  /// verifies stored values match — a consistency audit used by tests.
  Status Audit();

  size_t cell_count() const { return formulas_.size() + inputs_.size(); }

 private:
  struct Formula {
    CellFormula kind = CellFormula::kSum;
    std::vector<uint32_t> inputs;
  };

  ObjectId CellObject(uint32_t cell) const { return id_base_ + 1 + cell; }
  Status PersistShape();
  Status LoadShape();
  /// Dependents of `cell`, transitively, topologically ordered.
  std::vector<uint32_t> DependentsInOrder(uint32_t cell) const;
  Status Recompute(uint32_t cell);

  RecoveryEngine* engine_;
  ObjectId id_base_;
  ObjectId shape_id_;
  std::set<uint32_t> inputs_;
  std::map<uint32_t, Formula> formulas_;
  /// Reverse edges: input cell -> cells that read it directly.
  std::map<uint32_t, std::set<uint32_t>> readers_;
};

}  // namespace loglog

#endif  // LOGLOG_DOMAINS_DATAFLOW_DATAFLOW_H_
