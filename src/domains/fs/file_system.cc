#include "domains/fs/file_system.h"

#include "common/coding.h"
#include "ops/op_builder.h"

namespace loglog {

namespace {

ObjectValue SerializeDirectory(const std::map<std::string, ObjectId>& dir,
                               ObjectId next_file) {
  ObjectValue out;
  PutVarint64(&out, next_file);
  PutVarint64(&out, dir.size());
  for (const auto& [name, id] : dir) {
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, id);
  }
  return out;
}

Status DeserializeDirectory(Slice bytes,
                            std::map<std::string, ObjectId>* dir,
                            ObjectId* next_file) {
  dir->clear();
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, next_file));
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &n));
  for (uint64_t i = 0; i < n; ++i) {
    Slice name;
    uint64_t id;
    LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&bytes, &name));
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, &id));
    (*dir)[name.ToString()] = id;
  }
  return Status::OK();
}

}  // namespace

FileSystem::FileSystem(RecoveryEngine* engine, ObjectId id_base)
    : engine_(engine), dir_id_(id_base), next_file_(id_base + 1) {}

Status FileSystem::Mount() {
  if (!engine_->Exists(dir_id_)) {
    return PersistDirectory();  // creates an empty directory object
  }
  ObjectValue bytes;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(dir_id_, &bytes));
  return DeserializeDirectory(Slice(bytes), &directory_, &next_file_);
}

Status FileSystem::PersistDirectory() {
  return engine_->Execute(MakePhysicalWrite(
      dir_id_, Slice(SerializeDirectory(directory_, next_file_))));
}

Status FileSystem::Create(const std::string& name, Slice data) {
  if (directory_.contains(name)) {
    return Status::InvalidArgument("file exists: " + name);
  }
  ObjectId id = AllocFileId();
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(MakeCreate(id, data)));
  directory_[name] = id;
  return PersistDirectory();
}

Status FileSystem::WriteFile(const std::string& name, Slice data) {
  ObjectId id = Resolve(name);
  if (id == kInvalidObjectId) return Status::NotFound(name);
  return engine_->Execute(MakePhysicalWrite(id, data));
}

Status FileSystem::Append(const std::string& name, Slice data) {
  ObjectId id = Resolve(name);
  if (id == kInvalidObjectId) return Status::NotFound(name);
  return engine_->Execute(MakeAppend(id, data));
}

Status FileSystem::Copy(const std::string& dst, const std::string& src) {
  ObjectId src_id = Resolve(src);
  if (src_id == kInvalidObjectId) return Status::NotFound(src);
  ObjectId dst_id = Resolve(dst);
  bool fresh = dst_id == kInvalidObjectId;
  if (fresh) dst_id = AllocFileId();
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(MakeCopy(dst_id, src_id)));
  if (fresh) {
    directory_[dst] = dst_id;
    return PersistDirectory();
  }
  return Status::OK();
}

Status FileSystem::SortFile(const std::string& dst, const std::string& src,
                            uint32_t record_size) {
  ObjectId src_id = Resolve(src);
  if (src_id == kInvalidObjectId) return Status::NotFound(src);
  ObjectId dst_id = Resolve(dst);
  bool fresh = dst_id == kInvalidObjectId;
  if (fresh) dst_id = AllocFileId();
  LOGLOG_RETURN_IF_ERROR(
      engine_->Execute(MakeSort(dst_id, src_id, record_size)));
  if (fresh) {
    directory_[dst] = dst_id;
    return PersistDirectory();
  }
  return Status::OK();
}

Status FileSystem::Remove(const std::string& name) {
  auto it = directory_.find(name);
  if (it == directory_.end()) return Status::NotFound(name);
  ObjectId id = it->second;
  directory_.erase(it);
  // Directory first: a crash after this leaves an orphan object (garbage)
  // but never a name pointing at a deleted file.
  LOGLOG_RETURN_IF_ERROR(PersistDirectory());
  return engine_->Execute(MakeDelete(id));
}

Status FileSystem::ReadFile(const std::string& name, ObjectValue* out) {
  ObjectId id = Resolve(name);
  if (id == kInvalidObjectId) return Status::NotFound(name);
  return engine_->Read(id, out);
}

std::vector<std::string> FileSystem::List() const {
  std::vector<std::string> names;
  names.reserve(directory_.size());
  for (const auto& [name, id] : directory_) names.push_back(name);
  return names;
}

ObjectId FileSystem::Resolve(const std::string& name) const {
  auto it = directory_.find(name);
  return it == directory_.end() ? kInvalidObjectId : it->second;
}

}  // namespace loglog
