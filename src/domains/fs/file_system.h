#ifndef LOGLOG_DOMAINS_FS_FILE_SYSTEM_H_
#define LOGLOG_DOMAINS_FS_FILE_SYSTEM_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "engine/recovery_engine.h"

namespace loglog {

/// \brief A recoverable file system — the paper's "File System Recovery"
/// example built on the engine's public API.
///
/// Files are recoverable objects; a directory object maps names to object
/// ids. Copy and sort are *logical* operations: only identifiers reach
/// the log, never file contents (the Figure 1a operation-B forms). The
/// directory is updated with small physical writes, ordered after file
/// creation so that a torn log suffix can leave at most an orphan object,
/// never a dangling directory entry.
class FileSystem {
 public:
  FileSystem(RecoveryEngine* engine, ObjectId id_base = 200'000);

  /// Creates or loads the directory object.
  Status Mount();

  /// Creates a file with contents (fails if the name exists).
  Status Create(const std::string& name, Slice data);
  /// Overwrites a file's contents (physical write).
  Status WriteFile(const std::string& name, Slice data);
  /// Appends bytes (physiological).
  Status Append(const std::string& name, Slice data);
  /// dst := src, logically — no file contents logged. Creates dst.
  Status Copy(const std::string& dst, const std::string& src);
  /// dst := sort(src) with fixed-size records, logically. Creates dst.
  Status SortFile(const std::string& dst, const std::string& src,
                  uint32_t record_size);
  /// Deletes a file (directory first, then the object: a torn suffix
  /// leaves garbage, never a dangling name).
  Status Remove(const std::string& name);

  Status ReadFile(const std::string& name, ObjectValue* out);
  bool Exists(const std::string& name) const {
    return directory_.contains(name);
  }
  std::vector<std::string> List() const;

  /// Object id behind a name (kInvalidObjectId if absent) — lets other
  /// domains (applications) read files by id.
  ObjectId Resolve(const std::string& name) const;

 private:
  Status PersistDirectory();
  ObjectId AllocFileId() { return next_file_++; }

  RecoveryEngine* engine_;
  ObjectId dir_id_;
  ObjectId next_file_;
  std::map<std::string, ObjectId> directory_;
};

}  // namespace loglog

#endif  // LOGLOG_DOMAINS_FS_FILE_SYSTEM_H_
