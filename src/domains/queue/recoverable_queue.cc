#include "domains/queue/recoverable_queue.h"

#include "common/coding.h"
#include "common/random.h"
#include "ops/function_registry.h"
#include "ops/inverse_registry.h"
#include "ops/op_builder.h"

namespace loglog {

namespace {

ObjectValue SerializeMeta(uint64_t head, uint64_t tail) {
  ObjectValue out;
  PutVarint64(&out, head);
  PutVarint64(&out, tail);
  return out;
}

Status DeserializeMeta(Slice bytes, uint64_t* head, uint64_t* tail) {
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, head));
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&bytes, tail));
  return Status::OK();
}

// writes {meta}, reads {meta}: head or tail advance (physiological).
// Message creation is deliberately a *separate* blind operation: it
// keeps consumed messages dead-skippable (the enqueue record writes only
// the message), and log prefix-stability makes the worst torn outcome an
// orphan message object, never a dangling sequence number.
Status AdvanceHeadFn(const OperationDesc& /*op*/,
                     const std::vector<ObjectValue>& reads,
                     std::vector<ObjectValue>* writes) {
  uint64_t head, tail;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[0]), &head, &tail));
  if (head >= tail) return Status::FailedPrecondition("queue empty");
  (*writes)[0] = SerializeMeta(head + 1, tail);
  return Status::OK();
}

Status AdvanceTailFn(const OperationDesc& /*op*/,
                     const std::vector<ObjectValue>& reads,
                     std::vector<ObjectValue>* writes) {
  uint64_t head, tail;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[0]), &head, &tail));
  (*writes)[0] = SerializeMeta(head, tail + 1);
  return Status::OK();
}

Status RetreatHeadFn(const OperationDesc& /*op*/,
                     const std::vector<ObjectValue>& reads,
                     std::vector<ObjectValue>* writes) {
  uint64_t head, tail;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[0]), &head, &tail));
  if (head == 0) return Status::FailedPrecondition("head already zero");
  (*writes)[0] = SerializeMeta(head - 1, tail);
  return Status::OK();
}

Status RetreatTailFn(const OperationDesc& /*op*/,
                     const std::vector<ObjectValue>& reads,
                     std::vector<ObjectValue>* writes) {
  uint64_t head, tail;
  LOGLOG_RETURN_IF_ERROR(DeserializeMeta(Slice(reads[0]), &head, &tail));
  if (tail <= head) return Status::FailedPrecondition("queue empty");
  (*writes)[0] = SerializeMeta(head, tail - 1);
  return Status::OK();
}

// Swaps the advance func for its retreat twin on the same meta object.
InverseEntry QueueInverse(FuncId retreat) {
  InverseEntry e;
  e.invertible = [](const OperationDesc&, const std::vector<bool>&,
                    const std::vector<ObjectValue>&) { return true; };
  e.build = [retreat](const OperationDesc& op, OperationDesc* inv) {
    *inv = op;
    inv->func = retreat;
    inv->params.clear();
    return Status::OK();
  };
  return e;
}

}  // namespace

void RegisterQueueTransforms() {
  FunctionRegistry& reg = FunctionRegistry::Global();
  reg.Register(kFuncQueueAdvanceHead, AdvanceHeadFn);
  reg.Register(kFuncQueueAdvanceTail, AdvanceTailFn);
  reg.Register(kFuncQueueRetreatHead, RetreatHeadFn);
  reg.Register(kFuncQueueRetreatTail, RetreatTailFn);
  InverseRegistry& inv = InverseRegistry::Global();
  inv.Register(kFuncQueueAdvanceHead, QueueInverse(kFuncQueueRetreatHead));
  inv.Register(kFuncQueueAdvanceTail, QueueInverse(kFuncQueueRetreatTail));
}

RecoverableQueue::RecoverableQueue(RecoveryEngine* engine, ObjectId id_base)
    : engine_(engine), id_base_(id_base), meta_id_(id_base) {
  RegisterQueueTransforms();
}

Status RecoverableQueue::Open() {
  if (engine_->Exists(meta_id_)) return LoadMeta();
  head_ = tail_ = 0;
  return engine_->Execute(
      MakePhysicalWrite(meta_id_, Slice(SerializeMeta(0, 0))));
}

Status RecoverableQueue::LoadMeta() {
  ObjectValue meta;
  LOGLOG_RETURN_IF_ERROR(engine_->Read(meta_id_, &meta));
  return DeserializeMeta(Slice(meta), &head_, &tail_);
}

Status RecoverableQueue::Enqueue(Slice payload) {
  // Message first, tail bump second: a torn log suffix can orphan the
  // message object but never advertise a sequence without one.
  LOGLOG_RETURN_IF_ERROR(
      engine_->Execute(MakeCreate(MessageId(tail_), payload)));
  OperationDesc bump;
  bump.op_class = OpClass::kPhysiological;
  bump.func = kFuncQueueAdvanceTail;
  bump.writes = {meta_id_};
  bump.reads = {meta_id_};
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(bump));
  ++tail_;
  return Status::OK();
}

Status RecoverableQueue::EnqueueFromApp(ObjectId app, uint64_t size,
                                        uint64_t seed) {
  // Pure W_L(A, msg): the payload never reaches the log.
  LOGLOG_RETURN_IF_ERROR(
      engine_->Execute(MakeAppWrite(app, MessageId(tail_), size, seed)));
  OperationDesc bump;
  bump.op_class = OpClass::kPhysiological;
  bump.func = kFuncQueueAdvanceTail;
  bump.writes = {meta_id_};
  bump.reads = {meta_id_};
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(bump));
  ++tail_;
  return Status::OK();
}

Status RecoverableQueue::Peek(ObjectValue* out) {
  if (empty()) return Status::NotFound("queue empty");
  return engine_->Read(MessageId(head_), out);
}

Status RecoverableQueue::Dequeue(ObjectValue* out) {
  if (empty()) return Status::NotFound("queue empty");
  LOGLOG_RETURN_IF_ERROR(engine_->Read(MessageId(head_), out));
  // Delete first, then advance: if a crash separates them, reopen sees a
  // head pointing at a deleted message — consume tolerance would go
  // here; with prefix-stable logging the advance is lost whenever the
  // delete is, so the pair stays consistent for any stable prefix...
  // except delete-stable/advance-lost. Advance first, delete second, is
  // the safe order: a lost delete only leaks an orphan message object.
  OperationDesc advance;
  advance.op_class = OpClass::kPhysiological;
  advance.func = kFuncQueueAdvanceHead;
  advance.writes = {meta_id_};
  advance.reads = {meta_id_};
  LOGLOG_RETURN_IF_ERROR(engine_->Execute(advance));
  uint64_t consumed = head_;
  ++head_;
  return engine_->Execute(MakeDelete(MessageId(consumed)));
}

}  // namespace loglog
