#ifndef LOGLOG_DOMAINS_QUEUE_RECOVERABLE_QUEUE_H_
#define LOGLOG_DOMAINS_QUEUE_RECOVERABLE_QUEUE_H_

#include "common/status.h"
#include "common/types.h"
#include "engine/recovery_engine.h"

namespace loglog {

// Custom transform ids registered by RegisterQueueTransforms().
inline constexpr FuncId kFuncQueueAdvanceHead = kFuncFirstCustom + 0x22;
inline constexpr FuncId kFuncQueueAdvanceTail = kFuncFirstCustom + 0x23;
// Rotate-back transforms: the logical inverses of the advances, used by
// transactional compensation (an aborted enqueue rotates the tail back
// instead of restoring a meta before-image).
inline constexpr FuncId kFuncQueueRetreatHead = kFuncFirstCustom + 0x24;
inline constexpr FuncId kFuncQueueRetreatTail = kFuncFirstCustom + 0x25;

/// Registers the queue transforms (idempotent; the constructor calls it).
void RegisterQueueTransforms();

/// \brief A recoverable FIFO message queue built on the engine's public
/// API — messages are transient recoverable objects.
///
/// Each message is its own object, deleted when consumed; the queue meta
/// object holds (head, tail) sequence numbers. An enqueue is a blind
/// message write (for EnqueueFromApp, the paper's W_L(A, msg) — the
/// payload never reaches the log) followed by a tiny physiological tail
/// bump; ordering plus log prefix-stability bounds any torn pair to an
/// orphan object. Consumed messages end their lifetime with a delete, so
/// under the rSI REDO tests a crash never re-executes the enqueue work
/// of already-consumed messages (Section 5's transient-object
/// optimization at work).
class RecoverableQueue {
 public:
  RecoverableQueue(RecoveryEngine* engine, ObjectId id_base = 300'000);

  /// Creates or loads the queue meta object.
  Status Open();

  /// Enqueues an explicit payload (logged physically inside the enqueue
  /// record — the value must be durable somewhere).
  Status Enqueue(Slice payload);

  /// Enqueues `size` bytes emitted by the application state object
  /// `app`: logical — no payload bytes are logged.
  Status EnqueueFromApp(ObjectId app, uint64_t size, uint64_t seed);

  /// Pops the front message into `out`. NotFound when empty.
  Status Dequeue(ObjectValue* out);

  /// Reads the front message without consuming it. NotFound when empty.
  Status Peek(ObjectValue* out);

  uint64_t size() const { return tail_ - head_; }
  bool empty() const { return head_ == tail_; }
  uint64_t head() const { return head_; }
  uint64_t tail() const { return tail_; }

 private:
  Status LoadMeta();
  ObjectId MessageId(uint64_t seq) const { return id_base_ + 1 + seq; }

  RecoveryEngine* engine_;
  ObjectId id_base_;
  ObjectId meta_id_;
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_DOMAINS_QUEUE_RECOVERABLE_QUEUE_H_
