#ifndef LOGLOG_ENGINE_OPTIONS_H_
#define LOGLOG_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "adapt/policy_options.h"
#include "cache/policies.h"

namespace loglog {

/// Recovery-pass tuning.
struct RecoveryOptions {
  /// Worker threads for the partitioned REDO pass. <= 1 keeps the serial
  /// scan; higher values replay independent write-graph components of
  /// the redo workload concurrently (see src/recovery/parallel_redo.h).
  int redo_threads = 1;
};

/// \brief Configuration of a RecoveryEngine.
///
/// The four enums select one point in the paper's design space; the
/// benchmarks sweep them against each other (logical vs physiological
/// logging, W vs rW, identity writes vs flush transactions vs shadows,
/// and the three REDO tests).
struct EngineOptions {
  LoggingMode logging_mode = LoggingMode::kLogical;
  GraphKind graph_kind = GraphKind::kRefined;
  FlushPolicy flush_policy = FlushPolicy::kIdentityWrites;
  RedoTestKind redo_test = RedoTestKind::kRsiGeneralized;

  /// Install nodes whenever more than this many uninstalled operations
  /// accumulate (0 disables automatic purging).
  size_t purge_threshold_ops = 128;
  /// Take a checkpoint (and truncate the log) every N operations
  /// (0 = only on explicit Checkpoint() calls).
  size_t checkpoint_interval_ops = 0;
  /// Evict clean objects beyond this cache size (0 = unbounded).
  size_t cache_capacity_objects = 0;
  /// Log installation records (Section 5). Turning this off degrades the
  /// analysis pass's rSIs but never correctness.
  bool log_installs = true;
  /// Automatic hot-object detection: after this many writes without an
  /// intervening flush an object is treated as hot (installed by
  /// identity-write logging at checkpoints instead of flushed by the
  /// automatic purge; Section 4). 0 disables; MarkHot remains manual.
  uint64_t auto_hot_write_threshold = 0;
  /// Recovery-pass tuning (parallel partitioned REDO).
  RecoveryOptions recovery;
  /// How LogManager::Force maps force obligations onto device appends
  /// (group commit when not kImmediate).
  ForcePolicy wal_force_policy = ForcePolicy::kImmediate;
  /// Batch byte budget for ForcePolicy::kSizeThreshold.
  size_t wal_group_bytes = 1 << 16;
  /// Recovery-time budget, expressed as the maximum uninstalled-operation
  /// backlog (the bound on REDO work a crash can leave behind). 0 means
  /// unbounded. When the adaptive policy is enabled and the backlog
  /// exceeds the budget, maintenance asks the cache manager to install
  /// the oldest chains — peeling hot objects with proactive W_IP identity
  /// writes — until the backlog fits again (see
  /// CacheManager::EnforceRecoveryBudget).
  uint64_t recovery_budget = 0;
  /// Adaptive logging-policy engine (src/adapt/): per-object runtime
  /// choice of W_P / W_PL / W_L driven by an online cost model, plus the
  /// budget-driven W_IP requests above. Off by default.
  AdaptivePolicyOptions adaptive;
  /// Transient-I/O retry budget on the rollback path (TxnManager and the
  /// recovery loser pass). Tighter than the default kMaxIoRetries budget:
  /// rollback already runs under duress, and a rollback that fails cleanly
  /// is re-runnable after crash-recovery, so failing fast is safe.
  int rollback_io_retries = 1;
};

}  // namespace loglog

#endif  // LOGLOG_ENGINE_OPTIONS_H_
