#ifndef LOGLOG_ENGINE_OPTIONS_H_
#define LOGLOG_ENGINE_OPTIONS_H_

#include <cstddef>

#include "cache/policies.h"

namespace loglog {

/// Recovery-pass tuning.
struct RecoveryOptions {
  /// Worker threads for the partitioned REDO pass. <= 1 keeps the serial
  /// scan; higher values replay independent write-graph components of
  /// the redo workload concurrently (see src/recovery/parallel_redo.h).
  int redo_threads = 1;
};

/// \brief Configuration of a RecoveryEngine.
///
/// The four enums select one point in the paper's design space; the
/// benchmarks sweep them against each other (logical vs physiological
/// logging, W vs rW, identity writes vs flush transactions vs shadows,
/// and the three REDO tests).
struct EngineOptions {
  LoggingMode logging_mode = LoggingMode::kLogical;
  GraphKind graph_kind = GraphKind::kRefined;
  FlushPolicy flush_policy = FlushPolicy::kIdentityWrites;
  RedoTestKind redo_test = RedoTestKind::kRsiGeneralized;

  /// Install nodes whenever more than this many uninstalled operations
  /// accumulate (0 disables automatic purging).
  size_t purge_threshold_ops = 128;
  /// Take a checkpoint (and truncate the log) every N operations
  /// (0 = only on explicit Checkpoint() calls).
  size_t checkpoint_interval_ops = 0;
  /// Evict clean objects beyond this cache size (0 = unbounded).
  size_t cache_capacity_objects = 0;
  /// Log installation records (Section 5). Turning this off degrades the
  /// analysis pass's rSIs but never correctness.
  bool log_installs = true;
  /// Automatic hot-object detection: after this many writes without an
  /// intervening flush an object is treated as hot (installed by
  /// identity-write logging at checkpoints instead of flushed by the
  /// automatic purge; Section 4). 0 disables; MarkHot remains manual.
  uint64_t auto_hot_write_threshold = 0;
  /// Recovery-pass tuning (parallel partitioned REDO).
  RecoveryOptions recovery;
  /// How LogManager::Force maps force obligations onto device appends
  /// (group commit when not kImmediate).
  ForcePolicy wal_force_policy = ForcePolicy::kImmediate;
  /// Batch byte budget for ForcePolicy::kSizeThreshold.
  size_t wal_group_bytes = 1 << 16;
};

}  // namespace loglog

#endif  // LOGLOG_ENGINE_OPTIONS_H_
