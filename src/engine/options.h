#ifndef LOGLOG_ENGINE_OPTIONS_H_
#define LOGLOG_ENGINE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "adapt/policy_options.h"
#include "cache/policies.h"

namespace loglog {

/// Log-as-database (StorageBackend::kLogStore) tuning.
struct LogStoreOptions {
  /// Run a compaction pass after this many operations (0 = only explicit
  /// Compact() calls). Each pass re-logs up to compact_batch_objects of
  /// the oldest live images forward as W_IP identity records, republishes
  /// their index entries, and checkpoints so truncation can reclaim the
  /// bytes behind the new minimum.
  size_t compact_interval_ops = 0;
  /// Live images moved per compaction pass. Small batches bound the
  /// foreground stall a pass can cause; the cadence supplies throughput.
  size_t compact_batch_objects = 8;
  /// Append a kIndexCheckpoint record every N operations in addition to
  /// the one every Checkpoint() takes (0 = checkpoint-only). Bounds the
  /// analysis-pass index rebuild window.
  size_t index_checkpoint_interval_ops = 0;
  /// Keep every spilled cold segment forever (the default: full history
  /// stays replayable, which crash verification depends on). Turned off,
  /// each checkpoint garbage-collects cold segments wholly below the
  /// oldest live index offset — the bound compaction exists to advance.
  /// Without compaction one cold object pins the entire archive; with a
  /// steady cadence the footprint stays a small multiple of the live
  /// bytes (see bench_logstore's space-amplification series).
  bool cold_retention_full = true;
};

/// Recovery-pass tuning.
struct RecoveryOptions {
  /// Worker threads for the partitioned REDO pass. <= 1 keeps the serial
  /// scan; higher values replay independent write-graph components of
  /// the redo workload concurrently (see src/recovery/parallel_redo.h).
  int redo_threads = 1;
};

/// \brief Configuration of a RecoveryEngine.
///
/// The four enums select one point in the paper's design space; the
/// benchmarks sweep them against each other (logical vs physiological
/// logging, W vs rW, identity writes vs flush transactions vs shadows,
/// and the three REDO tests).
struct EngineOptions {
  LoggingMode logging_mode = LoggingMode::kLogical;
  GraphKind graph_kind = GraphKind::kRefined;
  FlushPolicy flush_policy = FlushPolicy::kIdentityWrites;
  RedoTestKind redo_test = RedoTestKind::kRsiGeneralized;

  /// Install nodes whenever more than this many uninstalled operations
  /// accumulate (0 disables automatic purging).
  size_t purge_threshold_ops = 128;
  /// Take a checkpoint (and truncate the log) every N operations
  /// (0 = only on explicit Checkpoint() calls).
  size_t checkpoint_interval_ops = 0;
  /// Evict clean objects beyond this cache size (0 = unbounded).
  size_t cache_capacity_objects = 0;
  /// Log installation records (Section 5). Turning this off degrades the
  /// analysis pass's rSIs but never correctness.
  bool log_installs = true;
  /// Automatic hot-object detection: after this many writes without an
  /// intervening flush an object is treated as hot (installed by
  /// identity-write logging at checkpoints instead of flushed by the
  /// automatic purge; Section 4). 0 disables; MarkHot remains manual.
  uint64_t auto_hot_write_threshold = 0;
  /// Recovery-pass tuning (parallel partitioned REDO).
  RecoveryOptions recovery;
  /// How LogManager::Force maps force obligations onto device appends
  /// (group commit when not kImmediate).
  ForcePolicy wal_force_policy = ForcePolicy::kImmediate;
  /// Batch byte budget for ForcePolicy::kSizeThreshold.
  size_t wal_group_bytes = 1 << 16;
  /// Recovery-time budget, expressed as the maximum uninstalled-operation
  /// backlog (the bound on REDO work a crash can leave behind). 0 means
  /// unbounded. When the adaptive policy is enabled and the backlog
  /// exceeds the budget, maintenance asks the cache manager to install
  /// the oldest chains — peeling hot objects with proactive W_IP identity
  /// writes — until the backlog fits again (see
  /// CacheManager::EnforceRecoveryBudget).
  uint64_t recovery_budget = 0;
  /// Adaptive logging-policy engine (src/adapt/): per-object runtime
  /// choice of W_P / W_PL / W_L driven by an online cost model, plus the
  /// budget-driven W_IP requests above. Off by default.
  AdaptivePolicyOptions adaptive;
  /// Where installed object state durably lives (src/logstore/). Under
  /// kLogStore the StableStore sees no object writes: installation is an
  /// index publish, reads fall through to the log, and the compactor +
  /// log truncation replace store-side space management.
  StorageBackend backend = StorageBackend::kDualWrite;
  /// Log-as-database tuning; only read when backend == kLogStore.
  LogStoreOptions logstore;
  /// Transient-I/O retry budget on the rollback path (TxnManager and the
  /// recovery loser pass). Tighter than the default kMaxIoRetries budget:
  /// rollback already runs under duress, and a rollback that fails cleanly
  /// is re-runnable after crash-recovery, so failing fast is safe.
  int rollback_io_retries = 1;
};

}  // namespace loglog

#endif  // LOGLOG_ENGINE_OPTIONS_H_
