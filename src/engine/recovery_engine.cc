#include "engine/recovery_engine.h"

#include "engine/txn_manager.h"
#include "logstore/compactor.h"
#include "ops/function_registry.h"
#include "ops/inverse_registry.h"
#include "ops/op_builder.h"

namespace loglog {

RecoveryEngine::RecoveryEngine(const EngineOptions& options,
                               SimulatedDisk* disk)
    : options_(options), disk_(disk) {
  const bool logstore = options_.backend == StorageBackend::kLogStore;
  if (logstore) {
    // The log IS the database: install evidence (kInstall records) is
    // what recovery's index rebuild keys off, so install logging is not
    // optional here. And kAlways redo would skip nothing, but its
    // manifest check consults the store the backend never writes —
    // force the vSI test, which reads the rebuilt cache state instead.
    options_.log_installs = true;
    if (options_.redo_test == RedoTestKind::kAlways) {
      options_.redo_test = RedoTestKind::kVsi;
    }
  }
  log_ = std::make_unique<LogManager>(&disk_->log());
  log_->set_force_policy(options_.wal_force_policy, options_.wal_group_bytes);
  cache_ = std::make_unique<CacheManager>(disk_, log_.get(),
                                          options_.graph_kind,
                                          options_.flush_policy,
                                          options_.log_installs,
                                          options_.backend);
  cache_->set_auto_hot_threshold(options_.auto_hot_write_threshold);
  if (options_.adaptive.enabled) {
    policy_ = std::make_unique<AdaptiveLogPolicy>(options_.adaptive);
  }
  if (logstore) {
    compactor_ = std::make_unique<Compactor>(this);
    cache_->set_cold_retention_full(options_.logstore.cold_retention_full);
  }
  needs_recovery_ = disk_->log().retained_bytes() > 0;
}

RecoveryEngine::~RecoveryEngine() = default;

Status RecoveryEngine::Recover(RecoveryStats* stats) {
  RecoveryStats local;
  RecoveryDriver driver(disk_, log_.get(), cache_.get(),
                        options_.redo_test, repair_backup_,
                        options_.recovery.redo_threads);
  // Reseed the adaptive policy from the logged decision records: after
  // recovery each object resumes under the class it crashed with.
  driver.set_policy(policy_.get());
  driver.set_rollback_io_retries(options_.rollback_io_retries);
  RecoveryStats* out = stats != nullptr ? stats : &local;
  LOGLOG_RETURN_IF_ERROR(driver.Run(out));
  max_recovered_txn_id_ = out->max_txn_id;
  recovered_ = true;
  needs_recovery_ = false;
  return Status::OK();
}

Status RecoveryEngine::Execute(const OperationDesc& op, Lsn* lsn) {
  if (needs_recovery_ && !recovered_) {
    return Status::FailedPrecondition(
        "engine has a stable log but Recover() has not run");
  }
  LOGLOG_RETURN_IF_ERROR(op.Validate());
  if (!FunctionRegistry::Global().Contains(op.func)) {
    return Status::InvalidArgument("operation uses unregistered transform");
  }

  // Adaptive path: the policy picks the logging class per written
  // object; it subsumes the static decomposition below.
  if (policy_ != nullptr) {
    LOGLOG_RETURN_IF_ERROR(ExecuteAdaptive(op, lsn));
    return MaybeMaintain();
  }

  // Figure 1b baseline: physiological logging cannot express cross-object
  // reads, so compute the result now and log physical writes carrying the
  // values.
  bool cross_object =
      !op.reads.empty() &&
      (op.writes.size() > 1 || op.reads != op.writes);
  if (options_.logging_mode == LoggingMode::kPhysiological &&
      op.op_class == OpClass::kLogical && cross_object) {
    std::vector<ObjectValue> read_values;
    read_values.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      ObjectValue v;
      LOGLOG_RETURN_IF_ERROR(cache_->GetValue(r, &v));
      read_values.push_back(std::move(v));
    }
    std::vector<ObjectValue> write_values(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      ObjectValue v;
      if (cache_->GetValue(op.writes[i], &v).ok()) {
        write_values[i] = std::move(v);
      }
    }
    LOGLOG_RETURN_IF_ERROR(FunctionRegistry::Global().Apply(
        op, read_values, &write_values));
    for (size_t i = 0; i < op.writes.size(); ++i) {
      OperationDesc phys =
          MakePhysicalWrite(op.writes[i], Slice(write_values[i]));
      LOGLOG_RETURN_IF_ERROR(ExecuteInternal(phys, lsn));
    }
    return MaybeMaintain();
  }

  LOGLOG_RETURN_IF_ERROR(ExecuteInternal(op, lsn));
  return MaybeMaintain();
}

Status RecoveryEngine::ExecuteInternal(const OperationDesc& op, Lsn* lsn) {
  const bool in_txn = txn_scope_ != nullptr;
  std::vector<ObjectValue> old_values;
  std::vector<bool> old_exists;
  if (in_txn) {
    old_values.resize(op.writes.size());
    old_exists.assign(op.writes.size(), false);
  }
  std::vector<ObjectValue> new_values;
  if (op.op_class != OpClass::kDelete) {
    std::vector<ObjectValue> read_values;
    read_values.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      ObjectValue v;
      LOGLOG_RETURN_IF_ERROR(cache_->GetValue(r, &v));
      read_values.push_back(std::move(v));
    }
    new_values.resize(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      ObjectValue v;
      if (cache_->GetValue(op.writes[i], &v).ok()) {
        if (in_txn) {
          old_values[i] = v;
          old_exists[i] = true;
        }
        new_values[i] = std::move(v);
      }
    }
    LOGLOG_RETURN_IF_ERROR(
        FunctionRegistry::Global().Apply(op, read_values, &new_values));
  } else if (!cache_->ObjectExists(op.writes[0])) {
    return Status::NotFound("delete of nonexistent object");
  } else if (in_txn) {
    ObjectValue v;
    if (cache_->GetValue(op.writes[0], &v).ok()) {
      old_values[0] = std::move(v);
      old_exists[0] = true;
    }
  }

  std::vector<UndoImage> images;
  uint64_t txn_id = 0;
  Lsn prev_lsn = kInvalidLsn;
  if (in_txn) {
    txn_id = txn_scope_->txn_id;
    prev_lsn = txn_scope_->last_lsn;
    // No exact logical inverse: log before-images so compensation can
    // restore physically. (This is where a policy-promoted W_P write
    // pays its compensation insurance — kFuncSetValue has no inverse.)
    if (!InverseRegistry::Global().Invertible(op, old_exists, old_values)) {
      images.resize(op.writes.size());
      for (size_t i = 0; i < op.writes.size(); ++i) {
        images[i].exists = old_exists[i];
        images[i].value = std::move(old_values[i]);
      }
    }
  }
  size_t payload_size = 0;
  Lsn assigned =
      log_->AppendOperation(op, txn_id, prev_lsn, images, &payload_size);
  stats_.op_log_bytes += payload_size;
  if (lsn != nullptr) *lsn = assigned;
  if (in_txn) {
    txn_scope_->last_lsn = assigned;
    txn_scope_->undo->push_back({assigned, op, std::move(images)});
  }

  ++stats_.ops_executed;
  switch (op.op_class) {
    case OpClass::kLogical:
      ++stats_.logical_ops;
      break;
    case OpClass::kPhysiological:
      ++stats_.physiological_ops;
      break;
    default:
      ++stats_.physical_ops;
      break;
  }
  return cache_->ApplyResults(op, assigned, std::move(new_values));
}

Status RecoveryEngine::ExecuteAdaptive(const OperationDesc& op, Lsn* lsn) {
  // Structurally classed operations (W_P / W_PL / W_IP / create /
  // delete) keep their class; the policy only observes them so its
  // estimators stay honest.
  if (op.op_class != OpClass::kLogical) {
    for (ObjectId x : op.writes) {
      policy_->ObserveWrite(x, op.params.size());
    }
    return ExecuteInternal(op, lsn);
  }

  // Compute the transform once; the logical and the promoted path both
  // persist exactly these results.
  std::vector<ObjectValue> read_values;
  read_values.reserve(op.reads.size());
  for (ObjectId r : op.reads) {
    ObjectValue v;
    LOGLOG_RETURN_IF_ERROR(cache_->GetValue(r, &v));
    read_values.push_back(std::move(v));
  }
  std::vector<ObjectValue> old_values(op.writes.size());
  std::vector<bool> old_exists(op.writes.size(), false);
  for (size_t i = 0; i < op.writes.size(); ++i) {
    ObjectValue v;
    if (cache_->GetValue(op.writes[i], &v).ok()) {
      old_values[i] = std::move(v);
      old_exists[i] = true;
    }
  }
  std::vector<ObjectValue> new_values = old_values;
  LOGLOG_RETURN_IF_ERROR(
      FunctionRegistry::Global().Apply(op, read_values, &new_values));

  // Classify each written object; decision records precede the writes
  // they govern so analysis sees the flip before the reclassified op.
  bool promote = false;
  std::vector<PolicyDecision> decisions;
  decisions.reserve(op.writes.size());
  for (size_t i = 0; i < op.writes.size(); ++i) {
    decisions.push_back(policy_->Decide(op.writes[i], new_values[i].size(),
                                        ChainDepth(op.writes[i])));
    if (decisions.back().chosen != LogChoice::kLogical) promote = true;
    if (decisions.back().changed) AppendPolicyDecision(decisions.back());
  }

  if (!promote) {
    // W_L: the operation record itself, precomputed results applied.
    std::vector<UndoImage> images;
    uint64_t txn_id = 0;
    Lsn prev_lsn = kInvalidLsn;
    if (txn_scope_ != nullptr) {
      txn_id = txn_scope_->txn_id;
      prev_lsn = txn_scope_->last_lsn;
      if (!InverseRegistry::Global().Invertible(op, old_exists,
                                                old_values)) {
        images.resize(op.writes.size());
        for (size_t i = 0; i < op.writes.size(); ++i) {
          images[i].exists = old_exists[i];
          images[i].value = old_values[i];
        }
      }
    }
    size_t payload_size = 0;
    Lsn assigned =
        log_->AppendOperation(op, txn_id, prev_lsn, images, &payload_size);
    stats_.op_log_bytes += payload_size;
    if (lsn != nullptr) *lsn = assigned;
    if (txn_scope_ != nullptr) {
      txn_scope_->last_lsn = assigned;
      txn_scope_->undo->push_back({assigned, op, std::move(images)});
    }
    ++stats_.ops_executed;
    ++stats_.logical_ops;
    return cache_->ApplyResults(op, assigned, std::move(new_values));
  }

  // Promoted: one value-carrying record per write (the Figure 1b shape
  // with a per-object class choice). The blind writes carry exactly the
  // sequential result, so replay and the divergence audit see the same
  // values; each record's own LSN becomes the write's vSI, as it would
  // for any logged blind write.
  for (size_t i = 0; i < op.writes.size(); ++i) {
    const ObjectId x = op.writes[i];
    const ObjectValue& nv = new_values[i];
    OperationDesc out;
    bool delta_ok = false;
    if (decisions[i].chosen == LogChoice::kPhysiological && old_exists[i] &&
        nv.size() >= old_values[i].size()) {
      // W_PL: byte range from the first differing byte. kFuncApplyDelta
      // extends but never truncates, so growth must write through the
      // new end; equal sizes may also trim the unchanged tail.
      const ObjectValue& ov = old_values[i];
      size_t lo = 0;
      while (lo < ov.size() && lo < nv.size() && ov[lo] == nv[lo]) ++lo;
      size_t hi = nv.size();
      if (nv.size() == ov.size()) {
        while (hi > lo && ov[hi - 1] == nv[hi - 1]) --hi;
      }
      // Worth logging as a delta only when it undercuts the full image
      // (varint offset + length prefix cost ~12 bytes).
      if (hi - lo + 12 < nv.size()) {
        out = MakeDelta(x, lo, Slice(nv.data() + lo, hi - lo));
        delta_ok = true;
      }
    }
    if (delta_ok) {
      ++stats_.promoted_delta;
    } else {
      out = MakePhysicalWrite(x, Slice(nv));
      ++stats_.promoted_physical;
    }
    LOGLOG_RETURN_IF_ERROR(ExecuteInternal(out, lsn));
  }
  return Status::OK();
}

uint64_t RecoveryEngine::ChainDepth(ObjectId id) const {
  const WriteGraph& g = cache_->graph();
  NodeId v = g.NodeOwningVar(id);
  if (v == kNoNode) return 0;
  const GraphNode* n = g.Find(v);
  if (n == nullptr) return 0;
  return n->ops.size() + n->preds.size();
}

void RecoveryEngine::AppendPolicyDecision(const PolicyDecision& d) {
  LogRecord rec;
  rec.type = RecordType::kPolicyDecision;
  rec.policy.object = d.id;
  rec.policy.new_class = static_cast<uint8_t>(d.chosen);
  rec.policy.prev_class = static_cast<uint8_t>(d.previous);
  rec.policy.reason = static_cast<uint8_t>(d.reason);
  rec.policy.chain_depth = d.chain_depth;
  rec.policy.ewma_size = d.ewma_size;
  ++stats_.policy_decisions;
  stats_.policy_log_bytes += rec.EncodedSize();
  log_->Append(std::move(rec));
}

Status RecoveryEngine::MaybeMaintain() {
  if (options_.purge_threshold_ops > 0) {
    while (cache_->uninstalled_ops() > options_.purge_threshold_ops) {
      // Automatic purging protects hot objects (they install via logging
      // under kIdentityWrites but are not flushed); FlushAll drains them.
      Status st = cache_->PurgeOne(/*allow_hot_flush=*/false);
      if (st.IsNotFound()) break;
      LOGLOG_RETURN_IF_ERROR(st);
    }
  }
  // Recovery budget: when the uninstalled backlog exceeds the budget,
  // ask the CM to install the oldest chains — proactive W_IP identity
  // writes cut the hot chains a crash would otherwise have to replay.
  if (policy_ != nullptr && options_.recovery_budget > 0 &&
      cache_->uninstalled_ops() > options_.recovery_budget) {
    LOGLOG_RETURN_IF_ERROR(cache_->EnforceRecoveryBudget(
        options_.recovery_budget,
        options_.adaptive.max_identity_requests_per_cycle));
  }
  if (options_.checkpoint_interval_ops > 0 &&
      ++ops_since_checkpoint_ >= options_.checkpoint_interval_ops) {
    LOGLOG_RETURN_IF_ERROR(Checkpoint());
  }
  if (compactor_ != nullptr) {
    // Log-store maintenance: periodic compaction keeps the live prefix
    // short, and an index-checkpoint cadence (a full checkpoint — the
    // kIndexCheckpoint record rides it) bounds recovery's rebuild scan
    // even when op checkpointing is off.
    if (options_.logstore.compact_interval_ops > 0 &&
        ++ops_since_compact_ >= options_.logstore.compact_interval_ops) {
      ops_since_compact_ = 0;
      LOGLOG_RETURN_IF_ERROR(Compact());
    }
    if (options_.logstore.index_checkpoint_interval_ops > 0 &&
        ++ops_since_index_ckpt_ >=
            options_.logstore.index_checkpoint_interval_ops) {
      LOGLOG_RETURN_IF_ERROR(Checkpoint());
    }
  }
  if (options_.cache_capacity_objects > 0) {
    cache_->EvictTo(options_.cache_capacity_objects);
  }
  return Status::OK();
}

Status RecoveryEngine::Compact() {
  if (compactor_ == nullptr) return Status::OK();
  return compactor_->RunOnce(options_.logstore.compact_batch_objects);
}

Status RecoveryEngine::Checkpoint() {
  ops_since_checkpoint_ = 0;
  ops_since_index_ckpt_ = 0;
  // Truncation floor: the oldest active transaction's begin record must
  // stay on the log — its rollback (runtime or as a loser) walks the
  // backchain from there.
  Lsn floor = txn_manager_ != nullptr
                  ? txn_manager_->OldestActiveBeginLsn()
                  : kMaxLsn;
  return cache_->Checkpoint(floor, max_recovered_txn_id_);
}

Status RecoveryEngine::Read(ObjectId id, ObjectValue* out) {
  return cache_->GetValue(id, out);
}

bool RecoveryEngine::Exists(ObjectId id) {
  return cache_->ObjectExists(id);
}

}  // namespace loglog
