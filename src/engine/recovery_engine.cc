#include "engine/recovery_engine.h"

#include "ops/function_registry.h"
#include "ops/op_builder.h"

namespace loglog {

RecoveryEngine::RecoveryEngine(const EngineOptions& options,
                               SimulatedDisk* disk)
    : options_(options), disk_(disk) {
  log_ = std::make_unique<LogManager>(&disk_->log());
  log_->set_force_policy(options_.wal_force_policy, options_.wal_group_bytes);
  cache_ = std::make_unique<CacheManager>(disk_, log_.get(),
                                          options_.graph_kind,
                                          options_.flush_policy,
                                          options_.log_installs);
  cache_->set_auto_hot_threshold(options_.auto_hot_write_threshold);
  needs_recovery_ = disk_->log().retained_bytes() > 0;
}

Status RecoveryEngine::Recover(RecoveryStats* stats) {
  RecoveryStats local;
  RecoveryDriver driver(disk_, log_.get(), cache_.get(),
                        options_.redo_test, repair_backup_,
                        options_.recovery.redo_threads);
  LOGLOG_RETURN_IF_ERROR(driver.Run(stats != nullptr ? stats : &local));
  recovered_ = true;
  needs_recovery_ = false;
  return Status::OK();
}

Status RecoveryEngine::Execute(const OperationDesc& op, Lsn* lsn) {
  if (needs_recovery_ && !recovered_) {
    return Status::FailedPrecondition(
        "engine has a stable log but Recover() has not run");
  }
  LOGLOG_RETURN_IF_ERROR(op.Validate());
  if (!FunctionRegistry::Global().Contains(op.func)) {
    return Status::InvalidArgument("operation uses unregistered transform");
  }

  // Figure 1b baseline: physiological logging cannot express cross-object
  // reads, so compute the result now and log physical writes carrying the
  // values.
  bool cross_object =
      !op.reads.empty() &&
      (op.writes.size() > 1 || op.reads != op.writes);
  if (options_.logging_mode == LoggingMode::kPhysiological &&
      op.op_class == OpClass::kLogical && cross_object) {
    std::vector<ObjectValue> read_values;
    read_values.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      ObjectValue v;
      LOGLOG_RETURN_IF_ERROR(cache_->GetValue(r, &v));
      read_values.push_back(std::move(v));
    }
    std::vector<ObjectValue> write_values(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      ObjectValue v;
      if (cache_->GetValue(op.writes[i], &v).ok()) {
        write_values[i] = std::move(v);
      }
    }
    LOGLOG_RETURN_IF_ERROR(FunctionRegistry::Global().Apply(
        op, read_values, &write_values));
    for (size_t i = 0; i < op.writes.size(); ++i) {
      OperationDesc phys =
          MakePhysicalWrite(op.writes[i], Slice(write_values[i]));
      LOGLOG_RETURN_IF_ERROR(ExecuteInternal(phys, lsn));
    }
    return MaybeMaintain();
  }

  LOGLOG_RETURN_IF_ERROR(ExecuteInternal(op, lsn));
  return MaybeMaintain();
}

Status RecoveryEngine::ExecuteInternal(const OperationDesc& op, Lsn* lsn) {
  std::vector<ObjectValue> new_values;
  if (op.op_class != OpClass::kDelete) {
    std::vector<ObjectValue> read_values;
    read_values.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      ObjectValue v;
      LOGLOG_RETURN_IF_ERROR(cache_->GetValue(r, &v));
      read_values.push_back(std::move(v));
    }
    new_values.resize(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      ObjectValue v;
      if (cache_->GetValue(op.writes[i], &v).ok()) {
        new_values[i] = std::move(v);
      }
    }
    LOGLOG_RETURN_IF_ERROR(
        FunctionRegistry::Global().Apply(op, read_values, &new_values));
  } else if (!cache_->ObjectExists(op.writes[0])) {
    return Status::NotFound("delete of nonexistent object");
  }

  LogRecord rec;
  rec.type = RecordType::kOperation;
  rec.op = op;
  stats_.op_log_bytes += rec.EncodedSize();
  Lsn assigned = log_->Append(std::move(rec));
  if (lsn != nullptr) *lsn = assigned;

  ++stats_.ops_executed;
  switch (op.op_class) {
    case OpClass::kLogical:
      ++stats_.logical_ops;
      break;
    case OpClass::kPhysiological:
      ++stats_.physiological_ops;
      break;
    default:
      ++stats_.physical_ops;
      break;
  }
  return cache_->ApplyResults(op, assigned, std::move(new_values));
}

Status RecoveryEngine::MaybeMaintain() {
  if (options_.purge_threshold_ops > 0) {
    while (cache_->uninstalled_ops() > options_.purge_threshold_ops) {
      // Automatic purging protects hot objects (they install via logging
      // under kIdentityWrites but are not flushed); FlushAll drains them.
      Status st = cache_->PurgeOne(/*allow_hot_flush=*/false);
      if (st.IsNotFound()) break;
      LOGLOG_RETURN_IF_ERROR(st);
    }
  }
  if (options_.checkpoint_interval_ops > 0 &&
      ++ops_since_checkpoint_ >= options_.checkpoint_interval_ops) {
    LOGLOG_RETURN_IF_ERROR(Checkpoint());
  }
  if (options_.cache_capacity_objects > 0) {
    cache_->EvictTo(options_.cache_capacity_objects);
  }
  return Status::OK();
}

Status RecoveryEngine::Checkpoint() {
  ops_since_checkpoint_ = 0;
  return cache_->Checkpoint();
}

Status RecoveryEngine::Read(ObjectId id, ObjectValue* out) {
  return cache_->GetValue(id, out);
}

bool RecoveryEngine::Exists(ObjectId id) {
  return cache_->ObjectExists(id);
}

}  // namespace loglog
