#ifndef LOGLOG_ENGINE_RECOVERY_ENGINE_H_
#define LOGLOG_ENGINE_RECOVERY_ENGINE_H_

#include <memory>

#include "adapt/adaptive_policy.h"
#include "cache/cache_manager.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/options.h"
#include "ops/operation.h"
#include "recovery/recovery_driver.h"
#include "recovery/txn_undo.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"

namespace loglog {

class Compactor;
class TxnManager;

/// Per-engine execution counters.
struct EngineStats {
  uint64_t ops_executed = 0;
  /// Bytes of operation log records appended (the paper's logging cost).
  uint64_t op_log_bytes = 0;
  uint64_t logical_ops = 0;
  uint64_t physical_ops = 0;
  uint64_t physiological_ops = 0;
  // Adaptive-policy execution (EngineOptions::adaptive).
  uint64_t policy_decisions = 0;   // kPolicyDecision records appended
  uint64_t policy_log_bytes = 0;   // their encoded payload bytes
  uint64_t promoted_physical = 0;  // logical writes logged as W_P
  uint64_t promoted_delta = 0;     // logical writes logged as W_PL
};

/// \brief The public facade: a redo-recoverable object store driven by
/// logged operations.
///
/// A RecoveryEngine owns all *volatile* state (cache, write graph,
/// volatile log buffer) over a SimulatedDisk that owns all *stable*
/// state. Simulating a crash = destroying the engine; recovering =
/// constructing a new engine on the same disk and calling Recover().
///
/// Typical use:
/// \code
///   SimulatedDisk disk;
///   RecoveryEngine engine(EngineOptions{}, &disk);
///   engine.Execute(MakeCreate(1, "hello"));
///   engine.Execute(MakeCopy(/*y=*/2, /*x=*/1));   // logical: no values logged
///   engine.Checkpoint();
///   // ... crash: drop `engine` ...
///   RecoveryEngine after(EngineOptions{}, &disk);
///   after.Recover();
/// \endcode
class RecoveryEngine {
 public:
  RecoveryEngine(const EngineOptions& options, SimulatedDisk* disk);
  ~RecoveryEngine();

  RecoveryEngine(const RecoveryEngine&) = delete;
  RecoveryEngine& operator=(const RecoveryEngine&) = delete;

  /// Replays the stable log after a crash (analysis + redo passes). Must
  /// be called before Execute when the disk carries a log; a fresh disk
  /// needs no recovery. Idempotent across repeated crashes mid-recovery.
  Status Recover(RecoveryStats* stats = nullptr);

  /// Installs the backup image Recover() repairs from when its checksum
  /// sweep finds corrupt stable objects (nullptr: repair from the log
  /// archive alone). The image must outlive the engine.
  void set_repair_backup(const BackupImage* image) {
    repair_backup_ = image;
  }

  /// Executes and logs one operation. Under LoggingMode::kPhysiological,
  /// cross-object logical operations are decomposed into physical writes
  /// whose values are logged (the Figure 1b baseline). Returns the LSN of
  /// the (last) log record via `lsn` if non-null.
  Status Execute(const OperationDesc& op, Lsn* lsn = nullptr);

  /// Latest value of an object (NotFound if absent or deleted).
  Status Read(ObjectId id, ObjectValue* out);
  bool Exists(ObjectId id);

  /// Installs one minimal write-graph node (explicit PurgeCache).
  Status PurgeOne() { return cache_->PurgeOne(); }
  /// Marks an object hot: automatic purging installs its operations via
  /// identity-write logging without flushing it (Section 4).
  void MarkHot(ObjectId id, bool hot = true) { cache_->MarkHot(id, hot); }
  /// Installs everything and flushes all dirty objects.
  Status FlushAll() { return cache_->FlushAll(); }
  /// Forced checkpoint + log truncation.
  Status Checkpoint();
  /// One forced log-store compaction pass (no-op under kDualWrite):
  /// re-logs the oldest live full images at the tail and checkpoints so
  /// truncation reclaims the vacated prefix. The automatic cadence
  /// (LogStoreOptions::compact_interval_ops) runs this same pass.
  Status Compact();
  /// The background compactor (nullptr under kDualWrite).
  Compactor* compactor() { return compactor_.get(); }

  /// Transaction layer hook (set by the TxnManager constructor; nullptr
  /// without one). Checkpoints ask it for the truncation floor so a live
  /// transaction's backchain is never truncated away.
  void set_txn_manager(TxnManager* tm) { txn_manager_ = tm; }
  TxnManager* txn_manager() { return txn_manager_; }
  /// Highest transaction id recovery saw on the log (0 on a fresh disk):
  /// id allocation continues above it so loser/committed ids are never
  /// reused.
  uint64_t max_recovered_txn_id() const { return max_recovered_txn_id_; }
  /// Allocates the next transaction id. Lives on the engine, not the
  /// TxnManager, so two managers created over one engine lifetime (e.g. a
  /// storm burst followed by a replication tail) keep a single id space.
  uint64_t AllocateTxnId() { return ++max_recovered_txn_id_; }

  CacheManager& cache() { return *cache_; }
  const CacheManager& cache() const { return *cache_; }
  /// The adaptive logging policy (nullptr unless options.adaptive.enabled).
  AdaptiveLogPolicy* policy() { return policy_.get(); }
  const AdaptiveLogPolicy* policy() const { return policy_.get(); }
  LogManager& log() { return *log_; }
  SimulatedDisk& disk() { return *disk_; }
  const EngineOptions& options() const { return options_; }
  const EngineStats& stats() const { return stats_; }

 private:
  friend class TxnManager;

  /// Active-transaction scope, set by TxnManager around Execute calls:
  /// records appended while set carry the txn id and backchain, capture
  /// before-images when no exact logical inverse is registered, and are
  /// pushed onto the transaction's undo stack.
  struct TxnScope {
    uint64_t txn_id = 0;
    Lsn last_lsn = kInvalidLsn;
    std::vector<TxnChainRecord>* undo = nullptr;
  };

  Status ExecuteInternal(const OperationDesc& op, Lsn* lsn);
  /// Adaptive path: classifies each written object through the policy,
  /// logs decision records for class flips, and logs the operation under
  /// the chosen class (W_L as-is; W_P / W_PL as value-carrying records,
  /// the Figure 1b shape with a per-object class choice).
  Status ExecuteAdaptive(const OperationDesc& op, Lsn* lsn);
  Status MaybeMaintain();
  /// rW dependency weight of the object's owning node: uninstalled ops
  /// in the node plus its fan-in predecessors (0 when clean).
  uint64_t ChainDepth(ObjectId id) const;
  void AppendPolicyDecision(const PolicyDecision& d);

  EngineOptions options_;
  SimulatedDisk* disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<CacheManager> cache_;
  std::unique_ptr<AdaptiveLogPolicy> policy_;
  /// Log-store background compaction (kLogStore backend only; owned here
  /// so its cadence shares MaybeMaintain with checkpointing).
  std::unique_ptr<Compactor> compactor_;
  EngineStats stats_;
  uint64_t ops_since_checkpoint_ = 0;
  uint64_t ops_since_compact_ = 0;
  uint64_t ops_since_index_ckpt_ = 0;
  bool recovered_ = false;
  bool needs_recovery_ = false;
  const BackupImage* repair_backup_ = nullptr;
  TxnScope* txn_scope_ = nullptr;
  TxnManager* txn_manager_ = nullptr;
  uint64_t max_recovered_txn_id_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_ENGINE_RECOVERY_ENGINE_H_
