#include "engine/txn_manager.h"

#include <algorithm>

#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"

namespace loglog {

TxnManager::TxnManager(RecoveryEngine* engine) : engine_(engine) {
  engine_->set_txn_manager(this);
}

TxnManager::~TxnManager() {
  if (engine_->txn_manager() == this) engine_->set_txn_manager(nullptr);
}

Status TxnManager::Begin(TxnId* id) {
  TxnId tid = engine_->AllocateTxnId();
  Lsn begin_lsn = engine_->log().AppendTxnMarker(RecordType::kTxnBegin, tid,
                                                 kInvalidLsn);
  Txn& t = txns_[tid];
  t.begin_lsn = begin_lsn;
  t.last_lsn = begin_lsn;
  ++stats_.begun;
  *id = tid;
  return Status::OK();
}

Status TxnManager::Execute(TxnId id, const OperationDesc& op, Lsn* lsn) {
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    return Status::InvalidArgument("unknown or finished transaction");
  }
  Txn& t = it->second;

  if (engine_->disk().fault_injector().Hit(fault::kTxnAbortInject)) {
    ++stats_.injected_aborts;
    LOGLOG_RETURN_IF_ERROR(Rollback(id));
    return Status::Aborted("injected transaction abort");
  }
  if (!LocksAvailable(id, op)) {
    ++stats_.conflict_aborts;
    LOGLOG_RETURN_IF_ERROR(Rollback(id));
    return Status::Aborted("transaction lock conflict");
  }
  GrabLocks(id, &t, op);

  RecoveryEngine::TxnScope scope;
  scope.txn_id = id;
  scope.last_lsn = t.last_lsn;
  scope.undo = &t.undo;
  engine_->txn_scope_ = &scope;
  Status st = engine_->Execute(op, lsn);
  engine_->txn_scope_ = nullptr;
  t.last_lsn = scope.last_lsn;
  return st;
}

Status TxnManager::Commit(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    return Status::InvalidArgument("unknown or finished transaction");
  }
  Txn& t = it->second;

  Lsn commit_lsn = engine_->log().AppendTxnMarker(RecordType::kTxnCommit, id,
                                                  t.last_lsn);
  t.last_lsn = commit_lsn;

  // The torn-commit window: the record exists but is volatile. A fire
  // here models a crash before the force — recovery must see a loser.
  if (engine_->disk().fault_injector().Hit(fault::kTxnCommitTorn)) {
    return Status::Aborted("crash injected at txn.commit.torn");
  }

  LOGLOG_RETURN_IF_ERROR(engine_->log().Force(commit_lsn));
  ++stats_.committed;
  ReleaseLocks(id, &t);
  txns_.erase(it);
  return Status::OK();
}

Status TxnManager::Rollback(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) {
    return Status::InvalidArgument("unknown or finished transaction");
  }
  Txn& t = it->second;

  TxnRollbackPlan plan;
  plan.txn_id = id;
  plan.last_lsn = t.last_lsn;
  plan.forward = t.undo;
  const uint64_t clrs_before = undo_stats_.clrs_logged;
  Status undo_st = RollbackTxn(
      &engine_->cache(), &engine_->log(),
      &engine_->disk().fault_injector(), plan,
      engine_->options().rollback_io_retries, &undo_stats_);
  if (!undo_st.ok()) {
    HealthRegistry::Global().Set(health::kTxnManager, HealthState::kFailing,
                                 "rollback failed: " + undo_st.ToString());
    return undo_st;
  }
  FlightRecorder::Global().Record(FlightEventType::kTxnAbort, t.last_lsn,
                                  id, undo_stats_.clrs_logged - clrs_before);
  HealthRegistry::Global().Set(health::kTxnManager, HealthState::kOk);
  ++stats_.aborted;
  ReleaseLocks(id, &t);
  txns_.erase(it);
  return Status::OK();
}

Lsn TxnManager::OldestActiveBeginLsn() const {
  Lsn oldest = kMaxLsn;
  for (const auto& [id, t] : txns_) {
    oldest = std::min(oldest, t.begin_lsn);
  }
  return oldest;
}

bool TxnManager::LocksAvailable(TxnId id, const OperationDesc& op) const {
  for (ObjectId x : op.writes) {
    auto w = write_locks_.find(x);
    if (w != write_locks_.end() && w->second != id) return false;
    auto r = read_locks_.find(x);
    if (r != read_locks_.end()) {
      for (TxnId holder : r->second) {
        if (holder != id) return false;
      }
    }
  }
  for (ObjectId x : op.reads) {
    auto w = write_locks_.find(x);
    if (w != write_locks_.end() && w->second != id) return false;
  }
  return true;
}

void TxnManager::GrabLocks(TxnId id, Txn* t, const OperationDesc& op) {
  for (ObjectId x : op.writes) {
    write_locks_[x] = id;
    t->write_locks.insert(x);
  }
  for (ObjectId x : op.reads) {
    read_locks_[x].insert(id);
    t->read_locks.insert(x);
  }
}

void TxnManager::ReleaseLocks(TxnId id, Txn* t) {
  for (ObjectId x : t->write_locks) {
    auto w = write_locks_.find(x);
    if (w != write_locks_.end() && w->second == id) write_locks_.erase(w);
  }
  for (ObjectId x : t->read_locks) {
    auto r = read_locks_.find(x);
    if (r != read_locks_.end()) {
      r->second.erase(id);
      if (r->second.empty()) read_locks_.erase(r);
    }
  }
  t->write_locks.clear();
  t->read_locks.clear();
}

}  // namespace loglog
