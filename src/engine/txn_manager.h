#ifndef LOGLOG_ENGINE_TXN_MANAGER_H_
#define LOGLOG_ENGINE_TXN_MANAGER_H_

#include <map>
#include <set>

#include "common/status.h"
#include "common/types.h"
#include "engine/recovery_engine.h"
#include "recovery/txn_undo.h"

namespace loglog {

/// User-transaction identifier (0 is never a valid id: log records with
/// txn_id == 0 are non-transactional).
using TxnId = uint64_t;

/// Runtime transaction counters (rollback specifics live in the shared
/// TxnUndoStats, see undo_stats()).
struct TxnManagerStats {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;           // rollbacks completed at runtime
  uint64_t injected_aborts = 0;   // fired by fault::kTxnAbortInject
  uint64_t conflict_aborts = 0;   // strict-2PL lock conflicts
};

/// \brief BEGIN/COMMIT/ROLLBACK semantics over a RecoveryEngine.
///
/// Scopes Execute calls to a transaction: every in-scope operation record
/// carries the txn id and a per-transaction prev-LSN backchain, plus
/// before-images whenever the operation has no exact registered logical
/// inverse (ops/inverse_registry.h) — which is also what makes the
/// adaptive policy compensation-aware: a logical write the policy
/// promotes to W_P/W_PL is logged with its before-image, so its
/// compensation stays physical.
///
/// Concurrency control is strict 2PL with immediate abort: read and
/// write locks are held to transaction end, and any conflict rolls the
/// requesting transaction back. This is deliberately the simplest policy
/// that makes commit order a serialization order — the property the
/// abort-storm harness's serial oracle relies on. Non-transactional
/// Execute calls bypass the lock table entirely; mixing them with open
/// transactions over the same objects is the caller's responsibility.
///
/// Commit forces the log through the kTxnCommit record (the durability
/// point). Rollback and abort records are never forced: a crashed
/// rollback is resumed by recovery from the last *stable* CLR's
/// undo-next-LSN, and re-running the lost suffix is idempotent.
class TxnManager {
 public:
  /// Registers with the engine (checkpoint truncation clamps at the
  /// oldest active transaction's begin LSN, and new txn ids continue
  /// above the highest id recovery saw on the log).
  explicit TxnManager(RecoveryEngine* engine);
  ~TxnManager();

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  /// Starts a transaction: logs kTxnBegin (not forced) and returns the id.
  Status Begin(TxnId* id);

  /// Executes one operation inside the transaction. On a lock conflict
  /// or an injected abort (fault::kTxnAbortInject) the transaction is
  /// rolled back and Aborted is returned — the id is then finished.
  /// Clean operation failures (validation, missing reads) leave the
  /// transaction active for the caller to continue or roll back.
  Status Execute(TxnId id, const OperationDesc& op, Lsn* lsn = nullptr);

  /// Durably commits: appends kTxnCommit and forces the log through it.
  /// fault::kTxnCommitTorn fires between append and force — the caller
  /// must treat the Aborted result as a crash (the commit record is
  /// volatile; recovery rolls the transaction back as a loser).
  Status Commit(TxnId id);

  /// Rolls the transaction back via logged compensation (CLRs). Aborted
  /// means a crash was injected mid-rollback; any other failure leaves
  /// the transaction active (rollback is re-runnable, and after a crash
  /// recovery finishes it).
  Status Rollback(TxnId id);

  bool active(TxnId id) const { return txns_.contains(id); }
  size_t active_count() const { return txns_.size(); }

  /// Begin LSN of the oldest active transaction (kMaxLsn when none):
  /// the checkpoint truncation floor.
  Lsn OldestActiveBeginLsn() const;

  const TxnManagerStats& stats() const { return stats_; }
  const TxnUndoStats& undo_stats() const { return undo_stats_; }

 private:
  struct Txn {
    Lsn begin_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;  // backchain head
    std::vector<TxnChainRecord> undo;
    std::set<ObjectId> read_locks;
    std::set<ObjectId> write_locks;
  };

  /// True when every lock `op` needs is free or already held by `id`.
  bool LocksAvailable(TxnId id, const OperationDesc& op) const;
  void GrabLocks(TxnId id, Txn* t, const OperationDesc& op);
  void ReleaseLocks(TxnId id, Txn* t);

  RecoveryEngine* engine_;
  std::map<TxnId, Txn> txns_;
  std::map<ObjectId, TxnId> write_locks_;
  std::map<ObjectId, std::set<TxnId>> read_locks_;
  TxnManagerStats stats_;
  TxnUndoStats undo_stats_;
};

}  // namespace loglog

#endif  // LOGLOG_ENGINE_TXN_MANAGER_H_
