#include "explain/explainability.h"

#include "ops/function_registry.h"

namespace loglog {

ExplainabilityChecker::ExplainabilityChecker(
    std::vector<OperationDesc> history,
    std::map<ObjectId, ObjectValue> initial)
    : history_(std::move(history)), initial_(std::move(initial)) {
  preds_.assign(history_.size(), {});
  for (size_t j = 0; j < history_.size(); ++j) {
    for (size_t i = 0; i < j; ++i) {
      // Read-write rule: an earlier reader installs before a later
      // writer of the same object.
      for (ObjectId r : history_[i].reads) {
        if (history_[j].WritesObject(r)) {
          preds_[j].insert(i);
          break;
        }
      }
    }
  }
  Precompute();
}

void ExplainabilityChecker::Precompute() {
  effects_.assign(history_.size(), {});
  is_delete_.assign(history_.size(), false);
  std::map<ObjectId, ObjectValue> state = initial_;
  for (size_t i = 0; i < history_.size(); ++i) {
    const OperationDesc& op = history_[i];
    if (op.op_class == OpClass::kDelete) {
      is_delete_[i] = true;
      state.erase(op.writes[0]);
      continue;
    }
    std::vector<ObjectValue> reads;
    for (ObjectId r : op.reads) reads.push_back(state[r]);
    std::vector<ObjectValue> writes(op.writes.size());
    for (size_t w = 0; w < op.writes.size(); ++w) {
      auto it = state.find(op.writes[w]);
      if (it != state.end()) writes[w] = it->second;
    }
    Status st = FunctionRegistry::Global().Apply(op, reads, &writes);
    if (!st.ok()) continue;  // malformed history: op has no effect
    for (size_t w = 0; w < op.writes.size(); ++w) {
      effects_[i][op.writes[w]] = writes[w];
      state[op.writes[w]] = writes[w];
    }
  }
}

bool ExplainabilityChecker::IsPrefixSet(
    const std::set<size_t>& index_set) const {
  for (size_t i : index_set) {
    for (size_t p : preds_[i]) {
      if (!index_set.contains(p)) return false;
    }
  }
  return true;
}

std::set<ObjectId> ExplainabilityChecker::ExposedBy(
    const std::set<size_t>& index_set) const {
  std::set<ObjectId> universe;
  for (const auto& [id, value] : initial_) universe.insert(id);
  for (const OperationDesc& op : history_) {
    for (ObjectId r : op.reads) universe.insert(r);
    for (ObjectId w : op.writes) universe.insert(w);
  }
  std::set<ObjectId> exposed;
  for (ObjectId x : universe) {
    bool outside_touches = false;
    bool minimal_reads = false;
    for (size_t i = 0; i < history_.size(); ++i) {
      if (index_set.contains(i)) continue;
      const OperationDesc& op = history_[i];
      if (op.ReadsObject(x) || op.WritesObject(x)) {
        outside_touches = true;
        minimal_reads = op.ReadsObject(x);
        break;  // earliest outside operation touching x
      }
    }
    if (!outside_touches || minimal_reads) exposed.insert(x);
  }
  return exposed;
}

std::map<ObjectId, ObjectValue> ExplainabilityChecker::StateAfter(
    const std::set<size_t>& index_set) const {
  std::map<ObjectId, ObjectValue> state = initial_;
  for (size_t i : index_set) {  // std::set iterates ascending
    if (is_delete_[i]) {
      state.erase(history_[i].writes[0]);
    } else {
      for (const auto& [id, value] : effects_[i]) state[id] = value;
    }
  }
  return state;
}

bool ExplainabilityChecker::Explains(
    const std::set<size_t>& index_set,
    const std::map<ObjectId, ObjectValue>& state) const {
  if (!IsPrefixSet(index_set)) return false;
  for (ObjectId x : ExposedBy(index_set)) {
    // Value after the last operation of I that writes x.
    bool written = false;
    bool deleted = false;
    const ObjectValue* value = nullptr;
    for (size_t i : index_set) {
      if (!history_[i].WritesObject(x)) continue;
      written = true;
      if (is_delete_[i]) {
        deleted = true;
        value = nullptr;
      } else {
        deleted = false;
        auto it = effects_[i].find(x);
        value = it == effects_[i].end() ? nullptr : &it->second;
      }
    }
    auto state_it = state.find(x);
    if (!written) {
      auto init_it = initial_.find(x);
      if (init_it == initial_.end()) {
        if (state_it != state.end()) return false;
      } else {
        if (state_it == state.end() || state_it->second != init_it->second) {
          return false;
        }
      }
      continue;
    }
    if (deleted) {
      if (state_it != state.end()) return false;
      continue;
    }
    if (value == nullptr || state_it == state.end() ||
        state_it->second != *value) {
      return false;
    }
  }
  return true;
}

std::optional<std::set<size_t>> ExplainabilityChecker::FindExplanation(
    const std::map<ObjectId, ObjectValue>& state) const {
  // DFS over downward-closed sets: predecessors always have smaller
  // indices (read-write edges point forward), so deciding indices in
  // order keeps closure checkable incrementally.
  std::set<size_t> current;
  std::optional<std::set<size_t>> found;
  // Prefer larger explanations first (include before exclude): the
  // leading-edge explanation is the most informative witness.
  auto dfs = [&](auto&& self, size_t next) -> bool {
    if (next == history_.size()) {
      if (Explains(current, state)) {
        found = current;
        return true;
      }
      return false;
    }
    bool preds_in = true;
    for (size_t p : preds_[next]) {
      if (!current.contains(p)) {
        preds_in = false;
        break;
      }
    }
    if (preds_in) {
      current.insert(next);
      if (self(self, next + 1)) return true;
      current.erase(next);
    }
    return self(self, next + 1);
  };
  dfs(dfs, 0);
  return found;
}

}  // namespace loglog
