#ifndef LOGLOG_EXPLAIN_EXPLAINABILITY_H_
#define LOGLOG_EXPLAIN_EXPLAINABILITY_H_

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ops/operation.h"

namespace loglog {

/// \brief Section 2 of the paper, executable: installation graphs,
/// prefix sets, exposed objects, and the "I explains S" relation.
///
/// This module is a direct transcription of the theory, independent of
/// the engine: histories are sequences of operations (conflict order =
/// sequence order), and the checker searches for a prefix set I of the
/// installation graph that explains a given state. It is exponential in
/// the worst case and meant for small histories — its role is to be an
/// *oracle*: tests feed it crash states produced by the real cache
/// manager and assert they are explainable, tying the implementation
/// back to the theorem it relies on.
class ExplainabilityChecker {
 public:
  /// `history` in conflict order; operations are applied through the
  /// global function registry starting from `initial` (missing objects
  /// start empty/nonexistent).
  ExplainabilityChecker(std::vector<OperationDesc> history,
                        std::map<ObjectId, ObjectValue> initial = {});

  /// Installation-graph edges (read-write rule): i -> j (i installs
  /// before j) iff i < j and readset(i) ∩ writeset(j) ≠ ∅.
  const std::vector<std::set<size_t>>& preds() const { return preds_; }

  /// True iff `index_set` is a prefix set: closed under installation
  /// predecessors.
  bool IsPrefixSet(const std::set<size_t>& index_set) const;

  /// Objects exposed by a prefix set I (Section 2): x is exposed iff no
  /// operation outside I touches x, or the earliest outside operation
  /// touching x reads it.
  std::set<ObjectId> ExposedBy(const std::set<size_t>& index_set) const;

  /// True iff the prefix set explains `state`: for every exposed object,
  /// the state's value equals the value after the last operation of I
  /// touching it (objects never written have their initial value;
  /// deleted objects must be absent).
  bool Explains(const std::set<size_t>& index_set,
                const std::map<ObjectId, ObjectValue>& state) const;

  /// Exhaustive search (over downward-closed sets) for any prefix set
  /// that explains `state`. Suitable for histories up to ~20 operations.
  std::optional<std::set<size_t>> FindExplanation(
      const std::map<ObjectId, ObjectValue>& state) const;

  /// The state after executing exactly the operations in `index_set`
  /// sequentially (used to build candidate states in tests).
  std::map<ObjectId, ObjectValue> StateAfter(
      const std::set<size_t>& index_set) const;

  size_t size() const { return history_.size(); }

 private:
  /// Value of every object after each prefix of the full history;
  /// versions_[i] = state after executing ops 0..i-1.
  void Precompute();

  std::vector<OperationDesc> history_;
  std::map<ObjectId, ObjectValue> initial_;
  std::vector<std::set<size_t>> preds_;
  /// For each op i: the value it wrote to each of its write objects.
  std::vector<std::map<ObjectId, ObjectValue>> effects_;
  /// Ops that deleted their object (effects_ entry absent means delete).
  std::vector<bool> is_delete_;
};

}  // namespace loglog

#endif  // LOGLOG_EXPLAIN_EXPLAINABILITY_H_
