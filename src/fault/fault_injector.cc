#include "fault/fault_injector.h"

#include "obs/blackbox.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace loglog {

namespace {

const char* ActionLabel(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kTransientIoError:
      return "transient_io_error";
    case FaultAction::kPermanentIoError:
      return "permanent_io_error";
    case FaultAction::kCrashNow:
      return "crash_now";
    case FaultAction::kBitFlip:
      return "bit_flip";
    case FaultAction::kTornWrite:
      return "torn_write";
    case FaultAction::kLostWrite:
      return "lost_write";
  }
  return "unknown";
}

}  // namespace

void FaultInjector::Arm(std::string_view site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.try_emplace(std::string(site));
  Site& s = it->second;
  if (!inserted && s.armed) --armed_count_;
  s.spec = spec;
  s.stats = FaultSiteStats{};
  s.rng = Random(spec.seed);
  s.armed = spec.action != FaultAction::kNone;
  if (s.armed) ++armed_count_;
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  --armed_count_;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site.armed = false;
  armed_count_ = 0;
}

bool FaultInjector::armed(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.armed;
}

FaultFire FaultInjector::Hit(std::string_view site) {
  // Fast path: no site anywhere is armed. A stale read here only delays
  // a concurrent Arm by one hit, which is indistinguishable from the Arm
  // landing a moment later.
  if (armed_count_.load(std::memory_order_relaxed) == 0) return {};
  FaultFire out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return {};
    Site& s = it->second;
    ++s.stats.hits;
    bool fire = false;
    bool disarm = false;
    switch (s.spec.trigger) {
      case FaultTrigger::kOneShot:
        fire = true;
        disarm = true;
        break;
      case FaultTrigger::kNthHit:
        fire = s.stats.hits == s.spec.n;
        disarm = fire;
        break;
      case FaultTrigger::kEveryK:
        fire = s.spec.n > 0 && s.stats.hits % s.spec.n == 0;
        break;
      case FaultTrigger::kProbabilistic:
        fire = s.rng.Uniform(100) < s.spec.percent;
        break;
    }
    if (!fire) return {};
    ++s.stats.fires;
    ++total_fires_;
    if (disarm ||
        (s.spec.max_fires > 0 && s.stats.fires >= s.spec.max_fires)) {
      s.armed = false;
      --armed_count_;
    }
    out.action = s.spec.action;
    out.rng = s.rng.Next();
  }
  // Outside the lock (both may take their own locks): mark the fire for
  // observers — a trace instant pins it to the moment in the timeline,
  // the counter to the run totals.
  MetricsRegistry::Global().GetCounter(metric::kFaultFires)->Inc();
  TraceRecorder::Global().AddInstant(
      "fault.fire", "fault",
      {{"site", std::string(site)}, {"action", ActionLabel(out.action)}});
  FlightRecorder& flight = FlightRecorder::Global();
  flight.Record(FlightEventType::kFaultFire, 0, flight.Intern(site),
                static_cast<uint64_t>(out.action));
  // Outside the lock: the callback may inspect the injector (armed(),
  // site_stats()) without deadlocking.
  if (out.action == FaultAction::kCrashNow ||
      out.action == FaultAction::kTornWrite) {
    // A crash-action fire is the black box's reason for existing: cut a
    // dump *before* the crash callback tears the engine down.
    BlackBoxAutoDump("fault-" + std::string(site));
    if (crash_cb_) crash_cb_(site);
  }
  return out;
}

Status FaultInjector::ErrorStatus(FaultAction action, std::string_view site) {
  std::string where(site);
  switch (action) {
    case FaultAction::kNone:
      return Status::OK();
    case FaultAction::kTransientIoError:
      return Status::IoError("fault[" + where + "]: transient I/O error");
    case FaultAction::kPermanentIoError:
      return Status::IoError("fault[" + where + "]: permanent I/O error");
    case FaultAction::kCrashNow:
      return Status::Aborted("fault[" + where + "]: crash");
    case FaultAction::kTornWrite:
      return Status::Aborted("fault[" + where + "]: torn write; crash");
    default:
      // Data-corruption actions at a pure error site degrade to an error.
      return Status::IoError("fault[" + where + "]: I/O error");
  }
}

Status FaultInjector::MaybeFail(std::string_view site) {
  return ErrorStatus(Hit(site).action, site);
}

void FaultInjector::FlipBit(uint64_t rng, std::vector<uint8_t>* data) {
  if (data == nullptr || data->empty()) return;
  uint64_t bit = rng % (data->size() * 8);
  (*data)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

FaultSiteStats FaultInjector::site_stats(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? FaultSiteStats{} : it->second.stats;
}

}  // namespace loglog
