#ifndef LOGLOG_FAULT_FAULT_INJECTOR_H_
#define LOGLOG_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace loglog {

/// Canonical fault-site names. Every layer that touches durable state
/// registers a hit at one of these sites before (or around) the touch;
/// the injector decides whether a fault fires there. The catalogue is
/// documented in EXPERIMENTS.md ("Fault-site catalogue").
namespace fault {
/// StableLogDevice::Append — a stable log force. Supports error actions,
/// kTornWrite (a prefix of the force becomes stable, then the device
/// demands a crash) and kCrashNow (force completes, then crash).
inline constexpr std::string_view kLogAppend = "log.append";
/// LogManager::Force — evaluated before the device append (models a
/// controller failure ahead of the media).
inline constexpr std::string_view kLogForce = "log.force";
/// StableStore::Read — cache-miss object reads. Error actions plus
/// kBitFlip (the returned copy is corrupted; the per-object checksum
/// turns it into a clean Corruption status).
inline constexpr std::string_view kStoreRead = "store.read";
/// StableStore::Write / Erase — single-object in-place writes. Error
/// actions, kLostWrite (acknowledged but not persisted), kBitFlip
/// (persisted bytes corrupted under a stale checksum) and kCrashNow.
inline constexpr std::string_view kStoreWrite = "store.write";
/// StableStore::WriteAtomic — multi-object installs. Error actions,
/// kTornWrite (only a prefix of the set lands — deliberately violates
/// the atomicity contract to test detection), kBitFlip, kLostWrite.
inline constexpr std::string_view kStoreWriteAtomic = "store.write_atomic";
/// CacheManager::InstallNode — after the WAL force, before any flush.
/// Crash window: recovery must redo the node's operations.
inline constexpr std::string_view kCmAfterWalForce = "cm.flush.after_wal_force";
/// Flush transaction — after the commit record is forced but before any
/// in-place write. Recovery must complete the transaction.
inline constexpr std::string_view kCmAfterFlushTxnCommit =
    "cm.flush_txn.after_commit";
/// Flush transaction — after the first in-place write. Recovery must
/// complete the remainder idempotently.
inline constexpr std::string_view kCmAfterFirstFlushTxnWrite =
    "cm.flush_txn.after_first_write";
/// Parallel REDO worker — hit once per connected component, from the
/// worker thread about to replay it (models a failure of the per-worker
/// I/O path: thread-local buffers, queue links to the device). Error
/// actions only; transient errors are retried by the worker, anything
/// else aborts recovery (which is idempotent and simply reruns).
inline constexpr std::string_view kRedoWorker = "redo.worker";
/// ReplicationChannel::Send — the frame path of the simulated replication
/// network. Error actions make the send fail visibly (the shipper treats
/// the connection as broken and resyncs from the acked watermark);
/// kLostWrite drops the frame silently (the standby detects the LSN gap
/// and NAKs); kBitFlip / kTornWrite deliver the frame damaged (the frame
/// CRC rejects it and the standby NAKs).
inline constexpr std::string_view kShipSend = "ship.channel.send";
/// ReplicationChannel::Send — delivery latency: any fire sleeps a
/// bounded, rng-drawn delay before the frame is queued.
inline constexpr std::string_view kShipDelay = "ship.channel.delay";
/// ReplicationChannel::Send — any fire delivers the frame twice; the
/// standby's applied-LSN watermark must make the duplicate a no-op.
inline constexpr std::string_view kShipDuplicate = "ship.channel.duplicate";
/// TxnManager::Execute — hit once per in-transaction operation, before
/// the operation runs. Any fire aborts the transaction (the operation is
/// not executed); the abort-storm harness uses it to inject aborts at
/// random depths. Error actions only make sense here as "abort now".
inline constexpr std::string_view kTxnAbortInject = "txn.abort.inject";
/// TxnManager rollback — hit before each compensation record is logged
/// (both runtime Rollback and the recovery loser pass). kCrashNow crashes
/// between CLRs; recovery must resume the rollback from the last stable
/// CLR's undo-next-LSN without double-compensating.
inline constexpr std::string_view kTxnRollbackCrash = "txn.rollback.crash";
/// TxnManager::Commit — hit after the commit record is appended, before
/// it is forced. A fire crashes with the commit record volatile: the
/// transaction must come back as a loser and be rolled back.
inline constexpr std::string_view kTxnCommitTorn = "txn.commit.torn";
/// ColdTier::Read — log-as-database reads that miss the hot retained log
/// and fall through to a spilled cold segment. Error actions surface as
/// clean IoErrors to the read path; kBitFlip corrupts the returned copy
/// only (the record framing CRC turns it into a Corruption status).
inline constexpr std::string_view kColdTierRead = "logstore.cold.read";
}  // namespace fault

/// What happens when an armed site triggers.
enum class FaultAction : uint8_t {
  kNone = 0,
  /// The I/O fails with Status::IoError but a re-issue may succeed (the
  /// trigger policy decides when the site stops firing).
  kTransientIoError,
  /// The I/O fails with Status::IoError on every trigger; callers must
  /// surface it as a clean error after bounded retries.
  kPermanentIoError,
  /// The process "crashes" at the site: the crash callback is invoked and
  /// the call returns Status::Aborted *after* the site's stable side
  /// effects, exactly as a real crash at that instant would leave the
  /// disk. The caller is expected to tear the engine down.
  kCrashNow,
  /// Payload corruption: one deterministically chosen bit of the data at
  /// the site is flipped (stored bytes at write sites, the returned copy
  /// at read sites). Detection is the checksum layer's job.
  kBitFlip,
  /// Multi-part write torn mid-way: only a prefix becomes stable, then
  /// the site behaves like kCrashNow.
  kTornWrite,
  /// The device acknowledges the write but persists nothing.
  kLostWrite,
};

/// When an armed site triggers.
enum class FaultTrigger : uint8_t {
  /// Fire on the next hit, then disarm.
  kOneShot,
  /// Fire on the n-th hit (1-based) only, then disarm.
  kNthHit,
  /// Fire on every k-th hit (k == 1 fires always) until max_fires.
  kEveryK,
  /// Fire with `percent`% probability per hit (seeded, deterministic)
  /// until max_fires.
  kProbabilistic,
};

/// A fault armed at one site: what happens and when.
struct FaultSpec {
  FaultAction action = FaultAction::kNone;
  FaultTrigger trigger = FaultTrigger::kOneShot;
  /// kNthHit: the hit ordinal that fires. kEveryK: the period.
  uint64_t n = 1;
  /// kProbabilistic: firing probability per hit, in percent.
  uint32_t percent = 100;
  /// kEveryK / kProbabilistic: stop (disarm) after this many fires
  /// (0 = unlimited).
  uint64_t max_fires = 0;
  /// Seeds the site's private RNG (probabilistic decisions, tear sizes,
  /// bit indices), so a (seed, workload) pair reproduces the fault.
  uint64_t seed = 0x5eed;

  // Common shapes, named for readability at call sites.
  static FaultSpec TransientOnce() {
    return {FaultAction::kTransientIoError, FaultTrigger::kOneShot};
  }
  /// Error-then-succeed: the first `times` hits fail, then the site is
  /// exhausted and every later hit succeeds.
  static FaultSpec TransientTimes(uint64_t times) {
    FaultSpec s;
    s.action = FaultAction::kTransientIoError;
    s.trigger = FaultTrigger::kEveryK;
    s.n = 1;
    s.max_fires = times;
    return s;
  }
  static FaultSpec Permanent() {
    FaultSpec s;
    s.action = FaultAction::kPermanentIoError;
    s.trigger = FaultTrigger::kEveryK;
    s.n = 1;
    return s;
  }
  static FaultSpec CrashOnce() {
    return {FaultAction::kCrashNow, FaultTrigger::kOneShot};
  }
  static FaultSpec CrashOnHit(uint64_t nth) {
    FaultSpec s;
    s.action = FaultAction::kCrashNow;
    s.trigger = FaultTrigger::kNthHit;
    s.n = nth;
    return s;
  }
  static FaultSpec BitFlipOnce(uint64_t seed) {
    FaultSpec s;
    s.action = FaultAction::kBitFlip;
    s.seed = seed;
    return s;
  }
  static FaultSpec TornOnce(uint64_t seed) {
    FaultSpec s;
    s.action = FaultAction::kTornWrite;
    s.seed = seed;
    return s;
  }
  static FaultSpec LostOnce() {
    return {FaultAction::kLostWrite, FaultTrigger::kOneShot};
  }
  static FaultSpec Probabilistic(FaultAction action, uint32_t percent,
                                 uint64_t seed, uint64_t max_fires = 0) {
    FaultSpec s;
    s.action = action;
    s.trigger = FaultTrigger::kProbabilistic;
    s.percent = percent;
    s.max_fires = max_fires;
    s.seed = seed;
    return s;
  }
};

/// The outcome of registering a hit at a site.
struct FaultFire {
  FaultAction action = FaultAction::kNone;
  /// Deterministic per-fire randomness for the call site (tear sizes,
  /// bit indices) drawn from the site's seeded RNG.
  uint64_t rng = 0;

  explicit operator bool() const { return action != FaultAction::kNone; }
};

/// Hit/fire counters of one site (kept after disarm, reset on re-Arm).
struct FaultSiteStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// \brief Central registry of named fault sites.
///
/// Owned by the SimulatedDisk so armed faults — like the disk itself —
/// survive simulated crashes. Layers register hits; trigger policies
/// decide when a hit becomes a fire; actions say what the layer does
/// about it. All decisions are seeded and deterministic, so a
/// (seed, workload, armed-spec) triple reproduces a failure exactly.
///
/// Thread-safe: parallel-REDO workers hit store/worker sites
/// concurrently, so all site state is mutex-guarded (with a lock-free
/// nothing-armed fast path). The crash callback is invoked *outside* the
/// lock and must therefore tolerate concurrent invocations; it must not
/// re-enter Arm/Disarm for the firing site.
class FaultInjector {
 public:
  using CrashCallback = std::function<void(std::string_view site)>;

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms, resetting counters) a fault at `site`.
  void Arm(std::string_view site, FaultSpec spec);
  /// Disarms `site`; its counters remain readable. No-op if not armed.
  void Disarm(std::string_view site);
  void DisarmAll();
  bool armed(std::string_view site) const;

  /// Registers a hit at `site` and decides whether a fault fires now.
  /// Cheap (one branch) when nothing is armed anywhere.
  FaultFire Hit(std::string_view site);

  /// Hit() for pure error sites: kNone maps to OK, transient/permanent
  /// errors to IoError, kCrashNow to the crash callback plus Aborted.
  /// Data actions make no sense at such sites and map to IoError too.
  Status MaybeFail(std::string_view site);

  /// Builds the Status for an error-action fire at `site` (shared by the
  /// layers that must interleave the fire with their own side effects).
  static Status ErrorStatus(FaultAction action, std::string_view site);

  /// Flips one deterministically chosen bit of `data` (no-op if empty).
  static void FlipBit(uint64_t rng, std::vector<uint8_t>* data);

  /// Invoked whenever a kCrashNow (or kTornWrite) fault fires, before the
  /// site returns Aborted. Purely observational: the Aborted status is
  /// what propagates; harnesses use the callback to count or to stage
  /// the teardown.
  void set_crash_callback(CrashCallback cb) { crash_cb_ = std::move(cb); }

  uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  size_t armed_count() const {
    return armed_count_.load(std::memory_order_relaxed);
  }
  FaultSiteStats site_stats(std::string_view site) const;

 private:
  struct Site {
    FaultSpec spec;
    FaultSiteStats stats;
    Random rng{0};
    bool armed = false;
  };

  mutable std::mutex mu_;
  std::map<std::string, Site, std::less<>> sites_;
  CrashCallback crash_cb_;
  std::atomic<uint64_t> total_fires_ = 0;
  /// Atomic so Hit()'s nothing-armed fast path skips the lock.
  std::atomic<size_t> armed_count_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_FAULT_FAULT_INJECTOR_H_
