#include "graph/batch_write_graph.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace loglog {

namespace {

/// Union-find over operation indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

size_t BatchWriteGraph::NodeOf(size_t op_index) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].ops.contains(op_index)) return i;
  }
  return nodes.size();
}

BatchWriteGraph ComputeBatchW(const std::vector<PendingOp>& ops) {
  const size_t n = ops.size();

  // First collapse: T = transitive closure of writeset intersection,
  // realized as connected components over shared written objects.
  UnionFind uf(n);
  std::unordered_map<ObjectId, size_t> writer_of;
  for (size_t i = 0; i < n; ++i) {
    for (ObjectId w : ops[i].writes) {
      auto [it, fresh] = writer_of.try_emplace(w, i);
      if (!fresh) uf.Union(i, it->second);
    }
  }

  // Installation-graph read-write edges, lifted to T-classes.
  std::unordered_map<size_t, size_t> class_index;  // root -> dense id
  std::vector<std::set<size_t>> class_ops;
  for (size_t i = 0; i < n; ++i) {
    size_t root = uf.Find(i);
    auto [it, fresh] = class_index.try_emplace(root, class_ops.size());
    if (fresh) class_ops.emplace_back();
    class_ops[it->second].insert(i);
  }
  size_t m = class_ops.size();
  std::vector<std::set<size_t>> succs(m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // i read something j writes: i's class installs before j's class.
      bool edge = false;
      for (ObjectId r : ops[i].reads) {
        if (std::find(ops[j].writes.begin(), ops[j].writes.end(), r) !=
            ops[j].writes.end()) {
          edge = true;
          break;
        }
      }
      if (!edge) continue;
      size_t ci = class_index.at(uf.Find(i));
      size_t cj = class_index.at(uf.Find(j));
      if (ci != cj) succs[ci].insert(cj);
    }
  }

  // Second collapse: strongly connected components (iterative Tarjan).
  std::vector<int> index(m, -1), lowlink(m, 0);
  std::vector<bool> on_stack(m, false);
  std::vector<size_t> stack;
  std::vector<size_t> scc_of(m, m);
  size_t scc_count = 0;
  int counter = 0;
  struct Frame {
    size_t v;
    std::vector<size_t> next;
    size_t i = 0;
  };
  for (size_t root = 0; root < m; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({root, {succs[root].begin(), succs[root].end()}, 0});
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.i < f.next.size()) {
        size_t w = f.next[f.i++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, {succs[w].begin(), succs[w].end()}, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc_of[w] = scc_count;
            if (w == f.v) break;
          }
          ++scc_count;
        }
        size_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }

  BatchWriteGraph out;
  out.nodes.resize(scc_count);
  for (size_t c = 0; c < m; ++c) {
    BatchWriteGraph::Node& node = out.nodes[scc_of[c]];
    for (size_t op : class_ops[c]) {
      node.ops.insert(op);
      for (ObjectId w : ops[op].writes) node.vars.insert(w);
    }
  }
  for (size_t c = 0; c < m; ++c) {
    for (size_t d : succs[c]) {
      if (scc_of[c] != scc_of[d]) {
        out.nodes[scc_of[c]].succs.insert(scc_of[d]);
      }
    }
  }
  return out;
}

}  // namespace loglog
