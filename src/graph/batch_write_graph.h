#ifndef LOGLOG_GRAPH_BATCH_WRITE_GRAPH_H_
#define LOGLOG_GRAPH_BATCH_WRITE_GRAPH_H_

#include <set>
#include <vector>

#include "graph/pending_op.h"

namespace loglog {

/// \brief Figure 3's WriteGraph(In), computed verbatim as a batch.
///
/// Given the uninstalled operations (conflict order = vector order), this
/// performs the two collapses exactly as the paper writes them:
///   1. T := transitive closure of O ~ P iff writeset(O) ∩ writeset(P)
///      ≠ ∅; collapse the installation graph by T's equivalence classes.
///   2. Collapse the result's strongly connected components to make it
///      acyclic.
/// The incremental WriteGraphW used by the cache manager must produce
/// exactly this partition and reachability — a differential test holds
/// the two against each other.
struct BatchWriteGraph {
  struct Node {
    std::set<size_t> ops;      // indices into the input vector
    std::set<ObjectId> vars;   // union of writesets
    std::set<size_t> succs;    // edges by node index
  };
  std::vector<Node> nodes;

  /// Index of the node containing operation `op_index`.
  size_t NodeOf(size_t op_index) const;
};

/// Computes W per Figure 3 from `ops` (in conflict order). Installation
/// edges are the read-write edges (strategy 2 of Section 2 needs no
/// write-write edges: history is repeated, never reset).
BatchWriteGraph ComputeBatchW(const std::vector<PendingOp>& ops);

}  // namespace loglog

#endif  // LOGLOG_GRAPH_BATCH_WRITE_GRAPH_H_
