#ifndef LOGLOG_GRAPH_PENDING_OP_H_
#define LOGLOG_GRAPH_PENDING_OP_H_

#include <vector>

#include "common/types.h"
#include "ops/operation.h"

namespace loglog {

/// \brief The view of an operation the write-graph machinery needs: its
/// log position and its read/write sets, with the exposed/blind partition
/// of the writeset precomputed (Table 1's exp/notexp).
struct PendingOp {
  Lsn lsn = kInvalidLsn;
  std::vector<ObjectId> reads;
  std::vector<ObjectId> writes;
  /// exp(Op) = writes ∩ reads.
  std::vector<ObjectId> exposed;
  /// notexp(Op) = writes − reads.
  std::vector<ObjectId> blind;

  static PendingOp FromDesc(Lsn lsn, const OperationDesc& desc) {
    PendingOp p;
    p.lsn = lsn;
    p.reads = desc.reads;
    p.writes = desc.writes;
    p.exposed = desc.Exposed();
    p.blind = desc.NotExposed();
    return p;
  }
};

}  // namespace loglog

#endif  // LOGLOG_GRAPH_PENDING_OP_H_
