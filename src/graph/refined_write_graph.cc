#include "graph/refined_write_graph.h"

#include <algorithm>
#include <set>
#include <vector>

namespace loglog {

void RefinedWriteGraph::AddOperation(const PendingOp& op) {
  // Merge step of addop_rW: nodes whose vars intersect exp(Op) must be
  // installed together with Op, because Op's updates of those objects
  // depend on their previous values.
  std::set<NodeId> to_merge;
  for (ObjectId x : op.exposed) {
    NodeId owner = NodeOwningVar(x);
    if (owner != kNoNode) to_merge.insert(owner);
  }
  NodeId m = NewNode();
  for (NodeId n : to_merge) MergeInto(m, n);

  // Read-write edges: earlier uninstalled readers of objects Op writes
  // install before m ({<p,m> | Reads(p) ∩ writeset(Op) ≠ ∅} in Fig 6).
  for (ObjectId x : op.writes) {
    for (Lsn reader : ObjState(x).readers) {
      NodeId q = NodeOfOp(reader);
      if (q != kNoNode && q != m) {
        AddEdge(q, m);
        ++stats_.rw_edges;
      }
    }
  }

  // Blind-write step: remove notexp(Op) objects from other nodes' vars.
  // Those values become unexposed — recovery can regenerate the objects
  // from Op's log record, so installing the old writers no longer needs
  // to flush them.
  for (ObjectId x : op.blind) {
    NodeId p = NodeOwningVar(x);
    if (p == kNoNode || p == m) continue;
    GraphNode& pn = Node(p);
    pn.vars.erase(x);
    pn.notx.insert(x);
    // p now installs without flushing x; recovery regenerates x from
    // *this* operation's record, so p's installation force must cover it.
    pn.notx_force_lsn = std::max(pn.notx_force_lsn, op.lsn);
    ObjState(x).vars_owner = kNoNode;  // m takes ownership below
    ++stats_.vars_removed;

    // Write-write conflict: Op must install after the ops of p that wrote
    // x (Op is in must(op) for some op in ops(p)).
    AddEdge(p, m);
    ++stats_.ww_edges;

    // Inverse write-read edges: any node q that read Lastw(p, x) must be
    // installed before p, so that when p installs without flushing x, no
    // uninstalled operation still needs x's old value. If q == m this
    // creates a p↔m cycle, and Normalize() collapses it — exactly the
    // paper's prescription.
    for (Lsn reader : ObjState(x).readers_of_last_write) {
      NodeId q = NodeOfOp(reader);
      if (q != kNoNode && q != p) {
        AddEdge(q, p);
        ++stats_.inverse_wr_edges;
      }
    }
  }

  TrackOp(op, m);
  GraphNode& node = Node(m);
  for (ObjectId x : op.writes) {
    node.vars.insert(x);
    node.notx.erase(x);
    ObjState(x).vars_owner = m;
  }
}

}  // namespace loglog
