#ifndef LOGLOG_GRAPH_REFINED_WRITE_GRAPH_H_
#define LOGLOG_GRAPH_REFINED_WRITE_GRAPH_H_

#include "graph/write_graph.h"

namespace loglog {

/// \brief The refined write graph rW (Figure 6, procedure addop_rW) — the
/// paper's central contribution.
///
/// Differences from W:
///  - Nodes merge only when the new operation's *exposed* objects
///    (exp(Op) = writeset ∩ readset) intersect a node's vars. Blind
///    writes do not coalesce nodes.
///  - A blind write of X *removes* X from the vars of the node p that
///    owned it: X joins Notx(p) and no longer needs to be flushed to
///    install ops(p) — its last value became unexposed. A write-write
///    edge p→m keeps installation order, and inverse write-read edges
///    q→p (from nodes that read Lastw(p,X)) guarantee X really is
///    unexposed by the time p installs.
///  - Cycles can still arise (e.g. the §4 sequence Y=f(X,Y); X=g(Y);
///    Y=h(Y)); the shared Normalize() collapses them, after which the
///    cache manager may break multi-object flush sets up with identity
///    writes instead of flushing atomically.
class RefinedWriteGraph : public WriteGraph {
 public:
  void AddOperation(const PendingOp& op) override;
  const char* Kind() const override { return "rW"; }
};

}  // namespace loglog

#endif  // LOGLOG_GRAPH_REFINED_WRITE_GRAPH_H_
