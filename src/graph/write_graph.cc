#include "graph/write_graph.h"

#include <algorithm>
#include <cassert>

namespace loglog {

NodeId WriteGraph::NewNode() {
  NodeId id = next_node_id_++;
  GraphNode& n = nodes_[id];
  n.id = id;
  return id;
}

GraphNode& WriteGraph::Node(NodeId id) {
  auto it = nodes_.find(id);
  assert(it != nodes_.end());
  return it->second;
}

void WriteGraph::AddEdge(NodeId from, NodeId to) {
  if (from == to || from == kNoNode || to == kNoNode) return;
  Node(from).succs.insert(to);
  Node(to).preds.insert(from);
  dirty_ = true;
}

void WriteGraph::MergeInto(NodeId dst, NodeId src) {
  if (dst == src) return;
  GraphNode& d = Node(dst);
  GraphNode& s = Node(src);
  ++stats_.merges;
  for (Lsn lsn : s.ops) {
    d.ops.insert(lsn);
    op_node_[lsn] = dst;
  }
  for (ObjectId x : s.vars) {
    d.vars.insert(x);
    objects_[x].vars_owner = dst;
  }
  for (ObjectId x : s.notx) d.notx.insert(x);
  // vars wins over notx inside one node.
  for (ObjectId x : d.vars) d.notx.erase(x);
  d.notx_force_lsn = std::max(d.notx_force_lsn, s.notx_force_lsn);
  for (NodeId t : s.succs) {
    Node(t).preds.erase(src);
    if (t != dst) {
      d.succs.insert(t);
      Node(t).preds.insert(dst);
    }
  }
  for (NodeId f : s.preds) {
    Node(f).succs.erase(src);
    if (f != dst) {
      d.preds.insert(f);
      Node(f).succs.insert(dst);
    }
  }
  nodes_.erase(src);
  dirty_ = true;
}

void WriteGraph::TrackOp(const PendingOp& op, NodeId node) {
  ++stats_.ops_added;
  pending_ops_[op.lsn] = op;
  op_node_[op.lsn] = node;
  Node(node).ops.insert(op.lsn);
  for (ObjectId r : op.reads) {
    ObjectState& st = objects_[r];
    st.readers.insert(op.lsn);
    st.readers_of_last_write.insert(op.lsn);
  }
  for (ObjectId w : op.writes) {
    ObjectState& st = objects_[w];
    st.writers.insert(op.lsn);
    // This op's write creates a fresh value with no readers yet. (If the
    // op also reads w — exposed — it read the *previous* value, which
    // lives in the same node after merging, so dropping it is safe.)
    st.readers_of_last_write.clear();
  }
}

void WriteGraph::Normalize() {
  if (!dirty_) return;
  dirty_ = false;
  // Iterative Tarjan SCC; collapse components of size > 1 (the second
  // collapse of Figure 3, applied equally to rW per Section 3).
  std::unordered_map<NodeId, int> index, lowlink;
  std::unordered_map<NodeId, bool> on_stack;
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> components;
  int counter = 0;

  struct Frame {
    NodeId v;
    std::vector<NodeId> succs;
    size_t next = 0;
  };

  std::vector<NodeId> all;
  all.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) all.push_back(id);

  for (NodeId root : all) {
    if (index.contains(root)) continue;
    std::vector<Frame> frames;
    frames.push_back({root,
                      {Node(root).succs.begin(), Node(root).succs.end()},
                      0});
    index[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next < f.succs.size()) {
        NodeId w = f.succs[f.next++];
        if (!index.contains(w)) {
          index[w] = lowlink[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back(
              {w, {Node(w).succs.begin(), Node(w).succs.end()}, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        if (lowlink[f.v] == index[f.v]) {
          std::vector<NodeId> comp;
          while (true) {
            NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp.push_back(w);
            if (w == f.v) break;
          }
          if (comp.size() > 1) components.push_back(std::move(comp));
        }
        NodeId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
      }
    }
  }

  for (const std::vector<NodeId>& comp : components) {
    ++stats_.cycle_collapses;
    stats_.cycle_nodes_merged += comp.size();
    NodeId dst = comp[0];
    for (size_t i = 1; i < comp.size(); ++i) MergeInto(dst, comp[i]);
  }
  dirty_ = false;  // MergeInto re-set it; the result is acyclic.
}

NodeId WriteGraph::MinimalNode() {
  Normalize();
  NodeId best = kNoNode;
  Lsn best_lsn = kMaxLsn;
  for (const auto& [id, n] : nodes_) {
    if (!n.preds.empty()) continue;
    if (n.MinOpLsn() < best_lsn) {
      best_lsn = n.MinOpLsn();
      best = id;
    }
  }
  return best;
}

std::vector<NodeId> WriteGraph::MinimalNodes() {
  Normalize();
  std::vector<NodeId> out;
  for (const auto& [id, n] : nodes_) {
    if (n.preds.empty()) out.push_back(id);
  }
  return out;
}

Status WriteGraph::RemoveNode(NodeId id, InstallResult* result) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("no such node");
  GraphNode& n = it->second;
  if (!n.preds.empty()) {
    return Status::FailedPrecondition(
        "cannot install a node with uninstalled predecessors");
  }
  result->installed_ops.assign(n.ops.begin(), n.ops.end());
  result->flush_objects.assign(n.vars.begin(), n.vars.end());
  result->unflushed_objects.assign(n.notx.begin(), n.notx.end());

  for (Lsn lsn : n.ops) {
    const PendingOp& op = pending_ops_.at(lsn);
    for (ObjectId r : op.reads) {
      auto oit = objects_.find(r);
      if (oit != objects_.end()) {
        oit->second.readers.erase(lsn);
        oit->second.readers_of_last_write.erase(lsn);
      }
    }
    for (ObjectId w : op.writes) {
      auto oit = objects_.find(w);
      if (oit != objects_.end()) oit->second.writers.erase(lsn);
    }
    op_node_.erase(lsn);
    pending_ops_.erase(lsn);
  }
  for (ObjectId x : n.vars) {
    ObjectState& st = objects_[x];
    if (st.vars_owner == id) st.vars_owner = kNoNode;
  }
  for (NodeId s : n.succs) Node(s).preds.erase(id);
  nodes_.erase(it);

  // Garbage-collect empty object states.
  for (auto oit = objects_.begin(); oit != objects_.end();) {
    const ObjectState& st = oit->second;
    if (st.readers.empty() && st.writers.empty() &&
        st.readers_of_last_write.empty() && st.vars_owner == kNoNode) {
      oit = objects_.erase(oit);
    } else {
      ++oit;
    }
  }
  return Status::OK();
}

NodeId WriteGraph::NodeOwningVar(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? kNoNode : it->second.vars_owner;
}

NodeId WriteGraph::NodeOfOp(Lsn lsn) const {
  auto it = op_node_.find(lsn);
  return it == op_node_.end() ? kNoNode : it->second;
}

Lsn WriteGraph::FirstUninstalledWriter(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end() || it->second.writers.empty()) return kInvalidLsn;
  return *it->second.writers.begin();
}

bool WriteGraph::HasUninstalledReader(ObjectId id) const {
  auto it = objects_.find(id);
  return it != objects_.end() && !it->second.readers.empty();
}

std::vector<NodeId> WriteGraph::InstallClosure(NodeId id) {
  Normalize();
  // Gather the node and all transitive predecessors.
  std::set<NodeId> need;
  std::vector<NodeId> work = {id};
  while (!work.empty()) {
    NodeId v = work.back();
    work.pop_back();
    if (!need.insert(v).second) continue;
    for (NodeId p : Node(v).preds) work.push_back(p);
  }
  // Kahn topological order within the subgraph (predecessors first).
  std::map<NodeId, size_t> degree;
  for (NodeId v : need) {
    size_t d = 0;
    for (NodeId p : Node(v).preds) {
      if (need.contains(p)) ++d;
    }
    degree[v] = d;
  }
  std::vector<NodeId> order;
  std::vector<NodeId> ready;
  for (const auto& [v, d] : degree) {
    if (d == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    NodeId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (NodeId s : Node(v).succs) {
      auto dit = degree.find(s);
      if (dit != degree.end() && --dit->second == 0) ready.push_back(s);
    }
  }
  assert(order.size() == need.size());
  return order;
}

const GraphNode* WriteGraph::Find(NodeId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

Status WriteGraph::CheckInvariants() {
  Normalize();
  std::unordered_map<ObjectId, NodeId> seen_vars;
  for (const auto& [id, n] : nodes_) {
    for (ObjectId x : n.vars) {
      if (seen_vars.contains(x)) {
        return Status::Corruption("object in vars of two nodes");
      }
      seen_vars[x] = id;
      auto oit = objects_.find(x);
      if (oit == objects_.end() || oit->second.vars_owner != id) {
        return Status::Corruption("vars_owner out of sync");
      }
    }
    for (ObjectId x : n.notx) {
      if (n.vars.contains(x)) {
        return Status::Corruption("object both vars and notx in one node");
      }
    }
    for (NodeId s : n.succs) {
      const GraphNode* sn = Find(s);
      if (sn == nullptr || !sn->preds.contains(id)) {
        return Status::Corruption("asymmetric edge");
      }
    }
    for (Lsn lsn : n.ops) {
      auto oit = op_node_.find(lsn);
      if (oit == op_node_.end() || oit->second != id) {
        return Status::Corruption("op_node out of sync");
      }
    }
  }
  // Acyclicity: Kahn over the whole graph must consume every node.
  std::map<NodeId, size_t> degree;
  std::vector<NodeId> ready;
  for (const auto& [id, n] : nodes_) {
    degree[id] = n.preds.size();
    if (n.preds.empty()) ready.push_back(id);
  }
  size_t seen = 0;
  while (!ready.empty()) {
    NodeId v = ready.back();
    ready.pop_back();
    ++seen;
    for (NodeId s : Node(v).succs) {
      if (--degree[s] == 0) ready.push_back(s);
    }
  }
  if (seen != nodes_.size()) {
    return Status::Corruption("write graph has a cycle after Normalize");
  }
  return Status::OK();
}

std::string WriteGraph::DebugString() const {
  std::string out = std::string(Kind()) + " nodes=" +
                    std::to_string(nodes_.size()) + "\n";
  for (const auto& [id, n] : nodes_) {
    out += "  node " + std::to_string(id) + ": ops={";
    for (Lsn lsn : n.ops) out += std::to_string(lsn) + ",";
    out += "} vars={";
    for (ObjectId x : n.vars) out += std::to_string(x) + ",";
    out += "} notx={";
    for (ObjectId x : n.notx) out += std::to_string(x) + ",";
    out += "} preds={";
    for (NodeId p : n.preds) out += std::to_string(p) + ",";
    out += "} succs={";
    for (NodeId s : n.succs) out += std::to_string(s) + ",";
    out += "}\n";
  }
  return out;
}

}  // namespace loglog
