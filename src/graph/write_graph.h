#ifndef LOGLOG_GRAPH_WRITE_GRAPH_H_
#define LOGLOG_GRAPH_WRITE_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "graph/pending_op.h"

namespace loglog {

/// Identifier of a write-graph node.
using NodeId = uint64_t;
inline constexpr NodeId kNoNode = 0;

/// \brief A write-graph node.
///
/// Objects in vars(n) must be flushed (atomically, as one set) to install
/// the operations in ops(n). In the refined graph rW, Writes(n) may exceed
/// vars(n): the difference Notx(n) holds objects whose last values became
/// unexposed — they are *installed* by the flush without being written.
struct GraphNode {
  NodeId id = kNoNode;
  /// Uninstalled operations associated with the node (ascending LSN).
  std::set<Lsn> ops;
  /// Objects that must be flushed to install ops — vars(n).
  std::set<ObjectId> vars;
  /// Unexposed written objects — Notx(n) = Writes(n) − vars(n).
  std::set<ObjectId> notx;
  /// Edges: this node must be installed before each successor.
  std::set<NodeId> succs;
  std::set<NodeId> preds;
  /// Highest LSN of a blind write that peeled an object off vars into
  /// notx. Installing this node relies on those records to regenerate
  /// the unexposed values, so the WAL force at installation must cover
  /// them too — forcing only MaxOpLsn() would let a crash lose the
  /// regenerating record while the peeled object's stale value is
  /// already "installed" and unrecoverable.
  Lsn notx_force_lsn = kInvalidLsn;

  Lsn MinOpLsn() const { return ops.empty() ? kMaxLsn : *ops.begin(); }
  Lsn MaxOpLsn() const { return ops.empty() ? kInvalidLsn : *ops.rbegin(); }
};

/// What installing (removing) a node means for the cache manager.
struct InstallResult {
  /// Operations installed, ascending LSN.
  std::vector<Lsn> installed_ops;
  /// Objects that must be flushed atomically (vars(n)).
  std::vector<ObjectId> flush_objects;
  /// Objects installed without flushing (Notx(n)); they stay dirty.
  std::vector<ObjectId> unflushed_objects;
};

/// Construction/installation counters for the experiments on graph shape.
struct GraphStats {
  uint64_t ops_added = 0;
  uint64_t merges = 0;            // first-collapse node merges
  uint64_t cycle_collapses = 0;   // SCCs of size > 1 collapsed
  uint64_t cycle_nodes_merged = 0;
  uint64_t ww_edges = 0;          // write-write edges added (rW step 4)
  uint64_t inverse_wr_edges = 0;  // inverse write-read edges (rW step 4)
  uint64_t rw_edges = 0;          // read-write edges
  uint64_t vars_removed = 0;      // objects peeled off vars by blind writes
};

/// \brief Common machinery for the write graph `W` (Figure 3) and the
/// refined write graph `rW` (Figure 6).
///
/// Tracks, per object, the uninstalled readers/writers and the readers of
/// the last write (Lastw), from which both graphs derive their edges.
/// Subclasses implement AddOperation; installation (PurgeCache's removal
/// of a minimal node) is shared.
class WriteGraph {
 public:
  virtual ~WriteGraph() = default;

  /// Incorporates a newly logged, uninstalled operation.
  virtual void AddOperation(const PendingOp& op) = 0;

  /// Human-readable kind, for stats output.
  virtual const char* Kind() const = 0;

  /// Makes the graph acyclic by collapsing strongly connected components
  /// (the second collapse of Figure 3). Idempotent.
  void Normalize();

  /// A node with no predecessors (after Normalize), deterministically the
  /// one containing the oldest operation; kNoNode if the graph is empty.
  NodeId MinimalNode();

  /// All minimal nodes (after Normalize).
  std::vector<NodeId> MinimalNodes();

  /// Installs the operations of a minimal node: removes the node and all
  /// bookkeeping for its ops. Caller must have flushed vars(n) (or be
  /// PurgeCache about to). Fails if the node has predecessors.
  Status RemoveNode(NodeId id, InstallResult* result);

  /// Node whose vars contain `id`, or kNoNode.
  NodeId NodeOwningVar(ObjectId id) const;

  /// Node containing operation `lsn`, or kNoNode.
  NodeId NodeOfOp(Lsn lsn) const;

  /// LSN of the earliest uninstalled operation writing `id`, or
  /// kInvalidLsn if none: exactly the object's rSI after its current
  /// writers install (Section 5).
  Lsn FirstUninstalledWriter(ObjectId id) const;

  /// True while any uninstalled operation has read `id`. A new writer of
  /// the object must not install ahead of such readers (the rW edge
  /// discipline); out-of-graph writers — the log-store compactor's W_IP
  /// rewrites — consult this to stay within it.
  bool HasUninstalledReader(ObjectId id) const;

  /// The node and all its (transitive) predecessors in installation order
  /// (predecessors first) — what must be installed to get `id` flushed.
  std::vector<NodeId> InstallClosure(NodeId id);

  const GraphNode* Find(NodeId id) const;
  bool empty() const { return nodes_.empty(); }
  size_t node_count() const { return nodes_.size(); }
  size_t op_count() const { return op_node_.size(); }

  const GraphStats& stats() const { return stats_; }

  /// Checks structural invariants (unique vars owner, edge symmetry,
  /// acyclicity after Normalize). Test/debug use.
  Status CheckInvariants();

  std::string DebugString() const;

 protected:
  struct ObjectState {
    /// Uninstalled ops that read the object (read-write edge sources).
    std::set<Lsn> readers;
    /// Uninstalled ops that write the object (rSI bookkeeping).
    std::set<Lsn> writers;
    /// Uninstalled ops that read the object's *current* (last-written)
    /// value — the readers of Lastw(p, X) in Figure 6.
    std::set<Lsn> readers_of_last_write;
    /// Node holding the object in vars, if any.
    NodeId vars_owner = kNoNode;
  };

  NodeId NewNode();
  GraphNode& Node(NodeId id);
  /// Adds edge from → to (from installs first); ignores self-edges.
  void AddEdge(NodeId from, NodeId to);
  /// Merges node `src` into `dst` (ops, vars, notx, edges, ownership).
  void MergeInto(NodeId dst, NodeId src);
  /// Registers op bookkeeping common to both graphs (readers/writers/
  /// last-write tracking, op->node). Call after the op's node is final.
  void TrackOp(const PendingOp& op, NodeId node);
  ObjectState& ObjState(ObjectId id) { return objects_[id]; }

  std::map<NodeId, GraphNode> nodes_;
  std::unordered_map<Lsn, PendingOp> pending_ops_;
  std::unordered_map<Lsn, NodeId> op_node_;
  std::unordered_map<ObjectId, ObjectState> objects_;
  GraphStats stats_;
  NodeId next_node_id_ = 1;
  bool dirty_ = false;  // needs Normalize
};

}  // namespace loglog

#endif  // LOGLOG_GRAPH_WRITE_GRAPH_H_
