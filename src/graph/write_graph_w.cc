#include "graph/write_graph_w.h"

#include <set>

namespace loglog {

void WriteGraphW::AddOperation(const PendingOp& op) {
  // First collapse (T of Figure 3): the new op joins the node(s) owning
  // any object it writes; shared writesets are equivalence classes.
  std::set<NodeId> owners;
  for (ObjectId x : op.writes) {
    NodeId owner = NodeOwningVar(x);
    if (owner != kNoNode) owners.insert(owner);
  }
  NodeId m = NewNode();
  for (NodeId n : owners) MergeInto(m, n);

  // Read-write edges: every uninstalled earlier reader of an object this
  // op writes must be installed before this op (installation graph rule 1
  // lifted to write-graph nodes).
  for (ObjectId x : op.writes) {
    for (Lsn reader : ObjState(x).readers) {
      NodeId q = NodeOfOp(reader);
      if (q != kNoNode && q != m) {
        AddEdge(q, m);
        ++stats_.rw_edges;
      }
    }
  }

  TrackOp(op, m);
  GraphNode& node = Node(m);
  for (ObjectId x : op.writes) {
    node.vars.insert(x);
    ObjState(x).vars_owner = m;
  }
}

}  // namespace loglog
