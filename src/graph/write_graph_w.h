#ifndef LOGLOG_GRAPH_WRITE_GRAPH_W_H_
#define LOGLOG_GRAPH_WRITE_GRAPH_W_H_

#include "graph/write_graph.h"

namespace loglog {

/// \brief The write graph W of Figure 3 (from Lomet & Tuttle, VLDB 1995),
/// built incrementally.
///
/// First collapse: operations whose writesets intersect (transitively)
/// share a node — realized incrementally by merging the nodes that own any
/// object the new operation writes. Edges are the installation graph's
/// read-write edges lifted to nodes. Second collapse (acyclicity) is the
/// shared Normalize(). In W, vars(n) always equals Writes(n): every
/// written object must be flushed, atomically per node, and |vars(n)| only
/// grows until the node is flushed.
class WriteGraphW : public WriteGraph {
 public:
  void AddOperation(const PendingOp& op) override;
  const char* Kind() const override { return "W"; }
};

}  // namespace loglog

#endif  // LOGLOG_GRAPH_WRITE_GRAPH_W_H_
