#include "logstore/cold_tier.h"

#include <cassert>

#include "obs/metrics.h"

namespace loglog {

ColdTier::ColdTier(FaultInjector* faults)
    : faults_(faults),
      reads_(MetricsRegistry::Global().GetCounter(
          metric::kLogstoreReadsCold)) {}

void ColdTier::Spill(uint64_t start_offset, std::vector<uint8_t> bytes) {
  if (bytes.empty()) return;
  assert(segments_.empty() ||
         start_offset == segments_.back().end_offset());
  total_bytes_ += bytes.size();
  if (!segments_.empty() &&
      segments_.back().bytes.size() < segment_target_bytes_) {
    ColdSegment& open = segments_.back();
    open.bytes.insert(open.bytes.end(), bytes.begin(), bytes.end());
    return;
  }
  ColdSegment seg;
  seg.start_offset = start_offset;
  seg.bytes = std::move(bytes);
  segments_.push_back(std::move(seg));
}

Status ColdTier::Read(uint64_t offset, uint64_t size,
                      std::vector<uint8_t>* out) const {
  FaultFire fire =
      faults_ != nullptr ? faults_->Hit(fault::kColdTierRead) : FaultFire{};
  if (fire.action == FaultAction::kTransientIoError ||
      fire.action == FaultAction::kPermanentIoError ||
      fire.action == FaultAction::kCrashNow ||
      fire.action == FaultAction::kLostWrite) {
    return FaultInjector::ErrorStatus(fire.action, fault::kColdTierRead);
  }
  out->clear();
  out->reserve(size);
  uint64_t at = offset;
  uint64_t remaining = size;
  for (const ColdSegment& seg : segments_) {
    if (remaining == 0) break;
    if (at >= seg.end_offset()) continue;
    if (at < seg.start_offset) break;  // gap: coverage ended
    const uint64_t within = at - seg.start_offset;
    const uint64_t take =
        std::min<uint64_t>(remaining, seg.bytes.size() - within);
    out->insert(out->end(), seg.bytes.begin() + static_cast<long>(within),
                seg.bytes.begin() + static_cast<long>(within + take));
    at += take;
    remaining -= take;
  }
  if (remaining != 0) {
    return Status::IoError("cold tier read outside spilled coverage");
  }
  reads_->Inc();
  if (fire.action == FaultAction::kBitFlip) {
    // In-flight read corruption: damage the returned copy, not the
    // spilled media — the record framing CRC turns it into Corruption.
    FaultInjector::FlipBit(fire.rng, out);
  }
  return Status::OK();
}

uint64_t ColdTier::DropThrough(uint64_t offset) {
  uint64_t dropped = 0;
  while (!segments_.empty() && segments_.front().end_offset() <= offset) {
    dropped += segments_.front().bytes.size();
    segments_.pop_front();
  }
  total_bytes_ -= dropped;
  return dropped;
}

void ColdTier::AppendContentsTo(std::vector<uint8_t>* out) const {
  for (const ColdSegment& seg : segments_) {
    out->insert(out->end(), seg.bytes.begin(), seg.bytes.end());
  }
}

}  // namespace loglog
