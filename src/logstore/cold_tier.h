#ifndef LOGLOG_LOGSTORE_COLD_TIER_H_
#define LOGLOG_LOGSTORE_COLD_TIER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"

namespace loglog {

class Counter;

/// One spilled run of stable log bytes. Segments are contiguous: each
/// starts where the previous one ended, and every boundary is a framed
/// record boundary (spills happen at truncation offsets, which the
/// LogManager maps from LSNs to record starts).
struct ColdSegment {
  uint64_t start_offset = 0;
  std::vector<uint8_t> bytes;

  uint64_t end_offset() const { return start_offset + bytes.size(); }
};

/// \brief The cold half of the two-tier log archive.
///
/// The hot tier is the StableLogDevice's retained byte window; when
/// checkpoint- or compaction-driven truncation advances the window, the
/// dropped prefix spills here instead of vanishing. The log-as-database
/// read path falls through to this tier for index entries that point
/// below the truncation horizon, and the verification archive is
/// materialized as cold segments + the hot window.
///
/// Cold reads model a slower, less reliable medium: they hit the
/// fault::kColdTierRead site (error actions surface as clean IoErrors;
/// a bit flip corrupts only the returned copy, which the record framing
/// CRC then rejects). Verification-path access (AppendContentsTo) reads
/// the media directly and bypasses faults, like ArchiveContents always
/// has.
class ColdTier {
 public:
  explicit ColdTier(FaultInjector* faults);

  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  /// Takes ownership of a truncated hot prefix. `start_offset` must
  /// extend the current cold coverage (truncation is monotone). Small
  /// spills coalesce into the open tail segment until it reaches the
  /// segment target size, so storm-frequent checkpoints do not produce
  /// thousands of tiny segments.
  void Spill(uint64_t start_offset, std::vector<uint8_t> bytes);

  /// Faulted read of [offset, offset+size). The range must lie within
  /// cold coverage; reads crossing into the hot tier are the device's
  /// job to split.
  Status Read(uint64_t offset, uint64_t size,
              std::vector<uint8_t>* out) const;

  /// Drops whole segments lying entirely below `offset` and returns the
  /// byte volume released. A segment straddling `offset` is kept intact
  /// (drops happen at spill boundaries, never mid-record). Reads and
  /// AppendContentsTo afterwards cover only the surviving suffix — the
  /// caller owns the proof that nothing live points below `offset`.
  uint64_t DropThrough(uint64_t offset);

  /// True when `offset` falls inside a spilled segment.
  bool Covers(uint64_t offset) const {
    return !segments_.empty() && offset >= segments_.front().start_offset &&
           offset < segments_.back().end_offset();
  }

  uint64_t total_bytes() const { return total_bytes_; }
  size_t segment_count() const { return segments_.size(); }
  const std::deque<ColdSegment>& segments() const { return segments_; }

  /// Segment coalescing target. DropThrough only releases whole
  /// segments, so this is also the GC granularity: retention-GC
  /// deployments trade smaller segments (finer reclamation) against
  /// more of them. Applies to segments opened from now on.
  void set_segment_target_bytes(size_t bytes) {
    segment_target_bytes_ = bytes;
  }
  size_t segment_target_bytes() const { return segment_target_bytes_; }

  /// Appends every cold byte in offset order (verification-only: no
  /// fault evaluation, no read billing).
  void AppendContentsTo(std::vector<uint8_t>* out) const;

 private:
  /// Segments younger than the target keep absorbing spills.
  size_t segment_target_bytes_ = 256 * 1024;

  std::deque<ColdSegment> segments_;
  uint64_t total_bytes_ = 0;
  FaultInjector* faults_;
  Counter* reads_;  // logstore.reads.cold
};

}  // namespace loglog

#endif  // LOGLOG_LOGSTORE_COLD_TIER_H_
