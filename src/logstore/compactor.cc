#include "logstore/compactor.h"

#include <string>

#include "engine/recovery_engine.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"

namespace loglog {

Compactor::Compactor(RecoveryEngine* engine) : engine_(engine) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  runs_metric_ = reg.GetCounter(metric::kLogstoreCompactionRuns);
  bytes_metric_ = reg.GetCounter(metric::kLogstoreCompactionBytesMoved);
}

Status Compactor::RunOnce(size_t batch_objects) {
  uint64_t images = 0;
  uint64_t bytes = 0;
  Status st =
      engine_->cache().CompactLogStore(batch_objects, &images, &bytes);
  if (st.ok() && images > 0) {
    // The rewrites only pay off once the checkpoint advances truncation
    // past the vacated prefix; fold the two into one pass so a cadence
    // of N ops bounds the stale span at N ops' worth of log.
    st = engine_->Checkpoint();
  }
  if (!st.ok()) {
    ++stats_.failures;
    HealthRegistry::Global().Set(health::kLogstoreCompactor,
                                 HealthState::kFailing, st.ToString());
    return st;
  }
  ++stats_.runs;
  stats_.images_moved += images;
  stats_.bytes_moved += bytes;
  if (images == 0) ++stats_.noop_runs;
  runs_metric_->Inc();
  bytes_metric_->Inc(bytes);
  FlightRecorder::Global().Record(FlightEventType::kCompaction,
                                  engine_->log().last_assigned_lsn(), images,
                                  bytes);
  HealthRegistry::Global().Set(
      health::kLogstoreCompactor, HealthState::kOk,
      "moved " + std::to_string(images) + " images");
  return Status::OK();
}

}  // namespace loglog
