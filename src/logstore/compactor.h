#ifndef LOGLOG_LOGSTORE_COMPACTOR_H_
#define LOGLOG_LOGSTORE_COMPACTOR_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace loglog {

class RecoveryEngine;
class Counter;

/// Per-compactor lifetime counters (mirrored into logstore.compaction.*
/// metrics; kept here so benchmarks can read them without a registry).
struct CompactionStats {
  uint64_t runs = 0;
  uint64_t images_moved = 0;
  uint64_t bytes_moved = 0;
  /// Runs that moved nothing (everything live was already at the tail).
  uint64_t noop_runs = 0;
  uint64_t failures = 0;
};

/// \brief Background log-store compaction: rewrites the oldest live full
/// images forward as W_IP identity records, then checkpoints so log
/// truncation can reclaim the vacated prefix.
///
/// The log-as-database backend never writes objects to the store, so the
/// log prefix holding an object's only full image can never be discarded
/// outright — it is either kept (space amplification) or spilled to the
/// cold tier (read amplification). The compactor bounds both: each
/// RunOnce re-logs up to `batch` of the oldest live images at the tail
/// (CacheManager::CompactLogStore) and advances the checkpoint, so
/// TruncateBefore reclaims real bytes and hot reads stay off the cold
/// tier.
///
/// Crash safety is inherited, not implemented: a W_IP rewrite is an
/// ordinary logged, graph-installed identity operation and the index
/// republish rides the usual kInstall evidence, so a crash at any point
/// between (or inside) RunOnce calls recovers through the standard
/// analysis/redo path. The crash-storm matrix runs configurations with
/// the compactor racing crashes to hold this.
class Compactor {
 public:
  explicit Compactor(RecoveryEngine* engine);

  /// One compaction pass over up to `batch_objects` of the oldest live
  /// index entries, followed by a checkpoint when anything moved.
  /// Reports health and a kCompaction flight event either way.
  Status RunOnce(size_t batch_objects);

  const CompactionStats& stats() const { return stats_; }

 private:
  RecoveryEngine* engine_;
  CompactionStats stats_;
  Counter* runs_metric_;
  Counter* bytes_metric_;
};

}  // namespace loglog

#endif  // LOGLOG_LOGSTORE_COMPACTOR_H_
