#include "logstore/log_index.h"

#include "obs/metrics.h"

namespace loglog {

LogIndex::LogIndex()
    : publishes_(MetricsRegistry::Global().GetCounter(
          metric::kLogstoreIndexPublishes)),
      entries_gauge_(
          MetricsRegistry::Global().GetGauge(metric::kLogstoreIndexEntries)),
      live_gauge_(MetricsRegistry::Global().GetGauge(
          metric::kLogstoreIndexLiveBytes)) {}

void LogIndex::Publish(ObjectId id, Lsn lsn, uint64_t offset, uint64_t size) {
  IndexCheckpointEntry& e = by_id_[id];
  live_bytes_ += size - e.size;  // e.size == 0 for a fresh entry
  e.id = id;
  e.lsn = lsn;
  e.offset = offset;
  e.size = size;
  publishes_->Inc();
  RefreshGauges();
}

void LogIndex::Erase(ObjectId id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  live_bytes_ -= it->second.size;
  by_id_.erase(it);
  RefreshGauges();
}

bool LogIndex::Lookup(ObjectId id, IndexCheckpointEntry* entry) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  if (entry != nullptr) *entry = it->second;
  return true;
}

const IndexCheckpointEntry* LogIndex::OldestEntry() const {
  const IndexCheckpointEntry* oldest = nullptr;
  for (const auto& [id, e] : by_id_) {
    if (oldest == nullptr || e.lsn < oldest->lsn) oldest = &e;
  }
  return oldest;
}

Lsn LogIndex::MinLsn() const {
  const IndexCheckpointEntry* oldest = OldestEntry();
  return oldest != nullptr ? oldest->lsn : kInvalidLsn;
}

std::vector<IndexCheckpointEntry> LogIndex::Snapshot() const {
  std::vector<IndexCheckpointEntry> out;
  out.reserve(by_id_.size());
  for (const auto& [id, e] : by_id_) out.push_back(e);
  return out;
}

void LogIndex::Reset(const std::vector<IndexCheckpointEntry>& entries) {
  by_id_.clear();
  live_bytes_ = 0;
  for (const IndexCheckpointEntry& e : entries) {
    by_id_[e.id] = e;
    live_bytes_ += e.size;
  }
  RefreshGauges();
}

void LogIndex::Clear() {
  by_id_.clear();
  live_bytes_ = 0;
  RefreshGauges();
}

void LogIndex::RefreshGauges() {
  entries_gauge_->Set(static_cast<int64_t>(by_id_.size()));
  live_gauge_->Set(static_cast<int64_t>(live_bytes_));
}

}  // namespace loglog
