#ifndef LOGLOG_LOGSTORE_LOG_INDEX_H_
#define LOGLOG_LOGSTORE_LOG_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

namespace loglog {

class Counter;
class Gauge;

/// \brief The log-as-database object index: object id -> location of its
/// last stable full-image record.
///
/// Under StorageBackend::kLogStore this map IS the installed state.
/// Installation publishes an entry instead of flushing to the
/// StableStore; a published entry means "the image at (lsn, offset,
/// size) is stable and current as of lsn", which is exactly the vSI the
/// redo test needs, so the write-graph machinery collapses to index
/// maintenance. The index itself is volatile — recovery rebuilds it from
/// the last kIndexCheckpoint record plus the full-image records after it
/// (see RecoveryDriver), which bounds restart cost by the checkpoint
/// interval.
class LogIndex {
 public:
  LogIndex();

  LogIndex(const LogIndex&) = delete;
  LogIndex& operator=(const LogIndex&) = delete;

  /// Publishes (or republishes) the object's current stable image.
  /// `size` is the framed record size on the device — the index doubles
  /// as the live-byte accounting compaction steers by.
  void Publish(ObjectId id, Lsn lsn, uint64_t offset, uint64_t size);

  /// Removes a deleted object (its tombstone record needs no entry:
  /// reads of unknown ids are NotFound by definition).
  void Erase(ObjectId id);

  /// True (and *entry filled) when the object has a published image.
  bool Lookup(ObjectId id, IndexCheckpointEntry* entry) const;

  /// The entry whose record sits lowest in the log, or nullptr when
  /// empty. Compaction moves this one first: the minimum entry pins the
  /// truncation point, so rewriting it forward is what reclaims bytes.
  const IndexCheckpointEntry* OldestEntry() const;

  /// Smallest LSN any entry points at (kInvalidLsn when empty). The
  /// log-store truncation floor: bytes below it hold no live image.
  Lsn MinLsn() const;

  /// Snapshot of every entry in id order — the kIndexCheckpoint payload.
  std::vector<IndexCheckpointEntry> Snapshot() const;

  /// Replaces the whole index from a checkpoint payload (recovery
  /// rebuild reset point).
  void Reset(const std::vector<IndexCheckpointEntry>& entries);

  void Clear();

  size_t size() const { return by_id_.size(); }
  /// Sum of framed sizes of live images. retained/live is the space-amp
  /// ratio the compactor drives toward 1.
  uint64_t live_bytes() const { return live_bytes_; }

 private:
  void RefreshGauges();

  std::map<ObjectId, IndexCheckpointEntry> by_id_;
  uint64_t live_bytes_ = 0;
  Counter* publishes_;     // logstore.index.publishes
  Gauge* entries_gauge_;   // logstore.index.entries
  Gauge* live_gauge_;      // logstore.index.live_bytes
};

}  // namespace loglog

#endif  // LOGLOG_LOGSTORE_LOG_INDEX_H_
