#ifndef LOGLOG_LOGSTORE_LOGSTORE_H_
#define LOGLOG_LOGSTORE_LOGSTORE_H_

#include "ops/operation.h"

namespace loglog {

/// \brief True when an operation's log record is, by itself, a decodable
/// full image of its written object — the records the log-as-database
/// backend can serve reads from and index.
///
/// Exactly the single-object kFuncSetValue families qualify: physical
/// writes, creates and W_IP identity writes all log `writes[0] := params`,
/// so the record's params ARE the object value. Deletes qualify as
/// tombstones (the "image" is nonexistence). Everything else (deltas,
/// logical transforms, multi-object writesets) depends on prior state and
/// cannot anchor an index entry.
///
/// Shared by the install path (which tracks whether a cached object's
/// latest writer logged a full image), the read path (which re-decodes the
/// record), and recovery's index rebuild — one definition, so the three
/// never disagree on what is servable.
inline bool IsFullImageOp(const OperationDesc& op) {
  if (op.op_class == OpClass::kDelete) return true;
  if (op.writes.size() != 1 || op.func != kFuncSetValue) return false;
  return op.op_class == OpClass::kPhysical ||
         op.op_class == OpClass::kCreate ||
         op.op_class == OpClass::kIdentityWrite;
}

}  // namespace loglog

#endif  // LOGLOG_LOGSTORE_LOGSTORE_H_
