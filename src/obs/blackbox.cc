#include "obs/blackbox.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>

#include "common/coding.h"
#include "common/crc32.h"
#include "obs/health.h"
#include "obs/json.h"

namespace loglog {

namespace {

constexpr char kMagic[8] = {'L', 'L', 'B', 'B', '0', '0', '0', '1'};

}  // namespace

std::string BuildInfoJson() {
  JsonWriter w;
  w.BeginObject();
#if defined(__clang__)
  w.Key("compiler").String("clang " + std::to_string(__clang_major__) + "." +
                           std::to_string(__clang_minor__));
#elif defined(__GNUC__)
  w.Key("compiler").String("gcc " + std::to_string(__GNUC__) + "." +
                           std::to_string(__GNUC_MINOR__));
#else
  w.Key("compiler").String("unknown");
#endif
  w.Key("cpp").Uint(static_cast<uint64_t>(__cplusplus));
#if defined(NDEBUG)
  w.Key("build").String("release");
#else
  w.Key("build").String("debug");
#endif
  w.Key("pointer_bits").Uint(sizeof(void*) * 8);
  w.Key("crc32c_kernel").String(Crc32cKernelName(Crc32cActiveKernel()));
  w.Key("recorder_capacity")
      .Uint(static_cast<uint64_t>(FlightRecorder::Global().capacity()));
  w.EndObject();
  return w.Take();
}

void EncodeBlackBox(const FlightRecorder& recorder,
                    const MetricsSnapshot& metrics, std::string_view reason,
                    std::vector<uint8_t>* out) {
  out->clear();
  out->insert(out->end(), kMagic, kMagic + sizeof(kMagic));
  PutLengthPrefixed(out, Slice(reason.data(), reason.size()));
  const std::string build = BuildInfoJson();
  PutLengthPrefixed(out, Slice(build));
  PutFixed64(out, recorder.total_recorded());
  PutFixed64(out, recorder.capacity());

  const std::vector<FlightEventView> events = recorder.Snapshot();

  // Thread name table, restricted to threads the dumped events mention.
  std::set<uint32_t> tids;
  for (const FlightEventView& ev : events) tids.insert(ev.tid);
  std::vector<std::pair<uint32_t, std::string>> named;
  for (uint32_t tid : tids) {
    std::string name = ThreadRegistry::Global().NameOf(tid);
    if (!name.empty()) named.emplace_back(tid, std::move(name));
  }
  PutVarint32(out, static_cast<uint32_t>(named.size()));
  for (const auto& [tid, name] : named) {
    PutVarint32(out, tid);
    PutLengthPrefixed(out, Slice(name));
  }

  const std::vector<std::string> strings = recorder.InternedStrings();
  PutVarint32(out, static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) PutLengthPrefixed(out, Slice(s));

  PutVarint32(out, static_cast<uint32_t>(events.size()));
  for (const FlightEventView& ev : events) {
    PutVarint64(out, ev.seq);
    PutVarint64(out, ev.ts_us);
    PutVarint64(out, ev.lsn);
    PutVarint64(out, ev.a);
    PutVarint64(out, ev.b);
    PutVarint32(out, ev.tid);
    PutVarint32(out, static_cast<uint32_t>(ev.type));
  }

  PutLengthPrefixed(out, Slice(metrics.ToJson()));
  PutLengthPrefixed(out, Slice(metrics.ToString()));
  PutLengthPrefixed(out, Slice(HealthRegistry::Global().ToJson()));

  PutFixed32(out, Crc32c(Slice(out->data(), out->size())));
}

Status DecodeBlackBox(Slice in, BlackBoxDump* out) {
  *out = BlackBoxDump{};
  if (in.size() < sizeof(kMagic) + 4) {
    return Status::Corruption("black box: truncated header");
  }
  if (std::memcmp(in.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("black box: bad magic");
  }
  const Slice body(in.data(), in.size() - 4);
  const uint32_t stored = DecodeFixed32(in.data() + in.size() - 4);
  if (Crc32c(body) != stored) {
    return Status::Corruption("black box: checksum mismatch");
  }
  Slice s(in.data() + sizeof(kMagic), in.size() - sizeof(kMagic) - 4);

  Slice field;
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
  out->reason = field.ToString();
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
  out->build_info_json = field.ToString();
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&s, &out->total_recorded));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&s, &out->capacity));

  uint32_t n = 0;
  LOGLOG_RETURN_IF_ERROR(GetVarint32(&s, &n));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t tid = 0;
    LOGLOG_RETURN_IF_ERROR(GetVarint32(&s, &tid));
    LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
    out->thread_names.emplace_back(tid, field.ToString());
  }

  LOGLOG_RETURN_IF_ERROR(GetVarint32(&s, &n));
  for (uint32_t i = 0; i < n; ++i) {
    LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
    out->strings.push_back(field.ToString());
  }

  LOGLOG_RETURN_IF_ERROR(GetVarint32(&s, &n));
  // The event count is CRC-protected, but bound the reserve anyway so a
  // colliding corruption cannot ask for gigabytes.
  if (n > (1u << 24)) {
    return Status::Corruption("black box: implausible event count");
  }
  out->events.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    FlightEventView ev;
    uint32_t v32 = 0;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&s, &ev.seq));
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&s, &ev.ts_us));
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&s, &ev.lsn));
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&s, &ev.a));
    LOGLOG_RETURN_IF_ERROR(GetVarint64(&s, &ev.b));
    LOGLOG_RETURN_IF_ERROR(GetVarint32(&s, &ev.tid));
    LOGLOG_RETURN_IF_ERROR(GetVarint32(&s, &v32));
    if (v32 > 0xFFFF) return Status::Corruption("black box: bad event type");
    ev.type = static_cast<FlightEventType>(v32);
    out->events.push_back(ev);
  }

  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
  out->metrics_json = field.ToString();
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
  out->metrics_text = field.ToString();
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&s, &field));
  out->health_json = field.ToString();
  if (!s.empty()) {
    return Status::Corruption("black box: trailing garbage");
  }
  return Status::OK();
}

Status WriteBlackBoxFile(const std::string& path, std::string_view reason) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kBlackBoxDump, 0, rec.Intern(reason));
  std::vector<uint8_t> encoded;
  EncodeBlackBox(rec, MetricsRegistry::Global().Snapshot(), reason,
                 &encoded);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open black box file: " + path);
  }
  const size_t written = std::fwrite(encoded.data(), 1, encoded.size(), f);
  const int close_rc = std::fclose(f);
  if (written != encoded.size() || close_rc != 0) {
    return Status::IoError("short write to black box file: " + path);
  }
  return Status::OK();
}

std::string DescribeFlightEvent(const FlightEventView& ev,
                                const std::vector<std::string>& strings) {
  auto interned = [&strings](uint64_t id) -> std::string {
    if (id == 0 || id > strings.size()) return "#" + std::to_string(id);
    return strings[id - 1];
  };
  const std::string name = FlightEventTypeName(ev.type);
  switch (ev.type) {
    case FlightEventType::kWalAppend:
      return name + " lsn=" + std::to_string(ev.lsn) + " records=" +
             std::to_string(ev.a) + " bytes=" + std::to_string(ev.b);
    case FlightEventType::kWalForce:
      return name + " stable_lsn=" + std::to_string(ev.lsn) + " waited=" +
             std::to_string(ev.a) + "us batches=" + std::to_string(ev.b);
    case FlightEventType::kWalPoisoned:
      return name + " (torn/crashed force; recovery required)";
    case FlightEventType::kRedoComponent:
      return name + " min_lsn=" + std::to_string(ev.lsn) + " records=" +
             std::to_string(ev.a) + " worker=" + std::to_string(ev.b);
    case FlightEventType::kTxnAbort:
      return name + " txn=" + std::to_string(ev.a) + " clrs=" +
             std::to_string(ev.b);
    case FlightEventType::kFaultFire:
      return name + " site=" + interned(ev.a) + " action=" +
             std::to_string(ev.b);
    case FlightEventType::kPolicyFlip:
      return name + " object=" + std::to_string(ev.a) + " classes=" +
             std::to_string(ev.b >> 8) + "->" +
             std::to_string(ev.b & 0xFF);
    case FlightEventType::kCrash:
      return name + (ev.a != 0 ? " (torn tail)" : "");
    case FlightEventType::kPromote:
      return name + " applied_lsn=" + std::to_string(ev.lsn) + " rto=" +
             std::to_string(ev.a) + "us";
    case FlightEventType::kRecoveryStart:
      return name;
    case FlightEventType::kRecoveryDone:
      return name + " redo_start=" + std::to_string(ev.lsn) + " redone=" +
             std::to_string(ev.a) + " losers=" + std::to_string(ev.b);
    case FlightEventType::kCheckpoint:
      return name + " lsn=" + std::to_string(ev.lsn);
    case FlightEventType::kHealthChange:
      return name + " " + interned(ev.a) + "=" +
             HealthStateName(static_cast<HealthState>(ev.b));
    case FlightEventType::kBlackBoxDump:
      return name + " reason=" + interned(ev.a);
    case FlightEventType::kCompaction:
      return name + " ckpt_lsn=" + std::to_string(ev.lsn) + " moved=" +
             std::to_string(ev.a) + " bytes=" + std::to_string(ev.b);
    case FlightEventType::kNone:
      break;
  }
  return name;
}

namespace {

std::mutex g_sink_mu;
std::string g_sink_dir;
bool g_sink_env_checked = false;
int g_sink_max_files = 8;
int g_sink_files_written = 0;

std::string SanitizeForFilename(std::string_view s) {
  std::string out;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
    if (out.size() >= 48) break;
  }
  return out.empty() ? "dump" : out;
}

}  // namespace

void SetBlackBoxDir(std::string dir, int max_files) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink_dir = std::move(dir);
  g_sink_env_checked = true;  // explicit config wins over the env
  if (max_files > 0) g_sink_max_files = max_files;
  g_sink_files_written = 0;
}

std::string BlackBoxAutoDump(std::string_view reason) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (!g_sink_env_checked) {
      g_sink_env_checked = true;
      if (const char* env = std::getenv("LOGLOG_BLACKBOX_DIR")) {
        g_sink_dir = env;
      }
    }
    if (g_sink_dir.empty()) return "";
    if (g_sink_files_written >= g_sink_max_files) return "";
    ++g_sink_files_written;
    path = g_sink_dir + "/" + SanitizeForFilename(reason) + "-" +
           std::to_string(g_sink_files_written) + ".blackbox";
  }
  if (!WriteBlackBoxFile(path, reason).ok()) return "";
  return path;
}

}  // namespace loglog
