#ifndef LOGLOG_OBS_BLACKBOX_H_
#define LOGLOG_OBS_BLACKBOX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace loglog {

/// \brief The `*.blackbox` postmortem artifact: a decoded dump of the
/// flight-recorder ring plus a metrics snapshot, the health ledger, and
/// build/config info.
///
/// On-disk format (`LLBB0001`, little-endian, CRC32C-sealed like the disk
/// image format):
///
///   magic[8] "LLBB0001"
///   reason            (length-prefixed)
///   build_info_json   (length-prefixed)
///   fixed64           total events ever recorded
///   fixed64           ring capacity
///   varint32 n_threads, then per thread: varint32 tid + name (lp)
///   varint32 n_strings (intern table; id = index + 1), each lp
///   varint32 n_events, each: varint64 seq, ts_us, lsn, a, b;
///            varint32 tid, type
///   metrics_json      (length-prefixed)
///   metrics_text      (length-prefixed; human rendering with quantiles)
///   health_json       (length-prefixed)
///   fixed32           CRC32C of everything above
///
/// Decode fails with Status::Corruption on a bad magic, truncation, or a
/// checksum mismatch — never by crashing (decode-fuzzed in tests).
struct BlackBoxDump {
  std::string reason;
  std::string build_info_json;
  uint64_t total_recorded = 0;
  uint64_t capacity = 0;
  /// Names of the threads referenced by the dumped events.
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  /// Intern table (fault sites, subsystems); id i refers to strings[i-1].
  std::vector<std::string> strings;
  std::vector<FlightEventView> events;
  std::string metrics_json;
  std::string metrics_text;
  std::string health_json;

  /// Events the ring dropped (overwritten before this dump).
  uint64_t dropped() const {
    return total_recorded > events.size() ? total_recorded - events.size()
                                          : 0;
  }
};

/// Compiler/config provenance embedded in every dump (compiler, C++
/// standard, build flavor, CRC kernel, recorder capacity).
std::string BuildInfoJson();

/// Serializes `recorder`'s current ring with the given metrics snapshot
/// and the global health ledger.
void EncodeBlackBox(const FlightRecorder& recorder,
                    const MetricsSnapshot& metrics, std::string_view reason,
                    std::vector<uint8_t>* out);

Status DecodeBlackBox(Slice in, BlackBoxDump* out);

/// Cuts a dump of the global recorder + registry + health ledger and
/// writes it to `path`. Records a kBlackBoxDump flight event first, so
/// the dump itself appears at the end of its own timeline.
Status WriteBlackBoxFile(const std::string& path, std::string_view reason);

/// One human line for an event ("wal.force lsn=812 waited 93us", ...),
/// resolving interned ids against `strings`.
std::string DescribeFlightEvent(const FlightEventView& ev,
                                const std::vector<std::string>& strings);

/// \name Automatic crash-point sink
/// Crash-simulation points, crash-action fault fires and Promote call
/// BlackBoxAutoDump(); it is a no-op until a directory is configured
/// (explicitly or via $LOGLOG_BLACKBOX_DIR), and caps the files written
/// per process so a storm cannot flood the disk.
///@{

/// "" disables. `max_files` bounds dumps written per process (<=0 keeps
/// the previous bound).
void SetBlackBoxDir(std::string dir, int max_files = 0);

/// The path written, or "" when disabled, over the cap, or failed.
std::string BlackBoxAutoDump(std::string_view reason);

///@}

}  // namespace loglog

#endif  // LOGLOG_OBS_BLACKBOX_H_
