#include "obs/flight_recorder.h"

#include <algorithm>

namespace loglog {

namespace {

thread_local uint32_t tls_tid = UINT32_MAX;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

ThreadRegistry& ThreadRegistry::Global() {
  static ThreadRegistry* instance = new ThreadRegistry();
  return *instance;
}

uint32_t ThreadRegistry::CurrentTid() {
  if (tls_tid == UINT32_MAX) {
    tls_tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_tid;
}

void ThreadRegistry::SetCurrentName(std::string name) {
  const uint32_t tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    names_.erase(tid);
    return;
  }
  if (names_.size() >= kMaxStoredNames && !names_.contains(tid)) return;
  names_[tid] = std::move(name);
}

std::string ThreadRegistry::NameOf(uint32_t tid) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = names_.find(tid);
  return it == names_.end() ? std::string() : it->second;
}

std::vector<std::pair<uint32_t, std::string>> ThreadRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {names_.begin(), names_.end()};
}

ScopedThreadName::ScopedThreadName(std::string name) {
  ThreadRegistry& reg = ThreadRegistry::Global();
  tid_ = reg.CurrentTid();
  previous_ = reg.NameOf(tid_);
  reg.SetCurrentName(std::move(name));
}

ScopedThreadName::~ScopedThreadName() {
  // Restore the previous label only when the thread had one: a worker's
  // first name stays sticky so its events remain readable after it exits.
  if (!previous_.empty()) {
    ThreadRegistry::Global().SetCurrentName(std::move(previous_));
  }
}

const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kNone:
      return "none";
    case FlightEventType::kWalAppend:
      return "wal.append";
    case FlightEventType::kWalForce:
      return "wal.force";
    case FlightEventType::kWalPoisoned:
      return "wal.poisoned";
    case FlightEventType::kRedoComponent:
      return "redo.component";
    case FlightEventType::kTxnAbort:
      return "txn.abort";
    case FlightEventType::kFaultFire:
      return "fault.fire";
    case FlightEventType::kPolicyFlip:
      return "policy.flip";
    case FlightEventType::kCrash:
      return "crash";
    case FlightEventType::kPromote:
      return "promote";
    case FlightEventType::kRecoveryStart:
      return "recovery.start";
    case FlightEventType::kRecoveryDone:
      return "recovery.done";
    case FlightEventType::kCheckpoint:
      return "checkpoint";
    case FlightEventType::kHealthChange:
      return "health.change";
    case FlightEventType::kBlackBoxDump:
      return "blackbox.dump";
    case FlightEventType::kCompaction:
      return "logstore.compaction";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : epoch_(std::chrono::steady_clock::now()),
      slots_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(FlightEventType type, uint64_t lsn, uint64_t a,
                            uint64_t b) {
  if (!enabled()) return;
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[seq & mask_];
  // Per-slot seqlock: zero the tag so a concurrent reader discards the
  // slot, fill, then publish 1 + seq. Two writers a full lap apart can
  // land on the same slot; every field is atomic, so the worst case is
  // one mixed slot whose tag check makes the reader drop it.
  s.tag.store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ts_us.store(NowUs(), std::memory_order_relaxed);
  s.lsn.store(lsn, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  const uint64_t tid =
      std::min<uint64_t>(ThreadRegistry::Global().CurrentTid(), 0xFFFF);
  s.meta.store((tid << 16) | static_cast<uint64_t>(type),
               std::memory_order_relaxed);
  s.tag.store(seq + 1, std::memory_order_release);
}

uint32_t FlightRecorder::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto it = intern_ids_.find(s);
  if (it != intern_ids_.end()) return it->second;
  interned_.emplace_back(s);
  const uint32_t id = static_cast<uint32_t>(interned_.size());
  intern_ids_.emplace(std::string(s), id);
  return id;
}

std::vector<std::string> FlightRecorder::InternedStrings() const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return interned_;
}

std::vector<FlightEventView> FlightRecorder::Snapshot() const {
  std::vector<FlightEventView> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) {
    const uint64_t tag1 = s.tag.load(std::memory_order_acquire);
    if (tag1 == 0) continue;
    FlightEventView ev;
    ev.ts_us = s.ts_us.load(std::memory_order_relaxed);
    ev.lsn = s.lsn.load(std::memory_order_relaxed);
    ev.a = s.a.load(std::memory_order_relaxed);
    ev.b = s.b.load(std::memory_order_relaxed);
    const uint64_t meta = s.meta.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.tag.load(std::memory_order_relaxed) != tag1) continue;  // torn
    ev.seq = tag1 - 1;
    ev.tid = static_cast<uint32_t>(meta >> 16);
    ev.type = static_cast<FlightEventType>(meta & 0xFFFF);
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEventView& x, const FlightEventView& y) {
              return x.seq < y.seq;
            });
  return out;
}

void FlightRecorder::Clear() {
  head_.store(0, std::memory_order_relaxed);
  for (Slot& s : slots_) s.tag.store(0, std::memory_order_relaxed);
}

}  // namespace loglog
