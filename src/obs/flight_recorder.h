#ifndef LOGLOG_OBS_FLIGHT_RECORDER_H_
#define LOGLOG_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace loglog {

/// \brief Process-wide registry of dense thread ids and human names.
///
/// Every thread that touches the flight recorder (or a trace span) gets a
/// small dense id on first use, cached thread-locally, so recording a
/// thread id costs one TLS read. Names are optional and sticky: a redo
/// worker that calls SetCurrentName("redo-worker-0") keeps that label in
/// black-box dumps and Perfetto exports even after the thread exits (ids
/// are never reused, so a dead worker's events stay correctly labeled).
class ThreadRegistry {
 public:
  static ThreadRegistry& Global();

  /// Dense id of the calling thread (registered on first call).
  uint32_t CurrentTid();

  /// Names (or renames) the calling thread. Bounded: past kMaxStoredNames
  /// live entries new names are dropped and the thread renders as "t<id>".
  void SetCurrentName(std::string name);

  /// "" when the thread never named itself (render as "t<id>").
  std::string NameOf(uint32_t tid) const;

  /// Copy of every (tid, name) pair currently stored.
  std::vector<std::pair<uint32_t, std::string>> Names() const;

  static constexpr size_t kMaxStoredNames = 1u << 15;

 private:
  mutable std::mutex mu_;
  std::atomic<uint32_t> next_tid_{0};
  std::map<uint32_t, std::string> names_;
};

/// RAII thread label: names the calling thread for the scope's duration
/// and restores the previous name (if any) on exit. Used by the redo
/// worker pool, the log shipper's poll loop, and the standby applier so
/// recorder events and trace spans carry readable thread names.
class ScopedThreadName {
 public:
  explicit ScopedThreadName(std::string name);
  ~ScopedThreadName();
  ScopedThreadName(const ScopedThreadName&) = delete;
  ScopedThreadName& operator=(const ScopedThreadName&) = delete;

 private:
  uint32_t tid_;
  std::string previous_;
};

/// Compact binary event kinds the flight recorder understands. The
/// payload fields (lsn, a, b) are per-type; DescribeFlightEvent in
/// obs/blackbox.h renders them for humans.
enum class FlightEventType : uint16_t {
  kNone = 0,
  /// Sampled WAL append batch: lsn = last appended, a = records since the
  /// previous sample on this thread, b = framed bytes in that window.
  kWalAppend = 1,
  /// A durability point reaped completions: lsn = stable watermark,
  /// a = blocked micros, b = batches reaped.
  kWalForce = 2,
  /// The log manager poisoned itself (torn/crashed force).
  kWalPoisoned = 3,
  /// One redo component replayed: lsn = component min LSN, a = records,
  /// b = worker index.
  kRedoComponent = 4,
  /// Transaction rolled back: a = txn id, b = CLRs logged.
  kTxnAbort = 5,
  /// Fault site fired: a = interned site name, b = action enum.
  kFaultFire = 6,
  /// Adaptive policy reclassified an object: a = object id,
  /// b = (old_class << 8) | new_class.
  kPolicyFlip = 7,
  /// Simulated crash point: a = 1 when the final force was torn.
  kCrash = 8,
  /// Standby promoted: lsn = applied watermark, a = RTO micros.
  kPromote = 9,
  /// Recovery began: lsn = redo start (0 until analysis).
  kRecoveryStart = 10,
  /// Recovery finished: lsn = redo start, a = ops redone, b = losers.
  kRecoveryDone = 11,
  /// Checkpoint logged: lsn = checkpoint LSN.
  kCheckpoint = 12,
  /// Subsystem health transition: a = interned subsystem, b = new state.
  kHealthChange = 13,
  /// A black-box dump was cut: a = interned reason.
  kBlackBoxDump = 14,
  /// Log-store compaction pass: lsn = checkpoint LSN after the pass,
  /// a = live images re-logged forward, b = framed bytes moved.
  kCompaction = 15,
};

/// Stable name for an event type ("wal.append", "fault.fire", ...).
const char* FlightEventTypeName(FlightEventType type);

/// One decoded (snapshot/black-box) flight event.
struct FlightEventView {
  uint64_t seq = 0;    // global sequence number (0-based)
  uint64_t ts_us = 0;  // micros since the recorder epoch
  uint64_t lsn = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t tid = 0;
  FlightEventType type = FlightEventType::kNone;
};

/// \brief Always-on lock-free ring buffer of the last N binary events —
/// the black box the post-crash artifacts are cut from.
///
/// Writers claim a slot with one relaxed fetch_add and publish it with a
/// per-slot seqlock (zero tag while filling, seq+1 when complete); every
/// field is an atomic, so concurrent writers that lap each other and a
/// reader that snapshots mid-write are race-free — the reader simply
/// discards slots whose tag changed under it. Cost per event is ~6 relaxed
/// stores plus one steady_clock read; the WAL append path amortizes even
/// that by sampling (see log_manager.cc). Snapshot() and the black-box
/// encoder read the ring without stopping writers.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 8192;

  /// `capacity` is rounded up to a power of two.
  explicit FlightRecorder(size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder. Enabled (always-on) by default.
  static FlightRecorder& Global();

  void Record(FlightEventType type, uint64_t lsn = 0, uint64_t a = 0,
              uint64_t b = 0);

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Micros since the recorder's construction (monotonic clock).
  uint64_t NowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Events ever recorded (including the ones the ring has overwritten).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return slots_.size(); }

  /// Interns a small string (fault site, subsystem name) and returns its
  /// 1-based id for use in an event payload; 0 means "none". Takes a
  /// mutex — for rare events only, never the append path.
  uint32_t Intern(std::string_view s);
  /// The intern table; index i holds the string with id i + 1.
  std::vector<std::string> InternedStrings() const;

  /// Coherent copy of the ring, oldest first. Slots being overwritten
  /// concurrently are skipped (they reappear, newer, in the next
  /// snapshot); the result is therefore complete up to in-flight writes.
  std::vector<FlightEventView> Snapshot() const;

  /// Test helper: drops every event and the sequence counter. Not safe
  /// against concurrent writers.
  void Clear();

 private:
  struct Slot {
    /// 0 = empty or mid-write; otherwise 1 + the event's sequence number.
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> lsn{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    /// (tid << 16) | event type.
    std::atomic<uint64_t> meta{0};
  };

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> head_{0};
  std::vector<Slot> slots_;  // size is a power of two
  size_t mask_;

  mutable std::mutex intern_mu_;
  std::vector<std::string> interned_;
  std::map<std::string, uint32_t, std::less<>> intern_ids_;
};

}  // namespace loglog

#endif  // LOGLOG_OBS_FLIGHT_RECORDER_H_
