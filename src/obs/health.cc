#include "obs/health.h"

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace loglog {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kFailing:
      return "failing";
  }
  return "unknown";
}

HealthRegistry& HealthRegistry::Global() {
  static HealthRegistry* instance = new HealthRegistry();
  return *instance;
}

void HealthRegistry::Set(std::string_view subsystem, HealthState state,
                         std::string_view detail) {
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(subsystem);
    if (it == entries_.end()) {
      it = entries_.emplace(std::string(subsystem), Entry{}).first;
      changed = state != HealthState::kOk;
      if (changed) ++it->second.transitions;
    } else if (it->second.state != state) {
      changed = true;
      ++it->second.transitions;
    }
    it->second.state = state;
    it->second.detail = std::string(detail);
  }
  if (changed) {
    FlightRecorder& rec = FlightRecorder::Global();
    rec.Record(FlightEventType::kHealthChange, 0, rec.Intern(subsystem),
               static_cast<uint64_t>(state));
  }
}

HealthState HealthRegistry::Get(std::string_view subsystem) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(subsystem);
  return it == entries_.end() ? HealthState::kOk : it->second.state;
}

HealthState HealthRegistry::Worst() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthState worst = HealthState::kOk;
  for (const auto& [name, entry] : entries_) {
    if (entry.state > worst) worst = entry.state;
  }
  return worst;
}

std::map<std::string, HealthRegistry::Entry> HealthRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

std::string HealthRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  for (const auto& [name, entry] : Snapshot()) {
    w.Key(name).BeginObject();
    w.Key("state").String(HealthStateName(entry.state));
    if (!entry.detail.empty()) w.Key("detail").String(entry.detail);
    w.Key("transitions").Uint(entry.transitions);
    w.EndObject();
  }
  w.EndObject();
  return w.Take();
}

std::string HealthRegistry::ToString() const {
  std::string out;
  for (const auto& [name, entry] : Snapshot()) {
    out += "  " + name + ": " + HealthStateName(entry.state);
    if (!entry.detail.empty()) out += " (" + entry.detail + ")";
    out += " [" + std::to_string(entry.transitions) + " transitions]\n";
  }
  return out;
}

void HealthRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace loglog
