#ifndef LOGLOG_OBS_HEALTH_H_
#define LOGLOG_OBS_HEALTH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace loglog {

/// Canonical subsystem names health is reported under, so instruments,
/// the storm harnesses and `loglog_inspect` agree on spelling.
namespace health {
inline constexpr std::string_view kWalDevice = "wal.device";
inline constexpr std::string_view kCacheManager = "cache.manager";
inline constexpr std::string_view kReplicationChannel = "ship.channel";
inline constexpr std::string_view kTxnManager = "txn.manager";
inline constexpr std::string_view kRecovery = "recovery";
inline constexpr std::string_view kLogstoreCompactor = "logstore.compactor";
}  // namespace health

enum class HealthState : uint8_t { kOk = 0, kDegraded = 1, kFailing = 2 };

const char* HealthStateName(HealthState state);

/// \brief Process-wide ok/degraded/failing ledger, one entry per
/// subsystem (WAL device, cache manager, replication channel, txn
/// manager, recovery).
///
/// Instruments call Set() at state-change points — a poisoned log manager
/// reports failing, a standby NAK reports degraded, a clean recovery
/// reports ok — and Set() is cheap to call repeatedly: only actual
/// transitions count (and emit a kHealthChange flight event). The storm
/// harnesses assert Worst() != kFailing after every verified iteration,
/// and the telemetry exporter publishes the states as gauges.
class HealthRegistry {
 public:
  struct Entry {
    HealthState state = HealthState::kOk;
    std::string detail;
    /// State transitions observed (a flapping subsystem shows up here
    /// even when the final state is ok).
    uint64_t transitions = 0;
  };

  static HealthRegistry& Global();

  /// Records `subsystem` as being in `state`. Unchanged states update the
  /// detail only; transitions bump the change counter and land a
  /// kHealthChange event in the flight recorder.
  void Set(std::string_view subsystem, HealthState state,
           std::string_view detail = "");

  /// kOk for subsystems that never reported.
  HealthState Get(std::string_view subsystem) const;

  /// The worst state any subsystem currently reports (kOk when empty).
  HealthState Worst() const;

  std::map<std::string, Entry> Snapshot() const;

  /// {"wal.device":{"state":"ok","detail":"...","transitions":N},...}
  std::string ToJson() const;

  /// One "subsystem: state (detail)" line per entry.
  std::string ToString() const;

  /// Forgets every entry (storm harnesses start from a clean slate so a
  /// previous run's terminal state cannot leak into their assertions).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace loglog

#endif  // LOGLOG_OBS_HEALTH_H_
