#include "obs/histogram.h"

#include <cstdio>

#include "obs/json.h"

namespace loglog {

uint64_t Histogram::Percentile(double q) const {
  if (n_ == 0) return 0;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(n_));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (const auto& [value, count] : counts_) {
    seen += count;
    if (seen >= target) return value;
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2f max=%llu p50=%llu p90=%llu p99=%llu",
                static_cast<unsigned long long>(n_), mean(),
                static_cast<unsigned long long>(max_),
                static_cast<unsigned long long>(Percentile(0.5)),
                static_cast<unsigned long long>(Percentile(0.9)),
                static_cast<unsigned long long>(Percentile(0.99)));
  return buf;
}

std::string Histogram::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("n").Uint(n_);
  w.Key("mean").Double(mean());
  w.Key("max").Uint(max_);
  w.Key("p50").Uint(Percentile(0.5));
  w.Key("p90").Uint(Percentile(0.9));
  w.Key("p99").Uint(Percentile(0.99));
  w.EndObject();
  return w.Take();
}

}  // namespace loglog
