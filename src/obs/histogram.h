#ifndef LOGLOG_OBS_HISTOGRAM_H_
#define LOGLOG_OBS_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>

namespace loglog {

/// \brief Exact small-domain histogram for experiment metrics.
///
/// The quantities we histogram (atomic flush set sizes, write graph node
/// counts, ops redone, force latencies in microseconds) have small integer
/// domains, so an exact map-based histogram is simpler and more faithful
/// than bucketing. Absorbed into the observability layer: this is the
/// value type behind MetricsRegistry histograms, and the exact counts map
/// is what makes histogram snapshots *subtractable* (see
/// MetricsSnapshot::Delta).
///
/// Not thread-safe; MetricsRegistry wraps it in a locked HistogramMetric
/// for concurrent recording.
class Histogram {
 public:
  void Add(uint64_t value) { Add(value, 1); }

  /// Records `count` samples of `value` at once (snapshot subtraction and
  /// merge rebuild histograms through this path).
  void Add(uint64_t value, uint64_t count) {
    if (count == 0) return;
    counts_[value] += count;
    n_ += count;
    sum_ += value * count;
    if (value > max_) max_ = value;
  }

  /// Adds every sample of `other` into this histogram.
  void Merge(const Histogram& other) {
    for (const auto& [value, count] : other.counts_) Add(value, count);
  }

  uint64_t count() const { return n_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const { return n_ == 0 ? 0.0 : static_cast<double>(sum_) / n_; }

  /// Smallest value v such that at least q*count() samples are <= v.
  uint64_t Percentile(double q) const;

  /// Number of samples equal to `value`.
  uint64_t CountOf(uint64_t value) const {
    auto it = counts_.find(value);
    return it == counts_.end() ? 0 : it->second;
  }

  /// The exact value -> sample-count map.
  const std::map<uint64_t, uint64_t>& counts() const { return counts_; }

  /// "n=<N> mean=<M> max=<X> p50=<..> p99=<..>" for bench output.
  std::string ToString() const;

  /// {"n":..,"mean":..,"max":..,"p50":..,"p90":..,"p99":..} summary.
  std::string ToJson() const;

  void Clear() {
    counts_.clear();
    n_ = 0;
    sum_ = 0;
    max_ = 0;
  }

 private:
  std::map<uint64_t, uint64_t> counts_;
  uint64_t n_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_OBS_HISTOGRAM_H_
