#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace loglog {

JsonWriter& JsonWriter::Double(double v) {
  Separator();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    out_.append("null");
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_.append(buf);
  }
  fresh_ = false;
  return *this;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\r':
        out_.append("\\r");
        break;
      case '\t':
        out_.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(static_cast<char>(c));
        }
    }
  }
  out_.push_back('"');
}

std::string JsonEscape(std::string_view s) {
  JsonWriter w;
  w.String(s);
  return w.Take();
}

namespace {

/// Byte-wise recursive-descent JSON validator.
class JsonChecker {
 public:
  explicit JsonChecker(Slice doc) : data_(doc.data()), size_(doc.size()) {}

  Status Check() {
    SkipWs();
    LOGLOG_RETURN_IF_ERROR(Value(0));
    SkipWs();
    if (pos_ != size_) return Fail("trailing bytes after document");
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Fail(const char* what) const {
    return Status::Corruption("json syntax error at offset " +
                              std::to_string(pos_) + ": " + what);
  }

  bool Eof() const { return pos_ >= size_; }
  char Peek() const { return static_cast<char>(data_[pos_]); }

  void SkipWs() {
    while (!Eof()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Eof() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (size_ - pos_ < lit.size()) return false;
    for (size_t i = 0; i < lit.size(); ++i) {
      if (static_cast<char>(data_[pos_ + i]) != lit[i]) return false;
    }
    pos_ += lit.size();
    return true;
  }

  Status Value(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (Eof()) return Fail("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{':
        return Object(depth);
      case '[':
        return Array(depth);
      case '"':
        return String();
      case 't':
        return ConsumeLiteral("true") ? Status::OK() : Fail("bad literal");
      case 'f':
        return ConsumeLiteral("false") ? Status::OK() : Fail("bad literal");
      case 'n':
        return ConsumeLiteral("null") ? Status::OK() : Fail("bad literal");
      default:
        return Number();
    }
  }

  Status Object(int depth) {
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (Eof() || Peek() != '"') return Fail("expected object key");
      LOGLOG_RETURN_IF_ERROR(String());
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      LOGLOG_RETURN_IF_ERROR(Value(depth + 1));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}'");
    }
  }

  Status Array(int depth) {
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWs();
      LOGLOG_RETURN_IF_ERROR(Value(depth + 1));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or ']'");
    }
  }

  Status String() {
    ++pos_;  // '"'
    while (true) {
      if (Eof()) return Fail("unterminated string");
      char c = static_cast<char>(data_[pos_++]);
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Fail("raw control character in string");
      }
      if (c == '\\') {
        if (Eof()) return Fail("unterminated escape");
        char e = static_cast<char>(data_[pos_++]);
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Fail("bad \\u escape");
            }
            ++pos_;
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          --pos_;
          return Fail("bad escape character");
        }
      }
    }
  }

  Status Number() {
    size_t start = pos_;
    Consume('-');
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      pos_ = start;
      return Fail("expected value");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digits required after '.'");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("digits required in exponent");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status JsonSyntaxCheck(Slice doc) {
  if (doc.empty()) return Status::Corruption("empty json document");
  return JsonChecker(doc).Check();
}

}  // namespace loglog
