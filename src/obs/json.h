#ifndef LOGLOG_OBS_JSON_H_
#define LOGLOG_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/slice.h"
#include "common/status.h"

namespace loglog {

/// \brief Minimal streaming JSON writer shared by every observability
/// export (metrics snapshots, trace events, stats ToJson methods).
///
/// Emits compact (no-whitespace) JSON into an owned string. The caller
/// drives structure explicitly — BeginObject/Key/EndObject — and the
/// writer handles comma placement and string escaping. No validation of
/// caller mistakes (unbalanced Begin/End) beyond what JsonSyntaxCheck
/// catches on the output; this is an internal tool, not a parser.
class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Separator();
    out_.push_back('{');
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndObject() {
    out_.push_back('}');
    fresh_ = false;
    return *this;
  }
  JsonWriter& BeginArray() {
    Separator();
    out_.push_back('[');
    fresh_ = true;
    return *this;
  }
  JsonWriter& EndArray() {
    out_.push_back(']');
    fresh_ = false;
    return *this;
  }
  /// Object key; the next value belongs to it.
  JsonWriter& Key(std::string_view k) {
    Separator();
    AppendEscaped(k);
    out_.push_back(':');
    fresh_ = true;
    return *this;
  }
  JsonWriter& String(std::string_view v) {
    Separator();
    AppendEscaped(v);
    fresh_ = false;
    return *this;
  }
  JsonWriter& Uint(uint64_t v) {
    Separator();
    out_.append(std::to_string(v));
    fresh_ = false;
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Separator();
    out_.append(std::to_string(v));
    fresh_ = false;
    return *this;
  }
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v) {
    Separator();
    out_.append(v ? "true" : "false");
    fresh_ = false;
    return *this;
  }
  /// Splices a pre-serialized JSON value verbatim (for embedding one
  /// document inside another).
  JsonWriter& Raw(std::string_view json) {
    Separator();
    out_.append(json);
    fresh_ = false;
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separator() {
    if (!fresh_ && !out_.empty()) {
      char last = out_.back();
      if (last != '{' && last != '[' && last != ':') out_.push_back(',');
    }
  }
  void AppendEscaped(std::string_view s);

  std::string out_;
  bool fresh_ = true;
};

/// Escapes `s` as a JSON string literal (with surrounding quotes).
std::string JsonEscape(std::string_view s);

/// \brief Strict syntax check of a complete JSON document.
///
/// A recursive-descent validator (objects, arrays, strings with escapes,
/// numbers, true/false/null) used by tests and by `loglog_inspect` to
/// assert that every export is loadable before it leaves the process.
/// Returns OK or Corruption with the byte offset of the first error.
Status JsonSyntaxCheck(Slice doc);

}  // namespace loglog

#endif  // LOGLOG_OBS_JSON_H_
