#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace loglog {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

std::string MetricsRegistry::FullName(std::string_view name,
                                      const MetricLabels& labels) {
  std::string out(name);
  if (labels.empty()) return out;
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  out.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(sorted[i].first);
    out.push_back('=');
    out.append(sorted[i].second);
  }
  out.push_back('}');
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const MetricLabels& labels) {
  std::string key = FullName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = counters_.try_emplace(std::move(key));
  if (inserted) it->second = std::make_unique<Counter>();
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const MetricLabels& labels) {
  std::string key = FullName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gauges_.try_emplace(std::move(key));
  if (inserted) it->second = std::make_unique<Gauge>();
  return it->second.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name,
                                               const MetricLabels& labels) {
  std::string key = FullName(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = histograms_.try_emplace(std::move(key));
  if (inserted) it->second = std::make_unique<HistogramMetric>();
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->snapshot();
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot d;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    d.counters[name] = value >= base ? value - base : 0;
  }
  d.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      d.histograms[name] = hist;
      continue;
    }
    // Exact subtraction: per-value count difference, re-accumulated so
    // n/sum/max describe only the in-between samples.
    Histogram diff;
    for (const auto& [value, count] : hist.counts()) {
      uint64_t base = it->second.CountOf(value);
      if (count > base) diff.Add(value, count - base);
    }
    d.histograms[name] = std::move(diff);
  }
  return d;
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Key(name).Uint(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Key(name).Int(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : histograms) {
    w.Key(name).Raw(hist.ToJson());
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " = " + std::to_string(value) + "\n";
  }
  for (const auto& [name, hist] : histograms) {
    out += name + " = " + hist.ToString() + "\n";
  }
  return out;
}

}  // namespace loglog
