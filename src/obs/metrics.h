#ifndef LOGLOG_OBS_METRICS_H_
#define LOGLOG_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace loglog {

/// Label set of a metric instance, e.g. {{"policy", "group"}}. Labels are
/// folded into the instance's full name as `name{k=v,...}` with keys
/// sorted, so the same (name, labels) pair always resolves to the same
/// instance.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Canonical metric names used by the instrumented layers, so call sites,
/// tests, and DESIGN.md's naming-scheme table stay in sync. Scheme:
/// `<layer>.<subject>.<measure>` (+ `{label=value}` dimensions).
namespace metric {
// WAL (src/wal/log_manager.cc).
inline constexpr std::string_view kWalForceLatencyUs = "wal.force.latency_us";
inline constexpr std::string_view kWalForceBatchRecords =
    "wal.force.batch_records";
inline constexpr std::string_view kWalForceCalls = "wal.force.calls";
inline constexpr std::string_view kWalForceNoops = "wal.force.noops";
inline constexpr std::string_view kWalRecordsCoalesced =
    "wal.force.records_coalesced";
inline constexpr std::string_view kWalAppendRecords = "wal.append.records";
inline constexpr std::string_view kWalAppendBytes = "wal.append.bytes";
/// Heap allocations charged to the append path (arena growth). Steady
/// state on the reserve+fill path is zero per record, which
/// wal_hot_path_test asserts.
inline constexpr std::string_view kWalAppendAllocs = "wal.append.allocs";
/// Async completion model: forces submitted to the device queue, and the
/// time a durability point actually blocked reaping completions (the
/// part of force latency that submit/reap overlap did not hide).
inline constexpr std::string_view kWalForceSubmits = "wal.force.submits";
inline constexpr std::string_view kWalForceWaitUs = "wal.force.wait_us";
// Cache manager (src/cache/cache_manager.cc).
inline constexpr std::string_view kCmPurges = "cm.purge.calls";
inline constexpr std::string_view kCmNodesInstalled = "cm.install.nodes";
inline constexpr std::string_view kCmOpsInstalled = "cm.install.ops";
inline constexpr std::string_view kCmIdentityWrites = "cm.identity.writes";
inline constexpr std::string_view kCmIdentityBytes = "cm.identity.bytes";
inline constexpr std::string_view kCmFlushTxns = "cm.flush_txn.count";
inline constexpr std::string_view kCmEvictions = "cm.evict.objects";
inline constexpr std::string_view kCmCheckpoints = "cm.checkpoint.count";
inline constexpr std::string_view kCmFlushSetSize = "cm.flush.set_size";
inline constexpr std::string_view kCmBudgetInstalls = "cm.budget.installs";
inline constexpr std::string_view kCmIdentityBudgetRequests =
    "cm.identity.budget_requests";
inline constexpr std::string_view kCmIdentityBudgetDrops =
    "cm.identity.budget_drops";
/// Batched rW-graph maintenance: drains of the pending-op batch into the
/// write graph and the ops they carried (ops/batch = amortization win).
inline constexpr std::string_view kCmGraphBatches = "cm.graph.batches";
inline constexpr std::string_view kCmGraphBatchedOps = "cm.graph.batched_ops";
// Adaptive logging policy (src/adapt/adaptive_policy.cc). Promotions
// move an object toward value-carrying classes (W_P / W_PL), demotions
// back to W_L; restored counts classes reseeded from analysis.
inline constexpr std::string_view kAdaptDecisions = "adapt.policy.decisions";
inline constexpr std::string_view kAdaptPromotions =
    "adapt.policy.promotions";
inline constexpr std::string_view kAdaptDemotions = "adapt.policy.demotions";
inline constexpr std::string_view kAdaptRestored = "adapt.policy.restored";
// Recovery (src/recovery/).
inline constexpr std::string_view kRecoveryRuns = "recovery.runs";
inline constexpr std::string_view kRecoveryDurationUs =
    "recovery.run.duration_us";
inline constexpr std::string_view kRecoveryOpsRedone = "recovery.ops.redone";
inline constexpr std::string_view kRecoveryOpsSkipped =
    "recovery.ops.skipped";
inline constexpr std::string_view kRecoveryOpsVoided = "recovery.ops.voided";
inline constexpr std::string_view kRecoveryComponents =
    "recovery.redo.components";
// Live recovery progress gauges (reset at the start of every recovery;
// fed by the analysis scan and, during parallel redo, by each worker).
// On a clean full redo records_total == records_done, and on a redo with
// nothing installed records_redone == records_total.
inline constexpr std::string_view kRecoveryProgressRecordsTotal =
    "recovery.progress.records_total";
inline constexpr std::string_view kRecoveryProgressRecordsDone =
    "recovery.progress.records_done";
inline constexpr std::string_view kRecoveryProgressRecordsRedone =
    "recovery.progress.records_redone";
inline constexpr std::string_view kRecoveryProgressComponentsTotal =
    "recovery.progress.components_total";
inline constexpr std::string_view kRecoveryProgressComponentsDone =
    "recovery.progress.components_done";
inline constexpr std::string_view kRecoveryProgressBytes =
    "recovery.progress.bytes";
inline constexpr std::string_view kMediaRecoveries = "media.recoveries";
inline constexpr std::string_view kMediaRepairs = "media.repairs";
// Faults (src/fault/fault_injector.cc).
inline constexpr std::string_view kFaultFires = "fault.fires";
// Replication (src/ship/). Lag gauges: `lsn` is total staleness (primary
// durable LSN minus standby applied LSN); `records`/`bytes` measure the
// in-flight window (first-time-shipped minus standby-acknowledged).
inline constexpr std::string_view kShipBatchesSent = "ship.batches.sent";
inline constexpr std::string_view kShipRecordsShipped =
    "ship.records.shipped";
inline constexpr std::string_view kShipBytesShipped = "ship.bytes.shipped";
inline constexpr std::string_view kShipReconnects = "ship.reconnects";
inline constexpr std::string_view kShipResyncs = "ship.resyncs";
inline constexpr std::string_view kShipPrimaryDurableLsn =
    "ship.primary.durable_lsn";
inline constexpr std::string_view kShipLagLsn = "ship.lag.lsn";
inline constexpr std::string_view kShipLagRecords = "ship.lag.records";
inline constexpr std::string_view kShipLagBytes = "ship.lag.bytes";
inline constexpr std::string_view kShipBatchRecords = "ship.batch.records";
inline constexpr std::string_view kShipApplyLatencyUs =
    "ship.apply.latency_us";
inline constexpr std::string_view kShipStandbyAppliedLsn =
    "ship.standby.applied_lsn";
inline constexpr std::string_view kShipStandbyRecordsApplied =
    "ship.standby.records_applied";
inline constexpr std::string_view kShipBatchesDuplicate =
    "ship.batches.duplicate";
inline constexpr std::string_view kShipBatchesGap = "ship.batches.gap";
inline constexpr std::string_view kShipFramesCorrupt =
    "ship.frames.corrupt";
inline constexpr std::string_view kShipPromotions = "ship.promotions";
inline constexpr std::string_view kShipPromoteRtoUs =
    "ship.promote.rto_us";
// Log device reclamation (src/storage/simulated_disk.cc): bytes released
// from the hot retained log by TruncatePrefix (they either spill to the
// cold tier or, with the archive disabled, are dropped outright).
inline constexpr std::string_view kLogDeviceReclaimedBytes =
    "log.device.reclaimed_bytes";
// Log-as-database backend (src/logstore/). Index size gauges track the
// published LogIndex; read counters split cache misses by where the
// image came from; compaction counters bill the forward rewrites.
inline constexpr std::string_view kLogstoreIndexEntries =
    "logstore.index.entries";
inline constexpr std::string_view kLogstoreIndexLiveBytes =
    "logstore.index.live_bytes";
inline constexpr std::string_view kLogstoreIndexPublishes =
    "logstore.index.publishes";
inline constexpr std::string_view kLogstoreReadsLog = "logstore.reads.log";
inline constexpr std::string_view kLogstoreReadsCold = "logstore.reads.cold";
inline constexpr std::string_view kLogstoreCompactionRuns =
    "logstore.compaction.runs";
inline constexpr std::string_view kLogstoreCompactionBytesMoved =
    "logstore.compaction.bytes_moved";
inline constexpr std::string_view kLogstoreIndexCheckpoints =
    "logstore.index.checkpoints";
}  // namespace metric

/// Monotonically increasing counter. Relaxed atomics: counters are
/// statistical, and every reader snapshots through the registry.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Mutex-guarded exact histogram (see obs/histogram.h). Observe() is the
/// hot call; everything else copies under the lock.
class HistogramMetric {
 public:
  void Observe(uint64_t value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Add(value);
  }
  Histogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Clear();
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// \brief Point-in-time copy of every metric in a registry.
///
/// Counters and gauges are plain values; histograms carry their exact
/// value->count maps, which makes snapshots subtractable: Delta()
/// reconstructs the histogram of *only* the samples recorded between the
/// two snapshots. This is how benches and `loglog_inspect` report the
/// cost of one phase out of a shared registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> histograms;

  /// This snapshot minus `earlier`: counters and histogram counts
  /// subtract (entries absent from `earlier` count from zero); gauges
  /// keep this snapshot's value (a gauge is a level, not a flow).
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{n,mean,...}}}
  std::string ToJson() const;

  std::string ToString() const;
};

/// \brief Thread-safe registry of named counters, gauges and histograms.
///
/// Get* registers on first use and returns a stable pointer — instruments
/// cache the pointer once and update it lock-free (counters/gauges) or
/// under a per-histogram lock. Snapshot() copies everything at once.
/// The process-wide instance is Global(); tests may create private
/// registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrument reports to.
  static MetricsRegistry& Global();

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. The pointer is valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name, const MetricLabels& labels = {});
  Gauge* GetGauge(std::string_view name, const MetricLabels& labels = {});
  HistogramMetric* GetHistogram(std::string_view name,
                                const MetricLabels& labels = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every value. Registered instances (and outstanding pointers)
  /// stay valid — only the recorded data is discarded.
  void ResetAll();

  /// `name{k1=v1,k2=v2}` with label keys sorted (the snapshot map key).
  static std::string FullName(std::string_view name,
                              const MetricLabels& labels);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace loglog

#endif  // LOGLOG_OBS_METRICS_H_
