#include "obs/telemetry.h"

#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/json.h"

namespace loglog {

namespace {

/// Splits a snapshot key `name{k1=v1,k2=v2}` into its name and rendered
/// Prometheus label block (`{k1="v1",k2="v2"}`, or "" when unlabeled).
void SplitFullName(const std::string& full, std::string* name,
                   std::string* labels) {
  const size_t brace = full.find('{');
  if (brace == std::string::npos) {
    *name = full;
    labels->clear();
    return;
  }
  *name = full.substr(0, brace);
  labels->assign("{");
  // full ends with '}'; walk k=v pairs separated by ','.
  size_t pos = brace + 1;
  bool first = true;
  while (pos < full.size() && full[pos] != '}') {
    const size_t eq = full.find('=', pos);
    size_t end = full.find(',', pos);
    if (end == std::string::npos || end > full.size() - 1) {
      end = full.size() - 1;  // the closing '}'
    }
    if (eq == std::string::npos || eq > end) break;
    if (!first) labels->push_back(',');
    first = false;
    labels->append(full.substr(pos, eq - pos));
    labels->append("=\"");
    labels->append(full.substr(eq + 1, end - eq - 1));
    labels->push_back('"');
    pos = end + (full[end] == ',' ? 1 : 0);
    if (full[end] == '}') break;
  }
  labels->push_back('}');
}

std::string PromName(const std::string& name) {
  std::string out = "loglog_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// `{quantile="0.5"}` merged with an existing label block.
std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

void AppendHistogramJson(JsonWriter* w, const Histogram& h) {
  w->BeginObject();
  w->Key("n").Uint(h.count());
  w->Key("mean").Double(h.mean());
  w->Key("max").Uint(h.max());
  w->Key("p50").Uint(h.Percentile(0.5));
  w->Key("p90").Uint(h.Percentile(0.9));
  w->Key("p99").Uint(h.Percentile(0.99));
  w->EndObject();
}

Status AppendLine(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  const size_t n = std::fwrite(line.data(), 1, line.size(), f);
  const bool nl = std::fputc('\n', f) != EOF;
  const int rc = std::fclose(f);
  if (n != line.size() || !nl || rc != 0) {
    return Status::IoError("short append to " + path);
  }
  return Status::OK();
}

Status ReplaceFile(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + tmp);
  const size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const int rc = std::fclose(f);
  if (n != body.size() || rc != 0) {
    return Status::IoError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename " + tmp);
  }
  return Status::OK();
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  std::string name, labels;
  char buf[64];
  for (const auto& [full, value] : snap.counters) {
    SplitFullName(full, &name, &labels);
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [full, value] : snap.gauges) {
    SplitFullName(full, &name, &labels);
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [full, hist] : snap.histograms) {
    SplitFullName(full, &name, &labels);
    const std::string prom = PromName(name);
    out += "# TYPE " + prom + " summary\n";
    const struct {
      const char* q;
      double v;
    } quantiles[] = {{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}};
    for (const auto& q : quantiles) {
      out += prom + WithLabel(labels, std::string("quantile=\"") + q.q +
                                          "\"") +
             " " + std::to_string(hist.Percentile(q.v)) + "\n";
    }
    out += prom + "_count" + labels + " " + std::to_string(hist.count()) +
           "\n";
    out += prom + "_sum" + labels + " " + std::to_string(hist.sum()) + "\n";
  }
  out += "# TYPE loglog_health_state gauge\n";
  for (const auto& [subsystem, entry] : HealthRegistry::Global().Snapshot()) {
    std::snprintf(buf, sizeof(buf), "%d", static_cast<int>(entry.state));
    out += "loglog_health_state{subsystem=\"" + subsystem + "\"} " + buf +
           "\n";
  }
  return out;
}

std::string TelemetrySampleJson(const MetricsSnapshot& snap,
                                uint64_t ts_us) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ts_us").Uint(ts_us);
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).Uint(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) w.Key(name).Int(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, hist] : snap.histograms) {
    w.Key(name);
    AppendHistogramJson(&w, hist);
  }
  w.EndObject();
  w.Key("health").BeginObject();
  for (const auto& [subsystem, entry] : HealthRegistry::Global().Snapshot()) {
    w.Key(subsystem).String(HealthStateName(entry.state));
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

TelemetryExporter::TelemetryExporter(Options options)
    : options_(std::move(options)) {}

Status TelemetryExporter::Sample() {
  MetricsRegistry& reg =
      options_.registry != nullptr ? *options_.registry
                                   : MetricsRegistry::Global();
  const MetricsSnapshot snap = reg.Snapshot();
  const uint64_t ts_us = FlightRecorder::Global().NowUs();
  if (!options_.jsonl_path.empty()) {
    LOGLOG_RETURN_IF_ERROR(
        AppendLine(options_.jsonl_path, TelemetrySampleJson(snap, ts_us)));
  }
  if (!options_.prom_path.empty()) {
    LOGLOG_RETURN_IF_ERROR(
        ReplaceFile(options_.prom_path, PrometheusText(snap)));
  }
  ++samples_;
  return Status::OK();
}

}  // namespace loglog
