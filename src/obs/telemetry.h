#ifndef LOGLOG_OBS_TELEMETRY_H_
#define LOGLOG_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace loglog {

/// \brief Renders a metrics snapshot in the Prometheus text exposition
/// format (version 0.0.4).
///
/// Metric names gain a `loglog_` prefix and dots become underscores
/// (`wal.appends` -> `loglog_wal_appends`); labels survive as
/// `{k="v",...}`. Histograms are exposed as summaries: `quantile="0.5"`,
/// `"0.9"`, `"0.99"` series plus `_count` and `_sum`. Health states are
/// appended as `loglog_health_state{subsystem="..."} 0|1|2` gauges.
std::string PrometheusText(const MetricsSnapshot& snap);

/// One JSON object (no trailing newline) holding `ts_us`, counters,
/// gauges, histogram summaries and health states — the JSONL time-series
/// record the exporter appends per sample.
std::string TelemetrySampleJson(const MetricsSnapshot& snap, uint64_t ts_us);

/// \brief Periodic metrics publisher for benches and storm harnesses.
///
/// Each Sample() appends one JSONL record to `jsonl_path` (append-only,
/// crash-tolerant time series) and atomically rewrites `prom_path` with
/// the current Prometheus exposition. Either path may be empty to skip
/// that output. Not a server: callers decide the cadence (per storm
/// iteration, per bench phase).
class TelemetryExporter {
 public:
  struct Options {
    std::string jsonl_path;
    std::string prom_path;
    /// Snapshot source; the global registry when null.
    MetricsRegistry* registry = nullptr;
  };

  explicit TelemetryExporter(Options options);

  /// Takes one snapshot and publishes it to the configured outputs.
  Status Sample();

  uint64_t samples_taken() const { return samples_; }

 private:
  Options options_;
  uint64_t samples_ = 0;
};

}  // namespace loglog

#endif  // LOGLOG_OBS_TELEMETRY_H_
