#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_map>

#include "obs/flight_recorder.h"
#include "obs/json.h"

namespace loglog {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::AddComplete(std::string_view name, std::string_view cat,
                                uint64_t start_us, uint64_t dur_us,
                                TraceArgs args) {
  // Unconditional: TraceSpan gates on the enabled flag at *construction*,
  // so a span that began while tracing was on must land even if tracing
  // was switched off before it ended (End() runs after the disable).
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = TraceEvent::Phase::kComplete;
  ev.ts_us = start_us;
  ev.dur_us = dur_us;
  ev.args = std::move(args);
  ev.tid = ThreadRegistry::Global().CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void TraceRecorder::AddInstant(std::string_view name, std::string_view cat,
                               TraceArgs args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.phase = TraceEvent::Phase::kInstant;
  ev.ts_us = NowUs();
  ev.args = std::move(args);
  ev.tid = ThreadRegistry::Global().CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::string TraceRecorder::ToChromeJson() const {
  std::vector<TraceEvent> events = Events();
  // Chrome's importer tolerates any order, but ts-sorted output diffs
  // cleanly and reads linearly in a text editor.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Perfetto labels tracks from "M"-phase thread_name metadata; emit one
  // for every referenced thread the registry has a name for.
  std::set<uint32_t> tids;
  for (const TraceEvent& ev : events) tids.insert(ev.tid);
  for (uint32_t tid : tids) {
    const std::string name = ThreadRegistry::Global().NameOf(tid);
    if (name.empty()) continue;
    w.BeginObject();
    w.Key("name").String("thread_name");
    w.Key("ph").String("M");
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(tid);
    w.Key("args").BeginObject().Key("name").String(name).EndObject();
    w.EndObject();
  }
  for (const TraceEvent& ev : events) {
    w.BeginObject();
    w.Key("name").String(ev.name);
    if (!ev.cat.empty()) w.Key("cat").String(ev.cat);
    w.Key("ph").String(ev.phase == TraceEvent::Phase::kComplete ? "X" : "i");
    w.Key("ts").Uint(ev.ts_us);
    if (ev.phase == TraceEvent::Phase::kComplete) {
      w.Key("dur").Uint(ev.dur_us);
    } else {
      w.Key("s").String("t");  // instant scope: thread
    }
    w.Key("pid").Uint(1);
    w.Key("tid").Uint(ev.tid);
    if (!ev.args.empty()) {
      w.Key("args").BeginObject();
      for (const auto& [key, value] : ev.args) w.Key(key).String(value);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit").String("ms");
  w.EndObject();
  return w.Take();
}

Status TraceRecorder::WriteChromeJson(const std::string& path) const {
  std::string doc = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  int close_rc = std::fclose(f);
  if (written != doc.size() || close_rc != 0) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::OK();
}

Status ValidateSpanNesting(const std::vector<TraceEvent>& events) {
  // Group complete events per thread, sort by (start asc, duration desc)
  // so a parent precedes its children, then sweep with a stack of open
  // intervals. A span must end at or before its innermost enclosing
  // span's end — anything else is a partial overlap.
  std::unordered_map<uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& ev : events) {
    if (ev.phase == TraceEvent::Phase::kComplete) {
      by_tid[ev.tid].push_back(&ev);
    }
  }
  for (auto& [tid, spans] : by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    std::vector<const TraceEvent*> open;
    for (const TraceEvent* ev : spans) {
      uint64_t end = ev->ts_us + ev->dur_us;
      while (!open.empty() &&
             open.back()->ts_us + open.back()->dur_us <= ev->ts_us) {
        open.pop_back();
      }
      if (!open.empty() &&
          end > open.back()->ts_us + open.back()->dur_us) {
        return Status::Corruption(
            "span \"" + ev->name + "\" [" + std::to_string(ev->ts_us) + "," +
            std::to_string(end) + ") on tid " + std::to_string(tid) +
            " partially overlaps \"" + open.back()->name + "\"");
      }
      open.push_back(ev);
    }
  }
  return Status::OK();
}

}  // namespace loglog
