#ifndef LOGLOG_OBS_TRACE_H_
#define LOGLOG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace loglog {

/// One key/value annotation on a trace event. Values are strings; numeric
/// annotations are rendered with std::to_string at the call site.
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/// One recorded event, in Chrome trace-event terms: a complete span
/// ("ph":"X", with ts + dur) or an instant event ("ph":"i").
struct TraceEvent {
  enum class Phase : uint8_t { kComplete, kInstant };

  std::string name;
  std::string cat;
  Phase phase = Phase::kComplete;
  /// Microseconds since the recorder's epoch (monotonic clock).
  uint64_t ts_us = 0;
  /// Span duration in microseconds (kComplete only).
  uint64_t dur_us = 0;
  /// Process-wide dense thread id (ThreadRegistry::CurrentTid()), shared
  /// with the flight recorder so both timelines name threads identically.
  uint32_t tid = 0;
  TraceArgs args;
};

/// \brief Structured span/event recorder with Chrome trace-event export.
///
/// Disabled by default: a disabled recorder costs one relaxed atomic load
/// per instrumentation site, so tracing can stay compiled into the hot
/// paths (WAL force, redo workers) permanently. When enabled, events are
/// appended under a mutex with timestamps from a monotonic clock and
/// dense thread ids, and ToChromeJson() emits a document loadable in
/// `about:tracing` / Perfetto (the `traceEvents` array form, complete "X"
/// events for spans and "i" events for instants).
///
/// Thread-safe; parallel-REDO workers record concurrently.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every built-in span reports to.
  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder epoch (monotonic).
  uint64_t NowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Records a completed span [start_us, start_us + dur_us) on the
  /// calling thread. Records unconditionally: the enabled gate lives in
  /// TraceSpan's constructor, so a span that began while tracing was on
  /// is kept even if tracing was disabled before the span ended.
  void AddComplete(std::string_view name, std::string_view cat,
                   uint64_t start_us, uint64_t dur_us, TraceArgs args = {});

  /// Records an instant event at now() on the calling thread. No-op
  /// while disabled.
  void AddInstant(std::string_view name, std::string_view cat,
                  TraceArgs args = {});

  /// Copy of everything recorded so far.
  std::vector<TraceEvent> Events() const;

  size_t size() const;
  void Clear();

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — the Chrome trace
  /// JSON document. Threads named in the ThreadRegistry ("redo-worker-2",
  /// "log-shipper", ...) get "M"-phase thread_name metadata events so
  /// Perfetto labels their tracks.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path` (overwriting).
  Status WriteChromeJson(const std::string& path) const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII span: records one complete event on the recorder that was
/// enabled at construction, covering construction to destruction.
///
/// Captures the enabled flag once, so a span that began while tracing was
/// on is recorded even if tracing is switched off mid-span (and vice
/// versa nothing half-recorded appears).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, std::string_view cat = "",
                     TraceArgs args = {},
                     TraceRecorder* rec = &TraceRecorder::Global())
      : rec_(rec), active_(rec->enabled()) {
    if (!active_) return;
    name_ = name;
    cat_ = cat;
    args_ = std::move(args);
    start_us_ = rec_->NowUs();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an annotation (e.g. a counter known only at span end).
  void AddArg(std::string_view key, std::string_view value) {
    if (active_) args_.emplace_back(key, value);
  }
  void AddArg(std::string_view key, uint64_t value) {
    if (active_) args_.emplace_back(key, std::to_string(value));
  }

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void End() {
    if (!active_) return;
    active_ = false;
    rec_->AddComplete(name_, cat_, start_us_, rec_->NowUs() - start_us_,
                      std::move(args_));
  }

  ~TraceSpan() { End(); }

 private:
  TraceRecorder* rec_;
  bool active_;
  uint64_t start_us_ = 0;
  std::string name_;
  std::string cat_;
  TraceArgs args_;
};

/// \brief Structural audit of recorded spans: on every thread, complete
/// events must either nest fully or be disjoint (no partial overlap), the
/// invariant Perfetto's flame view assumes. Instants are ignored.
/// Returns OK or Corruption naming the first offending pair.
Status ValidateSpanNesting(const std::vector<TraceEvent>& events);

}  // namespace loglog

#endif  // LOGLOG_OBS_TRACE_H_
