#include "ops/function_registry.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/random.h"

namespace loglog {

namespace {

uint64_t HashBytes(const ObjectValue& v) {
  uint64_t h = 0x8445d61a4e774912;
  for (uint8_t b : v) h = Mix64(h ^ b);
  h = Mix64(h ^ v.size());
  return h;
}

Status SetValue(const OperationDesc& op,
                const std::vector<ObjectValue>& /*reads*/,
                std::vector<ObjectValue>* writes) {
  (*writes)[0] = op.params;
  return Status::OK();
}

// params: varint64 offset, length-prefixed bytes. Overwrites (extending if
// needed) writes[0] at offset — the physiological "update a record on a
// page" shape where only the delta is logged.
Status ApplyDelta(const OperationDesc& op,
                  const std::vector<ObjectValue>& /*reads*/,
                  std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t offset;
  Slice bytes;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &offset));
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&p, &bytes));
  ObjectValue& v = (*writes)[0];
  if (v.size() < offset + bytes.size()) v.resize(offset + bytes.size());
  std::memcpy(v.data() + offset, bytes.data(), bytes.size());
  return Status::OK();
}

Status Copy(const OperationDesc& /*op*/,
            const std::vector<ObjectValue>& reads,
            std::vector<ObjectValue>* writes) {
  if (reads.empty()) return Status::InvalidArgument("copy needs one read");
  (*writes)[0] = reads[0];
  return Status::OK();
}

// params: varint32 record_size. Sorts reads[0] viewed as fixed-size
// records into writes[0] — the paper's file-sort example (form of op B).
Status SortRecords(const OperationDesc& op,
                   const std::vector<ObjectValue>& reads,
                   std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint32_t rec;
  LOGLOG_RETURN_IF_ERROR(GetVarint32(&p, &rec));
  if (rec == 0) return Status::InvalidArgument("record size 0");
  if (reads.empty()) return Status::InvalidArgument("sort needs one read");
  const ObjectValue& in = reads[0];
  if (in.size() % rec != 0) {
    return Status::InvalidArgument("input not a multiple of record size");
  }
  size_t n = in.size() / rec;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::memcmp(in.data() + a * rec, in.data() + b * rec, rec) < 0;
  });
  ObjectValue out(in.size());
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * rec, in.data() + order[i] * rec, rec);
  }
  (*writes)[0] = std::move(out);
  return Status::OK();
}

Status Append(const OperationDesc& op,
              const std::vector<ObjectValue>& /*reads*/,
              std::vector<ObjectValue>* writes) {
  ObjectValue& v = (*writes)[0];
  v.insert(v.end(), op.params.begin(), op.params.end());
  return Status::OK();
}

// params: fixed64 seed. Ex(A): evolves application state by a keyed
// hash chain. Deterministic in (A, seed) — replay reproduces the state.
Status AppExecute(const OperationDesc& op,
                  const std::vector<ObjectValue>& reads,
                  std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t seed;
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&p, &seed));
  const ObjectValue& a = reads.empty() ? (*writes)[0] : reads[0];
  ObjectValue out(a.size());
  uint64_t h = seed;
  for (size_t i = 0; i < a.size(); ++i) {
    h = Mix64(h ^ a[i] ^ i);
    out[i] = static_cast<uint8_t>(h);
  }
  (*writes)[0] = std::move(out);
  return Status::OK();
}

// R(A,X): reads = {A, X}, writes = {A}. Absorbs the read object into the
// application state. The value of X is *not* logged — it is re-read from
// the recovered X during replay (the headline saving of Figure 1a).
Status AppRead(const OperationDesc& /*op*/,
               const std::vector<ObjectValue>& reads,
               std::vector<ObjectValue>* writes) {
  if (reads.size() < 2) {
    return Status::InvalidArgument("app read needs reads {A, X}");
  }
  const ObjectValue& a = reads[0];
  const ObjectValue& x = reads[1];
  uint64_t hx = HashBytes(x);
  ObjectValue out(a.size());
  uint64_t h = hx;
  for (size_t i = 0; i < a.size(); ++i) {
    h = Mix64(h ^ a[i]);
    out[i] = static_cast<uint8_t>(h ^ (x.empty() ? 0 : x[i % x.size()]));
  }
  (*writes)[0] = std::move(out);
  return Status::OK();
}

// W_L(A,X): reads = {A}, writes = {X}; params: varint64 out_size,
// fixed64 seed. Emits A's output buffer as a deterministic function of A.
// X's new value does not depend on X's old value: X is blind / notexp.
Status AppWrite(const OperationDesc& op,
                const std::vector<ObjectValue>& reads,
                std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t out_size, seed;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &out_size));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&p, &seed));
  if (reads.empty()) return Status::InvalidArgument("app write needs {A}");
  uint64_t ha = HashBytes(reads[0]) ^ seed;
  ObjectValue out(out_size);
  uint64_t h = ha;
  for (size_t i = 0; i < out_size; ++i) {
    h = Mix64(h + i);
    out[i] = static_cast<uint8_t>(h);
  }
  (*writes)[0] = std::move(out);
  return Status::OK();
}

Status XorMerge(const OperationDesc& /*op*/,
                const std::vector<ObjectValue>& reads,
                std::vector<ObjectValue>* writes) {
  size_t max_size = 0;
  for (const ObjectValue& r : reads) max_size = std::max(max_size, r.size());
  ObjectValue out(max_size, 0);
  for (const ObjectValue& r : reads) {
    for (size_t i = 0; i < r.size(); ++i) out[i] ^= r[i];
  }
  (*writes)[0] = std::move(out);
  return Status::OK();
}

// params: varint64 out_size, fixed64 seed. writes[0] := keyed expansion of
// the hash of all read values.
Status HashCombine(const OperationDesc& op,
                   const std::vector<ObjectValue>& reads,
                   std::vector<ObjectValue>* writes) {
  Slice p(op.params);
  uint64_t out_size, seed;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(&p, &out_size));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&p, &seed));
  uint64_t h = seed;
  for (const ObjectValue& r : reads) h = Mix64(h ^ HashBytes(r));
  ObjectValue out(out_size);
  for (size_t i = 0; i < out_size; ++i) {
    h = Mix64(h + i);
    out[i] = static_cast<uint8_t>(h);
  }
  (*writes)[0] = std::move(out);
  return Status::OK();
}

Status DeleteFn(const OperationDesc& /*op*/,
                const std::vector<ObjectValue>& /*reads*/,
                std::vector<ObjectValue>* /*writes*/) {
  // Deletion has no value computation; the engine interprets OpClass
  // kDelete by erasing the object.
  return Status::OK();
}

}  // namespace

FunctionRegistry::FunctionRegistry() {
  Register(kFuncSetValue, SetValue);
  Register(kFuncApplyDelta, ApplyDelta);
  Register(kFuncCopy, Copy);
  Register(kFuncSortRecords, SortRecords);
  Register(kFuncAppend, Append);
  Register(kFuncAppExecute, AppExecute);
  Register(kFuncAppRead, AppRead);
  Register(kFuncAppWrite, AppWrite);
  Register(kFuncXorMerge, XorMerge);
  Register(kFuncHashCombine, HashCombine);
  Register(kFuncDelete, DeleteFn);
}

FunctionRegistry& FunctionRegistry::Global() {
  static FunctionRegistry* registry = new FunctionRegistry();
  return *registry;
}

void FunctionRegistry::Register(FuncId id, TransformFn fn) {
  fns_[id] = std::move(fn);
}

Status FunctionRegistry::Apply(const OperationDesc& op,
                               const std::vector<ObjectValue>& read_values,
                               std::vector<ObjectValue>* write_values) const {
  auto it = fns_.find(op.func);
  if (it == fns_.end()) {
    return Status::NotFound("unregistered transform function");
  }
  if (read_values.size() != op.reads.size() ||
      write_values->size() != op.writes.size()) {
    return Status::InvalidArgument("value vectors do not match op sets");
  }
  return it->second(op, read_values, write_values);
}

}  // namespace loglog
