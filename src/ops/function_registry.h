#ifndef LOGLOG_OPS_FUNCTION_REGISTRY_H_
#define LOGLOG_OPS_FUNCTION_REGISTRY_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ops/operation.h"

namespace loglog {

/// \brief A deterministic state transform.
///
/// `read_values` are the current values of op.reads (same order);
/// `write_values` enters holding the current values of op.writes (empty
/// vectors for objects that do not exist yet) and must exit holding the
/// new values. Transforms must be pure: replaying a logged operation
/// against the same inputs must reproduce the original outputs, which is
/// what makes logical logging sound ("repeating history").
using TransformFn =
    std::function<Status(const OperationDesc& op,
                         const std::vector<ObjectValue>& read_values,
                         std::vector<ObjectValue>* write_values)>;

/// \brief Registry mapping FuncId to its transform.
///
/// Built-in transforms (kFuncSetValue .. kFuncDelete) are registered on
/// first use. Domains (B-tree, file system, application models) register
/// custom transforms at ids >= kFuncFirstCustom; registration must happen
/// before any log containing those ids is replayed.
class FunctionRegistry {
 public:
  /// Process-wide registry (recovery replays from a single function
  /// space, exactly as a real system links in its redo routines).
  static FunctionRegistry& Global();

  /// Registers or replaces a transform.
  void Register(FuncId id, TransformFn fn);

  bool Contains(FuncId id) const { return fns_.contains(id); }

  /// Applies op's transform; NotFound if the FuncId is unregistered.
  Status Apply(const OperationDesc& op,
               const std::vector<ObjectValue>& read_values,
               std::vector<ObjectValue>* write_values) const;

 private:
  FunctionRegistry();

  std::unordered_map<FuncId, TransformFn> fns_;
};

}  // namespace loglog

#endif  // LOGLOG_OPS_FUNCTION_REGISTRY_H_
