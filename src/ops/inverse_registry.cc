#include "ops/inverse_registry.h"

#include "ops/op_builder.h"

namespace loglog {

InverseRegistry& InverseRegistry::Global() {
  static InverseRegistry* registry = new InverseRegistry();
  return *registry;
}

InverseRegistry::InverseRegistry() {
  // App-level compensator for the paper's W_L(A, X) application write:
  // X := emit(A) is a blind emit, so when X did not exist before, the
  // exact inverse is simply unlinking X. (When X existed, the old bytes
  // are gone from everywhere but the cache — before-images it is.)
  InverseEntry app_write;
  app_write.invertible = [](const OperationDesc& op,
                            const std::vector<bool>& old_exists,
                            const std::vector<ObjectValue>&) {
    return op.writes.size() == 1 && !old_exists[0];
  };
  app_write.build = [](const OperationDesc& op, OperationDesc* inv) {
    *inv = MakeDelete(op.writes[0]);
    return Status::OK();
  };
  Register(kFuncAppWrite, app_write);
}

void InverseRegistry::Register(FuncId id, InverseEntry entry) {
  entries_[id] = std::move(entry);
}

bool InverseRegistry::Invertible(
    const OperationDesc& op, const std::vector<bool>& old_exists,
    const std::vector<ObjectValue>& old_values) const {
  // Creation is structurally invertible: the object had no prior state,
  // so deleting it restores the world exactly (fs create <-> unlink).
  if (op.op_class == OpClass::kCreate) {
    return op.writes.size() == 1 && !old_exists[0];
  }
  auto it = entries_.find(op.func);
  if (it == entries_.end()) return false;
  return it->second.invertible(op, old_exists, old_values);
}

Status InverseRegistry::BuildInverse(const OperationDesc& op,
                                     OperationDesc* inv) const {
  if (op.op_class == OpClass::kCreate) {
    *inv = MakeDelete(op.writes[0]);
    return Status::OK();
  }
  auto it = entries_.find(op.func);
  if (it == entries_.end()) {
    return Status::NotFound("no inverse registered for transform");
  }
  return it->second.build(op, inv);
}

}  // namespace loglog
