#ifndef LOGLOG_OPS_INVERSE_REGISTRY_H_
#define LOGLOG_OPS_INVERSE_REGISTRY_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ops/operation.h"

namespace loglog {

/// \brief A registered logical inverse for one transform.
///
/// Compensation (src/engine/txn_manager.h) undoes a logged operation
/// either logically — by executing a registered inverse operation — or
/// physically, by restoring logged before-images. The logical route keeps
/// compensation records as small as the forward records (no values on the
/// log), but is only sound when the inverse is *exact* for the state the
/// operation ran against: `invertible` decides that at forward-execution
/// time, when the pre-state is still in the cache. When it returns false
/// (or no entry exists for the FuncId) the engine logs before-images and
/// compensation falls back to physical restores.
///
/// `build` must derive the inverse from the forward OperationDesc alone:
/// recovery constructs inverses for loser transactions straight from the
/// log, where no pre-state is available — the absence of logged images is
/// the recorded promise that `invertible` held.
struct InverseEntry {
  /// Exactness check, given the pre-state of op.writes (parallel
  /// vectors; old_values[i] is meaningful only when old_exists[i]).
  std::function<bool(const OperationDesc& op,
                     const std::vector<bool>& old_exists,
                     const std::vector<ObjectValue>& old_values)>
      invertible;
  /// Builds the inverse operation from the forward record alone.
  std::function<Status(const OperationDesc& op, OperationDesc* inv)> build;
};

/// \brief Registry mapping FuncId to its logical inverse.
///
/// Like FunctionRegistry, a process-wide space: domains register their
/// compensators next to their transforms (queue advance <-> retreat,
/// btree leaf insert <-> erase), and registration must happen before a
/// log whose loser transactions used those FuncIds is recovered. Object
/// creation is handled structurally (create <-> delete) and needs no
/// entry.
class InverseRegistry {
 public:
  static InverseRegistry& Global();

  /// Registers or replaces an inverse entry.
  void Register(FuncId id, InverseEntry entry);

  bool Contains(FuncId id) const { return entries_.contains(id); }

  /// True when `op`, run against the given pre-state, has an exact
  /// logical inverse buildable by BuildInverse. Decides whether the
  /// engine must log before-images for an in-transaction operation.
  bool Invertible(const OperationDesc& op,
                  const std::vector<bool>& old_exists,
                  const std::vector<ObjectValue>& old_values) const;

  /// Builds the logical inverse of `op`. Only valid when Invertible
  /// returned true at forward-execution time (recovery trusts the
  /// absence of logged images). NotFound when no inverse is registered.
  Status BuildInverse(const OperationDesc& op, OperationDesc* inv) const;

 private:
  InverseRegistry();

  std::unordered_map<FuncId, InverseEntry> entries_;
};

}  // namespace loglog

#endif  // LOGLOG_OPS_INVERSE_REGISTRY_H_
