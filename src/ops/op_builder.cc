#include "ops/op_builder.h"

#include "common/coding.h"

namespace loglog {

OperationDesc MakePhysicalWrite(ObjectId x, Slice value) {
  OperationDesc op;
  op.op_class = OpClass::kPhysical;
  op.func = kFuncSetValue;
  op.writes = {x};
  op.params = value.ToBytes();
  return op;
}

OperationDesc MakeCreate(ObjectId x, Slice initial) {
  OperationDesc op = MakePhysicalWrite(x, initial);
  op.op_class = OpClass::kCreate;
  return op;
}

OperationDesc MakeDelete(ObjectId x) {
  OperationDesc op;
  op.op_class = OpClass::kDelete;
  op.func = kFuncDelete;
  op.writes = {x};
  return op;
}

OperationDesc MakeDelta(ObjectId x, uint64_t offset, Slice bytes) {
  OperationDesc op;
  op.op_class = OpClass::kPhysiological;
  op.func = kFuncApplyDelta;
  op.writes = {x};
  op.reads = {x};
  PutVarint64(&op.params, offset);
  PutLengthPrefixed(&op.params, bytes);
  return op;
}

OperationDesc MakeAppend(ObjectId x, Slice bytes) {
  OperationDesc op;
  op.op_class = OpClass::kPhysiological;
  op.func = kFuncAppend;
  op.writes = {x};
  op.reads = {x};
  op.params = bytes.ToBytes();
  return op;
}

OperationDesc MakeCopy(ObjectId y, ObjectId x) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncCopy;
  op.writes = {y};
  op.reads = {x};
  return op;
}

OperationDesc MakeSort(ObjectId y, ObjectId x, uint32_t record_size) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncSortRecords;
  op.writes = {y};
  op.reads = {x};
  PutVarint32(&op.params, record_size);
  return op;
}

OperationDesc MakeAppExecute(ObjectId a, uint64_t seed) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncAppExecute;
  op.writes = {a};
  op.reads = {a};
  PutFixed64(&op.params, seed);
  return op;
}

OperationDesc MakeAppRead(ObjectId a, ObjectId x) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncAppRead;
  op.writes = {a};
  op.reads = {a, x};
  return op;
}

OperationDesc MakeAppWrite(ObjectId a, ObjectId x, uint64_t out_size,
                           uint64_t seed) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncAppWrite;
  op.writes = {x};
  op.reads = {a};
  PutVarint64(&op.params, out_size);
  PutFixed64(&op.params, seed);
  return op;
}

OperationDesc MakeIdentityWrite(ObjectId x, Slice current) {
  OperationDesc op;
  op.op_class = OpClass::kIdentityWrite;
  op.func = kFuncSetValue;
  op.writes = {x};
  op.params = current.ToBytes();
  return op;
}

OperationDesc MakeXorMerge(ObjectId dst, std::vector<ObjectId> srcs) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncXorMerge;
  op.writes = {dst};
  op.reads = std::move(srcs);
  return op;
}

OperationDesc MakeHashCombine(ObjectId dst, std::vector<ObjectId> srcs,
                              uint64_t out_size, uint64_t seed) {
  OperationDesc op;
  op.op_class = OpClass::kLogical;
  op.func = kFuncHashCombine;
  op.writes = {dst};
  op.reads = std::move(srcs);
  PutVarint64(&op.params, out_size);
  PutFixed64(&op.params, seed);
  return op;
}

}  // namespace loglog
