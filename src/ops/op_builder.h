#ifndef LOGLOG_OPS_OP_BUILDER_H_
#define LOGLOG_OPS_OP_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "common/types.h"
#include "ops/operation.h"

namespace loglog {

/// Factory helpers for the operation forms of Table 1 plus the file and
/// database examples from Section 1. Each returns a fully-formed
/// OperationDesc ready for RecoveryEngine::Execute.

/// W_P(X, v): physical write of X with value v (v is logged).
OperationDesc MakePhysicalWrite(ObjectId x, Slice value);

/// Object creation with an initial value (logged physically).
OperationDesc MakeCreate(ObjectId x, Slice initial);

/// Object deletion (terminates X's lifetime; Section 5 optimization).
OperationDesc MakeDelete(ObjectId x);

/// W_PL(X): physiological update, splices `bytes` into X at `offset`;
/// only the delta is logged.
OperationDesc MakeDelta(ObjectId x, uint64_t offset, Slice bytes);

/// Physiological append of `bytes` to X.
OperationDesc MakeAppend(ObjectId x, Slice bytes);

/// Logical file copy: Y := X (form of operation B in Figure 1a; neither
/// file value is logged).
OperationDesc MakeCopy(ObjectId y, ObjectId x);

/// Logical file sort: Y := sort(X) with fixed `record_size` records.
OperationDesc MakeSort(ObjectId y, ObjectId x, uint32_t record_size);

/// Ex(A): application execution step with a logged seed parameter.
OperationDesc MakeAppExecute(ObjectId a, uint64_t seed);

/// R(A,X): application read — A absorbs X; neither value is logged.
OperationDesc MakeAppRead(ObjectId a, ObjectId x);

/// W_L(A,X): logical application write — X := emit(A); X's value is NOT
/// logged (the advance over [7]'s physical writes).
OperationDesc MakeAppWrite(ObjectId a, ObjectId x, uint64_t out_size,
                           uint64_t seed);

/// W_IP(X, val(X)): cache-manager identity write; `current` is X's cached
/// value, logged physically (Section 4).
OperationDesc MakeIdentityWrite(ObjectId x, Slice current);

/// Logical merge: dst := xor of `srcs` (multi-read logical operation).
OperationDesc MakeXorMerge(ObjectId dst, std::vector<ObjectId> srcs);

/// Logical combine: dst := H(srcs) expanded to out_size bytes.
OperationDesc MakeHashCombine(ObjectId dst, std::vector<ObjectId> srcs,
                              uint64_t out_size, uint64_t seed);

}  // namespace loglog

#endif  // LOGLOG_OPS_OP_BUILDER_H_
