#include "ops/operation.h"

#include <cstdio>
#include <unordered_set>

#include "common/coding.h"

namespace loglog {

std::vector<ObjectId> OperationDesc::Exposed() const {
  std::vector<ObjectId> out;
  for (ObjectId w : writes) {
    if (ReadsObject(w)) out.push_back(w);
  }
  return out;
}

std::vector<ObjectId> OperationDesc::NotExposed() const {
  std::vector<ObjectId> out;
  for (ObjectId w : writes) {
    if (!ReadsObject(w)) out.push_back(w);
  }
  return out;
}

size_t OperationDesc::EncodedSize() const {
  // Computed arithmetically (no scratch encode): the reserve+fill append
  // path sizes its reservation with this, so it must match EncodeTo
  // byte-for-byte (asserted by ops_test).
  size_t size = 1 + VarintLength(func);
  size += VarintLength(writes.size());
  for (ObjectId id : writes) size += VarintLength(id);
  size += VarintLength(reads.size());
  for (ObjectId id : reads) size += VarintLength(id);
  size += VarintLength(params.size()) + params.size();
  return size;
}

void OperationDesc::EncodeTo(std::vector<uint8_t>* dst) const {
  dst->push_back(static_cast<uint8_t>(op_class));
  PutVarint32(dst, func);
  PutVarint64(dst, writes.size());
  for (ObjectId id : writes) PutVarint64(dst, id);
  PutVarint64(dst, reads.size());
  for (ObjectId id : reads) PutVarint64(dst, id);
  PutLengthPrefixed(dst, Slice(params));
}

uint8_t* OperationDesc::EncodeToBuf(uint8_t* dst) const {
  *dst++ = static_cast<uint8_t>(op_class);
  dst = EncodeVarint64(dst, func);
  dst = EncodeVarint64(dst, writes.size());
  for (ObjectId id : writes) dst = EncodeVarint64(dst, id);
  dst = EncodeVarint64(dst, reads.size());
  for (ObjectId id : reads) dst = EncodeVarint64(dst, id);
  return EncodeLengthPrefixed(dst, Slice(params));
}

Status OperationDesc::DecodeFrom(Slice* src, OperationDesc* out) {
  if (src->empty()) return Status::Corruption("truncated operation");
  uint8_t cls = (*src)[0];
  src->RemovePrefix(1);
  if (cls > static_cast<uint8_t>(OpClass::kDelete)) {
    return Status::Corruption("bad op class");
  }
  out->op_class = static_cast<OpClass>(cls);
  uint32_t func;
  LOGLOG_RETURN_IF_ERROR(GetVarint32(src, &func));
  out->func = static_cast<FuncId>(func);
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
  // Every id costs at least one byte: larger counts are corruption, and
  // bounding before reserve() keeps garbage input from forcing huge
  // allocations.
  if (n > src->size()) return Status::Corruption("writeset count too large");
  out->writes.clear();
  out->writes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &id));
    out->writes.push_back(id);
  }
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
  if (n > src->size()) return Status::Corruption("readset count too large");
  out->reads.clear();
  out->reads.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &id));
    out->reads.push_back(id);
  }
  Slice params;
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(src, &params));
  out->params = params.ToBytes();
  return Status::OK();
}

Status OperationDesc::Validate() const {
  if (writes.empty()) {
    return Status::InvalidArgument("operation has empty writeset");
  }
  std::unordered_set<ObjectId> seen;
  for (ObjectId w : writes) {
    if (!seen.insert(w).second) {
      return Status::InvalidArgument("duplicate object in writeset");
    }
  }
  seen.clear();
  for (ObjectId r : reads) {
    if (!seen.insert(r).second) {
      return Status::InvalidArgument("duplicate object in readset");
    }
  }
  if (op_class == OpClass::kPhysical || op_class == OpClass::kIdentityWrite ||
      op_class == OpClass::kCreate) {
    if (!reads.empty()) {
      return Status::InvalidArgument("physical-class op must not read");
    }
  }
  if (op_class == OpClass::kPhysiological) {
    if (writes.size() != 1 || reads.size() != 1 || writes[0] != reads[0]) {
      return Status::InvalidArgument(
          "physiological op must read and write exactly its one object");
    }
  }
  return Status::OK();
}

std::string OperationDesc::DebugString() const {
  std::string out = "Op{class=";
  out += std::to_string(static_cast<int>(op_class));
  out += " func=";
  out += std::to_string(func);
  out += " W={";
  for (size_t i = 0; i < writes.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(writes[i]);
  }
  out += "} R={";
  for (size_t i = 0; i < reads.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(reads[i]);
  }
  out += "} params=";
  out += std::to_string(params.size());
  out += "B}";
  return out;
}

bool operator==(const OperationDesc& a, const OperationDesc& b) {
  return a.op_class == b.op_class && a.func == b.func &&
         a.writes == b.writes && a.reads == b.reads && a.params == b.params;
}

}  // namespace loglog
