#ifndef LOGLOG_OPS_OPERATION_H_
#define LOGLOG_OPS_OPERATION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace loglog {

/// Operation taxonomy from Table 1 of the paper. The class determines how
/// the operation is logged and how it interacts with the write graph; the
/// actual state transformation is selected by FuncId.
enum class OpClass : uint8_t {
  /// W_P(X, v): physical write, the new value v is in the log record.
  kPhysical = 0,
  /// W_PL(X): physiological, reads and writes a single object; only a
  /// delta is logged.
  kPhysiological = 1,
  /// General logical operation: reads any recoverable objects, writes one
  /// or more; only identifiers and small parameters are logged.
  kLogical = 2,
  /// W_IP(X, val(X)): cache-manager-initiated identity write, logged
  /// physically with the object's current value (Section 4).
  kIdentityWrite = 3,
  /// Object creation (physical: initial value logged).
  kCreate = 4,
  /// Object deletion (blind; terminates the object's lifetime, Section 5).
  kDelete = 5,
};

/// Identifier of a registered deterministic transform. Built-in functions
/// occupy [0, 0x100); domains register custom transforms at ids >= 0x100.
using FuncId = uint16_t;

// Built-in transforms (see function_registry.cc for semantics).
inline constexpr FuncId kFuncSetValue = 1;     // writes[0] := params
inline constexpr FuncId kFuncApplyDelta = 2;   // splice params into writes[0]
inline constexpr FuncId kFuncCopy = 3;         // writes[0] := reads[0]
inline constexpr FuncId kFuncSortRecords = 4;  // writes[0] := sort(reads[0])
inline constexpr FuncId kFuncAppend = 5;       // writes[0] += params
inline constexpr FuncId kFuncAppExecute = 6;   // Ex(A): A := step(A, seed)
inline constexpr FuncId kFuncAppRead = 7;      // R(A,X): A := absorb(A, X)
inline constexpr FuncId kFuncAppWrite = 8;     // W_L(A,X): X := emit(A)
inline constexpr FuncId kFuncXorMerge = 9;     // writes[0] := xor(reads...)
inline constexpr FuncId kFuncHashCombine = 10; // writes[0] := H(reads...)
inline constexpr FuncId kFuncDelete = 11;      // lifetime end of writes[0]
inline constexpr FuncId kFuncFirstCustom = 0x100;

/// \brief A loggable, replayable operation.
///
/// An operation is characterized by readset(O) and writeset(O) plus a
/// deterministic transform (FuncId + params) that computes the new values
/// of the writeset from the current values of the readset and writeset.
/// This is exactly the paper's operation model: a logical log record holds
/// only identifiers and the transform, a physical one carries the value in
/// `params`.
struct OperationDesc {
  OpClass op_class = OpClass::kLogical;
  FuncId func = kFuncSetValue;
  /// Objects written, in transform order. Must be non-empty and distinct.
  std::vector<ObjectId> writes;
  /// Objects read, in transform order. May overlap `writes`.
  std::vector<ObjectId> reads;
  /// Transform parameters. For physical classes this holds the value.
  std::vector<uint8_t> params;

  /// exp(Op) = writeset ∩ readset: objects whose update depends on their
  /// previous value and are therefore unavoidably exposed (Table 1).
  std::vector<ObjectId> Exposed() const;
  /// notexp(Op) = writeset − readset: blindly written objects.
  std::vector<ObjectId> NotExposed() const;

  bool ReadsObject(ObjectId id) const {
    return std::find(reads.begin(), reads.end(), id) != reads.end();
  }
  bool WritesObject(ObjectId id) const {
    return std::find(writes.begin(), writes.end(), id) != writes.end();
  }

  /// Serialized size in bytes == the logging cost of this operation.
  /// Exact (arithmetic, no scratch encode), so the zero-copy append path
  /// can reserve precisely this many bytes and fill with EncodeToBuf.
  size_t EncodedSize() const;

  void EncodeTo(std::vector<uint8_t>* dst) const;
  /// Encodes into a raw buffer of at least EncodedSize() bytes; returns
  /// the advanced cursor. Byte-identical to EncodeTo.
  uint8_t* EncodeToBuf(uint8_t* dst) const;
  static Status DecodeFrom(Slice* src, OperationDesc* out);

  /// Validates structural invariants (non-empty distinct writeset, ...).
  Status Validate() const;

  std::string DebugString() const;
};

bool operator==(const OperationDesc& a, const OperationDesc& b);

}  // namespace loglog

#endif  // LOGLOG_OPS_OPERATION_H_
