#include "recovery/analysis.h"

#include <algorithm>

namespace loglog {

AnalysisResult RunAnalysis(const std::vector<LogRecord>& records) {
  AnalysisResult out;

  // Locate the last checkpoint; its dirty object table is the baseline.
  size_t ckpt_index = records.size();
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].type == RecordType::kCheckpoint) {
      out.last_checkpoint = records[i].lsn;
      ckpt_index = i;
    }
  }
  size_t dot_start = 0;
  if (ckpt_index < records.size()) {
    for (const DotEntry& e : records[ckpt_index].dot) {
      out.dot[e.id] = e.rsi;
      out.dot_classic[e.id] = e.rsi;
    }
    dot_start = ckpt_index + 1;
  }

  // Dirty-object-table evolution from the checkpoint onwards. The
  // generalized table applies install records for vars(n) and Notx(n);
  // the classic (ARIES-style) table honors only actual flushes.
  for (size_t i = dot_start; i < records.size(); ++i) {
    const LogRecord& rec = records[i];
    switch (rec.type) {
      case RecordType::kOperation:
        for (ObjectId x : rec.op.writes) {
          out.dot.try_emplace(x, rec.lsn);
          out.dot_classic.try_emplace(x, rec.lsn);
        }
        break;
      case RecordType::kInstall:
        for (const InstallEntry& e : rec.installed_vars) {
          if (e.rsi == kInvalidLsn) {
            out.dot.erase(e.id);
            out.dot_classic.erase(e.id);
          } else {
            out.dot[e.id] = e.rsi;
            out.dot_classic[e.id] = e.rsi;
          }
        }
        for (const InstallEntry& e : rec.installed_notx) {
          if (e.rsi == kInvalidLsn) {
            out.dot.erase(e.id);
          } else {
            out.dot[e.id] = e.rsi;
          }
        }
        break;
      default:
        break;
    }
  }

  // Full-retained-log scan: delete lifetimes, readers, writesets, and
  // committed flush transactions. (Uninstalled deletes are always within
  // the retained log because truncation never passes the minimum rSI.)
  for (const LogRecord& rec : records) {
    switch (rec.type) {
      case RecordType::kOperation: {
        for (ObjectId r : rec.op.reads) {
          out.readers[r].push_back(rec.lsn);
        }
        out.op_writes[rec.lsn] = rec.op.writes;
        for (ObjectId x : rec.op.writes) {
          if (rec.op.op_class == OpClass::kDelete) {
            out.deleted_at[x] = rec.lsn;
          } else {
            out.deleted_at.erase(x);
          }
        }
        break;
      }
      case RecordType::kFlushTxnCommit:
        out.committed_flush_txns.insert(rec.ref_lsn);
        break;
      default:
        break;
    }
  }

  for (const auto& [id, rsi] : out.dot) {
    if (rsi != kInvalidLsn) out.redo_start = std::min(out.redo_start, rsi);
  }
  for (const auto& [id, rsi] : out.dot_classic) {
    if (rsi != kInvalidLsn) {
      out.redo_start_classic = std::min(out.redo_start_classic, rsi);
    }
  }
  return out;
}

bool BasicRsiRedoable(const AnalysisResult& analysis, Lsn lsn,
                      const std::vector<ObjectId>& writes) {
  for (ObjectId x : writes) {
    auto it = analysis.dot.find(x);
    if (it != analysis.dot.end() && lsn >= it->second) return true;
  }
  return false;
}

std::unordered_map<Lsn, bool> ComputeRedoFixpoint(
    const std::vector<LogRecord>& records, const AnalysisResult& analysis) {
  std::unordered_map<Lsn, bool> redo;
  // Reverse LSN order: readers are strictly later than the writes they
  // gate, so their final decisions are available when needed.
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (it->type != RecordType::kOperation) continue;
    const OperationDesc& op = it->op;
    Lsn lsn = it->lsn;
    bool needed = false;
    for (ObjectId x : op.writes) {
      auto dot_it = analysis.dot.find(x);
      if (dot_it == analysis.dot.end()) continue;  // clean: installed
      if (lsn < dot_it->second) continue;          // lSI < rSI: installed
      auto dead_it = analysis.deleted_at.find(x);
      if (dead_it != analysis.deleted_at.end() && lsn < dead_it->second) {
        // Deleted afterwards: exposed only if a redone reader needs it.
        bool reader_needs = false;
        auto readers_it = analysis.readers.find(x);
        if (readers_it != analysis.readers.end()) {
          for (Lsn reader : readers_it->second) {
            if (reader <= lsn || reader >= dead_it->second) continue;
            auto decided = redo.find(reader);
            if (decided != redo.end() && decided->second) {
              reader_needs = true;
              break;
            }
          }
        }
        if (!reader_needs) continue;
      }
      needed = true;
      break;
    }
    redo[lsn] = needed;
  }
  return redo;
}

bool DeadSkipAllowed(const AnalysisResult& analysis, ObjectId x, Lsn lsn) {
  auto dead_it = analysis.deleted_at.find(x);
  if (dead_it == analysis.deleted_at.end() || lsn >= dead_it->second) {
    return false;
  }
  Lsn delete_lsn = dead_it->second;
  auto readers_it = analysis.readers.find(x);
  if (readers_it == analysis.readers.end()) return true;
  for (Lsn reader : readers_it->second) {
    if (reader <= lsn || reader >= delete_lsn) continue;
    auto writes_it = analysis.op_writes.find(reader);
    if (writes_it == analysis.op_writes.end()) continue;
    if (BasicRsiRedoable(analysis, reader, writes_it->second)) {
      // A possibly-uninstalled operation still needs x's value: x is not
      // unexposed between this write and the delete.
      return false;
    }
  }
  return true;
}

}  // namespace loglog
