#include "recovery/analysis.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace loglog {

void AnalysisBuilder::Add(const LogRecord& rec) {
  // Transaction-table evolution. Compensation records are also ordinary
  // operations for the dirty-object accumulators (handled below): REDO
  // repeats history straight through rollbacks. A checkpoint's txn_id is
  // not a transaction but the id high-water mark at checkpoint time —
  // it keeps max_txn_id monotone across truncation without ever putting
  // a phantom entry in the transaction table.
  if (rec.type == RecordType::kCheckpoint) {
    out_.max_txn_id = std::max(out_.max_txn_id, rec.txn_id);
  } else if (rec.txn_id != 0) {
    out_.max_txn_id = std::max(out_.max_txn_id, rec.txn_id);
    AnalysisResult::TxnInfo& t = out_.txns[rec.txn_id];
    t.last_lsn = std::max(t.last_lsn, rec.lsn);
    switch (rec.type) {
      case RecordType::kTxnBegin:
        t.begin_lsn = rec.lsn;
        break;
      case RecordType::kTxnCommit:
        t.state = AnalysisResult::TxnInfo::State::kCommitted;
        break;
      case RecordType::kTxnAbort:
        t.state = AnalysisResult::TxnInfo::State::kAborted;
        break;
      case RecordType::kCompensation:
        t.undo_next = rec.undo_next_lsn;
        t.undo_skip = rec.undo_skip;
        break;
      default:
        break;
    }
  }
  switch (rec.type) {
    case RecordType::kCheckpoint:
      // Reset the dirty-object tables to the checkpoint's snapshot:
      // identical to replaying the evolution from the last checkpoint,
      // without a second pass to find it first.
      out_.last_checkpoint = rec.lsn;
      out_.dot.clear();
      out_.dot_classic.clear();
      for (const DotEntry& e : rec.dot) {
        out_.dot[e.id] = e.rsi;
        out_.dot_classic[e.id] = e.rsi;
      }
      break;
    case RecordType::kCompensation:
      ++out_.compensation_records;
      [[fallthrough]];
    case RecordType::kOperation:
      // Dirty-object-table evolution: first uninstalled writer pins the
      // rSI.
      for (ObjectId x : rec.op.writes) {
        out_.dot.try_emplace(x, rec.lsn);
        out_.dot_classic.try_emplace(x, rec.lsn);
      }
      // Full-log accumulators: readers, writesets, delete lifetimes.
      for (ObjectId r : rec.op.reads) {
        out_.readers[r].push_back(rec.lsn);
      }
      out_.op_writes[rec.lsn] = rec.op.writes;
      for (ObjectId x : rec.op.writes) {
        if (rec.op.op_class == OpClass::kDelete) {
          out_.deleted_at[x] = rec.lsn;
        } else {
          out_.deleted_at.erase(x);
        }
      }
      break;
    case RecordType::kInstall:
      // The generalized table applies install records for vars(n) and
      // Notx(n); the classic (ARIES-style) table honors only actual
      // flushes.
      for (const InstallEntry& e : rec.installed_vars) {
        if (e.rsi == kInvalidLsn) {
          out_.dot.erase(e.id);
          out_.dot_classic.erase(e.id);
        } else {
          out_.dot[e.id] = e.rsi;
          out_.dot_classic[e.id] = e.rsi;
        }
      }
      for (const InstallEntry& e : rec.installed_notx) {
        if (e.rsi == kInvalidLsn) {
          out_.dot.erase(e.id);
        } else {
          out_.dot[e.id] = e.rsi;
        }
      }
      break;
    case RecordType::kFlushTxnCommit:
      out_.committed_flush_txns.insert(rec.ref_lsn);
      break;
    case RecordType::kPolicyDecision:
      // Last decision wins: the class mix the engine crashed with.
      out_.policy_classes[rec.policy.object] = rec.policy.new_class;
      ++out_.policy_records;
      break;
    default:
      break;
  }
}

AnalysisResult AnalysisBuilder::Finish() {
  for (const auto& [id, rsi] : out_.dot) {
    if (rsi != kInvalidLsn) out_.redo_start = std::min(out_.redo_start, rsi);
  }
  for (const auto& [id, rsi] : out_.dot_classic) {
    if (rsi != kInvalidLsn) {
      out_.redo_start_classic = std::min(out_.redo_start_classic, rsi);
    }
  }
  return std::move(out_);
}

AnalysisResult RunAnalysis(const std::vector<LogRecord>& records) {
  AnalysisBuilder builder;
  for (const LogRecord& rec : records) builder.Add(rec);
  return builder.Finish();
}

bool BasicRsiRedoable(const AnalysisResult& analysis, Lsn lsn,
                      const std::vector<ObjectId>& writes) {
  for (ObjectId x : writes) {
    auto it = analysis.dot.find(x);
    if (it != analysis.dot.end() && lsn >= it->second) return true;
  }
  return false;
}

std::unordered_map<Lsn, bool> ComputeRedoFixpoint(
    const AnalysisResult& analysis) {
  // analysis.op_writes holds every operation's lSI and writeset — all
  // this pass needs — so reverse record order is just descending keys.
  std::vector<Lsn> lsns;
  lsns.reserve(analysis.op_writes.size());
  for (const auto& [lsn, writes] : analysis.op_writes) lsns.push_back(lsn);
  std::sort(lsns.begin(), lsns.end(), std::greater<Lsn>());
  std::unordered_map<Lsn, bool> redo;
  // Reverse LSN order: readers are strictly later than the writes they
  // gate, so their final decisions are available when needed.
  for (Lsn lsn : lsns) {
    const std::vector<ObjectId>& writes = analysis.op_writes.at(lsn);
    bool needed = false;
    for (ObjectId x : writes) {
      auto dot_it = analysis.dot.find(x);
      if (dot_it == analysis.dot.end()) continue;  // clean: installed
      if (lsn < dot_it->second) continue;          // lSI < rSI: installed
      auto dead_it = analysis.deleted_at.find(x);
      if (dead_it != analysis.deleted_at.end() && lsn < dead_it->second) {
        // Deleted afterwards: exposed only if a redone reader needs it.
        bool reader_needs = false;
        auto readers_it = analysis.readers.find(x);
        if (readers_it != analysis.readers.end()) {
          for (Lsn reader : readers_it->second) {
            if (reader <= lsn || reader >= dead_it->second) continue;
            auto decided = redo.find(reader);
            if (decided != redo.end() && decided->second) {
              reader_needs = true;
              break;
            }
          }
        }
        if (!reader_needs) continue;
      }
      needed = true;
      break;
    }
    redo[lsn] = needed;
  }
  return redo;
}

std::unordered_map<Lsn, bool> ComputeRedoFixpoint(
    const std::vector<LogRecord>& records, const AnalysisResult& analysis) {
  (void)records;
  return ComputeRedoFixpoint(analysis);
}

bool DeadSkipAllowed(const AnalysisResult& analysis, ObjectId x, Lsn lsn) {
  auto dead_it = analysis.deleted_at.find(x);
  if (dead_it == analysis.deleted_at.end() || lsn >= dead_it->second) {
    return false;
  }
  Lsn delete_lsn = dead_it->second;
  auto readers_it = analysis.readers.find(x);
  if (readers_it == analysis.readers.end()) return true;
  for (Lsn reader : readers_it->second) {
    if (reader <= lsn || reader >= delete_lsn) continue;
    auto writes_it = analysis.op_writes.find(reader);
    if (writes_it == analysis.op_writes.end()) continue;
    if (BasicRsiRedoable(analysis, reader, writes_it->second)) {
      // A possibly-uninstalled operation still needs x's value: x is not
      // unexposed between this write and the delete.
      return false;
    }
  }
  return true;
}

}  // namespace loglog
