#ifndef LOGLOG_RECOVERY_ANALYSIS_H_
#define LOGLOG_RECOVERY_ANALYSIS_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "wal/log_record.h"

namespace loglog {

/// \brief Output of the recovery analysis pass (Section 5 "Logging and
/// Recovery using rSI's").
///
/// Starting from the last checkpoint's dirty object table, the analysis
/// pass replays operation, install and flush-transaction records to build
/// an as-of-crash approximation of the dirty object table with advanced
/// rSIs, the set of objects whose last update is a delete (their earlier
/// operations need no redo), and the set of committed flush transactions.
struct AnalysisResult {
  /// Dirty object table: object -> rSI of its earliest (possibly)
  /// uninstalled operation. Uses the paper's *generalized* rSIs: install
  /// records advance rSIs for flushed vars(n) AND unflushed Notx(n).
  std::unordered_map<ObjectId, Lsn> dot;
  /// The ARIES-style classic table: like `dot`, but install records only
  /// advance rSIs of objects actually flushed (vars(n)); objects that
  /// were installed without flushing stay pinned at their first writer.
  /// This is what the kVsi baseline REDO test consults.
  std::unordered_map<ObjectId, Lsn> dot_classic;
  /// Objects whose final logged update is a delete, with the delete's
  /// lSI. Operations on them before that lSI are treated as installed —
  /// unless an uninstalled reader still needs the value (see `readers`).
  std::unordered_map<ObjectId, Lsn> deleted_at;
  /// Per object, the lSIs of every logged operation that reads it. Used
  /// to keep the deleted-object optimization sound: a write of a deleted
  /// object may only be treated as installed if no possibly-uninstalled
  /// operation read the object between the write and the delete.
  std::unordered_map<ObjectId, std::vector<Lsn>> readers;
  /// lSI -> writeset of every logged operation (for the reader check).
  std::unordered_map<Lsn, std::vector<ObjectId>> op_writes;
  /// Begin-record LSNs of flush transactions whose commit is on the log.
  std::set<Lsn> committed_flush_txns;
  /// LSN of the last checkpoint record found (kInvalidLsn if none).
  Lsn last_checkpoint = kInvalidLsn;
  /// Minimum rSI over the dirty object table: the redo scan start point.
  /// kMaxLsn when the table is empty (nothing to redo).
  Lsn redo_start = kMaxLsn;
  /// Minimum rSI over dot_classic (the kVsi baseline's scan start).
  Lsn redo_start_classic = kMaxLsn;
  /// Filled by the driver for RedoTestKind::kRsiFixpoint (see
  /// ComputeRedoFixpoint); empty otherwise.
  std::unordered_map<Lsn, bool> fixpoint_redo;
  /// One user transaction seen on the retained log (built from txn
  /// marker records, the txn trailer on operation records, and CLRs).
  struct TxnInfo {
    enum class State : uint8_t { kInFlight, kCommitted, kAborted };
    Lsn begin_lsn = kInvalidLsn;  // kInvalidLsn if truncated away
    Lsn last_lsn = kInvalidLsn;   // backchain head (latest txn record)
    State state = State::kInFlight;
    /// Rollback cursor from the latest CLR: kMaxLsn when no CLR was
    /// logged (rollback never started), otherwise the CLR's
    /// undo-next-LSN / undo-skip pair (see wal/log_record.h).
    Lsn undo_next = kMaxLsn;
    uint64_t undo_skip = 0;
  };
  /// Transaction table: txn id -> state as of the crash. Transactions
  /// still kInFlight at the end of the log are losers; the recovery
  /// driver rolls them back (resuming half-finished rollbacks from
  /// undo_next) before the system opens. Spans the retained log — the
  /// checkpoint truncation floor guarantees a loser's records survive.
  std::unordered_map<uint64_t, TxnInfo> txns;
  /// Highest txn id on the retained log (0 if none): new transactions
  /// must number above it so ids are never reused across a crash.
  uint64_t max_txn_id = 0;
  /// Count of kCompensation records seen.
  uint64_t compensation_records = 0;
  /// Last adaptive-policy class per object (kPolicyDecision records;
  /// values are adapt/log_choice.h's LogChoice). Recovery reseeds the
  /// policy from it so each object resumes under the class it crashed
  /// with; objects never mentioned default to W_L, the policy's initial
  /// class. Spans the retained log (not reset by checkpoints — but a
  /// truncated decision only means the policy re-learns the class).
  std::unordered_map<ObjectId, uint8_t> policy_classes;
  /// Count of kPolicyDecision records seen.
  uint64_t policy_records = 0;
};

/// \brief Streaming analysis: feed records in ascending LSN order (e.g.
/// straight off a LogCursor), then Finish().
///
/// A checkpoint record *resets* the dirty-object tables to its snapshot,
/// which is exactly equivalent to the old start-from-last-checkpoint
/// replay — so one forward pass suffices and recovery never materializes
/// the log. The full-log accumulators (readers, writesets, delete
/// lifetimes, committed flush transactions) always span every retained
/// record, as before.
class AnalysisBuilder {
 public:
  void Add(const LogRecord& rec);
  /// Computes the scan start points and yields the result. The builder
  /// is spent afterwards.
  AnalysisResult Finish();

 private:
  AnalysisResult out_;
};

/// Runs the analysis pass over the stable records (ascending LSN order).
/// Materialized-log convenience over AnalysisBuilder.
AnalysisResult RunAnalysis(const std::vector<LogRecord>& records);

/// Conservative "could this operation be redone?" using only the static
/// rSI information (no vSIs, no deleted-object skips). Overapproximates
/// the redone set, which makes it safe for gating the deleted-object
/// optimization.
bool BasicRsiRedoable(const AnalysisResult& analysis, Lsn lsn,
                      const std::vector<ObjectId>& writes);

/// True when the write of `x` by the operation at `lsn` may be treated as
/// unexposed because x was deleted afterwards and no possibly-uninstalled
/// operation read x between the write and the delete.
bool DeadSkipAllowed(const AnalysisResult& analysis, ObjectId x, Lsn lsn);

/// Exact static redo decisions for the kRsiFixpoint REDO test: processes
/// operations in reverse LSN order so each dead-skip consults the final
/// decision of every (strictly later) reader. Returns lSI -> would-redo;
/// operations absent from the map are statically skippable. Conservative
/// with respect to dynamic vSI skips (those only shrink the redone set).
/// Needs only the analysis accumulators (op_writes carries every
/// operation's lSI and writeset), so it composes with streaming analysis.
std::unordered_map<Lsn, bool> ComputeRedoFixpoint(
    const AnalysisResult& analysis);

/// Back-compat shim; `records` is unused.
std::unordered_map<Lsn, bool> ComputeRedoFixpoint(
    const std::vector<LogRecord>& records, const AnalysisResult& analysis);

}  // namespace loglog

#endif  // LOGLOG_RECOVERY_ANALYSIS_H_
