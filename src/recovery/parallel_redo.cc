#include "recovery/parallel_redo.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/retry.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/function_registry.h"
#include "recovery/recovery_driver.h"
#include "recovery/redo_test.h"

namespace loglog {

namespace {

/// Union-find over dense node indices (one node per distinct object).
class UnionFind {
 public:
  int Make() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }
  int Find(int a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];  // path halving
      a = parent_[a];
    }
    return a;
  }
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<int> parent_;
};

/// Every object a record can touch during redo (the conflict footprint).
void RecordObjects(const LogRecord& rec, std::vector<ObjectId>* out) {
  out->clear();
  if (rec.type == RecordType::kOperation ||
      rec.type == RecordType::kCompensation) {
    out->insert(out->end(), rec.op.reads.begin(), rec.op.reads.end());
    out->insert(out->end(), rec.op.writes.begin(), rec.op.writes.end());
  } else if (rec.type == RecordType::kFlushTxnBegin) {
    for (const FlushValue& fv : rec.flush_values) out->push_back(fv.id);
  }
}

/// Worker-private object view over one component, mirroring the cache
/// manager's cached-else-stable semantics exactly — every vSI a worker
/// consults and every value it reads is what the serial scan would have
/// seen at the same record, because all state a component's records can
/// observe belongs to the component.
class ComponentView final : public VsiView {
 public:
  ComponentView(StableStore* store, uint64_t* io_retries)
      : store_(store), io_retries_(io_retries) {}

  Lsn CurrentVsi(ObjectId x) const override {
    auto it = entries_.find(x);
    if (it != entries_.end()) return it->second.vsi;
    return store_->StableVsi(x);
  }

  /// CacheManager::GetValue semantics: a cached tombstone is NotFound; a
  /// miss loads (and caches) from the stable store; a missing stable
  /// object is NotFound without caching a tombstone.
  Status Get(ObjectId x, ObjectValue* out) {
    auto it = entries_.find(x);
    if (it != entries_.end()) {
      if (!it->second.exists) return Status::NotFound("object deleted");
      *out = it->second.value;
      return Status::OK();
    }
    StoredObject stored;
    LOGLOG_RETURN_IF_ERROR(RetryTransientIo(
        io_retries_, [&] { return store_->Read(x, &stored); }));
    Entry& e = entries_[x];
    e.value = std::move(stored.value);
    e.vsi = stored.vsi;
    e.exists = true;
    *out = e.value;
    return Status::OK();
  }

  void ApplyWrite(ObjectId x, const ObjectValue& v, Lsn lsn) {
    Entry& e = entries_[x];
    e.value = v;
    e.vsi = lsn;
    e.exists = true;
  }

  void ApplyDelete(ObjectId x, Lsn lsn) {
    Entry& e = entries_[x];
    e.value.clear();
    e.vsi = lsn;
    e.exists = false;
  }

 private:
  struct Entry {
    ObjectValue value;
    Lsn vsi = kInvalidLsn;
    bool exists = false;
  };
  StableStore* store_;
  uint64_t* io_retries_;
  std::unordered_map<ObjectId, Entry> entries_;
};

/// Cached progress-gauge pointers: workers update these live so a poller
/// watching recovery.progress.* sees per-record advance, not one jump at
/// the merge. Registry pointers are stable, so the static is safe.
struct ProgressGauges {
  Gauge* done;
  Gauge* redone;
  Gauge* bytes;
  Gauge* components_total;
  Gauge* components_done;
};

ProgressGauges& Progress() {
  static ProgressGauges g{
      MetricsRegistry::Global().GetGauge(
          metric::kRecoveryProgressRecordsDone),
      MetricsRegistry::Global().GetGauge(
          metric::kRecoveryProgressRecordsRedone),
      MetricsRegistry::Global().GetGauge(metric::kRecoveryProgressBytes),
      MetricsRegistry::Global().GetGauge(
          metric::kRecoveryProgressComponentsTotal),
      MetricsRegistry::Global().GetGauge(
          metric::kRecoveryProgressComponentsDone)};
  return g;
}

/// A redone operation's captured results, applied to the cache manager in
/// global LSN order after the workers join.
struct AppliedOp {
  Lsn lsn = kInvalidLsn;
  const LogRecord* rec = nullptr;
  std::vector<ObjectValue> values;  // aligned with op.writes; empty: delete
};

/// Per-worker accumulator. Nothing here is shared while workers run.
struct WorkerLocal {
  ParallelRedoResult counters;
  std::vector<AppliedOp> applied;
  Status error;
  Lsn error_component = kMaxLsn;  // min LSN of the failing component

  void Fail(Status st, Lsn component_min_lsn) {
    if (error.ok() || component_min_lsn < error_component) {
      error = std::move(st);
      error_component = component_min_lsn;
    }
  }
};

/// Mirror of the serial RedoOperation (recovery_driver.cc) against a
/// component view: same trial-execution voiding, same preloads, but
/// results are captured for the post-join merge instead of going to the
/// cache immediately.
Status ReplayOp(RedoTestKind redo_test, const AnalysisResult& analysis,
                ComponentView* view, const LogRecord* rec,
                WorkerLocal* local) {
  const OperationDesc& op = rec->op;
  const Lsn lsn = rec->lsn;
  ProgressGauges& progress = Progress();
  RedoDecision decision = TestRedo(redo_test, op, lsn, analysis, *view);
  if (decision == RedoDecision::kSkipInstalled) {
    ++local->counters.ops_skipped_installed;
    progress.done->Add(1);
    return Status::OK();
  }
  if (decision == RedoDecision::kSkipUnexposed) {
    ++local->counters.ops_skipped_unexposed;
    progress.done->Add(1);
    return Status::OK();
  }
  if (op.op_class == OpClass::kDelete) {
    for (ObjectId x : op.writes) view->ApplyDelete(x, lsn);
    local->applied.push_back({lsn, rec, {}});
    ++local->counters.ops_redone;
    progress.done->Add(1);
    progress.redone->Add(1);
    return Status::OK();
  }
  std::vector<ObjectValue> read_values;
  read_values.reserve(op.reads.size());
  for (ObjectId r : op.reads) {
    if (view->CurrentVsi(r) >= lsn) {
      // The read object is newer than this operation: installed in every
      // explanation; re-execution would be erroneous.
      ++local->counters.ops_voided;
      progress.done->Add(1);
      return Status::OK();
    }
    ObjectValue v;
    Status st = view->Get(r, &v);
    if (st.IsNotFound()) {
      ++local->counters.ops_voided;  // input no longer exists
      progress.done->Add(1);
      return Status::OK();
    }
    LOGLOG_RETURN_IF_ERROR(st);
    read_values.push_back(std::move(v));
  }
  std::vector<ObjectValue> write_values(op.writes.size());
  for (size_t i = 0; i < op.writes.size(); ++i) {
    ObjectValue v;
    if (view->Get(op.writes[i], &v).ok()) write_values[i] = std::move(v);
  }
  Status st = FunctionRegistry::Global().Apply(op, read_values, &write_values);
  if (!st.ok()) {
    // Case (c) of Section 5: execution against inapplicable state raised
    // an error — void the replay.
    ++local->counters.ops_voided;
    progress.done->Add(1);
    return Status::OK();
  }
  uint64_t bytes = 0;
  for (size_t i = 0; i < op.writes.size(); ++i) {
    bytes += write_values[i].size();
    view->ApplyWrite(op.writes[i], write_values[i], lsn);
  }
  local->counters.redo_value_bytes += bytes;
  local->applied.push_back({lsn, rec, std::move(write_values)});
  ++local->counters.ops_redone;
  progress.done->Add(1);
  progress.redone->Add(1);
  progress.bytes->Add(static_cast<int64_t>(bytes));
  if (op.op_class == OpClass::kLogical) ++local->counters.expensive_redos;
  return Status::OK();
}

/// Mirror of the serial flush-transaction completion: re-apply the frozen
/// values to the stable store wherever it is behind. The store writes go
/// straight to the (thread-safe) store — any record that could observe
/// them shares an object with this one and thus sits in this component,
/// *after* this record in LSN order.
Status CompleteFlushTxn(StableStore* store, const LogRecord* rec,
                        WorkerLocal* local) {
  bool applied = false;
  for (const FlushValue& fv : rec->flush_values) {
    if (fv.erase) {
      if (store->Exists(fv.id)) {
        LOGLOG_RETURN_IF_ERROR(
            RetryTransientIo(&local->counters.io_retries,
                             [&] { return store->Erase(fv.id); }));
        applied = true;
      }
    } else if (store->StableVsi(fv.id) < fv.vsi) {
      LOGLOG_RETURN_IF_ERROR(
          VerifiedStableWrite(store, &local->counters.io_retries, fv.id,
                              Slice(fv.value), fv.vsi));
      applied = true;
    }
  }
  if (applied) ++local->counters.flush_txns_completed;
  return Status::OK();
}

}  // namespace

Status ParallelRedo(SimulatedDisk* disk, CacheManager* cm,
                    RedoTestKind redo_test, const AnalysisResult& analysis,
                    const std::vector<LogRecord>& work, int threads,
                    ParallelRedoResult* result) {
  *result = ParallelRedoResult{};
  if (work.empty()) return Status::OK();

  // Partition the workload into connected components: two records
  // conflict when they share any object.
  TraceSpan partition_span("redo.partition", "recovery");
  UnionFind uf;
  std::unordered_map<ObjectId, int> node_of;
  std::vector<ObjectId> ids;
  std::vector<int> item_node(work.size(), -1);
  for (size_t i = 0; i < work.size(); ++i) {
    RecordObjects(work[i], &ids);
    int first = -1;
    for (ObjectId x : ids) {
      auto [it, inserted] = node_of.try_emplace(x, -1);
      if (inserted) it->second = uf.Make();
      if (first < 0) {
        first = it->second;
      } else {
        uf.Union(first, it->second);
      }
    }
    item_node[i] = first;  // -1: empty footprint, nothing to replay
  }
  std::unordered_map<int, size_t> comp_of_root;
  std::vector<std::vector<const LogRecord*>> components;
  for (size_t i = 0; i < work.size(); ++i) {
    if (item_node[i] < 0) continue;
    int root = uf.Find(item_node[i]);
    auto [it, inserted] = comp_of_root.try_emplace(root, components.size());
    if (inserted) components.emplace_back();
    // `work` is LSN-ascending, so each component list is too: replay
    // within a component follows the serial scan's order.
    components[it->second].push_back(&work[i]);
  }
  result->components = components.size();
  MetricsRegistry::Global()
      .GetCounter(metric::kRecoveryComponents)
      ->Inc(result->components);
  Progress().components_total->Add(
      static_cast<int64_t>(components.size()));
  partition_span.AddArg("records", static_cast<uint64_t>(work.size()));
  partition_span.AddArg("components",
                        static_cast<uint64_t>(components.size()));
  partition_span.End();

  // Largest components first for load balance on the shared queue; ties
  // keep first-appearance (ascending min-LSN) order.
  std::vector<size_t> order(components.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return components[a].size() > components[b].size();
  });

  const size_t worker_count =
      std::min(static_cast<size_t>(std::max(threads, 1)), components.size());
  std::vector<WorkerLocal> locals(std::max<size_t>(worker_count, 1));
  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  FaultInjector* inj = &disk->fault_injector();
  StableStore* store = &disk->store();

  auto run_worker = [&](WorkerLocal* local, size_t worker_index) {
    ScopedThreadName worker_name("redo-worker-" +
                                 std::to_string(worker_index));
    TraceSpan worker_span("redo.worker", "recovery",
                          {{"worker", std::to_string(worker_index)}});
    uint64_t claimed = 0;
    while (!abort.load(std::memory_order_relaxed)) {
      const size_t k = next.fetch_add(1, std::memory_order_relaxed);
      if (k >= order.size()) break;
      const std::vector<const LogRecord*>& comp = components[order[k]];
      const Lsn min_lsn = comp.front()->lsn;
      ++claimed;
      TraceSpan comp_span("redo.component", "recovery",
                          {{"min_lsn", std::to_string(min_lsn)},
                           {"records", std::to_string(comp.size())}});
      Status st = RetryTransientIo(&local->counters.io_retries, [&] {
        return inj->MaybeFail(fault::kRedoWorker);
      });
      if (st.ok()) {
        ComponentView view(store, &local->counters.io_retries);
        for (const LogRecord* rec : comp) {
          // Compensation records replay exactly like forward operations.
          st = rec->type == RecordType::kFlushTxnBegin
                   ? CompleteFlushTxn(store, rec, local)
                   : ReplayOp(redo_test, analysis, &view, rec, local);
          if (!st.ok()) break;
        }
      }
      if (!st.ok()) {
        local->Fail(std::move(st), min_lsn);
        abort.store(true, std::memory_order_relaxed);
        break;
      }
      FlightRecorder::Global().Record(FlightEventType::kRedoComponent,
                                      min_lsn, comp.size(), worker_index);
      Progress().components_done->Add(1);
    }
    worker_span.AddArg("components", claimed);
  };

  if (worker_count <= 1) {
    run_worker(&locals[0], 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(worker_count);
    for (size_t w = 0; w < worker_count; ++w) {
      pool.emplace_back(run_worker, &locals[w], w);
    }
    for (std::thread& t : pool) t.join();
  }

  // Merge. Retry accounting folds into the disk stats either way; on a
  // worker error the earliest affected component's status is surfaced and
  // the cache is left untouched (the run will be redone from scratch).
  Status error;
  Lsn error_at = kMaxLsn;
  for (const WorkerLocal& local : locals) {
    disk->stats().io_retries += local.counters.io_retries;
    result->io_retries += local.counters.io_retries;
    if (!local.error.ok() && local.error_component < error_at) {
      error = local.error;
      error_at = local.error_component;
    }
  }
  if (!error.ok()) return error;

  TraceSpan apply_span("redo.apply", "recovery");
  std::vector<AppliedOp> applied;
  for (WorkerLocal& local : locals) {
    result->ops_redone += local.counters.ops_redone;
    result->ops_skipped_installed += local.counters.ops_skipped_installed;
    result->ops_skipped_unexposed += local.counters.ops_skipped_unexposed;
    result->ops_voided += local.counters.ops_voided;
    result->flush_txns_completed += local.counters.flush_txns_completed;
    result->redo_value_bytes += local.counters.redo_value_bytes;
    result->expensive_redos += local.counters.expensive_redos;
    applied.insert(applied.end(),
                   std::make_move_iterator(local.applied.begin()),
                   std::make_move_iterator(local.applied.end()));
  }
  // Global LSN order rebuilds the cache and write graph exactly as the
  // serial scan's interleaved ApplyResults calls would have.
  std::sort(applied.begin(), applied.end(),
            [](const AppliedOp& a, const AppliedOp& b) { return a.lsn < b.lsn; });
  for (AppliedOp& a : applied) {
    LOGLOG_RETURN_IF_ERROR(
        cm->ApplyResults(a.rec->op, a.lsn, std::move(a.values)));
  }
  apply_span.AddArg("ops", static_cast<uint64_t>(applied.size()));
  return Status::OK();
}

}  // namespace loglog
