#ifndef LOGLOG_RECOVERY_PARALLEL_REDO_H_
#define LOGLOG_RECOVERY_PARALLEL_REDO_H_

#include <cstdint>
#include <vector>

#include "cache/cache_manager.h"
#include "cache/policies.h"
#include "common/status.h"
#include "recovery/analysis.h"
#include "wal/log_record.h"

namespace loglog {

/// Merged outcome counters of a parallel redo pass (the driver folds them
/// into RecoveryStats; records_scanned / ops_considered are counted by the
/// driver's scan, which is what selects the work items).
struct ParallelRedoResult {
  uint64_t ops_redone = 0;
  uint64_t ops_skipped_installed = 0;
  uint64_t ops_skipped_unexposed = 0;
  uint64_t ops_voided = 0;
  uint64_t flush_txns_completed = 0;
  uint64_t redo_value_bytes = 0;
  uint64_t expensive_redos = 0;
  uint64_t io_retries = 0;
  /// Connected components the workload split into (1 = no parallelism
  /// available).
  uint64_t components = 0;
};

/// \brief Partitioned parallel REDO (the perf counterpart of Figure 2's
/// serial Recover(D, I)).
///
/// The redo workload — operation records at or after the scan start plus
/// committed flush-transaction begin records — is partitioned into
/// connected components of the write graph restricted to those records:
/// two records conflict when they share any object (reads, writes, or
/// flush values). Components are object-disjoint by construction, so they
/// can replay concurrently with no ordering constraints *between* them,
/// while replay *within* a component follows LSN order — exactly the
/// serial scan's order restricted to that component.
///
/// Each worker replays components against a private view of the objects
/// the component touches, mirroring the cache manager's read/decision
/// semantics (cached-else-stable vSIs, trial-execution voiding, no
/// tombstone caching on a missing read). Flush-transaction completions
/// write the stable store directly — their objects belong to the same
/// component as any operation that could observe them, so the serial
/// interleaving is preserved. After the workers join, the redone results
/// are applied to the cache manager in global LSN order, rebuilding the
/// cache and write graph exactly as the serial scan would have.
///
/// `work` must be in ascending LSN order. On any worker error the pass
/// aborts with the error of the earliest affected component; the cache is
/// not updated (recovery is idempotent — the caller simply reruns).
Status ParallelRedo(SimulatedDisk* disk, CacheManager* cm,
                    RedoTestKind redo_test, const AnalysisResult& analysis,
                    const std::vector<LogRecord>& work, int threads,
                    ParallelRedoResult* result);

}  // namespace loglog

#endif  // LOGLOG_RECOVERY_PARALLEL_REDO_H_
