#include "recovery/recovery_driver.h"

#include <cstdio>

#include "ops/function_registry.h"
#include "recovery/analysis.h"
#include "recovery/redo_test.h"

namespace loglog {

std::string RecoveryStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "records=%llu scanned=%llu considered=%llu redone=%llu "
      "skip_installed=%llu skip_unexposed=%llu voided=%llu "
      "expensive_redos=%llu redo_bytes=%llu redo_start=%llu torn=%d",
      static_cast<unsigned long long>(log_records_total),
      static_cast<unsigned long long>(records_scanned),
      static_cast<unsigned long long>(ops_considered),
      static_cast<unsigned long long>(ops_redone),
      static_cast<unsigned long long>(ops_skipped_installed),
      static_cast<unsigned long long>(ops_skipped_unexposed),
      static_cast<unsigned long long>(ops_voided),
      static_cast<unsigned long long>(expensive_redos),
      static_cast<unsigned long long>(redo_value_bytes),
      static_cast<unsigned long long>(redo_start), torn_tail ? 1 : 0);
  return buf;
}

namespace {

/// Re-executes one logged operation against the recovering state through
/// the normal cache path. Implements the "expanded REDO" trial execution
/// of Section 5: an inapplicable replay (missing or newer-than-lSI read
/// state, failing transform) is voided without touching exposed objects.
Status RedoOperation(CacheManager* cm, const OperationDesc& op, Lsn lsn,
                     bool* voided, uint64_t* value_bytes) {
  *voided = false;
  if (op.op_class == OpClass::kDelete) {
    return cm->ApplyResults(op, lsn, {});
  }
  std::vector<ObjectValue> read_values;
  read_values.reserve(op.reads.size());
  for (ObjectId r : op.reads) {
    if (cm->CurrentVsi(r) >= lsn) {
      // The read object is newer than this operation: the operation is
      // installed in every explanation; re-execution would be erroneous.
      *voided = true;
      return Status::OK();
    }
    ObjectValue v;
    Status st = cm->GetValue(r, &v);
    if (st.IsNotFound()) {
      *voided = true;  // input no longer exists (deleted/never recreated)
      return Status::OK();
    }
    LOGLOG_RETURN_IF_ERROR(st);
    read_values.push_back(std::move(v));
  }
  std::vector<ObjectValue> write_values(op.writes.size());
  for (size_t i = 0; i < op.writes.size(); ++i) {
    ObjectValue v;
    if (cm->GetValue(op.writes[i], &v).ok()) write_values[i] = std::move(v);
  }
  Status st =
      FunctionRegistry::Global().Apply(op, read_values, &write_values);
  if (!st.ok()) {
    // Case (c) of Section 5: execution against inapplicable state raised
    // an error — void the replay.
    *voided = true;
    return Status::OK();
  }
  for (const ObjectValue& v : write_values) *value_bytes += v.size();
  return cm->ApplyResults(op, lsn, std::move(write_values));
}

}  // namespace

Status RecoveryDriver::Run(RecoveryStats* stats) {
  std::vector<LogRecord> records;
  bool torn = false;
  Lsn next_lsn = 1;
  uint64_t valid_end = 0;
  LOGLOG_RETURN_IF_ERROR(LogManager::ReadStable(disk_->log(), &records,
                                                &torn, &next_lsn,
                                                &valid_end));
  stats->torn_tail = torn;
  stats->log_records_total = records.size();
  if (torn) {
    // Discard the torn suffix so future appends resume at a clean point.
    disk_->log().TearTail(disk_->log().end_offset() - valid_end);
  }

  AnalysisResult analysis = RunAnalysis(records);
  // Scan start: the generalized test uses the minimum generalized rSI,
  // the classic vSI test its classic recLSN minimum; the repeat-all
  // baseline replays the full retained log.
  Lsn start = kInvalidLsn;
  if (redo_test_ == RedoTestKind::kRsiGeneralized ||
      redo_test_ == RedoTestKind::kRsiFixpoint) {
    start = analysis.redo_start;
  } else if (redo_test_ == RedoTestKind::kVsi) {
    start = analysis.redo_start_classic;
  }
  if (redo_test_ == RedoTestKind::kRsiFixpoint) {
    analysis.fixpoint_redo = ComputeRedoFixpoint(records, analysis);
  }
  stats->redo_start = start == kMaxLsn ? next_lsn : start;

  for (const LogRecord& rec : records) {
    switch (rec.type) {
      case RecordType::kOperation: {
        if (rec.lsn < start) break;
        ++stats->records_scanned;
        ++stats->ops_considered;
        RedoDecision decision =
            TestRedo(redo_test_, rec.op, rec.lsn, analysis, *cm_);
        if (decision == RedoDecision::kSkipInstalled) {
          ++stats->ops_skipped_installed;
          break;
        }
        if (decision == RedoDecision::kSkipUnexposed) {
          ++stats->ops_skipped_unexposed;
          break;
        }
        bool voided = false;
        LOGLOG_RETURN_IF_ERROR(RedoOperation(cm_, rec.op, rec.lsn, &voided,
                                             &stats->redo_value_bytes));
        if (voided) {
          ++stats->ops_voided;
        } else {
          ++stats->ops_redone;
          if (rec.op.op_class == OpClass::kLogical) {
            ++stats->expensive_redos;
          }
        }
        break;
      }
      case RecordType::kFlushTxnBegin: {
        ++stats->records_scanned;
        // Complete a committed flush transaction whose in-place writes
        // may have been interrupted: re-apply the frozen values to the
        // stable store wherever it is behind. Uncommitted transactions
        // never touched the stable store and are ignored.
        if (!analysis.committed_flush_txns.contains(rec.lsn)) break;
        bool applied = false;
        for (const FlushValue& fv : rec.flush_values) {
          if (fv.erase) {
            if (disk_->store().Exists(fv.id)) {
              disk_->store().Erase(fv.id);
              applied = true;
            }
          } else if (disk_->store().StableVsi(fv.id) < fv.vsi) {
            disk_->store().Write(fv.id, Slice(fv.value), fv.vsi);
            applied = true;
          }
        }
        if (applied) ++stats->flush_txns_completed;
        break;
      }
      case RecordType::kCheckpoint:
      case RecordType::kInstall:
      case RecordType::kFlushTxnCommit:
        break;  // consumed by analysis
    }
  }

  log_->SetNextLsn(next_lsn);
  return Status::OK();
}

}  // namespace loglog
