#include "recovery/recovery_driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_set>

#include "adapt/adaptive_policy.h"
#include "backup/media_recovery.h"
#include "common/retry.h"
#include "logstore/logstore.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/function_registry.h"
#include "recovery/analysis.h"
#include "recovery/parallel_redo.h"
#include "recovery/redo_test.h"
#include "recovery/txn_undo.h"
#include "wal/log_cursor.h"

namespace loglog {

namespace {

const char* RedoTestLabel(RedoTestKind kind) {
  switch (kind) {
    case RedoTestKind::kAlways:
      return "always";
    case RedoTestKind::kVsi:
      return "vsi";
    case RedoTestKind::kRsiGeneralized:
      return "rsi_generalized";
    case RedoTestKind::kRsiFixpoint:
      return "rsi_fixpoint";
  }
  return "unknown";
}

}  // namespace

std::string RecoveryStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "records=%llu scanned=%llu considered=%llu redone=%llu "
      "skip_installed=%llu skip_unexposed=%llu voided=%llu "
      "expensive_redos=%llu redo_bytes=%llu redo_start=%llu torn=%d "
      "corrupt=%llu media_repairs=%llu media_recovery=%d "
      "max_txn_id=%llu losers=%llu loser_clrs=%llu comp_redone=%llu",
      static_cast<unsigned long long>(log_records_total),
      static_cast<unsigned long long>(records_scanned),
      static_cast<unsigned long long>(ops_considered),
      static_cast<unsigned long long>(ops_redone),
      static_cast<unsigned long long>(ops_skipped_installed),
      static_cast<unsigned long long>(ops_skipped_unexposed),
      static_cast<unsigned long long>(ops_voided),
      static_cast<unsigned long long>(expensive_redos),
      static_cast<unsigned long long>(redo_value_bytes),
      static_cast<unsigned long long>(redo_start), torn_tail ? 1 : 0,
      static_cast<unsigned long long>(corrupt_objects),
      static_cast<unsigned long long>(media_repairs),
      media_recovery ? 1 : 0,
      static_cast<unsigned long long>(max_txn_id),
      static_cast<unsigned long long>(loser_txns),
      static_cast<unsigned long long>(loser_clrs),
      static_cast<unsigned long long>(compensations_redone));
  return buf;
}

std::string RecoveryStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("records").Uint(log_records_total);
  w.Key("scanned").Uint(records_scanned);
  w.Key("considered").Uint(ops_considered);
  w.Key("redone").Uint(ops_redone);
  w.Key("skip_installed").Uint(ops_skipped_installed);
  w.Key("skip_unexposed").Uint(ops_skipped_unexposed);
  w.Key("voided").Uint(ops_voided);
  w.Key("flush_txns_completed").Uint(flush_txns_completed);
  w.Key("expensive_redos").Uint(expensive_redos);
  w.Key("redo_bytes").Uint(redo_value_bytes);
  w.Key("redo_start").Uint(redo_start);
  w.Key("torn").Bool(torn_tail);
  w.Key("corrupt").Uint(corrupt_objects);
  w.Key("media_repairs").Uint(media_repairs);
  w.Key("media_recovery").Bool(media_recovery);
  w.Key("max_txn_id").Uint(max_txn_id);
  w.Key("loser_txns").Uint(loser_txns);
  w.Key("loser_clrs").Uint(loser_clrs);
  w.Key("compensations_redone").Uint(compensations_redone);
  w.EndObject();
  return w.Take();
}

/// Recovery is the last line of defense: a write silently damaged on the
/// way down (bit rot in flight) would otherwise be labeled with a fresh
/// vSI and survive as an installed-but-rotten object until the *next*
/// scrub. Re-reading through the checksum catches that immediately; the
/// write is re-issued a bounded number of times before the damage is
/// surfaced as Corruption.
Status VerifiedStableWrite(StableStore* store, uint64_t* retry_counter,
                           ObjectId id, Slice value, Lsn vsi) {
  Status st;
  for (int attempt = 0; attempt <= kMaxIoRetries; ++attempt) {
    st = RetryTransientIo(retry_counter,
                          [&] { return store->Write(id, value, vsi); });
    if (!st.ok()) return st;
    StoredObject check;
    st = RetryTransientIo(retry_counter,
                          [&] { return store->Read(id, &check); });
    if (st.ok()) return Status::OK();
    if (!st.IsCorruption()) return st;
  }
  return st;
}

/// Implements the "expanded REDO" trial execution of Section 5 (see the
/// header): shared by the serial redo scan below and the log-shipping
/// standby applier, which runs the same replay continuously.
Status RedoApplyOperation(CacheManager* cm, const OperationDesc& op,
                          Lsn lsn, bool* voided, uint64_t* value_bytes) {
  *voided = false;
  if (op.op_class == OpClass::kDelete) {
    return cm->ApplyResults(op, lsn, {});
  }
  std::vector<ObjectValue> read_values;
  read_values.reserve(op.reads.size());
  for (ObjectId r : op.reads) {
    if (cm->CurrentVsi(r) >= lsn) {
      // The read object is newer than this operation: the operation is
      // installed in every explanation; re-execution would be erroneous.
      *voided = true;
      return Status::OK();
    }
    ObjectValue v;
    Status st = cm->GetValue(r, &v);
    if (st.IsNotFound()) {
      *voided = true;  // input no longer exists (deleted/never recreated)
      return Status::OK();
    }
    LOGLOG_RETURN_IF_ERROR(st);
    read_values.push_back(std::move(v));
  }
  std::vector<ObjectValue> write_values(op.writes.size());
  for (size_t i = 0; i < op.writes.size(); ++i) {
    ObjectValue v;
    if (cm->GetValue(op.writes[i], &v).ok()) write_values[i] = std::move(v);
  }
  Status st =
      FunctionRegistry::Global().Apply(op, read_values, &write_values);
  if (!st.ok()) {
    // Case (c) of Section 5: execution against inapplicable state raised
    // an error — void the replay.
    *voided = true;
    return Status::OK();
  }
  for (const ObjectValue& v : write_values) *value_bytes += v.size();
  return cm->ApplyResults(op, lsn, std::move(write_values));
}

Status RecoveryDriver::Run(RecoveryStats* stats) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter(metric::kRecoveryRuns)->Inc();
  // Fresh progress gauges per run: a dashboard polling mid-recovery sees
  // this run's advance, not a residue of the previous one.
  reg.GetGauge(metric::kRecoveryProgressRecordsTotal)->Set(0);
  reg.GetGauge(metric::kRecoveryProgressRecordsDone)->Set(0);
  reg.GetGauge(metric::kRecoveryProgressRecordsRedone)->Set(0);
  reg.GetGauge(metric::kRecoveryProgressComponentsTotal)->Set(0);
  reg.GetGauge(metric::kRecoveryProgressComponentsDone)->Set(0);
  reg.GetGauge(metric::kRecoveryProgressBytes)->Set(0);
  FlightRecorder::Global().Record(FlightEventType::kRecoveryStart);
  const auto run_start = std::chrono::steady_clock::now();
  Status st;
  {
    TraceSpan run_span("recovery.run", "recovery",
                       {{"redo_test", RedoTestLabel(redo_test_)},
                        {"threads", std::to_string(redo_threads_)}});
    st = RunPhases(stats);
    run_span.AddArg("redone", stats->ops_redone);
    run_span.AddArg("voided", stats->ops_voided);
    if (!st.ok()) run_span.AddArg("error", st.ToString());
  }
  reg.GetHistogram(metric::kRecoveryDurationUs)
      ->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - run_start)
              .count()));
  reg.GetCounter(metric::kRecoveryOpsRedone)->Inc(stats->ops_redone);
  reg.GetCounter(metric::kRecoveryOpsSkipped)
      ->Inc(stats->ops_skipped_installed + stats->ops_skipped_unexposed);
  reg.GetCounter(metric::kRecoveryOpsVoided)->Inc(stats->ops_voided);
  if (stats->media_recovery) {
    reg.GetCounter(metric::kMediaRecoveries)->Inc();
  }
  if (stats->media_repairs > 0) {
    reg.GetCounter(metric::kMediaRepairs)->Inc(stats->media_repairs);
  }
  FlightRecorder::Global().Record(
      FlightEventType::kRecoveryDone,
      stats->redo_start == kInvalidLsn ? 0 : stats->redo_start,
      stats->ops_redone, stats->loser_txns);
  if (st.ok()) {
    HealthRegistry::Global().Set(health::kRecovery, HealthState::kOk);
    // A completed recovery re-establishes trust in the device the redo
    // pass just read, and its loser pass finished any rollback a crash
    // fault cut short — both subsystems start the new epoch clean.
    HealthRegistry::Global().Set(health::kWalDevice, HealthState::kOk);
    HealthRegistry::Global().Set(health::kTxnManager, HealthState::kOk);
  } else {
    HealthRegistry::Global().Set(health::kRecovery, HealthState::kFailing,
                                 st.ToString());
  }
  return st;
}

Status RecoveryDriver::RunPhases(RecoveryStats* stats) {
  // Pass 1 — streaming analysis: one cursor walk feeds the analysis
  // builder record by record. Nothing is materialized, so recovery memory
  // is bounded by the analysis tables (the dirty set and the retained
  // readers/writesets), not the log length.
  AnalysisBuilder builder;
  Lsn next_lsn = 1;
  // Log-store index rebuild rides the same streaming walk. The rebuilt
  // index must be a faithful *installed* state (the redo tests and the
  // void-on-newer-read rule both assume the base state is some
  // explanation of installed operations): start from the last
  // kIndexCheckpoint snapshot, then apply only publishes evidenced by a
  // later kInstall record — pairing each installed object with the last
  // full-image record seen for it (the install path guarantees that
  // record is the object's last writer). Unevidenced publishes (a lost
  // lazy install record) just mean extra redo, never wrong state.
  const bool logstore = cm_->backend() == StorageBackend::kLogStore;
  LogIndex* index = logstore ? &cm_->log_index() : nullptr;
  if (logstore) index->Clear();
  struct ShadowImage {
    IndexCheckpointEntry entry;
    bool tombstone = false;
  };
  std::unordered_map<ObjectId, ShadowImage> images;
  {
    TraceSpan span("recovery.log_scan", "recovery");
    LogCursor cursor(disk_->log());
    LogRecord rec;
    while (cursor.Next(&rec)) {
      ++stats->log_records_total;
      builder.Add(rec);
      if (!logstore) continue;
      switch (rec.type) {
        case RecordType::kIndexCheckpoint:
          index->Reset(rec.index_entries);
          break;
        case RecordType::kOperation:
        case RecordType::kCompensation:
          if (IsFullImageOp(rec.op) && !rec.op.writes.empty()) {
            ShadowImage& img = images[rec.op.writes[0]];
            img.entry.id = rec.op.writes[0];
            img.entry.lsn = rec.lsn;
            img.entry.offset = cursor.record_offset();
            img.entry.size = cursor.valid_end() - cursor.record_offset();
            img.tombstone = rec.op.op_class == OpClass::kDelete;
          }
          break;
        case RecordType::kInstall:
          for (const InstallEntry& ie : rec.installed_vars) {
            auto it = images.find(ie.id);
            if (it == images.end()) continue;
            if (it->second.tombstone) {
              index->Erase(ie.id);
            } else {
              index->Publish(ie.id, it->second.entry.lsn,
                             it->second.entry.offset, it->second.entry.size);
            }
          }
          break;
        default:
          break;
      }
    }
    LOGLOG_RETURN_IF_ERROR(cursor.status());
    stats->torn_tail = cursor.torn();
    next_lsn = cursor.next_lsn();
    if (cursor.torn()) {
      // Discard the torn suffix so future appends resume at a clean
      // point.
      disk_->log().TearTail(disk_->log().end_offset() - cursor.valid_end());
    }
    span.AddArg("records", stats->log_records_total);
    span.AddArg("torn", cursor.torn() ? "true" : "false");
  }

  AnalysisResult analysis;
  Lsn start = kInvalidLsn;
  {
    TraceSpan span("recovery.analysis", "recovery");
    analysis = builder.Finish();
    // Scan start: the generalized test uses the minimum generalized rSI,
    // the classic vSI test its classic recLSN minimum; the repeat-all
    // baseline replays the full retained log.
    if (redo_test_ == RedoTestKind::kRsiGeneralized ||
        redo_test_ == RedoTestKind::kRsiFixpoint) {
      start = analysis.redo_start;
    } else if (redo_test_ == RedoTestKind::kVsi) {
      start = analysis.redo_start_classic;
    }
    if (redo_test_ == RedoTestKind::kRsiFixpoint) {
      analysis.fixpoint_redo = ComputeRedoFixpoint(analysis);
    }
    stats->redo_start = start == kMaxLsn ? next_lsn : start;
    span.AddArg("redo_start", stats->redo_start);
    // Reseed the adaptive policy (if the engine runs one) with the class
    // mix reconstructed from the logged decision records, so post-crash
    // writes resume under the classes they crashed with.
    if (policy_ != nullptr) {
      for (const auto& [id, cls] : analysis.policy_classes) {
        policy_->Restore(id, static_cast<LogChoice>(cls));
      }
    }
  }
  stats->max_txn_id = analysis.max_txn_id;

  // Media scrub: checksum-sweep the stable store before trusting it as
  // the redo base. Any corrupt object diverts recovery to the media path
  // (see the class comment) — ordinary redo would either read the
  // damaged value (Corruption on every access) or, worse, skip the
  // object as "installed" on the strength of a vSI attached to rotten
  // bytes.
  {
    TraceSpan span("recovery.media_scrub", "recovery");
    stats->corrupt_objects = disk_->store().CorruptObjects().size();
    span.AddArg("corrupt", stats->corrupt_objects);
  }
  if (stats->corrupt_objects > 0) {
    TraceSpan span("recovery.media_repair", "recovery",
                   {{"corrupt", std::to_string(stats->corrupt_objects)}});
    // Seed the counter first: the repair ships the rebuilt recovery's
    // loser-rollback tail onto the live log, advancing it past next_lsn.
    log_->SetNextLsn(next_lsn);
    LOGLOG_RETURN_IF_ERROR(RepairFromMedia(next_lsn - 1, stats));
    span.AddArg("repairs", stats->media_repairs);
    stats->media_recovery = true;
    // The rebuilt store is the fully-installed final state: every logged
    // operation's writes already carry their vSIs, so the redo pass
    // would skip everything, and the rebuilt recovery already rolled
    // back in-flight transactions. Resume execution directly.
    return Status::OK();
  }

  // The loser table: transactions still in flight at the end of the log.
  // Their forward operation records are stashed during the redo scan
  // below (which walks the whole retained log anyway — the checkpoint
  // truncation floor guarantees a loser's chain survives), then rolled
  // back after redo completes.
  std::unordered_map<uint64_t, std::vector<TxnChainRecord>> loser_chains;
  for (const auto& [tid, info] : analysis.txns) {
    if (info.state == AnalysisResult::TxnInfo::State::kInFlight) {
      loser_chains.try_emplace(tid);
    }
  }

  // Pass 2 — redo scan: a second cursor walk (the tail, if torn, was
  // already cut by pass 1). The serial path decides and replays in
  // place; the parallel path collects the workload — operations at or
  // after the start plus committed flush transactions — and hands it to
  // the partitioned worker pool. The scan-order counters are identical
  // either way because they are decided here, before dispatch.
  // Parallel redo partitions over stable-store base images; under the
  // log-store backend the base lives behind the rebuilt log index (a
  // shared, faulting read path), so redo stays serial there.
  const bool parallel = redo_threads_ > 1 &&
                        cm_->backend() != StorageBackend::kLogStore;
  TraceSpan redo_span("recovery.redo", "recovery",
                      {{"mode", parallel ? "parallel" : "serial"}});
  // Live progress: total grows with the scan, done/redone/bytes advance
  // per decision (here in serial mode, from the workers in parallel).
  MetricsRegistry& progress_reg = MetricsRegistry::Global();
  Gauge* progress_total =
      progress_reg.GetGauge(metric::kRecoveryProgressRecordsTotal);
  Gauge* progress_done =
      progress_reg.GetGauge(metric::kRecoveryProgressRecordsDone);
  Gauge* progress_redone =
      progress_reg.GetGauge(metric::kRecoveryProgressRecordsRedone);
  Gauge* progress_bytes =
      progress_reg.GetGauge(metric::kRecoveryProgressBytes);
  std::vector<LogRecord> parallel_work;
  LogCursor cursor(disk_->log());
  LogRecord rec;
  while (cursor.Next(&rec)) {
    switch (rec.type) {
      // Compensation records redo exactly like forward operations: REDO
      // repeats history straight through earlier rollbacks, and the
      // analysis accumulators already cover CLR writesets.
      case RecordType::kCompensation:
      case RecordType::kOperation: {
        if (rec.type == RecordType::kOperation && rec.txn_id != 0) {
          auto loser = loser_chains.find(rec.txn_id);
          if (loser != loser_chains.end()) {
            loser->second.push_back({rec.lsn, rec.op, rec.undo_images});
          }
        }
        if (rec.lsn < start) break;
        ++stats->records_scanned;
        ++stats->ops_considered;
        progress_total->Add(1);
        if (rec.type == RecordType::kCompensation) {
          ++stats->compensations_redone;
        }
        if (parallel) {
          parallel_work.push_back(rec);
          break;
        }
        RedoDecision decision =
            TestRedo(redo_test_, rec.op, rec.lsn, analysis, *cm_);
        if (decision == RedoDecision::kSkipInstalled) {
          ++stats->ops_skipped_installed;
          progress_done->Add(1);
          break;
        }
        if (decision == RedoDecision::kSkipUnexposed) {
          ++stats->ops_skipped_unexposed;
          progress_done->Add(1);
          break;
        }
        bool voided = false;
        const uint64_t bytes_before = stats->redo_value_bytes;
        LOGLOG_RETURN_IF_ERROR(RedoApplyOperation(
            cm_, rec.op, rec.lsn, &voided, &stats->redo_value_bytes));
        progress_done->Add(1);
        progress_bytes->Add(
            static_cast<int64_t>(stats->redo_value_bytes - bytes_before));
        if (voided) {
          ++stats->ops_voided;
        } else {
          ++stats->ops_redone;
          progress_redone->Add(1);
          if (rec.op.op_class == OpClass::kLogical) {
            ++stats->expensive_redos;
          }
        }
        break;
      }
      case RecordType::kFlushTxnBegin: {
        ++stats->records_scanned;
        // Complete a committed flush transaction whose in-place writes
        // may have been interrupted: re-apply the frozen values to the
        // stable store wherever it is behind. Uncommitted transactions
        // never touched the stable store and are ignored.
        if (!analysis.committed_flush_txns.contains(rec.lsn)) break;
        if (parallel) {
          parallel_work.push_back(rec);
          break;
        }
        bool applied = false;
        for (const FlushValue& fv : rec.flush_values) {
          if (fv.erase) {
            if (disk_->store().Exists(fv.id)) {
              LOGLOG_RETURN_IF_ERROR(
                  RetryTransientIo(&disk_->stats().io_retries, [&] {
                    return disk_->store().Erase(fv.id);
                  }));
              applied = true;
            }
          } else if (disk_->store().StableVsi(fv.id) < fv.vsi) {
            LOGLOG_RETURN_IF_ERROR(VerifiedStableWrite(
                &disk_->store(), &disk_->stats().io_retries, fv.id,
                Slice(fv.value), fv.vsi));
            applied = true;
          }
        }
        if (applied) ++stats->flush_txns_completed;
        break;
      }
      case RecordType::kCheckpoint:
      case RecordType::kInstall:
      case RecordType::kIndexCheckpoint:
      case RecordType::kFlushTxnCommit:
      case RecordType::kPolicyDecision:
      case RecordType::kTxnBegin:
      case RecordType::kTxnCommit:
      case RecordType::kTxnAbort:
        break;  // consumed by analysis (index rebuild happened in pass 1)
    }
  }
  LOGLOG_RETURN_IF_ERROR(cursor.status());

  if (parallel) {
    ParallelRedoResult pr;
    LOGLOG_RETURN_IF_ERROR(ParallelRedo(disk_, cm_, redo_test_, analysis,
                                        parallel_work, redo_threads_, &pr));
    stats->ops_redone += pr.ops_redone;
    stats->ops_skipped_installed += pr.ops_skipped_installed;
    stats->ops_skipped_unexposed += pr.ops_skipped_unexposed;
    stats->ops_voided += pr.ops_voided;
    stats->flush_txns_completed += pr.flush_txns_completed;
    stats->redo_value_bytes += pr.redo_value_bytes;
    stats->expensive_redos += pr.expensive_redos;
  }
  redo_span.AddArg("redone", stats->ops_redone);
  redo_span.End();

  // Re-seed the LSN counter before the loser pass: its compensation
  // records are new appends past the scanned history.
  log_->SetNextLsn(next_lsn);

  // Pass 3 — loser rollback: roll back every transaction the crash left
  // in flight before the system opens. Redo repeated history first, so
  // the state each inverse sees is exactly what the crashed rollback (if
  // one had started) saw; the latest stable CLR's undo-next cursor makes
  // resumption exact — nothing is ever compensated twice. Ascending txn
  // id keeps the pass deterministic. Loser locks need no reacquisition:
  // nothing else runs until recovery returns.
  if (!loser_chains.empty()) {
    TraceSpan span("recovery.loser_undo", "recovery",
                   {{"losers", std::to_string(loser_chains.size())}});
    std::vector<uint64_t> ids;
    ids.reserve(loser_chains.size());
    for (const auto& [tid, chain] : loser_chains) ids.push_back(tid);
    std::sort(ids.begin(), ids.end());
    TxnUndoStats undo;
    for (uint64_t tid : ids) {
      const AnalysisResult::TxnInfo& info = analysis.txns.at(tid);
      TxnRollbackPlan plan;
      plan.txn_id = tid;
      plan.last_lsn = info.last_lsn;
      plan.forward = std::move(loser_chains[tid]);
      plan.resume_lsn = info.undo_next;
      plan.resume_skip = info.undo_skip;
      LOGLOG_RETURN_IF_ERROR(RollbackTxn(cm_, log_,
                                         &disk_->fault_injector(), plan,
                                         rollback_io_retries_, &undo));
    }
    stats->loser_txns = undo.txns_rolled_back;
    stats->loser_clrs = undo.clrs_logged;
    span.AddArg("clrs", stats->loser_clrs);
  }
  return Status::OK();
}

Status RecoveryDriver::RepairFromMedia(Lsn max_valid_lsn,
                                       RecoveryStats* stats) {
  // Rebuild the database wholesale on a scratch disk: backup image (or
  // an empty one — the verification archive reaches back to the
  // beginning of history) plus full archive replay under the vSI-guarded
  // repeat-all test, then flush everything. The result is the
  // fully-installed final state of the logged history.
  BackupImage empty;
  const BackupImage* image =
      repair_backup_ != nullptr ? repair_backup_ : &empty;
  SimulatedDisk rebuilt_disk;
  std::unique_ptr<RecoveryEngine> rebuilt;
  RecoveryStats media_stats;
  LOGLOG_RETURN_IF_ERROR(MediaRecover(*image,
                                      disk_->log().ArchiveContents(),
                                      &rebuilt_disk, &rebuilt,
                                      &media_stats));
  LOGLOG_RETURN_IF_ERROR(rebuilt->FlushAll());

  // The rebuilt recovery rolled back any transactions the crash left in
  // flight, logging their compensation and abort records on the rebuilt
  // log. Ship that tail onto the live log so the live history tells the
  // same story as the resynced state — the next recovery's analysis must
  // see those losers resolved, not roll them back a second time.
  Lsn max_valid = max_valid_lsn;
  if (media_stats.loser_txns > 0) {
    LOGLOG_RETURN_IF_ERROR(rebuilt->log().ForceAll());
    LogCursor tail(rebuilt_disk.log());
    LogRecord rec;
    while (tail.Next(&rec)) {
      if (rec.lsn <= max_valid_lsn) continue;
      log_->AppendReplicated(rec);
      max_valid = std::max(max_valid, rec.lsn);
    }
    LOGLOG_RETURN_IF_ERROR(tail.status());
    LOGLOG_RETURN_IF_ERROR(log_->ForceAll());
    stats->loser_txns += media_stats.loser_txns;
    stats->loser_clrs += media_stats.loser_clrs;
  }

  // Resync the live store to the rebuilt state. A per-object patch of
  // only the corrupt objects would be unsound under the rSI redo tests:
  // patching to a final-history value regresses nothing, but a later
  // redone blind write (tested redo-worthy against the *old* vSI) could
  // clobber it, and a voided reader could leave stale outputs. The
  // wholesale copy sidesteps the hazard — afterwards nothing needs redo.
  StableStore& live = disk_->store();
  const StableStore& fresh = rebuilt_disk.store();

  std::vector<ObjectId> to_erase;
  live.ForEach([&](ObjectId id, const StoredObject&) {
    if (!fresh.Exists(id)) to_erase.push_back(id);
  });
  for (ObjectId id : to_erase) {
    LOGLOG_RETURN_IF_ERROR(RetryTransientIo(
        &disk_->stats().io_retries, [&] { return live.Erase(id); }));
  }

  std::vector<ObjectId> corrupt_list = live.CorruptObjects();
  std::unordered_set<ObjectId> corrupt(corrupt_list.begin(),
                                       corrupt_list.end());
  Status out = Status::OK();
  fresh.ForEach([&](ObjectId id, const StoredObject& obj) {
    if (!out.ok()) return;
    // The rebuilt engine re-logged its own installation traffic (identity
    // writes, install records), so rebuilt vSIs can exceed the live log's
    // end. The repaired value is exactly the replay of the live archive
    // (plus the shipped loser-rollback tail, included in `max_valid`), so
    // the live log's last valid LSN is the honest label: it keeps the
    // WAL invariant (vSI <= stable log end) and still makes every redo
    // test skip operations whose effects the replay already contains.
    Lsn vsi = std::min(obj.vsi, max_valid);
    // An intact live object at the rebuilt vSI already holds the same
    // value (vSI identifies the operation that produced it).
    if (!corrupt.contains(id) && live.StableVsi(id) == vsi) return;
    out = VerifiedStableWrite(&live, &disk_->stats().io_retries, id,
                              Slice(obj.value), vsi);
    if (out.ok()) ++stats->media_repairs;
  });
  return out;
}

}  // namespace loglog
