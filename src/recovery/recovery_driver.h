#ifndef LOGLOG_RECOVERY_RECOVERY_DRIVER_H_
#define LOGLOG_RECOVERY_RECOVERY_DRIVER_H_

#include <string>

#include "cache/cache_manager.h"
#include "cache/policies.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"

namespace loglog {

struct BackupImage;
class AdaptiveLogPolicy;

/// A store write issued by recovery itself, verified by read-back through
/// the checksum and re-issued a bounded number of times on damage (shared
/// by the serial driver, media repair, and parallel-REDO workers —
/// `retry_counter` may be a worker-local counter merged later).
Status VerifiedStableWrite(StableStore* store, uint64_t* retry_counter,
                           ObjectId id, Slice value, Lsn vsi);

/// Re-executes one logged operation against the current state through the
/// normal cache path — the "expanded REDO" trial execution of Section 5.
/// An inapplicable replay (missing or newer-than-lSI read state, failing
/// transform) is voided (*voided = true, OK returned) without touching
/// exposed objects. Shared by the serial redo scan and the standby
/// applier's continuous-redo path; `value_bytes` accumulates the bytes of
/// recomputed write values.
Status RedoApplyOperation(CacheManager* cm, const OperationDesc& op,
                          Lsn lsn, bool* voided, uint64_t* value_bytes);

/// Outcome counters of a recovery run — the quantities the Section 5
/// experiments report.
struct RecoveryStats {
  uint64_t log_records_total = 0;
  uint64_t records_scanned = 0;   // records at or after the redo start
  uint64_t ops_considered = 0;
  uint64_t ops_redone = 0;
  uint64_t ops_skipped_installed = 0;  // vSI test
  uint64_t ops_skipped_unexposed = 0;  // generalized rSI test
  uint64_t ops_voided = 0;             // trial execution aborted
  uint64_t flush_txns_completed = 0;
  uint64_t redo_value_bytes = 0;  // bytes of object values recomputed
  /// Re-executions of expensive logical transforms (application execute/
  /// read/write, file copy/sort) — what the rSI optimization avoids.
  uint64_t expensive_redos = 0;
  Lsn redo_start = kInvalidLsn;
  bool torn_tail = false;
  /// Stable objects that failed the checksum sweep at recovery start.
  uint64_t corrupt_objects = 0;
  /// Stable objects rewritten by the media-repair pass.
  uint64_t media_repairs = 0;
  /// True when corruption forced recovery through the media path
  /// (backup + full archive replay) instead of ordinary redo.
  bool media_recovery = false;
  /// Highest transaction id on the retained log (0 if none). The engine
  /// hands it to the TxnManager so ids are never reused across a crash.
  uint64_t max_txn_id = 0;
  /// Transactions found in flight at the end of the log and rolled back
  /// by the loser pass before the system opened.
  uint64_t loser_txns = 0;
  /// Compensation records appended by the loser pass (resumed rollbacks
  /// log only the steps their crash left unstable).
  uint64_t loser_clrs = 0;
  /// Compensation records the redo scan considered (history repeats
  /// straight through earlier rollbacks).
  uint64_t compensations_redone = 0;

  std::string ToString() const;
  /// One flat JSON object, keys matching the ToString() fields.
  std::string ToJson() const;
};

/// \brief Drives crash recovery: read the stable log (tolerating a torn
/// tail), run the analysis pass, then the redo pass (Figure 2's
/// Recover(D, I) with the Section 5 REDO tests), repeating history
/// through the same cache-manager path used during normal execution.
///
/// After Run() the cache holds the recovered state with a rebuilt write
/// graph; the caller may resume normal execution immediately (and flush
/// lazily, in write-graph order) — recovery is idempotent under crashes
/// because redone operations are installed through PurgeCache like any
/// others.
/// Before any of that, the stable store is swept for checksum failures.
/// A corrupt object is a media failure, not a crash artifact — ordinary
/// redo cannot fix it (the damaged object may be an input of operations
/// that redo would replay, and under the rSI tests a per-object patch to
/// a newer value could be clobbered by a redone blind write). So on any
/// detected corruption the driver rebuilds the *whole* stable database:
/// media recovery from `repair_backup` (or an empty image — the archive
/// reaches back to the beginning of history) plus full archive replay,
/// then overwrites the live store with the rebuilt, fully-installed
/// state. Nothing is left to redo afterwards, so recovery returns early.
class RecoveryDriver {
 public:
  /// `redo_threads` > 1 replays independent components of the redo
  /// workload on that many workers (see parallel_redo.h); <= 1 keeps the
  /// serial scan. Either way the recovered state is identical.
  RecoveryDriver(SimulatedDisk* disk, LogManager* log, CacheManager* cm,
                 RedoTestKind redo_test,
                 const BackupImage* repair_backup = nullptr,
                 int redo_threads = 1)
      : disk_(disk),
        log_(log),
        cm_(cm),
        redo_test_(redo_test),
        repair_backup_(repair_backup),
        redo_threads_(redo_threads) {}

  Status Run(RecoveryStats* stats);

  /// Optional adaptive policy to reseed from the analysis pass's
  /// kPolicyDecision reconstruction (nullptr: no reseeding). Must
  /// outlive Run().
  void set_policy(AdaptiveLogPolicy* policy) { policy_ = policy; }

  /// I/O retry budget handed to the loser pass's rollback executor
  /// (EngineOptions::rollback_io_retries; rollback fails fast because a
  /// crashed rollback is simply resumed by the next recovery).
  void set_rollback_io_retries(int n) { rollback_io_retries_ = n; }

 private:
  /// The phases themselves; Run wraps this with the "recovery.run" trace
  /// span and the recovery.* metric updates.
  Status RunPhases(RecoveryStats* stats);
  /// Wholesale media resync of the live stable store (see class comment).
  Status RepairFromMedia(Lsn max_valid_lsn, RecoveryStats* stats);

  SimulatedDisk* disk_;
  LogManager* log_;
  CacheManager* cm_;
  RedoTestKind redo_test_;
  const BackupImage* repair_backup_;
  int redo_threads_;
  AdaptiveLogPolicy* policy_ = nullptr;
  int rollback_io_retries_ = 1;
};

}  // namespace loglog

#endif  // LOGLOG_RECOVERY_RECOVERY_DRIVER_H_
