#include "recovery/redo_test.h"

namespace loglog {

namespace {

/// Adapts the cache manager to the VsiView seam.
class CmVsiView final : public VsiView {
 public:
  explicit CmVsiView(const CacheManager& cm) : cm_(cm) {}
  Lsn CurrentVsi(ObjectId x) const override { return cm_.CurrentVsi(x); }

 private:
  const CacheManager& cm_;
};

}  // namespace

RedoDecision TestRedo(RedoTestKind kind, const OperationDesc& op, Lsn lsn,
                      const AnalysisResult& analysis,
                      const CacheManager& cm) {
  return TestRedo(kind, op, lsn, analysis, CmVsiView(cm));
}

RedoDecision TestRedo(RedoTestKind kind, const OperationDesc& op, Lsn lsn,
                      const AnalysisResult& analysis, const VsiView& vsis) {
  // Manifestly-installed check (all variants): if any written object
  // carries a vSI at or past this operation, the operation was installed
  // — under rW installation is atomic over the writeset even when only
  // part of it was flushed, so a single object suffices (Section 5).
  for (ObjectId x : op.writes) {
    if (vsis.CurrentVsi(x) >= lsn) return RedoDecision::kSkipInstalled;
  }
  if (kind == RedoTestKind::kAlways) return RedoDecision::kRedo;

  if (kind == RedoTestKind::kVsi) {
    // ARIES-style: skip when every written object is outside the classic
    // dirty object table or the record precedes its recLSN. Installs
    // without flushes (Notx) and delete lifetimes are NOT exploited.
    for (ObjectId x : op.writes) {
      auto it = analysis.dot_classic.find(x);
      if (it != analysis.dot_classic.end() && lsn >= it->second) {
        return RedoDecision::kRedo;
      }
    }
    return RedoDecision::kSkipInstalled;
  }

  if (kind == RedoTestKind::kRsiFixpoint) {
    auto it = analysis.fixpoint_redo.find(lsn);
    if (it != analysis.fixpoint_redo.end() && !it->second) {
      return BasicRsiRedoable(analysis, lsn, op.writes)
                 ? RedoDecision::kSkipUnexposed
                 : RedoDecision::kSkipInstalled;
    }
    return RedoDecision::kRedo;
  }

  // Generalized test: redo iff some written object is exposed and
  // uninstalled, i.e. lSI >= max(rSI, vSI+1) — where an object absent
  // from the dirty object table is clean (all its operations installed),
  // and an object whose last update is a delete at D makes every earlier
  // operation's result unexposed.
  for (ObjectId x : op.writes) {
    auto dot_it = analysis.dot.find(x);
    if (dot_it == analysis.dot.end()) continue;      // clean: installed
    if (lsn < dot_it->second) continue;              // lSI < rSI: installed
    if (DeadSkipAllowed(analysis, x, lsn)) {
      continue;  // result unexposed: the object's lifetime ended and no
                 // uninstalled operation read it in between
    }
    return RedoDecision::kRedo;
  }
  return RedoDecision::kSkipUnexposed;
}

}  // namespace loglog
