#ifndef LOGLOG_RECOVERY_REDO_TEST_H_
#define LOGLOG_RECOVERY_REDO_TEST_H_

#include "cache/cache_manager.h"
#include "cache/policies.h"
#include "common/types.h"
#include "ops/operation.h"
#include "recovery/analysis.h"

namespace loglog {

/// Minimal view of current (cached-else-stable) vSIs — the only dynamic
/// state the REDO test consults. CacheManager provides the serial view;
/// parallel REDO workers provide per-component private views with the
/// same semantics.
class VsiView {
 public:
  virtual ~VsiView() = default;
  /// Current vSI of `x`: the cached value if the view holds one, the
  /// stable store's otherwise (kInvalidLsn for an absent object).
  virtual Lsn CurrentVsi(ObjectId x) const = 0;
};

/// Why a REDO test decided not to replay an operation (for stats).
enum class RedoDecision {
  /// Replay the operation.
  kRedo,
  /// Some written object's vSI >= lSI: manifestly installed (classic SI
  /// test; under rW, installation is atomic so one object suffices).
  kSkipInstalled,
  /// Every written object is clean, unexposed (lSI < rSI), or deleted:
  /// the operation is installed in the largest explanation even though
  /// vSIs may be stale (the generalized rSI test of Section 5).
  kSkipUnexposed,
};

/// \brief The REDO test of Section 5: should the operation at `lsn` be
/// re-executed during the redo scan?
///
/// `kAlways` replays everything (trial execution voids inapplicable
/// replays downstream); `kVsi` is the traditional SI test; and
/// `kRsiGeneralized` combines "is installed" (vSI) with "is exposed"
/// (rSI, delete lifetimes) so that operations whose results are unexposed
/// — including every operation on deleted transient objects — are never
/// re-executed.
RedoDecision TestRedo(RedoTestKind kind, const OperationDesc& op, Lsn lsn,
                      const AnalysisResult& analysis,
                      const CacheManager& cm);

/// Same test against any vSI provider (parallel REDO passes a worker's
/// component-private view).
RedoDecision TestRedo(RedoTestKind kind, const OperationDesc& op, Lsn lsn,
                      const AnalysisResult& analysis, const VsiView& vsis);

}  // namespace loglog

#endif  // LOGLOG_RECOVERY_REDO_TEST_H_
