#include "recovery/txn_undo.h"

#include "ops/function_registry.h"
#include "ops/inverse_registry.h"
#include "ops/op_builder.h"

namespace loglog {

namespace {

// Executes one compensation operation and logs its CLR: compute the new
// values from the current state (reads bounded by `io_budget` retries),
// append the record, apply the results — the same order as a forward
// execution, so the WAL invariant (no stable effect without a stable
// record) holds for compensation too.
Status ApplyClr(CacheManager* cm, LogManager* log, const OperationDesc& op,
                uint64_t txn_id, Lsn prev_lsn, Lsn undo_next_lsn,
                uint64_t undo_skip, int io_budget, TxnUndoStats* stats,
                Lsn* out_lsn) {
  std::vector<ObjectValue> new_values;
  if (op.op_class != OpClass::kDelete) {
    std::vector<ObjectValue> read_values;
    read_values.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      ObjectValue v;
      LOGLOG_RETURN_IF_ERROR(cm->GetValue(r, &v, io_budget));
      read_values.push_back(std::move(v));
    }
    new_values.resize(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      ObjectValue v;
      if (cm->GetValue(op.writes[i], &v, io_budget).ok()) {
        new_values[i] = std::move(v);
      }
    }
    LOGLOG_RETURN_IF_ERROR(
        FunctionRegistry::Global().Apply(op, read_values, &new_values));
  } else if (!cm->ObjectExists(op.writes[0])) {
    return Status::Corruption("compensation deletes nonexistent object");
  }
  ++stats->clrs_logged;
  size_t payload_size = 0;
  Lsn assigned = log->AppendCompensation(op, txn_id, prev_lsn, undo_next_lsn,
                                         undo_skip, &payload_size);
  stats->compensation_bytes += payload_size;
  if (out_lsn != nullptr) *out_lsn = assigned;
  return cm->ApplyResults(op, assigned, std::move(new_values));
}

}  // namespace

Status RollbackTxn(CacheManager* cm, LogManager* log, FaultInjector* faults,
                   const TxnRollbackPlan& plan, int io_budget,
                   TxnUndoStats* stats) {
  Lsn chain = plan.last_lsn;

  // Locate the resume point: undo forward[0 .. idx-1], newest first,
  // with `skip` writes of forward[idx-1] already compensated.
  size_t idx;
  uint64_t skip = 0;
  if (plan.resume_lsn == kInvalidLsn) {
    idx = 0;  // everything compensated; only the abort record is missing
  } else if (plan.resume_lsn == kMaxLsn) {
    idx = plan.forward.size();  // nothing compensated yet
  } else {
    idx = 0;
    for (size_t i = 0; i < plan.forward.size(); ++i) {
      if (plan.forward[i].lsn == plan.resume_lsn) {
        idx = i + 1;
        break;
      }
    }
    if (idx == 0) {
      return Status::Corruption("undo-next LSN not on the backchain");
    }
    skip = plan.resume_skip;
  }

  while (idx > 0) {
    --idx;
    const TxnChainRecord& fwd = plan.forward[idx];
    const Lsn next_after =
        idx > 0 ? plan.forward[idx - 1].lsn : kInvalidLsn;

    if (fwd.images.empty()) {
      // Logical compensation: one inverse operation undoes the whole
      // record (skip can only be 0 — single-step records never leave a
      // partial CLR trail).
      if (skip != 0) {
        return Status::Corruption("undo skip on a single-step record");
      }
      LOGLOG_RETURN_IF_ERROR(faults->MaybeFail(fault::kTxnRollbackCrash));
      OperationDesc inverse;
      LOGLOG_RETURN_IF_ERROR(
          InverseRegistry::Global().BuildInverse(fwd.op, &inverse));
      ++stats->logical_inverses;
      LOGLOG_RETURN_IF_ERROR(ApplyClr(cm, log, inverse, plan.txn_id, chain,
                                      next_after, /*undo_skip=*/0, io_budget,
                                      stats, &chain));
      continue;
    }

    // Physical compensation: one CLR per write, last write first, so a
    // crash between CLRs re-enters exactly at (this record, undo_skip).
    if (fwd.images.size() != fwd.op.writes.size() ||
        skip > fwd.images.size()) {
      return Status::Corruption("undo images inconsistent with writeset");
    }
    for (size_t n = fwd.op.writes.size(), j = n - skip; j > 0; --j) {
      const size_t w = j - 1;
      LOGLOG_RETURN_IF_ERROR(faults->MaybeFail(fault::kTxnRollbackCrash));
      const UndoImage& img = fwd.images[w];
      OperationDesc restore =
          img.exists ? MakePhysicalWrite(fwd.op.writes[w], Slice(img.value))
                     : MakeDelete(fwd.op.writes[w]);
      ++stats->image_restores;
      LOGLOG_RETURN_IF_ERROR(ApplyClr(
          cm, log, restore, plan.txn_id, chain,
          /*undo_next_lsn=*/w > 0 ? fwd.lsn : next_after,
          /*undo_skip=*/w > 0 ? n - w : 0, io_budget, stats, &chain));
    }
    skip = 0;
  }

  log->AppendTxnMarker(RecordType::kTxnAbort, plan.txn_id, chain);
  ++stats->txns_rolled_back;
  return Status::OK();
}

}  // namespace loglog
