#ifndef LOGLOG_RECOVERY_TXN_UNDO_H_
#define LOGLOG_RECOVERY_TXN_UNDO_H_

#include <vector>

#include "cache/cache_manager.h"
#include "common/status.h"
#include "common/types.h"
#include "fault/fault_injector.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {

/// One forward in-transaction operation awaiting undo: the logged record's
/// LSN, its operation, and its before-images (empty when the op's FuncId
/// had an exact registered logical inverse — see ops/inverse_registry.h).
struct TxnChainRecord {
  Lsn lsn = kInvalidLsn;
  OperationDesc op;
  std::vector<UndoImage> images;
};

/// Everything needed to roll one transaction back. Built from the
/// in-memory undo stack at runtime (TxnManager::Rollback) or from stashed
/// log records for a loser after a crash (RecoveryDriver) — both feed the
/// same RollbackTxn, which is what makes rollback crash-consistent: a
/// crash mid-rollback just re-derives a shorter plan from the log.
struct TxnRollbackPlan {
  uint64_t txn_id = 0;
  /// Backchain head: LSN of the transaction's latest record (CLRs
  /// included) — the prev_lsn of the next record appended.
  Lsn last_lsn = kInvalidLsn;
  /// Forward operations in ascending LSN order (the full chain; already
  /// compensated ones are skipped via resume_lsn).
  std::vector<TxnChainRecord> forward;
  /// Where to resume: kMaxLsn = nothing compensated yet, undo from the
  /// top; kInvalidLsn = every operation compensated, only the kTxnAbort
  /// record is missing; otherwise the LSN of the next forward record to
  /// undo (the last stable CLR's undo_next_lsn).
  Lsn resume_lsn = kMaxLsn;
  /// Writes of the resume record already compensated, counted from the
  /// last write backwards (the last stable CLR's undo_skip).
  uint64_t resume_skip = 0;
};

/// Rollback counters (shared by runtime aborts and the loser pass).
struct TxnUndoStats {
  uint64_t txns_rolled_back = 0;
  uint64_t clrs_logged = 0;
  uint64_t compensation_bytes = 0;
  uint64_t logical_inverses = 0;  // CLRs carrying a registered inverse
  uint64_t image_restores = 0;    // CLRs restoring a before-image
};

/// \brief Rolls one transaction back: walks the plan's forward chain in
/// reverse, logging and executing one kCompensation record per undo step
/// (a registered logical inverse per operation, or one physical restore
/// per write from the logged before-images), then ends the chain with a
/// kTxnAbort record.
///
/// Each CLR carries (undo_next_lsn, undo_skip), so a crash between any
/// two steps resumes exactly — effects become stable only under the WAL
/// protocol, hence nothing is ever compensated twice. Neither CLRs nor
/// the abort record are forced: re-running a rollback after a crash is
/// idempotent, so abort durability costs nothing.
///
/// Hits fault::kTxnRollbackCrash before every CLR; a kCrashNow fire (or
/// any I/O failure surviving `io_budget` retries) propagates — the caller
/// tears down and recovery finishes the rollback.
Status RollbackTxn(CacheManager* cm, LogManager* log, FaultInjector* faults,
                   const TxnRollbackPlan& plan, int io_budget,
                   TxnUndoStats* stats);

}  // namespace loglog

#endif  // LOGLOG_RECOVERY_TXN_UNDO_H_
