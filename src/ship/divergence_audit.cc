#include "ship/divergence_audit.h"

#include <utility>
#include <vector>

#include "engine/recovery_engine.h"
#include "ops/function_registry.h"
#include "ops/operation.h"
#include "wal/log_record.h"

namespace loglog {

std::string DivergenceReport::ToString() const {
  std::string s = "divergence audit upto lsn " + std::to_string(audited_upto) +
                  ": " + std::to_string(objects_compared) + "/" +
                  std::to_string(objects_expected) + " objects, " +
                  std::to_string(value_mismatches) + " value / " +
                  std::to_string(vsi_mismatches) + " vsi mismatches, " +
                  std::to_string(missing_objects) + " missing, " +
                  std::to_string(extra_objects) + " extra";
  if (!first_divergence.empty()) s += " — first: " + first_divergence;
  return s;
}

Status DivergenceAuditor::Advance(Slice archive, Lsn upto) {
  while (true) {
    LogRecord rec;
    Status st = ReadFramedRecord(&archive, &rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) break;  // torn archive tail: trust ends here
    LOGLOG_RETURN_IF_ERROR(st);
    // Compensation records are audited like forward operations: the
    // expected state of a rolled-back region is the history *through*
    // the rollback, and both sides replay it identically.
    if (rec.type != RecordType::kOperation &&
        rec.type != RecordType::kCompensation) {
      continue;
    }
    if (rec.lsn <= audited_upto_ || rec.lsn > upto) continue;
    const OperationDesc& op = rec.op;
    if (op.op_class == OpClass::kDelete) {
      expected_.erase(op.writes[0]);
      continue;
    }
    std::vector<ObjectValue> read_values;
    read_values.reserve(op.reads.size());
    for (ObjectId r : op.reads) {
      auto it = expected_.find(r);
      if (it == expected_.end()) {
        return Status::NotFound("audit read of missing object " +
                                std::to_string(r) + " at lsn " +
                                std::to_string(rec.lsn));
      }
      read_values.push_back(it->second.value);
    }
    std::vector<ObjectValue> write_values(op.writes.size());
    for (size_t i = 0; i < op.writes.size(); ++i) {
      auto it = expected_.find(op.writes[i]);
      if (it != expected_.end()) write_values[i] = it->second.value;
    }
    LOGLOG_RETURN_IF_ERROR(
        FunctionRegistry::Global().Apply(op, read_values, &write_values));
    for (size_t i = 0; i < op.writes.size(); ++i) {
      Expected& e = expected_[op.writes[i]];
      e.value = std::move(write_values[i]);
      e.last_writer = rec.lsn;
    }
  }
  if (upto > audited_upto_) audited_upto_ = upto;
  return Status::OK();
}

Status DivergenceAuditor::Compare(const StableStore& store,
                                  DivergenceReport* out) const {
  *out = DivergenceReport{};
  out->audited_upto = audited_upto_;
  out->objects_expected = expected_.size();
  auto note = [&](std::string what) {
    if (out->first_divergence.empty()) {
      out->first_divergence = std::move(what);
    }
  };
  for (const auto& [id, exp] : expected_) {
    if (!store.Exists(id)) {
      ++out->missing_objects;
      note("object " + std::to_string(id) + " missing (expected vsi " +
           std::to_string(exp.last_writer) + ")");
      continue;
    }
    StoredObject stored;
    LOGLOG_RETURN_IF_ERROR(store.Read(id, &stored));
    ++out->objects_compared;
    if (stored.value != exp.value) {
      ++out->value_mismatches;
      note("object " + std::to_string(id) + " value mismatch (stable " +
           std::to_string(stored.value.size()) + "B vs expected " +
           std::to_string(exp.value.size()) + "B)");
    }
    if (stored.vsi != exp.last_writer) {
      ++out->vsi_mismatches;
      note("object " + std::to_string(id) + " vsi mismatch (stable " +
           std::to_string(stored.vsi) + " vs expected " +
           std::to_string(exp.last_writer) + ")");
    }
  }
  store.ForEach([&](ObjectId id, const StoredObject&) {
    if (!expected_.contains(id)) {
      ++out->extra_objects;
      note("stable store has unexpected object " + std::to_string(id));
    }
  });
  if (!out->clean()) {
    return Status::Corruption(out->ToString());
  }
  return Status::OK();
}

Status DivergenceAuditor::CompareEngineReads(RecoveryEngine* engine,
                                             DivergenceReport* out) const {
  *out = DivergenceReport{};
  out->audited_upto = audited_upto_;
  out->objects_expected = expected_.size();
  auto note = [&](std::string what) {
    if (out->first_divergence.empty()) {
      out->first_divergence = std::move(what);
    }
  };
  for (const auto& [id, exp] : expected_) {
    ObjectValue got;
    Status st = engine->Read(id, &got);
    if (st.IsNotFound()) {
      ++out->missing_objects;
      note("object " + std::to_string(id) + " unreadable (expected vsi " +
           std::to_string(exp.last_writer) + ")");
      continue;
    }
    LOGLOG_RETURN_IF_ERROR(st);
    ++out->objects_compared;
    if (got != exp.value) {
      ++out->value_mismatches;
      note("object " + std::to_string(id) + " value mismatch (read " +
           std::to_string(got.size()) + "B vs expected " +
           std::to_string(exp.value.size()) + "B)");
    }
    Lsn vsi = engine->cache().CurrentVsi(id);
    if (vsi != exp.last_writer) {
      ++out->vsi_mismatches;
      note("object " + std::to_string(id) + " vsi mismatch (read " +
           std::to_string(vsi) + " vs expected " +
           std::to_string(exp.last_writer) + ")");
    }
  }
  for (const IndexCheckpointEntry& e :
       engine->cache().log_index().Snapshot()) {
    if (!expected_.contains(e.id)) {
      ++out->extra_objects;
      note("log index has unexpected object " + std::to_string(e.id));
    }
  }
  if (!out->clean()) {
    return Status::Corruption(out->ToString());
  }
  return Status::OK();
}

Status RunDivergenceAudit(Slice archive, Lsn upto, const StableStore& store,
                          DivergenceReport* out) {
  DivergenceAuditor auditor;
  LOGLOG_RETURN_IF_ERROR(auditor.Advance(archive, upto));
  return auditor.Compare(store, out);
}

}  // namespace loglog
