#ifndef LOGLOG_SHIP_DIVERGENCE_AUDIT_H_
#define LOGLOG_SHIP_DIVERGENCE_AUDIT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/stable_store.h"

namespace loglog {

class RecoveryEngine;

/// Outcome of one audit round (all counters cumulative over the compared
/// store, not over rounds).
struct DivergenceReport {
  Lsn audited_upto = 0;
  uint64_t objects_expected = 0;
  uint64_t objects_compared = 0;
  uint64_t value_mismatches = 0;
  uint64_t vsi_mismatches = 0;
  uint64_t missing_objects = 0;  // expected but absent from the store
  uint64_t extra_objects = 0;    // in the store but not expected
  /// Human-readable description of the first divergence found, if any.
  std::string first_divergence;

  bool clean() const {
    return value_mismatches == 0 && vsi_mismatches == 0 &&
           missing_objects == 0 && extra_objects == 0;
  }
  std::string ToString() const;
};

/// \brief Replica divergence audit: replays the primary's log history
/// through the sequential reference semantics and diffs a standby's (or
/// promoted node's) stable store against it — values *and* vSIs, both
/// directions.
///
/// The auditor is cumulative: Advance() feeds it archive bytes and an
/// upper LSN bound, applying only operation records in
/// (audited_upto, upto], so one auditor can follow a whole failover chain
/// — each promoted node's archive covers the delta since its seed point,
/// which is exactly what the auditor still needs. (A per-node self-check
/// against its own archive would be vacuous for backup-seeded nodes,
/// whose archives miss the pre-seed history.)
class DivergenceAuditor {
 public:
  /// Applies every kOperation record in `archive` (framed log bytes) with
  /// audited_upto < lsn <= upto to the expected state. Records at or
  /// below the watermark are skipped, so overlapping archives are fine.
  Status Advance(Slice archive, Lsn upto);

  /// Diffs `store` (fully flushed) against the expected state as of the
  /// last Advance. Always fills *out; returns Corruption when the report
  /// is not clean, OK otherwise.
  Status Compare(const StableStore& store, DivergenceReport* out) const;

  /// Log-store counterpart of Compare: the kLogStore backend never
  /// writes the stable store, so the audit diffs the expected state
  /// against the engine's read path (values and vSIs through the log
  /// index) and flags index entries with no expected object as extras.
  /// The engine must be quiesced (recovered + FlushAll) first.
  Status CompareEngineReads(RecoveryEngine* engine,
                            DivergenceReport* out) const;

  Lsn audited_upto() const { return audited_upto_; }

 private:
  struct Expected {
    ObjectValue value;
    /// LSN of the last operation that wrote the object — what its stable
    /// vSI must be once installed.
    Lsn last_writer = 0;
  };

  std::map<ObjectId, Expected> expected_;
  Lsn audited_upto_ = 0;
};

/// One-shot convenience: audit a single node whose archive covers its
/// whole history (NOT valid for backup-seeded standbys — see the class
/// comment).
Status RunDivergenceAudit(Slice archive, Lsn upto, const StableStore& store,
                          DivergenceReport* out);

}  // namespace loglog

#endif  // LOGLOG_SHIP_DIVERGENCE_AUDIT_H_
