#include "ship/log_shipper.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "wal/log_cursor.h"

namespace loglog {

LogShipper::LogShipper(const StableLogDevice* log,
                       ReplicationChannel* channel, LogShipperOptions options)
    : log_(log), channel_(channel), options_(options) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  batches_sent_metric_ = reg.GetCounter(metric::kShipBatchesSent);
  records_shipped_metric_ = reg.GetCounter(metric::kShipRecordsShipped);
  bytes_shipped_metric_ = reg.GetCounter(metric::kShipBytesShipped);
  reconnects_metric_ = reg.GetCounter(metric::kShipReconnects);
  resyncs_metric_ = reg.GetCounter(metric::kShipResyncs);
  primary_durable_gauge_ = reg.GetGauge(metric::kShipPrimaryDurableLsn);
  lag_lsn_gauge_ = reg.GetGauge(metric::kShipLagLsn);
  lag_records_gauge_ = reg.GetGauge(metric::kShipLagRecords);
  lag_bytes_gauge_ = reg.GetGauge(metric::kShipLagBytes);
  batch_records_hist_ = reg.GetHistogram(metric::kShipBatchRecords);
}

void LogShipper::DrainAcks() {
  while (auto ack = channel_->ReceiveAck()) {
    ++stats_.acks_received;
    if (ack->applied_lsn > acked_lsn_) {
      acked_lsn_ = ack->applied_lsn;
      acked_records_ = std::max(acked_records_, ack->applied_records);
      acked_bytes_ = std::max(acked_bytes_, ack->applied_bytes);
    }
    if (ack->applied_lsn > shipped_lsn_) {
      // The standby is ahead of anything we sent: it was seeded from a
      // backup or disk image. Fast-forward — records at or below its
      // watermark never need to travel.
      shipped_lsn_ = ack->applied_lsn;
      counted_lsn_ = std::max(counted_lsn_, shipped_lsn_);
    }
    if (ack->resync) {
      // Gap or corrupt frame at the standby: rewind to its watermark and
      // re-scan from the start of the archive.
      ++stats_.resyncs;
      resyncs_metric_->Inc();
      shipped_lsn_ = acked_lsn_;
      scan_offset_ = 0;
    }
  }
}

Status LogShipper::SendBatch(ShipBatch batch) {
  TraceSpan span("ship.send_batch", "ship");
  span.AddArg("start_lsn", batch.start_lsn);
  span.AddArg("end_lsn", batch.end_lsn);
  span.AddArg("records", static_cast<uint64_t>(batch.records.size()));
  const Lsn end_lsn = batch.end_lsn;
  const size_t count = batch.records.size();
  std::vector<uint8_t> frame;
  EncodeShipFrame(batch, &frame);
  Status st = channel_->Send(std::move(frame));
  if (!st.ok()) {
    // Connection visibly failed: everything past the acked watermark is
    // in doubt. Rewind and re-scan on the next poll.
    ++stats_.reconnects;
    reconnects_metric_->Inc();
    shipped_lsn_ = acked_lsn_;
    scan_offset_ = 0;
    return st;
  }
  shipped_lsn_ = end_lsn;
  ++stats_.batches_sent;
  batches_sent_metric_->Inc();
  batch_records_hist_->Observe(count);
  return Status::OK();
}

void LogShipper::UpdateLagGauges() {
  primary_durable_gauge_->Set(static_cast<int64_t>(durable_lsn_));
  const Lsn acked = std::min(durable_lsn_, acked_lsn_);
  lag_lsn_gauge_->Set(static_cast<int64_t>(durable_lsn_ - acked));
  const uint64_t rec_lag =
      stats_.records_shipped -
      std::min(stats_.records_shipped, acked_records_);
  const uint64_t byte_lag =
      stats_.bytes_shipped - std::min(stats_.bytes_shipped, acked_bytes_);
  lag_records_gauge_->Set(static_cast<int64_t>(rec_lag));
  lag_bytes_gauge_->Set(static_cast<int64_t>(byte_lag));
}

Status LogShipper::Poll() {
  ScopedThreadName thread_name("log-shipper");
  ++stats_.polls;
  DrainAcks();
  Slice archive = log_->ArchiveContents();
  if (scan_offset_ > archive.size()) {
    return Status::FailedPrecondition(
        "log shipper: scan offset past the archive end");
  }
  LogCursor cursor(
      Slice(archive.data() + scan_offset_, archive.size() - scan_offset_),
      scan_offset_);
  ShipBatch batch;
  size_t batch_bytes = 0;
  bool disconnected = false;
  LogRecord rec;
  while (!disconnected && cursor.Next(&rec)) {
    if (rec.lsn > durable_lsn_) durable_lsn_ = rec.lsn;
    if (rec.lsn <= shipped_lsn_) {
      // Already in flight or applied; resume the scan past it next poll.
      scan_offset_ = cursor.valid_end();
      continue;
    }
    const uint64_t encoded = rec.EncodedSize();
    if (rec.lsn > counted_lsn_) {
      counted_lsn_ = rec.lsn;
      ++stats_.records_shipped;
      stats_.bytes_shipped += encoded;
      records_shipped_metric_->Inc();
      bytes_shipped_metric_->Inc(encoded);
    }
    if (batch.records.empty()) batch.start_lsn = rec.lsn;
    batch.end_lsn = rec.lsn;
    batch_bytes += encoded;
    batch.records.push_back(std::move(rec));
    if (batch.records.size() >= options_.max_batch_records ||
        batch_bytes >= options_.max_batch_bytes) {
      const uint64_t sent_end = cursor.valid_end();
      if (SendBatch(std::move(batch)).ok()) {
        scan_offset_ = sent_end;
      } else {
        disconnected = true;  // rewound; retry next poll
      }
      batch = ShipBatch{};
      batch_bytes = 0;
    }
  }
  if (!disconnected && !batch.records.empty()) {
    const uint64_t sent_end = cursor.valid_end();
    if (SendBatch(std::move(batch)).ok()) {
      scan_offset_ = sent_end;
    }
  }
  UpdateLagGauges();
  return Status::OK();
}

}  // namespace loglog
