#ifndef LOGLOG_SHIP_LOG_SHIPPER_H_
#define LOGLOG_SHIP_LOG_SHIPPER_H_

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "ship/replication_channel.h"
#include "ship/ship_frame.h"
#include "storage/simulated_disk.h"

namespace loglog {

struct LogShipperOptions {
  /// Batch flush limits: a batch is sent when either is reached (and any
  /// trailing partial batch is sent at the end of each poll, so a quiesced
  /// primary always drains fully).
  size_t max_batch_records = 64;
  size_t max_batch_bytes = 64 * 1024;
};

struct ShipperStats {
  uint64_t polls = 0;
  uint64_t batches_sent = 0;
  /// First-time shipments only — re-ships after a reconnect or resync do
  /// not count again, so these difference cleanly against the standby's
  /// applied totals for the lag gauges.
  uint64_t records_shipped = 0;
  uint64_t bytes_shipped = 0;
  /// Visible connection failures (channel Send returned an error).
  uint64_t reconnects = 0;
  /// Standby-requested rewinds (gap or corrupt frame NAKs).
  uint64_t resyncs = 0;
  uint64_t acks_received = 0;
};

/// \brief Primary-side half of log shipping: tails the stable log and
/// pushes batches of records past the acked watermark into the channel.
///
/// The shipper reads the device's *archive* (every byte ever stable,
/// immune to checkpoint truncation), so a standby that NAKs back to an
/// old watermark can always be caught up even after the primary truncated
/// its live log. Shipping is watermark-driven and therefore idempotent:
/// the only state that matters is `acked_lsn` (standby-confirmed) and
/// `shipped_lsn` (optimistically sent); any failure just rewinds
/// shipped_lsn to acked_lsn and re-scans. Duplicates this creates are the
/// standby's problem by contract — its applied-LSN watermark drops them.
///
/// Single-threaded by design: call Poll() from the primary's driver loop.
class LogShipper {
 public:
  /// `log` is the primary's stable log device (disk->log()); `channel`
  /// carries frames to one standby. Both must outlive the shipper.
  LogShipper(const StableLogDevice* log, ReplicationChannel* channel,
             LogShipperOptions options = {});

  /// One shipping round: drain acks (advancing or rewinding the
  /// watermark), scan the archive from the current position, send every
  /// complete batch past shipped_lsn, then refresh the lag gauges.
  /// Connection failures are absorbed (the next poll re-ships); only
  /// internal inconsistencies surface as errors.
  Status Poll();

  Lsn shipped_lsn() const { return shipped_lsn_; }
  Lsn acked_lsn() const { return acked_lsn_; }
  /// Highest LSN seen stable on the primary's device (updated by Poll).
  Lsn durable_lsn() const { return durable_lsn_; }
  const ShipperStats& stats() const { return stats_; }

 private:
  void DrainAcks();
  /// Sends one batch; on success advances shipped_lsn_, on failure
  /// rewinds to the acked watermark (the caller keeps polling).
  Status SendBatch(ShipBatch batch);
  void UpdateLagGauges();

  const StableLogDevice* log_;
  ReplicationChannel* channel_;
  LogShipperOptions options_;

  Lsn shipped_lsn_ = 0;  // sent, not necessarily acked
  Lsn acked_lsn_ = 0;    // standby-confirmed applied watermark
  Lsn durable_lsn_ = 0;  // highest LSN stable on the primary
  /// High-water mark of first-time-shipped records (counting aid: rescans
  /// after a rewind must not inflate records/bytes_shipped).
  Lsn counted_lsn_ = 0;
  uint64_t acked_records_ = 0;
  uint64_t acked_bytes_ = 0;
  /// Archive byte offset to resume scanning from (0 after any rewind).
  uint64_t scan_offset_ = 0;

  ShipperStats stats_;

  Counter* batches_sent_metric_;
  Counter* records_shipped_metric_;
  Counter* bytes_shipped_metric_;
  Counter* reconnects_metric_;
  Counter* resyncs_metric_;
  Gauge* primary_durable_gauge_;
  Gauge* lag_lsn_gauge_;
  Gauge* lag_records_gauge_;
  Gauge* lag_bytes_gauge_;
  HistogramMetric* batch_records_hist_;
};

}  // namespace loglog

#endif  // LOGLOG_SHIP_LOG_SHIPPER_H_
