#include "ship/replication_channel.h"

#include <chrono>
#include <thread>
#include <utility>

namespace loglog {

namespace {

/// Upper bound on one injected delivery delay (microseconds). Kept small:
/// the delay site models jitter, not an outage — outages are kLostWrite
/// or error actions on ship.channel.send.
constexpr uint64_t kMaxInjectedDelayUs = 2000;

}  // namespace

Status ReplicationChannel::Send(std::vector<uint8_t> frame) {
  uint64_t sleep_us = sim_latency_us_.load();
  bool corrupted = false;
  bool lost = false;
  bool duplicated = false;
  if (faults_ != nullptr) {
    if (FaultFire fire = faults_->Hit(fault::kShipDelay)) {
      sleep_us += fire.rng % kMaxInjectedDelayUs + 1;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.delay_fires;
      }
    }
    if (FaultFire fire = faults_->Hit(fault::kShipSend)) {
      switch (fire.action) {
        case FaultAction::kLostWrite:
          lost = true;
          break;
        case FaultAction::kBitFlip:
          if (!frame.empty()) {
            FaultInjector::FlipBit(fire.rng, &frame);
            corrupted = true;
          }
          break;
        case FaultAction::kTornWrite:
          if (!frame.empty()) {
            frame.resize(fire.rng % frame.size());
            corrupted = true;
          }
          break;
        default: {
          // Any error action is a visible connection failure.
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.send_errors;
          return Status::IoError("ship.channel.send: connection lost");
        }
      }
    }
    if (faults_->Hit(fault::kShipDuplicate)) duplicated = true;
  }
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frames_sent;
  if (lost) {
    ++stats_.frames_dropped;
    return Status::OK();  // the sender cannot tell
  }
  if (corrupted) ++stats_.frames_corrupted;
  if (duplicated) {
    ++stats_.frames_duplicated;
    frames_.push_back(frame);
    ++stats_.frames_delivered;
  }
  frames_.push_back(std::move(frame));
  ++stats_.frames_delivered;
  return Status::OK();
}

std::optional<std::vector<uint8_t>> ReplicationChannel::Receive() {
  std::lock_guard<std::mutex> lock(mu_);
  if (frames_.empty()) return std::nullopt;
  std::vector<uint8_t> frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

void ReplicationChannel::SendAck(const ShipAck& ack) {
  std::lock_guard<std::mutex> lock(mu_);
  acks_.push_back(ack);
}

std::optional<ShipAck> ReplicationChannel::ReceiveAck() {
  std::lock_guard<std::mutex> lock(mu_);
  if (acks_.empty()) return std::nullopt;
  ShipAck ack = acks_.front();
  acks_.pop_front();
  return ack;
}

size_t ReplicationChannel::pending_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_.size();
}

ChannelStats ReplicationChannel::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace loglog
