#ifndef LOGLOG_SHIP_REPLICATION_CHANNEL_H_
#define LOGLOG_SHIP_REPLICATION_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "ship/ship_frame.h"

namespace loglog {

/// Delivery counters of one channel (all frames, both healthy and hurt).
struct ChannelStats {
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_dropped = 0;     // fault::kShipSend kLostWrite
  uint64_t frames_duplicated = 0;  // fault::kShipDuplicate
  uint64_t frames_corrupted = 0;   // bit flip or truncation in flight
  uint64_t send_errors = 0;        // visible connection failures
  uint64_t delay_fires = 0;        // fault::kShipDelay sleeps
};

/// The simulated replication network: an in-process, in-order frame queue
/// from primary to standby plus a lossless ack queue back. All the ways a
/// real link misbehaves are injected at Send() through the fault sites
/// `ship.channel.send` (fail / drop / damage), `ship.channel.delay`
/// (bounded latency), and `ship.channel.duplicate` (deliver twice) — see
/// fault_injector.h. Acks are never faulted: a lost ack only re-ships
/// already-applied records, which the standby's watermark absorbs anyway,
/// so faulting the data path exercises every interesting code path.
///
/// Thread-safe: the shipper and the applier may run on different threads.
class ReplicationChannel {
 public:
  /// `faults` is typically the primary disk's injector so storm harnesses
  /// arm network faults alongside storage faults; may be null.
  explicit ReplicationChannel(FaultInjector* faults = nullptr)
      : faults_(faults) {}

  /// Primary side. Encodes nothing — takes the already-encoded frame.
  /// IoError when an injected fault makes the connection visibly fail;
  /// the shipper must then rewind to the acked watermark and re-ship.
  /// OK on silent drop / damage / duplication (that is the point: the
  /// sender cannot tell, the standby has to detect it).
  Status Send(std::vector<uint8_t> frame);

  /// Standby side: next in-flight frame, or nullopt when the pipe is
  /// empty.
  std::optional<std::vector<uint8_t>> Receive();

  /// Standby -> primary acknowledgement path (lossless, in order).
  void SendAck(const ShipAck& ack);
  std::optional<ShipAck> ReceiveAck();

  /// Fixed per-frame latency in microseconds applied to every Send in
  /// addition to injected delays (bench knob; default 0).
  void set_sim_latency_us(uint64_t us) { sim_latency_us_.store(us); }

  size_t pending_frames() const;
  ChannelStats stats() const;

 private:
  FaultInjector* faults_;
  std::atomic<uint64_t> sim_latency_us_{0};

  mutable std::mutex mu_;
  std::deque<std::vector<uint8_t>> frames_;
  std::deque<ShipAck> acks_;
  ChannelStats stats_;
};

}  // namespace loglog

#endif  // LOGLOG_SHIP_REPLICATION_CHANNEL_H_
