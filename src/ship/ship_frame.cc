#include "ship/ship_frame.h"

#include <utility>

#include "common/coding.h"
#include "common/crc32.h"

namespace loglog {

namespace {

/// "SHIP", little-endian.
constexpr uint32_t kShipFrameMagic = 0x50494853;

}  // namespace

void EncodeShipFrame(const ShipBatch& batch, std::vector<uint8_t>* dst) {
  std::vector<uint8_t> payload;
  for (const LogRecord& rec : batch.records) {
    FrameRecord(rec, &payload);
  }
  PutFixed32(dst, kShipFrameMagic);
  PutFixed64(dst, batch.start_lsn);
  PutFixed64(dst, batch.end_lsn);
  PutFixed32(dst, static_cast<uint32_t>(batch.records.size()));
  PutFixed32(dst, Crc32c(Slice(payload)));
  PutLengthPrefixed(dst, Slice(payload));
}

Status DecodeShipFrame(Slice frame, ShipBatch* out) {
  *out = ShipBatch{};
  uint32_t magic = 0;
  uint32_t count = 0;
  uint32_t crc = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  LOGLOG_RETURN_IF_ERROR(GetFixed32(&frame, &magic));
  if (magic != kShipFrameMagic) {
    return Status::Corruption("ship frame: bad magic");
  }
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&frame, &start));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&frame, &end));
  LOGLOG_RETURN_IF_ERROR(GetFixed32(&frame, &count));
  LOGLOG_RETURN_IF_ERROR(GetFixed32(&frame, &crc));
  Slice payload;
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&frame, &payload));
  if (!frame.empty()) {
    return Status::Corruption("ship frame: trailing bytes");
  }
  if (Crc32c(payload) != crc) {
    return Status::Corruption("ship frame: payload checksum mismatch");
  }
  out->start_lsn = start;
  out->end_lsn = end;
  out->records.reserve(count);
  while (!payload.empty()) {
    LogRecord rec;
    Status st = ReadFramedRecord(&payload, &rec);
    if (st.IsNotFound()) break;
    LOGLOG_RETURN_IF_ERROR(st);
    out->records.push_back(std::move(rec));
  }
  if (out->records.size() != count) {
    return Status::Corruption("ship frame: record count mismatch");
  }
  if (count > 0 && (out->records.front().lsn != start ||
                    out->records.back().lsn != end)) {
    return Status::Corruption("ship frame: LSN range mismatch");
  }
  return Status::OK();
}

}  // namespace loglog
