#ifndef LOGLOG_SHIP_SHIP_FRAME_H_
#define LOGLOG_SHIP_SHIP_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "wal/log_record.h"

namespace loglog {

/// One shipped batch: a contiguous run of stable log records
/// [start_lsn, end_lsn] in primary log order.
struct ShipBatch {
  Lsn start_lsn = kInvalidLsn;
  Lsn end_lsn = kInvalidLsn;
  std::vector<LogRecord> records;
};

/// Standby -> primary control message. `applied_lsn` is the standby's
/// watermark: every record at or below it has been applied (or durably
/// skipped) there. `resync` asks the shipper to rewind shipping to
/// applied_lsn + 1 — the standby saw an LSN gap (a dropped frame) or a
/// corrupt frame.
struct ShipAck {
  Lsn applied_lsn = 0;
  /// Records / record-payload bytes the standby has accepted first-time.
  /// Both sides count a record exactly once (LSNs are dense and the
  /// watermark filters duplicates), so the shipper can difference these
  /// against its own shipped totals for the in-flight lag gauges.
  uint64_t applied_records = 0;
  uint64_t applied_bytes = 0;
  bool resync = false;
};

/// Wire format of one replication frame:
///
///   fixed32 magic | fixed64 start_lsn | fixed64 end_lsn |
///   fixed32 record_count | fixed32 crc32c(payload) |
///   varint-length-prefixed payload
///
/// where the payload is the concatenation of the records in their device
/// framing (fixed32 length + fixed32 CRC32C + payload each). The outer
/// CRC covers the whole payload so in-flight damage is detected even when
/// every inner record frame happens to stay self-consistent; the header
/// fields are cross-checked against the decoded records, so a flipped bit
/// anywhere in the frame surfaces as Corruption.
void EncodeShipFrame(const ShipBatch& batch, std::vector<uint8_t>* dst);

/// Decodes and verifies one frame. Corruption on any damage (bad magic,
/// checksum mismatch, truncation, record-count or LSN-range mismatch).
Status DecodeShipFrame(Slice frame, ShipBatch* out);

}  // namespace loglog

#endif  // LOGLOG_SHIP_SHIP_FRAME_H_
