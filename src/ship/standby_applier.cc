#include "ship/standby_applier.h"

#include <chrono>
#include <utility>

#include "obs/blackbox.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "recovery/parallel_redo.h"
#include "recovery/recovery_driver.h"
#include "recovery/redo_test.h"
#include "storage/disk_image.h"

namespace loglog {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

StandbyApplier::StandbyApplier(ReplicationChannel* channel,
                               StandbyOptions options)
    : channel_(channel), options_(options) {
  disk_ = std::make_unique<SimulatedDisk>();
  log_ = std::make_unique<LogManager>(&disk_->log());
  // Native atomic installs without install logging: the standby appends
  // nothing of its own, so its log stays exactly the replicated primary
  // prefix (see the class comment).
  cm_ = std::make_unique<CacheManager>(disk_.get(), log_.get(),
                                       GraphKind::kRefined,
                                       FlushPolicy::kNativeAtomic,
                                       /*log_installs=*/false);
  MetricsRegistry& reg = MetricsRegistry::Global();
  records_applied_metric_ = reg.GetCounter(metric::kShipStandbyRecordsApplied);
  batches_duplicate_metric_ = reg.GetCounter(metric::kShipBatchesDuplicate);
  batches_gap_metric_ = reg.GetCounter(metric::kShipBatchesGap);
  frames_corrupt_metric_ = reg.GetCounter(metric::kShipFramesCorrupt);
  promotions_metric_ = reg.GetCounter(metric::kShipPromotions);
  applied_lsn_gauge_ = reg.GetGauge(metric::kShipStandbyAppliedLsn);
  apply_latency_hist_ = reg.GetHistogram(metric::kShipApplyLatencyUs);
  promote_rto_hist_ = reg.GetHistogram(metric::kShipPromoteRtoUs);
  Ack(/*resync=*/false);  // handshake: tell the shipper where we start
}

void StandbyApplier::Ack(bool resync) {
  ShipAck ack;
  ack.applied_lsn = applied_lsn_;
  ack.applied_records = applied_records_;
  ack.applied_bytes = applied_bytes_;
  ack.resync = resync;
  channel_->SendAck(ack);
  ++stats_.acks_sent;
  applied_lsn_gauge_->Set(static_cast<int64_t>(applied_lsn_));
}

Status StandbyApplier::SeedFromBackup(const BackupImage& image,
                                      Lsn installed_upto) {
  if (seeded_ || applied_lsn_ != 0) {
    return Status::FailedPrecondition(
        "standby: seeding must precede any applied frame");
  }
  for (const auto& [id, entry] : image.entries) {
    LOGLOG_RETURN_IF_ERROR(
        disk_->store().Write(id, Slice(entry.value), entry.vsi));
  }
  // Every operation below the image's scan start is installed in the
  // image; the delta stream begins right after. A caller-asserted
  // installed_upto (quiesced backup) may push the watermark further.
  applied_lsn_ = image.ScanStart() - 1;
  if (installed_upto != kInvalidLsn && installed_upto > applied_lsn_) {
    applied_lsn_ = installed_upto;
  }
  log_->SetNextLsn(applied_lsn_ + 1);
  seeded_ = true;
  Ack(/*resync=*/false);
  return Status::OK();
}

Status StandbyApplier::SeedFromDiskImage(Slice image) {
  if (seeded_ || applied_lsn_ != 0) {
    return Status::FailedPrecondition(
        "standby: seeding must precede any applied frame");
  }
  // Replace the blank node wholesale with the imaged one, then run
  // ordinary recovery over its log so the cache-side state (write graph,
  // vSIs) is rebuilt exactly as a restarted primary would have it.
  cm_.reset();
  log_.reset();
  disk_ = std::make_unique<SimulatedDisk>();
  LOGLOG_RETURN_IF_ERROR(LoadDiskImage(image, disk_.get()));
  log_ = std::make_unique<LogManager>(&disk_->log());
  cm_ = std::make_unique<CacheManager>(disk_.get(), log_.get(),
                                       GraphKind::kRefined,
                                       FlushPolicy::kNativeAtomic,
                                       /*log_installs=*/false);
  RecoveryDriver driver(disk_.get(), log_.get(), cm_.get(),
                        RedoTestKind::kRsiGeneralized);
  RecoveryStats rs;
  LOGLOG_RETURN_IF_ERROR(driver.Run(&rs));
  applied_lsn_ = log_->last_assigned_lsn();
  seeded_ = true;
  Ack(/*resync=*/false);
  return Status::OK();
}

Status StandbyApplier::ApplyOps(std::vector<LogRecord> run) {
  if (run.empty()) return Status::OK();
  if (options_.redo_threads > 1 &&
      run.size() >= options_.parallel_apply_threshold) {
    // Burst catch-up through the partitioned worker pool. The workers'
    // component views read the *stable store only*, so everything cached
    // must be installed first.
    LOGLOG_RETURN_IF_ERROR(cm_->FlushAll());
    ParallelRedoResult pr;
    LOGLOG_RETURN_IF_ERROR(ParallelRedo(disk_.get(), cm_.get(),
                                        RedoTestKind::kAlways,
                                        empty_analysis_, run,
                                        options_.redo_threads, &pr));
    stats_.ops_redone += pr.ops_redone;
    stats_.ops_skipped += pr.ops_skipped_installed + pr.ops_skipped_unexposed;
    stats_.ops_voided += pr.ops_voided;
    ++stats_.parallel_bursts;
  } else {
    for (const LogRecord& rec : run) {
      RedoDecision decision = TestRedo(RedoTestKind::kAlways, rec.op, rec.lsn,
                                       empty_analysis_, *cm_);
      if (decision != RedoDecision::kRedo) {
        ++stats_.ops_skipped;
        continue;
      }
      bool voided = false;
      uint64_t value_bytes = 0;
      LOGLOG_RETURN_IF_ERROR(RedoApplyOperation(cm_.get(), rec.op, rec.lsn,
                                                &voided, &value_bytes));
      if (voided) {
        ++stats_.ops_voided;
      } else {
        ++stats_.ops_redone;
      }
    }
  }
  applied_lsn_ = run.back().lsn;
  return Status::OK();
}

Status StandbyApplier::HonorCheckpoint(const LogRecord& rec) {
  // The primary checkpointed at rec.lsn and truncated its live log there;
  // mirror it — install everything so nothing below the truncation point
  // is still needed, then drop the prefix.
  LOGLOG_RETURN_IF_ERROR(cm_->FlushAll());
  LOGLOG_RETURN_IF_ERROR(log_->ForceAll());
  log_->TruncateBefore(rec.lsn);
  ++stats_.checkpoints_honored;
  return Status::OK();
}

Status StandbyApplier::ApplyBatch(ShipBatch batch) {
  std::vector<LogRecord> run;
  for (LogRecord& rec : batch.records) {
    if (rec.lsn <= applied_lsn_) continue;  // overlap with the watermark
    ++applied_records_;
    applied_bytes_ += rec.EncodedSize();
    ++stats_.records_applied;
    records_applied_metric_->Inc();
    if (rec.type == RecordType::kOperation ||
        rec.type == RecordType::kCompensation) {
      // Keep the primary LSN; the run replays it below. Compensation
      // records replay like any operation — the standby repeats the
      // primary's history straight through rollbacks, so compensated
      // regions converge byte-identically.
      log_->AppendReplicated(rec);
      run.push_back(std::move(rec));
      continue;
    }
    // Control record: finish the run before it, then honor it. Control
    // records are processed, not appended — the standby's own FlushAll /
    // checkpoint bookkeeping regenerates whatever it needs. Transaction
    // markers are the exception: they carry no data effect but must land
    // on the standby's log, or a promoted standby's recovery could not
    // re-derive the primary's transaction table (and would either miss a
    // loser or roll back a committed transaction).
    LOGLOG_RETURN_IF_ERROR(ApplyOps(std::move(run)));
    run.clear();
    if (rec.type == RecordType::kCheckpoint) {
      LOGLOG_RETURN_IF_ERROR(HonorCheckpoint(rec));
    } else if (rec.type == RecordType::kTxnBegin ||
               rec.type == RecordType::kTxnCommit ||
               rec.type == RecordType::kTxnAbort) {
      log_->AppendReplicated(rec);
    }
    applied_lsn_ = rec.lsn;
    log_->SetNextLsn(applied_lsn_ + 1);
  }
  LOGLOG_RETURN_IF_ERROR(ApplyOps(std::move(run)));
  return log_->ForceAll();
}

Status StandbyApplier::Pump() {
  ScopedThreadName thread_name("standby-applier");
  if (promoted_) {
    return Status::FailedPrecondition("standby: already promoted");
  }
  while (auto frame = channel_->Receive()) {
    ShipBatch batch;
    Status decode = DecodeShipFrame(Slice(*frame), &batch);
    if (!decode.ok()) {
      ++stats_.frames_corrupt;
      frames_corrupt_metric_->Inc();
      HealthRegistry::Global().Set(health::kReplicationChannel,
                                   HealthState::kDegraded,
                                   "corrupt ship frame; resyncing");
      Ack(/*resync=*/true);
      continue;
    }
    if (batch.end_lsn <= applied_lsn_) {
      ++stats_.batches_duplicate;
      batches_duplicate_metric_->Inc();
      Ack(/*resync=*/false);  // refresh the shipper's watermark
      continue;
    }
    if (batch.start_lsn > applied_lsn_ + 1) {
      // A frame ahead of this one was dropped: NAK back to the watermark.
      ++stats_.batches_gap;
      batches_gap_metric_->Inc();
      HealthRegistry::Global().Set(health::kReplicationChannel,
                                   HealthState::kDegraded,
                                   "batch gap; NAK to watermark");
      Ack(/*resync=*/true);
      continue;
    }
    const auto apply_start = std::chrono::steady_clock::now();
    TraceSpan span("ship.apply_batch", "ship");
    span.AddArg("start_lsn", batch.start_lsn);
    span.AddArg("end_lsn", batch.end_lsn);
    LOGLOG_RETURN_IF_ERROR(ApplyBatch(std::move(batch)));
    ++stats_.batches_applied;
    apply_latency_hist_->Observe(ElapsedUs(apply_start));
    HealthRegistry::Global().Set(health::kReplicationChannel,
                                 HealthState::kOk);
    Ack(/*resync=*/false);
  }
  return Status::OK();
}

Status StandbyApplier::Promote(const EngineOptions& engine_options,
                               PromotionResult* out) {
  if (promoted_) {
    return Status::FailedPrecondition("standby: already promoted");
  }
  const auto t0 = std::chrono::steady_clock::now();
  TraceSpan span("ship.promote", "ship");
  // Finish whatever the channel still holds, then install the whole
  // replicated prefix: promotion must serve exactly the applied state,
  // and flushing here (native atomic, nothing logged) makes the stable
  // store's vSIs match the primary's for the divergence audit.
  LOGLOG_RETURN_IF_ERROR(Pump());
  LOGLOG_RETURN_IF_ERROR(cm_->FlushAll());
  LOGLOG_RETURN_IF_ERROR(log_->ForceAll());
  out->applied_lsn = applied_lsn_;
  span.AddArg("applied_lsn", applied_lsn_);
  cm_.reset();
  log_.reset();
  out->disk = std::move(disk_);
  out->engine =
      std::make_unique<RecoveryEngine>(engine_options, out->disk.get());
  LOGLOG_RETURN_IF_ERROR(out->engine->Recover(&out->recovery));
  // The standby's device ends at the last *operation* record, but the
  // watermark may sit further along (trailing control records are
  // processed without being appended). Pin the promoted node's LSN
  // counter past the watermark so it never re-issues a primary LSN.
  if (out->engine->log().last_assigned_lsn() < applied_lsn_) {
    out->engine->log().SetNextLsn(applied_lsn_ + 1);
  }
  out->rto_us = ElapsedUs(t0);
  span.AddArg("rto_us", out->rto_us);
  promote_rto_hist_->Observe(out->rto_us);
  promotions_metric_->Inc();
  promoted_ = true;
  FlightRecorder::Global().Record(FlightEventType::kPromote, applied_lsn_,
                                  out->rto_us);
  BlackBoxAutoDump("promote");
  return Status::OK();
}

}  // namespace loglog
