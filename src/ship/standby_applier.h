#ifndef LOGLOG_SHIP_STANDBY_APPLIER_H_
#define LOGLOG_SHIP_STANDBY_APPLIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "backup/backup_manager.h"
#include "cache/cache_manager.h"
#include "common/status.h"
#include "common/types.h"
#include "engine/options.h"
#include "engine/recovery_engine.h"
#include "obs/metrics.h"
#include "recovery/analysis.h"
#include "ship/replication_channel.h"
#include "ship/ship_frame.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"

namespace loglog {

struct StandbyOptions {
  /// > 1 replays large contiguous runs of shipped operations through the
  /// partitioned parallel-REDO pool (burst catch-up); <= 1 stays serial.
  int redo_threads = 1;
  /// Minimum run length (consecutive shipped operations with no control
  /// record between them, applied in one Pump) that justifies spinning up
  /// the worker pool.
  size_t parallel_apply_threshold = 128;
};

struct StandbyStats {
  uint64_t batches_applied = 0;
  /// Frames whose whole LSN range was at or below the watermark
  /// (duplicated delivery, or a re-ship after a lost ack).
  uint64_t batches_duplicate = 0;
  /// Frames starting past watermark + 1 (a dropped frame ahead of them);
  /// each one triggers a resync NAK.
  uint64_t batches_gap = 0;
  /// Frames rejected by the frame checksum / framing validation.
  uint64_t frames_corrupt = 0;
  uint64_t records_applied = 0;
  uint64_t ops_redone = 0;
  uint64_t ops_skipped = 0;
  uint64_t ops_voided = 0;
  uint64_t checkpoints_honored = 0;
  uint64_t parallel_bursts = 0;
  uint64_t acks_sent = 0;
};

/// What Promote() hands back: the standby's disk and a live engine on it.
struct PromotionResult {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<RecoveryEngine> engine;
  RecoveryStats recovery;
  /// The replicated prefix the promoted node serves: everything the
  /// primary shipped and this standby applied before the switch.
  Lsn applied_lsn = 0;
  /// Wall-clock promotion latency (drain + flush + recover) — the RTO.
  uint64_t rto_us = 0;
};

/// \brief Standby-side half of log shipping: continuous REDO on a
/// replica.
///
/// The applier owns a full private node — disk, log manager, cache
/// manager — and keeps it a byte-identical shadow of the primary by
/// replaying every shipped operation through the same "expanded REDO"
/// trial execution recovery uses (Section 5), continuously instead of
/// after a crash. Shipped records keep their primary LSNs
/// (LogManager::AppendReplicated), so every state identifier (rSI, vSI,
/// lSI) on the standby equals the primary's and the vSI-based REDO tests
/// keep working unchanged across catch-up, duplicates, and failover.
///
/// The applied-LSN watermark is the whole protocol: frames at or below it
/// are duplicates (dropped, re-acked), frames starting past watermark + 1
/// imply a lost frame (NAK with resync), everything else applies in
/// order. The standby never generates log records of its own (native
/// atomic installs, no install logging), so its log is exactly the
/// replicated primary prefix — which is what makes promotion just "finish
/// applying, flush, run ordinary recovery, serve".
class StandbyApplier {
 public:
  /// `channel` must outlive the applier. Sends the initial handshake ack
  /// (watermark 0) so the shipper learns the standby is listening.
  explicit StandbyApplier(ReplicationChannel* channel,
                          StandbyOptions options = {});

  /// Cold-start seeding, before any frame is applied.
  /// From a (possibly fuzzy) backup image: installs the entries into the
  /// stable store and sets the watermark so the primary streams exactly
  /// the delta the image may be missing. By default the watermark is the
  /// conservative fuzzy-backup bound (image.ScanStart() - 1 — replay
  /// everything not manifestly installed); `installed_upto`, when given,
  /// asserts the image fully reflects every record at or below it (true
  /// for a backup taken at a flushed quiesce point) and raises the
  /// watermark accordingly. That matters when the primary is itself a
  /// promoted standby: its archive only reaches back to its own seed
  /// point, so a watermark below that would demand records nobody has.
  Status SeedFromBackup(const BackupImage& image,
                        Lsn installed_upto = kInvalidLsn);
  /// From a full LLIMG001 disk image (media-recovery artifact): loads the
  /// image, runs ordinary recovery over its log, and resumes streaming
  /// from the recovered LSN.
  Status SeedFromDiskImage(Slice image);

  /// Drains the channel: decode, validate, apply, ack. Call from the
  /// standby's driver loop; cheap when nothing is pending.
  Status Pump();

  /// Failover: drain what the channel still holds, finish redo, flush the
  /// replicated prefix into the stable store, then bring up a fresh
  /// engine on this node's disk through ordinary crash recovery. The
  /// applier is spent afterwards (promoted() == true); the returned
  /// engine serves the workload.
  Status Promote(const EngineOptions& engine_options, PromotionResult* out);

  Lsn applied_lsn() const { return applied_lsn_; }
  bool promoted() const { return promoted_; }
  const StandbyStats& stats() const { return stats_; }
  SimulatedDisk* disk() { return disk_.get(); }
  const SimulatedDisk* disk() const { return disk_.get(); }
  CacheManager* cache() { return cm_.get(); }

 private:
  Status ApplyBatch(ShipBatch batch);
  /// Applies one contiguous run of operation records (all past the
  /// watermark, ascending), serial or through the parallel-REDO pool.
  Status ApplyOps(std::vector<LogRecord> run);
  /// Mirrors a primary checkpoint: install everything, then truncate the
  /// standby's log the same way the primary truncated its own.
  Status HonorCheckpoint(const LogRecord& rec);
  void Ack(bool resync);

  ReplicationChannel* channel_;
  StandbyOptions options_;

  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<CacheManager> cm_;

  /// The continuous-redo path replays unconditionally modulo the vSI
  /// check; there is no analysis pass to consult, so the tests run
  /// against an empty result.
  AnalysisResult empty_analysis_;

  Lsn applied_lsn_ = 0;
  uint64_t applied_records_ = 0;
  uint64_t applied_bytes_ = 0;
  bool seeded_ = false;
  bool promoted_ = false;

  StandbyStats stats_;

  Counter* records_applied_metric_;
  Counter* batches_duplicate_metric_;
  Counter* batches_gap_metric_;
  Counter* frames_corrupt_metric_;
  Counter* promotions_metric_;
  Gauge* applied_lsn_gauge_;
  HistogramMetric* apply_latency_hist_;
  HistogramMetric* promote_rto_hist_;
};

}  // namespace loglog

#endif  // LOGLOG_SHIP_STANDBY_APPLIER_H_
