#include "sim/abort_storm.h"

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/txn_manager.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "ship/divergence_audit.h"
#include "ship/log_shipper.h"
#include "sim/storm_observability.h"
#include "ship/replication_channel.h"
#include "ship/standby_applier.h"
#include "sim/crash_harness.h"
#include "sim/reference_executor.h"
#include "storage/disk_image.h"
#include "wal/log_record.h"

namespace loglog {

std::string AbortStormStats::ToString() const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "iters=%llu txns=%llu(committed=%llu rolled_back=%llu "
      "abandoned=%llu) aborts(injected=%llu conflict=%llu explicit=%llu) "
      "clrs=%llu rollback_crashes=%llu torn_commits=%llu "
      "crashes=%llu(torn=%llu) recoveries=%llu recovery_crashes=%llu "
      "losers=%llu loser_clrs=%llu comp_redone=%llu "
      "verify=%llu oracle=%llu standby_audits=%llu",
      static_cast<unsigned long long>(iterations),
      static_cast<unsigned long long>(txns_begun),
      static_cast<unsigned long long>(txns_committed),
      static_cast<unsigned long long>(txns_rolled_back),
      static_cast<unsigned long long>(txns_abandoned),
      static_cast<unsigned long long>(injected_aborts),
      static_cast<unsigned long long>(conflict_aborts),
      static_cast<unsigned long long>(explicit_aborts),
      static_cast<unsigned long long>(clrs_logged),
      static_cast<unsigned long long>(rollback_crashes),
      static_cast<unsigned long long>(torn_commits),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(torn_crashes),
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(recovery_crashes),
      static_cast<unsigned long long>(loser_txns),
      static_cast<unsigned long long>(loser_clrs),
      static_cast<unsigned long long>(compensations_redone),
      static_cast<unsigned long long>(verify_passes),
      static_cast<unsigned long long>(oracle_passes),
      static_cast<unsigned long long>(standby_audits));
  return buf;
}

Status VerifyCommittedOracle(const SimulatedDisk& disk) {
  // One archive pass: baseline operations schedule at their own LSN,
  // transactional forward operations are held back and schedule at their
  // transaction's commit LSN (or never, for losers). Compensation records
  // and transaction markers are skipped — the oracle is the history in
  // which losers simply do not happen.
  Slice archive = disk.log().ArchiveContents();
  std::map<uint64_t, std::vector<OperationDesc>> txn_forward;
  std::map<Lsn, std::vector<OperationDesc>> schedule;
  while (true) {
    LogRecord rec;
    Status st = ReadFramedRecord(&archive, &rec);
    if (st.IsNotFound()) break;
    LOGLOG_RETURN_IF_ERROR(st);
    switch (rec.type) {
      case RecordType::kOperation:
        if (rec.txn_id == 0) {
          schedule[rec.lsn].push_back(rec.op);
        } else {
          txn_forward[rec.txn_id].push_back(rec.op);
        }
        break;
      case RecordType::kTxnCommit: {
        // Commit is decided by the stable record alone: a torn commit
        // whose record happened to survive the tear *is* a commit
        // (recovery sees it the same way), one whose record was lost is
        // a loser. Commit LSNs are unique, so the slot is fresh.
        auto it = txn_forward.find(rec.txn_id);
        if (it != txn_forward.end()) {
          schedule[rec.lsn] = std::move(it->second);
          txn_forward.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  ReferenceExecutor oracle;
  for (auto& [lsn, ops] : schedule) {
    for (const OperationDesc& op : ops) {
      LOGLOG_RETURN_IF_ERROR(oracle.Apply(op));
    }
  }
  return CompareWithReference(oracle, disk.store());
}

namespace {

/// A transaction slot in the interleaved burst.
struct Slot {
  TxnId id = 0;
  int remaining = 0;
  bool explicit_abort = false;
};

bool Roll(Random* rng, int percent) {
  return static_cast<int>(rng->Uniform(100)) < percent;
}

/// Arms this burst's transaction faults. Counters reset on Arm, so fire
/// deltas are read per-burst against zero.
void ArmTxnFaults(FaultInjector* inj, Random* rng,
                  const AbortStormOptions& options) {
  if (Roll(rng, options.abort_inject_percent)) {
    // The action is irrelevant — TxnManager only asks whether the site
    // fired — but it must not be kCrashNow, which would double as a
    // crash signal elsewhere.
    inj->Arm(fault::kTxnAbortInject,
             FaultSpec::Probabilistic(FaultAction::kTransientIoError,
                                      static_cast<uint32_t>(
                                          options.abort_percent),
                                      rng->Next(), /*max_fires=*/3));
  }
  if (Roll(rng, options.rollback_crash_percent)) {
    // A depth beyond this burst's compensation count simply fires during
    // a later rollback — often the recovery loser pass, which is exactly
    // the crash-during-recovery-rollback case.
    inj->Arm(fault::kTxnRollbackCrash,
             FaultSpec::CrashOnHit(1 + rng->Uniform(6)));
  }
  if (Roll(rng, options.commit_torn_percent)) {
    inj->Arm(fault::kTxnCommitTorn,
             FaultSpec::CrashOnHit(1 + rng->Uniform(2)));
  }
  if (Roll(rng, options.io_fault_percent)) {
    inj->Arm(fault::kStoreWrite,
             FaultSpec::TransientTimes(1 + rng->Uniform(2)));
  }
}

/// One burst of interleaved transactions. Sets *crashed when an injected
/// crash wedged the engine (the caller must Crash() and recover).
/// `rb_fires_base` is the rollback-crash fire count snapshotted after this
/// burst's faults were armed: counters survive a Disarm, so only a delta
/// against the snapshot distinguishes a clean abort from a crashed one.
Status RunBurst(CrashHarness* harness, MixedWorkload* workload, Random* rng,
                const AbortStormOptions& options, uint64_t rb_fires_base,
                AbortStormStats* stats, bool* crashed) {
  *crashed = false;
  FaultInjector& inj = harness->disk().fault_injector();
  TxnManager tm(&harness->engine());

  std::vector<Slot> slots;
  uint64_t n_txns = rng->Range(static_cast<uint64_t>(options.min_txns),
                               static_cast<uint64_t>(options.max_txns));
  uint64_t budget = 0;
  for (uint64_t i = 0; i < n_txns; ++i) {
    Slot s;
    LOGLOG_RETURN_IF_ERROR(tm.Begin(&s.id));
    s.remaining =
        static_cast<int>(rng->Range(static_cast<uint64_t>(options.min_txn_ops),
                                    static_cast<uint64_t>(options.max_txn_ops)));
    s.explicit_abort = Roll(rng, options.explicit_abort_percent);
    budget += static_cast<uint64_t>(s.remaining) + 1;
    slots.push_back(s);
  }

  // Sometimes walk away mid-burst: whatever is still open crashes as an
  // in-flight loser for the recovery pass to roll back.
  uint64_t abandon_after = rng->OneIn(4) ? rng->Uniform(budget + 1) : ~0ull;

  uint64_t steps = 0;
  while (!slots.empty() && !*crashed) {
    if (steps++ >= abandon_after) {
      stats->txns_abandoned += slots.size();
      break;
    }
    size_t k = static_cast<size_t>(rng->Uniform(slots.size()));
    Slot& s = slots[k];
    Status st;
    bool finishing = s.remaining == 0;
    if (finishing) {
      st = s.explicit_abort ? tm.Rollback(s.id) : tm.Commit(s.id);
      if (st.ok() && s.explicit_abort) ++stats->explicit_aborts;
    } else {
      --s.remaining;
      st = tm.Execute(s.id, workload->Next());
    }
    if (st.ok() || st.IsNotFound()) {
      // NotFound is a clean workload artifact (a read of a temp that an
      // aborted transaction un-created); the transaction stays open.
      if (finishing && st.ok()) slots.erase(slots.begin() + k);
      continue;
    }
    if (st.IsAborted()) {
      if (finishing ||
          inj.site_stats(fault::kTxnRollbackCrash).fires > rb_fires_base) {
        // Rollback crashed between CLRs, or the commit force window tore:
        // the engine is wedged exactly as a real crash would leave it.
        *crashed = true;
        break;
      }
      // Clean injected or conflict abort: the transaction was rolled
      // back and is finished.
      slots.erase(slots.begin() + k);
      continue;
    }
    if (st.IsIoError() || st.IsCorruption()) {
      // Retries exhausted (or damaged data met a checksum). Go down; the
      // recovery loser pass finishes whatever this left half-done.
      *crashed = true;
      break;
    }
    return st;  // anything else is a bug in the storm or the engine
  }

  const TxnManagerStats& ts = tm.stats();
  stats->txns_begun += ts.begun;
  stats->txns_committed += ts.committed;
  stats->txns_rolled_back += ts.aborted;
  stats->injected_aborts += ts.injected_aborts;
  stats->conflict_aborts += ts.conflict_aborts;
  stats->clrs_logged += tm.undo_stats().clrs_logged;
  return Status::OK();
  // ~TxnManager leaves any still-open transaction on the log untouched —
  // the crash that follows turns it into a loser.
}

/// Ships a transactional tail to a freshly seeded standby, promotes it
/// with one transaction still in flight, and audits the promoted node.
Status RunStandbyAuditRound(CrashHarness* harness, MixedWorkload* workload,
                            Random* rng, const EngineOptions& engine_options,
                            AbortStormStats* stats) {
  RecoveryEngine& eng = harness->engine();
  LOGLOG_RETURN_IF_ERROR(eng.FlushAll());
  LOGLOG_RETURN_IF_ERROR(eng.log().ForceAll());
  std::vector<uint8_t> image;
  SaveDiskImage(harness->disk(), &image);

  ReplicationChannel channel;  // quiet link: this round is about txns
  StandbyApplier standby(&channel);
  LOGLOG_RETURN_IF_ERROR(standby.SeedFromDiskImage(Slice(image)));
  LogShipper shipper(&harness->disk().log(), &channel);

  TxnManager tm(&eng);
  uint64_t tail_txns = 2 + rng->Uniform(3);
  for (uint64_t i = 0; i < tail_txns; ++i) {
    TxnId id;
    LOGLOG_RETURN_IF_ERROR(tm.Begin(&id));
    uint64_t ops = 1 + rng->Uniform(4);
    for (uint64_t j = 0; j < ops; ++j) {
      Status st = tm.Execute(id, workload->Next());
      if (!st.ok() && !st.IsNotFound()) return st;
    }
    if (rng->OneIn(3)) {
      LOGLOG_RETURN_IF_ERROR(tm.Rollback(id));
      ++stats->explicit_aborts;
    } else {
      LOGLOG_RETURN_IF_ERROR(tm.Commit(id));
    }
  }
  // One transaction stays in flight across the failover: the promoted
  // standby's own recovery must roll it back as a loser.
  TxnId open_id;
  LOGLOG_RETURN_IF_ERROR(tm.Begin(&open_id));
  for (uint64_t j = 0; j < 2; ++j) {
    Status st = tm.Execute(open_id, workload->Next());
    if (!st.ok() && !st.IsNotFound()) return st;
  }
  LOGLOG_RETURN_IF_ERROR(eng.log().ForceAll());

  for (int round = 0; round < 64; ++round) {
    LOGLOG_RETURN_IF_ERROR(shipper.Poll());
    LOGLOG_RETURN_IF_ERROR(standby.Pump());
    if (standby.applied_lsn() >= shipper.durable_lsn() &&
        channel.pending_frames() == 0) {
      break;
    }
  }
  if (standby.applied_lsn() < shipper.durable_lsn()) {
    return Status::FailedPrecondition("abort storm: standby never caught up");
  }

  PromotionResult promo;
  LOGLOG_RETURN_IF_ERROR(standby.Promote(engine_options, &promo));
  stats->loser_txns += promo.recovery.loser_txns;
  stats->loser_clrs += promo.recovery.loser_clrs;
  // Promote's internal flush runs before its recovery, so the loser
  // rollback's effects are still cached; install them for the audits.
  LOGLOG_RETURN_IF_ERROR(promo.engine->FlushAll());
  LOGLOG_RETURN_IF_ERROR(promo.engine->log().ForceAll());

  DivergenceAuditor auditor;
  LOGLOG_RETURN_IF_ERROR(
      auditor.Advance(promo.disk->log().ArchiveContents(),
                      promo.engine->log().last_stable_lsn()));
  DivergenceReport report;
  LOGLOG_RETURN_IF_ERROR(auditor.Compare(promo.disk->store(), &report));
  LOGLOG_RETURN_IF_ERROR(VerifyCommittedOracle(*promo.disk));

  // The primary keeps running: resolve its open transaction here, under
  // its own locks, so later committed writes can never interleave with a
  // deferred loser rollback of the same objects.
  LOGLOG_RETURN_IF_ERROR(tm.Rollback(open_id));
  ++stats->explicit_aborts;
  stats->txns_begun += tm.stats().begun;
  stats->txns_committed += tm.stats().committed;
  stats->txns_rolled_back += tm.stats().aborted;
  stats->clrs_logged += tm.undo_stats().clrs_logged;
  ++stats->standby_audits;
  return Status::OK();
}

Status RunAbortStormInner(const AbortStormOptions& options,
                          AbortStormStats* stats, StormObservability* obs) {
  *stats = AbortStormStats{};
  ScopedThreadName thread_name("abort-storm-driver");
  EngineOptions engine_options = options.engine;
  // See AbortStormOptions::engine: identity-write installs log cache
  // values that may embed uncommitted effects, which repeat-history
  // replay handles but the committed-only oracle must never see.
  engine_options.flush_policy = FlushPolicy::kNativeAtomic;

  CrashHarness harness(engine_options, options.seed);
  Random rng(options.seed * 0x9e3779b97f4a7c15 + 2);
  MixedWorkloadOptions wl_opts = options.workload;
  wl_opts.seed = options.seed;
  MixedWorkload workload(wl_opts);
  FaultInjector& inj = harness.disk().fault_injector();

  for (const OperationDesc& op : workload.SetupOps()) {
    LOGLOG_RETURN_IF_ERROR(harness.Execute(op));
  }

  for (int iter = 0; iter < options.iterations; ++iter) {
    ++stats->iterations;
    // Quiesced maintenance before any fault is armed.
    if (options.checkpoint_every > 0 &&
        iter % options.checkpoint_every == options.checkpoint_every - 1) {
      LOGLOG_RETURN_IF_ERROR(harness.engine().Checkpoint());
    }
    if (options.standby_audit_every > 0 &&
        iter % options.standby_audit_every ==
            options.standby_audit_every - 1) {
      LOGLOG_RETURN_IF_ERROR(RunStandbyAuditRound(
          &harness, &workload, &rng, engine_options, stats));
    }

    if (options.faults) {
      ArmTxnFaults(&inj, &rng, options);
    }
    // Arm resets a site's counters but Disarm keeps them, so snapshot
    // *after* arming: armed sites restart at zero, unarmed sites keep a
    // stale total that must difference out to zero.
    uint64_t rb_base = inj.site_stats(fault::kTxnRollbackCrash).fires;
    uint64_t ct_base = inj.site_stats(fault::kTxnCommitTorn).fires;

    bool crashed = false;
    LOGLOG_RETURN_IF_ERROR(
        RunBurst(&harness, &workload, &rng, options, rb_base, stats,
                 &crashed));

    // Crash after every burst — wedged or not — so every iteration ends
    // in a full recovery with whatever losers the burst left open.
    bool tear = rng.OneIn(3);
    harness.Crash(tear);
    ++stats->crashes;
    if (tear) ++stats->torn_crashes;

    // Recovery under fire: an armed txn.rollback.crash whose depth was
    // never reached at runtime fires here, inside the loser pass, and
    // the re-attempt must resume compensation without doubling it.
    constexpr int kMaxRecoveryAttempts = 8;
    Status rec_status;
    RecoveryStats rec_stats;
    for (int attempt = 0; attempt < kMaxRecoveryAttempts; ++attempt) {
      if (attempt >= kMaxRecoveryAttempts / 2) inj.DisarmAll();
      rec_stats = RecoveryStats{};
      rec_status = harness.Recover(&rec_stats);
      if (rec_status.ok()) break;
      ++stats->recovery_crashes;
      harness.Crash(/*tear_tail=*/false);
      ++stats->crashes;
    }
    if (!rec_status.ok()) return rec_status;
    ++stats->recoveries;
    stats->loser_txns += rec_stats.loser_txns;
    stats->loser_clrs += rec_stats.loser_clrs;
    stats->compensations_redone += rec_stats.compensations_redone;
    stats->rollback_crashes +=
        inj.site_stats(fault::kTxnRollbackCrash).fires - rb_base;
    stats->torn_commits +=
        inj.site_stats(fault::kTxnCommitTorn).fires - ct_base;

    // Verify with a quiet device. First the recoverability invariant
    // (repeat-history replay, compensation included), then the stronger
    // transactional one: the state equals a serial run of only the
    // committed transactions.
    inj.DisarmAll();
    LOGLOG_RETURN_IF_ERROR(harness.VerifyAgainstReference());
    ++stats->verify_passes;
    LOGLOG_RETURN_IF_ERROR(VerifyCommittedOracle(harness.disk()));
    ++stats->oracle_passes;
    LOGLOG_RETURN_IF_ERROR(harness.engine().cache().CheckInvariants());
    if (options.assert_health) {
      LOGLOG_RETURN_IF_ERROR(obs->CheckHealth("abort", stats->iterations));
    }
    if (!options.telemetry_jsonl.empty()) {
      LOGLOG_RETURN_IF_ERROR(obs->SampleIteration());
    }
  }
  return Status::OK();
}

}  // namespace

Status RunAbortStorm(const AbortStormOptions& options,
                     AbortStormStats* stats) {
  StormObservability obs(options.telemetry_jsonl, options.blackbox_dir);
  return obs.Finish(RunAbortStormInner(options, stats, &obs), "abort",
                    options.blackbox_on_failure);
}

}  // namespace loglog
