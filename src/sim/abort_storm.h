#ifndef LOGLOG_SIM_ABORT_STORM_H_
#define LOGLOG_SIM_ABORT_STORM_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/options.h"
#include "sim/workload.h"
#include "storage/simulated_disk.h"

namespace loglog {

/// Configuration of one abort-storm run.
struct AbortStormOptions {
  /// The storm forces flush_policy = kNativeAtomic regardless of what is
  /// set here: identity-write installation logs the *cache* value of an
  /// object, which may embed effects of a transaction that later aborts.
  /// That is correct for repeat-history recovery (the CLR undoes it), but
  /// it would poison the committed-only serial oracle, whose whole point
  /// is replaying no loser effect at all.
  EngineOptions engine;
  MixedWorkloadOptions workload;
  uint64_t seed = 42;
  /// Burst/crash/recover/verify iterations.
  int iterations = 25;
  /// Interleaved transactions per burst, drawn from [min_txns, max_txns].
  int min_txns = 2;
  int max_txns = 6;
  /// Operations per transaction, drawn from [min_txn_ops, max_txn_ops].
  int min_txn_ops = 1;
  int max_txn_ops = 6;
  /// Chance (percent) that txn.abort.inject is armed for a burst; when
  /// armed it fires per-operation with `abort_percent` probability,
  /// at most three times per burst.
  int abort_inject_percent = 60;
  int abort_percent = 20;
  /// Chance (percent) that a finished transaction rolls back voluntarily
  /// instead of committing.
  int explicit_abort_percent = 25;
  /// Chance (percent) that txn.rollback.crash is armed: the burst (or the
  /// recovery loser pass after it) crashes between two compensation
  /// records, at a random depth.
  int rollback_crash_percent = 35;
  /// Chance (percent) that txn.commit.torn is armed: a commit crashes
  /// after appending but before forcing its record.
  int commit_torn_percent = 20;
  /// Chance (percent) of a transient stable-store write error per burst,
  /// exercising the tightened rollback retry budget.
  int io_fault_percent = 25;
  /// Explicit checkpoint (with log truncation) every N iterations (0 =
  /// never).
  int checkpoint_every = 5;
  /// Every N iterations, seed a standby from a disk image, ship a
  /// transactional tail (commits, rollbacks, and one transaction left in
  /// flight), promote it, and run the divergence audit plus the committed
  /// oracle on the promoted node (0 = never).
  int standby_audit_every = 8;
  /// Arm randomized faults each iteration. Off: aborts and crashes only
  /// come from explicit rollbacks and the end-of-burst crash.
  bool faults = true;
  /// Append one telemetry JSONL record per iteration ("" = off).
  std::string telemetry_jsonl;
  /// Directory for automatic black-box dumps at crash points ("" = off).
  std::string blackbox_dir;
  /// On any storm failure, write a black box here ("" = off).
  std::string blackbox_on_failure;
  /// Fail the storm if any subsystem still reports failing after a
  /// verified iteration.
  bool assert_health = true;
};

/// What happened across a storm (all counters cumulative).
struct AbortStormStats {
  uint64_t iterations = 0;
  uint64_t txns_begun = 0;
  uint64_t txns_committed = 0;
  /// Rollbacks completed at runtime (injected + conflict + explicit).
  uint64_t txns_rolled_back = 0;
  uint64_t injected_aborts = 0;
  uint64_t conflict_aborts = 0;
  uint64_t explicit_aborts = 0;
  /// Transactions walked away from mid-burst; recovery rolls them back
  /// as losers.
  uint64_t txns_abandoned = 0;
  uint64_t clrs_logged = 0;
  /// txn.rollback.crash fires (runtime rollbacks and recovery loser
  /// passes alike).
  uint64_t rollback_crashes = 0;
  /// txn.commit.torn fires (commit record appended, never forced).
  uint64_t torn_commits = 0;
  uint64_t crashes = 0;
  uint64_t torn_crashes = 0;
  uint64_t recoveries = 0;
  /// Recovery attempts that themselves died to an injected fault and
  /// were re-crashed (crash during the loser rollback included).
  uint64_t recovery_crashes = 0;
  uint64_t loser_txns = 0;
  uint64_t loser_clrs = 0;
  uint64_t compensations_redone = 0;
  /// Full-history verifications (repeat-history replay of the archive,
  /// compensation records included, against the stable store).
  uint64_t verify_passes = 0;
  /// Committed-only serial-oracle verifications: the stable store must
  /// equal a replay of just the baseline plus committed transactions, in
  /// commit order — losers leave no trace.
  uint64_t oracle_passes = 0;
  uint64_t standby_audits = 0;

  std::string ToString() const;
};

/// \brief Seeded abort storm: bursts of randomly interleaved transactions
/// under injected aborts, crashes at every rollback step and torn
/// commits; a crash (randomly torn) after every burst; recovery —
/// re-crashed if a fault kills it mid-loser-rollback — and, after every
/// recovery, both the repeat-history verification and the committed-only
/// serial oracle. Periodically the whole transactional state is shipped
/// to a standby which is promoted mid-transaction and audited for
/// byte-identical convergence. Any divergence fails the run immediately.
Status RunAbortStorm(const AbortStormOptions& options,
                     AbortStormStats* stats);

/// The committed-only serial oracle, standalone: replays the disk's log
/// archive keeping only non-transactional operations (at their own LSN)
/// and the forward operations of committed transactions (applied at their
/// commit LSN — commit order is a serialization order under strict 2PL),
/// then compares against the stable store. Loser operations and
/// compensation records are both excluded: a fully compensated
/// transaction must be invisible. Call on a quiesced, recovered disk.
Status VerifyCommittedOracle(const SimulatedDisk& disk);

}  // namespace loglog

#endif  // LOGLOG_SIM_ABORT_STORM_H_
