#include "sim/crash_harness.h"

#include "obs/blackbox.h"
#include "obs/flight_recorder.h"

namespace loglog {

CrashHarness::CrashHarness(const EngineOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  disk_ = std::make_unique<SimulatedDisk>();
  engine_ = std::make_unique<RecoveryEngine>(options_, disk_.get());
  InstallWalAuditor();
}

void CrashHarness::InstallWalAuditor() {
  // Every object write must be covered by a stable log prefix (WAL).
  LogManager* log = &engine_->log();
  disk_->store().set_write_validator([log](ObjectId id, Lsn vsi) {
    if (vsi > log->last_stable_lsn()) {
      return Status::Corruption(
          "WAL violation: object " + std::to_string(id) + " flushed at vSI " +
          std::to_string(vsi) + " but stable log ends at " +
          std::to_string(log->last_stable_lsn()));
    }
    return Status::OK();
  });
}

void CrashHarness::Crash(bool tear_tail) {
  // A torn write can only affect a force that was still in flight — an
  // acknowledged force may already have object flushes depending on it
  // (WAL). Model "crash during the final force": push the volatile
  // buffer to the device as that in-flight force, then tear within it.
  // If the force itself fails (an armed fault), nothing new reached the
  // device, so there is no in-flight force to tear — tearing anyway
  // would damage previously acknowledged bytes and break WAL.
  bool can_tear =
      tear_tail && engine_->log().volatile_record_count() > 0;
  if (can_tear) {
    can_tear = engine_->log().ForceAll().ok();
  }
  FlightRecorder::Global().Record(FlightEventType::kCrash, 0,
                                  can_tear ? 1 : 0);
  BlackBoxAutoDump(can_tear ? "crash-torn" : "crash");
  disk_->store().set_write_validator(nullptr);  // engine is going away
  engine_.reset();  // cache, write graph and volatile log buffer die
  if (can_tear) {
    uint64_t last = disk_->log().last_append_size();
    if (last > 0) {
      disk_->log().TearTail(rng_.Range(1, last));
    }
  }
  engine_ = std::make_unique<RecoveryEngine>(options_, disk_.get());
  InstallWalAuditor();
  if (has_backup_) engine_->set_repair_backup(&backup_);
}

Status CrashHarness::Recover(RecoveryStats* stats) {
  return engine_->Recover(stats);
}

Status CrashHarness::VerifyAgainstReference() {
  LOGLOG_RETURN_IF_ERROR(engine_->FlushAll());
  LOGLOG_RETURN_IF_ERROR(disk_->store().audit_status());
  ReferenceExecutor ref;
  LOGLOG_RETURN_IF_ERROR(ref.ReplayLog(disk_->log().ArchiveContents()));
  if (options_.backend == StorageBackend::kLogStore) {
    // The store never sees object writes under the log-as-database
    // backend, so equivalence is asserted through the read path: every
    // reference object must come back from the log/cold tier with the
    // reference value, and the index must not claim anything beyond the
    // reference's live set. (Compaction's W_IP rewrites are identity
    // operations, so the reference replay is unaffected by them.)
    for (const auto& [id, want] : ref.objects()) {
      ObjectValue got;
      Status st = engine_->Read(id, &got);
      if (!st.ok()) {
        return Status::Corruption("logstore read of object " +
                                  std::to_string(id) +
                                  " failed: " + st.ToString());
      }
      if (got != want) {
        return Status::Corruption("logstore object " + std::to_string(id) +
                                  " diverges from reference");
      }
    }
    for (const IndexCheckpointEntry& e :
         engine_->cache().log_index().Snapshot()) {
      if (!ref.Exists(e.id)) {
        return Status::Corruption("log index holds deleted/unknown object " +
                                  std::to_string(e.id));
      }
    }
    return Status::OK();
  }
  return CompareWithReference(ref, disk_->store());
}

Status CrashHarness::TakeBackup() {
  BackupManager bm(disk_.get(), /*repair_order=*/true);
  LOGLOG_RETURN_IF_ERROR(bm.Begin());
  while (!bm.done()) {
    LOGLOG_RETURN_IF_ERROR(bm.Step(16));
  }
  backup_ = bm.image();
  has_backup_ = true;
  engine_->set_repair_backup(&backup_);
  return Status::OK();
}

}  // namespace loglog
