#ifndef LOGLOG_SIM_CRASH_HARNESS_H_
#define LOGLOG_SIM_CRASH_HARNESS_H_

#include <memory>

#include "backup/backup_manager.h"
#include "common/random.h"
#include "common/status.h"
#include "engine/options.h"
#include "engine/recovery_engine.h"
#include "sim/reference_executor.h"
#include "storage/simulated_disk.h"

namespace loglog {

/// \brief Crash-injection harness around a RecoveryEngine.
///
/// Owns the disk and the engine; Crash() destroys the engine (all
/// volatile state dies, optionally tearing the final log force) and
/// builds a fresh one over the surviving disk. VerifyRecovered() recovers,
/// flushes, and compares the stable store against the reference replay of
/// the stable history — the recoverability invariant of Theorem 2.
class CrashHarness {
 public:
  explicit CrashHarness(const EngineOptions& options, uint64_t seed = 42);

  RecoveryEngine& engine() { return *engine_; }
  SimulatedDisk& disk() { return *disk_; }
  Random& rng() { return rng_; }

  /// Executes one operation through the engine.
  Status Execute(const OperationDesc& op) { return engine_->Execute(op); }

  /// Simulates a crash: drops all volatile state. With `tear_tail`, also
  /// tears a random number of bytes off the final log force (a torn
  /// write), bounded so earlier forces stay intact.
  void Crash(bool tear_tail = false);

  /// Runs recovery on the post-crash engine.
  Status Recover(RecoveryStats* stats = nullptr);

  /// FlushAll + compare stable store against the reference replay of the
  /// stable log archive. Call after Recover() (or any quiesced point).
  Status VerifyAgainstReference();

  /// Takes an order-repaired fuzzy backup of the current stable state and
  /// installs it as the engine's media-repair image (it survives crashes;
  /// every rebuilt engine gets the pointer again). Later calls replace
  /// the image.
  Status TakeBackup();
  bool has_backup() const { return has_backup_; }

 private:
  /// Hooks the stable store with a WAL auditor bound to the current
  /// engine's log (re-installed after every crash).
  void InstallWalAuditor();

  EngineOptions options_;
  std::unique_ptr<SimulatedDisk> disk_;
  std::unique_ptr<RecoveryEngine> engine_;
  Random rng_;
  BackupImage backup_;
  bool has_backup_ = false;
};

}  // namespace loglog

#endif  // LOGLOG_SIM_CRASH_HARNESS_H_
