#include "sim/crash_storm.h"

#include <cstdio>

#include "common/random.h"
#include "fault/fault_injector.h"
#include "obs/blackbox.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/telemetry.h"
#include "sim/crash_harness.h"
#include "sim/storm_observability.h"

namespace loglog {

std::string CrashStormStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "iters=%llu crashes=%llu(torn=%llu) recoveries=%llu "
      "recovery_crashes=%llu faults_armed=%llu faults_fired=%llu "
      "fault_aborts=%llu io_errors=%llu corrupt_detected=%llu "
      "media_repairs=%llu verify_passes=%llu",
      static_cast<unsigned long long>(iterations),
      static_cast<unsigned long long>(crashes),
      static_cast<unsigned long long>(torn_crashes),
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(recovery_crashes),
      static_cast<unsigned long long>(faults_armed),
      static_cast<unsigned long long>(faults_fired),
      static_cast<unsigned long long>(fault_aborts),
      static_cast<unsigned long long>(io_errors),
      static_cast<unsigned long long>(corrupt_detected),
      static_cast<unsigned long long>(media_repairs),
      static_cast<unsigned long long>(verify_passes));
  return buf;
}

namespace {

/// Arms one randomly chosen fault from the survivable catalogue. Under
/// the log-store backend the catalogue grows a cold-tier read fault —
/// the only read path dual-write never exercises.
void ArmRandomFault(FaultInjector* inj, Random* rng, bool logstore) {
  uint64_t pick = rng->Uniform(logstore ? 11 : 10);
  switch (pick) {
    case 0:
      inj->Arm(fault::kCmAfterWalForce,
               FaultSpec::CrashOnHit(1 + rng->Uniform(3)));
      break;
    case 1:
      inj->Arm(fault::kCmAfterFlushTxnCommit, FaultSpec::CrashOnce());
      break;
    case 2:
      inj->Arm(fault::kCmAfterFirstFlushTxnWrite, FaultSpec::CrashOnce());
      break;
    case 3:
      inj->Arm(fault::kLogAppend, FaultSpec::TornOnce(rng->Next()));
      break;
    case 4:
      inj->Arm(fault::kLogForce,
               FaultSpec::TransientTimes(1 + rng->Uniform(2)));
      break;
    case 5:
      inj->Arm(fault::kStoreWrite,
               FaultSpec::TransientTimes(1 + rng->Uniform(2)));
      break;
    case 6:
      // Silent media rot under a stale checksum: the recovery sweep must
      // catch it and repair from backup + archive replay.
      inj->Arm(fault::kStoreWrite, FaultSpec::BitFlipOnce(rng->Next()));
      break;
    case 7:
      inj->Arm(fault::kStoreRead,
               FaultSpec::TransientTimes(1 + rng->Uniform(2)));
      break;
    case 8:
      inj->Arm(fault::kStoreWriteAtomic,
               rng->OneIn(2)
                   ? FaultSpec::TransientTimes(1)
                   : FaultSpec::BitFlipOnce(rng->Next()));
      break;
    case 9:
      if (rng->OneIn(2)) {
        // A permanent device error: retries exhaust, the workload sees a
        // clean IoError, the storm disarms ("replaces the device") and
        // crash-recovers.
        inj->Arm(fault::kStoreWrite, FaultSpec::Permanent());
      } else {
        // In-flight read corruption: the checksum turns it into a clean
        // Corruption status (the media itself is intact).
        inj->Arm(fault::kStoreRead, FaultSpec::BitFlipOnce(rng->Next()));
      }
      break;
    case 10:
      // Cold-tier segment read stalls: log-index reads below the
      // truncation point must retry through them.
      inj->Arm(fault::kColdTierRead,
               FaultSpec::TransientTimes(1 + rng->Uniform(2)));
      break;
  }
}

}  // namespace

namespace {

Status RunCrashStormInner(const CrashStormOptions& options,
                          CrashStormStats* stats, StormObservability* obs) {
  *stats = CrashStormStats{};
  ScopedThreadName thread_name("crash-storm-driver");
  CrashHarness harness(options.engine, options.seed);
  Random rng(options.seed * 0x9e3779b97f4a7c15 + 1);
  MixedWorkloadOptions wl_opts = options.workload;
  wl_opts.seed = options.seed;
  MixedWorkload workload(wl_opts);
  FaultInjector& inj = harness.disk().fault_injector();

  for (const OperationDesc& op : workload.SetupOps()) {
    LOGLOG_RETURN_IF_ERROR(harness.Execute(op));
  }

  for (int iter = 0; iter < options.iterations; ++iter) {
    ++stats->iterations;
    // Maintenance runs clean (faults from the previous iteration were
    // disarmed before verification).
    if (options.checkpoint_every > 0 &&
        iter % options.checkpoint_every == options.checkpoint_every - 1) {
      LOGLOG_RETURN_IF_ERROR(harness.engine().Checkpoint());
    }
    if (options.backup_every > 0 &&
        iter % options.backup_every == options.backup_every - 1) {
      LOGLOG_RETURN_IF_ERROR(harness.TakeBackup());
    }

    uint64_t fires_before = inj.total_fires();
    if (options.faults) {
      uint64_t n = rng.Uniform(3);  // 0-2 faults this burst
      for (uint64_t i = 0; i < n; ++i) {
        ArmRandomFault(&inj, &rng,
                       options.engine.backend == StorageBackend::kLogStore);
      }
      stats->faults_armed += n;
    }

    // Burst of workload; an injected fault may cut it short.
    uint64_t ops =
        rng.Range(static_cast<uint64_t>(options.min_ops),
                  static_cast<uint64_t>(options.max_ops));
    bool crashed = false;
    for (uint64_t i = 0; i < ops; ++i) {
      Status st = harness.Execute(workload.Next());
      if (st.ok() || st.IsNotFound()) continue;
      if (st.IsAborted()) {
        // A crash fault fired: the engine is wedged exactly as a real
        // crash would leave the disk. Go down now.
        ++stats->fault_aborts;
        crashed = true;
        break;
      }
      if (st.IsIoError()) {
        // A permanent device error surfaced cleanly. The operator
        // "replaces the device" (disarms) and restarts the system.
        ++stats->io_errors;
        inj.DisarmAll();
        crashed = true;
        break;
      }
      if (st.IsCorruption()) {
        // A checksum-verified read met damaged data. Restart: recovery's
        // sweep decides whether the media itself needs repair.
        crashed = true;
        break;
      }
      return st;  // anything else is a bug in the storm or the engine
    }
    (void)crashed;

    bool tear = rng.OneIn(3);
    harness.Crash(tear);
    ++stats->crashes;
    if (tear) ++stats->torn_crashes;

    // Recovery, itself under fire: a fault during recovery crashes the
    // system again; recovery must be idempotent across such re-crashes.
    // After a few attempts the storm disarms everything (a fault that
    // fires on every attempt would otherwise starve recovery forever).
    constexpr int kMaxRecoveryAttempts = 8;
    Status rec_status;
    RecoveryStats rec_stats;
    for (int attempt = 0; attempt < kMaxRecoveryAttempts; ++attempt) {
      if (attempt >= kMaxRecoveryAttempts / 2) inj.DisarmAll();
      rec_stats = RecoveryStats{};
      rec_status = harness.Recover(&rec_stats);
      if (rec_status.ok()) break;
      ++stats->recovery_crashes;
      harness.Crash(/*tear_tail=*/false);
      ++stats->crashes;
    }
    if (!rec_status.ok()) return rec_status;
    ++stats->recoveries;
    if (rec_stats.corrupt_objects > 0) ++stats->corrupt_detected;
    stats->media_repairs += rec_stats.media_repairs;

    // Verify with a quiet device: armed faults would fail the flush the
    // verification needs, and the reference comparison reads raw state.
    inj.DisarmAll();
    stats->faults_fired += inj.total_fires() - fires_before;
    LOGLOG_RETURN_IF_ERROR(harness.VerifyAgainstReference());
    LOGLOG_RETURN_IF_ERROR(harness.engine().cache().CheckInvariants());
    ++stats->verify_passes;
    if (options.assert_health) {
      LOGLOG_RETURN_IF_ERROR(obs->CheckHealth("crash", stats->iterations));
    }
    if (!options.telemetry_jsonl.empty()) {
      LOGLOG_RETURN_IF_ERROR(obs->SampleIteration());
    }
  }
  return Status::OK();
}

}  // namespace

Status RunCrashStorm(const CrashStormOptions& options,
                     CrashStormStats* stats) {
  StormObservability obs(options.telemetry_jsonl, options.blackbox_dir);
  return obs.Finish(RunCrashStormInner(options, stats, &obs), "crash",
                    options.blackbox_on_failure);
}

}  // namespace loglog
