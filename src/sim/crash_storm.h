#ifndef LOGLOG_SIM_CRASH_STORM_H_
#define LOGLOG_SIM_CRASH_STORM_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/options.h"
#include "sim/workload.h"

namespace loglog {

/// Configuration of one crash-storm run.
struct CrashStormOptions {
  EngineOptions engine;
  MixedWorkloadOptions workload;
  uint64_t seed = 42;
  /// Crash/recover iterations. Each runs a burst of operations, possibly
  /// under injected faults, then crashes and verifies full recovery.
  int iterations = 50;
  /// Operations per burst, drawn uniformly from [min_ops, max_ops].
  int min_ops = 8;
  int max_ops = 48;
  /// Take an order-repaired fuzzy backup every N iterations; it becomes
  /// the media-repair image for checksum failures (0 = never — repair
  /// then replays the archive from the beginning of history).
  int backup_every = 10;
  /// Explicit checkpoint (with log truncation) every N iterations (0 =
  /// only the engine's automatic checkpoints, if configured).
  int checkpoint_every = 4;
  /// Arm randomized faults each iteration. Off: pure crash storm.
  bool faults = true;
  /// Append one telemetry JSONL record per iteration ("" = off).
  std::string telemetry_jsonl;
  /// Directory for automatic black-box dumps at crash points and fault
  /// fires ("" = off).
  std::string blackbox_dir;
  /// On any storm failure, write a black box here ("" = off) so the
  /// failing iteration's last events and metrics survive the process.
  std::string blackbox_on_failure;
  /// Fail the storm if any subsystem still reports failing after a
  /// verified iteration.
  bool assert_health = true;
};

/// What happened across a storm (all counters cumulative).
struct CrashStormStats {
  uint64_t iterations = 0;
  uint64_t crashes = 0;
  uint64_t torn_crashes = 0;
  uint64_t recoveries = 0;
  /// Recovery attempts that themselves died to an injected fault and were
  /// re-crashed (the crash-during-recovery path).
  uint64_t recovery_crashes = 0;
  uint64_t faults_armed = 0;
  uint64_t faults_fired = 0;
  /// Operations aborted mid-burst by a crash fault.
  uint64_t fault_aborts = 0;
  /// I/O errors that surfaced to the workload (post-retry permanents).
  uint64_t io_errors = 0;
  /// Recoveries whose checksum sweep found corrupt stable objects.
  uint64_t corrupt_detected = 0;
  /// Stable objects rewritten by media repair.
  uint64_t media_repairs = 0;
  uint64_t verify_passes = 0;

  std::string ToString() const;
};

/// \brief Seeded crash-storm soak: bursts of mixed workload under
/// randomized injected faults, a crash (randomly torn) after every burst,
/// recovery — re-crashed if a fault kills it — and a full
/// verify-against-reference plus invariant audit after every single
/// recovery. Any divergence fails the run immediately.
///
/// The armed faults are drawn from the survivable catalogue only: crash
/// windows in the flush paths, torn/failed log forces, transient store
/// errors, bit-flips (caught by checksums, repaired from backup + log)
/// and rare permanent write errors. Deliberately excluded are lost
/// writes of multi-write operations and torn multi-object installs —
/// those violate the model's atomicity assumptions and are exercised by
/// targeted tests instead (see EXPERIMENTS.md).
Status RunCrashStorm(const CrashStormOptions& options,
                     CrashStormStats* stats);

}  // namespace loglog

#endif  // LOGLOG_SIM_CRASH_STORM_H_
