#include "sim/failover_storm.h"

#include <memory>
#include <string>
#include <utility>

#include "backup/backup_manager.h"
#include "common/random.h"
#include "engine/recovery_engine.h"
#include "obs/flight_recorder.h"
#include "ship/divergence_audit.h"
#include "ship/log_shipper.h"
#include "ship/replication_channel.h"
#include "sim/storm_observability.h"
#include "storage/simulated_disk.h"

namespace loglog {

namespace {

/// Arms one randomized fault at the replication-channel sites. Every
/// entry is survivable by protocol design: visible errors and silent
/// drops resync from the acked watermark, damage is caught by the frame
/// CRC, duplicates die on the applied-LSN watermark, delays just add lag.
void ArmRandomChannelFault(FaultInjector* inj, Random* rng,
                           FailoverStormStats* stats) {
  const uint64_t fault_seed = rng->Next();
  switch (rng->Next() % 6) {
    case 0:  // connection visibly fails once mid-burst
      inj->Arm(fault::kShipSend, FaultSpec::TransientOnce());
      break;
    case 1:  // one frame silently lost -> gap NAK
      inj->Arm(fault::kShipSend, FaultSpec::LostOnce());
      break;
    case 2:  // one frame bit-flipped in flight -> CRC reject + NAK
      inj->Arm(fault::kShipSend, FaultSpec::BitFlipOnce(fault_seed));
      break;
    case 3:  // one frame truncated in flight -> CRC reject + NAK
      inj->Arm(fault::kShipSend, FaultSpec::TornOnce(fault_seed));
      break;
    case 4:  // a few duplicated deliveries (action is ignored at this
             // site; only the firing schedule matters)
      inj->Arm(fault::kShipDuplicate,
               FaultSpec::Probabilistic(FaultAction::kLostWrite, 25,
                                        fault_seed, /*max_fires=*/4));
      break;
    case 5:  // jittery link
      inj->Arm(fault::kShipDelay,
               FaultSpec::Probabilistic(FaultAction::kLostWrite, 20,
                                        fault_seed, /*max_fires=*/8));
      break;
  }
  ++stats->channel_faults_armed;
}

void DisarmChannelFaults(FaultInjector* inj) {
  inj->Disarm(fault::kShipSend);
  inj->Disarm(fault::kShipDelay);
  inj->Disarm(fault::kShipDuplicate);
}

}  // namespace

std::string FailoverStormStats::ToString() const {
  return "failover storm: rounds=" + std::to_string(rounds) +
         " ops=" + std::to_string(ops_executed) +
         " promotions=" + std::to_string(promotions) +
         " reseeds=" + std::to_string(reseeds) +
         " faults_armed=" + std::to_string(channel_faults_armed) +
         " resyncs=" + std::to_string(resyncs) +
         " reconnects=" + std::to_string(reconnects) +
         " dup_batches=" + std::to_string(duplicate_batches) +
         " gap_batches=" + std::to_string(gap_batches) +
         " corrupt_frames=" + std::to_string(corrupt_frames) +
         " checkpoints=" + std::to_string(checkpoints) +
         " parallel_bursts=" + std::to_string(parallel_bursts) +
         " audits_passed=" + std::to_string(audits_passed) +
         " rto_us_total=" + std::to_string(rto_us_total) +
         " rto_us_max=" + std::to_string(rto_us_max);
}

namespace {

Status RunFailoverStormInner(const FailoverStormOptions& options,
                             FailoverStormStats* stats,
                             StormObservability* obs) {
  *stats = FailoverStormStats{};
  ScopedThreadName thread_name("failover-storm-driver");
  Random rng(options.seed);
  MixedWorkload workload(options.workload);

  auto disk = std::make_unique<SimulatedDisk>();
  auto engine =
      std::make_unique<RecoveryEngine>(options.engine, disk.get());
  for (const OperationDesc& op : workload.SetupOps()) {
    LOGLOG_RETURN_IF_ERROR(engine->Execute(op));
    ++stats->ops_executed;
  }

  // One cumulative auditor follows the whole failover chain: each round
  // advances it over the dying primary's archive up to the promoted
  // watermark, so the expected state always covers exactly the history
  // the promoted node claims to serve.
  DivergenceAuditor auditor;

  for (int round = 0; round < options.rounds; ++round) {
    // Quiesce the primary and seed a cold standby from a backup of it.
    // The flush makes the backup exact through last_stable_lsn, which is
    // the watermark a promoted primary's short archive requires (see
    // StandbyApplier::SeedFromBackup).
    LOGLOG_RETURN_IF_ERROR(engine->FlushAll());
    LOGLOG_RETURN_IF_ERROR(engine->log().ForceAll());
    const Lsn seed_upto = engine->log().last_stable_lsn();
    BackupManager backup(disk.get(), /*repair_order=*/true);
    LOGLOG_RETURN_IF_ERROR(backup.Begin());
    while (!backup.done()) {
      LOGLOG_RETURN_IF_ERROR(backup.Step(64));
    }

    ReplicationChannel channel(&disk->fault_injector());
    StandbyApplier standby(&channel, options.standby);
    LOGLOG_RETURN_IF_ERROR(standby.SeedFromBackup(backup.image(), seed_upto));
    ++stats->reseeds;
    LogShipper shipper(&disk->log(), &channel);

    if (options.channel_faults) {
      ArmRandomChannelFault(&disk->fault_injector(), &rng, stats);
    }

    if (options.checkpoint_every > 0 &&
        round % options.checkpoint_every == options.checkpoint_every - 1) {
      LOGLOG_RETURN_IF_ERROR(engine->Checkpoint());
      ++stats->checkpoints;
    }

    // Faulted streaming burst.
    const int burst =
        options.min_ops +
        static_cast<int>(rng.Next() %
                         static_cast<uint64_t>(options.max_ops -
                                               options.min_ops + 1));
    for (int i = 0; i < burst; ++i) {
      Status st = engine->Execute(workload.Next());
      if (!st.ok() && !st.IsNotFound()) return st;
      ++stats->ops_executed;
      if (options.poll_every > 0 && i % options.poll_every == 0) {
        // Shipping moves stable bytes only: force the WAL at each poll so
        // the armed channel faults actually see traffic mid-burst.
        LOGLOG_RETURN_IF_ERROR(engine->log().ForceAll());
        LOGLOG_RETURN_IF_ERROR(shipper.Poll());
        LOGLOG_RETURN_IF_ERROR(standby.Pump());
      }
    }

    // Quiesce: heal the link, make everything stable, drain to zero lag.
    DisarmChannelFaults(&disk->fault_injector());
    LOGLOG_RETURN_IF_ERROR(engine->log().ForceAll());
    bool drained = false;
    for (int i = 0; i < options.drain_limit; ++i) {
      LOGLOG_RETURN_IF_ERROR(shipper.Poll());
      LOGLOG_RETURN_IF_ERROR(standby.Pump());
      if (standby.applied_lsn() >= shipper.durable_lsn() &&
          channel.pending_frames() == 0) {
        drained = true;
        break;
      }
    }
    if (!drained) {
      return Status::FailedPrecondition(
          "failover storm round " + std::to_string(round) +
          ": standby failed to drain (applied " +
          std::to_string(standby.applied_lsn()) + " vs durable " +
          std::to_string(shipper.durable_lsn()) + ")");
    }
    stats->resyncs += shipper.stats().resyncs;
    stats->reconnects += shipper.stats().reconnects;
    stats->duplicate_batches += standby.stats().batches_duplicate;
    stats->gap_batches += standby.stats().batches_gap;
    stats->corrupt_frames += standby.stats().frames_corrupt;
    stats->parallel_bursts += standby.stats().parallel_bursts;

    // The primary dies; the standby takes over.
    engine.reset();
    PromotionResult promo;
    LOGLOG_RETURN_IF_ERROR(standby.Promote(options.engine, &promo));
    ++stats->promotions;
    stats->rto_us_total += promo.rto_us;
    if (promo.rto_us > stats->rto_us_max) stats->rto_us_max = promo.rto_us;

    // Divergence audit before the promoted node executes anything new:
    // its stable state and vSIs must equal the sequential replay of the
    // dead primary's history through the promoted watermark.
    LOGLOG_RETURN_IF_ERROR(
        auditor.Advance(disk->log().ArchiveContents(), promo.applied_lsn));
    DivergenceReport report;
    LOGLOG_RETURN_IF_ERROR(auditor.Compare(promo.disk->store(), &report));
    ++stats->audits_passed;

    // The promoted node is the next round's primary; the dead primary's
    // disk is dropped here.
    disk = std::move(promo.disk);
    engine = std::move(promo.engine);
    ++stats->rounds;
    if (options.assert_health) {
      LOGLOG_RETURN_IF_ERROR(obs->CheckHealth("failover", stats->rounds));
    }
    if (!options.telemetry_jsonl.empty()) {
      LOGLOG_RETURN_IF_ERROR(obs->SampleIteration());
    }
  }
  return Status::OK();
}

}  // namespace

Status RunFailoverStorm(const FailoverStormOptions& options,
                        FailoverStormStats* stats) {
  StormObservability obs(options.telemetry_jsonl, options.blackbox_dir);
  return obs.Finish(RunFailoverStormInner(options, stats, &obs), "failover",
                    options.blackbox_on_failure);
}

}  // namespace loglog
