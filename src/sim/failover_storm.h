#ifndef LOGLOG_SIM_FAILOVER_STORM_H_
#define LOGLOG_SIM_FAILOVER_STORM_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "engine/options.h"
#include "ship/standby_applier.h"
#include "sim/workload.h"

namespace loglog {

/// Configuration of one failover-storm run.
struct FailoverStormOptions {
  EngineOptions engine;
  MixedWorkloadOptions workload;
  StandbyOptions standby;
  uint64_t seed = 42;
  /// Failover rounds. Each seeds a fresh standby from a backup of the
  /// current primary, streams a faulted workload burst, crashes the
  /// primary, promotes the standby, audits it, and carries on with the
  /// promoted node as the next primary.
  int rounds = 4;
  /// Operations per burst, drawn uniformly from [min_ops, max_ops].
  int min_ops = 48;
  int max_ops = 160;
  /// Ship/pump the replication pipeline every N executed operations.
  int poll_every = 8;
  /// Explicit primary checkpoint (with log truncation) every N rounds,
  /// exercising the standby's checkpoint mirroring (0 = never).
  int checkpoint_every = 2;
  /// Arm a randomized ship.* channel fault each round.
  bool channel_faults = true;
  /// Bound on the quiesce drain (poll/pump iterations) before the round
  /// is declared stuck.
  int drain_limit = 256;
  /// Append one telemetry JSONL record per round ("" = off).
  std::string telemetry_jsonl;
  /// Directory for automatic black-box dumps at promotions ("" = off).
  std::string blackbox_dir;
  /// On any storm failure, write a black box here ("" = off).
  std::string blackbox_on_failure;
  /// Fail the storm if any subsystem still reports failing after an
  /// audited round.
  bool assert_health = true;
};

/// What happened across a failover storm (all counters cumulative).
struct FailoverStormStats {
  uint64_t rounds = 0;
  uint64_t ops_executed = 0;
  uint64_t promotions = 0;
  /// Standbys seeded from a primary backup (one per round).
  uint64_t reseeds = 0;
  uint64_t channel_faults_armed = 0;
  uint64_t resyncs = 0;
  uint64_t reconnects = 0;
  uint64_t duplicate_batches = 0;
  uint64_t gap_batches = 0;
  uint64_t corrupt_frames = 0;
  uint64_t checkpoints = 0;
  uint64_t parallel_bursts = 0;
  uint64_t audits_passed = 0;
  uint64_t rto_us_total = 0;
  uint64_t rto_us_max = 0;

  std::string ToString() const;
};

/// \brief Seeded failover soak: the replication counterpart of the crash
/// storm. Every round the current primary is backed up into a cold
/// standby, streamed at through a faulted channel, then killed; the
/// standby promotes and a cumulative divergence audit checks the promoted
/// node's stable state — values and vSIs — against the sequential replay
/// of the whole cross-node history. Any divergence, stuck drain, or
/// failed promotion fails the run immediately.
Status RunFailoverStorm(const FailoverStormOptions& options,
                        FailoverStormStats* stats);

}  // namespace loglog

#endif  // LOGLOG_SIM_FAILOVER_STORM_H_
