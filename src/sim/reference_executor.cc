#include "sim/reference_executor.h"

#include <string>

#include "ops/function_registry.h"
#include "wal/log_record.h"

namespace loglog {

Status ReferenceExecutor::Apply(const OperationDesc& op) {
  if (op.op_class == OpClass::kDelete) {
    objects_.erase(op.writes[0]);
    return Status::OK();
  }
  std::vector<ObjectValue> read_values;
  read_values.reserve(op.reads.size());
  for (ObjectId r : op.reads) {
    auto it = objects_.find(r);
    if (it == objects_.end()) {
      return Status::NotFound("reference read of missing object " +
                              std::to_string(r));
    }
    read_values.push_back(it->second);
  }
  std::vector<ObjectValue> write_values(op.writes.size());
  for (size_t i = 0; i < op.writes.size(); ++i) {
    auto it = objects_.find(op.writes[i]);
    if (it != objects_.end()) write_values[i] = it->second;
  }
  LOGLOG_RETURN_IF_ERROR(
      FunctionRegistry::Global().Apply(op, read_values, &write_values));
  for (size_t i = 0; i < op.writes.size(); ++i) {
    objects_[op.writes[i]] = std::move(write_values[i]);
  }
  return Status::OK();
}

Status ReferenceExecutor::ReplayLog(Slice log_bytes) {
  while (true) {
    LogRecord rec;
    Status st = ReadFramedRecord(&log_bytes, &rec);
    if (st.IsNotFound()) break;
    LOGLOG_RETURN_IF_ERROR(st);
    // Compensation records are history like any other operation: the
    // reference replays straight through rollbacks.
    if (rec.type != RecordType::kOperation &&
        rec.type != RecordType::kCompensation) {
      continue;
    }
    LOGLOG_RETURN_IF_ERROR(Apply(rec.op));
  }
  return Status::OK();
}

Status ReferenceExecutor::Get(ObjectId id, ObjectValue* out) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return Status::NotFound("no such object");
  *out = it->second;
  return Status::OK();
}

Status CompareWithReference(const ReferenceExecutor& ref,
                            const StableStore& store) {
  for (const auto& [id, value] : ref.objects()) {
    StoredObject stored;
    if (!store.Exists(id)) {
      return Status::Corruption("object " + std::to_string(id) +
                                " missing from stable store");
    }
    Status st = store.Read(id, &stored);
    if (!st.ok()) return st;
    if (stored.value != value) {
      return Status::Corruption("object " + std::to_string(id) +
                                " value mismatch (stable " +
                                std::to_string(stored.value.size()) +
                                "B vs reference " +
                                std::to_string(value.size()) + "B)");
    }
  }
  Status extra = Status::OK();
  store.ForEach([&](ObjectId id, const StoredObject&) {
    if (extra.ok() && !ref.Exists(id)) {
      extra = Status::Corruption("stable store has extra object " +
                                 std::to_string(id));
    }
  });
  return extra;
}

}  // namespace loglog
