#ifndef LOGLOG_SIM_REFERENCE_EXECUTOR_H_
#define LOGLOG_SIM_REFERENCE_EXECUTOR_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "ops/operation.h"
#include "storage/simulated_disk.h"

namespace loglog {

/// \brief Ground truth for crash-recovery verification.
///
/// Executes operation records sequentially against a plain in-memory map
/// — no cache, no log, no recovery machinery. Because the recovery
/// theorem says a recovered database equals the sequential execution of
/// its stable history, replaying the stable log archive through this
/// executor yields exactly the state the engine must expose after
/// Recover() + FlushAll().
class ReferenceExecutor {
 public:
  /// Applies one operation (same transform registry as the engine).
  Status Apply(const OperationDesc& op);

  /// Replays every kOperation record found in a stable-log byte stream
  /// (e.g. SimulatedDisk::log().ArchiveContents()), in order.
  Status ReplayLog(Slice log_bytes);

  bool Exists(ObjectId id) const { return objects_.contains(id); }
  Status Get(ObjectId id, ObjectValue* out) const;
  const std::map<ObjectId, ObjectValue>& objects() const { return objects_; }

 private:
  std::map<ObjectId, ObjectValue> objects_;
};

/// Compares a recovered, fully flushed stable store against the reference
/// state; returns Corruption with a diagnostic on the first mismatch.
Status CompareWithReference(const ReferenceExecutor& ref,
                            const StableStore& store);

}  // namespace loglog

#endif  // LOGLOG_SIM_REFERENCE_EXECUTOR_H_
