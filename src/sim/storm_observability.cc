#include "sim/storm_observability.h"

#include "obs/blackbox.h"
#include "obs/health.h"

namespace loglog {

StormObservability::StormObservability(const std::string& telemetry_jsonl,
                                       const std::string& blackbox_dir)
    : exporter_(TelemetryExporter::Options{telemetry_jsonl, ""}) {
  // A previous run's terminal state (e.g. a deliberately poisoned WAL)
  // must not leak into this storm's assertions.
  HealthRegistry::Global().Reset();
  if (!blackbox_dir.empty()) SetBlackBoxDir(blackbox_dir);
}

Status StormObservability::SampleIteration() { return exporter_.Sample(); }

Status StormObservability::CheckHealth(std::string_view storm,
                                       uint64_t iteration) const {
  if (HealthRegistry::Global().Worst() != HealthState::kFailing) {
    return Status::OK();
  }
  return Status::Corruption(
      std::string(storm) + " storm: subsystem failing after verified "
      "iteration " + std::to_string(iteration) + ":\n" +
      HealthRegistry::Global().ToString());
}

Status StormObservability::Finish(Status result, std::string_view storm,
                                  const std::string& blackbox_on_failure) {
  if (!result.ok() && !blackbox_on_failure.empty()) {
    // Best-effort: the storm's own error is the one worth surfacing.
    (void)WriteBlackBoxFile(
        blackbox_on_failure,
        std::string(storm) + " storm failure: " + result.ToString());
  }
  return result;
}

}  // namespace loglog
