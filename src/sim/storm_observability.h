#ifndef LOGLOG_SIM_STORM_OBSERVABILITY_H_
#define LOGLOG_SIM_STORM_OBSERVABILITY_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "obs/telemetry.h"

namespace loglog {

/// \brief The observability harness every storm (crash, abort, failover)
/// wraps around its iteration loop.
///
/// Construction starts the storm from a clean slate (health ledger reset,
/// auto-dump sink pointed at `blackbox_dir`); each verified iteration
/// calls SampleIteration() to append one telemetry record and
/// CheckHealth() to fail the storm if any subsystem is still reporting
/// failing; and Finish() wraps the storm's result, cutting a
/// `blackbox_on_failure` dump when the result is an error.
class StormObservability {
 public:
  /// Either path may be "" to disable that output.
  StormObservability(const std::string& telemetry_jsonl,
                     const std::string& blackbox_dir);

  /// One telemetry JSONL record (no-op without a configured path).
  Status SampleIteration();

  /// After a verified iteration every subsystem must have recovered:
  /// anything still failing means the verify passed against a system
  /// that believes itself broken — surface it as a storm failure.
  Status CheckHealth(std::string_view storm, uint64_t iteration) const;

  /// Passes `result` through; on error, writes a black box (ring +
  /// metrics + health at the moment of failure) to `blackbox_on_failure`
  /// if one is configured.
  Status Finish(Status result, std::string_view storm,
                const std::string& blackbox_on_failure);

 private:
  TelemetryExporter exporter_;
};

}  // namespace loglog

#endif  // LOGLOG_SIM_STORM_OBSERVABILITY_H_
