#include "sim/workload.h"

namespace loglog {

MixedWorkload::MixedWorkload(const MixedWorkloadOptions& options)
    : options_(options), rng_(options.seed), next_temp_(kTempIdBase) {
  total_weight_ = options_.w_app_exec + options_.w_app_read +
                  options_.w_app_write + options_.w_copy + options_.w_sort +
                  options_.w_delta + options_.w_append +
                  options_.w_physical + options_.w_temp_create +
                  options_.w_temp_delete + options_.w_merge;
}

std::vector<OperationDesc> MixedWorkload::SetupOps() {
  std::vector<OperationDesc> ops;
  for (size_t i = 0; i < options_.num_apps; ++i) {
    ops.push_back(MakeCreate(kAppIdBase + i,
                             Slice(rng_.Bytes(options_.app_state_size))));
  }
  for (size_t i = 0; i < options_.num_files; ++i) {
    ops.push_back(
        MakeCreate(kFileIdBase + i, Slice(rng_.Bytes(options_.file_size))));
  }
  for (size_t i = 0; i < options_.num_pages; ++i) {
    ops.push_back(
        MakeCreate(kPageIdBase + i, Slice(rng_.Bytes(options_.page_size))));
  }
  return ops;
}

ObjectId MixedWorkload::RandomApp() {
  return kAppIdBase + rng_.Uniform(options_.num_apps);
}
ObjectId MixedWorkload::RandomFile() {
  if (options_.hot_skew_percent > 0 && options_.num_files >= 2 &&
      static_cast<int>(rng_.Uniform(100)) < options_.hot_skew_percent) {
    return kFileIdBase + rng_.Uniform(2);
  }
  return kFileIdBase + rng_.Uniform(options_.num_files);
}
ObjectId MixedWorkload::RandomPage() {
  if (options_.hot_skew_percent > 0 && options_.num_pages >= 2 &&
      static_cast<int>(rng_.Uniform(100)) < options_.hot_skew_percent) {
    return kPageIdBase + rng_.Uniform(2);
  }
  return kPageIdBase + rng_.Uniform(options_.num_pages);
}

OperationDesc MixedWorkload::Next() {
  int pick = static_cast<int>(rng_.Uniform(total_weight_));
  auto take = [&pick](int w) {
    if (pick < w) return true;
    pick -= w;
    return false;
  };

  if (take(options_.w_app_exec)) {
    return MakeAppExecute(RandomApp(), rng_.Next());
  }
  if (take(options_.w_app_read)) {
    // Applications read files, pages, or live temporaries.
    ObjectId src;
    if (!live_temps_.empty() && rng_.OneIn(3)) {
      auto it = live_temps_.begin();
      std::advance(it, rng_.Uniform(live_temps_.size()));
      src = *it;
    } else {
      src = rng_.OneIn(2) ? RandomFile() : RandomPage();
    }
    return MakeAppRead(RandomApp(), src);
  }
  if (take(options_.w_app_write)) {
    return MakeAppWrite(RandomApp(), RandomFile(), options_.file_size,
                        rng_.Next());
  }
  if (take(options_.w_copy)) {
    ObjectId src = RandomFile();
    ObjectId dst = RandomFile();
    if (dst == src) dst = kFileIdBase + (dst - kFileIdBase + 1) %
                                            options_.num_files;
    return MakeCopy(dst, src);
  }
  if (take(options_.w_sort)) {
    ObjectId src = RandomFile();
    ObjectId dst = RandomFile();
    if (dst == src) dst = kFileIdBase + (dst - kFileIdBase + 1) %
                                            options_.num_files;
    return MakeSort(dst, src, options_.sort_record_size);
  }
  if (take(options_.w_delta)) {
    uint64_t offset = rng_.Uniform(options_.page_size / 2 + 1);
    return MakeDelta(RandomPage(), offset, Slice(rng_.Bytes(8)));
  }
  if (take(options_.w_append)) {
    return MakeAppend(RandomPage(), Slice(rng_.Bytes(8)));
  }
  if (take(options_.w_physical)) {
    return MakePhysicalWrite(RandomPage(),
                             Slice(rng_.Bytes(options_.page_size)));
  }
  if (take(options_.w_temp_create)) {
    ObjectId id = next_temp_++;
    live_temps_.insert(id);
    return MakeCreate(id, Slice(rng_.Bytes(options_.file_size)));
  }
  if (take(options_.w_temp_delete)) {
    if (!live_temps_.empty()) {
      auto it = live_temps_.begin();
      std::advance(it, rng_.Uniform(live_temps_.size()));
      ObjectId id = *it;
      live_temps_.erase(it);
      return MakeDelete(id);
    }
    return MakeAppExecute(RandomApp(), rng_.Next());
  }
  // w_merge: a multi-read logical operation combining two distinct files.
  ObjectId a = RandomFile();
  ObjectId b = RandomFile();
  if (b == a) b = kFileIdBase + (b - kFileIdBase + 1) % options_.num_files;
  return MakeHashCombine(RandomFile(), {a, b}, options_.file_size,
                         rng_.Next());
}

}  // namespace loglog
