#ifndef LOGLOG_SIM_WORKLOAD_H_
#define LOGLOG_SIM_WORKLOAD_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "ops/op_builder.h"
#include "ops/operation.h"

namespace loglog {

/// Object-id namespaces used by the generators (disjoint by construction).
inline constexpr ObjectId kAppIdBase = 1'000;
inline constexpr ObjectId kFileIdBase = 2'000;
inline constexpr ObjectId kPageIdBase = 3'000;
inline constexpr ObjectId kTempIdBase = 10'000;

/// \brief Options for the mixed application/file/database workload.
///
/// The mix mirrors the paper's motivating domains: application recovery
/// (Ex, R, W_L), file-system recovery (copy, sort, create/delete of
/// transient files) and database recovery (physiological page updates).
struct MixedWorkloadOptions {
  uint64_t seed = 42;
  size_t num_apps = 4;
  size_t num_files = 12;
  size_t num_pages = 12;
  size_t app_state_size = 64;
  size_t file_size = 256;
  size_t page_size = 128;
  uint32_t sort_record_size = 16;  // file_size must be a multiple
  /// Access skew: with this percentage, page/file picks hit the two
  /// lowest-numbered objects of their class ("hot set"). 0 = uniform.
  /// Pairs with the engine's automatic hot-object detection (E11).
  int hot_skew_percent = 0;

  // Relative weights of each operation kind.
  int w_app_exec = 3;
  int w_app_read = 3;
  int w_app_write = 3;
  int w_copy = 2;
  int w_sort = 1;
  int w_delta = 3;
  int w_append = 1;
  int w_physical = 1;
  int w_temp_create = 2;
  int w_temp_delete = 2;
  int w_merge = 1;
};

/// \brief Stateful random workload generator.
///
/// SetupOps() creates the object universe; Next() produces one random
/// well-formed operation (reads only live objects). Deterministic in the
/// seed, so (seed, op count, crash point) reproduces an experiment.
class MixedWorkload {
 public:
  explicit MixedWorkload(const MixedWorkloadOptions& options);

  /// Creation operations for the initial universe, in execution order.
  std::vector<OperationDesc> SetupOps();

  /// One random operation.
  OperationDesc Next();

  const MixedWorkloadOptions& options() const { return options_; }

 private:
  ObjectId RandomApp();
  ObjectId RandomFile();
  ObjectId RandomPage();

  MixedWorkloadOptions options_;
  Random rng_;
  std::set<ObjectId> live_temps_;
  ObjectId next_temp_;
  int total_weight_;
};

}  // namespace loglog

#endif  // LOGLOG_SIM_WORKLOAD_H_
