#include "storage/disk_image.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/coding.h"
#include "common/crc32.h"

namespace loglog {

namespace {

constexpr char kMagic[] = "LLIMG001";
constexpr size_t kMagicSize = 8;
constexpr size_t kTrailerSize = 4;  // trailing CRC32C

void PutStats(std::vector<uint8_t>* out, const IoStats& s) {
  PutFixed64(out, s.object_writes);
  PutFixed64(out, s.atomic_multi_writes);
  PutFixed64(out, s.objects_in_atomic_writes);
  PutFixed64(out, s.object_reads);
  PutFixed64(out, s.object_bytes_written);
  PutFixed64(out, s.log_forces);
  PutFixed64(out, s.log_bytes);
  PutFixed64(out, s.shadow_pointer_swings);
  PutFixed64(out, s.shadow_relocations);
  PutFixed64(out, s.quiesce_events);
  PutFixed64(out, s.io_retries);
}

Status GetStats(Slice* src, IoStats* s) {
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->object_writes));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->atomic_multi_writes));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->objects_in_atomic_writes));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->object_reads));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->object_bytes_written));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->log_forces));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->log_bytes));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->shadow_pointer_swings));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->shadow_relocations));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->quiesce_events));
  LOGLOG_RETURN_IF_ERROR(GetFixed64(src, &s->io_retries));
  return Status::OK();
}

}  // namespace

void SaveDiskImage(const SimulatedDisk& disk, std::vector<uint8_t>* out) {
  out->clear();
  out->insert(out->end(), kMagic, kMagic + kMagicSize);

  // Stable store, ascending id so identical disks produce identical
  // images. ForEach hands out raw bytes and the stored CRC — corruption
  // on the saved media survives the round trip.
  std::vector<std::pair<ObjectId, StoredObject>> objects;
  disk.store().ForEach([&](ObjectId id, const StoredObject& obj) {
    objects.emplace_back(id, obj);
  });
  std::sort(objects.begin(), objects.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PutFixed64(out, objects.size());
  for (const auto& [id, obj] : objects) {
    PutFixed64(out, id);
    PutFixed64(out, obj.vsi);
    PutFixed32(out, obj.crc);
    PutLengthPrefixed(out, Slice(obj.value));
  }

  // Stable log. The archive holds every stable byte ever appended
  // (trimmed of torn tails), so archive + start_offset reconstructs both
  // the retained window and the verification archive.
  PutFixed64(out, disk.log().start_offset());
  PutLengthPrefixed(out, disk.log().ArchiveContents());

  PutStats(out, disk.stats());

  PutFixed32(out, Crc32c(Slice(*out)));
}

Status LoadDiskImage(Slice image, SimulatedDisk* disk) {
  if (image.size() < kMagicSize + kTrailerSize) {
    return Status::Corruption("disk image truncated");
  }
  if (std::memcmp(image.data(), kMagic, kMagicSize) != 0) {
    return Status::Corruption("bad disk image magic");
  }
  Slice body(image.data(), image.size() - kTrailerSize);
  Slice trailer(image.data() + image.size() - kTrailerSize, kTrailerSize);
  uint32_t stored_crc = 0;
  LOGLOG_RETURN_IF_ERROR(GetFixed32(&trailer, &stored_crc));
  if (Crc32c(body) != stored_crc) {
    return Status::Corruption("disk image checksum mismatch");
  }

  Slice src(image.data() + kMagicSize,
            image.size() - kMagicSize - kTrailerSize);
  uint64_t object_count = 0;
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&src, &object_count));
  for (uint64_t i = 0; i < object_count; ++i) {
    uint64_t id = 0, vsi = 0;
    uint32_t crc = 0;
    Slice value;
    LOGLOG_RETURN_IF_ERROR(GetFixed64(&src, &id));
    LOGLOG_RETURN_IF_ERROR(GetFixed64(&src, &vsi));
    LOGLOG_RETURN_IF_ERROR(GetFixed32(&src, &crc));
    LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&src, &value));
    disk->store().RestoreRaw(id, value.ToBytes(), vsi, crc);
  }

  uint64_t start_offset = 0;
  Slice archive;
  LOGLOG_RETURN_IF_ERROR(GetFixed64(&src, &start_offset));
  LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(&src, &archive));
  // One append reconstructs both the device bytes and its archive (the
  // device invariant archive == [0, start_offset) + retained makes the
  // prefix truncation exact); the saved IoStats below erase the append's
  // billing.
  if (!archive.empty()) {
    LOGLOG_RETURN_IF_ERROR(disk->log().Append(archive));
  }
  if (start_offset > disk->log().end_offset()) {
    return Status::Corruption("disk image log start beyond archive end");
  }
  disk->log().TruncatePrefix(start_offset);

  IoStats saved;
  LOGLOG_RETURN_IF_ERROR(GetStats(&src, &saved));
  if (!src.empty()) {
    return Status::Corruption("trailing bytes in disk image");
  }
  disk->stats() = saved;
  return Status::OK();
}

Status WriteDiskImageFile(const SimulatedDisk& disk,
                          const std::string& path) {
  std::vector<uint8_t> image;
  SaveDiskImage(disk, &image);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open disk image file: " + path);
  }
  size_t written = std::fwrite(image.data(), 1, image.size(), f);
  int close_rc = std::fclose(f);
  if (written != image.size() || close_rc != 0) {
    return Status::IoError("short write to disk image file: " + path);
  }
  return Status::OK();
}

Status ReadDiskImageFile(const std::string& path, SimulatedDisk* disk) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open disk image file: " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("error reading disk image file: " + path);
  }
  return LoadDiskImage(Slice(bytes), disk);
}

}  // namespace loglog
