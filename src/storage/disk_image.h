#ifndef LOGLOG_STORAGE_DISK_IMAGE_H_
#define LOGLOG_STORAGE_DISK_IMAGE_H_

#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "storage/simulated_disk.h"

namespace loglog {

/// \brief Byte-exact serialization of a SimulatedDisk's crash-surviving
/// state: stable store (including stored CRCs, so saved media corruption
/// round-trips), stable log with its archive and truncation point, and
/// the I/O counters.
///
/// This is what `loglog_inspect` operates on: a workload run can save its
/// disk at the crash point, and the tool later re-opens exactly that disk
/// to dump the log, replay recovery under tracing, or diff metrics —
/// without re-running the workload.
///
/// Format (all integers little-endian):
///   magic "LLIMG001"
///   fixed64 object_count, then per object (ascending id):
///     fixed64 id, fixed64 vsi, fixed32 crc, varint len + value bytes
///   fixed64 log_start_offset, varint len + log archive bytes
///   fixed64 x11 IoStats fields
///   fixed32 CRC32C over everything above

/// Serializes the disk into `out` (replacing its contents).
void SaveDiskImage(const SimulatedDisk& disk, std::vector<uint8_t>* out);

/// Rebuilds `disk` (which must be freshly constructed: empty store and
/// log) from a saved image. Corruption on bad magic, a truncated section,
/// or a trailing-CRC mismatch.
Status LoadDiskImage(Slice image, SimulatedDisk* disk);

/// File convenience wrappers around Save/LoadDiskImage.
Status WriteDiskImageFile(const SimulatedDisk& disk, const std::string& path);
Status ReadDiskImageFile(const std::string& path, SimulatedDisk* disk);

}  // namespace loglog

#endif  // LOGLOG_STORAGE_DISK_IMAGE_H_
