#include "storage/io_stats.h"

#include <cstdio>

#include "obs/json.h"

namespace loglog {

std::string IoStats::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "obj_writes=%llu atomic_multi=%llu(atomic_objs=%llu) obj_reads=%llu "
      "obj_bytes=%llu log_forces=%llu log_bytes=%llu shadow_swings=%llu "
      "quiesce=%llu io_retries=%llu",
      static_cast<unsigned long long>(object_writes),
      static_cast<unsigned long long>(atomic_multi_writes),
      static_cast<unsigned long long>(objects_in_atomic_writes),
      static_cast<unsigned long long>(object_reads),
      static_cast<unsigned long long>(object_bytes_written),
      static_cast<unsigned long long>(log_forces),
      static_cast<unsigned long long>(log_bytes),
      static_cast<unsigned long long>(shadow_pointer_swings),
      static_cast<unsigned long long>(quiesce_events),
      static_cast<unsigned long long>(io_retries));
  return buf;
}

std::string IoStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("obj_writes").Uint(object_writes);
  w.Key("atomic_multi").Uint(atomic_multi_writes);
  w.Key("atomic_objs").Uint(objects_in_atomic_writes);
  w.Key("obj_reads").Uint(object_reads);
  w.Key("obj_bytes").Uint(object_bytes_written);
  w.Key("log_forces").Uint(log_forces);
  w.Key("log_bytes").Uint(log_bytes);
  w.Key("shadow_swings").Uint(shadow_pointer_swings);
  w.Key("shadow_relocations").Uint(shadow_relocations);
  w.Key("quiesce").Uint(quiesce_events);
  w.Key("io_retries").Uint(io_retries);
  w.EndObject();
  return w.Take();
}

IoStats IoStats::Delta(const IoStats& earlier) const {
  IoStats d;
  d.object_writes = object_writes - earlier.object_writes;
  d.atomic_multi_writes = atomic_multi_writes - earlier.atomic_multi_writes;
  d.objects_in_atomic_writes =
      objects_in_atomic_writes - earlier.objects_in_atomic_writes;
  d.object_reads = object_reads - earlier.object_reads;
  d.object_bytes_written =
      object_bytes_written - earlier.object_bytes_written;
  d.log_forces = log_forces - earlier.log_forces;
  d.log_bytes = log_bytes - earlier.log_bytes;
  d.shadow_pointer_swings =
      shadow_pointer_swings - earlier.shadow_pointer_swings;
  d.shadow_relocations = shadow_relocations - earlier.shadow_relocations;
  d.quiesce_events = quiesce_events - earlier.quiesce_events;
  d.io_retries = io_retries - earlier.io_retries;
  return d;
}

}  // namespace loglog
