#ifndef LOGLOG_STORAGE_IO_STATS_H_
#define LOGLOG_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace loglog {

/// \brief Counters for every interaction with stable storage.
///
/// The paper's cost arguments (Section 4 "Comparing Costs") are stated in
/// terms of I/Os, logged bytes and system interruption (quiesce). The
/// simulated disk increments these deterministically so benches can report
/// the exact quantities the paper reasons about.
struct IoStats {
  /// Single-object in-place stable writes (each is one atomic device write).
  uint64_t object_writes = 0;
  /// Native multi-object atomic flushes (require shadowing or special HW).
  uint64_t atomic_multi_writes = 0;
  /// Total objects covered by atomic_multi_writes.
  uint64_t objects_in_atomic_writes = 0;
  /// Object reads served from stable storage (cache misses).
  uint64_t object_reads = 0;
  /// Bytes of object payload written in place.
  uint64_t object_bytes_written = 0;
  /// Log forces (stable log device syncs).
  uint64_t log_forces = 0;
  /// Bytes appended to the stable log.
  uint64_t log_bytes = 0;
  /// Shadow-mode pointer-swing writes (one per atomic multi-write when the
  /// store runs in shadow mode; models System R propagation).
  uint64_t shadow_pointer_swings = 0;
  /// Objects relocated by shadow writes (sequentiality loss proxy).
  uint64_t shadow_relocations = 0;
  /// Times the system had to quiesce (flush transactions freeze execution).
  uint64_t quiesce_events = 0;
  /// Re-issues of device I/Os after a transient error (fault injection).
  uint64_t io_retries = 0;

  /// Total device write operations of any kind.
  uint64_t TotalWrites() const {
    return object_writes + atomic_multi_writes + shadow_pointer_swings;
  }

  std::string ToString() const;

  /// One flat JSON object, keys matching the ToString() fields.
  std::string ToJson() const;

  IoStats Delta(const IoStats& earlier) const;
};

}  // namespace loglog

#endif  // LOGLOG_STORAGE_IO_STATS_H_
