#include "storage/simulated_disk.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "obs/metrics.h"

namespace loglog {

StableLogDevice::StableLogDevice(IoStats* stats, FaultInjector* faults)
    : cold_(faults),
      stats_(stats),
      faults_(faults),
      reclaimed_counter_(MetricsRegistry::Global().GetCounter(
          metric::kLogDeviceReclaimedBytes)) {}

Status StableLogDevice::Append(Slice bytes, uint64_t* offset) {
  if (append_latency_us_ > 0) {
    // Synchronous path pays the full device latency inline.
    std::this_thread::sleep_for(std::chrono::microseconds(append_latency_us_));
  }
  return ApplyAppend(bytes, offset);
}

Status StableLogDevice::ApplyAppend(Slice bytes, uint64_t* offset) {
  FaultFire fire =
      faults_ != nullptr ? faults_->Hit(fault::kLogAppend) : FaultFire{};
  if (fire.action == FaultAction::kTransientIoError ||
      fire.action == FaultAction::kPermanentIoError ||
      fire.action == FaultAction::kLostWrite) {
    // The force never reaches the platter; a lost log write is
    // indistinguishable from a failed one at this layer because the
    // caller must not ack records the device did not confirm.
    return FaultInjector::ErrorStatus(
        fire.action == FaultAction::kLostWrite
            ? FaultAction::kTransientIoError
            : fire.action,
        fault::kLogAppend);
  }
  size_t persist = bytes.size();
  if (fire.action == FaultAction::kTornWrite && bytes.size() > 1) {
    // A crash mid-force: only a strict prefix of the force is stable.
    persist = 1 + static_cast<size_t>(fire.rng % (bytes.size() - 1));
  }
  if (offset != nullptr) *offset = end_offset();
  if (fire.action == FaultAction::kBitFlip) {
    // Silent in-flight corruption: the damaged bytes become stable and the
    // device reports success. Recovery's framing CRC is what catches it.
    std::vector<uint8_t> damaged(bytes.data(), bytes.data() + persist);
    FaultInjector::FlipBit(fire.rng, &damaged);
    bytes_.insert(bytes_.end(), damaged.begin(), damaged.end());
  } else {
    bytes_.insert(bytes_.end(), bytes.data(), bytes.data() + persist);
  }
  archive_view_valid_ = false;
  last_append_size_ = persist;
  ++stats_->log_forces;
  stats_->log_bytes += persist;
  if (fire.action == FaultAction::kTornWrite ||
      fire.action == FaultAction::kCrashNow) {
    return FaultInjector::ErrorStatus(fire.action, fault::kLogAppend);
  }
  return Status::OK();
}

uint64_t StableLogDevice::SubmitAppend(Slice bytes) {
  StagedAppend staged;
  staged.ticket = next_ticket_++;
  // Registered-buffer style: recycle a reaped submission buffer instead
  // of allocating a fresh one — a multi-megabyte group-commit batch
  // would otherwise mmap/munmap (and minor-fault) its pages every force.
  if (!buffer_pool_.empty()) {
    staged.data = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
  }
  staged.data.assign(bytes.data(), bytes.data() + bytes.size());
  staged.ready_at = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(append_latency_us_);
  staged_.push_back(std::move(staged));
  return staged_.back().ticket;
}

Status StableLogDevice::ReapAppend(uint64_t ticket, uint64_t* offset) {
  assert(!staged_.empty());
  // Completions apply in submission order; reaping out of order would
  // reorder an append-only log.
  assert(staged_.front().ticket == ticket);
  (void)ticket;
  StagedAppend& front = staged_.front();
  // Only the latency not already hidden by work since submit remains.
  std::this_thread::sleep_until(front.ready_at);
  Status st = ApplyAppend(Slice(front.data), offset);
  if (st.ok() || !st.IsIoError()) {
    // Success, or torn/crashed (partially applied): the entry is
    // consumed. Retryable IoErrors leave it staged for the next reap.
    if (buffer_pool_.size() < kBufferPoolEntries) {
      buffer_pool_.push_back(std::move(front.data));
    }
    staged_.pop_front();
  }
  return st;
}

void StableLogDevice::AbandonStaged() { staged_.clear(); }

void StableLogDevice::TruncatePrefix(uint64_t offset) {
  if (offset <= start_offset_) return;
  assert(offset <= end_offset());
  uint64_t drop = offset - start_offset_;
  if (archive_enabled_) {
    cold_.Spill(start_offset_,
                std::vector<uint8_t>(
                    bytes_.begin(), bytes_.begin() + static_cast<long>(drop)));
  }
  bytes_.erase(bytes_.begin(), bytes_.begin() + static_cast<long>(drop));
  start_offset_ = offset;
  reclaimed_bytes_ += drop;
  reclaimed_counter_->Inc(drop);
  archive_view_valid_ = false;
}

uint64_t StableLogDevice::ReclaimColdBelow(uint64_t offset) {
  uint64_t dropped = cold_.DropThrough(std::min(offset, start_offset_));
  if (dropped > 0) {
    reclaimed_bytes_ += dropped;
    reclaimed_counter_->Inc(dropped);
    archive_view_valid_ = false;
  }
  return dropped;
}

Status StableLogDevice::ReadStable(uint64_t offset, uint64_t size,
                                   std::vector<uint8_t>* out) const {
  if (offset >= start_offset_) {
    // Hot window: the retained in-memory log, no fault site (same trust
    // the recovery cursor already extends to Contents()).
    if (offset + size > end_offset()) {
      return Status::IoError("stable read past end of log");
    }
    const uint64_t within = offset - start_offset_;
    out->assign(bytes_.begin() + static_cast<long>(within),
                bytes_.begin() + static_cast<long>(within + size));
    return Status::OK();
  }
  if (offset + size <= start_offset_) return cold_.Read(offset, size, out);
  // Straddles the truncation horizon: cold prefix, hot remainder.
  Status st = cold_.Read(offset, start_offset_ - offset, out);
  if (!st.ok()) return st;
  const uint64_t hot = offset + size - start_offset_;
  if (hot > bytes_.size()) {
    return Status::IoError("stable read past end of log");
  }
  out->insert(out->end(), bytes_.begin(),
              bytes_.begin() + static_cast<long>(hot));
  return Status::OK();
}

Slice StableLogDevice::ArchiveContents() const {
  if (cold_.segment_count() == 0) return Slice(bytes_);
  if (!archive_view_valid_) {
    archive_view_.clear();
    archive_view_.reserve(cold_.total_bytes() + bytes_.size());
    cold_.AppendContentsTo(&archive_view_);
    archive_view_.insert(archive_view_.end(), bytes_.begin(), bytes_.end());
    archive_view_valid_ = true;
  }
  return Slice(archive_view_);
}

void StableLogDevice::TearTail(uint64_t n) {
  // Torn bytes were never stable; only the hot tail can tear (truncation
  // forces below the tear point, so cold segments are never affected).
  uint64_t live_drop = std::min<uint64_t>(n, bytes_.size());
  bytes_.resize(bytes_.size() - live_drop);
  archive_view_valid_ = false;
}

}  // namespace loglog
