#include "storage/simulated_disk.h"

#include <algorithm>
#include <cassert>

namespace loglog {

uint64_t StableLogDevice::Append(Slice bytes) {
  uint64_t offset = end_offset();
  bytes_.insert(bytes_.end(), bytes.data(), bytes.data() + bytes.size());
  archive_.insert(archive_.end(), bytes.data(), bytes.data() + bytes.size());
  last_append_size_ = bytes.size();
  ++stats_->log_forces;
  stats_->log_bytes += bytes.size();
  return offset;
}

void StableLogDevice::TruncatePrefix(uint64_t offset) {
  if (offset <= start_offset_) return;
  assert(offset <= end_offset());
  uint64_t drop = offset - start_offset_;
  bytes_.erase(bytes_.begin(), bytes_.begin() + static_cast<long>(drop));
  start_offset_ = offset;
}

void StableLogDevice::TearTail(uint64_t n) {
  uint64_t live_drop = std::min<uint64_t>(n, bytes_.size());
  bytes_.resize(bytes_.size() - live_drop);
  // Torn bytes were never stable; the archive drops them too.
  uint64_t archive_drop = std::min<uint64_t>(live_drop, archive_.size());
  archive_.resize(archive_.size() - archive_drop);
}

}  // namespace loglog
