#include "storage/simulated_disk.h"

#include <algorithm>
#include <cassert>
#include <thread>

namespace loglog {

Status StableLogDevice::Append(Slice bytes, uint64_t* offset) {
  if (append_latency_us_ > 0) {
    // Synchronous path pays the full device latency inline.
    std::this_thread::sleep_for(std::chrono::microseconds(append_latency_us_));
  }
  return ApplyAppend(bytes, offset);
}

Status StableLogDevice::ApplyAppend(Slice bytes, uint64_t* offset) {
  FaultFire fire =
      faults_ != nullptr ? faults_->Hit(fault::kLogAppend) : FaultFire{};
  if (fire.action == FaultAction::kTransientIoError ||
      fire.action == FaultAction::kPermanentIoError ||
      fire.action == FaultAction::kLostWrite) {
    // The force never reaches the platter; a lost log write is
    // indistinguishable from a failed one at this layer because the
    // caller must not ack records the device did not confirm.
    return FaultInjector::ErrorStatus(
        fire.action == FaultAction::kLostWrite
            ? FaultAction::kTransientIoError
            : fire.action,
        fault::kLogAppend);
  }
  size_t persist = bytes.size();
  if (fire.action == FaultAction::kTornWrite && bytes.size() > 1) {
    // A crash mid-force: only a strict prefix of the force is stable.
    persist = 1 + static_cast<size_t>(fire.rng % (bytes.size() - 1));
  }
  if (offset != nullptr) *offset = end_offset();
  if (fire.action == FaultAction::kBitFlip) {
    // Silent in-flight corruption: the damaged bytes become stable and the
    // device reports success. Recovery's framing CRC is what catches it.
    std::vector<uint8_t> damaged(bytes.data(), bytes.data() + persist);
    FaultInjector::FlipBit(fire.rng, &damaged);
    bytes_.insert(bytes_.end(), damaged.begin(), damaged.end());
    if (archive_enabled_) {
      archive_.insert(archive_.end(), damaged.begin(), damaged.end());
    }
  } else {
    bytes_.insert(bytes_.end(), bytes.data(), bytes.data() + persist);
    if (archive_enabled_) {
      archive_.insert(archive_.end(), bytes.data(), bytes.data() + persist);
    }
  }
  last_append_size_ = persist;
  ++stats_->log_forces;
  stats_->log_bytes += persist;
  if (fire.action == FaultAction::kTornWrite ||
      fire.action == FaultAction::kCrashNow) {
    return FaultInjector::ErrorStatus(fire.action, fault::kLogAppend);
  }
  return Status::OK();
}

uint64_t StableLogDevice::SubmitAppend(Slice bytes) {
  StagedAppend staged;
  staged.ticket = next_ticket_++;
  // Registered-buffer style: recycle a reaped submission buffer instead
  // of allocating a fresh one — a multi-megabyte group-commit batch
  // would otherwise mmap/munmap (and minor-fault) its pages every force.
  if (!buffer_pool_.empty()) {
    staged.data = std::move(buffer_pool_.back());
    buffer_pool_.pop_back();
  }
  staged.data.assign(bytes.data(), bytes.data() + bytes.size());
  staged.ready_at = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(append_latency_us_);
  staged_.push_back(std::move(staged));
  return staged_.back().ticket;
}

Status StableLogDevice::ReapAppend(uint64_t ticket, uint64_t* offset) {
  assert(!staged_.empty());
  // Completions apply in submission order; reaping out of order would
  // reorder an append-only log.
  assert(staged_.front().ticket == ticket);
  (void)ticket;
  StagedAppend& front = staged_.front();
  // Only the latency not already hidden by work since submit remains.
  std::this_thread::sleep_until(front.ready_at);
  Status st = ApplyAppend(Slice(front.data), offset);
  if (st.ok() || !st.IsIoError()) {
    // Success, or torn/crashed (partially applied): the entry is
    // consumed. Retryable IoErrors leave it staged for the next reap.
    if (buffer_pool_.size() < kBufferPoolEntries) {
      buffer_pool_.push_back(std::move(front.data));
    }
    staged_.pop_front();
  }
  return st;
}

void StableLogDevice::AbandonStaged() { staged_.clear(); }

void StableLogDevice::TruncatePrefix(uint64_t offset) {
  if (offset <= start_offset_) return;
  assert(offset <= end_offset());
  uint64_t drop = offset - start_offset_;
  bytes_.erase(bytes_.begin(), bytes_.begin() + static_cast<long>(drop));
  start_offset_ = offset;
}

void StableLogDevice::TearTail(uint64_t n) {
  uint64_t live_drop = std::min<uint64_t>(n, bytes_.size());
  bytes_.resize(bytes_.size() - live_drop);
  // Torn bytes were never stable; the archive drops them too.
  uint64_t archive_drop = std::min<uint64_t>(live_drop, archive_.size());
  archive_.resize(archive_.size() - archive_drop);
}

}  // namespace loglog
