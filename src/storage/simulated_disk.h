#ifndef LOGLOG_STORAGE_SIMULATED_DISK_H_
#define LOGLOG_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <vector>

#include "common/slice.h"
#include "storage/io_stats.h"
#include "storage/stable_store.h"

namespace loglog {

/// \brief The append-only stable log device.
///
/// Bytes handed to Append are stable (the volatile log buffer lives in
/// LogManager; only forced bytes reach this device). Offsets are absolute
/// and never reused, so log truncation just advances start_offset.
class StableLogDevice {
 public:
  explicit StableLogDevice(IoStats* stats) : stats_(stats) {}

  StableLogDevice(const StableLogDevice&) = delete;
  StableLogDevice& operator=(const StableLogDevice&) = delete;

  /// Appends forced bytes; returns the offset of the first byte. Counts
  /// one log force and the byte volume.
  uint64_t Append(Slice bytes);

  /// Absolute end offset (== total bytes ever appended).
  uint64_t end_offset() const { return start_offset_ + bytes_.size(); }
  /// Absolute offset of the first retained byte.
  uint64_t start_offset() const { return start_offset_; }
  uint64_t retained_bytes() const { return bytes_.size(); }

  /// View of the retained log [start_offset, end_offset).
  Slice Contents() const { return Slice(bytes_); }

  /// Drops bytes before `offset` (checkpoint-driven truncation).
  void TruncatePrefix(uint64_t offset);

  /// Crash simulation: removes the final `n` bytes, as if the last force
  /// was torn by the crash. Recovery must stop cleanly at the tear.
  void TearTail(uint64_t n);

  /// Bytes of the most recent Append (the largest tear a crash during
  /// that force could produce).
  uint64_t last_append_size() const { return last_append_size_; }

  /// Every byte ever made stable, unaffected by truncation (but trimmed
  /// by TearTail, since torn bytes never count as stable). Verification
  /// only: the reference executor replays this to compute ground truth.
  Slice ArchiveContents() const { return Slice(archive_); }

 private:
  std::vector<uint8_t> bytes_;
  std::vector<uint8_t> archive_;
  uint64_t start_offset_ = 0;
  uint64_t last_append_size_ = 0;
  IoStats* stats_;
};

/// \brief Everything that survives a crash: the stable object store, the
/// stable log, and the I/O counters.
///
/// An engine instance owns all volatile state (cache, write graph,
/// volatile log buffer); simulating a crash is simply destroying the
/// engine while the SimulatedDisk lives on, then constructing a new
/// engine over the same disk and running Recover().
class SimulatedDisk {
 public:
  SimulatedDisk() : store_(&stats_), log_(&stats_) {}

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  StableStore& store() { return store_; }
  const StableStore& store() const { return store_; }
  StableLogDevice& log() { return log_; }
  const StableLogDevice& log() const { return log_; }
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }

 private:
  IoStats stats_;
  StableStore store_;
  StableLogDevice log_;
};

}  // namespace loglog

#endif  // LOGLOG_STORAGE_SIMULATED_DISK_H_
