#ifndef LOGLOG_STORAGE_SIMULATED_DISK_H_
#define LOGLOG_STORAGE_SIMULATED_DISK_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "fault/fault_injector.h"
#include "logstore/cold_tier.h"
#include "storage/io_stats.h"
#include "storage/stable_store.h"

namespace loglog {

class Counter;

/// \brief The append-only stable log device.
///
/// Bytes handed to Append are stable (the volatile log buffer lives in
/// LogManager; only forced bytes reach this device). Offsets are absolute
/// and never reused, so log truncation just advances start_offset.
class StableLogDevice {
 public:
  StableLogDevice(IoStats* stats, FaultInjector* faults);

  StableLogDevice(const StableLogDevice&) = delete;
  StableLogDevice& operator=(const StableLogDevice&) = delete;

  /// Appends forced bytes; on success stores the offset of the first byte
  /// in *offset (if non-null) and counts one log force plus the byte
  /// volume. The fault::kLogAppend site can fail the force (IoError,
  /// nothing appended), tear it (a strict prefix becomes stable, Aborted
  /// — the system must crash, exactly as a power loss mid-force), or
  /// silently corrupt the appended bytes.
  Status Append(Slice bytes, uint64_t* offset = nullptr);

  /// io_uring-style submit/complete queue. SubmitAppend stages a copy of
  /// the bytes (like an SQE: the device owns them from here; the caller's
  /// buffer may move) and returns a ticket. NOTHING is stable until
  /// ReapAppend: fault evaluation and the media effect both happen at
  /// completion time, so a crash between submit and reap loses the whole
  /// submission — exactly the volatile-buffer semantics the WAL needs.
  ///
  /// Completions must be reaped in submission order (the log is
  /// append-only). On success the entry is consumed and *offset is the
  /// first stable byte. A retryable IoError leaves the entry staged so
  /// the caller can reap again; AbandonStaged drops every staged entry
  /// when the caller gives up (nothing was applied). A torn/crashed
  /// append (Aborted) consumes the entry after persisting its torn
  /// prefix, matching the synchronous Append contract.
  uint64_t SubmitAppend(Slice bytes);
  Status ReapAppend(uint64_t ticket, uint64_t* offset = nullptr);
  void AbandonStaged();
  size_t staged_appends() const { return staged_.size(); }

  /// Simulated device latency per append: SubmitAppend stamps a
  /// ready-time and ReapAppend sleeps only the remainder, so work done
  /// between submit and reap overlaps the "device". The synchronous
  /// Append pays it in full. 0 (default) disables.
  void set_append_latency_us(uint64_t us) { append_latency_us_ = us; }
  uint64_t append_latency_us() const { return append_latency_us_; }

  /// Absolute end offset (== total bytes ever appended).
  uint64_t end_offset() const { return start_offset_ + bytes_.size(); }
  /// Absolute offset of the first retained byte.
  uint64_t start_offset() const { return start_offset_; }
  uint64_t retained_bytes() const { return bytes_.size(); }

  /// View of the retained log [start_offset, end_offset).
  Slice Contents() const { return Slice(bytes_); }

  /// Releases the hot bytes before `offset` (checkpoint- or
  /// compaction-driven truncation). With the archive enabled the dropped
  /// prefix spills to the cold tier (history survives, reads fall
  /// through); disabled, it is gone. Either way the hot window shrinks —
  /// the reclaimed volume is counted in `log.device.reclaimed_bytes`.
  void TruncatePrefix(uint64_t offset);

  /// Total bytes TruncatePrefix has released from the hot window.
  uint64_t reclaimed_bytes() const { return reclaimed_bytes_; }

  /// Cold-tier garbage collection: drops spilled segments lying wholly
  /// below `offset` (clamped to start_offset(), so only already-spilled
  /// bytes are eligible) and counts them into reclaimed_bytes. The
  /// caller must guarantee no live index entry points below `offset` —
  /// the log-store checkpoint passes the oldest live image offset, which
  /// compaction is what advances. Dropped history is gone: full-history
  /// verification (ArchiveContents replay) no longer covers it, so
  /// retention-full deployments and the crash harness never call this.
  /// Returns the bytes released.
  uint64_t ReclaimColdBelow(uint64_t offset);

  /// Reads `size` bytes of stable history at absolute `offset`: from the
  /// retained hot window when offset >= start_offset(), else from the
  /// cold tier (a faulted read — see ColdTier). The log-as-database
  /// cache-miss path; reads never cross the hot/cold boundary in
  /// practice because both truncation and index offsets sit on framed
  /// record boundaries, but a straddling range is still served.
  Status ReadStable(uint64_t offset, uint64_t size,
                    std::vector<uint8_t>* out) const;

  const ColdTier& cold_tier() const { return cold_; }

  /// Cold-segment coalescing target (== retention-GC granularity; see
  /// ColdTier::set_segment_target_bytes).
  void set_cold_segment_target(size_t bytes) {
    cold_.set_segment_target_bytes(bytes);
  }

  /// Crash simulation: removes the final `n` bytes, as if the last force
  /// was torn by the crash. Recovery must stop cleanly at the tear.
  void TearTail(uint64_t n);

  /// Bytes of the most recent Append (the largest tear a crash during
  /// that force could produce).
  uint64_t last_append_size() const { return last_append_size_; }

  /// Every byte ever made stable, unaffected by truncation (but trimmed
  /// by TearTail, since torn bytes never count as stable). Verification
  /// only: the reference executor replays this to compute ground truth.
  /// Materialized lazily as cold segments + the hot window; the view is
  /// cached until the next append/truncate/tear invalidates it.
  Slice ArchiveContents() const;

  /// Disables history retention across truncation (default on).
  /// Benchmarks that never replay against the reference turn it off so
  /// truncated bytes are dropped instead of spilled — after a disabled
  /// truncation, ArchiveContents() and cold reads below start_offset()
  /// no longer cover full history.
  void set_archive_enabled(bool enabled) { archive_enabled_ = enabled; }

  FaultInjector* faults() const { return faults_; }
  IoStats* stats() const { return stats_; }

 private:
  /// Fault evaluation + media effect shared by Append and ReapAppend.
  Status ApplyAppend(Slice bytes, uint64_t* offset);

  struct StagedAppend {
    uint64_t ticket;
    std::vector<uint8_t> data;
    std::chrono::steady_clock::time_point ready_at;
  };

  /// Reaped submission buffers kept warm for reuse (registered-buffer
  /// style); bounded so an unusually large batch cannot pin memory.
  static constexpr size_t kBufferPoolEntries = 4;

  std::vector<uint8_t> bytes_;
  ColdTier cold_;
  uint64_t start_offset_ = 0;
  uint64_t last_append_size_ = 0;
  uint64_t reclaimed_bytes_ = 0;
  /// Lazy full-history view backing ArchiveContents() once segments have
  /// spilled (before that the hot window IS the history).
  mutable std::vector<uint8_t> archive_view_;
  mutable bool archive_view_valid_ = false;
  std::deque<StagedAppend> staged_;
  std::vector<std::vector<uint8_t>> buffer_pool_;
  bool archive_enabled_ = true;
  uint64_t next_ticket_ = 1;
  uint64_t append_latency_us_ = 0;
  IoStats* stats_;
  FaultInjector* faults_;
  Counter* reclaimed_counter_;  // log.device.reclaimed_bytes
};

/// \brief Everything that survives a crash: the stable object store, the
/// stable log, and the I/O counters.
///
/// An engine instance owns all volatile state (cache, write graph,
/// volatile log buffer); simulating a crash is simply destroying the
/// engine while the SimulatedDisk lives on, then constructing a new
/// engine over the same disk and running Recover().
class SimulatedDisk {
 public:
  SimulatedDisk()
      : store_(&stats_, &injector_), log_(&stats_, &injector_) {}

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  StableStore& store() { return store_; }
  const StableStore& store() const { return store_; }
  StableLogDevice& log() { return log_; }
  const StableLogDevice& log() const { return log_; }
  IoStats& stats() { return stats_; }
  const IoStats& stats() const { return stats_; }
  /// Fault sites live with the disk — armed faults, like the media, are
  /// unaffected by engine crashes.
  FaultInjector& fault_injector() { return injector_; }
  const FaultInjector& fault_injector() const { return injector_; }

 private:
  IoStats stats_;
  FaultInjector injector_;  // must outlive (so precede) store_ and log_
  StableStore store_;
  StableLogDevice log_;
};

}  // namespace loglog

#endif  // LOGLOG_STORAGE_SIMULATED_DISK_H_
