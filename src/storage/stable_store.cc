#include "storage/stable_store.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/crc32.h"

namespace loglog {

namespace {

bool IsErrorAction(FaultAction a) {
  return a == FaultAction::kTransientIoError ||
         a == FaultAction::kPermanentIoError;
}

}  // namespace

void StableStore::SimSleep(uint32_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Status StableStore::Read(ObjectId id, StoredObject* out) const {
  FaultFire fire =
      faults_ != nullptr ? faults_->Hit(fault::kStoreRead) : FaultFire{};
  if (IsErrorAction(fire.action) || fire.action == FaultAction::kCrashNow ||
      fire.action == FaultAction::kLostWrite) {
    return FaultInjector::ErrorStatus(fire.action, fault::kStoreRead);
  }
  SimSleep(sim_read_us_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object not in stable store");
  }
  ++stats_->object_reads;
  *out = it->second;
  if (fire.action == FaultAction::kBitFlip) {
    // In-flight read corruption: damage the returned copy, not the media.
    FaultInjector::FlipBit(fire.rng, &out->value);
  }
  if (Crc32c(Slice(out->value)) != out->crc) {
    return Status::Corruption("stable object " + std::to_string(id) +
                              " failed checksum verification");
  }
  return Status::OK();
}

Lsn StableStore::StableVsi(ObjectId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(id);
  return it == objects_.end() ? kInvalidLsn : it->second.vsi;
}

void StableStore::Install(ObjectId id, Slice value, Lsn vsi,
                          const FaultFire& fire) {
  StoredObject& obj = objects_[id];
  obj.value = value.ToBytes();
  obj.vsi = vsi;
  obj.crc = Crc32c(value);
  if (fire.action == FaultAction::kBitFlip) {
    // Media corruption: the bytes rot after the checksum was computed, so
    // the damage is silent until a checksum-verified read or the recovery
    // scrub meets it.
    FaultInjector::FlipBit(fire.rng, &obj.value);
  }
}

Status StableStore::Write(ObjectId id, Slice value, Lsn vsi) {
  FaultFire fire =
      faults_ != nullptr ? faults_->Hit(fault::kStoreWrite) : FaultFire{};
  if (IsErrorAction(fire.action)) {
    return FaultInjector::ErrorStatus(fire.action, fault::kStoreWrite);
  }
  SimSleep(sim_write_us_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  if (fire.action == FaultAction::kLostWrite) {
    // Acknowledged and billed like a normal write, but nothing persists.
    ++stats_->object_writes;
    stats_->object_bytes_written += value.size();
    return Status::OK();
  }
  Audit(id, vsi);
  ++stats_->object_writes;
  stats_->object_bytes_written += value.size();
  Install(id, value, vsi, fire);
  if (fire.action == FaultAction::kCrashNow ||
      fire.action == FaultAction::kTornWrite) {
    // Crash after the (atomic) write's stable side effects.
    return FaultInjector::ErrorStatus(FaultAction::kCrashNow,
                                      fault::kStoreWrite);
  }
  return Status::OK();
}

Status StableStore::WriteAtomic(const std::vector<ObjectWrite>& writes) {
  if (writes.empty()) return Status::OK();
  if (writes.size() == 1 && !shadow_mode_) {
    // A singleton set needs no multi-object machinery (and hits the
    // single-object fault site instead).
    const ObjectWrite& w = writes[0];
    return w.erase ? Erase(w.id) : Write(w.id, w.value, w.vsi);
  }
  FaultFire fire = faults_ != nullptr ? faults_->Hit(fault::kStoreWriteAtomic)
                                      : FaultFire{};
  if (IsErrorAction(fire.action)) {
    return FaultInjector::ErrorStatus(fire.action, fault::kStoreWriteAtomic);
  }
  SimSleep(sim_write_us_.load(std::memory_order_relaxed) *
           static_cast<uint32_t>(writes.size()));
  std::lock_guard<std::mutex> lock(mu_);
  if (fire.action == FaultAction::kLostWrite) {
    return Status::OK();  // the whole set is acknowledged but never lands
  }
  // A torn multi-object install persists only a strict prefix of the set
  // and then demands a crash. This deliberately violates the atomicity
  // the flush policies rely on — armed only to prove the verification
  // layers catch the damage.
  size_t applied = writes.size();
  if (fire.action == FaultAction::kTornWrite && writes.size() > 1) {
    applied = 1 + static_cast<size_t>(fire.rng % (writes.size() - 1));
  }
  for (size_t i = 0; i < applied; ++i) {
    if (!writes[i].erase) Audit(writes[i].id, writes[i].vsi);
  }
  if (shadow_mode_) {
    // Shadow propagation: each object is written out of place (one device
    // write and one relocation each), then a single pointer swing makes
    // the set current atomically.
    for (size_t i = 0; i < applied; ++i) {
      if (!writes[i].erase) {
        ++stats_->object_writes;
        stats_->object_bytes_written += writes[i].value.size();
        ++stats_->shadow_relocations;
      }
    }
    ++stats_->shadow_pointer_swings;
  } else {
    ++stats_->atomic_multi_writes;
    stats_->objects_in_atomic_writes += applied;
    for (size_t i = 0; i < applied; ++i) {
      if (!writes[i].erase) {
        stats_->object_bytes_written += writes[i].value.size();
      }
    }
  }
  // At most one object of the set takes the bit-flip damage.
  size_t flip_index =
      fire.action == FaultAction::kBitFlip ? fire.rng % applied : applied;
  for (size_t i = 0; i < applied; ++i) {
    const ObjectWrite& w = writes[i];
    if (w.erase) {
      objects_.erase(w.id);
    } else {
      Install(w.id, w.value, w.vsi,
              i == flip_index ? fire : FaultFire{});
    }
  }
  if (fire.action == FaultAction::kTornWrite) {
    return FaultInjector::ErrorStatus(FaultAction::kTornWrite,
                                      fault::kStoreWriteAtomic);
  }
  if (fire.action == FaultAction::kCrashNow) {
    return FaultInjector::ErrorStatus(FaultAction::kCrashNow,
                                      fault::kStoreWriteAtomic);
  }
  return Status::OK();
}

Status StableStore::Erase(ObjectId id) {
  FaultFire fire =
      faults_ != nullptr ? faults_->Hit(fault::kStoreWrite) : FaultFire{};
  if (IsErrorAction(fire.action)) {
    return FaultInjector::ErrorStatus(fire.action, fault::kStoreWrite);
  }
  SimSleep(sim_write_us_.load(std::memory_order_relaxed));
  std::lock_guard<std::mutex> lock(mu_);
  if (fire.action == FaultAction::kLostWrite) {
    ++stats_->object_writes;
    return Status::OK();
  }
  ++stats_->object_writes;
  objects_.erase(id);
  if (fire.action == FaultAction::kCrashNow ||
      fire.action == FaultAction::kTornWrite) {
    return FaultInjector::ErrorStatus(FaultAction::kCrashNow,
                                      fault::kStoreWrite);
  }
  return Status::OK();
}

std::vector<ObjectId> StableStore::CorruptObjects() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectId> out;
  for (const auto& [id, obj] : objects_) {
    if (Crc32c(Slice(obj.value)) != obj.crc) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void StableStore::ForEach(
    const std::function<void(ObjectId, const StoredObject&)>& fn) const {
  // Snapshot under the lock, call back outside it: the callback is free
  // to re-enter the store.
  std::vector<std::pair<ObjectId, StoredObject>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(objects_.size());
    for (const auto& [id, obj] : objects_) snapshot.emplace_back(id, obj);
  }
  for (const auto& [id, obj] : snapshot) {
    fn(id, obj);
  }
}

void StableStore::RestoreRaw(ObjectId id, ObjectValue value, Lsn vsi,
                             uint32_t crc) {
  std::lock_guard<std::mutex> lock(mu_);
  StoredObject& obj = objects_[id];
  obj.value = std::move(value);
  obj.vsi = vsi;
  obj.crc = crc;
}

}  // namespace loglog
