#include "storage/stable_store.h"

namespace loglog {

Status StableStore::Read(ObjectId id, StoredObject* out) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return Status::NotFound("object not in stable store");
  }
  ++stats_->object_reads;
  *out = it->second;
  return Status::OK();
}

Lsn StableStore::StableVsi(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? kInvalidLsn : it->second.vsi;
}

void StableStore::Write(ObjectId id, Slice value, Lsn vsi) {
  Audit(id, vsi);
  ++stats_->object_writes;
  stats_->object_bytes_written += value.size();
  StoredObject& obj = objects_[id];
  obj.value = value.ToBytes();
  obj.vsi = vsi;
}

void StableStore::WriteAtomic(const std::vector<ObjectWrite>& writes) {
  if (writes.empty()) return;
  for (const ObjectWrite& w : writes) {
    if (!w.erase) Audit(w.id, w.vsi);
  }
  if (writes.size() == 1 && !shadow_mode_) {
    // A singleton set needs no multi-object machinery.
    const ObjectWrite& w = writes[0];
    if (w.erase) {
      Erase(w.id);
    } else {
      Write(w.id, w.value, w.vsi);
    }
    return;
  }
  if (shadow_mode_) {
    // Shadow propagation: each object is written out of place (one device
    // write and one relocation each), then a single pointer swing makes
    // the set current atomically.
    for (const ObjectWrite& w : writes) {
      if (!w.erase) {
        ++stats_->object_writes;
        stats_->object_bytes_written += w.value.size();
        ++stats_->shadow_relocations;
      }
    }
    ++stats_->shadow_pointer_swings;
  } else {
    ++stats_->atomic_multi_writes;
    stats_->objects_in_atomic_writes += writes.size();
    for (const ObjectWrite& w : writes) {
      if (!w.erase) stats_->object_bytes_written += w.value.size();
    }
  }
  for (const ObjectWrite& w : writes) {
    if (w.erase) {
      objects_.erase(w.id);
    } else {
      StoredObject& obj = objects_[w.id];
      obj.value = w.value.ToBytes();
      obj.vsi = w.vsi;
    }
  }
}

void StableStore::Erase(ObjectId id) {
  ++stats_->object_writes;
  objects_.erase(id);
}

void StableStore::ForEach(
    const std::function<void(ObjectId, const StoredObject&)>& fn) const {
  for (const auto& [id, obj] : objects_) {
    fn(id, obj);
  }
}

}  // namespace loglog
