#ifndef LOGLOG_STORAGE_STABLE_STORE_H_
#define LOGLOG_STORAGE_STABLE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "fault/fault_injector.h"
#include "storage/io_stats.h"

namespace loglog {

/// A stable object as stored on disk: its value plus the state identifier
/// (vSI) of the last operation whose write of the object was flushed, plus
/// a CRC32c over the value so corrupted media reads surface as Corruption
/// instead of silently wrong data.
struct StoredObject {
  ObjectValue value;
  Lsn vsi = kInvalidLsn;
  uint32_t crc = 0;
};

/// One entry of an atomic multi-object write.
struct ObjectWrite {
  ObjectId id = kInvalidObjectId;
  Slice value;
  Lsn vsi = kInvalidLsn;
  /// When true the object is deleted from the stable store instead of
  /// written (installation of a delete operation).
  bool erase = false;
};

/// \brief The stable database: the part of system state that survives a
/// crash.
///
/// The paper's model needs exactly two properties from the disk: single
/// object writes are atomic, and (optionally, at a cost) a *set* of
/// objects can be written atomically — via shadows or flush transactions.
/// `WriteAtomic` provides the native multi-object primitive so that the
/// cache-manager policies that *avoid* it (identity writes, flush
/// transactions) can be compared against it; `shadow_mode` makes the
/// native primitive bill shadow-propagation costs (System R style).
///
/// Every entry point is a fault site (fault::kStoreRead / kStoreWrite /
/// kStoreWriteAtomic): the injector can fail, lose, tear or bit-flip the
/// I/O. All mutators therefore return Status; a non-OK write means the
/// store is exactly as if the write never happened (except kBitFlip and
/// kTornWrite, which deliberately persist damage for the recovery layers
/// to detect).
///
/// Thread-safe: parallel-REDO workers read and write disjoint objects
/// concurrently, so the map and the stats are guarded by an internal
/// mutex. The optional simulated device latency is slept *outside* that
/// mutex — concurrent callers overlap their waits exactly as independent
/// I/Os overlap on a real device, which is what parallel recovery's
/// wall-clock win models. ForEach snapshots under the lock and invokes
/// the callback outside it, so the callback may re-enter the store.
class StableStore {
 public:
  /// Audits every object write before it lands. Installed by test
  /// harnesses to enforce the WAL protocol: the writing code must have
  /// forced the log through the object's vSI first.
  using WriteValidator = std::function<Status(ObjectId id, Lsn vsi)>;

  StableStore(IoStats* stats, FaultInjector* faults)
      : stats_(stats), faults_(faults) {}

  StableStore(const StableStore&) = delete;
  StableStore& operator=(const StableStore&) = delete;

  /// Reads an object; NotFound if it does not exist. Counts one device
  /// read. Verifies the per-object checksum: on mismatch, fills *out with
  /// the (corrupt) bytes and returns Corruption — the caller never
  /// mistakes damaged media for good data.
  Status Read(ObjectId id, StoredObject* out) const;

  bool Exists(ObjectId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.contains(id);
  }

  /// Stable vSI of an object, or kInvalidLsn if absent. Does not count as
  /// a device read (SIs live in the object header the CM already holds).
  Lsn StableVsi(ObjectId id) const;

  /// Atomically writes a single object in place.
  Status Write(ObjectId id, Slice value, Lsn vsi);

  /// Atomically writes (or erases) a set of objects. With shadow_mode on,
  /// bills per-object out-of-place writes plus one pointer swing;
  /// otherwise bills one multi-object atomic write (idealized hardware).
  Status WriteAtomic(const std::vector<ObjectWrite>& writes);

  /// Removes an object (atomic single-object operation).
  Status Erase(ObjectId id);

  /// Checksum sweep: every object whose stored CRC no longer matches its
  /// value (ascending id order). Models the recovery scrubber; bills no
  /// I/O and bypasses fault sites.
  std::vector<ObjectId> CorruptObjects() const;

  /// Enables System R style shadow propagation accounting for WriteAtomic.
  void set_shadow_mode(bool on) { shadow_mode_ = on; }
  bool shadow_mode() const { return shadow_mode_; }

  /// Installs (or clears, with nullptr) the write auditor. Violations are
  /// sticky in audit_status() — the first failing write wins.
  void set_write_validator(WriteValidator validator) {
    validator_ = std::move(validator);
  }
  const Status& audit_status() const { return audit_status_; }

  size_t object_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.size();
  }

  /// Simulated per-I/O device latency in microseconds (0 = none, the
  /// default — no behavior change). Reads sleep `read_us`, single-object
  /// writes/erases sleep `write_us`, multi-object installs sleep
  /// `write_us` per object landed. The sleep happens outside the internal
  /// lock, so concurrent I/Os overlap.
  void set_sim_latency(uint32_t read_us, uint32_t write_us) {
    sim_read_us_ = read_us;
    sim_write_us_ = write_us;
  }

  /// Iterates all stable objects (verification only; no I/O billed, no
  /// checksum verification — raw bytes as the media holds them).
  void ForEach(
      const std::function<void(ObjectId, const StoredObject&)>& fn) const;

  /// Installs an object byte-for-byte as a saved disk image holds it —
  /// including its stored CRC, which may legitimately mismatch the value
  /// (saved media corruption must round-trip). Restoration only: bills no
  /// I/O, bypasses fault sites, validator and checksum computation.
  void RestoreRaw(ObjectId id, ObjectValue value, Lsn vsi, uint32_t crc);

 private:
  void Audit(ObjectId id, Lsn vsi) {
    if (validator_ && audit_status_.ok()) {
      Status st = validator_(id, vsi);
      if (!st.ok()) audit_status_ = st;
    }
  }
  /// Stores value/vsi/crc for one object, applying a pending bit-flip.
  /// Caller holds mu_.
  void Install(ObjectId id, Slice value, Lsn vsi, const FaultFire& fire);
  /// Sleeps the simulated device latency; called outside mu_.
  static void SimSleep(uint32_t micros);

  mutable std::mutex mu_;
  std::unordered_map<ObjectId, StoredObject> objects_;
  IoStats* stats_;
  FaultInjector* faults_;
  bool shadow_mode_ = false;
  std::atomic<uint32_t> sim_read_us_ = 0;
  std::atomic<uint32_t> sim_write_us_ = 0;
  WriteValidator validator_;
  Status audit_status_;
};

}  // namespace loglog

#endif  // LOGLOG_STORAGE_STABLE_STORE_H_
