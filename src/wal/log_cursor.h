#ifndef LOGLOG_WAL_LOG_CURSOR_H_
#define LOGLOG_WAL_LOG_CURSOR_H_

#include <cstdint>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/simulated_disk.h"
#include "wal/log_record.h"

namespace loglog {

/// \brief Incremental decoder over a framed log: the one walk every log
/// consumer shares.
///
/// LogManager's constructor, the recovery driver's analysis and redo
/// passes, and media recovery all need the same loop — decode framed
/// records in order, stop cleanly at a torn tail, and keep the
/// next-LSN / valid-byte bookkeeping consistent. Before this class each
/// of them hand-rolled the walk (and the constructor and ReadStable
/// disagreed in subtle ways on torn tails); now they all advance one
/// cursor, one record at a time, so recovery memory stays O(1) records
/// instead of materializing the whole log.
class LogCursor {
 public:
  /// Cursor over raw framed bytes whose first byte sits at absolute
  /// device offset `start_offset`.
  LogCursor(Slice contents, uint64_t start_offset)
      : contents_(contents),
        offset_(start_offset),
        record_offset_(start_offset) {}

  /// Cursor over a device's retained log.
  explicit LogCursor(const StableLogDevice& device)
      : LogCursor(device.Contents(), device.start_offset()) {}

  /// Decodes the next record into *rec. Returns false at the clean end
  /// of the log, at a torn tail (torn() becomes true), or on a decode
  /// error (status() becomes non-OK); the cursor never advances past the
  /// failure point, so valid_end() is the offset where trust ends.
  bool Next(LogRecord* rec) {
    if (done_) return false;
    Slice before = contents_;
    Status st = ReadFramedRecord(&contents_, rec);
    if (!st.ok()) {
      done_ = true;
      if (st.IsCorruption()) {
        // Torn tail: the final force did not complete. Everything before
        // it is valid; consumers proceed from what they have.
        torn_ = true;
      } else if (!st.IsNotFound()) {
        status_ = st;
      }
      return false;
    }
    record_offset_ = offset_;
    offset_ += before.size() - contents_.size();
    if (rec->lsn > max_lsn_) max_lsn_ = rec->lsn;
    ++records_read_;
    return true;
  }

  /// True once the cursor stopped because bytes remained but did not
  /// form a whole valid record (a torn final force).
  bool torn() const { return torn_; }

  /// Non-torn decode failure, if any (OK otherwise).
  const Status& status() const { return status_; }

  /// 1 + the highest LSN decoded so far (1 for an empty log): what the
  /// LSN counter must resume from.
  Lsn next_lsn() const { return max_lsn_ + 1; }

  /// Absolute device offset just past the last valid record (torn bytes,
  /// if any, begin here).
  uint64_t valid_end() const { return offset_; }

  /// Absolute device offset of the record most recently returned by
  /// Next().
  uint64_t record_offset() const { return record_offset_; }

  uint64_t records_read() const { return records_read_; }

 private:
  Slice contents_;
  uint64_t offset_;
  uint64_t record_offset_;
  Lsn max_lsn_ = 0;
  uint64_t records_read_ = 0;
  bool done_ = false;
  bool torn_ = false;
  Status status_;
};

}  // namespace loglog

#endif  // LOGLOG_WAL_LOG_CURSOR_H_
