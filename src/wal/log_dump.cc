#include "wal/log_dump.h"

#include <cstdio>

#include "obs/json.h"
#include "wal/log_record.h"

namespace loglog {

const char* LogDumpSummary::ClassName(int op_class) {
  switch (static_cast<OpClass>(op_class)) {
    case OpClass::kPhysical:
      return "physical";
    case OpClass::kPhysiological:
      return "physiological";
    case OpClass::kLogical:
      return "logical";
    case OpClass::kIdentityWrite:
      return "identity";
    case OpClass::kCreate:
      return "create";
    case OpClass::kDelete:
      return "delete";
  }
  return "?";
}

std::string LogDumpSummary::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "records=%llu ops=%llu(%llub) identity=%llu(%llub) ckpt=%llu(%llub) "
      "install=%llu(%llub) flush_txn=%llu+%llu(%llub) bytes=%llu",
      static_cast<unsigned long long>(total()),
      static_cast<unsigned long long>(operations),
      static_cast<unsigned long long>(operation_bytes),
      static_cast<unsigned long long>(identity_writes),
      static_cast<unsigned long long>(identity_write_bytes),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(checkpoint_bytes),
      static_cast<unsigned long long>(installs),
      static_cast<unsigned long long>(install_bytes),
      static_cast<unsigned long long>(flush_txn_begins),
      static_cast<unsigned long long>(flush_txn_commits),
      static_cast<unsigned long long>(flush_txn_bytes),
      static_cast<unsigned long long>(payload_bytes));
  std::string out = buf;
  if (txn_begins + txn_commits + txn_aborts + compensations > 0) {
    std::snprintf(buf, sizeof(buf),
                  " txn=%llu/%llu/%llu(%llub) clr=%llu(%llub)",
                  static_cast<unsigned long long>(txn_begins),
                  static_cast<unsigned long long>(txn_commits),
                  static_cast<unsigned long long>(txn_aborts),
                  static_cast<unsigned long long>(txn_marker_bytes),
                  static_cast<unsigned long long>(compensations),
                  static_cast<unsigned long long>(compensation_bytes));
    out += buf;
  }
  if (policy_decisions > 0) {
    std::snprintf(buf, sizeof(buf), " policy=%llu(%llub)",
                  static_cast<unsigned long long>(policy_decisions),
                  static_cast<unsigned long long>(policy_bytes));
    out += buf;
  }
  if (index_checkpoints > 0) {
    std::snprintf(buf, sizeof(buf), " index_ckpt=%llu(%llub)",
                  static_cast<unsigned long long>(index_checkpoints),
                  static_cast<unsigned long long>(index_checkpoint_bytes));
    out += buf;
  }
  if (torn_tail) {
    std::snprintf(buf, sizeof(buf), " torn_tail(after_lsn=%llu offset=%llu)",
                  static_cast<unsigned long long>(torn_tail_lsn),
                  static_cast<unsigned long long>(torn_tail_offset));
    out += buf;
  }
  return out;
}

std::string LogDumpSummary::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("records").Uint(total());
  w.Key("operations").Uint(operations);
  w.Key("operation_bytes").Uint(operation_bytes);
  w.Key("identity_writes").Uint(identity_writes);
  w.Key("identity_write_bytes").Uint(identity_write_bytes);
  w.Key("checkpoints").Uint(checkpoints);
  w.Key("checkpoint_bytes").Uint(checkpoint_bytes);
  w.Key("installs").Uint(installs);
  w.Key("install_bytes").Uint(install_bytes);
  w.Key("flush_txn_begins").Uint(flush_txn_begins);
  w.Key("flush_txn_commits").Uint(flush_txn_commits);
  w.Key("flush_txn_bytes").Uint(flush_txn_bytes);
  w.Key("policy_decisions").Uint(policy_decisions);
  w.Key("policy_bytes").Uint(policy_bytes);
  w.Key("txn_begins").Uint(txn_begins);
  w.Key("txn_commits").Uint(txn_commits);
  w.Key("txn_aborts").Uint(txn_aborts);
  w.Key("txn_abort_rate_pct").Double(abort_rate_pct());
  w.Key("txn_marker_bytes").Uint(txn_marker_bytes);
  w.Key("compensations").Uint(compensations);
  w.Key("compensation_bytes").Uint(compensation_bytes);
  w.Key("index_checkpoints").Uint(index_checkpoints);
  w.Key("index_checkpoint_bytes").Uint(index_checkpoint_bytes);
  w.Key("payload_bytes").Uint(payload_bytes);
  w.Key("class_mix");
  w.BeginObject();
  for (int c = 0; c < kNumClasses; ++c) {
    w.Key(ClassName(c));
    w.BeginObject();
    w.Key("count").Uint(class_counts[c]);
    w.Key("bytes").Uint(class_bytes[c]);
    const double pct = payload_bytes == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(class_bytes[c]) /
                                 static_cast<double>(payload_bytes);
    w.Key("pct").Double(pct);
    w.EndObject();
  }
  w.EndObject();
  w.Key("torn_tail").Bool(torn_tail);
  if (torn_tail) {
    w.Key("torn_tail_lsn").Uint(torn_tail_lsn);
    w.Key("torn_tail_offset").Uint(torn_tail_offset);
  }
  w.EndObject();
  return w.Take();
}

std::string LogDumpSummary::ClassMixToString() const {
  std::string out = "class mix (operation records, % of log payload):\n";
  char buf[128];
  for (int c = 0; c < kNumClasses; ++c) {
    if (class_counts[c] == 0) continue;
    const double pct = payload_bytes == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(class_bytes[c]) /
                                 static_cast<double>(payload_bytes);
    std::snprintf(buf, sizeof(buf), "  %-13s %8llu  %10llub  %5.1f%%\n",
                  ClassName(c),
                  static_cast<unsigned long long>(class_counts[c]),
                  static_cast<unsigned long long>(class_bytes[c]), pct);
    out += buf;
  }
  if (policy_decisions > 0) {
    const double pct = payload_bytes == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(policy_bytes) /
                                 static_cast<double>(payload_bytes);
    std::snprintf(buf, sizeof(buf), "  %-13s %8llu  %10llub  %5.1f%%\n",
                  "policy", static_cast<unsigned long long>(policy_decisions),
                  static_cast<unsigned long long>(policy_bytes), pct);
    out += buf;
  }
  if (compensations > 0) {
    const double pct = payload_bytes == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(compensation_bytes) /
                                 static_cast<double>(payload_bytes);
    std::snprintf(buf, sizeof(buf), "  %-13s %8llu  %10llub  %5.1f%%\n",
                  "compensation",
                  static_cast<unsigned long long>(compensations),
                  static_cast<unsigned long long>(compensation_bytes), pct);
    out += buf;
  }
  if (txn_begins + txn_commits + txn_aborts > 0) {
    std::snprintf(buf, sizeof(buf),
                  "transactions: begun=%llu committed=%llu aborted=%llu "
                  "abort_rate=%.1f%% marker_bytes=%llu\n",
                  static_cast<unsigned long long>(txn_begins),
                  static_cast<unsigned long long>(txn_commits),
                  static_cast<unsigned long long>(txn_aborts),
                  abort_rate_pct(),
                  static_cast<unsigned long long>(txn_marker_bytes));
    out += buf;
  }
  return out;
}

Status DumpLog(Slice log_bytes, std::string* out, LogDumpSummary* summary) {
  *summary = LogDumpSummary();
  const size_t total_bytes = log_bytes.size();
  Lsn last_valid_lsn = 0;
  while (true) {
    const uint64_t record_offset = total_bytes - log_bytes.size();
    LogRecord rec;
    Status st = ReadFramedRecord(&log_bytes, &rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) {
      summary->torn_tail = true;
      summary->torn_tail_lsn = last_valid_lsn;
      summary->torn_tail_offset = record_offset;
      if (out != nullptr) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "-- torn tail after lsn=%llu at offset=%llu\n",
                      static_cast<unsigned long long>(last_valid_lsn),
                      static_cast<unsigned long long>(record_offset));
        out->append(buf);
      }
      break;
    }
    LOGLOG_RETURN_IF_ERROR(st);
    const uint64_t encoded = rec.EncodedSize();
    switch (rec.type) {
      case RecordType::kOperation: {
        ++summary->operations;
        summary->operation_bytes += encoded;
        if (rec.op.op_class == OpClass::kIdentityWrite) {
          ++summary->identity_writes;
          summary->identity_write_bytes += encoded;
        }
        const int cls = static_cast<int>(rec.op.op_class);
        if (cls >= 0 && cls < LogDumpSummary::kNumClasses) {
          ++summary->class_counts[cls];
          summary->class_bytes[cls] += encoded;
        }
        break;
      }
      case RecordType::kCheckpoint:
        ++summary->checkpoints;
        summary->checkpoint_bytes += encoded;
        break;
      case RecordType::kInstall:
        ++summary->installs;
        summary->install_bytes += encoded;
        break;
      case RecordType::kFlushTxnBegin:
        ++summary->flush_txn_begins;
        summary->flush_txn_bytes += encoded;
        break;
      case RecordType::kFlushTxnCommit:
        ++summary->flush_txn_commits;
        summary->flush_txn_bytes += encoded;
        break;
      case RecordType::kPolicyDecision:
        ++summary->policy_decisions;
        summary->policy_bytes += encoded;
        break;
      case RecordType::kTxnBegin:
        ++summary->txn_begins;
        summary->txn_marker_bytes += encoded;
        break;
      case RecordType::kTxnCommit:
        ++summary->txn_commits;
        summary->txn_marker_bytes += encoded;
        break;
      case RecordType::kTxnAbort:
        ++summary->txn_aborts;
        summary->txn_marker_bytes += encoded;
        break;
      case RecordType::kCompensation:
        ++summary->compensations;
        summary->compensation_bytes += encoded;
        break;
      case RecordType::kIndexCheckpoint:
        ++summary->index_checkpoints;
        summary->index_checkpoint_bytes += encoded;
        break;
    }
    summary->payload_bytes += encoded;
    last_valid_lsn = rec.lsn;
    if (out != nullptr) {
      out->append(rec.DebugString());
      out->push_back('\n');
    }
  }
  return Status::OK();
}

}  // namespace loglog
