#include "wal/log_dump.h"

#include "wal/log_record.h"

namespace loglog {

Status DumpLog(Slice log_bytes, std::string* out, LogDumpSummary* summary) {
  *summary = LogDumpSummary();
  while (true) {
    LogRecord rec;
    Status st = ReadFramedRecord(&log_bytes, &rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) {
      summary->torn_tail = true;
      break;
    }
    LOGLOG_RETURN_IF_ERROR(st);
    switch (rec.type) {
      case RecordType::kOperation:
        ++summary->operations;
        break;
      case RecordType::kCheckpoint:
        ++summary->checkpoints;
        break;
      case RecordType::kInstall:
        ++summary->installs;
        break;
      case RecordType::kFlushTxnBegin:
        ++summary->flush_txn_begins;
        break;
      case RecordType::kFlushTxnCommit:
        ++summary->flush_txn_commits;
        break;
    }
    summary->payload_bytes += rec.EncodedSize();
    if (out != nullptr) {
      out->append(rec.DebugString());
      out->push_back('\n');
    }
  }
  return Status::OK();
}

}  // namespace loglog
