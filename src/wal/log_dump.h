#ifndef LOGLOG_WAL_LOG_DUMP_H_
#define LOGLOG_WAL_LOG_DUMP_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace loglog {

/// Per-record-type tallies of a log dump.
struct LogDumpSummary {
  uint64_t operations = 0;
  uint64_t checkpoints = 0;
  uint64_t installs = 0;
  uint64_t flush_txn_begins = 0;
  uint64_t flush_txn_commits = 0;
  uint64_t payload_bytes = 0;
  /// W_IP records among `operations` (Section 4's cache-management log
  /// traffic) and their payload bytes — the log volume the identity-write
  /// policy pays to avoid atomic flushes.
  uint64_t identity_writes = 0;
  uint64_t identity_write_bytes = 0;
  /// Encoded payload bytes by record type (same order of magnitude
  /// question as Section 4's "Comparing Costs": where does log volume go?).
  uint64_t operation_bytes = 0;
  uint64_t checkpoint_bytes = 0;
  uint64_t install_bytes = 0;
  uint64_t flush_txn_bytes = 0;
  /// Per-logging-class breakdown of the `operations` records, indexed by
  /// OpClass (W_P, W_PL, W_L, W_IP, create, delete) — the class mix the
  /// adaptive policy produced (`loglog_inspect --class-mix`).
  static constexpr int kNumClasses = 6;
  uint64_t class_counts[kNumClasses] = {};
  uint64_t class_bytes[kNumClasses] = {};
  /// kPolicyDecision control records and their payload bytes.
  uint64_t policy_decisions = 0;
  uint64_t policy_bytes = 0;
  /// Transaction markers (begin/commit/abort) and their payload bytes.
  uint64_t txn_begins = 0;
  uint64_t txn_commits = 0;
  uint64_t txn_aborts = 0;
  uint64_t txn_marker_bytes = 0;
  /// kCompensation (logical UNDO) records and their payload bytes — the
  /// log volume rollback pays.
  uint64_t compensations = 0;
  uint64_t compensation_bytes = 0;
  /// kIndexCheckpoint control records (log-as-database backend) and their
  /// payload bytes — what bounding logstore restart cost costs on the log.
  uint64_t index_checkpoints = 0;
  uint64_t index_checkpoint_bytes = 0;
  bool torn_tail = false;
  /// LSN of the last fully-valid record before the tear (0 when the tear
  /// precedes any valid record; meaningless unless torn_tail).
  Lsn torn_tail_lsn = 0;
  /// Byte offset into the dumped stream where the torn bytes begin
  /// (meaningless unless torn_tail).
  uint64_t torn_tail_offset = 0;

  uint64_t total() const {
    return operations + checkpoints + installs + flush_txn_begins +
           flush_txn_commits + policy_decisions + txn_begins + txn_commits +
           txn_aborts + compensations + index_checkpoints;
  }

  /// Aborted fraction of resolved transactions, in percent (0 when no
  /// transaction ever resolved).
  double abort_rate_pct() const {
    const uint64_t resolved = txn_commits + txn_aborts;
    return resolved == 0 ? 0.0
                         : 100.0 * static_cast<double>(txn_aborts) /
                               static_cast<double>(resolved);
  }

  /// Display name of an OpClass slot ("physical", "physiological", ...).
  static const char* ClassName(int op_class);

  std::string ToString() const;
  /// One flat JSON object, keys matching the ToString() fields, plus a
  /// "class_mix" sub-object with per-class {count, bytes, pct}.
  std::string ToJson() const;
  /// Multi-line per-class table (count, bytes, % of payload bytes) for
  /// `loglog_inspect --class-mix`.
  std::string ClassMixToString() const;
};

/// \brief Human-readable dump of a framed log byte stream — the
/// operational "what is on my log?" tool.
///
/// Appends one line per record to `out` (skipped when out == nullptr, so
/// the function doubles as a validating scan) and tallies a summary.
/// Stops cleanly at a torn tail, reporting where (offset) and after what
/// (LSN) the tear begins — both in the summary and, when out != nullptr,
/// as a trailing `-- torn tail ...` line.
Status DumpLog(Slice log_bytes, std::string* out, LogDumpSummary* summary);

}  // namespace loglog

#endif  // LOGLOG_WAL_LOG_DUMP_H_
