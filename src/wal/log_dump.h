#ifndef LOGLOG_WAL_LOG_DUMP_H_
#define LOGLOG_WAL_LOG_DUMP_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace loglog {

/// Per-record-type tallies of a log dump.
struct LogDumpSummary {
  uint64_t operations = 0;
  uint64_t checkpoints = 0;
  uint64_t installs = 0;
  uint64_t flush_txn_begins = 0;
  uint64_t flush_txn_commits = 0;
  uint64_t payload_bytes = 0;
  bool torn_tail = false;

  uint64_t total() const {
    return operations + checkpoints + installs + flush_txn_begins +
           flush_txn_commits;
  }
};

/// \brief Human-readable dump of a framed log byte stream — the
/// operational "what is on my log?" tool.
///
/// Appends one line per record to `out` (skipped when out == nullptr, so
/// the function doubles as a validating scan) and tallies a summary.
/// Stops cleanly at a torn tail.
Status DumpLog(Slice log_bytes, std::string* out, LogDumpSummary* summary);

}  // namespace loglog

#endif  // LOGLOG_WAL_LOG_DUMP_H_
