#include "wal/log_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "common/retry.h"
#include "fault/fault_injector.h"
#include "obs/trace.h"
#include "wal/log_cursor.h"

namespace loglog {

namespace {

/// Framing overhead per record: fixed32 length + fixed32 CRC32C.
constexpr size_t kFrameOverhead = 8;

const char* PolicyLabel(ForcePolicy policy) {
  switch (policy) {
    case ForcePolicy::kImmediate:
      return "immediate";
    case ForcePolicy::kGroup:
      return "group";
    case ForcePolicy::kSizeThreshold:
      return "size_threshold";
  }
  return "unknown";
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

LogManager::ForceInstruments& LogManager::instruments() {
  auto idx = static_cast<size_t>(force_policy_);
  assert(idx < 3);
  ForceInstruments& ins = force_instruments_[idx];
  if (ins.latency_us == nullptr) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    MetricLabels labels{{"policy", PolicyLabel(force_policy_)}};
    ins.latency_us = reg.GetHistogram(metric::kWalForceLatencyUs, labels);
    ins.batch_records =
        reg.GetHistogram(metric::kWalForceBatchRecords, labels);
    ins.records_coalesced =
        reg.GetCounter(metric::kWalRecordsCoalesced, labels);
  }
  return ins;
}

LogManager::LogManager(StableLogDevice* device) : device_(device) {
  // Index whatever valid records already sit on the device (recovery
  // case): record their offsets for truncation and continue the LSN
  // sequence past them. A torn tail is ignored here; the recovery driver
  // deals with it.
  LogCursor cursor(*device_);
  LogRecord rec;
  while (cursor.Next(&rec)) {
    stable_offsets_.emplace_back(rec.lsn, cursor.record_offset());
    if (rec.lsn > last_stable_lsn_) last_stable_lsn_ = rec.lsn;
  }
  next_lsn_ = std::max(next_lsn_, cursor.next_lsn());
}

Lsn LogManager::Append(LogRecord rec) {
  rec.lsn = next_lsn_++;
  buffer_.push_back(std::move(rec));
  if (append_records_ == nullptr) {
    append_records_ =
        MetricsRegistry::Global().GetCounter(metric::kWalAppendRecords);
  }
  append_records_->Inc();
  return buffer_.back().lsn;
}

Lsn LogManager::AppendReplicated(LogRecord rec) {
  assert(rec.lsn != kInvalidLsn);
  assert(rec.lsn >= next_lsn_);
  next_lsn_ = rec.lsn + 1;
  buffer_.push_back(std::move(rec));
  if (append_records_ == nullptr) {
    append_records_ =
        MetricsRegistry::Global().GetCounter(metric::kWalAppendRecords);
  }
  append_records_->Inc();
  return buffer_.back().lsn;
}

Status LogManager::Force(Lsn upto) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log manager poisoned by an earlier torn force; recovery required");
  }
  if (force_calls_ == nullptr) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    force_calls_ = reg.GetCounter(metric::kWalForceCalls);
    force_noops_ = reg.GetCounter(metric::kWalForceNoops);
  }
  force_calls_->Inc();
  if (buffer_.empty() || buffer_.front().lsn > upto) {
    force_noops_->Inc();
    return Status::OK();
  }
  const auto force_start = std::chrono::steady_clock::now();
  TraceSpan span("wal.force", "wal");
  // Decide how far this force reaches: at least through `upto`, extended
  // by the policy to coalesce pending obligations into one append.
  size_t count = 0;
  size_t batch_bytes = 0;
  uint64_t coalesced = 0;
  for (const LogRecord& rec : buffer_) {
    size_t framed = rec.EncodedSize() + kFrameOverhead;
    if (rec.lsn > upto) {
      if (force_policy_ == ForcePolicy::kImmediate) break;
      if (force_policy_ == ForcePolicy::kSizeThreshold &&
          batch_bytes + framed > group_bytes_) {
        break;
      }
      ++coalesced;
    }
    batch_bytes += framed;
    ++count;
  }
  // Frame without acknowledging: records stay buffered until the device
  // confirms the append, so a failed force leaves the WAL obligation
  // intact (nothing claims to be stable that is not). Offsets go straight
  // into the index (relative to the batch for now); a failed append rolls
  // them back below.
  std::vector<uint8_t> bytes;
  bytes.reserve(batch_bytes);
  const size_t index_base = stable_offsets_.size();
  size_t framed_count = 0;
  for (const LogRecord& rec : buffer_) {
    if (framed_count == count) break;
    stable_offsets_.emplace_back(rec.lsn, bytes.size());
    FrameRecord(rec, &bytes);
    ++framed_count;
  }
  uint64_t base = 0;
  Status st = RetryTransientIo(&device_->stats()->io_retries, [&] {
    if (FaultInjector* inj = device_->faults(); inj != nullptr) {
      LOGLOG_RETURN_IF_ERROR(inj->MaybeFail(fault::kLogForce));
    }
    return device_->Append(Slice(bytes), &base);
  });
  if (!st.ok()) {
    stable_offsets_.resize(index_base);  // nothing became stable
    if (!st.IsIoError()) {
      // Aborted (torn or crashed append): some unknown prefix of the
      // force is stable. Nothing is acked; the next recovery pass finds
      // the tear via the framing CRC.
      poisoned_ = true;
    }
    return st;
  }
  for (size_t i = index_base; i < stable_offsets_.size(); ++i) {
    stable_offsets_[i].second += base;
  }
  last_stable_lsn_ = std::max(last_stable_lsn_, stable_offsets_.back().first);
  records_coalesced_ += coalesced;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(count));
  ForceInstruments& ins = instruments();
  ins.latency_us->Observe(ElapsedUs(force_start));
  ins.batch_records->Observe(count);
  if (coalesced > 0) ins.records_coalesced->Inc(coalesced);
  span.AddArg("records", static_cast<uint64_t>(count));
  span.AddArg("bytes", static_cast<uint64_t>(batch_bytes));
  return Status::OK();
}

Status LogManager::ForceAll() {
  if (buffer_.empty()) return Status::OK();
  return Force(buffer_.back().lsn);
}

void LogManager::TruncateBefore(Lsn lsn) {
  auto it = std::lower_bound(
      stable_offsets_.begin(), stable_offsets_.end(), lsn,
      [](const std::pair<Lsn, uint64_t>& e, Lsn l) { return e.first < l; });
  if (it == stable_offsets_.begin()) return;
  uint64_t offset;
  if (it == stable_offsets_.end()) {
    // Everything stable precedes lsn; drop the whole stable log.
    offset = device_->end_offset();
  } else {
    offset = it->second;
  }
  device_->TruncatePrefix(offset);
  stable_offsets_.erase(stable_offsets_.begin(), it);
}

Status LogManager::ReadStable(const StableLogDevice& device,
                              std::vector<LogRecord>* out, bool* torn,
                              Lsn* next_lsn, uint64_t* valid_end) {
  out->clear();
  LogCursor cursor(device);
  LogRecord rec;
  while (cursor.Next(&rec)) {
    out->push_back(std::move(rec));
  }
  *torn = cursor.torn();
  *next_lsn = cursor.next_lsn();
  *valid_end = cursor.valid_end();
  return cursor.status();
}

}  // namespace loglog
