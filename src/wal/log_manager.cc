#include "wal/log_manager.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/retry.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/trace.h"
#include "wal/log_cursor.h"

namespace loglog {

namespace {

/// Framing overhead per record: fixed32 length + fixed32 CRC32C.
constexpr size_t kFrameOverhead = 8;
/// Arena sizing: start warm enough that steady-state appends never
/// allocate; compact the consumed prefix once it outgrows this.
constexpr size_t kInitialArenaBytes = 1 << 16;
constexpr size_t kCompactThresholdBytes = 1 << 18;

/// Per-thread sampling keeps the always-on flight recorder off the append
/// hot path: one kWalAppend event every kFlightSampleEvery appends,
/// carrying the record and byte counts accumulated since the last sample.
constexpr uint32_t kFlightSampleEvery = 64;

void RecordAppendSampled(Lsn lsn, size_t framed_size) {
  thread_local uint32_t pending_records = 0;
  thread_local uint64_t pending_bytes = 0;
  ++pending_records;
  pending_bytes += framed_size;
  if (pending_records < kFlightSampleEvery) return;
  FlightRecorder::Global().Record(FlightEventType::kWalAppend, lsn,
                                  pending_records, pending_bytes);
  pending_records = 0;
  pending_bytes = 0;
}

const char* PolicyLabel(ForcePolicy policy) {
  switch (policy) {
    case ForcePolicy::kImmediate:
      return "immediate";
    case ForcePolicy::kGroup:
      return "group";
    case ForcePolicy::kSizeThreshold:
      return "size_threshold";
  }
  return "unknown";
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

LogManager::ForceInstruments& LogManager::instruments() {
  auto idx = static_cast<size_t>(force_policy_);
  assert(idx < 3);
  ForceInstruments& ins = force_instruments_[idx];
  if (ins.latency_us == nullptr) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    MetricLabels labels{{"policy", PolicyLabel(force_policy_)}};
    ins.latency_us = reg.GetHistogram(metric::kWalForceLatencyUs, labels);
    ins.batch_records =
        reg.GetHistogram(metric::kWalForceBatchRecords, labels);
    ins.records_coalesced =
        reg.GetCounter(metric::kWalRecordsCoalesced, labels);
  }
  return ins;
}

LogManager::LogManager(StableLogDevice* device) : device_(device) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  force_calls_ = reg.GetCounter(metric::kWalForceCalls);
  force_noops_ = reg.GetCounter(metric::kWalForceNoops);
  force_submits_ = reg.GetCounter(metric::kWalForceSubmits);
  force_wait_us_ = reg.GetHistogram(metric::kWalForceWaitUs);
  append_records_ = reg.GetCounter(metric::kWalAppendRecords);
  append_bytes_ = reg.GetCounter(metric::kWalAppendBytes);
  append_allocs_ = reg.GetCounter(metric::kWalAppendAllocs);
  encoded_.resize(kInitialArenaBytes);  // one zero-fill, at construction
  // Index whatever valid records already sit on the device (recovery
  // case): record their offsets for truncation and continue the LSN
  // sequence past them. A torn tail is ignored here; the recovery driver
  // deals with it.
  LogCursor cursor(*device_);
  LogRecord rec;
  while (cursor.Next(&rec)) {
    stable_offsets_.emplace_back(rec.lsn, cursor.record_offset());
    if (rec.lsn > last_stable_lsn_) last_stable_lsn_ = rec.lsn;
  }
  next_lsn_ = std::max(next_lsn_, cursor.next_lsn());
}

void LogManager::EnsureArenaRoomLocked(std::unique_lock<std::mutex>& lock,
                                       size_t bytes) {
  if (arena_used_ + bytes <= encoded_.size()) return;
  // Growing reallocates, which would dangle every outstanding fill span;
  // wait for fills to drain first (commits are prompt by contract).
  fill_cv_.wait(lock, [&] { return outstanding_fills_ == 0; });
  MaybeCompactLocked();
  if (arena_used_ + bytes <= encoded_.size()) return;
  size_t want = std::max(encoded_.size() * 2, arena_used_ + bytes);
  encoded_.resize(std::max(want, kInitialArenaBytes));
  append_allocs_->Inc();
}

LogManager::PendingRecord* LogManager::ReserveFrameLocked(
    std::unique_lock<std::mutex>& lock, RecordType type, Lsn lsn,
    size_t body_size, uint8_t** body_out, uint8_t** frame_out) {
  const size_t payload_size = 1 + VarintLength(lsn) + body_size;
  const size_t framed_size = kFrameOverhead + payload_size;
  EnsureArenaRoomLocked(lock, framed_size);
  const size_t offset = arena_used_;
  arena_used_ += framed_size;  // within capacity: pure bookkeeping
  uint8_t* frame = encoded_.data() + offset;
  EncodeFixed32(frame, static_cast<uint32_t>(payload_size));
  // CRC (frame + 4) is patched at commit, once the body is filled.
  uint8_t* p = frame + kFrameOverhead;
  *p++ = static_cast<uint8_t>(type);
  p = EncodeVarint64(p, lsn);
  pending_.push_back(PendingRecord{lsn, offset,
                                   static_cast<uint32_t>(framed_size), false});
  append_records_->Inc();
  append_bytes_->Inc(framed_size);
  *body_out = p;
  *frame_out = frame;
  return &pending_.back();
}

void LogManager::OnFilledLocked(std::unique_lock<std::mutex>& lock) {
  while (fill_watermark_ < pending_.size() &&
         pending_[fill_watermark_].filled) {
    unsubmitted_filled_bytes_ += pending_[fill_watermark_].framed_size;
    ++fill_watermark_;
  }
  if (async_submit_bytes_ > 0 && !poisoned_ &&
      unsubmitted_filled_bytes_ >= async_submit_bytes_ &&
      fill_watermark_ > submitted_count_) {
    // Eager submission: stage what has accumulated so the device overlaps
    // with execution. Errors are not lost — a submit-time fault poisons
    // or re-arms below, and the next durability point surfaces it.
    (void)SubmitForceLocked(lock, pending_[fill_watermark_ - 1].lsn);
  }
}

void LogManager::AppendEncodedLocked(std::unique_lock<std::mutex>& lock,
                                     Lsn lsn,
                                     const std::vector<uint8_t>& payload) {
  const size_t framed_size = kFrameOverhead + payload.size();
  EnsureArenaRoomLocked(lock, framed_size);
  const size_t offset = arena_used_;
  arena_used_ += framed_size;
  uint8_t* frame = encoded_.data() + offset;
  EncodeFixed32(frame, static_cast<uint32_t>(payload.size()));
  EncodeFixed32(frame + 4, Crc32c(Slice(payload)));
  std::copy(payload.begin(), payload.end(), frame + kFrameOverhead);
  pending_.push_back(PendingRecord{lsn, offset,
                                   static_cast<uint32_t>(framed_size), true});
  append_records_->Inc();
  append_bytes_->Inc(framed_size);
  OnFilledLocked(lock);
  fill_cv_.notify_all();
}

Lsn LogManager::Append(LogRecord rec) {
  // Compatibility path: encode once into a reused scratch, then frame
  // into the arena. Same encoder as the zero-copy path, so the stable
  // bytes are identical either way.
  thread_local std::vector<uint8_t> scratch;
  std::unique_lock<std::mutex> lock(mu_);
  rec.lsn = next_lsn_++;
  scratch.clear();
  rec.EncodeTo(&scratch);
  AppendEncodedLocked(lock, rec.lsn, scratch);
  lock.unlock();
  RecordAppendSampled(rec.lsn, kFrameOverhead + scratch.size());
  return rec.lsn;
}

Lsn LogManager::AppendReplicated(LogRecord rec) {
  thread_local std::vector<uint8_t> scratch;
  std::unique_lock<std::mutex> lock(mu_);
  assert(rec.lsn != kInvalidLsn);
  assert(rec.lsn >= next_lsn_);
  next_lsn_ = rec.lsn + 1;
  scratch.clear();
  rec.EncodeTo(&scratch);
  AppendEncodedLocked(lock, rec.lsn, scratch);
  lock.unlock();
  RecordAppendSampled(rec.lsn, kFrameOverhead + scratch.size());
  return rec.lsn;
}

LogManager::Reservation LogManager::AppendReserve(RecordType type,
                                                  size_t body_size) {
  std::unique_lock<std::mutex> lock(mu_);
  Lsn lsn = next_lsn_++;
  Reservation r;
  r.lsn = lsn;
  r.body_size = body_size;
  r.payload_size = 1 + VarintLength(lsn) + body_size;
  r.entry = ReserveFrameLocked(lock, type, lsn, body_size, &r.body, &r.frame);
  ++outstanding_fills_;
  return r;
}

void LogManager::AppendCommit(const Reservation& r) {
  // Checksum and header patch run outside the lock: the span is
  // exclusively this fill's until published, and the arena cannot move
  // while a fill is outstanding.
  EncodeFixed32(r.frame + 4,
                Crc32c(Slice(r.frame + kFrameOverhead, r.payload_size)));
  std::unique_lock<std::mutex> lock(mu_);
  static_cast<PendingRecord*>(r.entry)->filled = true;
  --outstanding_fills_;
  OnFilledLocked(lock);
  fill_cv_.notify_all();
  lock.unlock();
  RecordAppendSampled(r.lsn, kFrameOverhead + r.payload_size);
}

Lsn LogManager::AppendOperation(const OperationDesc& op, uint64_t txn_id,
                                Lsn prev_lsn,
                                const std::vector<UndoImage>& undo_images,
                                size_t* payload_size) {
  Reservation r = AppendReserve(
      RecordType::kOperation,
      EncodedOperationBodySize(op, txn_id, prev_lsn, undo_images));
  uint8_t* end = EncodeOperationBody(r.body, op, txn_id, prev_lsn,
                                     undo_images);
  assert(end == r.body + r.body_size);
  (void)end;
  AppendCommit(r);
  if (payload_size != nullptr) *payload_size = r.payload_size;
  return r.lsn;
}

Lsn LogManager::AppendTxnMarker(RecordType type, uint64_t txn_id,
                                Lsn prev_lsn, size_t* payload_size) {
  assert(type == RecordType::kTxnBegin || type == RecordType::kTxnCommit ||
         type == RecordType::kTxnAbort);
  Reservation r =
      AppendReserve(type, EncodedTxnMarkerBodySize(txn_id, prev_lsn));
  uint8_t* end = EncodeTxnMarkerBody(r.body, txn_id, prev_lsn);
  assert(end == r.body + r.body_size);
  (void)end;
  AppendCommit(r);
  if (payload_size != nullptr) *payload_size = r.payload_size;
  return r.lsn;
}

Lsn LogManager::AppendCompensation(const OperationDesc& op, uint64_t txn_id,
                                   Lsn prev_lsn, Lsn undo_next_lsn,
                                   uint64_t undo_skip, size_t* payload_size) {
  Reservation r = AppendReserve(
      RecordType::kCompensation,
      EncodedCompensationBodySize(op, txn_id, prev_lsn, undo_next_lsn,
                                  undo_skip));
  uint8_t* end = EncodeCompensationBody(r.body, op, txn_id, prev_lsn,
                                        undo_next_lsn, undo_skip);
  assert(end == r.body + r.body_size);
  (void)end;
  AppendCommit(r);
  if (payload_size != nullptr) *payload_size = r.payload_size;
  return r.lsn;
}

Status LogManager::SubmitForceLocked(std::unique_lock<std::mutex>& lock,
                                     Lsn upto) {
  for (;;) {
    if (submitted_count_ >= pending_.size() ||
        pending_[submitted_count_].lsn > upto) {
      // Everything through upto is stable, staged, or absent.
      return Status::OK();
    }
    if (fill_watermark_ > submitted_count_) break;
    // The next record this force needs is reserved but not committed;
    // its filler is running outside the lock. Wait for the commit.
    fill_cv_.wait(lock);
  }
  // Policy walk over the committed, unsubmitted prefix: at least through
  // `upto`, extended by the policy to coalesce pending obligations into
  // one device append.
  size_t count = 0;
  size_t batch_bytes = 0;
  uint64_t coalesced = 0;
  for (size_t i = submitted_count_; i < fill_watermark_; ++i) {
    const PendingRecord& pr = pending_[i];
    if (pr.lsn > upto) {
      if (force_policy_ == ForcePolicy::kImmediate) break;
      if (force_policy_ == ForcePolicy::kSizeThreshold &&
          batch_bytes + pr.framed_size > group_bytes_) {
        break;
      }
      ++coalesced;
    }
    batch_bytes += pr.framed_size;
    ++count;
  }
  assert(count > 0);
  // The controller-level force fault fires at submit; the device-level
  // kLogAppend site fires at completion (reap), like a real command that
  // can fail either on the way to the device or on the platter.
  if (FaultInjector* inj = device_->faults(); inj != nullptr) {
    Status st = RetryTransientIo(&device_->stats()->io_retries, [&] {
      return inj->MaybeFail(fault::kLogForce);
    });
    if (!st.ok()) {
      if (!st.IsIoError()) {
        poisoned_ = true;
        FlightRecorder::Global().Record(FlightEventType::kWalPoisoned,
                                        last_stable_lsn_);
        HealthRegistry::Global().Set(health::kWalDevice,
                                     HealthState::kFailing,
                                     "force submit poisoned the log");
      }
      return st;
    }
  }
  InFlightForce f;
  f.arena_offset = pending_[submitted_count_].arena_offset;
  f.bytes = batch_bytes;
  f.count = count;
  f.first_lsn = pending_[submitted_count_].lsn;
  f.last_lsn = pending_[submitted_count_ + count - 1].lsn;
  f.coalesced = coalesced;
  f.submit_time = std::chrono::steady_clock::now();
  f.ticket = device_->SubmitAppend(
      Slice(encoded_.data() + f.arena_offset, batch_bytes));
  in_flight_.push_back(f);
  submitted_count_ += count;
  unsubmitted_filled_bytes_ -= batch_bytes;
  force_submits_->Inc();
  return Status::OK();
}

Status LogManager::WaitStableLocked(std::unique_lock<std::mutex>& lock,
                                    Lsn upto) {
  (void)lock;
  const auto wait_start = std::chrono::steady_clock::now();
  bool reaped = false;
  uint64_t batches = 0;
  while (last_stable_lsn_ < upto && !in_flight_.empty() &&
         in_flight_.front().first_lsn <= upto) {
    const InFlightForce f = in_flight_.front();
    uint64_t base = 0;
    Status st = RetryTransientIo(&device_->stats()->io_retries, [&] {
      // A retryable failure leaves the entry staged, so the retry is
      // simply another reap of the same ticket.
      return device_->ReapAppend(f.ticket, &base);
    });
    if (!st.ok()) {
      // Give up: nothing staged is trustworthy any more. Return every
      // staged force to the unsubmitted state so a later Force can
      // re-stage it from the arena (the records were never acked, so the
      // WAL obligation is intact). A torn/crashed completion (Aborted)
      // additionally poisons the manager: some unknown prefix became
      // stable and only recovery can resolve the tail.
      device_->AbandonStaged();
      for (const InFlightForce& g : in_flight_) {
        submitted_count_ -= g.count;
        unsubmitted_filled_bytes_ += g.bytes;
      }
      in_flight_.clear();
      if (!st.IsIoError()) {
        poisoned_ = true;
        FlightRecorder::Global().Record(FlightEventType::kWalPoisoned,
                                        last_stable_lsn_);
        HealthRegistry::Global().Set(health::kWalDevice,
                                     HealthState::kFailing,
                                     "torn or crashed force completion");
      }
      return st;
    }
    // Acknowledge the batch: device offsets, stability watermark, drain.
    for (size_t i = 0; i < f.count; ++i) {
      const PendingRecord& pr = pending_[i];
      stable_offsets_.emplace_back(pr.lsn,
                                   base + (pr.arena_offset - f.arena_offset));
    }
    last_stable_lsn_ = std::max(last_stable_lsn_, f.last_lsn);
    records_coalesced_ += f.coalesced;
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<long>(f.count));
    submitted_count_ -= f.count;
    fill_watermark_ -= f.count;
    arena_consumed_ = f.arena_offset + f.bytes;
    in_flight_.pop_front();
    ForceInstruments& ins = instruments();
    ins.latency_us->Observe(ElapsedUs(f.submit_time));
    ins.batch_records->Observe(f.count);
    if (f.coalesced > 0) ins.records_coalesced->Inc(f.coalesced);
    reaped = true;
    ++batches;
    MaybeCompactLocked();
  }
  if (reaped) {
    const uint64_t waited = ElapsedUs(wait_start);
    force_wait_us_->Observe(waited);
    FlightRecorder::Global().Record(FlightEventType::kWalForce,
                                    last_stable_lsn_, waited, batches);
    HealthRegistry::Global().Set(health::kWalDevice, HealthState::kOk);
  }
  return Status::OK();
}

void LogManager::MaybeCompactLocked() {
  if (!in_flight_.empty()) return;  // staged ranges reference the arena
  if (pending_.empty()) {
    arena_used_ = 0;  // capacity retained: steady state never reallocates
    arena_consumed_ = 0;
    return;
  }
  if (outstanding_fills_ != 0) return;  // fill spans would shift
  if (arena_consumed_ < kCompactThresholdBytes) return;
  std::memmove(encoded_.data(), encoded_.data() + arena_consumed_,
               arena_used_ - arena_consumed_);
  arena_used_ -= arena_consumed_;
  for (PendingRecord& pr : pending_) pr.arena_offset -= arena_consumed_;
  arena_consumed_ = 0;
}

Status LogManager::Force(Lsn upto) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log manager poisoned by an earlier torn force; recovery required");
  }
  force_calls_->Inc();
  if (pending_.empty() || pending_.front().lsn > upto) {
    force_noops_->Inc();
    return Status::OK();
  }
  TraceSpan span("wal.force", "wal");
  // Loop: a submit may cover less than upto when later records are still
  // being filled by another thread; submit again after the reap.
  do {
    LOGLOG_RETURN_IF_ERROR(SubmitForceLocked(lock, upto));
    LOGLOG_RETURN_IF_ERROR(WaitStableLocked(lock, upto));
  } while (last_stable_lsn_ < upto && !pending_.empty() &&
           pending_.front().lsn <= upto);
  return Status::OK();
}

Status LogManager::ForceAll() {
  Lsn target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::OK();
    target = pending_.back().lsn;
  }
  return Force(target);
}

Status LogManager::SubmitForce(Lsn upto) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log manager poisoned by an earlier torn force; recovery required");
  }
  if (pending_.empty() || pending_.front().lsn > upto) return Status::OK();
  return SubmitForceLocked(lock, upto);
}

Status LogManager::WaitStable(Lsn upto) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log manager poisoned by an earlier torn force; recovery required");
  }
  return WaitStableLocked(lock, upto);
}

void LogManager::TruncateBefore(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      stable_offsets_.begin(), stable_offsets_.end(), lsn,
      [](const std::pair<Lsn, uint64_t>& e, Lsn l) { return e.first < l; });
  if (it == stable_offsets_.begin()) return;
  uint64_t offset;
  if (it == stable_offsets_.end()) {
    // Everything stable precedes lsn; drop the whole stable log.
    offset = device_->end_offset();
  } else {
    offset = it->second;
  }
  device_->TruncatePrefix(offset);
  stable_offsets_.erase(stable_offsets_.begin(), it);
}

bool LogManager::StableExtentOf(Lsn lsn, uint64_t* offset,
                                uint64_t* size) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(
      stable_offsets_.begin(), stable_offsets_.end(), lsn,
      [](const std::pair<Lsn, uint64_t>& e, Lsn l) { return e.first < l; });
  if (it == stable_offsets_.end() || it->first != lsn) return false;
  *offset = it->second;
  auto next = it + 1;
  // Frames are dense on the device, so the extent runs to the next stable
  // record (or the device end for the newest one).
  *size = (next != stable_offsets_.end() ? next->second
                                         : device_->end_offset()) -
          it->second;
  return true;
}

Status LogManager::ReadStable(const StableLogDevice& device,
                              std::vector<LogRecord>* out, bool* torn,
                              Lsn* next_lsn, uint64_t* valid_end) {
  out->clear();
  LogCursor cursor(device);
  LogRecord rec;
  while (cursor.Next(&rec)) {
    out->push_back(std::move(rec));
  }
  *torn = cursor.torn();
  *next_lsn = cursor.next_lsn();
  *valid_end = cursor.valid_end();
  return cursor.status();
}

}  // namespace loglog
