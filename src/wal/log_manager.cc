#include "wal/log_manager.h"

#include <algorithm>
#include <cassert>

#include "common/retry.h"
#include "fault/fault_injector.h"

namespace loglog {

LogManager::LogManager(StableLogDevice* device) : device_(device) {
  // Index whatever valid records already sit on the device (recovery
  // case): record their offsets for truncation and continue the LSN
  // sequence past them. A torn tail is ignored here; the recovery driver
  // deals with it.
  Slice contents = device_->Contents();
  uint64_t offset = device_->start_offset();
  while (true) {
    Slice before = contents;
    LogRecord rec;
    Status st = ReadFramedRecord(&contents, &rec);
    if (!st.ok()) break;
    stable_offsets_[rec.lsn] = offset;
    offset += before.size() - contents.size();
    last_stable_lsn_ = std::max(last_stable_lsn_, rec.lsn);
    next_lsn_ = std::max(next_lsn_, rec.lsn + 1);
  }
}

Lsn LogManager::Append(LogRecord rec) {
  rec.lsn = next_lsn_++;
  buffer_.push_back(std::move(rec));
  return buffer_.back().lsn;
}

Status LogManager::Force(Lsn upto) {
  if (poisoned_) {
    return Status::FailedPrecondition(
        "log manager poisoned by an earlier torn force; recovery required");
  }
  if (buffer_.empty() || buffer_.front().lsn > upto) return Status::OK();
  // Frame without acknowledging: records stay buffered until the device
  // confirms the append, so a failed force leaves the WAL obligation
  // intact (nothing claims to be stable that is not).
  std::vector<uint8_t> bytes;
  std::vector<std::pair<Lsn, uint64_t>> offsets;
  size_t count = 0;
  for (const LogRecord& rec : buffer_) {
    if (rec.lsn > upto) break;
    offsets.emplace_back(rec.lsn, bytes.size());
    FrameRecord(rec, &bytes);
    ++count;
  }
  uint64_t base = 0;
  Status st = RetryTransientIo(&device_->stats()->io_retries, [&] {
    if (FaultInjector* inj = device_->faults(); inj != nullptr) {
      LOGLOG_RETURN_IF_ERROR(inj->MaybeFail(fault::kLogForce));
    }
    return device_->Append(Slice(bytes), &base);
  });
  if (!st.ok()) {
    if (!st.IsIoError()) {
      // Aborted (torn or crashed append): some unknown prefix of the
      // force is stable. Nothing is acked; the next recovery pass finds
      // the tear via the framing CRC.
      poisoned_ = true;
    }
    return st;
  }
  for (const auto& [lsn, rel] : offsets) {
    stable_offsets_[lsn] = base + rel;
    last_stable_lsn_ = std::max(last_stable_lsn_, lsn);
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<long>(count));
  return Status::OK();
}

Status LogManager::ForceAll() {
  if (buffer_.empty()) return Status::OK();
  return Force(buffer_.back().lsn);
}

void LogManager::TruncateBefore(Lsn lsn) {
  auto it = stable_offsets_.lower_bound(lsn);
  if (it == stable_offsets_.begin()) return;
  uint64_t offset;
  if (it == stable_offsets_.end()) {
    // Everything stable precedes lsn; drop the whole stable log.
    offset = device_->end_offset();
  } else {
    offset = it->second;
  }
  device_->TruncatePrefix(offset);
  stable_offsets_.erase(stable_offsets_.begin(), it);
}

Status LogManager::ReadStable(const StableLogDevice& device,
                              std::vector<LogRecord>* out, bool* torn,
                              Lsn* next_lsn, uint64_t* valid_end) {
  out->clear();
  *torn = false;
  Lsn max_lsn = 0;
  Slice contents = device.Contents();
  uint64_t offset = device.start_offset();
  while (true) {
    Slice before = contents;
    LogRecord rec;
    Status st = ReadFramedRecord(&contents, &rec);
    if (st.IsNotFound()) break;  // clean end of log
    if (st.IsCorruption()) {
      // Torn tail: the final force did not complete. Everything before it
      // is valid; recovery proceeds from what we have.
      *torn = true;
      break;
    }
    LOGLOG_RETURN_IF_ERROR(st);
    offset += before.size() - contents.size();
    max_lsn = std::max(max_lsn, rec.lsn);
    out->push_back(std::move(rec));
  }
  *next_lsn = max_lsn + 1;
  *valid_end = offset;
  return Status::OK();
}

}  // namespace loglog
