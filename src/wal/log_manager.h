#ifndef LOGLOG_WAL_LOG_MANAGER_H_
#define LOGLOG_WAL_LOG_MANAGER_H_

#include <deque>
#include <utility>
#include <vector>

#include "cache/policies.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/simulated_disk.h"
#include "wal/log_record.h"

namespace loglog {

/// \brief The write-ahead log: volatile buffer in front of the stable log
/// device.
///
/// Appends go to a volatile buffer (lost in a crash); Force(lsn) makes all
/// records up to lsn stable, which is the WAL obligation the cache manager
/// discharges before flushing objects. LSNs are assigned densely starting
/// from 1 (or from wherever a recovered log left off) and double as state
/// identifiers (lSI / vSI / rSI).
///
/// The ForcePolicy decides how much of the buffer one Force call pushes:
/// kImmediate appends exactly the requested prefix; kGroup appends the
/// whole buffer so one device append discharges every pending obligation
/// (group commit — later forces for the coalesced records are no-ops);
/// kSizeThreshold extends past the request only while the batch stays
/// under a byte budget. Forcing more than asked is always WAL-safe:
/// stability is monotone.
class LogManager {
 public:
  explicit LogManager(StableLogDevice* device);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends a record to the volatile buffer, assigning and returning its
  /// LSN (rec.lsn is overwritten).
  Lsn Append(LogRecord rec);

  /// Standby-side append: keeps the record's primary-assigned LSN instead
  /// of assigning a fresh one, and resumes the counter at lsn + 1 so the
  /// standby's state identifiers stay equal to the primary's. Records
  /// must arrive in ascending LSN order past everything already appended
  /// (the log shipper delivers the primary's log order, and the applier's
  /// watermark filters duplicates before they reach here).
  Lsn AppendReplicated(LogRecord rec);

  /// Forces all buffered records with lsn <= upto to the stable device
  /// (one device force), plus whatever extra the ForcePolicy coalesces
  /// in. No-op if they are already stable. Records are acknowledged
  /// (last_stable_lsn advances, the buffer drains) only when the device
  /// confirms the append; transient device errors are retried a bounded
  /// number of times, and a torn append (Aborted) poisons the manager —
  /// the system must crash and recover, since the device tail no longer
  /// matches the volatile state.
  Status Force(Lsn upto);

  /// Forces the entire volatile buffer.
  Status ForceAll();

  /// Selects how Force batches obligations onto device appends.
  /// `group_bytes` is the batch budget for kSizeThreshold (ignored by
  /// the other policies).
  void set_force_policy(ForcePolicy policy, size_t group_bytes = 1 << 16) {
    force_policy_ = policy;
    group_bytes_ = group_bytes;
  }
  ForcePolicy force_policy() const { return force_policy_; }

  /// Records made stable beyond what their Force call asked for (the
  /// group-commit coalescing win; 0 under kImmediate).
  uint64_t records_coalesced() const { return records_coalesced_; }

  /// Highest LSN that is stable (0 if none).
  Lsn last_stable_lsn() const { return last_stable_lsn_; }
  /// Highest LSN assigned (stable or volatile).
  Lsn last_assigned_lsn() const { return next_lsn_ - 1; }
  size_t volatile_record_count() const { return buffer_.size(); }

  /// Truncates the stable log prefix strictly before `lsn` (the record
  /// with LSN `lsn` is retained). Used after checkpoints: `lsn` must be
  /// the minimum rSI over the dirty object table (every uninstalled
  /// operation is at or after it).
  void TruncateBefore(Lsn lsn);

  /// Re-seeds the LSN counter after recovery scanned an existing log.
  void SetNextLsn(Lsn next) { next_lsn_ = next; }

  /// Decodes every stable record in order (via LogCursor — prefer the
  /// cursor directly when the log may be large; this materializes it).
  /// Stops cleanly at a torn tail (sets *torn). Returns the records, via
  /// *next_lsn 1 + the highest LSN seen (or 1 for an empty log), and via
  /// *valid_end the absolute device offset just past the last valid
  /// record (torn bytes begin there).
  static Status ReadStable(const StableLogDevice& device,
                           std::vector<LogRecord>* out, bool* torn,
                           Lsn* next_lsn, uint64_t* valid_end);

 private:
  /// Per-ForcePolicy instruments (latency + batch-size histograms carry a
  /// policy label so group-commit shapes stay separable in one snapshot).
  /// Registry pointers are fetched once per policy and cached, keeping
  /// the per-Force cost to two clock reads and two histogram locks.
  struct ForceInstruments {
    HistogramMetric* latency_us = nullptr;
    HistogramMetric* batch_records = nullptr;
    Counter* records_coalesced = nullptr;
  };
  ForceInstruments& instruments();

  StableLogDevice* device_;
  std::deque<LogRecord> buffer_;  // volatile records, ascending lsn
  Lsn next_lsn_ = 1;
  Lsn last_stable_lsn_ = 0;
  ForcePolicy force_policy_ = ForcePolicy::kImmediate;
  size_t group_bytes_ = 1 << 16;
  uint64_t records_coalesced_ = 0;
  /// Set when a force tore or crashed mid-append: the stable tail is no
  /// longer coherent with this manager's view, so every further Force is
  /// refused until recovery rebuilds the log state.
  bool poisoned_ = false;
  /// Lazily-filled instrument cache, one slot per ForcePolicy value.
  ForceInstruments force_instruments_[3];
  Counter* force_calls_ = nullptr;
  Counter* force_noops_ = nullptr;
  Counter* append_records_ = nullptr;
  /// Byte offset on the device of each stable record. Appends arrive in
  /// ascending LSN order and truncation only drops a prefix, so the
  /// vector is always sorted by LSN — binary search replaces the old
  /// std::map without its per-node allocations.
  std::vector<std::pair<Lsn, uint64_t>> stable_offsets_;
};

}  // namespace loglog

#endif  // LOGLOG_WAL_LOG_MANAGER_H_
