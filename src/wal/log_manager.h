#ifndef LOGLOG_WAL_LOG_MANAGER_H_
#define LOGLOG_WAL_LOG_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "cache/policies.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "storage/simulated_disk.h"
#include "wal/log_record.h"

namespace loglog {

/// \brief The write-ahead log: volatile buffer in front of the stable log
/// device.
///
/// Appends go to a volatile buffer (lost in a crash); Force(lsn) makes all
/// records up to lsn stable, which is the WAL obligation the cache manager
/// discharges before flushing objects. LSNs are assigned densely starting
/// from 1 (or from wherever a recovered log left off) and double as state
/// identifiers (lSI / vSI / rSI).
///
/// Hot path layout: the volatile buffer is a single byte arena holding
/// already-framed records ([fixed32 len][fixed32 crc][payload], dense).
/// Appends encode directly into the arena — no intermediate LogRecord
/// buffering, no per-record heap allocation once the arena is warm. Two
/// append flavors:
///  - Append(LogRecord): compatibility wrapper; encodes the record
///    straight into the arena under the manager lock.
///  - AppendReserve/AppendCommit (and the typed AppendOperation /
///    AppendTxnMarker / AppendCompensation built on them): reserve an
///    exactly-sized span under the lock, fill and checksum it outside
///    the lock, commit. This is the zero-copy multi-producer path.
/// Both produce byte-identical frames (same encoders, same CRC).
///
/// Forces are an io_uring-style submit/reap pair: SubmitForce stages a
/// batch on the device completion queue and returns; WaitStable reaps at
/// the durability point, so simulated device latency overlaps with
/// execution. Force = SubmitForce + WaitStable keeps the old blocking
/// contract. set_async_submit(n) makes appends auto-submit whenever n
/// unsubmitted bytes accumulate, which is where the overlap win comes
/// from without touching call sites.
///
/// The ForcePolicy decides how much of the buffer one force pushes:
/// kImmediate appends exactly the requested prefix; kGroup appends the
/// whole buffer so one device append discharges every pending obligation
/// (group commit — later forces for the coalesced records are no-ops);
/// kSizeThreshold extends past the request only while the batch stays
/// under a byte budget. Forcing more than asked is always WAL-safe:
/// stability is monotone.
///
/// All public methods are thread-safe.
class LogManager {
 public:
  explicit LogManager(StableLogDevice* device);

  /// Submitted-but-unreaped forces are volatile (the completion queue is
  /// host memory): they die with the manager, exactly like the buffer. A
  /// crash between submit and reap therefore loses the whole submission.
  ~LogManager() { device_->AbandonStaged(); }

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends a record to the volatile buffer, assigning and returning its
  /// LSN (rec.lsn is overwritten).
  Lsn Append(LogRecord rec);

  /// Standby-side append: keeps the record's primary-assigned LSN instead
  /// of assigning a fresh one, and resumes the counter at lsn + 1 so the
  /// standby's state identifiers stay equal to the primary's. Records
  /// must arrive in ascending LSN order past everything already appended
  /// (the log shipper delivers the primary's log order, and the applier's
  /// watermark filters duplicates before they reach here).
  Lsn AppendReplicated(LogRecord rec);

  /// A reserved, not-yet-committed record slot in the arena. The manager
  /// has already written the frame length, the record type, and the LSN;
  /// the caller fills exactly [body, body + body_size) and commits.
  /// `payload_size` is the full record payload (type + lsn + body), i.e.
  /// what LogRecord::EncodedSize() would report — callers use it for
  /// logging-cost accounting without a second encode.
  struct Reservation {
    Lsn lsn = kInvalidLsn;
    uint8_t* body = nullptr;
    size_t body_size = 0;
    size_t payload_size = 0;

   private:
    friend class LogManager;
    uint8_t* frame = nullptr;  // frame start (len/crc header)
    void* entry = nullptr;     // owning PendingRecord
  };

  /// Reserves an exactly-sized slot for a record whose body (payload
  /// after the type byte and LSN varint) is body_size bytes. The span
  /// stays valid until AppendCommit; the arena never reallocates while
  /// fills are outstanding. Fill + commit promptly: a force that needs
  /// this LSN blocks until the slot is committed.
  Reservation AppendReserve(RecordType type, size_t body_size);

  /// Checksums the filled frame and publishes it to the force path.
  void AppendCommit(const Reservation& r);

  /// Typed zero-copy appenders for the hot record shapes: exact-size
  /// reserve, raw-buffer fill, commit — no LogRecord is constructed and
  /// nothing is copied. If payload_size is non-null it receives the
  /// record's encoded payload size (the logging cost).
  Lsn AppendOperation(const OperationDesc& op, uint64_t txn_id, Lsn prev_lsn,
                      const std::vector<UndoImage>& undo_images,
                      size_t* payload_size = nullptr);
  Lsn AppendTxnMarker(RecordType type, uint64_t txn_id, Lsn prev_lsn,
                      size_t* payload_size = nullptr);
  Lsn AppendCompensation(const OperationDesc& op, uint64_t txn_id,
                         Lsn prev_lsn, Lsn undo_next_lsn, uint64_t undo_skip,
                         size_t* payload_size = nullptr);

  /// Forces all buffered records with lsn <= upto to the stable device
  /// (one device force), plus whatever extra the ForcePolicy coalesces
  /// in. No-op if they are already stable. Records are acknowledged
  /// (last_stable_lsn advances, the buffer drains) only when the device
  /// confirms the append; transient device errors are retried a bounded
  /// number of times, and a torn append (Aborted) poisons the manager —
  /// the system must crash and recover, since the device tail no longer
  /// matches the volatile state. Equivalent to SubmitForce + WaitStable.
  Status Force(Lsn upto);

  /// Forces the entire volatile buffer.
  Status ForceAll();

  /// Stages the policy-selected batch covering `upto` on the device
  /// completion queue and returns without waiting for durability.
  /// Nothing is acknowledged until WaitStable reaps the completion. The
  /// fault::kLogForce site fires here (at submit); device-side
  /// fault::kLogAppend faults fire at completion.
  Status SubmitForce(Lsn upto);

  /// Reaps staged completions until every record with lsn <= upto is
  /// stable (or no staged force can make it so). Acknowledgement,
  /// retries, and poisoning semantics are identical to the old blocking
  /// Force.
  Status WaitStable(Lsn upto);

  /// Enables eager submission: whenever `bytes` of committed,
  /// unsubmitted records accumulate, appends auto-submit a force so the
  /// device works while execution continues. 0 (default) disables.
  void set_async_submit(size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    async_submit_bytes_ = bytes;
  }

  /// Forces staged on the device but not yet reaped.
  size_t in_flight_forces() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_.size();
  }

  /// Selects how Force batches obligations onto device appends.
  /// `group_bytes` is the batch budget for kSizeThreshold (ignored by
  /// the other policies).
  void set_force_policy(ForcePolicy policy, size_t group_bytes = 1 << 16) {
    std::lock_guard<std::mutex> lock(mu_);
    force_policy_ = policy;
    group_bytes_ = group_bytes;
  }
  ForcePolicy force_policy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return force_policy_;
  }

  /// Records made stable beyond what their Force call asked for (the
  /// group-commit coalescing win; 0 under kImmediate).
  uint64_t records_coalesced() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_coalesced_;
  }

  /// Highest LSN that is stable (0 if none).
  Lsn last_stable_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_stable_lsn_;
  }
  /// Highest LSN assigned (stable or volatile).
  Lsn last_assigned_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_lsn_ - 1;
  }
  size_t volatile_record_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

  /// Truncates the stable log prefix strictly before `lsn` (the record
  /// with LSN `lsn` is retained). Used after checkpoints: `lsn` must be
  /// the minimum rSI over the dirty object table (every uninstalled
  /// operation is at or after it).
  void TruncateBefore(Lsn lsn);

  /// Maps a stable record's LSN to its framed extent on the device:
  /// *offset is the frame start (absolute device offset), *size the full
  /// framed size (header + payload). False when `lsn` is not stable or
  /// its offset entry was already truncated away. The log-as-database
  /// install path calls this at index-publish time — the entry outlives
  /// truncation inside the LogIndex, whose reads fall through to the
  /// cold tier.
  bool StableExtentOf(Lsn lsn, uint64_t* offset, uint64_t* size) const;

  /// Re-seeds the LSN counter after recovery scanned an existing log.
  void SetNextLsn(Lsn next) {
    std::lock_guard<std::mutex> lock(mu_);
    next_lsn_ = next;
  }

  /// Decodes every stable record in order (via LogCursor — prefer the
  /// cursor directly when the log may be large; this materializes it).
  /// Stops cleanly at a torn tail (sets *torn). Returns the records, via
  /// *next_lsn 1 + the highest LSN seen (or 1 for an empty log), and via
  /// *valid_end the absolute device offset just past the last valid
  /// record (torn bytes begin there).
  static Status ReadStable(const StableLogDevice& device,
                           std::vector<LogRecord>* out, bool* torn,
                           Lsn* next_lsn, uint64_t* valid_end);

 private:
  /// One framed record in the arena, in LSN order. Entries are erased
  /// only from the front (on acknowledgement), so deque references held
  /// by outstanding Reservations stay valid.
  struct PendingRecord {
    Lsn lsn = kInvalidLsn;
    size_t arena_offset = 0;   // frame start within encoded_
    uint32_t framed_size = 0;  // kFrameOverhead + payload
    bool filled = false;       // committed (checksummed, forceable)
  };

  /// One force staged on the device completion queue. The arena range is
  /// retained (no compaction while in flight) so WaitStable could
  /// resubmit; record bookkeeping happens at reap.
  struct InFlightForce {
    uint64_t ticket = 0;
    size_t arena_offset = 0;
    size_t bytes = 0;
    size_t count = 0;  // pending_ entries covered (a prefix)
    Lsn first_lsn = kInvalidLsn;
    Lsn last_lsn = kInvalidLsn;
    uint64_t coalesced = 0;
    std::chrono::steady_clock::time_point submit_time;
  };

  /// Per-ForcePolicy instruments (latency + batch-size histograms carry a
  /// policy label so group-commit shapes stay separable in one snapshot).
  /// Registry pointers are fetched once per policy and cached, keeping
  /// the per-Force cost to two clock reads and two histogram locks.
  struct ForceInstruments {
    HistogramMetric* latency_us = nullptr;
    HistogramMetric* batch_records = nullptr;
    Counter* records_coalesced = nullptr;
  };
  ForceInstruments& instruments();

  /// Ensures the arena can hold `bytes` more without reallocating under
  /// an outstanding fill; waits for fills to drain before growing.
  void EnsureArenaRoomLocked(std::unique_lock<std::mutex>& lock,
                             size_t bytes);
  /// Reserves a frame for a payload of known exact size and writes the
  /// length header plus the type/lsn prefix. Returns the pending entry.
  PendingRecord* ReserveFrameLocked(std::unique_lock<std::mutex>& lock,
                                    RecordType type, Lsn lsn,
                                    size_t body_size, uint8_t** body_out,
                                    uint8_t** frame_out);
  /// Copies an already-encoded payload into a fresh frame and publishes
  /// it (the compatibility Append path).
  void AppendEncodedLocked(std::unique_lock<std::mutex>& lock, Lsn lsn,
                           const std::vector<uint8_t>& payload);
  /// Advances the contiguous-filled watermark and auto-submits when the
  /// async threshold is reached.
  void OnFilledLocked(std::unique_lock<std::mutex>& lock);
  Status SubmitForceLocked(std::unique_lock<std::mutex>& lock, Lsn upto);
  Status WaitStableLocked(std::unique_lock<std::mutex>& lock, Lsn upto);
  /// Reclaims acknowledged arena prefix when nothing references it.
  void MaybeCompactLocked();
  void EnsureCountersLocked();

  StableLogDevice* device_;

  mutable std::mutex mu_;
  /// Fills commit / outstanding fills drain (arena growth and force
  /// contiguity wait on this).
  std::condition_variable fill_cv_;

  /// Framed-record arena: [arena_consumed_, arena_used_) holds the dense
  /// frames of pending_ (plus any in-flight range awaiting
  /// acknowledgement). encoded_.size() is the arena capacity; the logical
  /// end is tracked separately so a reservation is pure bookkeeping —
  /// vector::resize would zero-fill every slot under the lock.
  std::vector<uint8_t> encoded_;
  size_t arena_used_ = 0;
  size_t arena_consumed_ = 0;
  std::deque<PendingRecord> pending_;
  size_t outstanding_fills_ = 0;
  /// pending_ prefix sizes: [0, submitted_count_) staged on the device,
  /// [0, fill_watermark_) contiguously filled.
  size_t submitted_count_ = 0;
  size_t fill_watermark_ = 0;
  /// Committed, unsubmitted bytes (drives async auto-submit).
  size_t unsubmitted_filled_bytes_ = 0;
  size_t async_submit_bytes_ = 0;
  std::deque<InFlightForce> in_flight_;

  Lsn next_lsn_ = 1;
  Lsn last_stable_lsn_ = 0;
  ForcePolicy force_policy_ = ForcePolicy::kImmediate;
  size_t group_bytes_ = 1 << 16;
  uint64_t records_coalesced_ = 0;
  /// Set when a force tore or crashed mid-append: the stable tail is no
  /// longer coherent with this manager's view, so every further Force is
  /// refused until recovery rebuilds the log state.
  bool poisoned_ = false;
  /// Lazily-filled instrument cache, one slot per ForcePolicy value.
  ForceInstruments force_instruments_[3];
  Counter* force_calls_ = nullptr;
  Counter* force_noops_ = nullptr;
  Counter* force_submits_ = nullptr;
  HistogramMetric* force_wait_us_ = nullptr;
  Counter* append_records_ = nullptr;
  Counter* append_bytes_ = nullptr;
  Counter* append_allocs_ = nullptr;
  /// Byte offset on the device of each stable record. Appends arrive in
  /// ascending LSN order and truncation only drops a prefix, so the
  /// vector is always sorted by LSN — binary search replaces the old
  /// std::map without its per-node allocations.
  std::vector<std::pair<Lsn, uint64_t>> stable_offsets_;
};

}  // namespace loglog

#endif  // LOGLOG_WAL_LOG_MANAGER_H_
