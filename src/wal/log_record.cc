#include "wal/log_record.h"

#include "adapt/log_choice.h"
#include "common/coding.h"
#include "common/crc32.h"

namespace loglog {

namespace {

void PutInstallEntries(std::vector<uint8_t>* dst,
                       const std::vector<InstallEntry>& entries) {
  PutVarint64(dst, entries.size());
  for (const InstallEntry& e : entries) {
    PutVarint64(dst, e.id);
    PutVarint64(dst, e.rsi);
  }
}

Status GetInstallEntries(Slice* src, std::vector<InstallEntry>* out) {
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
  // Two varints per entry: at least two bytes each (count bound guards
  // reserve() against garbage input).
  if (n > src->size()) return Status::Corruption("install count too large");
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    InstallEntry e;
    LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.id));
    LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.rsi));
    out->push_back(e);
  }
  return Status::OK();
}

void PutUndoImages(std::vector<uint8_t>* dst,
                   const std::vector<UndoImage>& images) {
  PutVarint64(dst, images.size());
  for (const UndoImage& img : images) {
    dst->push_back(img.exists ? 1 : 0);
    PutLengthPrefixed(dst, Slice(img.value));
  }
}

Status GetUndoImages(Slice* src, std::vector<UndoImage>* out) {
  uint64_t n;
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
  // At least two bytes per image (exists flag + length varint).
  if (n > src->size()) return Status::Corruption("undo image count too large");
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    UndoImage img;
    if (src->empty()) return Status::Corruption("truncated undo image");
    img.exists = (*src)[0] != 0;
    src->RemovePrefix(1);
    Slice value;
    LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(src, &value));
    img.value = value.ToBytes();
    out->push_back(std::move(img));
  }
  return Status::OK();
}

}  // namespace

void LogRecord::EncodeTo(std::vector<uint8_t>* dst) const {
  dst->push_back(static_cast<uint8_t>(type));
  PutVarint64(dst, lsn);
  switch (type) {
    case RecordType::kOperation:
      op.EncodeTo(dst);
      // The transactional trailer exists only inside a transaction, so
      // non-transactional operation records stay byte-identical to the
      // pre-transaction format (old logs decode unchanged).
      if (txn_id != 0) {
        PutVarint64(dst, txn_id);
        PutVarint64(dst, prev_lsn);
        PutUndoImages(dst, undo_images);
      }
      break;
    case RecordType::kTxnBegin:
    case RecordType::kTxnCommit:
    case RecordType::kTxnAbort:
      PutVarint64(dst, txn_id);
      PutVarint64(dst, prev_lsn);
      break;
    case RecordType::kCompensation:
      PutVarint64(dst, txn_id);
      PutVarint64(dst, prev_lsn);
      PutVarint64(dst, undo_next_lsn);
      PutVarint64(dst, undo_skip);
      op.EncodeTo(dst);
      break;
    case RecordType::kCheckpoint:
      PutVarint64(dst, dot.size());
      for (const DotEntry& e : dot) {
        PutVarint64(dst, e.id);
        PutVarint64(dst, e.rsi);
        dst->push_back(e.dead ? 1 : 0);
      }
      // Txn-id high-water mark (master-record style): truncation discards
      // the txn records that analysis would otherwise derive it from, so
      // the checkpoint must carry it or a post-truncation crash would
      // re-issue ids of completed transactions. Trailing and omitted when
      // zero, so pre-transaction checkpoints stay byte-identical.
      if (txn_id != 0) PutVarint64(dst, txn_id);
      break;
    case RecordType::kInstall:
      PutInstallEntries(dst, installed_vars);
      PutInstallEntries(dst, installed_notx);
      break;
    case RecordType::kFlushTxnBegin:
      PutVarint64(dst, flush_values.size());
      for (const FlushValue& fv : flush_values) {
        PutVarint64(dst, fv.id);
        PutVarint64(dst, fv.vsi);
        dst->push_back(fv.erase ? 1 : 0);
        PutLengthPrefixed(dst, Slice(fv.value));
      }
      break;
    case RecordType::kFlushTxnCommit:
      PutVarint64(dst, ref_lsn);
      break;
    case RecordType::kPolicyDecision:
      PutVarint64(dst, policy.object);
      dst->push_back(policy.new_class);
      dst->push_back(policy.prev_class);
      dst->push_back(policy.reason);
      PutVarint64(dst, policy.chain_depth);
      PutVarint64(dst, policy.ewma_size);
      break;
    case RecordType::kIndexCheckpoint:
      PutVarint64(dst, index_entries.size());
      for (const IndexCheckpointEntry& e : index_entries) {
        PutVarint64(dst, e.id);
        PutVarint64(dst, e.lsn);
        PutVarint64(dst, e.offset);
        PutVarint64(dst, e.size);
      }
      break;
  }
}

Status LogRecord::DecodeFrom(Slice* src, LogRecord* out) {
  if (src->empty()) return Status::Corruption("empty record");
  uint8_t type_byte = (*src)[0];
  src->RemovePrefix(1);
  if (type_byte < 1 ||
      type_byte > static_cast<uint8_t>(RecordType::kIndexCheckpoint)) {
    return Status::Corruption("bad record type");
  }
  out->type = static_cast<RecordType>(type_byte);
  LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->lsn));
  switch (out->type) {
    case RecordType::kOperation:
      LOGLOG_RETURN_IF_ERROR(OperationDesc::DecodeFrom(src, &out->op));
      // Remaining bytes are the transactional trailer (framing hands the
      // decoder exactly one payload, so presence is unambiguous).
      if (!src->empty()) {
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->txn_id));
        if (out->txn_id == 0) {
          return Status::Corruption("txn trailer with zero txn id");
        }
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->prev_lsn));
        LOGLOG_RETURN_IF_ERROR(GetUndoImages(src, &out->undo_images));
        if (!out->undo_images.empty() &&
            out->undo_images.size() != out->op.writes.size()) {
          return Status::Corruption("undo image count != write count");
        }
      }
      break;
    case RecordType::kTxnBegin:
    case RecordType::kTxnCommit:
    case RecordType::kTxnAbort:
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->txn_id));
      if (out->txn_id == 0) return Status::Corruption("zero txn id");
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->prev_lsn));
      break;
    case RecordType::kCompensation:
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->txn_id));
      if (out->txn_id == 0) return Status::Corruption("zero txn id");
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->prev_lsn));
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->undo_next_lsn));
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->undo_skip));
      LOGLOG_RETURN_IF_ERROR(OperationDesc::DecodeFrom(src, &out->op));
      break;
    case RecordType::kCheckpoint: {
      uint64_t n;
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
      if (n > src->size()) return Status::Corruption("dot count too large");
      out->dot.clear();
      out->dot.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DotEntry e;
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.id));
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.rsi));
        if (src->empty()) return Status::Corruption("truncated dot entry");
        e.dead = (*src)[0] != 0;
        src->RemovePrefix(1);
        out->dot.push_back(e);
      }
      // Optional trailing txn-id high-water mark (absent on logs written
      // before transactions existed).
      if (!src->empty()) {
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->txn_id));
        if (out->txn_id == 0) {
          return Status::Corruption("zero checkpoint txn watermark");
        }
      }
      break;
    }
    case RecordType::kInstall:
      LOGLOG_RETURN_IF_ERROR(GetInstallEntries(src, &out->installed_vars));
      LOGLOG_RETURN_IF_ERROR(GetInstallEntries(src, &out->installed_notx));
      break;
    case RecordType::kFlushTxnBegin: {
      uint64_t n;
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
      if (n > src->size()) {
        return Status::Corruption("flush value count too large");
      }
      out->flush_values.clear();
      out->flush_values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        FlushValue fv;
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &fv.id));
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &fv.vsi));
        if (src->empty()) return Status::Corruption("truncated flush value");
        fv.erase = (*src)[0] != 0;
        src->RemovePrefix(1);
        Slice value;
        LOGLOG_RETURN_IF_ERROR(GetLengthPrefixed(src, &value));
        fv.value = value.ToBytes();
        out->flush_values.push_back(std::move(fv));
      }
      break;
    }
    case RecordType::kFlushTxnCommit:
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->ref_lsn));
      break;
    case RecordType::kPolicyDecision: {
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->policy.object));
      if (src->size() < 3) {
        return Status::Corruption("truncated policy decision");
      }
      out->policy.new_class = (*src)[0];
      out->policy.prev_class = (*src)[1];
      out->policy.reason = (*src)[2];
      src->RemovePrefix(3);
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->policy.chain_depth));
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &out->policy.ewma_size));
      break;
    }
    case RecordType::kIndexCheckpoint: {
      uint64_t n;
      LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &n));
      // Four varints per entry: at least four bytes each (count bound
      // guards reserve() against garbage input).
      if (n > src->size()) {
        return Status::Corruption("index entry count too large");
      }
      out->index_entries.clear();
      out->index_entries.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        IndexCheckpointEntry e;
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.id));
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.lsn));
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.offset));
        LOGLOG_RETURN_IF_ERROR(GetVarint64(src, &e.size));
        out->index_entries.push_back(e);
      }
      break;
    }
  }
  return Status::OK();
}

size_t LogRecord::EncodedSize() const {
  std::vector<uint8_t> buf;
  EncodeTo(&buf);
  return buf.size();
}

namespace {

size_t UndoImagesSize(const std::vector<UndoImage>& images) {
  size_t size = VarintLength(images.size());
  for (const UndoImage& img : images) {
    size += 1 + VarintLength(img.value.size()) + img.value.size();
  }
  return size;
}

uint8_t* EncodeUndoImages(uint8_t* dst, const std::vector<UndoImage>& images) {
  dst = EncodeVarint64(dst, images.size());
  for (const UndoImage& img : images) {
    *dst++ = img.exists ? 1 : 0;
    dst = EncodeLengthPrefixed(dst, Slice(img.value));
  }
  return dst;
}

}  // namespace

size_t EncodedOperationBodySize(const OperationDesc& op, uint64_t txn_id,
                                Lsn prev_lsn,
                                const std::vector<UndoImage>& undo_images) {
  size_t size = op.EncodedSize();
  if (txn_id != 0) {
    size += VarintLength(txn_id) + VarintLength(prev_lsn) +
            UndoImagesSize(undo_images);
  }
  return size;
}

uint8_t* EncodeOperationBody(uint8_t* dst, const OperationDesc& op,
                             uint64_t txn_id, Lsn prev_lsn,
                             const std::vector<UndoImage>& undo_images) {
  dst = op.EncodeToBuf(dst);
  if (txn_id != 0) {
    dst = EncodeVarint64(dst, txn_id);
    dst = EncodeVarint64(dst, prev_lsn);
    dst = EncodeUndoImages(dst, undo_images);
  }
  return dst;
}

size_t EncodedTxnMarkerBodySize(uint64_t txn_id, Lsn prev_lsn) {
  return VarintLength(txn_id) + VarintLength(prev_lsn);
}

uint8_t* EncodeTxnMarkerBody(uint8_t* dst, uint64_t txn_id, Lsn prev_lsn) {
  dst = EncodeVarint64(dst, txn_id);
  return EncodeVarint64(dst, prev_lsn);
}

size_t EncodedCompensationBodySize(const OperationDesc& op, uint64_t txn_id,
                                   Lsn prev_lsn, Lsn undo_next_lsn,
                                   uint64_t undo_skip) {
  return VarintLength(txn_id) + VarintLength(prev_lsn) +
         VarintLength(undo_next_lsn) + VarintLength(undo_skip) +
         op.EncodedSize();
}

uint8_t* EncodeCompensationBody(uint8_t* dst, const OperationDesc& op,
                                uint64_t txn_id, Lsn prev_lsn,
                                Lsn undo_next_lsn, uint64_t undo_skip) {
  dst = EncodeVarint64(dst, txn_id);
  dst = EncodeVarint64(dst, prev_lsn);
  dst = EncodeVarint64(dst, undo_next_lsn);
  dst = EncodeVarint64(dst, undo_skip);
  return op.EncodeToBuf(dst);
}

std::string LogRecord::DebugString() const {
  std::string out = "Rec{lsn=" + std::to_string(lsn) + " type=";
  switch (type) {
    case RecordType::kOperation:
      out += "op " + op.DebugString();
      if (txn_id != 0) {
        out += " txn=" + std::to_string(txn_id) +
               " prev=" + std::to_string(prev_lsn) +
               " images=" + std::to_string(undo_images.size());
      }
      break;
    case RecordType::kTxnBegin:
      out += "txn-begin txn=" + std::to_string(txn_id);
      break;
    case RecordType::kTxnCommit:
      out += "txn-commit txn=" + std::to_string(txn_id) +
             " prev=" + std::to_string(prev_lsn);
      break;
    case RecordType::kTxnAbort:
      out += "txn-abort txn=" + std::to_string(txn_id) +
             " prev=" + std::to_string(prev_lsn);
      break;
    case RecordType::kCompensation:
      out += "clr " + op.DebugString() + " txn=" + std::to_string(txn_id) +
             " prev=" + std::to_string(prev_lsn) +
             " undo-next=" + std::to_string(undo_next_lsn) +
             " skip=" + std::to_string(undo_skip);
      break;
    case RecordType::kCheckpoint:
      out += "checkpoint dot=" + std::to_string(dot.size());
      if (txn_id != 0) out += " txn-max=" + std::to_string(txn_id);
      break;
    case RecordType::kInstall:
      out += "install vars=" + std::to_string(installed_vars.size()) +
             " notx=" + std::to_string(installed_notx.size());
      break;
    case RecordType::kFlushTxnBegin:
      out += "ftxn-begin n=" + std::to_string(flush_values.size());
      break;
    case RecordType::kFlushTxnCommit:
      out += "ftxn-commit ref=" + std::to_string(ref_lsn);
      break;
    case RecordType::kPolicyDecision:
      out += "policy obj=" + std::to_string(policy.object) + " class=" +
             LogChoiceName(static_cast<LogChoice>(policy.new_class)) +
             "<-" +
             LogChoiceName(static_cast<LogChoice>(policy.prev_class)) +
             " reason=" +
             PolicyReasonName(static_cast<PolicyReason>(policy.reason)) +
             " depth=" + std::to_string(policy.chain_depth) +
             " ewma=" + std::to_string(policy.ewma_size);
      break;
    case RecordType::kIndexCheckpoint:
      out += "index-checkpoint n=" + std::to_string(index_entries.size());
      break;
  }
  out += "}";
  return out;
}

void FrameRecord(const LogRecord& rec, std::vector<uint8_t>* dst) {
  std::vector<uint8_t> payload;
  rec.EncodeTo(&payload);
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Crc32c(Slice(payload)));
  dst->insert(dst->end(), payload.begin(), payload.end());
}

Status ReadFramedRecord(Slice* src, LogRecord* out) {
  if (src->empty()) return Status::NotFound("end of log");
  Slice probe = *src;
  uint32_t len, crc;
  if (!GetFixed32(&probe, &len).ok() || !GetFixed32(&probe, &crc).ok() ||
      probe.size() < len) {
    return Status::Corruption("torn record header");
  }
  Slice payload(probe.data(), len);
  if (Crc32c(payload) != crc) {
    return Status::Corruption("record checksum mismatch");
  }
  Slice cursor = payload;
  LOGLOG_RETURN_IF_ERROR(LogRecord::DecodeFrom(&cursor, out));
  if (!cursor.empty()) {
    return Status::Corruption("trailing bytes in record payload");
  }
  src->RemovePrefix(8 + len);
  return Status::OK();
}

}  // namespace loglog
