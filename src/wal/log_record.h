#ifndef LOGLOG_WAL_LOG_RECORD_H_
#define LOGLOG_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"
#include "ops/operation.h"

namespace loglog {

/// Kinds of records on the recovery log.
enum class RecordType : uint8_t {
  /// A logged operation (Figure 1 forms). The only record the WAL
  /// protocol requires before installation.
  kOperation = 1,
  /// ARIES-style checkpoint: snapshot of the dirty object table with the
  /// rSI of every dirty object (Section 5 "Logging and Recovery using
  /// rSI's").
  kCheckpoint = 2,
  /// Installation of a write-graph node: identifies vars(n) and Notx(n)
  /// and their advanced rSIs. Lazily logged after the flush; the analysis
  /// pass uses it to advance rSIs / remove clean objects (Section 5).
  kInstall = 3,
  /// Flush transaction begin: carries the frozen values of the objects
  /// being atomically flushed (Section 4 "Atomic Flush", technique 2).
  kFlushTxnBegin = 4,
  /// Flush transaction commit; the atomic point of the flush transaction.
  kFlushTxnCommit = 5,
  /// Adaptive-policy class change for one object (src/adapt/): which
  /// logging class (LogChoice) subsequent writes of the object use, and
  /// the cost-model inputs behind the flip. A control record — redo
  /// ignores it; analysis rebuilds the class mix from the last decision
  /// per object so recovery reseeds the policy it crashed with.
  kPolicyDecision = 6,
  /// User-transaction begin (src/engine/txn_manager.h). Anchors the
  /// per-transaction prev-LSN backchain; a txn with a begin but no
  /// commit/abort at crash is a loser and is rolled back by recovery.
  kTxnBegin = 7,
  /// User-transaction commit. Forced before Commit() returns — the
  /// durability point of the transaction.
  kTxnCommit = 8,
  /// User-transaction rollback complete (the ARIES "end" of an aborted
  /// txn). Never forced: re-running an already-finished rollback is
  /// idempotent, so abort durability is free.
  kTxnAbort = 9,
  /// Compensation log record (CLR): one logged+executed inverse step of a
  /// rollback. Carries the inverse as an ordinary OperationDesc so REDO
  /// repeats history through rollbacks, plus undo_next_lsn/undo_skip so a
  /// crash mid-rollback resumes exactly after the last stable CLR. CLRs
  /// are never themselves undone.
  kCompensation = 10,
  /// Log-as-database index checkpoint (src/logstore/): the complete
  /// LogIndex — object id -> (LSN, device offset, framed size) of the
  /// last full-image record — frozen at checkpoint time. A control
  /// record: redo ignores it; the recovery analysis pass resets its
  /// index rebuild to the last one it sees and overlays later records,
  /// so restart cost is bounded by the checkpoint interval and index
  /// entries may point below the truncation horizon (into the cold
  /// tier).
  kIndexCheckpoint = 11,
};

/// One dirty-object-table entry in a checkpoint record.
struct DotEntry {
  ObjectId id = kInvalidObjectId;
  /// lSI of the earliest uninstalled operation writing the object.
  Lsn rsi = kInvalidLsn;
  /// True when the object's last update is an uninstalled delete (its
  /// lifetime has ended; Section 5's transient-object optimization).
  bool dead = false;
};

/// One object in an install record: the object and its advanced rSI.
/// rsi == kInvalidLsn means the object has no uninstalled writers left
/// (analysis removes it from the dirty object table).
struct InstallEntry {
  ObjectId id = kInvalidObjectId;
  Lsn rsi = kInvalidLsn;
};

/// One LogIndex entry frozen into a kIndexCheckpoint record: where the
/// object's last full-image record lives on the log device.
struct IndexCheckpointEntry {
  ObjectId id = kInvalidObjectId;
  /// LSN of the full-image record (also the object's vSI).
  Lsn lsn = kInvalidLsn;
  /// Absolute device offset of the framed record.
  uint64_t offset = 0;
  /// Framed size (header + payload) of the record.
  uint64_t size = 0;
};

/// One object value frozen into a flush-transaction begin record.
struct FlushValue {
  ObjectId id = kInvalidObjectId;
  Lsn vsi = kInvalidLsn;
  std::vector<uint8_t> value;
  bool erase = false;
};

/// Before-image of one write slot of an in-transaction operation, logged
/// when the op has no registered logical inverse (then compensation must
/// restore physically — including the adaptive policy's W_P promotions).
struct UndoImage {
  /// False when the object did not exist before the op (undo deletes it).
  bool exists = false;
  std::vector<uint8_t> value;
};

/// \brief A single log record (tagged union over RecordType).
struct LogRecord {
  RecordType type = RecordType::kOperation;
  Lsn lsn = kInvalidLsn;

  // kOperation and kCompensation
  OperationDesc op;

  // Transaction header: set on kTxnBegin/kTxnCommit/kTxnAbort/
  // kCompensation and on kOperation records executed inside a
  // transaction. txn_id == 0 means non-transactional; such kOperation
  // records encode byte-identically to the pre-transaction format.
  // On kCheckpoint it is not a transaction but the id high-water mark
  // at checkpoint time (0 if no transaction ever ran), so id
  // allocation stays monotone after truncation discards txn records.
  uint64_t txn_id = 0;
  /// LSN of this transaction's previous record (kInvalidLsn at the head
  /// of the backchain, i.e. on kTxnBegin).
  Lsn prev_lsn = kInvalidLsn;

  // kCompensation: rollback cursor. undo_next_lsn is the next forward
  // record to undo once this CLR is stable (kInvalidLsn when rollback is
  // done bar the kTxnAbort); undo_skip counts how many of that record's
  // writes (from the last one backwards) are already compensated, so
  // multi-write operations roll back one write per CLR, restartably.
  Lsn undo_next_lsn = kInvalidLsn;
  uint64_t undo_skip = 0;

  // kOperation in-txn: captured before-images, parallel to op.writes
  // (empty when the op's FuncId has a registered logical inverse and
  // images are unnecessary).
  std::vector<UndoImage> undo_images;

  // kCheckpoint
  std::vector<DotEntry> dot;

  // kInstall: objects flushed (vars(n)) and merely installed (Notx(n)).
  std::vector<InstallEntry> installed_vars;
  std::vector<InstallEntry> installed_notx;

  // kFlushTxnBegin
  std::vector<FlushValue> flush_values;

  // kIndexCheckpoint
  std::vector<IndexCheckpointEntry> index_entries;

  // kFlushTxnCommit: lsn of the matching begin record.
  Lsn ref_lsn = kInvalidLsn;

  // kPolicyDecision: one adaptive-policy class change. Class / reason
  // bytes are adapt/log_choice.h's LogChoice and PolicyReason values;
  // kept as raw bytes here so the codec stays policy-agnostic.
  struct PolicyPayload {
    ObjectId object = kInvalidObjectId;
    uint8_t new_class = 0;
    uint8_t prev_class = 0;
    uint8_t reason = 0;
    /// Model inputs at decision time: rW dependency weight of the
    /// object's node and the EWMA value-size estimate.
    uint64_t chain_depth = 0;
    uint64_t ewma_size = 0;
  } policy;

  void EncodeTo(std::vector<uint8_t>* dst) const;
  static Status DecodeFrom(Slice* src, LogRecord* out);

  /// Encoded payload size (the record's logging cost, before framing).
  size_t EncodedSize() const;

  std::string DebugString() const;
};

/// Exact body sizes and raw-buffer encoders for the hot record shapes,
/// used by LogManager's reserve+fill append path: the "body" is the
/// record payload after the type byte and LSN varint (which the manager
/// writes itself, since it assigns the LSN at reserve time). Each
/// Encode*Body must produce exactly the bytes LogRecord::EncodeTo emits
/// for the same fields — byte-identical logs are asserted by
/// wal_hot_path_test.
size_t EncodedOperationBodySize(const OperationDesc& op, uint64_t txn_id,
                                Lsn prev_lsn,
                                const std::vector<UndoImage>& undo_images);
uint8_t* EncodeOperationBody(uint8_t* dst, const OperationDesc& op,
                             uint64_t txn_id, Lsn prev_lsn,
                             const std::vector<UndoImage>& undo_images);

size_t EncodedTxnMarkerBodySize(uint64_t txn_id, Lsn prev_lsn);
uint8_t* EncodeTxnMarkerBody(uint8_t* dst, uint64_t txn_id, Lsn prev_lsn);

size_t EncodedCompensationBodySize(const OperationDesc& op, uint64_t txn_id,
                                   Lsn prev_lsn, Lsn undo_next_lsn,
                                   uint64_t undo_skip);
uint8_t* EncodeCompensationBody(uint8_t* dst, const OperationDesc& op,
                                uint64_t txn_id, Lsn prev_lsn,
                                Lsn undo_next_lsn, uint64_t undo_skip);

/// Frames a record payload for the device: fixed32 length, fixed32 CRC32C,
/// payload.
void FrameRecord(const LogRecord& rec, std::vector<uint8_t>* dst);

/// Reads one framed record from `src`. Returns:
///  - OK and advances src past the record;
///  - NotFound when src is empty (clean end of log);
///  - Corruption when bytes remain but do not form a whole valid record
///    (torn tail — recovery treats this as end of log).
Status ReadFramedRecord(Slice* src, LogRecord* out);

}  // namespace loglog

#endif  // LOGLOG_WAL_LOG_RECORD_H_
