#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adapt/adaptive_policy.h"
#include "engine/recovery_engine.h"
#include "obs/metrics.h"
#include "ops/op_builder.h"
#include "recovery/analysis.h"
#include "sim/crash_harness.h"
#include "storage/simulated_disk.h"
#include "wal/log_dump.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

// Tight thresholds so the tests exercise every rule with a handful of
// writes instead of the production-scale defaults.
AdaptivePolicyOptions TestPolicyOptions() {
  AdaptivePolicyOptions o;
  o.enabled = true;
  o.hot_interval_writes = 4.0;
  o.cold_interval_writes = 16.0;
  o.small_value_bytes = 32;
  o.large_value_bytes = 128;
  o.max_chain_depth = 1000;  // tests that want the chain rule lower this
  o.decision_cooldown_writes = 2;
  return o;
}

EngineOptions AdaptiveEngineOptions() {
  EngineOptions eo;
  eo.logging_mode = LoggingMode::kLogical;
  eo.adaptive = TestPolicyOptions();
  return eo;
}

// --- Cost-model unit tests --------------------------------------------

TEST(AdaptiveLogPolicyTest, FirstLargeWriteIsPromotedToPhysical) {
  AdaptiveLogPolicy p(TestPolicyOptions());
  PolicyDecision d = p.Decide(7, 256, 0);
  EXPECT_EQ(d.chosen, LogChoice::kPhysical);
  EXPECT_EQ(d.previous, LogChoice::kLogical);
  EXPECT_EQ(d.reason, PolicyReason::kColdLarge);
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(p.Current(7), LogChoice::kPhysical);
  EXPECT_EQ(p.stats().to_physical, 1u);
}

TEST(AdaptiveLogPolicyTest, FirstMediumWriteIsPromotedToPhysiological) {
  AdaptiveLogPolicy p(TestPolicyOptions());
  PolicyDecision d = p.Decide(7, 64, 0);
  EXPECT_EQ(d.chosen, LogChoice::kPhysiological);
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(p.stats().to_physiological, 1u);
}

TEST(AdaptiveLogPolicyTest, FirstSmallWriteStaysLogical) {
  AdaptiveLogPolicy p(TestPolicyOptions());
  PolicyDecision d = p.Decide(7, 8, 0);
  EXPECT_EQ(d.chosen, LogChoice::kLogical);
  EXPECT_FALSE(d.changed);
  EXPECT_EQ(p.stats().decisions, 0u);
}

TEST(AdaptiveLogPolicyTest, DeepChainForcesPhysicalEvenWhenHotAndSmall) {
  AdaptivePolicyOptions o = TestPolicyOptions();
  o.max_chain_depth = 6;
  AdaptiveLogPolicy p(o);
  for (int i = 0; i < 8; ++i) {
    p.Decide(7, 8, 0);  // hot, small: stays W_L
  }
  ASSERT_EQ(p.Current(7), LogChoice::kLogical);
  PolicyDecision d = p.Decide(7, 8, /*chain_depth=*/6);
  EXPECT_EQ(d.chosen, LogChoice::kPhysical);
  EXPECT_EQ(d.reason, PolicyReason::kDeepChain);
  EXPECT_TRUE(d.changed);
}

TEST(AdaptiveLogPolicyTest, HotSmallTrafficDemotesBackToLogical) {
  AdaptiveLogPolicy p(TestPolicyOptions());
  ASSERT_EQ(p.Decide(7, 256, 0).chosen, LogChoice::kPhysical);
  // Back-to-back tiny writes: interval EWMA pins to 1 (hot) and the size
  // EWMA decays below the small threshold within a dozen samples.
  LogChoice last = LogChoice::kPhysical;
  for (int i = 0; i < 20; ++i) {
    last = p.Decide(7, 8, 0).chosen;
  }
  EXPECT_EQ(last, LogChoice::kLogical);
  EXPECT_EQ(p.Current(7), LogChoice::kLogical);
  EXPECT_GE(p.stats().to_logical, 1u);
}

TEST(AdaptiveLogPolicyTest, CooldownSuppressesFlipFlop) {
  AdaptivePolicyOptions o = TestPolicyOptions();
  o.decision_cooldown_writes = 100;
  AdaptiveLogPolicy p(o);
  ASSERT_TRUE(p.Decide(7, 256, 0).changed);  // first write classifies freely
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(p.Decide(7, 8, 0).changed) << "write " << i;
  }
  EXPECT_EQ(p.Current(7), LogChoice::kPhysical);
  EXPECT_EQ(p.stats().decisions, 1u);
}

TEST(AdaptiveLogPolicyTest, RestoreReseedsClassAndReopensCooldown) {
  AdaptivePolicyOptions o = TestPolicyOptions();
  o.decision_cooldown_writes = 100;
  // Post-crash flow: a fresh policy reseeded from the analysis pass.
  AdaptiveLogPolicy p(o);
  p.Restore(7, LogChoice::kPhysiological);
  EXPECT_EQ(p.Current(7), LogChoice::kPhysiological);
  EXPECT_EQ(p.stats().restored, 1u);
  // The reseed is not a fresh decision: the first post-crash write may
  // still reclassify immediately despite the long cooldown window.
  EXPECT_TRUE(p.Decide(7, 300, 0).changed);
  EXPECT_EQ(p.Current(7), LogChoice::kPhysical);
}

TEST(AdaptiveLogPolicyTest, ObserveWriteTracksWithoutReclassifying) {
  AdaptiveLogPolicy p(TestPolicyOptions());
  for (int i = 0; i < 5; ++i) {
    p.ObserveWrite(9, 4096);  // structural writes never flip the class
  }
  EXPECT_EQ(p.Current(9), LogChoice::kLogical);
  EXPECT_EQ(p.stats().decisions, 0u);
  EXPECT_EQ(p.stats().writes_observed, 5u);
  EXPECT_EQ(p.tracked_objects(), 1u);
}

// --- kPolicyDecision record codec -------------------------------------

TEST(PolicyRecordTest, EncodeDecodeRoundtrip) {
  LogRecord rec;
  rec.type = RecordType::kPolicyDecision;
  rec.lsn = 42;
  rec.policy.object = 1234;
  rec.policy.new_class = static_cast<uint8_t>(LogChoice::kPhysical);
  rec.policy.prev_class = static_cast<uint8_t>(LogChoice::kLogical);
  rec.policy.reason = static_cast<uint8_t>(PolicyReason::kDeepChain);
  rec.policy.chain_depth = 77;
  rec.policy.ewma_size = 4096;

  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  EXPECT_EQ(buf.size(), rec.EncodedSize());

  Slice src(buf.data(), buf.size());
  LogRecord out;
  ASSERT_TRUE(LogRecord::DecodeFrom(&src, &out).ok());
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(out.type, RecordType::kPolicyDecision);
  EXPECT_EQ(out.lsn, 42u);
  EXPECT_EQ(out.policy.object, 1234u);
  EXPECT_EQ(out.policy.new_class, rec.policy.new_class);
  EXPECT_EQ(out.policy.prev_class, rec.policy.prev_class);
  EXPECT_EQ(out.policy.reason, rec.policy.reason);
  EXPECT_EQ(out.policy.chain_depth, 77u);
  EXPECT_EQ(out.policy.ewma_size, 4096u);
  EXPECT_NE(out.DebugString().find("policy"), std::string::npos);
}

TEST(PolicyRecordTest, TruncatedPayloadIsCorruption) {
  LogRecord rec;
  rec.type = RecordType::kPolicyDecision;
  rec.lsn = 9;
  rec.policy.object = 5;
  std::vector<uint8_t> buf;
  rec.EncodeTo(&buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    Slice src(buf.data(), len);
    LogRecord out;
    EXPECT_FALSE(LogRecord::DecodeFrom(&src, &out).ok()) << "len " << len;
  }
}

TEST(PolicyRecordTest, AnalysisReconstructsLastClassPerObject) {
  auto decision = [](Lsn lsn, ObjectId id, LogChoice cls) {
    LogRecord rec;
    rec.type = RecordType::kPolicyDecision;
    rec.lsn = lsn;
    rec.policy.object = id;
    rec.policy.new_class = static_cast<uint8_t>(cls);
    return rec;
  };
  AnalysisBuilder builder;
  builder.Add(decision(1, 7, LogChoice::kPhysical));
  builder.Add(decision(2, 8, LogChoice::kPhysiological));
  builder.Add(decision(3, 7, LogChoice::kLogical));  // last decision wins
  AnalysisResult analysis = builder.Finish();
  EXPECT_EQ(analysis.policy_records, 3u);
  ASSERT_EQ(analysis.policy_classes.count(7), 1u);
  ASSERT_EQ(analysis.policy_classes.count(8), 1u);
  EXPECT_EQ(analysis.policy_classes.at(7),
            static_cast<uint8_t>(LogChoice::kLogical));
  EXPECT_EQ(analysis.policy_classes.at(8),
            static_cast<uint8_t>(LogChoice::kPhysiological));
}

// --- Engine integration -----------------------------------------------

TEST(AdaptiveEngineTest, ColdLargeLogicalWriteIsLoggedPhysically) {
  SimulatedDisk disk;
  RecoveryEngine engine(AdaptiveEngineOptions(), &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "app-state")).ok());
  // W_L(A,X) emitting a 256-byte value: first write of X, cold + large,
  // so the policy promotes it to a blind W_P carrying the value.
  ASSERT_TRUE(engine.Execute(MakeAppWrite(1, 2, 256, 99)).ok());

  EXPECT_GE(engine.stats().promoted_physical, 1u);
  EXPECT_GE(engine.stats().policy_decisions, 1u);
  EXPECT_GT(engine.stats().policy_log_bytes, 0u);
  ASSERT_NE(engine.policy(), nullptr);
  EXPECT_GE(engine.policy()->stats().to_physical, 1u);

  ObjectValue v;
  ASSERT_TRUE(engine.Read(2, &v).ok());
  EXPECT_EQ(v.size(), 256u);

  // The log carries the promoted W_P record and the decision record.
  ASSERT_TRUE(engine.log().ForceAll().ok());
  LogDumpSummary summary;
  ASSERT_TRUE(
      DumpLog(disk.log().ArchiveContents(), nullptr, &summary).ok());
  EXPECT_GE(summary.class_counts[static_cast<int>(OpClass::kPhysical)], 1u);
  EXPECT_GE(summary.policy_decisions, 1u);
  EXPECT_GT(summary.policy_bytes, 0u);
}

TEST(AdaptiveEngineTest, ColdMediumRewriteIsLoggedAsDelta) {
  SimulatedDisk disk;
  RecoveryEngine engine(AdaptiveEngineOptions(), &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "app-state")).ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(3, "hot")).ok());
  // First W_L(A,X) of a medium value: cold + medium -> W_PL class, but
  // with no prior image the record falls back to a full physical write.
  ASSERT_TRUE(engine.Execute(MakeAppWrite(1, 2, 80, 7)).ok());
  EXPECT_EQ(engine.policy()->Current(2), LogChoice::kPhysiological);
  // Interleave hot traffic so X stays cold (interval >= the threshold).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Execute(MakeAppExecute(3, i)).ok());
  }
  // Same app state + same seed -> identical emitted value: the W_PL
  // encoder finds an empty differing range and logs a minimal delta.
  ASSERT_TRUE(engine.Execute(MakeAppWrite(1, 2, 80, 7)).ok());
  EXPECT_GE(engine.stats().promoted_delta, 1u);

  ObjectValue v;
  ASSERT_TRUE(engine.Read(2, &v).ok());
  EXPECT_EQ(v.size(), 80u);

  ASSERT_TRUE(engine.log().ForceAll().ok());
  LogDumpSummary summary;
  ASSERT_TRUE(
      DumpLog(disk.log().ArchiveContents(), nullptr, &summary).ok());
  EXPECT_GE(summary.class_counts[static_cast<int>(OpClass::kPhysiological)],
            1u);
}

TEST(AdaptiveEngineTest, ClassMixSummaryReportsAllTraffic) {
  SimulatedDisk disk;
  RecoveryEngine engine(AdaptiveEngineOptions(), &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "app-state")).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Execute(MakeAppExecute(1, i)).ok());  // stays W_L
  }
  ASSERT_TRUE(engine.Execute(MakeAppWrite(1, 2, 256, 1)).ok());  // -> W_P
  ASSERT_TRUE(engine.log().ForceAll().ok());

  LogDumpSummary summary;
  ASSERT_TRUE(
      DumpLog(disk.log().ArchiveContents(), nullptr, &summary).ok());
  EXPECT_GT(summary.class_counts[static_cast<int>(OpClass::kLogical)], 0u);
  EXPECT_GT(summary.class_counts[static_cast<int>(OpClass::kPhysical)], 0u);
  EXPECT_GT(summary.class_counts[static_cast<int>(OpClass::kCreate)], 0u);

  const std::string json = summary.ToJson();
  EXPECT_NE(json.find("\"class_mix\""), std::string::npos);
  EXPECT_NE(json.find("\"logical\""), std::string::npos);
  EXPECT_NE(json.find("\"policy_decisions\""), std::string::npos);
  const std::string table = summary.ClassMixToString();
  EXPECT_NE(table.find("logical"), std::string::npos);
  EXPECT_NE(table.find("policy"), std::string::npos);
}

// A class switch across a crash: W_L before, promoted W_P after; the
// recovered store must match the sequential reference (values and vSIs)
// and the recovered policy must resume under the logged class.
TEST(AdaptiveEngineTest, PolicySwitchAcrossCrashRecovers) {
  EngineOptions eo = AdaptiveEngineOptions();
  CrashHarness h(eo);
  ASSERT_TRUE(h.Execute(MakeCreate(5, "seed")).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.Execute(MakeAppExecute(5, i)).ok());  // hot+small: W_L
  }
  EXPECT_EQ(h.engine().policy()->Current(5), LogChoice::kLogical);
  ASSERT_TRUE(h.engine().log().ForceAll().ok());

  h.Crash();
  ASSERT_TRUE(h.Recover().ok());
  ASSERT_TRUE(h.VerifyAgainstReference().ok());

  // Post-crash the policy is fresh; the first write of object 5 counts
  // as cold, and a large emitted value promotes it to W_P.
  ASSERT_TRUE(h.Execute(MakeAppWrite(5, 6, 300, 11)).ok());
  ASSERT_TRUE(h.Execute(MakeAppWrite(6, 5, 200, 12)).ok());
  EXPECT_EQ(h.engine().policy()->Current(5), LogChoice::kPhysical);
  EXPECT_GE(h.engine().stats().promoted_physical, 1u);
  ASSERT_TRUE(h.engine().log().ForceAll().ok());

  h.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(h.Recover(&stats).ok());
  ASSERT_TRUE(h.VerifyAgainstReference().ok());

  // Analysis reconstructed the decision records and reseeded the policy.
  ASSERT_NE(h.engine().policy(), nullptr);
  EXPECT_EQ(h.engine().policy()->Current(5), LogChoice::kPhysical);
  EXPECT_EQ(h.engine().policy()->Current(6), LogChoice::kPhysical);
  EXPECT_GE(h.engine().policy()->stats().restored, 2u);

  ObjectValue v;
  ASSERT_TRUE(h.engine().Read(5, &v).ok());
  EXPECT_EQ(v.size(), 200u);
}

// --- Recovery budget / proactive W_IP ---------------------------------

TEST(AdaptiveEngineTest, RecoveryBudgetBoundsRedoBacklog) {
  EngineOptions eo = AdaptiveEngineOptions();
  eo.purge_threshold_ops = 0;  // isolate the budget path from auto-purge
  eo.recovery_budget = 24;
  CrashHarness h(eo);
  ASSERT_TRUE(h.Execute(MakeCreate(1, "app-state-bytes")).ok());
  // Hot app state: installing its ever-growing node requires peeling the
  // object off with a W_IP instead of flushing it (Section 4).
  h.engine().MarkHot(1);
  for (ObjectId x = 100; x < 104; ++x) {
    ASSERT_TRUE(h.Execute(MakeCreate(x, "tgt")).ok());
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(h.Execute(MakeAppExecute(1, i)).ok());
    if (i % 8 == 0) {
      ASSERT_TRUE(
          h.Execute(MakeAppWrite(1, 100 + (i / 8) % 4, 24, i)).ok());
    }
  }
  const CacheStats& cs = h.engine().cache().stats();
  EXPECT_GT(cs.budget_installs, 0u);
  EXPECT_GT(cs.budget_identity_requests, 0u);
  // The backlog stays within the budget plus one cycle's identity slack.
  EXPECT_LE(h.engine().cache().uninstalled_ops(),
            eo.recovery_budget +
                eo.adaptive.max_identity_requests_per_cycle + 8);

  ASSERT_TRUE(h.engine().log().ForceAll().ok());
  h.Crash();
  RecoveryStats stats;
  ASSERT_TRUE(h.Recover(&stats).ok());
  // ~340 operations ran; the budget keeps redo work near the backlog
  // bound instead of the whole history.
  EXPECT_LE(stats.ops_redone, 100u);
  ASSERT_TRUE(h.VerifyAgainstReference().ok());
}

TEST(AdaptiveEngineTest, IdentityRequestCapBackpressureCountsDrops) {
  EngineOptions eo = AdaptiveEngineOptions();
  eo.purge_threshold_ops = 0;
  eo.recovery_budget = 8;
  eo.adaptive.max_identity_requests_per_cycle = 0;  // starve the peeler
  Counter* drops =
      MetricsRegistry::Global().GetCounter(metric::kCmIdentityBudgetDrops);
  const uint64_t drops_before = drops->value();

  SimulatedDisk disk;
  RecoveryEngine engine(eo, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "app-state-bytes")).ok());
  // The hot object's node can only install by peeling it with a W_IP,
  // and the zero cap refuses every request.
  engine.MarkHot(1);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(engine.Execute(MakeAppExecute(1, i)).ok());
  }
  const CacheStats& cs = engine.cache().stats();
  EXPECT_GT(cs.budget_identity_drops, 0u);
  EXPECT_GE(cs.budget_identity_requests, cs.budget_identity_drops);
  // With zero identity writes allowed the backlog escapes the budget —
  // the cap is backpressure, not a correctness gate.
  EXPECT_GT(engine.cache().uninstalled_ops(), eo.recovery_budget);
  EXPECT_GT(drops->value(), drops_before);
}

}  // namespace
}  // namespace loglog
