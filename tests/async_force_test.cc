#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault_injector.h"
#include "ops/op_builder.h"
#include "sim/crash_harness.h"
#include "storage/simulated_disk.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace loglog {
namespace {

Lsn AppendOp(LogManager* log, ObjectId id, Slice value) {
  return log->AppendOperation(MakePhysicalWrite(id, value), 0, kInvalidLsn,
                              {});
}

size_t StableRecordCount(const StableLogDevice& device) {
  std::vector<LogRecord> records;
  bool torn = false;
  Lsn next_lsn = 0;
  uint64_t valid_end = 0;
  EXPECT_TRUE(
      LogManager::ReadStable(device, &records, &torn, &next_lsn, &valid_end)
          .ok());
  return records.size();
}

// Submit/wait split against the blocking Force: same acknowledgement
// point, same stable bytes.
TEST(AsyncForceTest, SubmitThenWaitMatchesBlockingForce) {
  SimulatedDisk sync_disk;
  SimulatedDisk async_disk;
  LogManager sync_log(&sync_disk.log());
  LogManager async_log(&async_disk.log());

  for (int i = 0; i < 5; ++i) {
    AppendOp(&sync_log, 1, "payload");
    AppendOp(&async_log, 1, "payload");
  }
  ASSERT_TRUE(sync_log.Force(5).ok());

  ASSERT_TRUE(async_log.SubmitForce(5).ok());
  // Staged, not stable: acknowledgement waits for the reap.
  EXPECT_EQ(async_log.in_flight_forces(), 1u);
  EXPECT_EQ(async_log.last_stable_lsn(), 0u);
  EXPECT_EQ(async_disk.log().staged_appends(), 1u);
  ASSERT_TRUE(async_log.WaitStable(5).ok());
  EXPECT_EQ(async_log.in_flight_forces(), 0u);
  EXPECT_EQ(async_log.last_stable_lsn(), 5u);

  EXPECT_EQ(sync_disk.log().Contents().ToString(),
            async_disk.log().Contents().ToString());
}

// set_async_submit: appends stage completions on their own once enough
// committed bytes accumulate, so the device works while execution
// continues; the durability point only reaps.
TEST(AsyncForceTest, AsyncSubmitStagesWhileAppending) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  disk.log().set_append_latency_us(200);
  log.set_async_submit(1);  // every committed record submits eagerly

  Lsn last = 0;
  for (int i = 0; i < 8; ++i) {
    last = AppendOp(&log, 1, "overlapped");
  }
  // The appends themselves staged the work — before any Force call.
  EXPECT_GT(log.in_flight_forces(), 0u);
  EXPECT_GT(disk.log().staged_appends(), 0u);
  EXPECT_EQ(disk.stats().log_forces, 0u);

  ASSERT_TRUE(log.WaitStable(last).ok());
  EXPECT_EQ(log.last_stable_lsn(), last);
  EXPECT_EQ(log.in_flight_forces(), 0u);
  EXPECT_EQ(disk.log().staged_appends(), 0u);
  EXPECT_EQ(StableRecordCount(disk.log()), 8u);

  // A later Force over the already-stable range is a no-op.
  ASSERT_TRUE(log.Force(last).ok());
  EXPECT_EQ(disk.stats().log_forces, 8u);
}

// A transient device error at completion time: the entry stays staged
// and the reap retries in place; nothing is acknowledged early and
// nothing is lost.
TEST(AsyncForceTest, TransientCompletionErrorRetriedInPlace) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  disk.fault_injector().Arm(fault::kLogAppend, FaultSpec::TransientTimes(1));

  Lsn last = 0;
  for (int i = 0; i < 3; ++i) last = AppendOp(&log, 2, "retry-me");
  ASSERT_TRUE(log.SubmitForce(last).ok());
  ASSERT_TRUE(log.WaitStable(last).ok());
  EXPECT_EQ(log.last_stable_lsn(), last);
  EXPECT_EQ(StableRecordCount(disk.log()), 3u);
}

// A transient error at the submit-time fault site (fault::kLogForce)
// is retried by the submit path itself.
TEST(AsyncForceTest, TransientSubmitErrorRetried) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  disk.fault_injector().Arm(fault::kLogForce, FaultSpec::TransientTimes(1));

  Lsn last = AppendOp(&log, 3, "submit-retry");
  ASSERT_TRUE(log.Force(last).ok());
  EXPECT_EQ(log.last_stable_lsn(), last);
}

// A torn write surfacing at the completion: Aborted, the manager is
// poisoned (the stable tail no longer matches its view), and whatever
// the device kept is a clean prefix recovery can read up to.
TEST(AsyncForceTest, TornCompletionPoisonsManager) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  disk.fault_injector().Arm(fault::kLogAppend, FaultSpec::TornOnce(99));

  Lsn last = 0;
  for (int i = 0; i < 4; ++i) last = AppendOp(&log, 4, "doomed-batch");
  ASSERT_TRUE(log.SubmitForce(last).ok());
  Status st = log.WaitStable(last);
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  // Poisoned: every further durability request refuses until recovery.
  EXPECT_FALSE(log.Force(last).ok());

  std::vector<LogRecord> records;
  bool torn = false;
  Lsn next_lsn = 0;
  uint64_t valid_end = 0;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next_lsn,
                                     &valid_end)
                  .ok());
  // Only a strict prefix survived, with dense LSNs from 1.
  EXPECT_LT(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<Lsn>(i + 1));
  }
  EXPECT_LE(valid_end, disk.log().end_offset());
}

// A crash with submissions staged but never reaped: the completion
// queue is volatile, so the next incarnation must see none of it.
TEST(AsyncForceTest, StagedSubmissionsDieWithTheManager) {
  SimulatedDisk disk;
  {
    LogManager log(&disk.log());
    for (int i = 0; i < 4; ++i) AppendOp(&log, 5, "never-reaped");
    ASSERT_TRUE(log.SubmitForce(4).ok());
    EXPECT_EQ(disk.log().staged_appends(), 1u);
    // Crash: the manager (volatile buffer + queue) dies unreaped.
  }
  EXPECT_EQ(disk.log().staged_appends(), 0u);
  EXPECT_EQ(StableRecordCount(disk.log()), 0u);

  // The next incarnation starts clean and its forces are unaffected.
  LogManager log(&disk.log());
  Lsn last = AppendOp(&log, 5, "post-crash");
  ASSERT_TRUE(log.Force(last).ok());
  EXPECT_EQ(StableRecordCount(disk.log()), 1u);
}

// The torn-tail matrix re-run with async completions live end to end:
// eager submission during execution, a crash tearing the final force,
// and recovery reconstructing a reference-equivalent state.
enum class AsyncTear { kOneByte, kHeaderBoundary, kFullLastForce };

class AsyncTornTailTest : public testing::TestWithParam<AsyncTear> {};

TEST_P(AsyncTornTailTest, RecoveryHandlesTornAsyncTail) {
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  CrashHarness harness(opts, 1337);
  harness.disk().log().set_append_latency_us(50);
  harness.engine().log().set_async_submit(64);

  ASSERT_TRUE(harness.Execute(MakeCreate(1, "stable-one")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(2, "stable-two")).ok());
  ASSERT_TRUE(harness.engine().FlushAll().ok());

  ASSERT_TRUE(harness.Execute(MakeAppend(1, "-tail")).ok());
  ASSERT_TRUE(harness.Execute(MakeCreate(3, "young")).ok());
  ASSERT_TRUE(harness.engine().log().ForceAll().ok());

  harness.Crash();
  StableLogDevice& log = harness.disk().log();
  const uint64_t last = log.last_append_size();
  ASSERT_GT(last, 8u);
  switch (GetParam()) {
    case AsyncTear::kOneByte:
      log.TearTail(1);
      break;
    case AsyncTear::kHeaderBoundary:
      log.TearTail(last - 8);
      break;
    case AsyncTear::kFullLastForce:
      log.TearTail(last);
      break;
  }

  RecoveryStats stats;
  ASSERT_TRUE(harness.Recover(&stats).ok());
  ASSERT_TRUE(harness.VerifyAgainstReference().ok());
  ASSERT_TRUE(harness.engine().cache().CheckInvariants().ok());
  EXPECT_TRUE(harness.engine().Exists(1));
  EXPECT_TRUE(harness.engine().Exists(2));
}

INSTANTIATE_TEST_SUITE_P(
    AllTears, AsyncTornTailTest,
    testing::Values(AsyncTear::kOneByte, AsyncTear::kHeaderBoundary,
                    AsyncTear::kFullLastForce),
    [](const testing::TestParamInfo<AsyncTear>& info) {
      switch (info.param) {
        case AsyncTear::kOneByte:
          return "OneByte";
        case AsyncTear::kHeaderBoundary:
          return "HeaderBoundary";
        case AsyncTear::kFullLastForce:
          return "FullLastForce";
      }
      return "Unknown";
    });

// Concurrent producers on the reserve+fill path racing a forcer thread:
// every record must land stable exactly once, densely LSN-ordered. This
// is the TSan target for the whole submit/fill/reap pipeline.
TEST(AsyncForceTest, ConcurrentAppendsAndForcesAreCoherent) {
  SimulatedDisk disk;
  LogManager log(&disk.log());
  log.set_async_submit(256);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 128;
  std::atomic<bool> done{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&log, p] {
      const std::string payload = "producer-" + std::to_string(p);
      const OperationDesc op =
          MakePhysicalWrite(static_cast<ObjectId>(p + 1), Slice(payload));
      for (int i = 0; i < kPerProducer; ++i) {
        log.AppendOperation(op, 0, kInvalidLsn, {});
      }
    });
  }
  std::thread forcer([&log, &done] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(log.ForceAll().ok());
    }
  });
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  forcer.join();
  ASSERT_TRUE(log.ForceAll().ok());

  const Lsn total = static_cast<Lsn>(kProducers * kPerProducer);
  EXPECT_EQ(log.last_assigned_lsn(), total);
  EXPECT_EQ(log.last_stable_lsn(), total);
  EXPECT_EQ(log.volatile_record_count(), 0u);

  std::vector<LogRecord> records;
  bool torn = false;
  Lsn next_lsn = 0;
  uint64_t valid_end = 0;
  ASSERT_TRUE(LogManager::ReadStable(disk.log(), &records, &torn, &next_lsn,
                                     &valid_end)
                  .ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), static_cast<size_t>(total));
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<Lsn>(i + 1));
  }
}

}  // namespace
}  // namespace loglog
