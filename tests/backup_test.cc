#include <gtest/gtest.h>

#include "backup/backup_manager.h"
#include "backup/media_recovery.h"
#include "ops/op_builder.h"
#include "sim/reference_executor.h"
#include "sim/workload.h"

namespace loglog {
namespace {

Status VerifyMediaRecovered(SimulatedDisk& source_disk,
                            RecoveryEngine* recovered) {
  LOGLOG_RETURN_IF_ERROR(recovered->FlushAll());
  ReferenceExecutor ref;
  LOGLOG_RETURN_IF_ERROR(
      ref.ReplayLog(source_disk.log().ArchiveContents()));
  return CompareWithReference(ref, recovered->disk().store());
}

TEST(BackupTest, QuiescentBackupRestoresExactly) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "alpha")).ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(2, "beta")).ok());
  ASSERT_TRUE(engine.Execute(MakeCopy(3, 1)).ok());
  ASSERT_TRUE(engine.FlushAll().ok());

  BackupManager backup(&disk, /*repair_order=*/true);
  ASSERT_TRUE(backup.Begin().ok());
  while (!backup.done()) ASSERT_TRUE(backup.Step(1).ok());
  EXPECT_EQ(backup.image().entries.size(), 3u);
  EXPECT_EQ(backup.stats().repair_recopies, 0u);  // quiescent: no hazard

  SimulatedDisk fresh;
  std::unique_ptr<RecoveryEngine> recovered;
  RecoveryStats stats;
  ASSERT_TRUE(MediaRecover(backup.image(), disk.log().ArchiveContents(),
                           &fresh, &recovered, &stats)
                  .ok());
  ASSERT_TRUE(VerifyMediaRecovered(disk, recovered.get()).ok());
}

// The Section 1 inversion, constructed deliberately:
//   O: Y <- copy(X) is installed (Y flushed) and X is then blind-
//   overwritten and flushed. A naive fuzzy backup that copied Y *before*
//   O installed and X *after* the overwrite holds {old Y, new X} and is
//   unrecoverable; the order-repaired backup re-copies Y and recovers.
class FuzzyInversionTest : public testing::TestWithParam<bool> {};

TEST_P(FuzzyInversionTest, NaiveFailsRepairedRecovers) {
  const bool repair = GetParam();
  SimulatedDisk disk;
  EngineOptions opts;
  opts.purge_threshold_ops = 0;  // manual flush control
  RecoveryEngine engine(opts, &disk);
  constexpr ObjectId kX = 1, kY = 2;
  ASSERT_TRUE(engine.Execute(MakeCreate(kX, "x-original")).ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(kY, "y-original")).ok());
  ASSERT_TRUE(engine.FlushAll().ok());

  BackupManager backup(&disk, repair);
  ASSERT_TRUE(backup.Begin().ok());
  // plan order is {X, Y} (sorted); copy X=old... we need Y copied FIRST
  // while old, so copy both now: X@old, Y@old.
  while (!backup.done()) ASSERT_TRUE(backup.Step(1).ok());
  // Now O: Y <- copy(X); install it (flush Y).
  ASSERT_TRUE(engine.Execute(MakeCopy(kY, kX)).ok());
  ASSERT_TRUE(engine.FlushAll().ok());
  // Blind-overwrite X and flush it.
  ASSERT_TRUE(engine.Execute(MakePhysicalWrite(kX, "x-newer!!")).ok());
  ASSERT_TRUE(engine.FlushAll().ok());
  // The fuzzy backup re-copies X (it "catches up" on a hot object) —
  // modeled by a second Begin/Step limited to X via a fresh manager
  // sharing the image… simplest: copy X again through the same manager's
  // repair path by re-running Begin on a manager seeded with the old
  // image. Instead, emulate directly: a second backup pass copies X.
  BackupImage image = backup.image();
  StoredObject sx;
  ASSERT_TRUE(disk.store().Read(kX, &sx).ok());
  image.entries[kX] = BackupEntry{sx.value, sx.vsi};  // X@new, Y@old
  if (repair) {
    // The repaired manager would have re-copied Y when X was re-copied;
    // emulate its rule.
    StoredObject sy;
    ASSERT_TRUE(disk.store().Read(kY, &sy).ok());
    image.entries[kY] = BackupEntry{sy.value, sy.vsi};
  }

  SimulatedDisk fresh;
  std::unique_ptr<RecoveryEngine> recovered;
  RecoveryStats stats;
  ASSERT_TRUE(MediaRecover(image, disk.log().ArchiveContents(), &fresh,
                           &recovered, &stats)
                  .ok());
  Status verdict = VerifyMediaRecovered(disk, recovered.get());
  if (repair) {
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
    EXPECT_EQ(stats.ops_voided, 0u);
  } else {
    // The copy of X into Y is voided (input from the future) and Y keeps
    // its stale value: the naive fuzzy backup is not recoverable.
    EXPECT_GE(stats.ops_voided, 1u);
    EXPECT_FALSE(verdict.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(NaiveVsRepaired, FuzzyInversionTest,
                         testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "Repaired" : "Naive";
                         });

// End-to-end: fuzzy backup interleaved with a live mixed workload, with
// repair on, is always media-recoverable.
class FuzzyBackupMatrixTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FuzzyBackupMatrixTest, InterleavedBackupIsRecoverable) {
  EngineOptions opts;
  opts.purge_threshold_ops = 8;  // flush aggressively during the window
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  MixedWorkloadOptions wopts;
  wopts.seed = GetParam();
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(engine.Execute(op).ok());
  }
  for (int i = 0; i < 100; ++i) {
    Status st = engine.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound());
  }
  ASSERT_TRUE(engine.FlushAll().ok());

  BackupManager backup(&disk, /*repair_order=*/true);
  ASSERT_TRUE(backup.Begin().ok());
  while (!backup.done()) {
    ASSERT_TRUE(backup.Step(2).ok());
    for (int i = 0; i < 10; ++i) {
      Status st = engine.Execute(workload.Next());
      ASSERT_TRUE(st.ok() || st.IsNotFound());
    }
  }
  // A little more churn, then the log must be complete on the archive.
  for (int i = 0; i < 30; ++i) {
    Status st = engine.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound());
  }
  ASSERT_TRUE(engine.log().ForceAll().ok());

  // Media failure: the stable store is lost; backup + archive remain.
  SimulatedDisk fresh;
  std::unique_ptr<RecoveryEngine> recovered;
  RecoveryStats stats;
  ASSERT_TRUE(MediaRecover(backup.image(), disk.log().ArchiveContents(),
                           &fresh, &recovered, &stats)
                  .ok());
  Status verdict = VerifyMediaRecovered(disk, recovered.get());
  EXPECT_TRUE(verdict.ok()) << verdict.ToString() << "\n"
                            << stats.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzyBackupMatrixTest,
                         testing::Values(11, 22, 33, 44, 55, 66));

TEST(PointInTimeRestoreTest, MaterializesHistoricStates) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  Lsn lsn1, lsn2, lsn3;
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "v1"), &lsn1).ok());
  ASSERT_TRUE(engine.Execute(MakePhysicalWrite(1, "v2"), &lsn2).ok());
  ASSERT_TRUE(engine.Execute(MakeCopy(2, 1), &lsn3).ok());
  Lsn lsn4;
  ASSERT_TRUE(engine.Execute(MakeDelete(1), &lsn4).ok());
  ASSERT_TRUE(engine.log().ForceAll().ok());
  Slice archive = disk.log().ArchiveContents();

  // As of lsn1: object 1 holds v1, object 2 absent.
  SimulatedDisk pit1;
  ASSERT_TRUE(RestoreToLsn(archive, lsn1, &pit1).ok());
  StoredObject obj;
  ASSERT_TRUE(pit1.store().Read(1, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "v1");
  EXPECT_FALSE(pit1.store().Exists(2));

  // As of lsn3: 1 = v2, 2 = v2 (the copy).
  SimulatedDisk pit3;
  ASSERT_TRUE(RestoreToLsn(archive, lsn3, &pit3).ok());
  ASSERT_TRUE(pit3.store().Read(1, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "v2");
  ASSERT_TRUE(pit3.store().Read(2, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "v2");

  // As of lsn4: 1 deleted, 2 survives.
  SimulatedDisk pit4;
  ASSERT_TRUE(RestoreToLsn(archive, lsn4, &pit4).ok());
  EXPECT_FALSE(pit4.store().Exists(1));
  EXPECT_TRUE(pit4.store().Exists(2));

  // As of LSN 0: empty database.
  SimulatedDisk pit0;
  ASSERT_TRUE(RestoreToLsn(archive, 0, &pit0).ok());
  EXPECT_EQ(pit0.store().object_count(), 0u);
}

TEST(PointInTimeRestoreTest, MatchesReferenceOnMixedWorkload) {
  EngineOptions opts;
  opts.purge_threshold_ops = 16;
  SimulatedDisk disk;
  RecoveryEngine engine(opts, &disk);
  MixedWorkloadOptions wopts;
  wopts.seed = 77;
  MixedWorkload workload(wopts);
  for (const OperationDesc& op : workload.SetupOps()) {
    ASSERT_TRUE(engine.Execute(op).ok());
  }
  for (int i = 0; i < 150; ++i) {
    Status st = engine.Execute(workload.Next());
    ASSERT_TRUE(st.ok() || st.IsNotFound());
  }
  ASSERT_TRUE(engine.log().ForceAll().ok());

  // Full-history restore must equal the reference replay.
  SimulatedDisk pit;
  ASSERT_TRUE(
      RestoreToLsn(disk.log().ArchiveContents(), kMaxLsn, &pit).ok());
  ReferenceExecutor ref;
  ASSERT_TRUE(ref.ReplayLog(disk.log().ArchiveContents()).ok());
  ASSERT_TRUE(CompareWithReference(ref, pit.store()).ok());
}

TEST(BackupTest, EmptyStoreBackupIsTrivial) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  BackupManager backup(&disk, true);
  ASSERT_TRUE(backup.Begin().ok());
  EXPECT_TRUE(backup.done());
  EXPECT_TRUE(backup.image().entries.empty());
  EXPECT_EQ(backup.image().ScanStart(), 1u);  // replay everything
}

TEST(BackupTest, ObjectDeletedDuringWindowLeavesNoEntry) {
  SimulatedDisk disk;
  EngineOptions opts;
  opts.purge_threshold_ops = 0;
  RecoveryEngine engine(opts, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "doomed")).ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(2, "kept")).ok());
  ASSERT_TRUE(engine.FlushAll().ok());

  BackupManager backup(&disk, true);
  ASSERT_TRUE(backup.Begin().ok());
  // Delete object 1 and install the delete before it is copied.
  ASSERT_TRUE(engine.Execute(MakeDelete(1)).ok());
  ASSERT_TRUE(engine.FlushAll().ok());
  while (!backup.done()) ASSERT_TRUE(backup.Step(1).ok());
  EXPECT_FALSE(backup.image().entries.contains(1));
  EXPECT_TRUE(backup.image().entries.contains(2));

  ASSERT_TRUE(engine.log().ForceAll().ok());
  SimulatedDisk fresh;
  std::unique_ptr<RecoveryEngine> recovered;
  RecoveryStats stats;
  ASSERT_TRUE(MediaRecover(backup.image(), disk.log().ArchiveContents(),
                           &fresh, &recovered, &stats)
                  .ok());
  ASSERT_TRUE(VerifyMediaRecovered(disk, recovered.get()).ok());
  EXPECT_FALSE(fresh.store().Exists(1));
}

TEST(BackupTest, ObjectsCreatedAfterBeginReplayFromLog) {
  SimulatedDisk disk;
  RecoveryEngine engine(EngineOptions{}, &disk);
  ASSERT_TRUE(engine.Execute(MakeCreate(1, "old")).ok());
  ASSERT_TRUE(engine.FlushAll().ok());

  BackupManager backup(&disk, true);
  ASSERT_TRUE(backup.Begin().ok());
  ASSERT_TRUE(engine.Execute(MakeCreate(2, "new-after-begin")).ok());
  while (!backup.done()) ASSERT_TRUE(backup.Step(1).ok());
  EXPECT_FALSE(backup.image().entries.contains(2));

  ASSERT_TRUE(engine.log().ForceAll().ok());
  SimulatedDisk fresh;
  std::unique_ptr<RecoveryEngine> recovered;
  RecoveryStats stats;
  ASSERT_TRUE(MediaRecover(backup.image(), disk.log().ArchiveContents(),
                           &fresh, &recovered, &stats)
                  .ok());
  ASSERT_TRUE(VerifyMediaRecovered(disk, recovered.get()).ok());
  StoredObject obj;
  ASSERT_TRUE(fresh.store().Read(2, &obj).ok());
  EXPECT_EQ(Slice(obj.value).ToString(), "new-after-begin");
}

}  // namespace
}  // namespace loglog
