#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "graph/batch_write_graph.h"
#include "graph/write_graph_w.h"

namespace loglog {
namespace {

PendingOp Op(Lsn lsn, std::vector<ObjectId> reads,
             std::vector<ObjectId> writes) {
  OperationDesc d;
  d.reads = std::move(reads);
  d.writes = std::move(writes);
  return PendingOp::FromDesc(lsn, d);
}

TEST(BatchWriteGraphTest, Figure1Example) {
  std::vector<PendingOp> ops = {
      Op(1, {1, 2}, {2}),  // A: Y=f(X,Y)
      Op(2, {2}, {1}),     // B: X=g(Y)
  };
  BatchWriteGraph w = ComputeBatchW(ops);
  ASSERT_EQ(w.nodes.size(), 2u);
  size_t a = w.NodeOf(0), b = w.NodeOf(1);
  ASSERT_NE(a, b);
  EXPECT_TRUE(w.nodes[a].succs.contains(b));  // Y flushes before X
  EXPECT_EQ(w.nodes[a].vars, (std::set<ObjectId>{2}));
  EXPECT_EQ(w.nodes[b].vars, (std::set<ObjectId>{1}));
}

TEST(BatchWriteGraphTest, SharedWritesetsCollapse) {
  std::vector<PendingOp> ops = {
      Op(1, {}, {1}),
      Op(2, {}, {1, 2}),  // shares 1 with op 0
      Op(3, {}, {2, 3}),  // shares 2 with op 1: transitive closure
      Op(4, {}, {9}),     // unrelated
  };
  BatchWriteGraph w = ComputeBatchW(ops);
  ASSERT_EQ(w.nodes.size(), 2u);
  EXPECT_EQ(w.NodeOf(0), w.NodeOf(1));
  EXPECT_EQ(w.NodeOf(1), w.NodeOf(2));
  EXPECT_NE(w.NodeOf(3), w.NodeOf(0));
}

TEST(BatchWriteGraphTest, CycleCollapsesToOneNode) {
  // §4: (a) Y=f(X,Y); (b) X=g(Y); (c) Y=h(Y) — cycle between the
  // {Y}-class and the {X}-class.
  std::vector<PendingOp> ops = {
      Op(1, {1, 2}, {2}),
      Op(2, {2}, {1}),
      Op(3, {2}, {2}),
  };
  BatchWriteGraph w = ComputeBatchW(ops);
  ASSERT_EQ(w.nodes.size(), 1u);
  EXPECT_EQ(w.nodes[0].vars, (std::set<ObjectId>{1, 2}));
  EXPECT_EQ(w.nodes[0].ops.size(), 3u);
}

// Differential: the incremental WriteGraphW (used by the cache manager)
// and the verbatim Figure 3 batch construction must agree on the node
// partition over random operation streams.
class BatchDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(BatchDifferentialTest, IncrementalMatchesBatchPartition) {
  Random rng(GetParam());
  std::vector<PendingOp> ops;
  WriteGraphW incremental;
  for (Lsn lsn = 1; lsn <= 120; ++lsn) {
    OperationDesc d;
    size_t nw = 1 + rng.Uniform(2);
    size_t nr = rng.Uniform(3);
    while (d.writes.size() < nw) {
      ObjectId x = 1 + rng.Uniform(8);
      if (!d.WritesObject(x)) d.writes.push_back(x);
    }
    while (d.reads.size() < nr) {
      ObjectId x = 1 + rng.Uniform(8);
      if (!d.ReadsObject(x)) d.reads.push_back(x);
    }
    PendingOp op = PendingOp::FromDesc(lsn, d);
    ops.push_back(op);
    incremental.AddOperation(op);
  }
  incremental.Normalize();
  ASSERT_TRUE(incremental.CheckInvariants().ok());
  BatchWriteGraph batch = ComputeBatchW(ops);

  // Same partition: two ops share an incremental node iff they share a
  // batch node.
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      bool inc_same = incremental.NodeOfOp(ops[i].lsn) ==
                      incremental.NodeOfOp(ops[j].lsn);
      bool batch_same = batch.NodeOf(i) == batch.NodeOf(j);
      ASSERT_EQ(inc_same, batch_same)
          << "ops " << i << "," << j << " seed " << GetParam();
    }
  }
  // Same vars per node.
  for (size_t i = 0; i < ops.size(); ++i) {
    const GraphNode* inc = incremental.Find(incremental.NodeOfOp(ops[i].lsn));
    ASSERT_NE(inc, nullptr);
    EXPECT_EQ(inc->vars, batch.nodes[batch.NodeOf(i)].vars);
  }
  // Same direct edges, mapped through the partition.
  std::map<NodeId, size_t> to_batch;
  for (size_t i = 0; i < ops.size(); ++i) {
    to_batch[incremental.NodeOfOp(ops[i].lsn)] = batch.NodeOf(i);
  }
  for (const auto& [inc_id, batch_id] : to_batch) {
    std::set<size_t> inc_succs;
    for (NodeId s : incremental.Find(inc_id)->succs) {
      inc_succs.insert(to_batch.at(s));
    }
    EXPECT_EQ(inc_succs, batch.nodes[batch_id].succs)
        << "node " << inc_id << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                         111));

}  // namespace
}  // namespace loglog
